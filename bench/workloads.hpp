#pragma once

/// \file workloads.hpp
/// \brief Shared workload builders for the benchmark harnesses.
///
/// Scaling note (see DESIGN.md §1): the paper's statevector workload is the
/// 35-qubit Steane-encoded MSD circuit on 4×H100; this host is a single CPU
/// core, so the statevector benches run (a) the exact bare 5-qubit MSD
/// protocol and (b) an 18-qubit surrogate whose preparation/sampling cost
/// ratio plays the same role as the 35-qubit footprint. The tensor-network
/// benches run the paper's actual encoded workloads (35 and 125 physical
/// qubits) on the MPS backend.

#include "ptsbe/noise/channels.hpp"
#include "ptsbe/noise/noise_model.hpp"
#include "ptsbe/qec/codes.hpp"
#include "ptsbe/qec/distillation.hpp"

namespace ptsbe::bench {

/// Bare 5→1 MSD circuit with depolarizing noise after every gate.
inline NoisyCircuit noisy_bare_msd(double p) {
  Circuit c = qec::bare_msd_circuit();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  return nm.apply(c);
}

/// Brickwork surrogate: n qubits, `depth` alternating layers of single-qubit
/// rotations and entangling CX/CZ, with depolarizing + amplitude damping
/// noise. Deterministic for a given seed.
inline NoisyCircuit surrogate_circuit(unsigned n, unsigned depth, double p,
                                      std::uint64_t seed = 7) {
  RngStream rng(seed);
  Circuit c(n);
  for (unsigned d = 0; d < depth; ++d) {
    for (unsigned q = 0; q < n; ++q) {
      switch (rng.uniform_index(4)) {
        case 0: c.h(q); break;
        case 1: c.t(q); break;
        case 2: c.rx(q, rng.uniform(0, 3.1)); break;
        default: c.ry(q, rng.uniform(0, 3.1)); break;
      }
    }
    const unsigned offset = d % 2;
    for (unsigned q = offset; q + 1 < n; q += 2)
      (d % 4 < 2) ? c.cx(q, q + 1) : c.cz(q, q + 1);
  }
  c.measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  nm.add_measurement_noise(channels::amplitude_damping(p));
  return nm.apply(c);
}

/// The paper's tensor-network workload: five encoded magic states
/// (35 qubits on Steane, 125 on the distance-5 block).
inline NoisyCircuit noisy_msd_preparation(const qec::CssCode& code, double p) {
  Circuit c = qec::msd_preparation_circuit(code);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  return nm.apply(c);
}

/// Full encoded MSD (Steane → 35 qubits) for the MPS backend.
inline NoisyCircuit noisy_encoded_msd(const qec::CssCode& code, double p) {
  Circuit c = qec::encoded_msd_circuit(code);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  return nm.apply(c);
}

}  // namespace ptsbe::bench
