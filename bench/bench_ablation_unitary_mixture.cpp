// Ablation: unitary-mixture fast-path detection (the paper's §2.2 baseline
// feature 2). Unitary-mixture channels have state-independent branch
// probabilities; detecting them lets the trajectory simulator (and PTS)
// skip the per-branch ⟨ψ|K†K|ψ⟩ expectation evaluations of Algorithm 1
// line 9. This bench runs the same Pauli-noise workload with detection ON
// and OFF and reports the trajectory rate and the expectation-evaluation
// counts that explain it.

#include <cstdio>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/trajectory/trajectory.hpp"
#include "workloads.hpp"

int main() {
  using namespace ptsbe;
  std::printf("%-28s %12s %14s %16s\n", "workload", "fast path",
              "trajs/s", "expectation evals");
  for (const auto& [label, noisy, trajs] :
       {std::tuple{"bare 5-qubit MSD", bench::noisy_bare_msd(0.02), 2000ul},
        std::tuple{"14-qubit surrogate",
                   bench::surrogate_circuit(14, 12, 0.01), 100ul}}) {
    for (const bool fast : {true, false}) {
      traj::Options opt;
      opt.unitary_mixture_fast_path = fast;
      RngStream rng(61);
      WallTimer t;
      const auto result = traj::run_statevector(noisy, trajs, rng, opt);
      std::printf("%-28s %12s %14.1f %16zu\n", label, fast ? "on" : "off",
                  trajs / t.seconds(), result.stats.expectation_evaluations);
    }
  }
  std::printf(
      "\nWith detection off, every depolarizing site pays up to 4 full-state\n"
      "expectation evaluations per trajectory; with it on, zero. General\n"
      "(non-unitary) channels always use the state-dependent path.\n");
  return 0;
}
