// Service-engine throughput: jobs/sec through one shared serve::Engine at
// 1 vs N client threads, plus the ExecPlan-cache effect (hit rate, and a
// cache-on vs cache-off ablation on the same job stream).
//
// The job stream models a small tenant population: a handful of distinct
// `.ptq` circuits submitted over and over with varying seeds — the regime
// the plan cache is built for (every repeat skips fusion+lowering). Jobs
// are submitted from the client threads and waited to completion; the
// clock runs from first submit to last wait, so the number includes
// admission, parsing, cache lookups and execution.
//
// Honesty convention (PR 4): the JSON records hardware_concurrency. On a
// 1-core container the multi-client rows collapse to ~1x — the cache hit
// rate and the determinism of the served results are then the load-bearing
// output; expect client-side scaling up to min(workers, cores) elsewhere.
//
//   bench_serve_throughput [output.json] [--tiny]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ptsbe/common/timer.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/serve/engine.hpp"

namespace {

using namespace ptsbe;

/// Distinct tenant circuits: dressed GHZ chains of slightly different
/// shapes so each maps to its own plan-cache entry.
std::string tenant_circuit(unsigned n, unsigned variant) {
  Circuit c(n);
  for (unsigned q = 0; q < n; ++q) c.ry(q, 0.1 * (q + 1 + variant));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q) c.rz(q, 0.07 * (q + 1 + variant));
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.01));
  noise.add_measurement_noise(channels::bit_flip(0.005));
  return io::write_circuit(noise.apply(c));
}

struct Row {
  std::size_t client_threads = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double cache_hit_rate = 0.0;
};

/// Push `jobs_total` jobs (round-robin over `texts`, seed varies per job)
/// through a fresh engine from `client_threads` submitters; returns the row.
Row run_stream(const std::vector<std::string>& texts, std::size_t jobs_total,
               std::size_t client_threads, std::size_t engine_workers,
               std::size_t cache_capacity, std::size_t nsamples,
               std::uint64_t nshots) {
  serve::EngineConfig config;
  config.workers = engine_workers;
  config.queue_capacity = jobs_total;  // sized to avoid rejects: this bench
                                       // measures throughput, not shedding
  config.plan_cache_capacity = cache_capacity;
  serve::Engine engine(config);

  const auto request_for = [&](std::size_t j) {
    serve::JobRequest req;
    req.circuit_text = texts[j % texts.size()];
    req.strategy_config.nsamples = nsamples;
    req.strategy_config.nshots = nshots;
    req.seed = 1000 + j;  // distinct seeds: same plan, different work
    return req;
  };

  WallTimer timer;
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (std::size_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      // Client t owns jobs t, t+T, t+2T, …; it submits all, then waits all
      // (a fleet of synchronous callers with pipelining).
      std::vector<serve::JobHandle> mine;
      for (std::size_t j = t; j < jobs_total; j += client_threads)
        mine.push_back(engine.submit(request_for(j)));
      for (serve::JobHandle& job : mine) (void)job.wait();
    });
  }
  for (std::thread& c : clients) c.join();
  const double seconds = timer.seconds();

  const serve::EngineStats stats = engine.stats();
  Row row;
  row.client_threads = client_threads;
  row.jobs = jobs_total;
  row.seconds = seconds;
  row.jobs_per_sec = seconds > 0.0 ? static_cast<double>(stats.served) / seconds : 0.0;
  row.cache_hit_rate = stats.plan_cache_hit_rate();
  if (stats.served != jobs_total)
    std::fprintf(stderr, "WARNING: served %llu of %zu jobs\n",
                 static_cast<unsigned long long>(stats.served), jobs_total);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_serve_throughput.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

#ifdef _OPENMP
  // Measure the service layer, not the kernels' inner parallelism.
  omp_set_num_threads(1);
#endif

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;

  const unsigned qubits = tiny ? 4 : 12;
  const std::size_t distinct = 4;
  const std::size_t jobs_total = tiny ? 8 : 48;
  const std::size_t engine_workers = tiny ? 2 : 4;
  const std::size_t nsamples = tiny ? 30 : 150;
  const std::uint64_t nshots = tiny ? 10 : 100;
  const std::vector<std::size_t> client_counts =
      tiny ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 4, 8};

  std::vector<std::string> texts;
  for (unsigned v = 0; v < distinct; ++v)
    texts.push_back(tenant_circuit(qubits, v));

  std::printf("serve throughput (%zu jobs over %zu distinct %u-qubit "
              "circuits, engine workers=%zu, hardware_concurrency=%zu)\n\n",
              jobs_total, distinct, qubits, engine_workers, hardware);

  std::vector<Row> rows;
  for (const std::size_t clients : client_counts) {
    const Row row = run_stream(texts, jobs_total, clients, engine_workers, 32,
                               nsamples, nshots);
    std::printf("clients=%zu  %7.3fs  %8.1f jobs/s  cache hit rate %.2f\n",
                row.client_threads, row.seconds, row.jobs_per_sec,
                row.cache_hit_rate);
    rows.push_back(row);
  }

  // Cache ablation at the highest client count: same stream, cache off.
  const std::size_t ablation_clients = client_counts.back();
  const Row cache_off = run_stream(texts, jobs_total, ablation_clients,
                                   engine_workers, 0, nsamples, nshots);
  std::printf("\ncache off: %7.3fs  %8.1f jobs/s (vs %.1f with cache)\n",
              cache_off.seconds, cache_off.jobs_per_sec,
              rows.back().jobs_per_sec);

  std::FILE* os = std::fopen(out, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::fprintf(os,
               "{\n  \"bench\": \"serve_throughput\",\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"engine_workers\": %zu,\n"
               "  \"workload\": {\"jobs\": %zu, \"distinct_circuits\": %zu, "
               "\"qubits\": %u, \"nsamples\": %zu, \"nshots\": %llu},\n"
               "  \"note\": \"jobs/sec includes admission, .ptq parsing, "
               "plan-cache lookups and execution; client scaling is bounded "
               "by min(engine_workers, hardware_concurrency), so expect ~1x "
               "on a 1-core container\",\n"
               "  \"throughput\": [\n",
               hardware, engine_workers, jobs_total, distinct, qubits,
               nsamples, static_cast<unsigned long long>(nshots));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(os,
                 "    {\"client_threads\": %zu, \"jobs\": %zu, "
                 "\"seconds\": %.4f, \"jobs_per_sec\": %.2f, "
                 "\"plan_cache_hit_rate\": %.4f}%s\n",
                 r.client_threads, r.jobs, r.seconds, r.jobs_per_sec,
                 r.cache_hit_rate, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(os,
               "  ],\n  \"plan_cache_ablation\": {\"client_threads\": %zu, "
               "\"cache_on_jobs_per_sec\": %.2f, "
               "\"cache_off_jobs_per_sec\": %.2f}\n}\n",
               ablation_clients, rows.back().jobs_per_sec,
               cache_off.jobs_per_sec);
  std::fclose(os);
  std::printf("\nwrote %s\n", out);
  return 0;
}
