// Micro-benchmarks of the PTS sampling algorithms themselves (google
// benchmark), backing the paper's §3.1 claim that pre-sampling is
// lightweight (~O(|{K}|²p²)-ish bookkeeping) compared to the
// exponential-cost state preparation it replaces. Also covers dedup and
// exhaustive enumeration, whose cost is the practical limit for the
// "most common errors above a cutoff" strategy.

#include <benchmark/benchmark.h>

#include "ptsbe/core/pts.hpp"
#include "workloads.hpp"

namespace {

using namespace ptsbe;

NoisyCircuit make_program(unsigned n) {
  return bench::surrogate_circuit(n, 12, 0.01);
}

void BM_SampleProbabilistic(benchmark::State& state) {
  const NoisyCircuit noisy = make_program(static_cast<unsigned>(state.range(0)));
  RngStream rng(81);
  pts::Options opt;
  opt.nsamples = 100;
  opt.nshots = 1000;
  for (auto _ : state) {
    auto specs = pts::sample_probabilistic(noisy, opt, rng);
    benchmark::DoNotOptimize(specs);
  }
  state.SetLabel(std::to_string(noisy.num_sites()) + " sites");
}
BENCHMARK(BM_SampleProbabilistic)->Arg(4)->Arg(8)->Arg(16);

void BM_SampleTwirled(benchmark::State& state) {
  const NoisyCircuit noisy = make_program(static_cast<unsigned>(state.range(0)));
  RngStream rng(82);
  pts::Options opt;
  opt.nsamples = 100;
  for (auto _ : state) {
    auto specs = pts::sample_pauli_twirled(noisy, opt, rng);
    benchmark::DoNotOptimize(specs);
  }
}
BENCHMARK(BM_SampleTwirled)->Arg(8);

void BM_EnumerateMostLikely(benchmark::State& state) {
  const NoisyCircuit noisy = make_program(8);
  const double cutoff = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto specs = pts::enumerate_most_likely(noisy, cutoff, 1);
    benchmark::DoNotOptimize(specs);
  }
}
BENCHMARK(BM_EnumerateMostLikely)->Arg(3)->Arg(5)->Arg(7);

void BM_Dedup(benchmark::State& state) {
  const NoisyCircuit noisy = make_program(8);
  RngStream rng(83);
  pts::Options opt;
  opt.nsamples = static_cast<std::size_t>(state.range(0));
  opt.merge_duplicates = true;
  // Pre-draw raw specs once, dedup repeatedly.
  auto specs = pts::sample_probabilistic(noisy, opt, rng);
  for (auto _ : state) {
    auto copy = specs;
    auto out = pts::dedup(std::move(copy), true);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Dedup)->Arg(100)->Arg(1000);

void BM_SparseProbability(benchmark::State& state) {
  const NoisyCircuit noisy = make_program(16);
  std::vector<std::pair<std::size_t, std::size_t>> assignment{{0, 1}, {5, 2}};
  for (auto _ : state) {
    const double p = noisy.nominal_sparse_probability(assignment);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SparseProbability);

}  // namespace

BENCHMARK_MAIN();
