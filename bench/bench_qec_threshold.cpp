// QEC threshold sweep: logical error rate per (code, distance, physical
// noise strength) for the repetition code d ∈ {3, 5, 7} and the rotated
// surface code d = 3, decoded with the space-time union-find decoder
// (syndrome history + final readout over the detector graph) — the flagship
// "heavy traffic" workload of ROADMAP item 4 (thousands of noisy
// trajectories per point through the PTS → BE pipeline).
//
// The physics the curves must show: *sub-threshold suppression*. Below the
// threshold noise strength, a larger distance gives a lower logical error
// rate; above it, the extra qubits only add more noise, so the ordering
// flips. The d=3 vs d=5 repetition curves therefore cross, and this bench
// locates the crossing and exits nonzero in full mode if it is absent —
// the committed BENCH_qec_threshold.json is an acceptance artifact, not
// just timing.
//
// Execution: stabilizer backend (the workloads are Clifford with Pauli
// mixtures), probabilistic PTS with merged duplicates, streaming decode via
// qec::run_memory_point — so no point ever materialises its full record
// set. All channels are unitary mixtures, so every shot has weight 1 and
// the weighted rate is the raw failure fraction.
//
//   bench_qec_threshold [output.json] [--tiny]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/qec/metrics.hpp"

namespace {

using namespace ptsbe;

struct CurveSpec {
  const char* code;
  unsigned distance;
};

qec::LogicalErrorPoint sweep_point(const char* code, unsigned distance,
                                   unsigned rounds, double noise,
                                   std::size_t nsamples, std::uint64_t nshots,
                                   std::size_t threads) {
  qec::MemoryWorkloadConfig wcfg;
  wcfg.code = code;
  wcfg.distance = distance;
  wcfg.rounds = rounds;
  wcfg.noise = noise;
  const qec::MemoryWorkload workload = qec::make_memory_workload(wcfg);
  const auto decoder =
      qec::make_shot_decoder("st-union-find", workload.experiment);
  qec::MemoryRunConfig run;
  run.strategy = "probabilistic";
  run.strategy_config.nsamples = nsamples;
  run.strategy_config.nshots = nshots;
  run.backend = "stabilizer";
  run.threads = threads;
  run.seed = 0xC0DEC0DEULL + distance * 1000 +
             static_cast<std::uint64_t>(noise * 1e6);
  return qec::run_memory_point(workload, *decoder, run);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_qec_threshold.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;

  const unsigned rounds = 2;
  const std::size_t nsamples = tiny ? 120 : 12000;
  const std::uint64_t nshots = tiny ? 8 : 50;
  const std::size_t threads = 0;  // hardware concurrency (bit-identical
                                  // records at every thread count)
  const std::vector<CurveSpec> curves =
      tiny ? std::vector<CurveSpec>{{"repetition", 3}, {"repetition", 5}}
           : std::vector<CurveSpec>{{"repetition", 3},
                                    {"repetition", 5},
                                    {"repetition", 7},
                                    {"surface", 3}};
  const std::vector<double> noises =
      tiny ? std::vector<double>{0.01, 0.1}
           : std::vector<double>{0.003, 0.006, 0.012, 0.025, 0.05,
                                 0.09,  0.14,  0.18,  0.22};

  std::printf(
      "qec threshold sweep (space-time union-find decoder, stabilizer "
      "backend, "
      "rounds=%u, %zu x %llu shots/point, hardware_concurrency=%zu)\n\n",
      rounds, nsamples, static_cast<unsigned long long>(nshots), hardware);
  std::printf("%-12s %-4s %-8s %-12s %-10s %s\n", "code", "d", "noise",
              "rate", "failures", "95% Wilson CI");

  WallTimer timer;
  std::vector<qec::LogicalErrorPoint> points;
  for (const CurveSpec& curve : curves) {
    for (const double noise : noises) {
      const qec::LogicalErrorPoint p = sweep_point(
          curve.code, curve.distance, rounds, noise, nsamples, nshots,
          threads);
      std::printf("%-12s %-4u %-8.3f %-12.3e %-10llu [%.3e, %.3e]\n",
                  p.code.c_str(), p.distance, p.noise, p.logical_error_rate,
                  static_cast<unsigned long long>(p.failures), p.ci.lower,
                  p.ci.upper);
      points.push_back(p);
    }
  }
  const double seconds = timer.seconds();

  // Locate the d=3 / d=5 repetition crossing: the first adjacent noise pair
  // where the rate ordering flips from d5 < d3 (sub-threshold) to d5 >= d3.
  const auto rate_of = [&](unsigned distance, double noise) -> double {
    for (const qec::LogicalErrorPoint& p : points)
      if (p.code == "repetition" && p.distance == distance &&
          p.noise == noise)
        return p.logical_error_rate;
    return -1.0;
  };
  bool crossing_found = false;
  double crossing_low = 0.0, crossing_high = 0.0;
  bool suppressed_somewhere = false;
  for (std::size_t i = 0; i + 1 < noises.size(); ++i) {
    const double r3a = rate_of(3, noises[i]), r5a = rate_of(5, noises[i]);
    const double r3b = rate_of(3, noises[i + 1]),
                 r5b = rate_of(5, noises[i + 1]);
    if (r3a < 0 || r5a < 0 || r3b < 0 || r5b < 0) continue;
    if (r5a < r3a) suppressed_somewhere = true;
    if (r5a < r3a && r5b >= r3b) {
      crossing_found = true;
      crossing_low = noises[i];
      crossing_high = noises[i + 1];
      break;
    }
  }
  if (crossing_found)
    std::printf(
        "\nd3/d5 repetition crossing between noise %.3f and %.3f "
        "(sub-threshold suppression visible)\n",
        crossing_low, crossing_high);
  else
    std::printf("\nWARNING: no d3/d5 repetition crossing in the sweep%s\n",
                suppressed_somewhere ? " (suppression seen but no flip)"
                                     : "");

  std::FILE* os = std::fopen(out, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::fprintf(
      os,
      "{\n  \"bench\": \"qec_threshold\",\n"
      "  \"hardware_concurrency\": %zu,\n"
      "  \"decoder\": \"st-union-find\",\n"
      "  \"backend\": \"stabilizer\",\n"
      "  \"strategy\": \"probabilistic\",\n"
      "  \"rounds\": %u,\n"
      "  \"shots_per_point\": %llu,\n"
      "  \"seconds_total\": %.3f,\n"
      "  \"note\": \"circuit-level depolarizing noise after every gate, "
      "readout bit-flips at half strength; logical error rate of the "
      "transversal Z readout decoded by space-time union-find over the "
      "detector graph; below threshold the d=5 curve sits under d=3, "
      "above it the ordering flips\",\n"
      "  \"points\": [\n",
      hardware, rounds,
      static_cast<unsigned long long>(nsamples * nshots), seconds);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const qec::LogicalErrorPoint& p = points[i];
    std::fprintf(
        os,
        "    {\"code\": \"%s\", \"distance\": %u, \"rounds\": %u, "
        "\"noise\": %g, \"readout_noise\": %g, \"shots\": %llu, "
        "\"failures\": %llu, \"logical_error_rate\": %.6e, "
        "\"wilson_lower\": %.6e, \"wilson_upper\": %.6e}%s\n",
        p.code.c_str(), p.distance, p.rounds, p.noise, p.readout_noise,
        static_cast<unsigned long long>(p.shots),
        static_cast<unsigned long long>(p.failures), p.logical_error_rate,
        p.ci.lower, p.ci.upper, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(os,
               "  ],\n  \"repetition_d3_d5_crossing\": {\"found\": %s, "
               "\"noise_low\": %g, \"noise_high\": %g}\n}\n",
               crossing_found ? "true" : "false", crossing_low,
               crossing_high);
  std::fclose(os);
  std::printf("wrote %s\n", out);

  // The committed artifact must show the crossing; the tiny smoke only
  // checks that the machinery runs.
  if (!tiny && !crossing_found) {
    std::fprintf(stderr,
                 "FAIL: sub-threshold suppression crossing not visible\n");
    return 1;
  }
  return 0;
}
