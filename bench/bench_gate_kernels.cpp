// Amplitude-kernel microbenchmark + end-to-end kernel-dispatch comparison.
//
// Part 1 sweeps every compiled-and-supported kernel set (scalar, AVX2,
// AVX-512) over the gate classes the classifier routes — dense 1q at low /
// mid / high qubit positions (the three stride regimes), dense 2q, diagonal,
// permutation and controlled — and reports amplitudes touched per second.
// Because every set computes bit-identical amplitudes (tests/test_kernels
// pins this), the ratio is pure ISA throughput, not a numerics trade.
//
// Part 2 reruns the three ghz-chain workloads of bench_prefix_sharing
// (readout- / late- / gate-noise overlap levels) under the shared-prefix +
// fusion schedule with the kernel selection pinned to "scalar" and then to
// the best set the CPU supports — the end-to-end win of SIMD dispatch on
// the full trajectory engine, with scheduling gains factored out.
//
//   bench_gate_kernels [output.json] [--tiny]
//
// --tiny shrinks every dimension so the ctest smoke can exercise the JSON
// emitter in well under a second.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/aligned.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/kernels/kernel_set.hpp"
#include "ptsbe/noise/channels.hpp"

namespace {

using namespace ptsbe;

struct KernelRow {
  std::string op;
  std::string set;
  unsigned qubits = 0;
  double amps_per_second = 0.0;
  double speedup_vs_scalar = 1.0;
};

struct WorkloadRow {
  std::string workload;
  unsigned qubits = 0;
  std::size_t trajectories = 0;
  double scalar_seconds = 0.0;
  double dispatched_seconds = 0.0;
  double speedup = 0.0;
};

std::vector<KernelRow> kernel_rows;
std::vector<WorkloadRow> workload_rows;

AlignedVector<cplx> random_state(unsigned n, std::uint64_t seed) {
  RngStream rng(seed);
  AlignedVector<cplx> amp(std::uint64_t{1} << n);
  for (cplx& a : amp) a = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return amp;
}

/// Time `reps` applications of one prepared gate with `set`; returns
/// amplitudes touched per second (dim per sweep — every kernel reads and
/// writes the full array except the controlled one, which we still count at
/// dim to keep rows comparable).
double time_kernel(const kernels::KernelSet& set, AlignedVector<cplx>& amp,
                   const kernels::PreparedGate& g, std::size_t reps) {
  // Warm-up sweep: faults pages and pulls the array through the cache
  // hierarchy once before timing.
  kernels::apply_prepared(set, amp.data(), amp.size(), g);
  WallTimer timer;
  for (std::size_t r = 0; r < reps; ++r)
    kernels::apply_prepared(set, amp.data(), amp.size(), g);
  const double seconds = timer.seconds();
  return static_cast<double>(amp.size()) * static_cast<double>(reps) / seconds;
}

void run_kernel_case(const std::string& op, const Matrix& m,
                     std::vector<unsigned> qubits, unsigned n,
                     std::size_t reps) {
  const kernels::PreparedGate g = kernels::prepare_gate(m, qubits);
  double scalar_rate = 0.0;
  for (const kernels::KernelSet* set : kernels::available_sets()) {
    AlignedVector<cplx> amp = random_state(n, 99);
    KernelRow row;
    row.op = op;
    row.set = set->name;
    row.qubits = n;
    row.amps_per_second = time_kernel(*set, amp, g, reps);
    if (row.set == "scalar") scalar_rate = row.amps_per_second;
    row.speedup_vs_scalar =
        scalar_rate > 0.0 ? row.amps_per_second / scalar_rate : 1.0;
    std::printf("%-22s %-8s %8.1f Mamps/s  %5.2fx\n", op.c_str(), row.set.c_str(),
                row.amps_per_second / 1e6, row.speedup_vs_scalar);
    kernel_rows.push_back(std::move(row));
  }
}

/// Same dressed-GHZ workloads as bench_prefix_sharing, so the two JSON
/// artifacts describe the same programs.
NoisyCircuit ghz_workload(unsigned n, const std::string& overlap,
                          unsigned late_cx) {
  Circuit c(n);
  for (unsigned q = 0; q < n; ++q)
    c.ry(q, 0.11 * (q + 1)).rz(q, 0.07 * (q + 1));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q)
    c.rz(q, 0.05 * (q + 1)).ry(q, 0.13 * (q + 1));
  c.measure_all();
  NoiseModel noise;
  if (overlap == "readout") {
    noise.add_measurement_noise(channels::bit_flip(0.15));
  } else if (overlap == "late") {
    const unsigned first = n - 1 > late_cx ? n - 1 - late_cx : 0;
    for (unsigned q = first; q + 1 < n; ++q)
      noise.add_gate_noise_on("cx", {q, q + 1}, channels::depolarizing2(0.12));
    noise.add_measurement_noise(channels::bit_flip(0.02));
  } else {
    noise.add_all_gate_noise(channels::depolarizing(0.01));
  }
  return noise.apply(c);
}

/// Best-of-`repeats` wall clock: one trajectory sweep is seconds-long, so a
/// single sample is hostage to scheduler and page-cache noise; the minimum
/// is the standard low-variance estimator for a fixed workload.
double time_pinned(const NoisyCircuit& noisy,
                   const std::vector<TrajectorySpec>& specs,
                   const char* kernel, std::size_t repeats) {
  kernels::set_active(kernel);
  be::Options options;
  options.schedule = be::Schedule::kSharedPrefix;
  options.config.fuse_gates = true;
  double best = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    WallTimer timer;
    const be::Result result = be::execute(noisy, specs, options);
    const double seconds = timer.seconds();
    (void)result;
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

void run_workload_case(const std::string& label, const NoisyCircuit& noisy,
                       std::size_t trajectories, std::uint64_t shots,
                       std::size_t repeats) {
  RngStream rng(1234);
  pts::Options opt;
  opt.nsamples = trajectories;
  opt.nshots = shots;
  opt.merge_duplicates = true;
  const std::vector<TrajectorySpec> specs =
      pts::sample_probabilistic(noisy, opt, rng);

  WorkloadRow row;
  row.workload = label;
  row.qubits = noisy.num_qubits();
  row.trajectories = specs.size();
  row.scalar_seconds = time_pinned(noisy, specs, "scalar", repeats);
  row.dispatched_seconds = time_pinned(
      noisy, specs, kernels::best_available_set().name, repeats);
  kernels::set_active("auto");
  row.speedup = row.scalar_seconds / row.dispatched_seconds;
  std::printf("%-40s traj=%5zu  scalar %8.3fs  %s %8.3fs  %5.2fx\n",
              label.c_str(), row.trajectories, row.scalar_seconds,
              kernels::best_available_set().name, row.dispatched_seconds,
              row.speedup);
  workload_rows.push_back(std::move(row));
}

void write_json(const char* path) {
  std::FILE* os = std::fopen(path, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(os,
               "{\n  \"bench\": \"gate_kernels\",\n  \"dispatch\": \"%s\",\n"
               "  \"kernel_rows\": [\n",
               kernels::describe_dispatch().c_str());
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& r = kernel_rows[i];
    std::fprintf(os,
                 "    {\"op\": \"%s\", \"set\": \"%s\", \"qubits\": %u, "
                 "\"amps_per_second\": %.3e, \"speedup_vs_scalar\": %.3f}%s\n",
                 r.op.c_str(), r.set.c_str(), r.qubits, r.amps_per_second,
                 r.speedup_vs_scalar, i + 1 < kernel_rows.size() ? "," : "");
  }
  std::fprintf(os, "  ],\n  \"workload_rows\": [\n");
  for (std::size_t i = 0; i < workload_rows.size(); ++i) {
    const WorkloadRow& r = workload_rows[i];
    std::fprintf(
        os,
        "    {\"workload\": \"%s\", \"qubits\": %u, \"trajectories\": %zu, "
        "\"scalar_seconds\": %.4f, \"dispatched_seconds\": %.4f, "
        "\"speedup\": %.3f}%s\n",
        r.workload.c_str(), r.qubits, r.trajectories, r.scalar_seconds,
        r.dispatched_seconds, r.speedup,
        i + 1 < workload_rows.size() ? "," : "");
  }
  std::fprintf(os, "  ]\n}\n");
  const bool ok = std::ferror(os) == 0;
  if (std::fclose(os) != 0 || !ok) {
    std::fprintf(stderr, "error while writing %s\n", path);
    return;
  }
  std::printf("\nwrote %s (%zu kernel rows, %zu workload rows)\n", path,
              kernel_rows.size(), workload_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_gate_kernels.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

  std::printf("kernel dispatch: %s\n\n", kernels::describe_dispatch().c_str());

  const unsigned n = tiny ? 8 : 18;
  const std::size_t reps = tiny ? 4 : 96;
  RngStream mats(7);
  Matrix u1(2, 2), u2(4, 4);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      u1(r, c) = cplx(mats.uniform(0.1, 1.0), mats.uniform(0.1, 1.0));
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      u2(r, c) = cplx(mats.uniform(0.1, 1.0), mats.uniform(0.1, 1.0));

  std::printf("per-kernel throughput (n=%u, %zu sweeps per timing)\n\n", n,
              reps);
  run_kernel_case("dense1q/low(q=0)", u1, {0}, n, reps);
  run_kernel_case("dense1q/mid", u1, {n / 2}, n, reps);
  run_kernel_case("dense1q/high", u1, {n - 1}, n, reps);
  run_kernel_case("dense2q", u2, {n / 2, n / 2 + 1}, n, reps);
  run_kernel_case("diag1q(S)", gates::S(), {n / 2}, n, reps * 2);
  run_kernel_case("diag2q(CZ)", gates::CZ(), {1, n - 1}, n, reps * 2);
  run_kernel_case("perm1q(X)", gates::X(), {n / 2}, n, reps * 2);
  run_kernel_case("ctrl1q(CX)", gates::CX(), {0, n - 1}, n, reps * 2);

  const std::uint64_t shots = tiny ? 8 : 64;
  const std::size_t trajectories = tiny ? 20 : 500;
  const std::size_t repeats = tiny ? 1 : 3;
  std::printf("\nend-to-end (shared-prefix + fusion, statevector backend, "
              "best of %zu)\n\n", repeats);
  run_workload_case("ghz" + std::to_string(n) + "/high-overlap(readout-noise)",
                    ghz_workload(n, "readout", 0), trajectories, shots, repeats);
  run_workload_case("ghz" + std::to_string(n) + "/high-overlap(late-noise)",
                    ghz_workload(n, "late", 4), trajectories, shots, repeats);
  run_workload_case("ghz" + std::to_string(n) + "/moderate-overlap(gate-noise)",
                    ghz_workload(n, "all", 0), trajectories, shots, repeats);

  write_json(out);
  return 0;
}
