// Figure 4 reproduction: shots/second (left axis) and unique-shot fraction
// (right axis) as a function of total shots sampled per Kraus-operator set,
// statevector backend.
//
// Paper setup: 35-qubit Steane-encoded MSD circuit on 4×H100, ~10^6×
// efficiency gain at 10^6–10^7 shots/batch, unique fraction > 0.5 at 10^6
// shots. Here (single CPU core — see DESIGN.md §1) the same code path runs
// the bare 5-qubit MSD and an 18-qubit surrogate; the *shape* — near-linear
// shots/s growth until sampling rivals preparation, then saturation — is the
// reproduced result. The expected unique-fraction behaviour also reproduces:
// it collapses for small state spaces and stays high while the batch is
// small relative to the effective outcome space.

#include <cstdio>
#include <string>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "workloads.hpp"

namespace {

void sweep(const char* label, const ptsbe::NoisyCircuit& noisy,
           std::size_t max_batch, std::size_t reps) {
  using namespace ptsbe;
  std::printf("\n== %s (%u qubits, %zu noise sites) ==\n", label,
              noisy.num_qubits(), noisy.num_sites());
  std::printf("%12s %14s %14s %10s %9s\n", "shots/batch", "shots/s",
              "speedup-vs-1", "unique", "prep-frac");

  // One fixed error trajectory per rep keeps preparation cost honest.
  RngStream rng(11);
  pts::Options opt;
  opt.nsamples = reps;
  opt.nshots = 1;
  auto specs = pts::sample_probabilistic(noisy, opt, rng);
  if (specs.empty()) specs.push_back(TrajectorySpec{});
  double rate_at_1 = 0.0;
  for (std::size_t batch = 1; batch <= max_batch; batch *= 10) {
    for (auto& s : specs) s.shots = batch;
    be::Options exec;
    WallTimer t;
    const be::Result result = be::execute(noisy, specs, exec);
    const double secs = t.seconds();
    const double rate = static_cast<double>(result.total_shots()) / secs;
    if (batch == 1) rate_at_1 = rate;
    std::printf("%12zu %14.0f %14.1f %10.4f %9.3f\n", batch, rate,
                rate / rate_at_1, result.unique_shot_fraction(),
                result.prepare_seconds /
                    (result.prepare_seconds + result.sample_seconds));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = argc > 1 && std::string(argv[1]) == "--large";
  using namespace ptsbe;

  // (a) The exact paper protocol at bare scale.
  sweep("bare 5-qubit MSD", bench::noisy_bare_msd(0.01), 1000000, 4);

  // (b) 18-qubit surrogate: preparation is ~10^4× costlier than on 5 qubits,
  // so the batching gain curve extends much further before saturating.
  sweep("18-qubit surrogate", bench::surrogate_circuit(18, 20, 0.005),
        large ? 1000000 : 100000, 2);

  std::printf(
      "\nPaper shape check: shots/s rises ~linearly with batch size while\n"
      "preparation dominates (prep-frac near 1), then saturates once\n"
      "sampling dominates; unique fraction decays once batches approach the\n"
      "effective outcome-space size (2^35 in the paper, hence >0.5 at 1e6).\n");
  return 0;
}
