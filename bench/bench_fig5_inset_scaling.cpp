// Figure 5 inset reproduction: shot-collection efficiency vs number of
// devices.
//
// The paper's inset shows near-linear *intra*-trajectory scaling with GPU
// count, and notes inter-trajectory scaling is linear by definition
// (embarrassing parallelism). Our substitution maps devices to worker
// threads (DevicePool) and measures the inter-trajectory layer, which is
// the one PTSBE itself contributes. NOTE: this container exposes a single
// CPU core, so the measured curve is flat — the bench still demonstrates
// correct parallel decomposition (per-trajectory Philox substreams keep
// results identical at every device count) and reports the scheduling
// overhead, which is the honest measurement available on this host.

#include <cstdio>
#include <thread>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "workloads.hpp"

int main() {
  using namespace ptsbe;
  const NoisyCircuit noisy =
      bench::noisy_msd_preparation(qec::steane(), 0.002);

  RngStream rng(31);
  pts::Options opt;
  opt.nsamples = 16;  // 16 independent trajectories to farm out
  opt.nshots = 200;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);

  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %10s %12s\n", "devices", "seconds", "speedup",
              "identical");

  double t1 = 0.0;
  be::Result reference;
  for (std::size_t devices : {1u, 2u, 4u, 8u}) {
    be::Options exec;
    exec.backend = "mps";
    exec.config.mps.max_bond = 64;
    exec.num_devices = devices;
    WallTimer t;
    const be::Result result = be::execute(noisy, specs, exec);
    const double secs = t.seconds();
    if (devices == 1) {
      t1 = secs;
      reference = result;
    }
    bool identical = result.batches.size() == reference.batches.size();
    for (std::size_t i = 0; identical && i < result.batches.size(); ++i)
      identical = result.batches[i].records == reference.batches[i].records;
    std::printf("%8zu %12.3f %10.2f %12s\n", devices, secs, t1 / secs,
                identical ? "yes" : "NO");
  }
  std::printf(
      "\nOn a multi-core host the speedup column approaches the device count\n"
      "(trajectories are independent); identical=yes shows determinism is\n"
      "preserved under any scheduling, which is what counter-based RNG\n"
      "substreams buy (cuRAND-style, DESIGN.md section 4).\n");
  return 0;
}
