// Dataset-cost reproduction (§4 text): the paper collects 10^12 statevector
// shots in 4,445 H100-hours (10^6 shots/trajectory) and 10^6 tensor-network
// shots in 2,223 H100-hours (100 shots/trajectory) on Eos. This bench
// measures this host's sustained PTSBE throughput on the scaled workloads
// and extrapolates the wall-clock cost of the paper's dataset sizes, the
// same rate × time arithmetic the paper's GPU-hour figures come from.

#include <cstdio>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pts.hpp"
#include "workloads.hpp"

namespace {

double sustained_rate(const ptsbe::NoisyCircuit& noisy, bool tensor_net,
                      std::size_t trajectories, std::size_t shots_per_traj) {
  using namespace ptsbe;
  RngStream rng(51);
  pts::Options opt;
  opt.nsamples = trajectories;
  opt.nshots = shots_per_traj;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  be::Options exec;
  if (tensor_net) {
    exec.backend = "mps";
    exec.config.mps.max_bond = 64;
  }
  WallTimer t;
  const auto result = be::execute(noisy, specs, exec);
  return static_cast<double>(result.total_shots()) / t.seconds();
}

}  // namespace

int main() {
  using namespace ptsbe;
  std::printf("%-42s %14s %18s\n", "workload", "shots/s", "paper-size cost");

  {
    const double rate =
        sustained_rate(bench::noisy_bare_msd(0.01), false, 4, 100000);
    const double hours = 1e12 / rate / 3600.0;
    std::printf("%-42s %14.0f %15.1f h\n",
                "statevector MSD (1e12-shot corpus)", rate, hours);
  }
  {
    const double rate = sustained_rate(
        bench::noisy_msd_preparation(qec::steane(), 0.002), true, 2, 100);
    const double hours = 1e6 / rate / 3600.0;
    std::printf("%-42s %14.0f %15.1f h\n",
                "tensor-net MSD prep (1e6-shot corpus)", rate, hours);
  }

  // Also demonstrate the persistence path at rate: write a binary chunk.
  {
    const NoisyCircuit noisy = bench::noisy_bare_msd(0.01);
    RngStream rng(52);
    pts::Options opt;
    opt.nsamples = 8;
    opt.nshots = 50000;
    opt.merge_duplicates = true;
    const auto specs = pts::sample_probabilistic(noisy, opt, rng);
    const auto result = be::execute(noisy, specs);
    WallTimer t;
    dataset::write_binary("/tmp/ptsbe_bench_chunk.bin", result);
    std::printf("%-42s %14.0f (records/s to disk)\n",
                "binary dataset writer", result.total_shots() / t.seconds());
    std::remove("/tmp/ptsbe_bench_chunk.bin");
  }

  std::printf(
      "\nContext: the paper's 4,445 / 2,223 H100-hour figures are this same\n"
      "extrapolation on its hardware; absolute rates differ (1 CPU core vs\n"
      "an Eos SuperPod), the amortisation arithmetic is identical.\n");
  return 0;
}
