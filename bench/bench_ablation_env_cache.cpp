// Ablation: cached environments in batched tensor-network sampling (the
// paper's §4 discussion — "the current sampling algorithm requires nearly
// all of the tensor network contraction process to reoccur for each
// sample"). Our MPS sampler canonicalises the chain once per batch (the
// cached environment) and draws each shot at O(n·χ²); the un-cached
// baseline re-canonicalises per shot, which is the analogue of per-sample
// re-contraction. The gap between the two columns is exactly the speedup
// opportunity the paper attributes to contraction-path/intermediate
// caching.

#include <cstdio>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/qec/codes.hpp"
#include "ptsbe/qec/distillation.hpp"
#include "ptsbe/tensornet/mps.hpp"

int main() {
  using namespace ptsbe;
  for (const auto& [label, circuit] :
       {std::pair{"35-qubit MSD preparation",
                  qec::msd_preparation_circuit(qec::steane())},
        std::pair{"encoded T block (25 qubits, d=5)",
                  qec::encoded_t_state_circuit(qec::rotated_surface_code(5))}}) {
    MpsConfig cfg;
    cfg.max_bond = 64;
    MpsState mps(circuit.num_qubits(), cfg);
    mps.apply_circuit(circuit);
    std::printf("== %s (chi_max = %zu) ==\n", label, mps.max_bond_dim());
    std::printf("%12s %16s %16s %10s\n", "shots", "cached shots/s",
                "uncached shots/s", "ratio");
    RngStream rng(71);
    for (const std::size_t shots : {10ul, 100ul, 1000ul}) {
      WallTimer t;
      (void)mps.sample_shots(shots, rng);
      const double cached = shots / t.seconds();
      // Un-cached: bounded probe, scaled.
      const std::size_t probe = std::min<std::size_t>(shots, 20);
      t.reset();
      for (std::size_t i = 0; i < probe; ++i) (void)mps.sample_one_uncached(rng);
      const double uncached = probe / t.seconds();
      std::printf("%12zu %16.0f %16.0f %9.1fx\n", shots, cached, uncached,
                  cached / uncached);
    }
  }
  std::printf(
      "\nThe cached column amortises one full-chain canonicalisation over\n"
      "the batch — the mechanism behind Fig. 5's batched gain and the\n"
      "feature the paper requests from future cuTensorNet releases.\n");
  return 0;
}
