// Headline speedup reproduction: PTSBE vs conventional trajectory
// simulation (Algorithm 1) at matched total shot counts.
//
// The paper reports up to 10^6× (statevector, 10^6-shot batches) and 16×
// (tensor network, 10^3-shot batches). The mechanism: Algorithm 1 pays one
// O(2^n) state preparation *per shot*; PTSBE pays one per *trajectory* and
// amortises it over the batch. The measured ratio should therefore track
// the batch size until bulk sampling itself dominates.

#include <cstdio>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/trajectory/trajectory.hpp"
#include "workloads.hpp"

namespace {

void compare(const char* label, const ptsbe::NoisyCircuit& noisy,
             bool tensor_net, std::size_t trajectories,
             std::size_t max_batch) {
  using namespace ptsbe;
  std::printf("\n== %s ==\n", label);
  std::printf("%12s %16s %16s %10s\n", "shots/traj", "baseline shots/s",
              "PTSBE shots/s", "speedup");
  for (std::size_t batch = 1; batch <= max_batch; batch *= 10) {
    // Baseline: Algorithm 1, one prep per shot, same total shots.
    const std::size_t total = trajectories * batch;
    double base_rate;
    {
      // Time a bounded number of baseline trajectories and scale.
      const std::size_t probe = std::min<std::size_t>(total, 50);
      RngStream rng(41);
      WallTimer t;
      if (tensor_net) {
        MpsConfig cfg;
        cfg.max_bond = 64;
        (void)traj::run_mps(noisy, probe, rng, cfg);
      } else {
        (void)traj::run_statevector(noisy, probe, rng);
      }
      base_rate = static_cast<double>(probe) / t.seconds();
    }
    // PTSBE: `trajectories` preps, `batch` shots each.
    double pts_rate;
    {
      RngStream rng(42);
      pts::Options opt;
      opt.nsamples = trajectories;
      opt.nshots = batch;
      opt.merge_duplicates = true;
      const auto specs = pts::sample_probabilistic(noisy, opt, rng);
      be::Options exec;
      if (tensor_net) {
        exec.backend = "mps";
        exec.mps.max_bond = 64;
      }
      WallTimer t;
      const auto result = be::execute(noisy, specs, exec);
      pts_rate = static_cast<double>(result.total_shots()) / t.seconds();
    }
    std::printf("%12zu %16.0f %16.0f %9.1fx\n", batch, base_rate, pts_rate,
                pts_rate / base_rate);
  }
}

}  // namespace

int main() {
  using namespace ptsbe;
  compare("statevector: bare 5-qubit MSD", bench::noisy_bare_msd(0.01),
          false, 4, 100000);
  compare("statevector: 16-qubit surrogate",
          bench::surrogate_circuit(16, 16, 0.005), false, 2, 10000);
  compare("tensor network: 35-qubit MSD preparation",
          bench::noisy_msd_preparation(qec::steane(), 0.002), true, 2, 1000);
  std::printf(
      "\nPaper shape check: speedup ≈ shots-per-trajectory until sampling\n"
      "dominates (statevector: ~linear to 1e5+, matching the paper's 1e6x\n"
      "at 1e6-1e7 shots on the 35-qubit footprint; tensor network: smaller,\n"
      "~16x regime at 1e3 shots).\n");
  return 0;
}
