// Headline speedup reproduction: PTSBE vs conventional trajectory
// simulation (Algorithm 1) at matched total shot counts.
//
// The paper reports up to 10^6× (statevector, 10^6-shot batches) and 16×
// (tensor network, 10^3-shot batches). The mechanism: Algorithm 1 pays one
// O(2^n) state preparation *per shot*; PTSBE pays one per *trajectory* and
// amortises it over the batch. The measured ratio should therefore track
// the batch size until bulk sampling itself dominates.

#include <cstdio>
#include <string>
#include <vector>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/trajectory/trajectory.hpp"
#include "workloads.hpp"

namespace {

/// One measured row, kept for the machine-readable export that feeds the
/// perf-trajectory tooling.
struct Row {
  std::string workload;
  std::size_t shots_per_trajectory = 0;
  double baseline_shots_per_second = 0.0;
  double ptsbe_shots_per_second = 0.0;
  double speedup = 0.0;
};

std::vector<Row>& rows() {
  static std::vector<Row> all;
  return all;
}

void compare(const char* label, const ptsbe::NoisyCircuit& noisy,
             bool tensor_net, std::size_t trajectories,
             std::size_t max_batch) {
  using namespace ptsbe;
  std::printf("\n== %s ==\n", label);
  std::printf("%12s %16s %16s %10s\n", "shots/traj", "baseline shots/s",
              "PTSBE shots/s", "speedup");
  for (std::size_t batch = 1; batch <= max_batch; batch *= 10) {
    // Baseline: Algorithm 1, one prep per shot, same total shots.
    const std::size_t total = trajectories * batch;
    double base_rate;
    {
      // Time a bounded number of baseline trajectories and scale.
      const std::size_t probe = std::min<std::size_t>(total, 50);
      RngStream rng(41);
      WallTimer t;
      if (tensor_net) {
        MpsConfig cfg;
        cfg.max_bond = 64;
        (void)traj::run_mps(noisy, probe, rng, cfg);
      } else {
        (void)traj::run_statevector(noisy, probe, rng);
      }
      base_rate = static_cast<double>(probe) / t.seconds();
    }
    // PTSBE: `trajectories` preps, `batch` shots each.
    double pts_rate;
    {
      RngStream rng(42);
      pts::Options opt;
      opt.nsamples = trajectories;
      opt.nshots = batch;
      opt.merge_duplicates = true;
      const auto specs = pts::sample_probabilistic(noisy, opt, rng);
      be::Options exec;
      if (tensor_net) {
        exec.backend = "mps";
        exec.config.mps.max_bond = 64;
      }
      WallTimer t;
      const auto result = be::execute(noisy, specs, exec);
      pts_rate = static_cast<double>(result.total_shots()) / t.seconds();
    }
    std::printf("%12zu %16.0f %16.0f %9.1fx\n", batch, base_rate, pts_rate,
                pts_rate / base_rate);
    rows().push_back(
        {label, batch, base_rate, pts_rate, pts_rate / base_rate});
  }
}

/// Emit every measured row as JSON so the perf trajectory is scriptable
/// (one object per row; schema mirrors the printed table).
void write_json(const char* path) {
  std::FILE* os = std::fopen(path, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(os, "{\n  \"bench\": \"speedup_headline\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows().size(); ++i) {
    const Row& r = rows()[i];
    std::fprintf(os,
                 "    {\"workload\": \"%s\", \"shots_per_trajectory\": %zu, "
                 "\"baseline_shots_per_second\": %.1f, "
                 "\"ptsbe_shots_per_second\": %.1f, \"speedup\": %.3f}%s\n",
                 r.workload.c_str(), r.shots_per_trajectory,
                 r.baseline_shots_per_second, r.ptsbe_shots_per_second,
                 r.speedup, i + 1 < rows().size() ? "," : "");
  }
  std::fprintf(os, "  ]\n}\n");
  const bool ok = std::ferror(os) == 0;
  if (std::fclose(os) != 0 || !ok) {
    std::fprintf(stderr, "error while writing %s\n", path);
    return;
  }
  std::printf("\nwrote %s (%zu rows)\n", path, rows().size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptsbe;
  compare("statevector: bare 5-qubit MSD", bench::noisy_bare_msd(0.01),
          false, 4, 100000);
  compare("statevector: 16-qubit surrogate",
          bench::surrogate_circuit(16, 16, 0.005), false, 2, 10000);
  compare("tensor network: 35-qubit MSD preparation",
          bench::noisy_msd_preparation(qec::steane(), 0.002), true, 2, 1000);
  std::printf(
      "\nPaper shape check: speedup ≈ shots-per-trajectory until sampling\n"
      "dominates (statevector: ~linear to 1e5+, matching the paper's 1e6x\n"
      "at 1e6-1e7 shots on the 35-qubit footprint; tensor network: smaller,\n"
      "~16x regime at 1e3 shots).\n");
  write_json(argc > 1 ? argv[1] : "BENCH_headline.json");
  return 0;
}
