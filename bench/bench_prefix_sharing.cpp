// Shared-prefix scheduling + gate fusion vs the independent schedule.
//
// Pre-sampled trajectories are *almost identical*: they share the noiseless
// circuit and differ in a handful of sampled noise branches. The
// shared-prefix scheduler simulates every common prefix once and forks the
// state at the first deviating branch; the fusion pass additionally
// collapses runs of same-support gates into single sweeps. Both are pure
// optimisations: at a fixed fusion setting, records are bit-for-bit
// identical to the independent schedule (asserted in
// tests/test_scheduler.cpp and re-checked here via shot-count invariants);
// fusion itself is equivalent up to floating-point reassociation.
//
// Workloads sweep trajectory count and *overlap level* (where in the
// circuit the noise lives): noise concentrated late in the program means
// long shared prefixes and large wins; noise spread over every gate means
// prefixes diverge early and the win shrinks toward the fusion-only gain.
//
//   bench_prefix_sharing [output.json] [--tiny]
//
// --tiny shrinks every dimension so the ctest smoke can exercise the JSON
// emitter in well under a second.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"

namespace {

using namespace ptsbe;

struct Row {
  std::string workload;
  unsigned qubits = 0;
  std::size_t trajectories = 0;
  std::uint64_t shots_per_trajectory = 0;
  double mean_error_weight = 0.0;
  double independent_seconds = 0.0;
  double independent_fused_seconds = 0.0;
  double shared_seconds = 0.0;
  double shared_fused_seconds = 0.0;
  double speedup_fused = 0.0;
  double speedup_shared = 0.0;
  double speedup_shared_fused = 0.0;
};

std::vector<Row>& rows() {
  static std::vector<Row> all;
  return all;
}

double time_execute(const NoisyCircuit& noisy,
                    const std::vector<TrajectorySpec>& specs,
                    be::Schedule schedule, bool fuse,
                    std::uint64_t* total_shots = nullptr) {
  be::Options options;
  options.schedule = schedule;
  options.config.fuse_gates = fuse;
  WallTimer timer;
  const be::Result result = be::execute(noisy, specs, options);
  const double seconds = timer.seconds();
  if (total_shots != nullptr) *total_shots = result.total_shots();
  return seconds;
}

void run_case(const std::string& label, const NoisyCircuit& noisy,
              std::size_t trajectories, std::uint64_t shots) {
  RngStream rng(1234);
  pts::Options opt;
  opt.nsamples = trajectories;
  opt.nshots = shots;
  opt.merge_duplicates = true;
  const std::vector<TrajectorySpec> specs =
      pts::sample_probabilistic(noisy, opt, rng);

  double weight = 0.0;
  for (const TrajectorySpec& spec : specs)
    weight += static_cast<double>(spec.error_weight());

  Row row;
  row.workload = label;
  row.qubits = noisy.num_qubits();
  row.trajectories = specs.size();
  row.shots_per_trajectory = shots;
  row.mean_error_weight = specs.empty() ? 0.0 : weight / specs.size();

  std::uint64_t shots_independent = 0, shots_shared = 0, shots_fused = 0;
  row.independent_seconds = time_execute(
      noisy, specs, be::Schedule::kIndependent, false, &shots_independent);
  row.independent_fused_seconds =
      time_execute(noisy, specs, be::Schedule::kIndependent, true);
  row.shared_seconds = time_execute(noisy, specs, be::Schedule::kSharedPrefix,
                                    false, &shots_shared);
  row.shared_fused_seconds = time_execute(
      noisy, specs, be::Schedule::kSharedPrefix, true, &shots_fused);
  if (shots_shared != shots_independent || shots_fused != shots_independent)
    std::fprintf(stderr, "WARNING: shot totals diverged on %s\n",
                 label.c_str());
  row.speedup_fused =
      row.independent_seconds / row.independent_fused_seconds;
  row.speedup_shared = row.independent_seconds / row.shared_seconds;
  row.speedup_shared_fused =
      row.independent_seconds / row.shared_fused_seconds;
  std::printf("%-36s n=%2u traj=%5zu w=%4.2f  indep %8.3fs  +fusion %5.2fx  "
              "shared %5.2fx  shared+fusion %5.2fx\n",
              label.c_str(), row.qubits, row.trajectories,
              row.mean_error_weight, row.independent_seconds, row.speedup_fused,
              row.speedup_shared, row.speedup_shared_fused);
  rows().push_back(row);
}

/// GHZ chain with noise placement controlling the overlap level.
///  - "readout": bit flips on measurement only — every trajectory shares
///               the *entire* gate sweep (readout-error-dominated regime).
///  - "late":    two-qubit depolarizing on the last `late_cx` entanglers
///               (plus light readout flips) — long shared prefixes.
///  - "all":     one-qubit depolarizing after every gate — prefixes can
///               diverge anywhere in the program.
NoisyCircuit ghz_workload(unsigned n, const std::string& overlap,
                          unsigned late_cx) {
  // "Dressed" GHZ: a local-rotation layer before and after the entangling
  // chain. The dressing is what gate fusion feeds on — each ry·rz pair
  // collapses to one sweep and then folds into the neighbouring cx.
  Circuit c(n);
  for (unsigned q = 0; q < n; ++q)
    c.ry(q, 0.11 * (q + 1)).rz(q, 0.07 * (q + 1));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q)
    c.rz(q, 0.05 * (q + 1)).ry(q, 0.13 * (q + 1));
  c.measure_all();
  NoiseModel noise;
  if (overlap == "readout") {
    noise.add_measurement_noise(channels::bit_flip(0.15));
  } else if (overlap == "late") {
    const unsigned first = n - 1 > late_cx ? n - 1 - late_cx : 0;
    for (unsigned q = first; q + 1 < n; ++q)
      noise.add_gate_noise_on("cx", {q, q + 1}, channels::depolarizing2(0.12));
    noise.add_measurement_noise(channels::bit_flip(0.02));
  } else {
    noise.add_all_gate_noise(channels::depolarizing(0.01));
  }
  return noise.apply(c);
}

void write_json(const char* path) {
  std::FILE* os = std::fopen(path, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(os, "{\n  \"bench\": \"prefix_sharing\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows().size(); ++i) {
    const Row& r = rows()[i];
    std::fprintf(
        os,
        "    {\"workload\": \"%s\", \"qubits\": %u, \"trajectories\": %zu, "
        "\"shots_per_trajectory\": %llu, \"mean_error_weight\": %.3f, "
        "\"independent_seconds\": %.4f, \"independent_fused_seconds\": %.4f, "
        "\"shared_prefix_seconds\": %.4f, "
        "\"shared_prefix_fused_seconds\": %.4f, \"speedup_fused\": %.3f, "
        "\"speedup_shared_prefix\": %.3f, "
        "\"speedup_shared_prefix_fused\": %.3f}%s\n",
        r.workload.c_str(), r.qubits, r.trajectories,
        static_cast<unsigned long long>(r.shots_per_trajectory),
        r.mean_error_weight, r.independent_seconds,
        r.independent_fused_seconds, r.shared_seconds, r.shared_fused_seconds,
        r.speedup_fused, r.speedup_shared, r.speedup_shared_fused,
        i + 1 < rows().size() ? "," : "");
  }
  std::fprintf(os, "  ]\n}\n");
  const bool ok = std::ferror(os) == 0;
  if (std::fclose(os) != 0 || !ok) {
    std::fprintf(stderr, "error while writing %s\n", path);
    return;
  }
  std::printf("\nwrote %s (%zu rows)\n", path, rows().size());
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_prefix_sharing.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

  const unsigned n = tiny ? 6 : 18;
  const std::uint64_t shots = tiny ? 8 : 64;
  const std::vector<std::size_t> counts =
      tiny ? std::vector<std::size_t>{20}
           : std::vector<std::size_t>{100, 500, 1000};

  std::printf("schedule comparison (statevector backend)\n\n");
  for (std::size_t trajectories : counts) {
    run_case("ghz" + std::to_string(n) + "/high-overlap(readout-noise)",
             ghz_workload(n, "readout", 0), trajectories, shots);
    run_case("ghz" + std::to_string(n) + "/high-overlap(late-noise)",
             ghz_workload(n, "late", 4), trajectories, shots);
    run_case("ghz" + std::to_string(n) + "/moderate-overlap(gate-noise)",
             ghz_workload(n, "all", 0), trajectories, shots);
  }
  std::printf(
      "\nMechanism: the scheduler simulates each shared trajectory prefix\n"
      "once and forks at the first deviating branch, so the win tracks how\n"
      "late in the program trajectories deviate; gate fusion stacks on top\n"
      "by collapsing same-support gate runs into single sweeps. At a fixed\n"
      "fusion setting records are bit-for-bit identical across schedules;\n"
      "fusion is equivalent up to floating-point reassociation.\n");
  write_json(out);
  return 0;
}
