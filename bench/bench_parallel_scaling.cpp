// Multi-threaded trajectory execution: wall-clock scaling and the
// determinism contract, measured together.
//
// The work-stealing TrajectoryExecutor (be::Options::threads) shards
// independent-schedule specs across worker threads and parallelises the
// shared-prefix schedule across disjoint trie subtrees (fork points spawn
// tasks). Because every spec samples from its own Philox substream and
// preparation consumes no randomness, records — and dataset bytes — are
// bit-for-bit identical at every thread count; this bench *verifies* that
// on every (strategy × backend × schedule) combination it times, so the
// committed JSON documents both the speedup and the proof that the speedup
// is free.
//
// Scaling is measured on the 18-qubit dressed-GHZ statevector workload
// (the same family as bench_prefix_sharing) with the backend's inner
// OpenMP parallelism capped at one thread, so the numbers isolate the
// *inter*-trajectory layer. Interpreting them needs the recorded
// `hardware_concurrency`: on an N-core machine the expected independent-
// schedule speedup at T<=N threads is ~T (the paper's embarrassingly
// parallel regime; >=3x at 8 threads on >=8 cores), while on a 1-core
// container every thread count collapses to ~1x — the determinism matrix
// is then the load-bearing half of the output.
//
//   bench_parallel_scaling [output.json] [--tiny]
//
// --tiny shrinks every dimension so the ctest smoke can exercise the JSON
// emitter (and the determinism checks) in well under a second.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"

namespace {

using namespace ptsbe;

struct ScalingRow {
  std::string schedule;
  std::size_t threads = 0;
  double seconds = 0.0;
  double speedup = 0.0;  // vs threads=1 on the same schedule
  bool identical_to_serial = false;
};

struct DeterminismRow {
  std::string strategy;
  std::string backend;
  std::string schedule;
  std::size_t threads = 0;
  bool identical = false;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

/// Dressed GHZ chain with one-qubit depolarizing after every gate: forks
/// can appear anywhere, so the shared-prefix trie has spawn points at many
/// depths (the interesting case for subtree work stealing).
NoisyCircuit ghz_workload(unsigned n) {
  Circuit c(n);
  for (unsigned q = 0; q < n; ++q)
    c.ry(q, 0.11 * (q + 1)).rz(q, 0.07 * (q + 1));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q)
    c.rz(q, 0.05 * (q + 1)).ry(q, 0.13 * (q + 1));
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.01));
  return noise.apply(c);
}

/// Clifford + Pauli-noise GHZ for the stabilizer rows of the matrix.
NoisyCircuit clifford_workload(unsigned n) {
  Circuit c(n);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.02));
  noise.add_measurement_noise(channels::bit_flip(0.01));
  return noise.apply(c);
}

/// Execute and export; returns the wall-clock and (via out) the bytes.
double run_once(const NoisyCircuit& noisy,
                const std::vector<TrajectorySpec>& specs,
                const std::string& backend, be::Schedule schedule,
                std::size_t threads, std::string* bytes) {
  be::Options options;
  options.backend = backend;
  options.schedule = schedule;
  options.threads = threads;
  WallTimer timer;
  const be::Result result = be::execute(noisy, specs, options);
  const double seconds = timer.seconds();
  if (bytes != nullptr) {
    const std::string path = "/tmp/ptsbe_bench_parallel_scaling.bin";
    dataset::write_binary(path, result);
    *bytes = slurp(path);
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_parallel_scaling.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

#ifdef _OPENMP
  // Cap the backends' intra-kernel OpenMP parallelism: this bench measures
  // the inter-trajectory layer, and letting both layers spawn threads
  // oversubscribes every core and blurs the attribution.
  omp_set_num_threads(1);
#endif

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;

  // ------------------------------------------------------------------
  // Scaling sweep: 18-qubit statevector workload, both schedules.
  // ------------------------------------------------------------------
  const unsigned n = tiny ? 6 : 18;
  const std::size_t trajectories = tiny ? 24 : 160;
  const std::uint64_t shots = tiny ? 8 : 64;
  const std::vector<std::size_t> thread_counts =
      tiny ? std::vector<std::size_t>{1, 2}
           : std::vector<std::size_t>{1, 2, 4, 8};

  const NoisyCircuit noisy = ghz_workload(n);
  RngStream rng(1234);
  pts::Options opt;
  opt.nsamples = trajectories;
  opt.nshots = shots;
  opt.merge_duplicates = true;
  const std::vector<TrajectorySpec> specs =
      pts::sample_probabilistic(noisy, opt, rng);

  std::printf("parallel scaling (statevector, %u qubits, %zu trajectories, "
              "%llu shots each, hardware_concurrency=%zu)\n\n",
              n, specs.size(), static_cast<unsigned long long>(shots),
              hardware);

  std::vector<ScalingRow> scaling;
  bool all_identical = true;  // scaling sweep AND matrix rows feed this
  for (const be::Schedule schedule :
       {be::Schedule::kIndependent, be::Schedule::kSharedPrefix}) {
    std::string serial_bytes;
    double serial_seconds = 0.0;
    for (const std::size_t threads : thread_counts) {
      ScalingRow row;
      row.schedule = to_string(schedule);
      row.threads = threads;
      std::string bytes;
      row.seconds = run_once(noisy, specs, "statevector", schedule, threads,
                             &bytes);
      if (threads == 1) {
        serial_bytes = bytes;
        serial_seconds = row.seconds;
      }
      row.speedup = serial_seconds > 0.0 ? serial_seconds / row.seconds : 0.0;
      row.identical_to_serial = !bytes.empty() && bytes == serial_bytes;
      all_identical = all_identical && row.identical_to_serial;
      std::printf("%-14s threads=%zu  %8.3fs  speedup %5.2fx  bytes %s\n",
                  row.schedule.c_str(), row.threads, row.seconds, row.speedup,
                  row.identical_to_serial ? "identical" : "DIVERGED");
      scaling.push_back(row);
    }
  }

  // ------------------------------------------------------------------
  // Determinism matrix: strategy × backend × schedule, threads vs serial.
  // ------------------------------------------------------------------
  const unsigned mn = tiny ? 4 : 6;
  const NoisyCircuit amplitude_program = ghz_workload(mn);
  const NoisyCircuit clifford_program = clifford_workload(mn);
  const std::vector<std::size_t> matrix_threads = tiny
      ? std::vector<std::size_t>{2}
      : std::vector<std::size_t>{2, 8};

  std::vector<DeterminismRow> matrix;
  for (const char* strategy : {"probabilistic", "band"}) {
    for (const char* backend :
         {"statevector", "densmat", "mps", "stabilizer"}) {
      const bool clifford = std::strcmp(backend, "stabilizer") == 0;
      const NoisyCircuit& program =
          clifford ? clifford_program : amplitude_program;
      pts::StrategyConfig cfg;
      cfg.nsamples = tiny ? 30 : 120;
      cfg.nshots = tiny ? 6 : 24;
      cfg.p_min = 1e-6;
      cfg.p_max = 1e-1;
      Pipeline pipeline(program);
      pipeline.strategy(strategy, cfg).seed(17);
      const std::vector<TrajectorySpec> mspecs = pipeline.sample();
      for (const be::Schedule schedule :
           {be::Schedule::kIndependent, be::Schedule::kSharedPrefix}) {
        std::string serial_bytes;
        (void)run_once(program, mspecs, backend, schedule, 1, &serial_bytes);
        for (const std::size_t threads : matrix_threads) {
          DeterminismRow row;
          row.strategy = strategy;
          row.backend = backend;
          row.schedule = to_string(schedule);
          row.threads = threads;
          std::string bytes;
          (void)run_once(program, mspecs, backend, schedule, threads, &bytes);
          row.identical = !bytes.empty() && bytes == serial_bytes;
          all_identical = all_identical && row.identical;
          matrix.push_back(row);
        }
      }
    }
  }
  std::printf("\ndeterminism matrix: %zu combinations, %s\n", matrix.size(),
              all_identical ? "all byte-identical to threads=1"
                            : "DIVERGENCE DETECTED");

  // ------------------------------------------------------------------
  // JSON
  // ------------------------------------------------------------------
  std::FILE* os = std::fopen(out, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::fprintf(os,
               "{\n  \"bench\": \"parallel_scaling\",\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"workload\": {\"backend\": \"statevector\", \"qubits\": %u, "
               "\"trajectories\": %zu, \"shots_per_trajectory\": %llu},\n"
               "  \"note\": \"speedups are bounded by hardware_concurrency; "
               "expect ~T at T threads on >=T cores (>=3x at 8 threads on "
               ">=8 cores), ~1x on a 1-core container\",\n"
               "  \"scaling\": [\n",
               hardware, n, specs.size(),
               static_cast<unsigned long long>(shots));
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    std::fprintf(os,
                 "    {\"schedule\": \"%s\", \"threads\": %zu, "
                 "\"seconds\": %.4f, \"speedup_vs_1_thread\": %.3f, "
                 "\"records_identical_to_1_thread\": %s}%s\n",
                 r.schedule.c_str(), r.threads, r.seconds, r.speedup,
                 r.identical_to_serial ? "true" : "false",
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(os, "  ],\n  \"determinism_matrix\": [\n");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const DeterminismRow& r = matrix[i];
    std::fprintf(os,
                 "    {\"strategy\": \"%s\", \"backend\": \"%s\", "
                 "\"schedule\": \"%s\", \"threads\": %zu, "
                 "\"bytes_identical_to_1_thread\": %s}%s\n",
                 r.strategy.c_str(), r.backend.c_str(), r.schedule.c_str(),
                 r.threads, r.identical ? "true" : "false",
                 i + 1 < matrix.size() ? "," : "");
  }
  std::fprintf(os, "  ],\n  \"all_combinations_identical\": %s\n}\n",
               all_identical ? "true" : "false");
  const bool ok = std::ferror(os) == 0;
  if (std::fclose(os) != 0 || !ok) {
    std::fprintf(stderr, "error while writing %s\n", out);
    return 1;
  }
  std::printf("wrote %s\n", out);
  return all_identical ? 0 : 1;
}
