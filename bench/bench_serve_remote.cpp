// Remote serving scale-out: jobs/sec through the full TCP wire path at
// 1 vs 2 daemon processes' worth of `net::Server`s behind the
// consistent-hash shard router. The job stream is the serve-throughput
// tenant population (a handful of distinct `.ptq` circuits, repeated with
// varying seeds) so the router's plan-cache affinity is load-bearing:
// every repeat of a circuit lands on the shard holding its ExecPlan, and
// the per-shard cache hit rates in the JSON prove it.
//
// After the timed streams, one job per distinct circuit is re-submitted
// through the 2-shard fleet and its dataset bytes compared against a
// standalone Pipeline::run — the bench exits nonzero on any divergence
// (same convention as bench_parallel_scaling), so the smoke ctest also
// re-verifies wire-path byte identity.
//
// Honesty convention (PR 4): the JSON records hardware_concurrency. On a
// 1-core container the 2-daemon row collapses to ~1x — the shard spread
// and per-shard hit rates are then the load-bearing output; expect fleet
// scaling up to min(total workers, cores) elsewhere.
//
//   bench_serve_remote [output.json] [--tiny]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ptsbe/common/timer.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/net/client.hpp"
#include "ptsbe/net/server.hpp"
#include "ptsbe/noise/channels.hpp"

namespace {

using namespace ptsbe;

/// Distinct tenant circuits: dressed GHZ chains of slightly different
/// shapes so each maps to its own plan-cache entry (and its own shard).
std::string tenant_circuit(unsigned n, unsigned variant) {
  Circuit c(n);
  for (unsigned q = 0; q < n; ++q) c.ry(q, 0.1 * (q + 1 + variant));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q) c.rz(q, 0.07 * (q + 1 + variant));
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.01));
  noise.add_measurement_noise(channels::bit_flip(0.005));
  return io::write_circuit(noise.apply(c));
}

serve::JobRequest request_for(const std::vector<std::string>& texts,
                              std::size_t j, std::size_t nsamples,
                              std::uint64_t nshots) {
  serve::JobRequest req;
  req.circuit_text = texts[j % texts.size()];
  req.tenant = "tenant-" + std::to_string(j % texts.size());
  req.strategy_config.nsamples = nsamples;
  req.strategy_config.nshots = nshots;
  req.seed = 1000 + j;  // distinct seeds: same plan, different work
  return req;
}

struct ShardStat {
  std::uint64_t served = 0;
  double cache_hit_rate = 0.0;
};

struct FleetRow {
  std::size_t daemons = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::vector<ShardStat> shards;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Dataset bytes of a run, via the same export path tests pin.
std::string dataset_bytes(const RunResult& run, const char* tag) {
  const std::string path =
      std::string("/tmp/ptsbe_bench_serve_remote_") + tag + ".bin";
  run.to_binary(path);
  std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

/// Push `jobs_total` jobs through a fleet of `daemons` servers from
/// `client_threads` submitters (each with its own ShardedClient — the
/// clients are blocking, so a thread is one synchronous caller).
FleetRow run_fleet(const std::vector<std::string>& texts,
                   std::size_t jobs_total, std::size_t daemons,
                   std::size_t client_threads, std::size_t workers_per_daemon,
                   std::size_t nsamples, std::uint64_t nshots) {
  net::ServerConfig server_config;
  server_config.engine.workers = workers_per_daemon;
  server_config.engine.queue_capacity = jobs_total;  // throughput, not
                                                     // shedding
  server_config.engine.plan_cache_capacity = 32;
  std::vector<std::unique_ptr<net::Server>> fleet;
  std::vector<std::string> endpoints;
  for (std::size_t d = 0; d < daemons; ++d) {
    fleet.push_back(std::make_unique<net::Server>(server_config));
    endpoints.push_back(fleet.back()->endpoint());
  }

  WallTimer timer;
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (std::size_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      net::ShardedClient client(endpoints);
      for (std::size_t j = t; j < jobs_total; j += client_threads)
        (void)client.submit(request_for(texts, j, nsamples, nshots));
    });
  }
  for (std::thread& c : clients) c.join();
  const double seconds = timer.seconds();

  FleetRow row;
  row.daemons = daemons;
  row.jobs = jobs_total;
  row.seconds = seconds;
  std::uint64_t served = 0;
  for (const auto& server : fleet) {
    const serve::EngineStats stats = server->stats();
    served += stats.served;
    row.shards.push_back({stats.served, stats.plan_cache_hit_rate()});
    server->stop();
  }
  row.jobs_per_sec = seconds > 0.0 ? static_cast<double>(served) / seconds : 0.0;
  if (served != jobs_total)
    std::fprintf(stderr, "WARNING: fleet served %llu of %zu jobs\n",
                 static_cast<unsigned long long>(served), jobs_total);
  return row;
}

/// One job per distinct circuit through a fresh 2-shard fleet, dataset
/// bytes compared against a standalone Pipeline::run.
bool verify_byte_identity(const std::vector<std::string>& texts,
                          std::size_t workers_per_daemon, std::size_t nsamples,
                          std::uint64_t nshots) {
  net::ServerConfig server_config;
  server_config.engine.workers = workers_per_daemon;
  net::Server shard_a(server_config);
  net::Server shard_b(server_config);
  net::ShardedClient client({shard_a.endpoint(), shard_b.endpoint()});

  bool identical = true;
  for (std::size_t v = 0; v < texts.size(); ++v) {
    const serve::JobRequest req = request_for(texts, v, nsamples, nshots);
    const net::RemoteRun remote = client.submit(req);
    const RunResult standalone = Pipeline(io::parse_circuit(req.circuit_text))
                                     .strategy(req.strategy,
                                               req.strategy_config)
                                     .backend(req.backend, req.backend_config)
                                     .seed(req.seed)
                                     .run();
    const bool same = dataset_bytes(remote.run, "remote") ==
                      dataset_bytes(standalone, "local");
    if (!same)
      std::fprintf(stderr, "DIVERGED: circuit %zu served over the wire\n", v);
    identical = identical && same;
  }
  shard_a.stop();
  shard_b.stop();
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_serve_remote.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

#ifdef _OPENMP
  // Measure the wire + service layers, not the kernels' inner parallelism.
  omp_set_num_threads(1);
#endif

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;

  const unsigned qubits = tiny ? 4 : 12;
  const std::size_t distinct = 6;  // enough circuits that consistent
                                   // hashing spreads them over 2 shards
  const std::size_t jobs_total = tiny ? 12 : 48;
  const std::size_t client_threads = tiny ? 2 : 4;
  const std::size_t workers_per_daemon = 2;
  const std::size_t nsamples = tiny ? 30 : 150;
  const std::uint64_t nshots = tiny ? 10 : 100;

  std::vector<std::string> texts;
  for (unsigned v = 0; v < distinct; ++v)
    texts.push_back(tenant_circuit(qubits, v));

  std::printf("serve remote (%zu jobs over %zu distinct %u-qubit circuits, "
              "%zu client threads, %zu engine workers/daemon, "
              "hardware_concurrency=%zu)\n\n",
              jobs_total, distinct, qubits, client_threads,
              workers_per_daemon, hardware);

  std::vector<FleetRow> rows;
  for (const std::size_t daemons : {std::size_t{1}, std::size_t{2}}) {
    const FleetRow row = run_fleet(texts, jobs_total, daemons, client_threads,
                                   workers_per_daemon, nsamples, nshots);
    std::printf("daemons=%zu  %7.3fs  %8.1f jobs/s  shards:", row.daemons,
                row.seconds, row.jobs_per_sec);
    for (const ShardStat& s : row.shards)
      std::printf("  [served %llu, cache hit %.2f]",
                  static_cast<unsigned long long>(s.served), s.cache_hit_rate);
    std::printf("\n");
    rows.push_back(row);
  }

  const bool identical =
      verify_byte_identity(texts, workers_per_daemon, nsamples, nshots);
  std::printf("\nbyte identity vs local Pipeline::run: %s\n",
              identical ? "identical" : "DIVERGED");

  std::FILE* os = std::fopen(out, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::fprintf(os,
               "{\n  \"bench\": \"serve_remote\",\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"client_threads\": %zu,\n"
               "  \"engine_workers_per_daemon\": %zu,\n"
               "  \"workload\": {\"jobs\": %zu, \"distinct_circuits\": %zu, "
               "\"qubits\": %u, \"nsamples\": %zu, \"nshots\": %llu},\n"
               "  \"note\": \"jobs/sec includes TCP framing, admission, .ptq "
               "parsing, plan-cache lookups and execution; the shard router "
               "pins each circuit to one daemon, so per-shard cache hit "
               "rates stay high at 2 daemons; fleet scaling is bounded by "
               "min(total workers, hardware_concurrency), so expect ~1x on "
               "a 1-core container\",\n"
               "  \"fleets\": [\n",
               hardware, client_threads, workers_per_daemon, jobs_total,
               distinct, qubits, nsamples,
               static_cast<unsigned long long>(nshots));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FleetRow& r = rows[i];
    std::fprintf(os,
                 "    {\"daemons\": %zu, \"jobs\": %zu, \"seconds\": %.4f, "
                 "\"jobs_per_sec\": %.2f, \"shards\": [",
                 r.daemons, r.jobs, r.seconds, r.jobs_per_sec);
    for (std::size_t s = 0; s < r.shards.size(); ++s)
      std::fprintf(os,
                   "{\"shard\": %zu, \"served\": %llu, "
                   "\"plan_cache_hit_rate\": %.4f}%s",
                   s, static_cast<unsigned long long>(r.shards[s].served),
                   r.shards[s].cache_hit_rate,
                   s + 1 < r.shards.size() ? ", " : "");
    std::fprintf(os, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(os,
               "  ],\n  \"byte_identity\": {\"checked_jobs\": %zu, "
               "\"identical\": %s}\n}\n",
               distinct, identical ? "true" : "false");
  std::fclose(os);
  std::printf("wrote %s\n", out);
  return identical ? 0 : 1;
}
