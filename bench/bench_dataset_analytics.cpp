// Out-of-core dataset analytics throughput: k-way shard merge + ShotTable
// comparison (ptsbe::stats) over the shards of a QEC memory workload.
//
// Phase 1 — QEC shards: one local Pipeline run of a surface-code memory
// experiment is partitioned round-robin into N spec-ordered shard files
// (the shape sharded serve runs and partitioned QEC sweeps produce). The
// timed section k-way-merges the shards under a *fixed memory budget* and
// tabulate+compares the merged file against the single-process dataset;
// the merge must reproduce the local `write_binary` bytes exactly and the
// comparison must report an exact match (all four distances 0.0) — the
// bench exits nonzero otherwise, so the smoke ctest re-verifies both.
//
// Phase 2 — wire shards: the same QEC job is submitted to two daemon
// processes' worth of `net::Server`s; daemon A contributes the
// even-spec_index batches and daemon B the odd ones — two genuinely
// cross-process shard files whose merge must again be byte-identical to
// the local dataset (the determinism contract, end to end through TCP,
// sharding and the out-of-core merge).
//
//   bench_dataset_analytics [output.json] [--tiny]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/net/client.hpp"
#include "ptsbe/net/server.hpp"
#include "ptsbe/qec/workload.hpp"
#include "ptsbe/stats/compare.hpp"
#include "ptsbe/stats/merge.hpp"
#include "ptsbe/stats/shot_table.hpp"

namespace {

using namespace ptsbe;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string tmp_path(const char* tag) {
  return std::string("/tmp/ptsbe_bench_dataset_analytics_") + tag + ".bin";
}

/// Round-robin partition of a spec-ordered result into `count` shard
/// files. Each shard stays spec-ordered (ascending subsequence), which is
/// the k-way merge's input contract.
std::vector<std::string> write_shards(const RunResult& run,
                                      std::size_t count) {
  std::vector<std::unique_ptr<dataset::StreamWriter>> writers;
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < count; ++s) {
    paths.push_back(tmp_path(("qec_shard_" + std::to_string(s)).c_str()));
    writers.push_back(std::make_unique<dataset::StreamWriter>(paths.back()));
  }
  for (std::size_t i = 0; i < run.result.batches.size(); ++i)
    writers[i % count]->append(run.result.batches[i]);
  for (auto& w : writers) w->close();
  return paths;
}

struct Throughput {
  double seconds = 0.0;
  double records_per_sec = 0.0;
  double mib_per_sec = 0.0;
};

Throughput rate(double seconds, std::uint64_t records, std::uint64_t bytes) {
  Throughput t;
  t.seconds = seconds;
  if (seconds > 0.0) {
    t.records_per_sec = static_cast<double>(records) / seconds;
    t.mib_per_sec =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_dataset_analytics.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else
      out = argv[i];
  }

#ifdef _OPENMP
  // Measure the analytics layer, not the kernels' inner parallelism.
  omp_set_num_threads(1);
#endif

  const std::size_t shard_count = tiny ? 3 : 4;
  const std::size_t merge_reps = tiny ? 1 : 5;
  const std::uint64_t memory_budget = 8ULL << 20;  // fixed: 8 MiB
  const std::size_t nsamples = tiny ? 60 : 1500;
  const std::uint64_t nshots = tiny ? 10 : 100;
  const std::uint64_t seed = 20260807;

  qec::MemoryWorkloadConfig qcfg;
  qcfg.code = "surface";
  qcfg.distance = 3;
  qcfg.rounds = tiny ? 1 : 2;
  qcfg.noise = 0.01;
  const qec::MemoryWorkload workload = qec::make_memory_workload(qcfg);

  pts::StrategyConfig scfg;
  scfg.nsamples = nsamples;
  scfg.nshots = nshots;

  // Phase 1: the single-process reference dataset and its shards.
  const RunResult local = Pipeline(workload.noisy)
                              .strategy("probabilistic", scfg)
                              .backend("stabilizer", {})
                              .seed(seed)
                              .run();
  const std::string local_path = tmp_path("qec_local");
  local.to_binary(local_path);
  const std::string local_bytes = slurp(local_path);
  const std::vector<std::string> shards = write_shards(local, shard_count);

  std::printf(
      "dataset analytics (%s d=%u r=%u, %zu specs -> %zu shards, "
      "budget %llu bytes)\n\n",
      qcfg.code.c_str(), qcfg.distance, qcfg.rounds, local.num_specs,
      shard_count, static_cast<unsigned long long>(memory_budget));

  // Timed merge: k-way under the fixed budget, repeated for a stable rate.
  const std::string merged_path = tmp_path("qec_merged");
  stats::MergeOptions mopts;
  mopts.memory_budget_bytes = memory_budget;
  stats::MergeReport report;
  WallTimer merge_timer;
  for (std::size_t r = 0; r < merge_reps; ++r)
    report = stats::merge_datasets(merged_path, shards, mopts);
  const Throughput merge_rate = rate(merge_timer.seconds() / merge_reps,
                                     report.records, report.bytes_out);

  const bool merge_identical = slurp(merged_path) == local_bytes;
  std::printf("merge:   %zu shards, %llu batches, %llu records  %7.4fs  "
              "%10.0f rec/s  %7.1f MiB/s  peak buffered %llu  ->  %s\n",
              shard_count, static_cast<unsigned long long>(report.batches),
              static_cast<unsigned long long>(report.records),
              merge_rate.seconds, merge_rate.records_per_sec,
              merge_rate.mib_per_sec,
              static_cast<unsigned long long>(report.peak_buffered_bytes),
              merge_identical ? "byte-identical to local" : "DIVERGED");

  // Timed compare: tabulate both files out-of-core, all four distances.
  WallTimer compare_timer;
  const stats::ShotTable observed = stats::table_of_file(merged_path);
  const stats::ShotTable expected = stats::table_of_file(local_path);
  const stats::Comparison comparison = stats::compare(observed, expected);
  const Throughput compare_rate =
      rate(compare_timer.seconds(), 2 * report.records,
           2 * report.bytes_out);
  std::printf("compare: %7.4fs  %10.0f rec/s  %7.1f MiB/s  ->  %s\n",
              compare_rate.seconds, compare_rate.records_per_sec,
              compare_rate.mib_per_sec,
              comparison.exact_match() ? "exact match" : "DIVERGED");

  // Phase 2: the same job through two daemons; even batches from A, odd
  // from B — cross-process shards whose merge must equal the local bytes.
  serve::JobRequest req;
  req.circuit_text = workload.to_ptq();
  req.backend = "stabilizer";
  req.strategy_config = scfg;
  req.seed = seed;
  req.tenant = "bench-analytics";
  net::Server daemon_a{{}};
  net::Server daemon_b{{}};
  net::ShardedClient client_a({daemon_a.endpoint()});
  net::ShardedClient client_b({daemon_b.endpoint()});
  const RunResult run_a = client_a.submit(req).run;
  const RunResult run_b = client_b.submit(req).run;
  daemon_a.stop();
  daemon_b.stop();

  const std::string wire_even = tmp_path("wire_even");
  const std::string wire_odd = tmp_path("wire_odd");
  {
    dataset::StreamWriter even(wire_even);
    dataset::StreamWriter odd(wire_odd);
    for (const be::TrajectoryBatch& batch : run_a.result.batches)
      if (batch.spec_index % 2 == 0) even.append(batch);
    for (const be::TrajectoryBatch& batch : run_b.result.batches)
      if (batch.spec_index % 2 == 1) odd.append(batch);
    even.close();
    odd.close();
  }
  const std::string wire_merged = tmp_path("wire_merged");
  (void)stats::merge_datasets(wire_merged, {wire_even, wire_odd}, mopts);
  const bool wire_identical = slurp(wire_merged) == local_bytes;
  std::printf("2-daemon wire shards merged vs local dataset bytes: %s\n",
              wire_identical ? "identical" : "DIVERGED");

  for (const std::string& p : shards) std::remove(p.c_str());
  for (const std::string& p :
       {local_path, merged_path, wire_even, wire_odd, wire_merged})
    std::remove(p.c_str());

  std::FILE* os = std::fopen(out, "w");
  if (os == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::fprintf(
      os,
      "{\n  \"bench\": \"dataset_analytics\",\n"
      "  \"workload\": {\"code\": \"%s\", \"distance\": %u, \"rounds\": %u, "
      "\"nsamples\": %zu, \"nshots\": %llu, \"specs\": %zu},\n"
      "  \"shards\": %zu,\n"
      "  \"memory_budget_bytes\": %llu,\n"
      "  \"merge\": {\"batches\": %llu, \"records\": %llu, \"bytes_out\": "
      "%llu, \"peak_buffered_bytes\": %llu, \"seconds\": %.4f, "
      "\"records_per_sec\": %.0f, \"mib_per_sec\": %.2f, "
      "\"byte_identical_to_local\": %s},\n"
      "  \"compare\": {\"seconds\": %.4f, \"records_per_sec\": %.0f, "
      "\"mib_per_sec\": %.2f, \"kl_divergence\": %.17g, "
      "\"chi_squared_cost\": %.17g, \"poisson_log_cost\": %.17g, "
      "\"total_variation\": %.17g, \"exact_match\": %s},\n"
      "  \"wire_shards\": {\"daemons\": 2, \"merge_byte_identical_to_local\": "
      "%s},\n"
      "  \"note\": \"merge is the out-of-core k-way merge over spec-ordered "
      "shards under the fixed budget; compare tabulates both files via the "
      "seekable reader and evaluates all four BranchTab-style distances; "
      "exact_match means every distance is exactly 0\"\n}\n",
      qcfg.code.c_str(), qcfg.distance, qcfg.rounds, nsamples,
      static_cast<unsigned long long>(nshots), local.num_specs, shard_count,
      static_cast<unsigned long long>(memory_budget),
      static_cast<unsigned long long>(report.batches),
      static_cast<unsigned long long>(report.records),
      static_cast<unsigned long long>(report.bytes_out),
      static_cast<unsigned long long>(report.peak_buffered_bytes),
      merge_rate.seconds, merge_rate.records_per_sec, merge_rate.mib_per_sec,
      merge_identical ? "true" : "false", compare_rate.seconds,
      compare_rate.records_per_sec, compare_rate.mib_per_sec,
      comparison.kl_divergence, comparison.chi_squared_cost,
      comparison.poisson_log_cost, comparison.total_variation,
      comparison.exact_match() ? "true" : "false",
      wire_identical ? "true" : "false");
  std::fclose(os);
  std::printf("wrote %s\n", out);
  return (merge_identical && comparison.exact_match() && wire_identical) ? 0
                                                                         : 1;
}
