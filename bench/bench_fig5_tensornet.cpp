// Figure 5 reproduction: shots collected per minute as a function of total
// shots sampled per trajectory, tensor-network backend.
//
// Paper setup: 85-qubit [[17,1,5]]-encoded MSD preparation circuit on
// 4×H100 (cuTensorNet), >16× efficiency at 10^3-shot batches — limited, as
// §4 explains, by the sampler "requiring nearly all of the tensor network
// contraction process to reoccur for each sample" with only the contraction
// path cached. We therefore report three pipelines:
//
//   traditional — one full state preparation *per shot* (Algorithm 1);
//   PTSBE/uncached — one preparation per trajectory, but each sample redoes
//       the full-chain canonicalisation (the analogue of CUDA-Q v0.10's
//       per-sample re-contraction; this column is the paper's Fig. 5 and
//       should saturate at a modest factor like their 16×);
//   PTSBE/cached — one canonicalisation per batch, cached environments
//       reused across shots (the improvement the paper's §4 calls for).
//
// Workloads: the 35-qubit Steane-encoded preparation circuit (the paper's
// other MSD encoding) and the 125-qubit distance-5 block (see DESIGN.md for
// the [[17,1,5]] → [[25,1,5]] substitution).

#include <cstdio>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/tensornet/mps.hpp"
#include "workloads.hpp"

namespace {

using namespace ptsbe;

/// Build one trajectory state: coherent circuit only (error-free trajectory
/// keeps columns comparable; PTS costs are negligible either way).
MpsState prepare(const Circuit& circuit, const MpsConfig& cfg) {
  MpsState mps(circuit.num_qubits(), cfg);
  mps.apply_circuit(circuit);
  return mps;
}

void sweep(const char* label, const Circuit& circuit, std::size_t max_batch) {
  MpsConfig cfg;
  cfg.max_bond = 64;
  cfg.truncation_error = 1e-10;

  // Reference: traditional rate = shots/min with one full prep per shot.
  RngStream rng(21);
  double prep_seconds;
  {
    WallTimer t;
    MpsState probe = prepare(circuit, cfg);
    (void)probe.sample_shots(1, rng);
    prep_seconds = t.seconds();
  }
  const double traditional_rate = 60.0 / prep_seconds;

  MpsState cached_state = prepare(circuit, cfg);
  MpsState uncached_state = prepare(circuit, cfg);
  std::printf("\n== %s (%u qubits, chi_max %zu) ==\n", label,
              circuit.num_qubits(), cached_state.max_bond_dim());
  std::printf("%10s %16s %18s %16s %10s %10s\n", "shots", "traditional",
              "PTSBE/uncached", "PTSBE/cached", "gain-unc", "gain-cache");
  for (std::size_t batch = 1; batch <= max_batch; batch *= 10) {
    // Uncached: prep once + per-shot full-chain canonicalisation.
    WallTimer t;
    const std::size_t probe = std::min<std::size_t>(batch, 50);
    for (std::size_t i = 0; i < probe; ++i)
      (void)uncached_state.sample_one_uncached(rng);
    const double unc_per_shot = t.seconds() / static_cast<double>(probe);
    const double unc_rate =
        static_cast<double>(batch) * 60.0 /
        (prep_seconds + unc_per_shot * static_cast<double>(batch));
    // Cached: prep once + one canonicalisation + cheap conditional samples.
    t.reset();
    (void)cached_state.sample_shots(batch, rng);
    const double cache_rate = static_cast<double>(batch) * 60.0 /
                              (prep_seconds + t.seconds());
    std::printf("%10zu %16.0f %18.0f %16.0f %9.1fx %9.1fx\n", batch,
                traditional_rate, unc_rate, cache_rate,
                unc_rate / traditional_rate, cache_rate / traditional_rate);
  }
}

}  // namespace

int main() {
  sweep("MSD preparation, 5 x Steane (35 qubits)",
        qec::msd_preparation_circuit(qec::steane()), 1000);
  sweep("MSD preparation, 5 x [[25,1,5]] (125 qubits)",
        qec::msd_preparation_circuit(qec::rotated_surface_code(5)), 1000);

  std::printf(
      "\nPaper shape check: the uncached column saturates at a modest factor\n"
      "(the paper reports ~16x at 10^3 shots) because every sample redoes\n"
      "the contraction; the cached column keeps rising — quantifying the\n"
      "speedup opportunity the paper attributes to contraction-path and\n"
      "intermediate caching in future CUDA-Q releases.\n");
  return 0;
}
