// Smoke tests for the unified Backend registry: every registered backend
// runs the same noiseless 2-qubit Bell circuit through the common interface
// and must agree on the outcome distribution (00 and 11 at probability 1/2,
// no odd-parity records). This is the contract later multi-backend /
// sharding PRs build on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ptsbe/core/backend.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

NoisyCircuit bell_program() {
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  return NoiseModel().apply(c);  // no noise sites
}

TEST(BackendRegistry, BuiltinsAreRegistered) {
  auto& registry = BackendRegistry::instance();
  for (const char* name : {"statevector", "densmat", "stabilizer", "mps",
                           "tensornet"})
    EXPECT_TRUE(registry.contains(name)) << name;
  EXPECT_FALSE(registry.contains("no-such-backend"));
  EXPECT_THROW((void)registry.make("no-such-backend"), precondition_error);
}

TEST(BackendRegistry, NamesAreSortedAndNonEmpty) {
  const std::vector<std::string> names = BackendRegistry::instance().names();
  ASSERT_GE(names.size(), 5u);
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_LT(names[i - 1], names[i]);
}

TEST(BackendRegistry, EveryBackendAgreesOnBellProbabilities) {
  const NoisyCircuit noisy = bell_program();
  TrajectorySpec spec;  // error-free trajectory
  spec.shots = 4096;
  spec.nominal_probability = 1.0;

  for (const std::string& name : BackendRegistry::instance().names()) {
    const BackendPtr backend = make_backend(name);
    ASSERT_TRUE(backend->supports(noisy)) << name;
    RngStream rng(0xB311C0DEULL);
    const ShotResult result = backend->run(noisy, spec, spec.shots, rng);
    EXPECT_DOUBLE_EQ(result.realized_probability, 1.0) << name;
    ASSERT_EQ(result.records.size(), spec.shots) << name;

    std::size_t count00 = 0, count11 = 0;
    for (std::uint64_t r : result.records) {
      if (r == 0b00) ++count00;
      if (r == 0b11) ++count11;
    }
    EXPECT_EQ(count00 + count11, spec.shots)
        << name << " produced odd-parity Bell records";
    // 4096 fair coin flips: 5σ ≈ 160.
    const double p00 =
        static_cast<double>(count00) / static_cast<double>(spec.shots);
    EXPECT_NEAR(p00, 0.5, 0.04) << name;
  }
}

TEST(BackendRegistry, SupportsReflectsBackendRestrictions) {
  // A T gate leaves the Clifford fragment: stabilizer must decline, the
  // amplitude-style backends must accept.
  Circuit c(2);
  c.h(0).t(0).cx(0, 1).measure_all();
  const NoisyCircuit noisy = NoiseModel().apply(c);
  EXPECT_FALSE(make_backend("stabilizer")->supports(noisy));
  EXPECT_TRUE(make_backend("statevector")->supports(noisy));
  EXPECT_TRUE(make_backend("densmat")->supports(noisy));
  EXPECT_TRUE(make_backend("mps")->supports(noisy));
}

TEST(BackendRegistry, ExecuteDispatchesByName) {
  const NoisyCircuit noisy = bell_program();
  TrajectorySpec spec;
  spec.shots = 512;
  spec.nominal_probability = 1.0;

  for (const std::string& name :
       {std::string("statevector"), std::string("densmat"),
        std::string("stabilizer"), std::string("mps")}) {
    be::Options opt;
    opt.backend = name;
    const be::Result result = be::execute(noisy, {spec}, opt);
    ASSERT_EQ(result.batches.size(), 1u) << name;
    EXPECT_EQ(result.batches[0].records.size(), 512u) << name;
  }

  be::Options bad;
  bad.backend = "no-such-backend";
  EXPECT_THROW((void)be::execute(noisy, {spec}, bad), precondition_error);
}

TEST(BackendRegistry, PluginRegistrationRoundTrips) {
  auto& registry = BackendRegistry::instance();
  const std::string name = "test-plugin-backend";
  if (!registry.contains(name)) {
    // The plugin delegates to the statevector backend so that the
    // every-registered-backend Bell test stays valid regardless of the
    // order gtest runs this suite in (registrations are process-global).
    registry.register_backend(name, [](const BackendConfig&) -> BackendPtr {
      struct Plugin final : Backend {
        [[nodiscard]] const std::string& name() const noexcept override {
          static const std::string kName = "test-plugin-backend";
          return kName;
        }
        [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
          return make_backend("statevector")->supports(noisy);
        }
        [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                                     const TrajectorySpec& spec,
                                     std::uint64_t shots,
                                     RngStream& rng) const override {
          return make_backend("statevector")->run(noisy, spec, shots, rng);
        }
      };
      return std::make_unique<Plugin>();
    });
  }
  EXPECT_TRUE(registry.contains(name));
  RngStream rng(1);
  const NoisyCircuit noisy = bell_program();
  EXPECT_EQ(make_backend(name)->run(noisy, {}, 7, rng).records.size(), 7u);
  // Duplicate registration is rejected.
  EXPECT_THROW(
      registry.register_backend(name, [](const BackendConfig&) -> BackendPtr {
        return nullptr;
      }),
      precondition_error);
}

}  // namespace
}  // namespace ptsbe
