// The ptsbe::serve engine: submit/wait/poll/cancel lifecycle, bounded FIFO
// admission with reject-with-status, the ExecPlan LRU cache, per-engine
// stats — and the determinism contract: a served job's records and dataset
// bytes are bit-identical to a standalone Pipeline::run with the same
// request, under concurrent multi-tenant load.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/core/dataset.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/serve/engine.hpp"

namespace ptsbe {
namespace {

/// The shared workload: GHZ(n) with depolarizing gate noise and bit-flip
/// readout noise, as canonical `.ptq` text (what a tenant would submit).
std::string ghz_ptq(unsigned qubits, double p = 0.02) {
  Circuit circuit(qubits);
  circuit.h(0);
  for (unsigned q = 0; q + 1 < qubits; ++q) circuit.cx(q, q + 1);
  circuit.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(p));
  noise.add_measurement_noise(channels::bit_flip(p / 2));
  return io::write_circuit(noise.apply(circuit));
}

serve::JobRequest ghz_request(unsigned qubits = 4) {
  serve::JobRequest req;
  req.circuit_text = ghz_ptq(qubits);
  req.strategy_config.nsamples = 300;
  req.strategy_config.nshots = 100;
  req.seed = 7;
  return req;
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Bit-exact batch equality (records, weights, spec identity).
void expect_same_result(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.result.batches.size(), b.result.batches.size());
  for (std::size_t i = 0; i < a.result.batches.size(); ++i) {
    const be::TrajectoryBatch& x = a.result.batches[i];
    const be::TrajectoryBatch& y = b.result.batches[i];
    EXPECT_EQ(x.spec_index, y.spec_index);
    EXPECT_EQ(x.spec.branches, y.spec.branches);
    EXPECT_EQ(x.spec.shots, y.spec.shots);
    EXPECT_EQ(x.records, y.records) << "batch " << i;
    EXPECT_EQ(x.realized_probability, y.realized_probability);
  }
  EXPECT_EQ(a.weighting, b.weighting);
  EXPECT_EQ(a.schedule_executed, b.schedule_executed);
}

// ---------------------------------------------------------------------------
// Lifecycle basics.
// ---------------------------------------------------------------------------

TEST(ServeEngine, SubmitWaitDone) {
  serve::Engine engine({.workers = 2, .queue_capacity = 8});
  serve::JobHandle job = engine.submit(ghz_request());
  const RunResult& run = job.wait();
  EXPECT_EQ(job.status(), serve::JobStatus::kDone);
  EXPECT_TRUE(job.poll());
  EXPECT_GT(run.result.total_shots(), 0u);
  EXPECT_EQ(run.strategy, "probabilistic");
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServeEngine, InvalidRequestsFailWithStatusNotThrow) {
  serve::Engine engine({.workers = 1, .queue_capacity = 4});

  serve::JobRequest bad_circuit = ghz_request();
  bad_circuit.circuit_text = "ptq 1\nqubits 2\nhh 0\n";
  bad_circuit.source_name = "tenant.ptq";
  serve::JobHandle j1 = engine.submit(bad_circuit);
  EXPECT_EQ(j1.status(), serve::JobStatus::kFailed);
  EXPECT_NE(j1.error().find("tenant.ptq:3:1"), std::string::npos) << j1.error();
  EXPECT_THROW((void)j1.wait(), runtime_failure);
  EXPECT_THROW((void)j1.result(), precondition_error);

  serve::JobRequest bad_strategy = ghz_request();
  bad_strategy.strategy = "bogus";
  serve::JobHandle j2 = engine.submit(bad_strategy);
  EXPECT_EQ(j2.status(), serve::JobStatus::kFailed);
  EXPECT_NE(j2.error().find("unknown strategy 'bogus'"), std::string::npos);

  serve::JobRequest bad_backend = ghz_request();
  bad_backend.backend = "bogus";
  serve::JobHandle j3 = engine.submit(bad_backend);
  EXPECT_EQ(j3.status(), serve::JobStatus::kFailed);

  // Unsupported program for the chosen backend fails at submit, not deep
  // inside a worker: a T gate is outside the stabilizer fragment.
  serve::JobRequest unsupported = ghz_request();
  unsupported.circuit_text = "ptq 1\nqubits 1\nt 0\nmeasure 0\n";
  unsupported.backend = "stabilizer";
  serve::JobHandle j4 = engine.submit(unsupported);
  EXPECT_EQ(j4.status(), serve::JobStatus::kFailed);
  EXPECT_NE(j4.error().find("does not support"), std::string::npos);

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.failed, 4u);
  EXPECT_EQ(stats.served, 0u);
}

TEST(ServeEngine, ShutdownRejectsWithStatus) {
  serve::Engine engine({.workers = 1, .queue_capacity = 4});
  serve::JobHandle before = engine.submit(ghz_request());
  engine.shutdown();  // drains: the admitted job finishes
  EXPECT_EQ(before.status(), serve::JobStatus::kDone);
  serve::JobHandle after = engine.submit(ghz_request());
  EXPECT_EQ(after.status(), serve::JobStatus::kRejected);
  EXPECT_NE(after.error().find("shutting down"), std::string::npos);
  EXPECT_EQ(engine.stats().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Admission control: bounded queue, reject-with-status, cancellation.
// A deliberately heavy job (bulk-sampling millions of shots) pins the single
// worker while the queue fills.
// ---------------------------------------------------------------------------

serve::JobRequest heavy_request() {
  serve::JobRequest req;
  req.circuit_text = ghz_ptq(2);
  req.strategy = "enumerate";
  // GHZ(2) error-free trajectory has p ≈ 0.94: the cutoff keeps it alone.
  req.strategy_config.probability_cutoff = 0.5;
  req.strategy_config.max_results = 1;
  req.strategy_config.nshots = 4'000'000;
  req.seed = 3;
  return req;
}

TEST(ServeEngine, QueueFullRejectsWithStatus) {
  serve::Engine engine(
      {.workers = 1, .queue_capacity = 1, .plan_cache_capacity = 8});
  serve::JobHandle heavy = engine.submit(heavy_request());
  // Wait until the worker owns the heavy job, so the queue state below is
  // deterministic: one slot free, then full.
  while (heavy.status() == serve::JobStatus::kQueued)
    std::this_thread::yield();

  serve::JobHandle queued = engine.submit(ghz_request());
  EXPECT_EQ(queued.status(), serve::JobStatus::kQueued);
  EXPECT_EQ(engine.stats().queue_depth, 1u);

  serve::JobHandle rejected = engine.submit(ghz_request());
  EXPECT_EQ(rejected.status(), serve::JobStatus::kRejected);
  EXPECT_NE(rejected.error().find("admission queue full"), std::string::npos);
  EXPECT_TRUE(rejected.poll());
  EXPECT_THROW((void)rejected.wait(), runtime_failure);

  // Admission is checked before validation: a full queue sheds even a
  // malformed request as kRejected — no parse, no plan-cache traffic.
  const std::uint64_t misses_before = engine.stats().plan_cache_misses;
  serve::JobRequest malformed = ghz_request();
  malformed.circuit_text = "ptq 1\nqubits 2\nhh 0\n";
  serve::JobHandle shed = engine.submit(malformed);
  EXPECT_EQ(shed.status(), serve::JobStatus::kRejected);
  EXPECT_EQ(engine.stats().plan_cache_misses, misses_before);

  (void)heavy.wait();
  (void)queued.wait();
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeEngine, CancelQueuedJob) {
  serve::Engine engine({.workers = 1, .queue_capacity = 4});
  serve::JobHandle heavy = engine.submit(heavy_request());
  while (heavy.status() == serve::JobStatus::kQueued)
    std::this_thread::yield();

  serve::JobHandle victim = engine.submit(ghz_request());
  EXPECT_TRUE(victim.cancel());
  EXPECT_EQ(victim.status(), serve::JobStatus::kCancelled);
  EXPECT_FALSE(victim.cancel());  // already terminal
  EXPECT_THROW((void)victim.wait(), runtime_failure);

  const RunResult& run = heavy.wait();
  EXPECT_GT(run.result.total_shots(), 0u);
  EXPECT_FALSE(heavy.cancel());  // done jobs cannot be cancelled
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.served, 1u);
}

TEST(ServeEngine, CancelFreesAdmissionSlot) {
  serve::Engine engine({.workers = 1, .queue_capacity = 1});
  serve::JobHandle heavy = engine.submit(heavy_request());
  while (heavy.status() == serve::JobStatus::kQueued)
    std::this_thread::yield();

  serve::JobHandle victim = engine.submit(ghz_request());
  EXPECT_EQ(victim.status(), serve::JobStatus::kQueued);  // queue now full
  EXPECT_TRUE(victim.cancel());
  // The tombstone must not keep counting against capacity: the next
  // submit reclaims the slot instead of being rejected.
  serve::JobHandle next = engine.submit(ghz_request());
  EXPECT_EQ(next.status(), serve::JobStatus::kQueued);
  (void)heavy.wait();
  (void)next.wait();
  EXPECT_EQ(engine.stats().rejected, 0u);
  EXPECT_EQ(engine.stats().served, 2u);
}

// ---------------------------------------------------------------------------
// ExecPlan cache.
// ---------------------------------------------------------------------------

TEST(ServeEngine, PlanCacheHitsOnRepeatCircuits) {
  serve::Engine engine(
      {.workers = 1, .queue_capacity = 8, .plan_cache_capacity = 4});

  serve::JobHandle first = engine.submit(ghz_request());
  EXPECT_FALSE(first.plan_cache_hit());
  serve::JobHandle second = engine.submit(ghz_request());
  EXPECT_TRUE(second.plan_cache_hit());

  // Formatting-only differences collapse onto the same cache entry: keys
  // are the canonical text of the *parsed* program.
  serve::JobRequest reformatted = ghz_request();
  reformatted.circuit_text =
      "# tenant formatting\n" + reformatted.circuit_text + "\n# trailing\n";
  serve::JobHandle third = engine.submit(reformatted);
  EXPECT_TRUE(third.plan_cache_hit());

  // A different BackendConfig must not alias the cached plan.
  serve::JobRequest fused = ghz_request();
  fused.backend_config.fuse_gates = true;
  serve::JobHandle fourth = engine.submit(fused);
  EXPECT_FALSE(fourth.plan_cache_hit());

  // And the cached plan changes nothing observable: hit == miss, bitwise.
  expect_same_result(first.wait(), second.wait());
  expect_same_result(first.wait(), third.wait());

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_cache_hits, 2u);
  EXPECT_EQ(stats.plan_cache_misses, 2u);
  EXPECT_NEAR(stats.plan_cache_hit_rate(), 0.5, 1e-12);
}

TEST(ServeEngine, PlanCacheEvictsLeastRecentlyUsed) {
  serve::PlanCache cache(2);
  const auto plan = [] { return std::make_shared<const ExecPlan>(); };
  cache.insert("a", plan());
  cache.insert("b", plan());
  EXPECT_NE(cache.lookup("a"), nullptr);  // refreshes "a"; "b" is now LRU
  cache.insert("c", plan());              // evicts "b"
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  serve::PlanCache disabled(0);
  disabled.insert("a", plan());
  EXPECT_EQ(disabled.lookup("a"), nullptr);
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(ServeEngine, CacheDisabledStillServes) {
  serve::Engine engine(
      {.workers = 1, .queue_capacity = 4, .plan_cache_capacity = 0});
  serve::JobHandle a = engine.submit(ghz_request());
  serve::JobHandle b = engine.submit(ghz_request());
  expect_same_result(a.wait(), b.wait());
  EXPECT_FALSE(a.plan_cache_hit());
  EXPECT_FALSE(b.plan_cache_hit());
  EXPECT_EQ(engine.stats().plan_cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// QoS: priority lanes, tenant quotas, per-tenant counters. A heavy job pins
// the single worker so lane and quota state below is deterministic.
// ---------------------------------------------------------------------------

TEST(ServeQoS, PriorityNamesRoundTrip) {
  EXPECT_EQ(serve::to_string(serve::Priority::kNormal), "normal");
  EXPECT_EQ(serve::to_string(serve::Priority::kHigh), "high");
  EXPECT_EQ(serve::priority_from_string("high"), serve::Priority::kHigh);
  EXPECT_THROW((void)serve::priority_from_string("urgent"),
               precondition_error);
  EXPECT_EQ(serve::to_string(serve::RejectReason::kTenantQuota),
            "tenant-quota");
}

TEST(ServeQoS, HighLaneDrainsBeforeNormalLane) {
  serve::Engine engine({.workers = 1, .queue_capacity = 8});
  serve::JobHandle pin = engine.submit(heavy_request());
  while (pin.status() == serve::JobStatus::kQueued) std::this_thread::yield();

  // With the worker pinned, queue three jobs: normal, normal, high. The
  // worker must pop the high lane first, FIFO within each lane. Start
  // order is observed through each job's stream sink (invoked on the
  // worker thread as execution begins to produce batches).
  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto tagged = [&](const char* tag, serve::Priority priority) {
    serve::JobRequest req = ghz_request(3);
    req.priority = priority;
    bool first = true;
    req.stream_sink = [&order, &order_mutex, tag,
                       first](const be::TrajectoryBatch&) mutable {
      if (first) {
        first = false;
        const std::lock_guard<std::mutex> hold(order_mutex);
        order.emplace_back(tag);
      }
    };
    return engine.submit(req);
  };
  serve::JobHandle normal_a = tagged("normal-a", serve::Priority::kNormal);
  serve::JobHandle normal_b = tagged("normal-b", serve::Priority::kNormal);
  serve::JobHandle high_c = tagged("high-c", serve::Priority::kHigh);

  (void)pin.wait();
  (void)normal_a.wait();
  (void)normal_b.wait();
  (void)high_c.wait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high-c");  // jumped both queued normal jobs
  EXPECT_EQ(order[1], "normal-a");
  EXPECT_EQ(order[2], "normal-b");
}

TEST(ServeQoS, TenantQuotaBoundsOutstandingJobs) {
  serve::EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.tenant_quota = 1;
  config.tenant_quota_overrides["carol"] = 2;
  config.tenant_quota_overrides["dave"] = 0;  // explicit unlimited
  serve::Engine engine(config);

  serve::JobRequest pin_req = heavy_request();
  pin_req.tenant = "pinner";
  serve::JobHandle pin = engine.submit(pin_req);
  while (pin.status() == serve::JobStatus::kQueued) std::this_thread::yield();

  const auto submit_as = [&](const char* tenant) {
    serve::JobRequest req = ghz_request(3);
    req.tenant = tenant;
    return engine.submit(req);
  };

  // Default quota 1: alice's second *outstanding* job is refused with the
  // distinct quota reason, while the queue itself still has room.
  serve::JobHandle alice_1 = submit_as("alice");
  EXPECT_EQ(alice_1.status(), serve::JobStatus::kQueued);
  serve::JobHandle alice_2 = submit_as("alice");
  EXPECT_EQ(alice_2.status(), serve::JobStatus::kRejected);
  EXPECT_EQ(alice_2.reject_reason(), serve::RejectReason::kTenantQuota);
  EXPECT_NE(alice_2.error().find("quota"), std::string::npos);

  // One tenant at quota never affects another.
  serve::JobHandle bob_1 = submit_as("bob");
  EXPECT_EQ(bob_1.status(), serve::JobStatus::kQueued);

  // Overrides win over the default; 0 means unlimited.
  serve::JobHandle carol_1 = submit_as("carol");
  serve::JobHandle carol_2 = submit_as("carol");
  EXPECT_EQ(carol_2.status(), serve::JobStatus::kQueued);
  serve::JobHandle carol_3 = submit_as("carol");
  EXPECT_EQ(carol_3.reject_reason(), serve::RejectReason::kTenantQuota);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(submit_as("dave").status(), serve::JobStatus::kQueued);
  }

  (void)pin.wait();
  (void)alice_1.wait();
  (void)bob_1.wait();
  (void)carol_1.wait();
  (void)carol_2.wait();

  // Quota counts *outstanding* jobs, not lifetime jobs: with her first job
  // done, alice may submit again.
  serve::JobHandle alice_3 = submit_as("alice");
  EXPECT_NE(alice_3.status(), serve::JobStatus::kRejected);
  (void)alice_3.wait();

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tenants.at("alice").admitted, 2u);
  EXPECT_EQ(stats.tenants.at("alice").rejected, 1u);
  EXPECT_EQ(stats.tenants.at("alice").completed, 2u);
  EXPECT_EQ(stats.tenants.at("alice").outstanding, 0u);
  EXPECT_EQ(stats.tenants.at("carol").rejected, 1u);
  EXPECT_EQ(stats.tenants.at("dave").admitted, 4u);
  EXPECT_GE(stats.tenants.at("alice").queue_high_water, 1u);
}

TEST(ServeQoS, RejectReasonsAreDistinct) {
  serve::Engine engine({.workers = 1, .queue_capacity = 1});
  serve::JobHandle pin = engine.submit(heavy_request());
  while (pin.status() == serve::JobStatus::kQueued) std::this_thread::yield();
  EXPECT_EQ(pin.reject_reason(), serve::RejectReason::kNone);

  serve::JobHandle queued = engine.submit(ghz_request());
  serve::JobHandle full = engine.submit(ghz_request());
  EXPECT_EQ(full.reject_reason(), serve::RejectReason::kQueueFull);

  (void)pin.wait();
  (void)queued.wait();
  engine.shutdown();
  serve::JobHandle late = engine.submit(ghz_request());
  EXPECT_EQ(late.reject_reason(), serve::RejectReason::kShutdown);
}

TEST(ServeQoS, StatsJsonIsDeterministicAndEscaped) {
  serve::EngineStats stats;
  stats.submitted = 3;
  stats.served = 2;
  serve::TenantStats weird;
  weird.admitted = 2;
  weird.queue_high_water = 1;
  stats.tenants["we\"ird\\tenant"] = weird;
  stats.tenants["alice"] = serve::TenantStats{};
  const std::string json = serve::stats_to_json(stats);
  EXPECT_NE(json.find("\"submitted\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenants\": {\"alice\": {"), std::string::npos)
      << json;  // lexicographic tenant order
  EXPECT_NE(json.find("\"we\\\"ird\\\\tenant\": {\"admitted\": 2,"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue_high_water\": 1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// The determinism contract: served == standalone, bit for bit, for every
// strategy × backend × schedule × threads cell — submitted concurrently so
// jobs genuinely contend for the worker pool and the plan cache.
// ---------------------------------------------------------------------------

struct MatrixCell {
  const char* strategy;
  const char* backend;
  be::Schedule schedule;
  std::size_t threads;
};

TEST(ServeDeterminism, MatrixMatchesStandalonePipeline) {
  const std::vector<MatrixCell> cells = {
      {"probabilistic", "statevector", be::Schedule::kIndependent, 1},
      {"probabilistic", "statevector", be::Schedule::kSharedPrefix, 2},
      {"probabilistic", "mps", be::Schedule::kIndependent, 2},
      {"probabilistic", "stabilizer", be::Schedule::kIndependent, 1},
      {"probabilistic", "stabilizer", be::Schedule::kSharedPrefix, 2},
      {"band", "statevector", be::Schedule::kIndependent, 2},
      {"band", "statevector", be::Schedule::kSharedPrefix, 1},
      {"band", "mps", be::Schedule::kSharedPrefix, 2},
      {"proportional", "statevector", be::Schedule::kIndependent, 1},
      {"enumerate", "densmat", be::Schedule::kIndependent, 1},
  };

  const std::string text = ghz_ptq(4);
  const auto request_for = [&](const MatrixCell& cell) {
    serve::JobRequest req;
    req.circuit_text = text;
    req.strategy = cell.strategy;
    req.backend = cell.backend;
    req.schedule = cell.schedule;
    req.threads = cell.threads;
    req.seed = 20260728;
    req.strategy_config.nsamples = 200;
    req.strategy_config.nshots = 50;
    req.strategy_config.p_min = 1e-9;
    req.strategy_config.p_max = 1.0;
    req.strategy_config.probability_cutoff = 1e-6;
    return req;
  };

  // Saturate a small pool so cells genuinely run concurrently.
  serve::Engine engine(
      {.workers = 4, .queue_capacity = cells.size(), .plan_cache_capacity = 8});
  std::vector<serve::JobHandle> jobs;
  jobs.reserve(cells.size());
  for (const MatrixCell& cell : cells) jobs.push_back(engine.submit(request_for(cell)));

  const NoisyCircuit program = io::parse_circuit(text);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& cell = cells[i];
    SCOPED_TRACE(std::string(cell.strategy) + "/" + cell.backend + "/" +
                 be::to_string(cell.schedule) + "/t" +
                 std::to_string(cell.threads));
    const serve::JobRequest req = request_for(cell);
    const RunResult standalone = Pipeline(program)
                                     .strategy(req.strategy, req.strategy_config)
                                     .backend(req.backend, req.backend_config)
                                     .schedule(req.schedule)
                                     .threads(req.threads)
                                     .seed(req.seed)
                                     .run();
    const RunResult& served = jobs[i].wait();
    expect_same_result(standalone, served);

    // Dataset bytes, not just records: the full export path agrees.
    const std::string dir = ::testing::TempDir();
    const std::string path_a = dir + "serve_det_a_" + std::to_string(i) + ".bin";
    const std::string path_b = dir + "serve_det_b_" + std::to_string(i) + ".bin";
    standalone.to_binary(path_a);
    served.to_binary(path_b);
    EXPECT_EQ(file_bytes(path_a), file_bytes(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
  }

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.served, cells.size());
  EXPECT_EQ(stats.failed, 0u);
  // Nine plan-using cells share one (circuit, config) key per backend;
  // repeats must have hit (stabilizer runs plan-less and does no lookup).
  EXPECT_GE(stats.plan_cache_hits, 4u);
}

}  // namespace
}  // namespace ptsbe
