// Tests for Batched Execution: correctness of the PTS→BE pipeline against
// the exact density matrix, provenance metadata, dataset round trips, and
// backend equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/core/trajectory_executor.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

NoisyCircuit noisy_ghz(unsigned n, double p) {
  Circuit c(n);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  return nm.apply(c);
}

double tvd_records(const std::vector<std::uint64_t>& records,
                   const std::vector<double>& weights,
                   const std::vector<double>& exact) {
  std::map<std::uint64_t, double> freq;
  double total = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    freq[records[i]] += weights[i];
    total += weights[i];
  }
  double d = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto it = freq.find(i);
    d += std::abs((it == freq.end() ? 0.0 : it->second / total) - exact[i]);
  }
  return d / 2;
}

TEST(BatchedExecution, NoiselessSingleSpecGivesExactState) {
  const NoisyCircuit noisy = noisy_ghz(3, 0.0);
  TrajectorySpec spec;
  spec.shots = 4000;
  spec.nominal_probability = 1.0;
  const auto result = be::execute(noisy, {spec});
  ASSERT_EQ(result.batches.size(), 1u);
  for (auto r : result.batches[0].records)
    EXPECT_TRUE(r == 0 || r == 0b111);
}

TEST(BatchedExecution, ProportionalPipelineConvergesToDensityMatrix) {
  // PTS (merged duplicates = draw-weighted) + BE must reproduce the exact
  // noisy distribution for a unitary-mixture program.
  const double p = 0.12;
  const NoisyCircuit noisy = noisy_ghz(3, p);
  DensityMatrix dm(3);
  dm.apply_noisy_circuit(noisy);

  RngStream rng(1);
  pts::Options opt;
  opt.nsamples = 20000;  // draw-count ∝ probability
  opt.nshots = 1;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto result = be::execute(noisy, specs);

  // Weight each record by 1 (each spec's shot count already reflects its
  // draw frequency).
  std::vector<std::uint64_t> records;
  std::vector<double> weights;
  for (const auto& batch : result.batches)
    for (auto r : batch.records) {
      records.push_back(r);
      weights.push_back(1.0);
    }
  EXPECT_LT(tvd_records(records, weights, dm.probabilities()), 0.03);
}

TEST(BatchedExecution, EnumeratedSpecsWithProbabilityWeights) {
  // Deterministic PTS: enumerate all trajectories above a tiny cutoff and
  // weight batches by nominal probability → exact distribution recovery.
  const double p = 0.1;
  const NoisyCircuit noisy = noisy_ghz(2, p);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const auto specs = pts::enumerate_most_likely(noisy, 1e-8, 3000);
  const auto result = be::execute(noisy, specs);
  std::vector<std::uint64_t> records;
  std::vector<double> weights;
  for (const auto& batch : result.batches) {
    for (auto r : batch.records) {
      records.push_back(r);
      weights.push_back(batch.spec.nominal_probability);
    }
  }
  EXPECT_LT(tvd_records(records, weights, dm.probabilities()), 0.03);
}

TEST(BatchedExecution, GeneralKrausRealizedProbabilityRecorded) {
  Circuit c(1);
  c.h(0);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::amplitude_damping(0.4));
  const NoisyCircuit noisy = nm.apply(c);
  TrajectorySpec decay;  // site 0 takes the decay branch (index 1)
  decay.branches = {{0, 1}};
  decay.shots = 100;
  const auto result = be::execute(noisy, {decay});
  ASSERT_EQ(result.batches.size(), 1u);
  // ⟨+|K1†K1|+⟩ = γ/2 = 0.2.
  EXPECT_NEAR(result.batches[0].realized_probability, 0.2, 1e-9);
  // After the decay branch the state is |0⟩.
  for (auto r : result.batches[0].records) EXPECT_EQ(r, 0u);
}

TEST(BatchedExecution, MpsBackendMatchesStatevectorBackend) {
  const NoisyCircuit noisy = noisy_ghz(4, 0.15);
  RngStream rng(2);
  pts::Options opt;
  opt.nsamples = 300;
  opt.nshots = 50;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  be::Options sv_opt, mps_opt;
  sv_opt.backend = "statevector";
  mps_opt.backend = "mps";
  const auto rv = be::execute(noisy, specs, sv_opt);
  const auto rm = be::execute(noisy, specs, mps_opt);
  ASSERT_EQ(rv.batches.size(), rm.batches.size());
  // Per-trajectory states are identical, so per-batch outcome frequencies
  // must agree statistically. Compare aggregate distributions.
  std::map<std::uint64_t, double> fv, fm;
  const double n = static_cast<double>(rv.total_shots());
  for (const auto& b : rv.batches)
    for (auto r : b.records) fv[r] += 1.0 / n;
  for (const auto& b : rm.batches)
    for (auto r : b.records) fm[r] += 1.0 / n;
  for (std::uint64_t i = 0; i < 16; ++i)
    EXPECT_NEAR(fv[i], fm[i], 0.03) << "index " << i;
}

TEST(BatchedExecution, ResolvedThreadsMapsKnobsToWorkerCount) {
  be::Options options;  // threads = 1, num_devices = 1
  EXPECT_EQ(be::resolved_threads(options), 1u);
  options.threads = 6;
  EXPECT_EQ(be::resolved_threads(options), 6u);
  // The legacy devices knob maps onto the same pool: effective = max.
  options.num_devices = 8;
  EXPECT_EQ(be::resolved_threads(options), 8u);
  options.threads = 12;
  EXPECT_EQ(be::resolved_threads(options), 12u);
  // 0 = hardware concurrency, never less than one worker.
  options.threads = 0;
  options.num_devices = 1;
  EXPECT_GE(be::resolved_threads(options), 1u);
}

TEST(BatchedExecution, ThreadsMatchSingleThreadBitForBit) {
  const NoisyCircuit noisy = noisy_ghz(3, 0.1);
  RngStream rng(3);
  pts::Options opt;
  opt.nsamples = 100;
  opt.nshots = 20;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  be::Options one, eight;
  one.threads = 1;
  eight.threads = 8;
  const auto r1 = be::execute(noisy, specs, one);
  const auto r8 = be::execute(noisy, specs, eight);
  ASSERT_EQ(r1.batches.size(), r8.batches.size());
  for (std::size_t i = 0; i < r1.batches.size(); ++i) {
    EXPECT_EQ(r1.batches[i].records, r8.batches[i].records);
    EXPECT_EQ(r1.batches[i].realized_probability,
              r8.batches[i].realized_probability);
  }
}

TEST(BatchedExecution, MultiDeviceMatchesSingleDevice) {
  const NoisyCircuit noisy = noisy_ghz(3, 0.1);
  RngStream rng(3);
  pts::Options opt;
  opt.nsamples = 100;
  opt.nshots = 20;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  be::Options one, four;
  one.num_devices = 1;
  four.num_devices = 4;
  const auto r1 = be::execute(noisy, specs, one);
  const auto r4 = be::execute(noisy, specs, four);
  ASSERT_EQ(r1.batches.size(), r4.batches.size());
  // Per-trajectory RNG substreams make results identical regardless of
  // device count and scheduling order.
  for (std::size_t i = 0; i < r1.batches.size(); ++i)
    EXPECT_EQ(r1.batches[i].records, r4.batches[i].records);
}

TEST(BatchedExecution, ProvenanceSurvivesPipeline) {
  const NoisyCircuit noisy = noisy_ghz(3, 0.3);
  RngStream rng(4);
  pts::Options opt;
  opt.nsamples = 50;
  opt.nshots = 10;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto result = be::execute(noisy, specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(result.batches[i].spec.same_assignment(specs[i]));
    EXPECT_EQ(result.batches[i].spec_index, i);
    // Error labels are reconstructible from the batch alone.
    const auto labels = describe_errors(noisy, result.batches[i].spec);
    EXPECT_EQ(labels.size(), specs[i].error_weight());
  }
}

TEST(BatchedExecution, UniqueFractionBounds) {
  const NoisyCircuit noisy = noisy_ghz(2, 0.0);
  TrajectorySpec spec;
  spec.shots = 1000;
  const auto result = be::execute(noisy, {spec});
  const double f = result.unique_shot_fraction();
  // GHZ(2) has only 2 outcomes → unique fraction = 2/1000.
  EXPECT_NEAR(f, 0.002, 1e-9);
  EXPECT_EQ(be::unique_fraction({}), 0.0);
  EXPECT_EQ(be::unique_fraction({1, 2, 3}), 1.0);
}

TEST(Dataset, BinaryRoundTrip) {
  const NoisyCircuit noisy = noisy_ghz(3, 0.2);
  RngStream rng(5);
  pts::Options opt;
  opt.nsamples = 30;
  opt.nshots = 25;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto result = be::execute(noisy, specs);
  const std::string path = "/tmp/ptsbe_test_dataset.bin";
  dataset::write_binary(path, result);
  const auto loaded = dataset::read_binary(path);
  ASSERT_EQ(loaded.batches.size(), result.batches.size());
  for (std::size_t i = 0; i < loaded.batches.size(); ++i) {
    EXPECT_EQ(loaded.batches[i].records, result.batches[i].records);
    EXPECT_TRUE(loaded.batches[i].spec.same_assignment(result.batches[i].spec));
    EXPECT_DOUBLE_EQ(loaded.batches[i].realized_probability,
                     result.batches[i].realized_probability);
  }
  std::remove(path.c_str());
}

TEST(Dataset, CsvContainsProvenance) {
  const NoisyCircuit noisy = noisy_ghz(2, 0.4);
  const auto specs = pts::enumerate_most_likely(noisy, 0.01, 5);
  const auto result = be::execute(noisy, specs);
  const std::string path = "/tmp/ptsbe_test_dataset.csv";
  dataset::write_csv(path, result);
  std::ifstream is(path);
  ASSERT_TRUE(is);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "trajectory,shot,record,nominal_probability,errors");
  std::size_t rows = 0;
  for (std::string line; std::getline(is, line);) ++rows;
  EXPECT_EQ(rows, result.total_shots());
  std::remove(path.c_str());
}

TEST(Dataset, ReadRejectsGarbage) {
  const std::string path = "/tmp/ptsbe_test_garbage.bin";
  std::ofstream(path) << "not a dataset";
  EXPECT_THROW((void)dataset::read_binary(path), runtime_failure);
  std::remove(path.c_str());
  EXPECT_THROW((void)dataset::read_binary("/nonexistent/nope.bin"),
               runtime_failure);
}

// An injected pre-built plan (be::Options::plan — the serve cache hook)
// must be fingerprint-checked: a plan from a different program would sweep
// the wrong step list and return plausible-looking records.
TEST(BatchedExecution, InjectedPlanIsFingerprintChecked) {
  const NoisyCircuit program = noisy_ghz(3, 0.1);
  const NoisyCircuit other = noisy_ghz(2, 0.1);
  TrajectorySpec spec;
  spec.shots = 10;
  spec.nominal_probability = 1.0;

  be::Options options;
  options.plan = std::make_shared<const ExecPlan>(build_exec_plan(other, false));
  EXPECT_THROW((void)be::execute(program, {spec}, options), precondition_error);

  // A matching plan is accepted and bit-identical to a plan-less run.
  options.plan = std::make_shared<const ExecPlan>(build_exec_plan(program, false));
  const be::Result with_plan = be::execute(program, {spec}, options);
  const be::Result without_plan = be::execute(program, {spec}, {});
  ASSERT_EQ(with_plan.batches.size(), without_plan.batches.size());
  EXPECT_EQ(with_plan.batches[0].records, without_plan.batches[0].records);
}

// Regression: a crafted format-v1 file (pre device-id removal) must be
// rejected with a clear "unsupported dataset version" error, never
// misparsed — v1 batch blocks carry an extra per-batch device-id field, so
// reading them with the v2 layout would silently shear every field after
// it. Same contract for versions newer than the reader.
TEST(Dataset, ReadRejectsVersion1Header) {
  const std::string path = ::testing::TempDir() + "ptsbe_test_v1_header.bin";
  const auto write_version = [&path](std::uint32_t version) {
    std::ofstream os(path, std::ios::binary);
    os.write("PTSB", 4);
    os.write(reinterpret_cast<const char*>(&version), sizeof version);
    const std::uint64_t num_batches = 1;
    os.write(reinterpret_cast<const char*>(&num_batches), sizeof num_batches);
    // One v1-layout batch block: spec_index, *device_id*, nominal, realized,
    // shots, 0 branches, 1 record. A v2 read of these bytes would produce a
    // plausible-looking but wrong batch — exactly what must not happen.
    const std::uint64_t spec_index = 0, device_id = 3, shots = 1,
                        num_branches = 0, num_records = 1, record = 2;
    const double nominal = 0.5, realized = 0.5;
    os.write(reinterpret_cast<const char*>(&spec_index), sizeof spec_index);
    os.write(reinterpret_cast<const char*>(&device_id), sizeof device_id);
    os.write(reinterpret_cast<const char*>(&nominal), sizeof nominal);
    os.write(reinterpret_cast<const char*>(&realized), sizeof realized);
    os.write(reinterpret_cast<const char*>(&shots), sizeof shots);
    os.write(reinterpret_cast<const char*>(&num_branches), sizeof num_branches);
    os.write(reinterpret_cast<const char*>(&num_records), sizeof num_records);
    os.write(reinterpret_cast<const char*>(&record), sizeof record);
  };

  write_version(1);
  try {
    (void)dataset::read_binary(path);
    FAIL() << "v1 dataset must be rejected";
  } catch (const runtime_failure& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported dataset version 1"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("regenerate"), std::string::npos)
        << e.what();
  }

  write_version(3);  // from the future: same rejection, no misparse
  try {
    (void)dataset::read_binary(path);
    FAIL() << "future-version dataset must be rejected";
  } catch (const runtime_failure& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported dataset version 3"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(BatchedExecution, SpecValidationRejectsBadIndices) {
  const NoisyCircuit noisy = noisy_ghz(2, 0.1);
  TrajectorySpec bad;
  bad.branches = {{999, 0}};
  bad.shots = 1;
  EXPECT_THROW((void)be::execute(noisy, {bad}), precondition_error);
}

}  // namespace
}  // namespace ptsbe
