// Unit + property tests for ptsbe/linalg: Matrix algebra, CPTP checks,
// scaled-unitary detection, Jacobi SVD.

#include <gtest/gtest.h>

#include <cmath>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/linalg/matrix.hpp"
#include "ptsbe/linalg/svd.hpp"

namespace ptsbe {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, RngStream& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return m;
}

TEST(Matrix, IdentityAndTrace) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3.trace(), (cplx{3.0, 0.0}));
  EXPECT_TRUE(is_unitary(i3));
  EXPECT_TRUE(is_hermitian(i3));
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), (cplx{19, 0}));
  EXPECT_EQ(c(0, 1), (cplx{22, 0}));
  EXPECT_EQ(c(1, 0), (cplx{43, 0}));
  EXPECT_EQ(c(1, 1), (cplx{50, 0}));
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  Matrix m(2, 2);
  m(0, 1) = cplx{1.0, 2.0};
  const Matrix d = m.dagger();
  EXPECT_EQ(d(1, 0), (cplx{1.0, -2.0}));
  EXPECT_EQ(d(0, 1), (cplx{0.0, 0.0}));
}

TEST(Matrix, KronDimensionsAndValues) {
  const Matrix k = kron(gates::Z(), gates::X());
  ASSERT_EQ(k.rows(), 4u);
  // Z⊗X: block diag(X, -X).
  EXPECT_EQ(k(0, 1), (cplx{1, 0}));
  EXPECT_EQ(k(2, 3), (cplx{-1, 0}));
  EXPECT_TRUE(is_unitary(k));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(3, 3);
  EXPECT_THROW(a += b, precondition_error);
  EXPECT_THROW((void)(a * Matrix(3, 2)), precondition_error);
  EXPECT_THROW((void)Matrix(2, 3).trace(), precondition_error);
}

TEST(GateLibrary, AllGatesAreUnitary) {
  for (const Matrix& g :
       {gates::I(), gates::X(), gates::Y(), gates::Z(), gates::H(), gates::S(),
        gates::Sdg(), gates::T(), gates::Tdg(), gates::SX(), gates::SXdg(),
        gates::SY(), gates::SYdg(), gates::RX(0.3), gates::RY(1.2),
        gates::RZ(-0.7), gates::P(0.4), gates::U3(0.1, 0.2, 0.3), gates::CX(),
        gates::CZ(), gates::CY(), gates::SWAP(), gates::ISWAP()})
    EXPECT_TRUE(is_unitary(g));
}

TEST(GateLibrary, SqrtGatesSquareToPaulis) {
  EXPECT_TRUE(approx_equal(gates::SX() * gates::SX(), gates::X(), 1e-12));
  EXPECT_TRUE(approx_equal(gates::SY() * gates::SY(), gates::Y(), 1e-12));
}

TEST(GateLibrary, SXEqualsHSH) {
  EXPECT_TRUE(
      approx_equal(gates::H() * gates::S() * gates::H(), gates::SX(), 1e-12));
}

TEST(CptpCheck, ValidKrausSetAccepted) {
  const double p = 0.2;
  std::vector<Matrix> ops{gates::I() * cplx{std::sqrt(1 - p), 0},
                          gates::X() * cplx{std::sqrt(p), 0}};
  EXPECT_TRUE(is_cptp_set(ops));
}

TEST(CptpCheck, NonCptpRejected) {
  std::vector<Matrix> ops{gates::I() * cplx{0.9, 0}};
  EXPECT_FALSE(is_cptp_set(ops));
}

TEST(ScaledUnitary, DetectsAndExtracts) {
  double p = 0.0;
  Matrix u;
  const Matrix k = gates::Y() * cplx{std::sqrt(0.25), 0};
  ASSERT_TRUE(as_scaled_unitary(k, p, &u));
  EXPECT_NEAR(p, 0.25, 1e-12);
  EXPECT_TRUE(approx_equal(u, gates::Y(), 1e-10));
}

TEST(ScaledUnitary, RejectsDampingKraus) {
  const Matrix k(2, 2, {0.0, std::sqrt(0.3), 0.0, 0.0});
  double p = 0.0;
  EXPECT_FALSE(as_scaled_unitary(k, p));
}

class SvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, ReconstructsAndIsOrthogonal) {
  const auto [rows, cols] = GetParam();
  RngStream rng(static_cast<std::uint64_t>(rows * 131 + cols));
  const Matrix a = random_matrix(rows, cols, rng);
  const SvdResult f = svd(a);
  const std::size_t r = std::min<std::size_t>(rows, cols);
  ASSERT_EQ(f.s.size(), r);
  // Descending singular values, all non-negative.
  for (std::size_t i = 0; i + 1 < r; ++i) EXPECT_GE(f.s[i], f.s[i + 1] - 1e-12);
  EXPECT_GE(f.s.back(), -1e-12);
  // Reconstruction A = U·diag(S)·V†.
  Matrix usv(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) {
      cplx acc{0, 0};
      for (std::size_t k = 0; k < r; ++k) acc += f.u(i, k) * f.s[k] * f.vdag(k, j);
      usv(i, j) = acc;
    }
  EXPECT_LT(usv.max_abs_diff(a), 1e-9);
  // Column orthonormality where singular values are significant.
  const Matrix utu = f.u.dagger() * f.u;
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < r; ++j)
      if (f.s[i] > 1e-9 && f.s[j] > 1e-9) {
        EXPECT_NEAR(std::abs(utu(i, j) - (i == j ? cplx{1, 0} : cplx{0, 0})),
                    0.0, 1e-9);
      }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                                           std::pair{4, 4}, std::pair{8, 3},
                                           std::pair{3, 8}, std::pair{16, 16},
                                           std::pair{12, 5}, std::pair{5, 12},
                                           std::pair{32, 32}));

TEST(Svd, RankDeficientMatrix) {
  // Outer product → rank 1.
  Matrix a(4, 4);
  RngStream rng(5);
  std::vector<cplx> u(4), v(4);
  for (int i = 0; i < 4; ++i) {
    u[i] = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    v[i] = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) a(i, j) = u[i] * std::conj(v[j]);
  const SvdResult f = svd(a);
  EXPECT_GT(f.s[0], 1e-6);
  for (std::size_t k = 1; k < f.s.size(); ++k) EXPECT_LT(f.s[k], 1e-9);
}

TEST(Svd, DiagonalMatrixExact) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 3.0, 1e-12);
  EXPECT_NEAR(f.s[1], 2.0, 1e-12);
  EXPECT_NEAR(f.s[2], 1.0, 1e-12);
}

TEST(TruncatedRank, KeepsEnergyBudget) {
  const std::vector<double> s{1.0, 0.5, 0.1, 0.01, 0.001};
  // Budget 0: keep everything except nothing (all weights positive).
  EXPECT_EQ(truncated_rank(s, 0.0), 5u);
  // Huge budget: one value always kept.
  EXPECT_EQ(truncated_rank(s, 1.0), 1u);
  // Cap applies.
  EXPECT_EQ(truncated_rank(s, 0.0, 2), 2u);
  // Small budget trims only the tiny tail.
  const std::size_t k = truncated_rank(s, 1e-5);
  EXPECT_GE(k, 3u);
  EXPECT_LE(k, 4u);
}

}  // namespace
}  // namespace ptsbe
