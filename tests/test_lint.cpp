// ptsbe-lint's own suite: every check is driven over a seeded-violation
// fixture (asserted caught, with the right check id) and over clean code
// (asserted quiet), and the real tree must come back with zero findings —
// which is exactly what the CI static-analysis job enforces.
//
// Fixture paths arrive via compile definitions so the suite runs from any
// build directory:
//   PTSBE_LINT_FIXTURE_DIR  tools/ptsbe_lint/fixtures
//   PTSBE_LINT_SOURCE_DIR   the repository root

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using ptsbe::lint::Finding;
using ptsbe::lint::LintConfig;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PTSBE_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t count_check(const std::vector<Finding>& findings,
                        const std::string& check) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

std::string describe(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings)
    os << f.file << ':' << f.line << ": [" << f.check << "] " << f.message
       << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// Comment/string stripping (the foundation every token check relies on).
// ---------------------------------------------------------------------------

TEST(LintStrip, BlanksCommentsAndLiteralsPreservingLines) {
  const std::string text =
      "int a; // trailing comment\n"
      "/* block\n   spanning */ int b;\n"
      "const char* s = \"quoted text\";\n";
  const std::string stripped = ptsbe::lint::strip_comments_and_strings(text);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("trailing"), std::string::npos);
  EXPECT_EQ(stripped.find("spanning"), std::string::npos);
  EXPECT_EQ(stripped.find("quoted"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, HandlesRawStringsAndEscapes) {
  const std::string text =
      "auto re = R\"(std::tokens (in) raw string)\";\n"
      "const char* e = \"escaped \\\" quote\";\n"
      "int after = 1;\n";
  const std::string stripped = ptsbe::lint::strip_comments_and_strings(text);
  EXPECT_EQ(stripped.find("tokens"), std::string::npos);
  EXPECT_EQ(stripped.find("escaped"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 1;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Check 1: unseeded / nondeterministic randomness.
// ---------------------------------------------------------------------------

TEST(LintRng, FixtureViolationsCaught) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/somewhere/entropy.cpp", read_fixture("unseeded_rng.cpp"),
      LintConfig{});
  EXPECT_EQ(count_check(findings, "unseeded-rng"), 4u) << describe(findings);
  EXPECT_EQ(findings.size(), 4u) << describe(findings);
}

TEST(LintRng, TrajectorySamplingLayerIsAllowlisted) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/trajectory/sampler.cpp", read_fixture("unseeded_rng.cpp"),
      LintConfig{});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintRng, SeededEnginesAndLookalikeIdentifiersQuiet) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/x.cpp",
      "#include <random>\n"
      "int f() { std::mt19937_64 rng(123); int strand_count = 1;\n"
      "  return static_cast<int>(rng()) + strand_count; }\n",
      LintConfig{});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---------------------------------------------------------------------------
// Check 2: unordered iteration in serialization TUs.
// ---------------------------------------------------------------------------

LintConfig fixture_serialization_config() {
  LintConfig config;
  config.serialization_tus = {"ser/"};
  return config;
}

TEST(LintUnordered, FixtureIterationCaught) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "ser/unordered_sink.cpp", read_fixture("unordered_sink.cpp"),
      fixture_serialization_config());
  EXPECT_EQ(count_check(findings, "unordered-iteration"), 2u)
      << describe(findings);
}

TEST(LintUnordered, SameCodeOutsideSerializationLayerQuiet) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/other/unordered_sink.cpp", read_fixture("unordered_sink.cpp"),
      fixture_serialization_config());
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintUnordered, OrderedIterationInSerializationLayerQuiet) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "ser/clean.cpp", read_fixture("clean.cpp"),
      fixture_serialization_config());
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintUnordered, DefaultConfigCoversTheStatsModule) {
  // The analytics layer's byte-stable ShotTable serialisation makes every
  // src/stats TU part of the determinism contract: the default config must
  // fire on unordered iteration anywhere under src/stats/.
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/stats/shot_table.cpp", read_fixture("unordered_sink.cpp"),
      LintConfig{});
  EXPECT_EQ(count_check(findings, "unordered-iteration"), 2u)
      << describe(findings);
}

// ---------------------------------------------------------------------------
// Check 3: FMA in kernel TUs + the CMake contraction guard.
// ---------------------------------------------------------------------------

LintConfig fixture_kernel_config() {
  LintConfig config;
  config.kernel_tus = {"kern/"};
  return config;
}

TEST(LintFma, FixtureFmaCaught) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "kern/fma_kernel.cpp", read_fixture("fma_kernel.cpp"),
      fixture_kernel_config());
  EXPECT_EQ(count_check(findings, "fma-in-kernel-tu"), 2u)
      << describe(findings);
}

TEST(LintFma, MulAddInKernelTuQuiet) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "kern/clean.cpp", read_fixture("clean.cpp"), fixture_kernel_config());
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintFma, KernelCmakeWithoutContractFlagCaught) {
  const std::vector<Finding> findings = ptsbe::lint::lint_kernel_cmake(
      "kern/CMakeLists.txt", read_fixture("kernel_cmake_bad.txt"));
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].check, "kernel-cmake-flags");
}

TEST(LintFma, RealKernelCmakeKeepsContractFlag) {
  std::ifstream in(std::string(PTSBE_LINT_SOURCE_DIR) +
                   "/src/kernels/CMakeLists.txt");
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(ptsbe::lint::lint_kernel_cmake("src/kernels/CMakeLists.txt",
                                             buffer.str())
                  .empty());
}

// ---------------------------------------------------------------------------
// Check 4: self-contained public headers.
// ---------------------------------------------------------------------------

TEST(LintHeader, BadHeaderCaught) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/fixture/include/fixture/bad_header.hpp",
      read_fixture("include/fixture/bad_header.hpp"), LintConfig{});
  EXPECT_EQ(count_check(findings, "header-missing-pragma-once"), 1u)
      << describe(findings);
  // std::vector, std::string and std::mutex each lack a direct include.
  EXPECT_EQ(count_check(findings, "header-self-contained"), 3u)
      << describe(findings);
}

TEST(LintHeader, GoodHeaderQuiet) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/fixture/include/fixture/good_header.hpp",
      read_fixture("include/fixture/good_header.hpp"), LintConfig{});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintHeader, NonHeaderFilesSkipHeaderChecks) {
  const std::vector<Finding> findings = ptsbe::lint::lint_source(
      "src/fixture/bad_not_header.cpp",
      read_fixture("include/fixture/bad_header.hpp"), LintConfig{});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---------------------------------------------------------------------------
// The real tree is clean, and the report is machine-readable + stable.
// ---------------------------------------------------------------------------

TEST(LintTree, RepositoryIsClean) {
  const std::vector<Finding> findings =
      ptsbe::lint::lint_tree(PTSBE_LINT_SOURCE_DIR, LintConfig{});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintTree, ReportIsDeterministic) {
  const LintConfig config;
  const std::string a = ptsbe::lint::report_json(
      ptsbe::lint::lint_tree(PTSBE_LINT_SOURCE_DIR, config));
  const std::string b = ptsbe::lint::report_json(
      ptsbe::lint::lint_tree(PTSBE_LINT_SOURCE_DIR, config));
  EXPECT_EQ(a, b);
}

TEST(LintReport, JsonShape) {
  const std::vector<Finding> findings = {
      {"unseeded-rng", "src/a.cpp", 7, "message with \"quotes\""},
  };
  const std::string json = ptsbe::lint::report_json(findings);
  EXPECT_NE(json.find("\"tool\": \"ptsbe-lint\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\": \"unseeded-rng\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos) << json;

  EXPECT_NE(ptsbe::lint::report_json({}).find("\"count\": 0"),
            std::string::npos);
}

}  // namespace
