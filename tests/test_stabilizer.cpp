// Tests for the Clifford tableau and the Pauli-frame bulk sampler,
// including cross-validation against the statevector backend.

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "ptsbe/noise/channels.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"
#include "ptsbe/stabilizer/tableau.hpp"
#include "ptsbe/statevector/statevector.hpp"
#include "ptsbe/trajectory/trajectory.hpp"

namespace ptsbe {
namespace {

TEST(Tableau, InitialStabilizersAreZ) {
  CliffordTableau t(3);
  EXPECT_EQ(t.stabilizer_row(0), "+ZII");
  EXPECT_EQ(t.stabilizer_row(1), "+IZI");
  EXPECT_EQ(t.stabilizer_row(2), "+IIZ");
}

TEST(Tableau, HadamardMapsZToX) {
  CliffordTableau t(1);
  t.h(0);
  EXPECT_EQ(t.stabilizer_row(0), "+X");
}

TEST(Tableau, BellStateStabilizers) {
  CliffordTableau t(2);
  t.h(0);
  t.cx(0, 1);
  EXPECT_EQ(t.stabilizer_row(0), "+XX");
  EXPECT_EQ(t.stabilizer_row(1), "+ZZ");
}

TEST(Tableau, XFlipsMeasurement) {
  CliffordTableau t(1);
  t.x(0);
  RngStream rng(1);
  bool det = false;
  EXPECT_EQ(t.measure(0, rng, &det), 1u);
  EXPECT_TRUE(det);
}

TEST(Tableau, SOnPlusGivesY) {
  CliffordTableau t(1);
  t.h(0);
  t.s(0);
  EXPECT_EQ(t.stabilizer_row(0), "+Y");
  t.sdg(0);
  EXPECT_EQ(t.stabilizer_row(0), "+X");
}

TEST(Tableau, SqrtGatesMatchDecompositions) {
  // sx = h s h ⇒ sx|0> has stabilizer -Y (since SX Z SX† = -Y... verify via
  // statevector instead: both tableau and sv measure the same distribution).
  CliffordTableau t(1);
  t.sx(0);
  RngStream rng(3);
  int ones = 0;
  for (int i = 0; i < 200; ++i) {
    CliffordTableau fresh(1);
    fresh.sx(0);
    RngStream r2(1000 + i);
    ones += fresh.measure(0, r2);
  }
  EXPECT_NEAR(ones / 200.0, 0.5, 0.12);  // sqrt(X)|0> is equatorial
}

TEST(Tableau, MeasurementCollapseIsSticky) {
  RngStream rng(7);
  CliffordTableau t(1);
  t.h(0);
  const unsigned first = t.measure(0, rng);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t.measure(0, rng), first);
}

TEST(Tableau, BellCorrelations) {
  for (int trial = 0; trial < 20; ++trial) {
    CliffordTableau t(2);
    RngStream rng(100 + trial);
    t.h(0);
    t.cx(0, 1);
    const unsigned a = t.measure(0, rng);
    bool det = false;
    const unsigned b = t.measure(1, rng, &det);
    EXPECT_TRUE(det);
    EXPECT_EQ(a, b);
  }
}

TEST(Tableau, GhzRandomButCorrelated) {
  int ones = 0;
  for (int trial = 0; trial < 400; ++trial) {
    CliffordTableau t(3);
    RngStream rng(500 + trial);
    t.h(0);
    t.cx(0, 1);
    t.cx(1, 2);
    const unsigned a = t.measure(0, rng);
    EXPECT_EQ(t.measure(1, rng), a);
    EXPECT_EQ(t.measure(2, rng), a);
    ones += a;
  }
  EXPECT_NEAR(ones / 400.0, 0.5, 0.08);
}

TEST(Tableau, NamedGateDispatchRejectsNonClifford) {
  CliffordTableau t(1);
  EXPECT_THROW(t.apply_named("t", {0}), precondition_error);
  EXPECT_TRUE(CliffordTableau::is_clifford_name("cz"));
  EXPECT_FALSE(CliffordTableau::is_clifford_name("rx"));
}

TEST(Tableau, CzViaHAndCx) {
  CliffordTableau t(2);
  t.h(0);
  t.h(1);
  t.cz(0, 1);
  // |++> under CZ: stabilizers X⊗Z... → XZ and ZX.
  EXPECT_EQ(t.stabilizer_row(0), "+XZ");
  EXPECT_EQ(t.stabilizer_row(1), "+ZX");
}

// --- Pauli-frame sampler --------------------------------------------------

NoisyCircuit bell_with_noise(double p) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  return nm.apply(c);
}

TEST(PauliFrame, SupportsCliffordPauliOnly) {
  EXPECT_TRUE(PauliFrameSampler::is_supported(bell_with_noise(0.05)));
  Circuit c(1);
  c.t(0);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.05));
  EXPECT_FALSE(PauliFrameSampler::is_supported(nm.apply(c)));
  Circuit c2(1);
  c2.h(0);
  NoiseModel nm2;
  nm2.add_all_gate_noise(channels::amplitude_damping(0.1));
  EXPECT_FALSE(PauliFrameSampler::is_supported(nm2.apply(c2)));
}

TEST(PauliFrame, NoiselessBellIsPerfectlyCorrelated) {
  const NoisyCircuit noisy = bell_with_noise(0.0);
  PauliFrameSampler sampler(noisy, RngStream(9));
  RngStream rng(10);
  const auto records = sampler.sample(2000, rng);
  for (std::uint64_t r : records) {
    const unsigned a = r & 1, b = (r >> 1) & 1;
    EXPECT_EQ(a, b);
  }
}

TEST(PauliFrame, MatchesStatevectorTrajectoriesOnNoisyBell) {
  // Distribution check: frame sampling vs exact density-matrix marginals
  // computed via statevector averaging over explicit branch enumeration is
  // heavy; instead compare to the frame-free expectation: for depolarizing
  // noise on a Bell pair, P(a != b) is analytically p-dependent; just check
  // anticorrelation rate is significantly nonzero and < 0.5.
  const double p = 0.2;
  const NoisyCircuit noisy = bell_with_noise(p);
  PauliFrameSampler sampler(noisy, RngStream(11));
  RngStream rng(12);
  const auto records = sampler.sample(20000, rng);
  double mismatch = 0;
  for (std::uint64_t r : records) mismatch += ((r & 1) != ((r >> 1) & 1));
  mismatch /= records.size();
  EXPECT_GT(mismatch, 0.05);
  EXPECT_LT(mismatch, 0.45);
}

TEST(PauliFrame, RandomOutcomesAreRandomisedAcrossShots) {
  // GHZ without noise: each shot must independently land on 000… or 111…
  // with probability 1/2 — this requires the random initial Z-frame (a
  // single reference sample alone would freeze the outcome).
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).measure_all();
  const NoisyCircuit noisy = NoiseModel{}.apply(c);
  PauliFrameSampler sampler(noisy, RngStream(17));
  RngStream rng(18);
  const auto records = sampler.sample(20000, rng);
  double ones = 0;
  for (std::uint64_t r : records) {
    ASSERT_TRUE(r == 0 || r == 0b111) << r;
    ones += (r == 0b111);
  }
  EXPECT_NEAR(ones / records.size(), 0.5, 0.02);
}

TEST(PauliFrame, AgreesWithDensityMatrixOnCliffordWorkload) {
  // Full distribution check against exact marginals via the statevector
  // trajectory route is covered elsewhere; here compare against the
  // Algorithm-1 statevector baseline on a 4-qubit Clifford+Pauli workload.
  Circuit c(4);
  c.h(0).cx(0, 1).s(1).cx(1, 2).cz(2, 3).h(3).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.05));
  const NoisyCircuit noisy = nm.apply(c);
  PauliFrameSampler sampler(noisy, RngStream(19));
  RngStream rng_f(20), rng_t(21);
  const auto frame_records = sampler.sample(40000, rng_f);
  // Statevector trajectory reference.
  std::map<std::uint64_t, double> ff, ft;
  for (auto r : frame_records) ff[r] += 1.0 / frame_records.size();
  {
    const auto result = traj::run_statevector(noisy, 40000, rng_t);
    for (auto r : result.records) ft[r] += 1.0 / result.records.size();
  }
  double tvd = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const double a = ff.count(i) ? ff[i] : 0.0;
    const double b = ft.count(i) ? ft[i] : 0.0;
    tvd += std::abs(a - b);
  }
  EXPECT_LT(tvd / 2, 0.02);
}

TEST(PauliFrame, ReadoutNoiseFlipsBits) {
  Circuit c(1);
  c.measure(0);
  NoiseModel nm;
  nm.add_measurement_noise(channels::bit_flip(0.25));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_TRUE(PauliFrameSampler::is_supported(noisy));
  PauliFrameSampler sampler(noisy, RngStream(13));
  RngStream rng(14);
  const auto records = sampler.sample(40000, rng);
  double ones = 0;
  for (std::uint64_t r : records) ones += r & 1;
  EXPECT_NEAR(ones / records.size(), 0.25, 0.01);
}

TEST(PauliFrame, BulkEqualsManyIndependentFrames) {
  // Word-packing must not correlate shots: adjacent shots in one word are
  // independent — check pairwise mismatch frequency of neighbouring shots
  // equals 2q(1-q) for a bit-flip channel.
  Circuit c(1);
  c.measure(0);
  NoiseModel nm;
  nm.add_measurement_noise(channels::bit_flip(0.5));
  PauliFrameSampler sampler(nm.apply(c), RngStream(15));
  RngStream rng(16);
  const auto records = sampler.sample(40000, rng);
  double mismatch = 0;
  for (std::size_t i = 0; i + 1 < records.size(); i += 2)
    mismatch += ((records[i] & 1) != (records[i + 1] & 1));
  EXPECT_NEAR(mismatch / (records.size() / 2), 0.5, 0.02);
}

}  // namespace
}  // namespace ptsbe
