// The ptsbe::net wire layer: frame codecs, the consistent-hash shard
// router, and the loopback determinism matrix — results served over TCP
// (across both priority lanes and two shard daemons) must be bit-identical,
// records AND dataset bytes, to a standalone Pipeline::run. Malformed wire
// input (truncated frames, oversized payloads, bad `.ptq` bodies) must
// come back as structured ERROR frames, never a crash or a wedged
// connection.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/core/dataset.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/net/client.hpp"
#include "ptsbe/net/server.hpp"
#include "ptsbe/net/shard_router.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

/// The shared workload: GHZ(n) with depolarizing gate noise and bit-flip
/// readout noise, as canonical `.ptq` text (what a tenant would submit).
std::string ghz_ptq(unsigned qubits, double p = 0.02) {
  Circuit circuit(qubits);
  circuit.h(0);
  for (unsigned q = 0; q + 1 < qubits; ++q) circuit.cx(q, q + 1);
  circuit.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(p));
  noise.add_measurement_noise(channels::bit_flip(p / 2));
  return io::write_circuit(noise.apply(circuit));
}

serve::JobRequest ghz_request(unsigned qubits = 4) {
  serve::JobRequest req;
  req.circuit_text = ghz_ptq(qubits);
  req.strategy_config.nsamples = 300;
  req.strategy_config.nshots = 100;
  req.seed = 7;
  return req;
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Bit-exact batch equality (records, weights, spec identity).
void expect_same_result(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.result.batches.size(), b.result.batches.size());
  for (std::size_t i = 0; i < a.result.batches.size(); ++i) {
    const be::TrajectoryBatch& x = a.result.batches[i];
    const be::TrajectoryBatch& y = b.result.batches[i];
    EXPECT_EQ(x.spec_index, y.spec_index);
    EXPECT_EQ(x.spec.branches, y.spec.branches);
    EXPECT_EQ(x.spec.shots, y.spec.shots);
    EXPECT_EQ(x.records, y.records) << "batch " << i;
    EXPECT_EQ(x.realized_probability, y.realized_probability);
  }
  EXPECT_EQ(a.weighting, b.weighting);
  EXPECT_EQ(a.schedule_executed, b.schedule_executed);
}

net::ClientConfig client_for(const net::Server& server) {
  net::ClientConfig config;
  config.host = "127.0.0.1";
  config.port = server.port();
  config.connect_timeout_ms = 5000;
  return config;
}

// ---------------------------------------------------------------------------
// Frame codecs (no sockets).
// ---------------------------------------------------------------------------

TEST(NetProtocol, BatchCodecRoundTripsBitExactly) {
  be::TrajectoryBatch batch;
  batch.spec_index = 5;
  batch.spec.shots = 12345;
  batch.spec.nominal_probability = 0.1;  // not exactly representable
  batch.spec.branches = {{2, 1}, {7, 3}};
  batch.realized_probability = 1.0 / 3.0;
  batch.records = {0, 0xffffffffffffffffULL, 0x0123456789abcdefULL};

  const std::string bytes = net::encode_batch(batch);
  const be::TrajectoryBatch back = net::decode_batch(bytes);
  EXPECT_EQ(back.spec_index, batch.spec_index);
  EXPECT_EQ(back.spec.shots, batch.spec.shots);
  EXPECT_EQ(back.spec.branches, batch.spec.branches);
  EXPECT_EQ(back.records, batch.records);
  // Doubles as raw bit patterns, not formatted text.
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &batch.realized_probability, 8);
  std::memcpy(&b, &back.realized_probability, 8);
  EXPECT_EQ(a, b);
  std::memcpy(&a, &batch.spec.nominal_probability, 8);
  std::memcpy(&b, &back.spec.nominal_probability, 8);
  EXPECT_EQ(a, b);
}

TEST(NetProtocol, BatchDecodeRejectsMalformedBytes) {
  const std::string good = net::encode_batch(be::TrajectoryBatch{});
  EXPECT_THROW((void)net::decode_batch(good.substr(0, good.size() - 1)),
               net::ProtocolError);
  EXPECT_THROW((void)net::decode_batch(good + 'x'), net::ProtocolError);
  EXPECT_THROW((void)net::decode_batch(""), net::ProtocolError);
  // A huge claimed count must be rejected up front, not allocated.
  std::string hostile(5 * 8, '\0');
  hostile[32] = '\x7f';  // nbranches = enormous
  EXPECT_THROW((void)net::decode_batch(hostile), net::ProtocolError);
}

TEST(NetProtocol, SubmitPayloadRoundTripsJobConfig) {
  serve::JobRequest job = ghz_request(3);
  job.source_name = "alice.ptq";
  job.strategy = "band";
  job.backend = "mps";
  job.schedule = be::Schedule::kSharedPrefix;
  job.threads = 3;
  job.seed = 0xdeadbeefcafeULL;
  job.strategy_config.merge_duplicates = false;
  job.strategy_config.p_min = 1e-9;
  job.strategy_config.p_max = 0.3;
  job.strategy_config.probability_cutoff = 2.5e-7;
  job.strategy_config.max_results = 17;
  job.strategy_config.total_shots = 90001;
  job.strategy_config.boost = 2.75;
  job.strategy_config.radius = 2;
  job.backend_config.fuse_gates = true;
  job.backend_config.mps.max_bond = 32;
  job.backend_config.mps.truncation_error = 3e-11;

  const serve::JobRequest back =
      net::decode_submit_payload(net::encode_submit_payload(job));
  EXPECT_EQ(back.circuit_text, job.circuit_text);
  EXPECT_EQ(back.source_name, job.source_name);
  EXPECT_EQ(back.strategy, job.strategy);
  EXPECT_EQ(back.backend, job.backend);
  EXPECT_EQ(back.schedule, job.schedule);
  EXPECT_EQ(back.threads, job.threads);
  EXPECT_EQ(back.seed, job.seed);
  EXPECT_EQ(back.strategy_config.nsamples, job.strategy_config.nsamples);
  EXPECT_EQ(back.strategy_config.nshots, job.strategy_config.nshots);
  EXPECT_EQ(back.strategy_config.merge_duplicates,
            job.strategy_config.merge_duplicates);
  EXPECT_EQ(back.strategy_config.p_min, job.strategy_config.p_min);
  EXPECT_EQ(back.strategy_config.p_max, job.strategy_config.p_max);
  EXPECT_EQ(back.strategy_config.probability_cutoff,
            job.strategy_config.probability_cutoff);
  EXPECT_EQ(back.strategy_config.max_results,
            job.strategy_config.max_results);
  EXPECT_EQ(back.strategy_config.total_shots,
            job.strategy_config.total_shots);
  EXPECT_EQ(back.strategy_config.boost, job.strategy_config.boost);
  EXPECT_EQ(back.strategy_config.radius, job.strategy_config.radius);
  EXPECT_EQ(back.backend_config.fuse_gates, job.backend_config.fuse_gates);
  EXPECT_EQ(back.backend_config.mps.max_bond,
            job.backend_config.mps.max_bond);
  EXPECT_EQ(back.backend_config.mps.truncation_error,
            job.backend_config.mps.truncation_error);
}

TEST(NetProtocol, SubmitPayloadRejectsMalformedConfig) {
  const auto code_of = [](const std::string& payload) -> std::string {
    try {
      (void)net::decode_submit_payload(payload);
    } catch (const net::ProtocolError& e) {
      return e.code();
    }
    return "(no throw)";
  };
  EXPECT_EQ(code_of("seed=1\n"), net::errc::kParse);  // no circuit marker
  EXPECT_EQ(code_of("not a kv line\ncircuit\nptq 1\n"), net::errc::kParse);
  EXPECT_EQ(code_of("bogus_key=1\ncircuit\nptq 1\n"), net::errc::kParse);
  EXPECT_EQ(code_of("seed=notanumber\ncircuit\nptq 1\n"), net::errc::kParse);
  EXPECT_EQ(code_of("schedule=bogus\ncircuit\nptq 1\n"), net::errc::kParse);
  EXPECT_EQ(code_of("fuse=2\ncircuit\nptq 1\n"), net::errc::kParse);
}

TEST(NetProtocol, SubmitEncodeRejectsNewlinesInStringFields) {
  // A '\n' inside a string field would inject extra key=value lines into
  // the SUBMIT payload — rejected at encode time, like the tenant label.
  serve::JobRequest job = ghz_request(3);
  job.source_name = "evil\nseed=999";
  EXPECT_THROW((void)net::encode_submit_payload(job), net::ProtocolError);
  job = ghz_request(3);
  job.strategy = "band\nmerge=0";
  EXPECT_THROW((void)net::encode_submit_payload(job), net::ProtocolError);
  job = ghz_request(3);
  job.backend = "mps\nfuse=1";
  EXPECT_THROW((void)net::encode_submit_payload(job), net::ProtocolError);
}

TEST(NetProtocol, ResultMetaAndErrorPayloadsRoundTrip) {
  net::ResultMeta meta;
  meta.job_id = 42;
  meta.strategy = "band";
  meta.backend = "mps";
  meta.weighting = be::Weighting::kProbabilityWeighted;
  meta.schedule_requested = be::Schedule::kSharedPrefix;
  meta.schedule_executed = be::Schedule::kIndependent;
  meta.num_specs = 9;
  meta.num_batches = 9;
  meta.plan_cache_hit = true;
  const net::ResultMeta back =
      net::decode_result_meta(net::encode_result_meta(meta));
  EXPECT_EQ(back.job_id, meta.job_id);
  EXPECT_EQ(back.strategy, meta.strategy);
  EXPECT_EQ(back.backend, meta.backend);
  EXPECT_EQ(back.weighting, meta.weighting);
  EXPECT_EQ(back.schedule_requested, meta.schedule_requested);
  EXPECT_EQ(back.schedule_executed, meta.schedule_executed);
  EXPECT_EQ(back.num_specs, meta.num_specs);
  EXPECT_EQ(back.num_batches, meta.num_batches);
  EXPECT_EQ(back.plan_cache_hit, meta.plan_cache_hit);

  const net::WireError parse_error =
      net::decode_error(net::encode_error({"x.ptq:3:1: bad gate", 3, 1}));
  EXPECT_EQ(parse_error.message, "x.ptq:3:1: bad gate");
  EXPECT_EQ(parse_error.line, 3u);
  EXPECT_EQ(parse_error.column, 1u);

  // Message is last and consumes the rest: newlines survive.
  const net::WireError multi =
      net::decode_error(net::encode_error({"line one\nline two", 0, 0}));
  EXPECT_EQ(multi.message, "line one\nline two");
  EXPECT_EQ(multi.line, 0u);
}

// ---------------------------------------------------------------------------
// Shard router.
// ---------------------------------------------------------------------------

TEST(NetShardRouter, ConsistentRoutingWithMinimalRemapping) {
  net::ShardRouter router(64);
  router.add_endpoint("10.0.0.1:7411");
  router.add_endpoint("10.0.0.2:7411");
  router.add_endpoint("10.0.0.3:7411");
  ASSERT_EQ(router.size(), 3u);

  // Deterministic and reasonably spread.
  std::map<std::string, int> load;
  std::map<std::uint64_t, std::string> assignment;
  for (std::uint64_t key = 0; key < 600; ++key) {
    const std::uint64_t fp = net::ShardRouter::hash64(std::to_string(key));
    const std::string& owner = router.route(fp);
    EXPECT_EQ(owner, router.route(fp));  // stable
    ++load[owner];
    assignment[fp] = owner;
  }
  EXPECT_EQ(load.size(), 3u);
  for (const auto& [endpoint, count] : load) {
    EXPECT_GT(count, 600 / 10) << endpoint;  // no starved shard
  }

  // Removing one shard only remaps that shard's keys.
  router.remove_endpoint("10.0.0.2:7411");
  ASSERT_EQ(router.size(), 2u);
  for (const auto& [fp, owner] : assignment) {
    if (owner != "10.0.0.2:7411") {
      EXPECT_EQ(router.route(fp), owner);
    } else {
      EXPECT_NE(router.route(fp), "10.0.0.2:7411");
    }
  }
}

TEST(NetShardRouter, ShardedClientRejectsBadEndpointPorts) {
  // Non-numeric and out-of-range ports must fail with the project's
  // precondition diagnostic, not a raw std::stoul throw or a silent
  // uint16_t truncation ('70000' must not become port 4464).
  for (const char* endpoint :
       {"127.0.0.1:notaport", "127.0.0.1:70000", "127.0.0.1:0",
        "127.0.0.1:7411x"}) {
    net::ShardedClient fleet({endpoint});
    EXPECT_THROW((void)fleet.stats_json(endpoint), precondition_error)
        << endpoint;
  }
}

TEST(NetShardRouter, FingerprintUsesPlanCacheCanonicalText) {
  serve::JobRequest job = ghz_request(4);
  // Formatting differences collapse to the same canonical text, hence the
  // same shard — exactly how PlanCache would coalesce them.
  serve::JobRequest reformatted = job;
  reformatted.circuit_text =
      "# a comment\n\n" + job.circuit_text + "\n# trailing\n";
  EXPECT_EQ(net::ShardRouter::fingerprint(job),
            net::ShardRouter::fingerprint(reformatted));

  // Different backend config = different plan = different fingerprint.
  serve::JobRequest fused = job;
  fused.backend_config.fuse_gates = true;
  EXPECT_NE(net::ShardRouter::fingerprint(job),
            net::ShardRouter::fingerprint(fused));

  serve::JobRequest other = job;
  other.circuit_text = ghz_ptq(5);
  EXPECT_NE(net::ShardRouter::fingerprint(job),
            net::ShardRouter::fingerprint(other));

  serve::JobRequest malformed;
  malformed.circuit_text = "ptq 1\nbogus\n";
  EXPECT_THROW((void)net::ShardRouter::fingerprint(malformed), io::ParseError);
}

// ---------------------------------------------------------------------------
// The loopback determinism matrix: strategy × backend × schedule × threads
// × priority lane, submitted through TWO daemon processes' worth of
// servers behind the shard router — records and dataset bytes must equal a
// standalone Pipeline::run, bit for bit.
// ---------------------------------------------------------------------------

struct WireCell {
  unsigned qubits;
  const char* strategy;
  const char* backend;
  be::Schedule schedule;
  std::size_t threads;
  serve::Priority priority;
};

TEST(NetLoopback, DeterminismMatrixAcrossLanesAndShards) {
  const std::vector<WireCell> cells = {
      {3, "probabilistic", "statevector", be::Schedule::kIndependent, 1,
       serve::Priority::kNormal},
      {4, "probabilistic", "statevector", be::Schedule::kSharedPrefix, 2,
       serve::Priority::kHigh},
      {5, "probabilistic", "mps", be::Schedule::kIndependent, 2,
       serve::Priority::kNormal},
      {6, "probabilistic", "stabilizer", be::Schedule::kSharedPrefix, 1,
       serve::Priority::kHigh},
      {4, "band", "statevector", be::Schedule::kSharedPrefix, 2,
       serve::Priority::kHigh},
      {5, "band", "mps", be::Schedule::kSharedPrefix, 1,
       serve::Priority::kNormal},
      {3, "proportional", "statevector", be::Schedule::kIndependent, 2,
       serve::Priority::kNormal},
      {3, "enumerate", "densmat", be::Schedule::kIndependent, 1,
       serve::Priority::kHigh},
  };
  const auto request_for = [&](const WireCell& cell) {
    serve::JobRequest req;
    req.circuit_text = ghz_ptq(cell.qubits);
    req.strategy = cell.strategy;
    req.backend = cell.backend;
    req.schedule = cell.schedule;
    req.threads = cell.threads;
    req.priority = cell.priority;
    req.tenant = std::string("tenant-") + cell.strategy;
    req.seed = 20260807;
    req.strategy_config.nsamples = 200;
    req.strategy_config.nshots = 50;
    req.strategy_config.p_min = 1e-9;
    req.strategy_config.p_max = 1.0;
    req.strategy_config.probability_cutoff = 1e-6;
    return req;
  };

  net::ServerConfig server_config;
  server_config.engine.workers = 2;
  server_config.engine.plan_cache_capacity = 8;
  net::Server shard_a(server_config);
  net::Server shard_b(server_config);
  net::ShardedClient fleet({shard_a.endpoint(), shard_b.endpoint()});

  // The matrix only pins multi-process behaviour if both shards actually
  // serve traffic.
  std::map<std::string, int> shard_load;
  for (const WireCell& cell : cells) {
    ++shard_load[fleet.route(request_for(cell))];
  }
  ASSERT_EQ(shard_load.size(), 2u)
      << "matrix circuits all hash to one shard; vary the qubit counts";

  bool lanes[2] = {false, false};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const WireCell& cell = cells[i];
    SCOPED_TRACE(std::string(cell.strategy) + "/" + cell.backend + "/" +
                 be::to_string(cell.schedule) + "/t" +
                 std::to_string(cell.threads) + "/" +
                 serve::to_string(cell.priority));
    lanes[static_cast<int>(cell.priority)] = true;

    const serve::JobRequest req = request_for(cell);
    const net::RemoteRun remote = fleet.submit(req);
    const RunResult standalone =
        Pipeline(io::parse_circuit(req.circuit_text))
            .strategy(req.strategy, req.strategy_config)
            .backend(req.backend, req.backend_config)
            .schedule(req.schedule)
            .threads(req.threads)
            .seed(req.seed)
            .run();
    expect_same_result(standalone, remote.run);
    EXPECT_EQ(remote.run.num_specs, standalone.num_specs);

    // Dataset bytes, not just records: the full export path agrees even
    // after a TCP round trip.
    const std::string dir = ::testing::TempDir();
    const std::string path_a = dir + "net_det_a_" + std::to_string(i) + ".bin";
    const std::string path_b = dir + "net_det_b_" + std::to_string(i) + ".bin";
    standalone.to_binary(path_a);
    remote.run.to_binary(path_b);
    EXPECT_EQ(file_bytes(path_a), file_bytes(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
  }
  EXPECT_TRUE(lanes[0]);
  EXPECT_TRUE(lanes[1]);

  // Both shards report served jobs in their stats JSON.
  for (const std::string& endpoint : fleet.endpoints()) {
    const std::string json = fleet.stats_json(endpoint);
    EXPECT_EQ(json.find("\"served\": 0,"), std::string::npos)
        << endpoint << " served nothing: " << json;
  }
  shard_a.stop();
  shard_b.stop();
}

TEST(NetLoopback, RepeatCircuitKeepsPlanCacheAffinity) {
  net::ServerConfig config;
  config.engine.workers = 1;
  net::Server shard_a(config);
  net::Server shard_b(config);
  net::ShardedClient fleet({shard_a.endpoint(), shard_b.endpoint()});

  const serve::JobRequest req = ghz_request(4);
  const net::RemoteRun first = fleet.submit(req);
  const net::RemoteRun second = fleet.submit(req);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit)
      << "repeat circuit must be routed to the shard holding its plan";
  expect_same_result(first.run, second.run);
  shard_a.stop();
  shard_b.stop();
}

// ---------------------------------------------------------------------------
// Malformed wire input: structured ERROR frames, never a crash or a wedged
// connection.
// ---------------------------------------------------------------------------

/// Read frames until the server replies (skipping idle ticks), with a
/// bounded number of attempts so a silent server fails the test instead of
/// hanging it.
net::FdStream::ReadStatus read_reply(net::FdStream& stream, net::Frame& out) {
  for (int i = 0; i < 100; ++i) {
    const net::FdStream::ReadStatus status = stream.read_frame(out);
    if (status != net::FdStream::ReadStatus::kIdle) return status;
  }
  return net::FdStream::ReadStatus::kIdle;
}

/// A raw connected FdStream (client side) with a short receive tick, for
/// byte-level abuse of a server's port.
std::unique_ptr<net::FdStream> raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    throw runtime_failure("raw connect failed");
  }
  timeval tv{0, 100000};
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return std::make_unique<net::FdStream>(fd);
}

class NetMalformedInput : public ::testing::Test {
 protected:
  void SetUp() override {
    net::ServerConfig config;
    config.engine.workers = 1;
    config.max_payload = 1 << 20;
    server_ = std::make_unique<net::Server>(config);
  }

  std::unique_ptr<net::FdStream> raw_connection() {
    net::Client probe(client_for(*server_));
    probe.ping();  // cheap way to prove the server is up
    return raw_connect(server_->port());
  }

  std::unique_ptr<net::Server> server_;
};

TEST_F(NetMalformedInput, TruncatedFrameGetsProtocolError) {
  auto stream = raw_connection();
  // Header claims 100 payload bytes; deliver 10 and half-close. The server
  // must answer with a structured ERROR frame, not crash or hang.
  const std::string bytes = "SUBMIT alice normal 100\n0123456789";
  ASSERT_EQ(::send(stream->fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  ::shutdown(stream->fd(), SHUT_WR);

  net::Frame reply;
  ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
  EXPECT_EQ(reply.type, "ERROR");
  ASSERT_EQ(reply.args.size(), 1u);
  EXPECT_EQ(reply.args[0], net::errc::kProtocol);
  EXPECT_NE(net::decode_error(reply.payload).message.find("mid-frame"),
            std::string::npos);
}

TEST_F(NetMalformedInput, EofRightAfterHeaderIsMidFrameError) {
  auto stream = raw_connection();
  // Header claims 100 payload bytes; half-close before sending ANY of
  // them. The header is consumed, so this is a truncated frame — not a
  // clean disconnect — and must come back as a structured ERROR.
  const std::string bytes = "SUBMIT alice normal 100\n";
  ASSERT_EQ(::send(stream->fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  ::shutdown(stream->fd(), SHUT_WR);

  net::Frame reply;
  ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
  EXPECT_EQ(reply.type, "ERROR");
  ASSERT_EQ(reply.args.size(), 1u);
  EXPECT_EQ(reply.args[0], net::errc::kProtocol);
  EXPECT_NE(net::decode_error(reply.payload).message.find("mid-frame"),
            std::string::npos);
}

TEST(NetMalformedInputStall, HeaderThenPayloadStallIsDroppedAndStopCompletes) {
  net::ServerConfig config;
  config.engine.workers = 1;
  config.idle_poll_ms = 50;
  config.frame_timeout_ms = 300;
  auto server = std::make_unique<net::Server>(config);

  // A complete header claiming a payload, then total silence with the
  // socket held open: the frame deadline must arm even though zero payload
  // bytes ever arrive, the server must drop the connection with a
  // structured ERROR within frame_timeout_ms (plus poll ticks), and a
  // subsequent stop() must not block on the stalled connection thread.
  auto stream = raw_connect(server->port());
  const std::string bytes = "SUBMIT alice normal 100\n";
  ASSERT_EQ(::send(stream->fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  using clock = std::chrono::steady_clock;
  const auto sent_at = clock::now();
  net::Frame reply;
  ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
  const auto replied_at = clock::now();
  EXPECT_EQ(reply.type, "ERROR");
  ASSERT_EQ(reply.args.size(), 1u);
  EXPECT_EQ(reply.args[0], net::errc::kProtocol);
  EXPECT_NE(net::decode_error(reply.payload).message.find("stalled"),
            std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(replied_at -
                                                                  sent_at)
                .count(),
            5000);

  // The socket is still open on our side; stop() must still complete
  // promptly because the connection thread already gave up on the frame.
  const auto stop_at = clock::now();
  server->stop();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                clock::now() - stop_at)
                .count(),
            5000);
}

TEST_F(NetMalformedInput, OversizedPayloadGetsOversizeError) {
  auto stream = raw_connection();
  const std::string bytes = "SUBMIT alice normal 999999999\n";
  ASSERT_EQ(::send(stream->fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  net::Frame reply;
  ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
  EXPECT_EQ(reply.type, "ERROR");
  ASSERT_EQ(reply.args.size(), 1u);
  EXPECT_EQ(reply.args[0], net::errc::kOversize);
}

TEST_F(NetMalformedInput, GarbageHeadersGetProtocolError) {
  {
    auto stream = raw_connection();
    const std::string bytes = "GARBAGE\n";
    ASSERT_EQ(::send(stream->fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    net::Frame reply;
    ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
    EXPECT_EQ(reply.type, "ERROR");
    EXPECT_EQ(reply.args.at(0), net::errc::kProtocol);
  }
  {
    auto stream = raw_connection();
    // A header with no newline within the bound: rejected at the cap.
    const std::string bytes(net::kMaxHeaderBytes + 16, 'x');
    ASSERT_EQ(::send(stream->fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    net::Frame reply;
    ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
    EXPECT_EQ(reply.type, "ERROR");
    EXPECT_EQ(reply.args.at(0), net::errc::kProtocol);
  }
}

TEST_F(NetMalformedInput, BadPtqBodyGetsParseErrorWithPosition) {
  net::Client client(client_for(*server_));
  serve::JobRequest bad = ghz_request();
  bad.circuit_text = "ptq 1\nqubits 2\nhh 0\n";
  bad.source_name = "tenant.ptq";
  try {
    (void)client.submit(bad);
    FAIL() << "malformed .ptq must be rejected";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.code(), net::errc::kParse);
    // ParseError's line:column, relative to the `.ptq` section.
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 1u);
    EXPECT_NE(std::string(e.what()).find("tenant.ptq:3:1"),
              std::string::npos);
  }

  // The connection survives a rejected job: the next submit succeeds.
  const net::RemoteRun good = client.submit(ghz_request());
  EXPECT_GT(good.run.result.total_shots(), 0u);

  // And the engine counted the failure, not a crash.
  const serve::EngineStats stats = server_->stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.served, 1u);
}

TEST_F(NetMalformedInput, UnknownFrameTypeKeepsConnectionUsable) {
  auto stream = raw_connection();
  stream->write_frame(net::Frame{"BOGUS", {}, ""});
  net::Frame reply;
  ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
  EXPECT_EQ(reply.type, "ERROR");
  EXPECT_EQ(reply.args.at(0), net::errc::kProtocol);

  stream->write_frame(net::Frame{"PING", {}, ""});
  ASSERT_EQ(read_reply(*stream, reply), net::FdStream::ReadStatus::kFrame);
  EXPECT_EQ(reply.type, "PONG");
}

// ---------------------------------------------------------------------------
// QoS over the wire: tenant quotas and the stats JSON.
// ---------------------------------------------------------------------------

TEST(NetLoopback, TenantQuotaRejectsWithQuotaCode) {
  net::ServerConfig config;
  config.engine.workers = 1;
  config.engine.tenant_quota = 1;
  net::Server server(config);

  // A heavy job (many samples, few shots — long runtime but small BATCH
  // frames) keeps tenant "alice" at her outstanding quota while the second
  // submission arrives on another connection.
  serve::JobRequest heavy = ghz_request(14);
  heavy.tenant = "alice";
  heavy.strategy_config.nsamples = 1500;
  heavy.strategy_config.nshots = 50;

  net::RemoteRun heavy_run;
  std::thread first([&] {
    net::Client client(client_for(server));
    heavy_run = client.submit(heavy);
  });
  // Submit the moment the heavy job is observed holding alice's quota slot —
  // a fixed sleep would race against how fast the kernels burn through it.
  for (;;) {
    const serve::EngineStats running = server.stats();
    const auto it = running.tenants.find("alice");
    if (it != running.tenants.end() && it->second.outstanding >= 1) break;
    std::this_thread::yield();
  }

  net::Client client(client_for(server));
  serve::JobRequest second = ghz_request(4);
  second.tenant = "alice";
  try {
    (void)client.submit(second);
    ADD_FAILURE() << "quota must reject the second outstanding job";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.code(), net::errc::kQuota);
  }

  // A different tenant is not affected by alice's quota.
  serve::JobRequest other = ghz_request(4);
  other.tenant = "bob";
  EXPECT_GT(client.submit(other).run.result.total_shots(), 0u);

  first.join();
  EXPECT_GT(heavy_run.run.result.total_shots(), 0u);

  const serve::EngineStats stats = server.stats();
  EXPECT_EQ(stats.tenants.at("alice").rejected, 1u);
  EXPECT_EQ(stats.tenants.at("alice").completed, 1u);
  EXPECT_EQ(stats.tenants.at("bob").completed, 1u);
  server.stop();
}

TEST(NetLoopback, StatsJsonReportsPerTenantCounters) {
  net::ServerConfig config;
  config.engine.workers = 1;
  net::Server server(config);
  net::Client client(client_for(server));

  serve::JobRequest a = ghz_request(3);
  a.tenant = "alice";
  serve::JobRequest b = ghz_request(3);
  b.tenant = "bob";
  (void)client.submit(a);
  (void)client.submit(a);
  (void)client.submit(b);

  const std::string json = client.stats_json();
  EXPECT_NE(json.find("\"tenants\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"alice\": {\"admitted\": 2,"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bob\": {\"admitted\": 1,"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue_high_water\": 1"), std::string::npos) << json;
  server.stop();
}

// ---------------------------------------------------------------------------
// Graceful drain over the wire.
// ---------------------------------------------------------------------------

TEST(NetLoopback, DrainRejectsNewAdmissionsAndFinishesInFlight) {
  net::ServerConfig config;
  config.engine.workers = 1;
  config.idle_poll_ms = 50;
  net::Server server(config);

  // An in-flight heavy job, submitted before the drain begins (many
  // samples, few shots: long runtime, small BATCH frames).
  serve::JobRequest heavy = ghz_request(14);
  heavy.strategy_config.nsamples = 1500;
  heavy.strategy_config.nshots = 50;
  net::RemoteRun heavy_run;
  std::thread in_flight([&] {
    net::Client client(client_for(server));
    heavy_run = client.submit(heavy);
  });
  // Wait until the heavy job is actually running (admitted and dequeued)
  // instead of sleeping a fixed interval: a fixed sleep is both flaky on a
  // loaded box (frame not yet arrived) and slow on a fast one.
  const auto running_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const serve::EngineStats mid = server.stats();
    if (mid.submitted >= 1 && mid.queue_depth == 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), running_deadline)
        << "heavy job never started running";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // A connection established before the drain: its SUBMIT must be refused
  // with the *distinct* shutting-down status once draining. The request is
  // built up front so the frame lands well inside the connection's first
  // idle-poll tick after the drain flag flips.
  net::Client established(client_for(server));
  established.ping();
  const serve::JobRequest late_job = ghz_request(3);
  server.begin_drain();
  EXPECT_TRUE(server.draining());
  try {
    (void)established.submit(late_job);
    ADD_FAILURE() << "drain must reject new admissions";
  } catch (const net::RemoteError& e) {
    EXPECT_EQ(e.code(), net::errc::kShuttingDown);
  }

  // stop() blocks until the in-flight job has streamed everything.
  server.stop();
  in_flight.join();
  EXPECT_GT(heavy_run.run.result.total_shots(), 0u);

  // Bit-identical even though the server was draining while it ran.
  const RunResult standalone = Pipeline(io::parse_circuit(heavy.circuit_text))
                                   .strategy(heavy.strategy,
                                             heavy.strategy_config)
                                   .backend(heavy.backend,
                                            heavy.backend_config)
                                   .schedule(heavy.schedule)
                                   .threads(heavy.threads)
                                   .seed(heavy.seed)
                                   .run();
  expect_same_result(standalone, heavy_run.run);

  // The listener is gone: fresh connections fail fast.
  net::ClientConfig dead = client_for(server);
  dead.connect_timeout_ms = 1000;
  net::Client late(dead);
  EXPECT_THROW(late.ping(), runtime_failure);
}

}  // namespace
}  // namespace ptsbe
