// Tests for the density-matrix ground-truth backend, including the
// equivalence rho = average over Kraus branches that underpins everything.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {
namespace {

TEST(DensityMatrix, InitialStateIsPureZero) {
  DensityMatrix dm(2);
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-14);
  EXPECT_NEAR(dm.purity(), 1.0, 1e-14);
  EXPECT_EQ(dm.element(0, 0), (cplx{1, 0}));
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(1).cx(1, 2).ry(2, 0.8);
  DensityMatrix dm(3);
  dm.apply_circuit(c);
  StateVector sv(3);
  sv.apply_circuit(c);
  // rho == |psi><psi|
  for (std::uint64_t r = 0; r < 8; ++r)
    for (std::uint64_t col = 0; col < 8; ++col)
      EXPECT_NEAR(std::abs(dm.element(r, col) -
                           sv.amplitude(r) * std::conj(sv.amplitude(col))),
                  0.0, 1e-12);
  EXPECT_NEAR(dm.fidelity_with_pure(sv.amplitudes()), 1.0, 1e-12);
}

TEST(DensityMatrix, DepolarizingDrivesToMaximallyMixed) {
  DensityMatrix dm(1);
  const ChannelPtr ch = channels::depolarizing(0.75);  // full depolarization
  dm.apply_channel(*ch, std::array{0u});
  EXPECT_NEAR(std::abs(dm.element(0, 0) - cplx{0.5, 0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(dm.element(1, 1) - cplx{0.5, 0}), 0.0, 1e-12);
  EXPECT_NEAR(dm.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingFixedPoint) {
  DensityMatrix dm(1);
  dm.apply_unitary(gates::X(), std::array{0u});  // |1>
  const ChannelPtr ch = channels::amplitude_damping(1.0);
  dm.apply_channel(*ch, std::array{0u});
  // Full damping returns |0>.
  EXPECT_NEAR(std::abs(dm.element(0, 0) - cplx{1, 0}), 0.0, 1e-12);
}

TEST(DensityMatrix, ChannelPreservesTrace) {
  DensityMatrix dm(2);
  dm.apply_unitary(gates::H(), std::array{0u});
  dm.apply_unitary(gates::CX(), std::array{0u, 1u});
  for (const ChannelPtr& ch :
       {channels::depolarizing(0.1), channels::amplitude_damping(0.3),
        channels::phase_damping(0.2)}) {
    dm.apply_channel(*ch, std::array{1u});
    EXPECT_NEAR(dm.trace_real(), 1.0, 1e-10) << ch->name();
  }
  const ChannelPtr ch2 = channels::depolarizing2(0.2);
  dm.apply_channel(*ch2, std::array{0u, 1u});
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-10);
}

TEST(DensityMatrix, NoisyCircuitExpandsChannels) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.05));
  const NoisyCircuit noisy = nm.apply(c);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-10);
  EXPECT_LT(dm.purity(), 1.0);  // noise mixed the state
}

TEST(DensityMatrix, ExpectationPauliOnBell) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  DensityMatrix dm(2);
  dm.apply_circuit(c);
  EXPECT_NEAR(dm.expectation_pauli("XX", std::array{0u, 1u}), 1.0, 1e-12);
  EXPECT_NEAR(dm.expectation_pauli("YY", std::array{0u, 1u}), -1.0, 1e-12);
  EXPECT_NEAR(dm.expectation_pauli("ZZ", std::array{0u, 1u}), 1.0, 1e-12);
}

TEST(DensityMatrix, SampleShotsFollowDiagonal) {
  DensityMatrix dm(1);
  dm.apply_unitary(gates::RY(2 * std::asin(std::sqrt(0.3))), std::array{0u});
  dm.apply_channel(*channels::phase_damping(0.9), std::array{0u});
  RngStream rng(12);
  const auto shots = dm.sample_shots(30000, rng);
  double ones = 0;
  for (auto s : shots) ones += s & 1;
  EXPECT_NEAR(ones / 30000.0, 0.3, 0.01);
}

TEST(DensityMatrix, RejectsTooManyQubits) {
  EXPECT_THROW(DensityMatrix(14), precondition_error);
}

}  // namespace
}  // namespace ptsbe
