// Tests for the MPS tensor-network backend: exact agreement with the
// statevector at unbounded bond dimension, truncation behaviour, perfect
// sampling with and without cached environments.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/statevector/statevector.hpp"
#include "ptsbe/tensornet/mps.hpp"

namespace ptsbe {
namespace {

Circuit random_clifford_t_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  RngStream rng(seed);
  Circuit c(n);
  for (unsigned d = 0; d < depth; ++d) {
    for (unsigned q = 0; q < n; ++q) {
      switch (rng.uniform_index(5)) {
        case 0: c.h(q); break;
        case 1: c.t(q); break;
        case 2: c.s(q); break;
        case 3: c.rx(q, rng.uniform(0, 3.1)); break;
        default: break;
      }
    }
    for (unsigned q = 0; q + 1 < n; ++q)
      if (rng.uniform() < 0.4) c.cx(q, q + 1);
    // Occasional long-range gate to exercise swap routing.
    if (n > 2 && rng.uniform() < 0.5)
      c.cz(0, n - 1);
  }
  return c;
}

TEST(Mps, InitialStateIsZero) {
  MpsState mps(4);
  EXPECT_NEAR(std::abs(mps.amplitude(0) - cplx{1, 0}), 0.0, 1e-14);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-14);
  EXPECT_EQ(mps.max_bond_dim(), 1u);
}

TEST(Mps, SingleQubitGate) {
  MpsState mps(1);
  mps.apply_gate(gates::H(), std::array{0u});
  EXPECT_NEAR(std::abs(mps.amplitude(0)), std::sqrt(0.5), 1e-14);
  EXPECT_NEAR(std::abs(mps.amplitude(1)), std::sqrt(0.5), 1e-14);
}

TEST(Mps, BellStateAdjacent) {
  MpsState mps(2);
  mps.apply_gate(gates::H(), std::array{0u});
  mps.apply_gate(gates::CX(), std::array{0u, 1u});
  EXPECT_NEAR(std::abs(mps.amplitude(0b00)), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(std::abs(mps.amplitude(0b11)), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(std::abs(mps.amplitude(0b01)), 0.0, 1e-12);
  EXPECT_EQ(mps.max_bond_dim(), 2u);
}

TEST(Mps, ReversedControlTarget) {
  // CX with control above target exercises the SWAP-conjugation path.
  MpsState mps(2);
  StateVector sv(2);
  for (auto q : {0u, 1u}) {
    mps.apply_gate(gates::H(), std::array{q});
    sv.apply_gate(gates::H(), std::array{q});
  }
  mps.apply_gate(gates::CX(), std::array{1u, 0u});
  sv.apply_gate(gates::CX(), std::array{1u, 0u});
  mps.apply_gate(gates::T(), std::array{0u});
  sv.apply_gate(gates::T(), std::array{0u});
  const auto dense = mps.to_statevector();
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(std::abs(dense[i] - sv.amplitude(i)), 0.0, 1e-10);
}

class MpsVsStatevector : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpsVsStatevector, ExactAgreementUnbounded) {
  const unsigned n = 6;
  const Circuit c = random_clifford_t_circuit(n, 5, GetParam());
  MpsState mps(n);  // unbounded bond, tiny truncation error
  StateVector sv(n);
  mps.apply_circuit(c);
  sv.apply_circuit(c);
  const auto dense = mps.to_statevector();
  double max_diff = 0;
  for (std::uint64_t i = 0; i < (1u << n); ++i)
    max_diff = std::max(max_diff, std::abs(dense[i] - sv.amplitude(i)));
  EXPECT_LT(max_diff, 1e-8) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpsVsStatevector,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Mps, LongRangeGateMatchesStatevector) {
  const unsigned n = 5;
  MpsState mps(n);
  StateVector sv(n);
  mps.apply_gate(gates::H(), std::array{0u});
  sv.apply_gate(gates::H(), std::array{0u});
  mps.apply_gate(gates::CX(), std::array{0u, 4u});
  sv.apply_gate(gates::CX(), std::array{0u, 4u});
  const auto dense = mps.to_statevector();
  for (std::uint64_t i = 0; i < (1u << n); ++i)
    EXPECT_NEAR(std::abs(dense[i] - sv.amplitude(i)), 0.0, 1e-10);
}

TEST(Mps, TruncationCapsBondAndRecordsLoss) {
  MpsConfig cfg;
  cfg.max_bond = 2;
  const unsigned n = 6;
  MpsState mps(n, cfg);
  const Circuit c = random_clifford_t_circuit(n, 6, 42);
  mps.apply_circuit(c);
  EXPECT_LE(mps.max_bond_dim(), 2u);
  EXPECT_GT(mps.stats().svd_count, 0u);
  // A depth-6 random circuit on 6 qubits generically exceeds χ=2, so some
  // weight must have been discarded.
  EXPECT_GT(mps.stats().total_discarded_weight, 0.0);
  // Norm decreased by the discarded weight but stays close to 1.
  EXPECT_LE(mps.norm2(), 1.0 + 1e-9);
}

TEST(Mps, KrausBranchProbabilityMatchesStatevector) {
  const unsigned n = 4;
  const Circuit c = random_clifford_t_circuit(n, 4, 7);
  MpsState mps(n);
  StateVector sv(n);
  mps.apply_circuit(c);
  sv.apply_circuit(c);
  const double gamma = 0.3;
  const Matrix k(2, 2, {0.0, std::sqrt(gamma), 0.0, 0.0});
  for (unsigned q = 0; q < n; ++q)
    EXPECT_NEAR(mps.branch_probability(k, std::array{q}),
                sv.branch_probability(k, std::array{q}), 1e-9);
}

TEST(Mps, KrausBranchApplicationRenormalizes) {
  MpsState mps(3);
  mps.apply_gate(gates::H(), std::array{1u});
  const double gamma = 0.5;
  const Matrix k(2, 2, {0.0, std::sqrt(gamma), 0.0, 0.0});
  const double p = mps.apply_kraus_branch(k, std::array{1u});
  EXPECT_NEAR(p, gamma / 2, 1e-10);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-10);
}

TEST(Mps, TwoQubitKrausBranch) {
  MpsState mps(3);
  mps.apply_gate(gates::H(), std::array{0u});
  mps.apply_gate(gates::CX(), std::array{0u, 1u});
  // XX branch of a correlated channel (scaled unitary → probability equals
  // the scale regardless of state).
  Matrix xx = kron(gates::X(), gates::X());
  xx *= cplx{std::sqrt(0.3), 0.0};
  const double p = mps.apply_kraus_branch(xx, std::array{0u, 1u});
  EXPECT_NEAR(p, 0.3, 1e-9);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-9);
}

TEST(Mps, SamplingMatchesAmplitudes) {
  const unsigned n = 4;
  const Circuit c = random_clifford_t_circuit(n, 4, 11);
  MpsState mps(n);
  mps.apply_circuit(c);
  const auto dense = mps.to_statevector();
  RngStream rng(21);
  const std::size_t m = 40000;
  const auto shots = mps.sample_shots(m, rng);
  std::map<std::uint64_t, double> freq;
  for (auto s : shots) freq[s] += 1.0 / m;
  for (std::uint64_t i = 0; i < (1u << n); ++i)
    EXPECT_NEAR(freq[i], std::norm(dense[i]), 0.02) << "index " << i;
}

TEST(Mps, UncachedSamplerSameDistribution) {
  const unsigned n = 3;
  const Circuit c = random_clifford_t_circuit(n, 3, 13);
  MpsState mps(n);
  mps.apply_circuit(c);
  const auto dense = mps.to_statevector();
  RngStream rng(22);
  std::map<std::uint64_t, double> freq;
  const std::size_t m = 20000;
  for (std::size_t i = 0; i < m; ++i) freq[mps.sample_one_uncached(rng)] += 1.0 / m;
  for (std::uint64_t i = 0; i < (1u << n); ++i)
    EXPECT_NEAR(freq[i], std::norm(dense[i]), 0.02);
}

TEST(Mps, GhzSamplingOnlyTwoOutcomes) {
  const unsigned n = 10;
  MpsState mps(n);
  mps.apply_gate(gates::H(), std::array{0u});
  for (unsigned q = 0; q + 1 < n; ++q)
    mps.apply_gate(gates::CX(), std::array{q, q + 1});
  RngStream rng(23);
  const auto shots = mps.sample_shots(2000, rng);
  const std::uint64_t all_ones = (1ULL << n) - 1;
  int ones = 0;
  for (auto s : shots) {
    ASSERT_TRUE(s == 0 || s == all_ones) << s;
    ones += (s == all_ones);
  }
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Mps, FortyQubitGhzIsCheap) {
  // Far beyond statevector reach on this host — the point of the TN backend.
  const unsigned n = 40;
  MpsState mps(n);
  mps.apply_gate(gates::H(), std::array{0u});
  for (unsigned q = 0; q + 1 < n; ++q)
    mps.apply_gate(gates::CX(), std::array{q, q + 1});
  EXPECT_EQ(mps.max_bond_dim(), 2u);
  RngStream rng(24);
  const auto shots = mps.sample_shots(100, rng);
  const std::uint64_t all_ones = (1ULL << n) - 1;
  for (auto s : shots) EXPECT_TRUE(s == 0 || s == all_ones);
}

TEST(Mps, ResetClearsState) {
  MpsState mps(3);
  mps.apply_gate(gates::H(), std::array{0u});
  mps.apply_gate(gates::CX(), std::array{0u, 2u});
  mps.reset();
  EXPECT_NEAR(std::abs(mps.amplitude(0) - cplx{1, 0}), 0.0, 1e-14);
  EXPECT_EQ(mps.max_bond_dim(), 1u);
}

}  // namespace
}  // namespace ptsbe
