// ptsbe::stats — out-of-core dataset analytics: the seekable Reader vs
// read_binary (both byte sources), StreamWriter flush-prefix semantics,
// ShotTable aggregation/serialisation determinism, the four BranchTab-style
// comparison metrics (exact zero at bitwise equality, hand-computed values
// elsewhere), the k-way shard merge under a memory budget, the serve
// engine's per-tenant ShotTable aggregate, and the net-loopback shard
// property (per-shard table merge == single-process table, byte for byte).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ptsbe/common/error.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/net/client.hpp"
#include "ptsbe/net/server.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/serve/engine.hpp"
#include "ptsbe/stats/compare.hpp"
#include "ptsbe/stats/dataset_reader.hpp"
#include "ptsbe/stats/merge.hpp"
#include "ptsbe/stats/shot_table.hpp"

namespace ptsbe {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "stats_" + name + ".bin";
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

be::TrajectoryBatch make_batch(std::size_t spec_index,
                               std::vector<BranchChoice> branches,
                               std::vector<std::uint64_t> records,
                               double nominal = 0.125) {
  be::TrajectoryBatch batch;
  batch.spec_index = spec_index;
  batch.spec.branches = std::move(branches);
  batch.spec.shots = records.size();
  batch.spec.nominal_probability = nominal;
  batch.realized_probability = nominal * 0.5;
  batch.records = std::move(records);
  return batch;
}

be::Result make_result() {
  be::Result result;
  result.batches.push_back(make_batch(0, {}, {0, 0, 1, 3}));
  result.batches.push_back(make_batch(1, {{2, 1}}, {1, 1, 1}, 0.0625));
  result.batches.push_back(make_batch(2, {{0, 3}, {4, 1}}, {}, 0.03125));
  result.batches.push_back(make_batch(3, {{1, 2}}, {7, 0, 7, 7, 2}, 0.25));
  return result;
}

void expect_batches_equal(const be::TrajectoryBatch& a,
                          const be::TrajectoryBatch& b) {
  EXPECT_EQ(a.spec_index, b.spec_index);
  EXPECT_EQ(a.spec.shots, b.spec.shots);
  EXPECT_EQ(a.spec.nominal_probability, b.spec.nominal_probability);
  EXPECT_EQ(a.realized_probability, b.realized_probability);
  ASSERT_EQ(a.spec.branches.size(), b.spec.branches.size());
  for (std::size_t i = 0; i < a.spec.branches.size(); ++i) {
    EXPECT_EQ(a.spec.branches[i].site, b.spec.branches[i].site);
    EXPECT_EQ(a.spec.branches[i].branch, b.spec.branches[i].branch);
  }
  EXPECT_EQ(a.records, b.records);
}

/// A small noisy GHZ chain as `.ptq` text (for the serve/net tests).
std::string ghz_ptq(unsigned qubits) {
  Circuit c(qubits);
  c.h(0);
  for (unsigned q = 0; q + 1 < qubits; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.02));
  noise.add_measurement_noise(channels::bit_flip(0.01));
  return io::write_circuit(noise.apply(c));
}

// ---------------------------------------------------------------------------
// Reader: round-trips, byte sources, header rejection, hostile inputs.
// ---------------------------------------------------------------------------

TEST(StatsReader, MatchesReadBinaryUnderBothByteSources) {
  const std::string path = temp_path("roundtrip");
  const be::Result original = make_result();
  dataset::write_binary(path, original);
  const be::Result bulk = dataset::read_binary(path);

  for (const dataset::ViewMode mode :
       {dataset::ViewMode::kMmap, dataset::ViewMode::kStream}) {
    SCOPED_TRACE(dataset::to_string(mode));
    dataset::Reader reader(path, mode);
    EXPECT_EQ(reader.mapped(), mode == dataset::ViewMode::kMmap);
    EXPECT_EQ(reader.num_batches(), bulk.batches.size());
    EXPECT_EQ(reader.file_bytes(), slurp(path).size());
    be::TrajectoryBatch batch;
    std::size_t n = 0;
    while (reader.next(batch)) {
      ASSERT_LT(n, bulk.batches.size());
      expect_batches_equal(bulk.batches[n], batch);
      ++n;
    }
    EXPECT_EQ(n, bulk.batches.size());
    EXPECT_FALSE(reader.next(batch));  // stays exhausted
  }
  std::remove(path.c_str());
}

TEST(StatsReader, AutoModeFallsSomewhereValid) {
  const std::string path = temp_path("auto");
  dataset::write_binary(path, make_result());
  dataset::Reader reader = dataset::open_view(path);
  be::TrajectoryBatch batch;
  std::size_t n = 0;
  while (reader.next(batch)) ++n;
  EXPECT_EQ(n, 4u);
  std::remove(path.c_str());
}

TEST(StatsReader, SeekIsExactInBothDirections) {
  const std::string path = temp_path("seek");
  const be::Result original = make_result();
  dataset::write_binary(path, original);
  dataset::Reader reader(path);
  be::TrajectoryBatch batch;

  reader.seek_batch(2);  // forward skip-scan, nothing decoded yet
  EXPECT_EQ(reader.position(), 2u);
  ASSERT_TRUE(reader.next(batch));
  expect_batches_equal(original.batches[2], batch);

  reader.seek_batch(0);  // backward, O(1) once indexed
  ASSERT_TRUE(reader.next(batch));
  expect_batches_equal(original.batches[0], batch);

  reader.seek_batch(reader.num_batches());  // pin at end
  EXPECT_FALSE(reader.next(batch));

  EXPECT_THROW(reader.seek_batch(reader.num_batches() + 1),
               precondition_error);
  std::remove(path.c_str());
}

TEST(StatsReader, RejectsForeignAndVersionedHeaders) {
  const std::string path = temp_path("badheader");

  spit(path, "not a dataset at all");
  EXPECT_THROW(dataset::Reader{path}, runtime_failure);

  spit(path, "PT");  // shorter than any header
  EXPECT_THROW(dataset::Reader{path}, runtime_failure);

  // A version-1 file: same magic, rejected with the regeneration hint —
  // identical contract to read_binary.
  std::string v1("PTSB", 4);
  const std::uint32_t version = 1;
  const std::uint64_t count = 0;
  v1.append(reinterpret_cast<const char*>(&version), sizeof(version));
  v1.append(reinterpret_cast<const char*>(&count), sizeof(count));
  spit(path, v1);
  try {
    dataset::Reader reader(path);
    FAIL() << "v1 header accepted";
  } catch (const runtime_failure& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported dataset version 1"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("regenerate"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(StatsReader, HostileLengthFieldsFailBeforeAllocation) {
  const std::string path = temp_path("hostile");
  // Header declaring one batch, then a block whose num_branches field
  // claims more pairs than the file could possibly hold.
  std::string bytes("PTSB", 4);
  const std::uint32_t version = dataset::kFormatVersion;
  const std::uint64_t count = 1;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  const std::uint64_t fixed[5] = {0, 0, 0, 4,
                                  std::numeric_limits<std::uint64_t>::max()};
  bytes.append(reinterpret_cast<const char*>(fixed), sizeof(fixed));
  spit(path, bytes);

  dataset::Reader reader(path);
  be::TrajectoryBatch batch;
  EXPECT_THROW(reader.next(batch), invariant_error);
  std::remove(path.c_str());
}

TEST(StatsReader, TruncatedTailIsReportedNotSilentlyDropped) {
  const std::string path = temp_path("truncated");
  dataset::write_binary(path, make_result());
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 3));  // mid-record cut

  dataset::Reader reader(path);
  be::TrajectoryBatch batch;
  EXPECT_THROW({
    while (reader.next(batch)) {
    }
  }, invariant_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// StreamWriter: size accessors + the flushed-prefix regression.
// ---------------------------------------------------------------------------

TEST(StatsStreamWriter, AccessorsTrackAppends) {
  const std::string path = temp_path("accessors");
  const be::Result original = make_result();
  {
    dataset::StreamWriter writer(path);
    EXPECT_EQ(writer.batches_written(), 0u);
    EXPECT_EQ(writer.record_count(), 0u);
    EXPECT_EQ(writer.bytes_written(), dataset::kHeaderBytes);
    for (const be::TrajectoryBatch& batch : original.batches)
      writer.append(batch);
    EXPECT_EQ(writer.batches_written(), 4u);
    EXPECT_EQ(writer.record_count(), 12u);
    writer.close();
    // After close the byte count is exactly the file size.
    EXPECT_EQ(writer.bytes_written(), slurp(path).size());
  }
  std::remove(path.c_str());
}

TEST(StatsStreamWriter, FlushedPrefixReadsAsCompleteDataset) {
  // Regression for the out-of-core contract: a file whose final chunk was
  // flushed but where later appends never reached a close (an aborted
  // streaming run) must read back as exactly the flushed prefix.
  const std::string path = temp_path("flush_prefix");
  const std::string crashed = temp_path("flush_prefix_crashed");
  const be::Result original = make_result();

  dataset::StreamWriter writer(path);
  writer.append(original.batches[0]);
  writer.append(original.batches[1]);
  writer.flush();
  const std::uint64_t flushed_bytes = writer.bytes_written();
  EXPECT_EQ(flushed_bytes, slurp(path).size());  // flush hit the disk

  // More appends land after the flush and are never flushed or closed —
  // snapshot the on-disk state mid-stream, as a crash would leave it.
  writer.append(original.batches[2]);
  writer.append(original.batches[3]);
  writer.flush();  // flush data so the snapshot sees the trailing bytes
  {
    std::string on_disk = slurp(path);
    // Rewind the header count to the 2-batch flush point: the snapshot now
    // has trailing bytes beyond what its header declares.
    spit(crashed, on_disk);
    std::fstream patch(crashed,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(4 + sizeof(std::uint32_t));
    const std::uint64_t two = 2;
    patch.write(reinterpret_cast<const char*>(&two), sizeof(two));
  }
  writer.close();

  dataset::Reader reader(crashed);
  EXPECT_EQ(reader.num_batches(), 2u);
  be::TrajectoryBatch batch;
  ASSERT_TRUE(reader.next(batch));
  expect_batches_equal(original.batches[0], batch);
  ASSERT_TRUE(reader.next(batch));
  expect_batches_equal(original.batches[1], batch);
  EXPECT_FALSE(reader.next(batch));  // trailing bytes ignored by contract

  // The fully-closed file still reads in full.
  EXPECT_EQ(dataset::Reader(path).num_batches(), 4u);
  std::remove(path.c_str());
  std::remove(crashed.c_str());
}

TEST(StatsStreamWriter, FlushAfterCloseIsRejected) {
  const std::string path = temp_path("flush_closed");
  dataset::StreamWriter writer(path);
  writer.close();
  EXPECT_THROW(writer.flush(), precondition_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ShotTable: aggregation, diff, normalise, serialisation determinism.
// ---------------------------------------------------------------------------

TEST(StatsShotTable, AddMergeDiffNormalise) {
  stats::ShotTable a;
  a.add(3);
  a.add(3);
  a.add(1);
  stats::ShotTable b;
  b.add(3);
  b.add(7, 2.0);

  stats::ShotTable merged = a;
  merged.merge(b);  // BranchTab_plusEquals semantics
  EXPECT_EQ(merged.total(), 6.0);
  EXPECT_EQ(merged.distinct(), 3u);
  EXPECT_EQ(merged.weight_of(3), 3.0);
  EXPECT_EQ(merged.weight_of(7), 2.0);
  EXPECT_EQ(merged.weight_of(42), 0.0);

  const stats::ShotTable d = merged.diff(a);
  EXPECT_EQ(d.weight_of(3), 1.0);
  EXPECT_EQ(d.weight_of(7), 2.0);
  EXPECT_FALSE(d.contains(1));       // exact-zero differences are dropped
  EXPECT_TRUE(a.diff(a).empty());    // self-diff is the empty table

  stats::ShotTable p = merged;
  p.normalise();
  EXPECT_DOUBLE_EQ(p.total(), 1.0);
  EXPECT_EQ(p.weight_of(3), 3.0 / 6.0);

  stats::ShotTable empty;
  EXPECT_THROW(empty.normalise(), precondition_error);
}

TEST(StatsShotTable, SerialisationIsByteStableAcrossInsertionOrder) {
  stats::ShotTable forward;
  stats::ShotTable backward;
  for (std::uint64_t r = 0; r < 64; ++r) forward.add(r * 37 % 101, 1.5);
  for (std::uint64_t r = 64; r-- > 0;) backward.add(r * 37 % 101, 1.5);
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.serialize(), backward.serialize());

  const stats::ShotTable back =
      stats::ShotTable::deserialize(forward.serialize());
  EXPECT_EQ(back, forward);
  EXPECT_EQ(back.serialize(), forward.serialize());
}

TEST(StatsShotTable, DeserializeRejectsCorruptBytes) {
  EXPECT_THROW(stats::ShotTable::deserialize("junk"), invariant_error);
  stats::ShotTable t;
  t.add(5);
  std::string bytes = t.serialize();
  bytes.resize(bytes.size() - 1);  // truncate the last weight
  EXPECT_THROW(stats::ShotTable::deserialize(bytes), invariant_error);
}

TEST(StatsShotTable, TableOfFileMatchesTableOfResult) {
  const std::string path = temp_path("table_of_file");
  const be::Result original = make_result();
  dataset::write_binary(path, original);
  const stats::ShotTable from_file = stats::table_of_file(path);
  const stats::ShotTable from_result = stats::table_of_result(original);
  EXPECT_EQ(from_file, from_result);
  EXPECT_EQ(from_file.total(), 12.0);
  std::remove(path.c_str());
}

TEST(StatsShotTable, JsonTruncationIsDeterministic) {
  stats::ShotTable t;
  for (std::uint64_t r = 0; r < 10; ++r) t.add(r);
  const std::string full = stats::to_json(t);
  EXPECT_EQ(full.find("\"truncated\""), std::string::npos);
  const std::string cut = stats::to_json(t, 3);
  // Smallest records first, then the truncation marker.
  EXPECT_NE(cut.find("\"records\":{\"0\":1,\"1\":1,\"2\":1}"),
            std::string::npos)
      << cut;
  EXPECT_NE(cut.find("\"truncated\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Comparison metrics: exact zero at equality, hand-computed elsewhere.
// ---------------------------------------------------------------------------

TEST(StatsCompare, BitIdenticalTablesGiveExactlyZeroEverywhere) {
  stats::ShotTable t;
  // Awkward weights on purpose: the zero must come from o/e == 1.0 being
  // exact, not from the weights being round numbers.
  t.add(0, 3.0);
  t.add(5, 0.1);
  t.add(9, 1e-9);
  t.add(1234567, 7.25);
  const stats::Comparison c = stats::compare(t, t);
  EXPECT_EQ(c.kl_divergence, 0.0);
  EXPECT_EQ(c.chi_squared_cost, 0.0);
  EXPECT_EQ(c.poisson_log_cost, 0.0);
  EXPECT_EQ(c.total_variation, 0.0);
  EXPECT_TRUE(c.exact_match());
}

TEST(StatsCompare, HandComputedValues) {
  stats::ShotTable observed;
  observed.add(0, 3.0);
  observed.add(1, 1.0);
  stats::ShotTable expected;
  expected.add(0, 2.0);
  expected.add(1, 2.0);

  // Normalised: p = (3/4, 1/4), q = (1/2, 1/2).
  const double kl =
      0.75 * std::log(0.75 / 0.5) + 0.25 * std::log(0.25 / 0.5);
  EXPECT_DOUBLE_EQ(stats::kl_divergence(observed, expected), kl);

  // Raw counts: (3-2)^2/2 + (1-2)^2/2 = 1.
  EXPECT_DOUBLE_EQ(stats::chi_squared_cost(observed, expected), 1.0);

  // Deviance: 2*[3 ln(3/2) - 1] + 2*[1 ln(1/2) + 1].
  const double poisson = 2.0 * (3.0 * std::log(3.0 / 2.0) - 1.0) +
                         2.0 * (1.0 * std::log(0.5) + 1.0);
  EXPECT_DOUBLE_EQ(stats::poisson_log_cost(observed, expected), poisson);

  // TV: 0.5 * (|3/4-1/2| + |1/4-1/2|) = 0.25.
  EXPECT_DOUBLE_EQ(stats::total_variation(observed, expected), 0.25);
}

TEST(StatsCompare, ObservedSupportOutsideExpectationIsInfinite) {
  stats::ShotTable observed;
  observed.add(0, 1.0);
  observed.add(1, 1.0);
  stats::ShotTable expected;
  expected.add(0, 2.0);

  EXPECT_TRUE(std::isinf(stats::kl_divergence(observed, expected)));
  EXPECT_TRUE(std::isinf(stats::chi_squared_cost(observed, expected)));
  EXPECT_TRUE(std::isinf(stats::poisson_log_cost(observed, expected)));
  const double tv = stats::total_variation(observed, expected);
  EXPECT_TRUE(std::isfinite(tv));

  // The reverse direction stays finite: `expected`'s whole support lies
  // inside `observed`'s, so D(expected ‖ observed) = 1·ln(1/0.5) = ln 2.
  EXPECT_DOUBLE_EQ(stats::kl_divergence(expected, observed),
                   std::log(2.0));
  EXPECT_DOUBLE_EQ(tv, 0.5);
  const std::string json =
      stats::comparison_to_json(stats::compare(observed, expected));
  EXPECT_NE(json.find("\"kl_divergence\":\"inf\""), std::string::npos);
  EXPECT_NE(json.find("\"exact_match\":false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// k-way merge: byte identity, ordering, the memory budget.
// ---------------------------------------------------------------------------

TEST(StatsMerge, RoundRobinShardsMergeBackToOriginalBytes) {
  const be::Result original = make_result();
  const std::string whole = temp_path("merge_whole");
  dataset::write_binary(whole, original);

  const std::size_t kShards = 3;
  std::vector<std::string> shard_paths;
  {
    std::vector<std::unique_ptr<dataset::StreamWriter>> writers;
    for (std::size_t s = 0; s < kShards; ++s) {
      shard_paths.push_back(temp_path("merge_shard" + std::to_string(s)));
      writers.push_back(
          std::make_unique<dataset::StreamWriter>(shard_paths.back()));
    }
    for (std::size_t i = 0; i < original.batches.size(); ++i)
      writers[i % kShards]->append(original.batches[i]);
    for (auto& w : writers) w->close();
  }

  const std::string merged = temp_path("merge_out");
  const stats::MergeReport report =
      stats::merge_datasets(merged, shard_paths);
  EXPECT_EQ(report.inputs, kShards);
  EXPECT_EQ(report.batches, original.batches.size());
  EXPECT_EQ(report.records, 12u);
  EXPECT_EQ(report.bytes_out, slurp(merged).size());
  EXPECT_GT(report.peak_buffered_bytes, 0u);
  EXPECT_EQ(slurp(merged), slurp(whole));

  // Merging the merge with an empty shard is the identity.
  const std::string empty_shard = temp_path("merge_empty");
  dataset::StreamWriter(empty_shard).close();
  const std::string merged2 = temp_path("merge_out2");
  (void)stats::merge_datasets(merged2, {merged, empty_shard});
  EXPECT_EQ(slurp(merged2), slurp(whole));

  for (const std::string& p : shard_paths) std::remove(p.c_str());
  for (const std::string& p : {whole, merged, empty_shard, merged2})
    std::remove(p.c_str());
}

TEST(StatsMerge, BudgetSmallerThanHeadBatchesThrows) {
  const be::Result original = make_result();
  const std::string a = temp_path("budget_a");
  const std::string b = temp_path("budget_b");
  dataset::write_binary(a, original);
  dataset::write_binary(b, original);

  stats::MergeOptions opts;
  opts.memory_budget_bytes = 8;  // cannot hold even one head batch
  const std::string out = temp_path("budget_out");
  EXPECT_THROW(stats::merge_datasets(out, {a, b}, opts), runtime_failure);

  // A feasible budget reports a peak within it.
  opts.memory_budget_bytes = 1 << 20;
  const stats::MergeReport report =
      stats::merge_datasets(out, {a, b}, opts);
  EXPECT_LE(report.peak_buffered_bytes, opts.memory_budget_bytes);

  EXPECT_THROW(stats::merge_datasets(out, {}), precondition_error);
  for (const std::string& p : {a, b, out}) std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// Serve: the per-tenant ShotTable aggregate behind EngineStats.
// ---------------------------------------------------------------------------

TEST(StatsServe, TenantAggregateMatchesJobRecordsOnBothPaths) {
  serve::EngineConfig config;
  config.workers = 1;
  serve::Engine engine(config);

  serve::JobRequest req;
  req.circuit_text = ghz_ptq(3);
  req.tenant = "tab-tenant";
  req.seed = 7;
  req.strategy_config.nsamples = 100;
  req.strategy_config.nshots = 20;

  serve::JobHandle first = engine.submit(req);
  stats::ShotTable expected = stats::table_of_result(first.wait().result);

  // The same job streamed: the aggregate must keep growing identically
  // (streaming taps the sink path, not the materialised result).
  std::vector<std::uint64_t> streamed_records;
  serve::JobRequest streaming = req;
  streaming.stream_sink = [&](be::TrajectoryBatch&& batch) {
    for (const std::uint64_t r : batch.records)
      streamed_records.push_back(r);
  };
  serve::JobHandle second = engine.submit(streaming);
  second.wait();
  for (const std::uint64_t r : streamed_records) expected.add(r);

  const serve::EngineStats snapshot = engine.stats();
  const auto it = snapshot.tenants.find("tab-tenant");
  ASSERT_NE(it, snapshot.tenants.end());
  EXPECT_EQ(it->second.shots, expected);
  EXPECT_EQ(it->second.shot_overflow, 0u);
  EXPECT_EQ(it->second.shots.serialize(), expected.serialize());

  const std::string json = serve::stats_to_json(snapshot);
  EXPECT_NE(json.find("\"shots\": {\"total\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shot_overflow\": 0"), std::string::npos);
}

TEST(StatsServe, CapacityBoundSpillsNewRecordsToOverflow) {
  serve::EngineConfig config;
  config.workers = 1;
  config.tenant_shot_table_capacity = 1;  // one distinct record only
  serve::Engine engine(config);

  serve::JobRequest req;
  req.circuit_text = ghz_ptq(3);
  req.tenant = "bounded";
  req.seed = 7;
  req.strategy_config.nsamples = 100;
  req.strategy_config.nshots = 20;
  serve::JobHandle job = engine.submit(req);

  const stats::ShotTable full = stats::table_of_result(job.wait().result);
  ASSERT_GT(full.distinct(), 1u) << "workload too clean to test overflow";

  const serve::EngineStats snapshot = engine.stats();
  const serve::TenantStats& t = snapshot.tenants.at("bounded");
  EXPECT_EQ(t.shots.distinct(), 1u);
  EXPECT_GT(t.shot_overflow, 0u);
  // Tabulated + spilled covers every record exactly once.
  EXPECT_EQ(t.shots.total() + static_cast<double>(t.shot_overflow),
            full.total());
}

TEST(StatsServe, ZeroCapacityDisablesAggregation) {
  serve::EngineConfig config;
  config.workers = 1;
  config.tenant_shot_table_capacity = 0;
  serve::Engine engine(config);

  serve::JobRequest req;
  req.circuit_text = ghz_ptq(3);
  req.tenant = "off";
  req.seed = 7;
  req.strategy_config.nsamples = 50;
  req.strategy_config.nshots = 10;
  serve::JobHandle job = engine.submit(req);
  job.wait();

  const serve::EngineStats snapshot = engine.stats();
  const serve::TenantStats& t = snapshot.tenants.at("off");
  EXPECT_TRUE(t.shots.empty());
  EXPECT_EQ(t.shot_overflow, 0u);
}

// ---------------------------------------------------------------------------
// The net-loopback shard property: merging per-shard ShotTables equals the
// single-process table, byte for byte after re-serialisation — and the
// STATS frame carries the aggregate.
// ---------------------------------------------------------------------------

TEST(StatsNetLoopback, PerShardTableMergeEqualsSingleProcessTable) {
  serve::JobRequest req;
  req.circuit_text = ghz_ptq(4);
  req.tenant = "shard-prop";
  req.seed = 20260807;
  req.strategy_config.nsamples = 150;
  req.strategy_config.nshots = 40;

  // Two daemon processes' worth of servers serve the same job — their
  // results are bit-identical by the determinism contract, so slicing even
  // specs from A and odd specs from B yields genuine cross-process shards.
  net::Server daemon_a{{}};
  net::Server daemon_b{{}};
  net::ShardedClient client_a({daemon_a.endpoint()});
  net::ShardedClient client_b({daemon_b.endpoint()});
  const RunResult run_a = client_a.submit(req).run;
  const RunResult run_b = client_b.submit(req).run;

  const std::string shard_even = temp_path("net_shard_even");
  const std::string shard_odd = temp_path("net_shard_odd");
  {
    dataset::StreamWriter even(shard_even);
    dataset::StreamWriter odd(shard_odd);
    for (const be::TrajectoryBatch& batch : run_a.result.batches)
      if (batch.spec_index % 2 == 0) even.append(batch);
    for (const be::TrajectoryBatch& batch : run_b.result.batches)
      if (batch.spec_index % 2 == 1) odd.append(batch);
    even.close();
    odd.close();
  }

  // Also check the wire stats surface while the daemons are up.
  EXPECT_NE(client_a.stats_json(daemon_a.endpoint()).find("\"shots\""),
            std::string::npos);
  daemon_a.stop();
  daemon_b.stop();

  const RunResult local = Pipeline(io::parse_circuit(req.circuit_text))
                              .strategy(req.strategy, req.strategy_config)
                              .backend(req.backend, req.backend_config)
                              .seed(req.seed)
                              .run();
  const std::string local_path = temp_path("net_local");
  local.to_binary(local_path);

  // Property 1: per-shard table merge == single-process table, and the
  // re-serialised bytes agree exactly.
  stats::ShotTable merged_tables = stats::table_of_file(shard_even);
  merged_tables.merge(stats::table_of_file(shard_odd));
  const stats::ShotTable single = stats::table_of_file(local_path);
  EXPECT_EQ(merged_tables, single);
  EXPECT_EQ(merged_tables.serialize(), single.serialize());
  EXPECT_TRUE(stats::compare(merged_tables, single).exact_match());

  // Property 2: the out-of-core file merge reproduces the single-process
  // dataset bytes themselves.
  const std::string merged_path = temp_path("net_merged");
  (void)stats::merge_datasets(merged_path, {shard_even, shard_odd});
  EXPECT_EQ(slurp(merged_path), slurp(local_path));

  for (const std::string& p :
       {shard_even, shard_odd, local_path, merged_path})
    std::remove(p.c_str());
}

}  // namespace
}  // namespace ptsbe
