// Unit tests for ptsbe/common: Philox RNG, RngStream, bit utilities,
// thread pool, device pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/device_pool.hpp"
#include "ptsbe/common/philox.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/common/thread_pool.hpp"
#include "ptsbe/common/version.hpp"

namespace ptsbe {
namespace {

TEST(Philox, KnownAnswerZeroKeyZeroCounter) {
  // Reference vector from the Random123 distribution (philox4x32-10,
  // counter = 0, key = 0).
  const auto out = Philox4x32::bijection({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  const auto out = Philox4x32::bijection(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, DeterministicAcrossInstances) {
  Philox4x32 a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, SubsequencesDiffer) {
  Philox4x32 a(42, 0), b(42, 1);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a() != b());
  EXPECT_TRUE(any_diff);
}

TEST(Philox, DiscardBlocksMatchesManualDraws) {
  Philox4x32 a(123), b(123);
  for (int i = 0; i < 8; ++i) (void)a();  // 2 blocks
  b.discard_blocks(2);
  EXPECT_EQ(a(), b());
}

TEST(Philox, NextBelowIsUnbiasedEnough) {
  Philox4x32 g(99);
  std::array<int, 5> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[g.next_below(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(Philox, DoublesInUnitInterval) {
  Philox4x32 g(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngStream, SubstreamsAreIndependentAndReproducible) {
  RngStream master(2024);
  RngStream s1 = master.substream(5);
  RngStream s2 = master.substream(5);
  RngStream s3 = master.substream(6);
  bool all_eq = true, any_diff = false;
  for (int i = 0; i < 50; ++i) {
    const double a = s1.uniform(), b = s2.uniform(), c = s3.uniform();
    all_eq &= (a == b);
    any_diff |= (a != c);
  }
  EXPECT_TRUE(all_eq);
  EXPECT_TRUE(any_diff);
}

TEST(RngStream, CategoricalRespectsWeights) {
  RngStream rng(11);
  const std::vector<double> w{0.1, 0.0, 0.9};
  int hits2 = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = rng.categorical(w);
    ASSERT_NE(k, 1u);  // zero-weight bin never selected
    hits2 += (k == 2);
  }
  EXPECT_NEAR(hits2 / 20000.0, 0.9, 0.02);
}

TEST(RngStream, CategoricalRejectsEmptyAndZero) {
  RngStream rng(1);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{}),
               precondition_error);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{0.0, 0.0}),
               precondition_error);
}

TEST(RngStream, SortedUniformsAreSortedAndUniform) {
  RngStream rng(3);
  const auto u = rng.sorted_uniforms(10000);
  ASSERT_EQ(u.size(), 10000u);
  EXPECT_TRUE(std::is_sorted(u.begin(), u.end()));
  EXPECT_GE(u.front(), 0.0);
  EXPECT_LT(u.back(), 1.0);
  // Mean of U(0,1) order statistics overall is 1/2.
  const double mean = std::accumulate(u.begin(), u.end(), 0.0) / u.size();
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(RngStream, SortedUniformsEmptyAndSingle) {
  RngStream rng(4);
  EXPECT_TRUE(rng.sorted_uniforms(0).empty());
  const auto one = rng.sorted_uniforms(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_GE(one[0], 0.0);
  EXPECT_LT(one[0], 1.0);
}

TEST(Bits, InsertZeroBit) {
  EXPECT_EQ(insert_zero_bit(0b0u, 0), 0b0u);
  EXPECT_EQ(insert_zero_bit(0b1u, 0), 0b10u);
  EXPECT_EQ(insert_zero_bit(0b11u, 1), 0b101u);
  EXPECT_EQ(insert_zero_bit(0b111u, 2), 0b1011u);
}

TEST(Bits, InsertTwoZeroBitsEnumeratesQuads) {
  // For qubits {1, 3} on 4 qubits, bases must have bits 1 and 3 clear.
  std::set<std::uint64_t> bases;
  for (std::uint64_t i = 0; i < 4; ++i)
    bases.insert(insert_two_zero_bits(i, 1, 3));
  EXPECT_EQ(bases, (std::set<std::uint64_t>{0b0000, 0b0001, 0b0100, 0b0101}));
}

TEST(Bits, GetWithBitRoundTrip) {
  const std::uint64_t v = 0b1010;
  EXPECT_EQ(get_bit(v, 1), 1u);
  EXPECT_EQ(get_bit(v, 0), 0u);
  EXPECT_EQ(with_bit(v, 0, 1), 0b1011u);
  EXPECT_EQ(with_bit(v, 3, 0), 0b0010u);
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity64(0b111), 1u);
  EXPECT_EQ(parity64(0b1111), 0u);
  EXPECT_EQ(popcount64(0xFFULL), 8u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, 0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialFallbackWithNullPool) {
  int sum = 0;
  parallel_for(nullptr, 5, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(DevicePool, RunsEveryJobOnce) {
  DevicePool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.run_batch(100, [&](std::size_t, std::size_t j) { ++hits[j]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DevicePool, PropagatesJobExceptions) {
  DevicePool pool(2);
  EXPECT_THROW(pool.run_batch(10,
                              [&](std::size_t, std::size_t j) {
                                if (j == 5) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
}

TEST(Version, NonEmpty) { EXPECT_STRNE(version(), ""); }

}  // namespace
}  // namespace ptsbe
