// Integration tests: full paper workloads end to end across module
// boundaries — PTS → BE → decode on the encoded MSD circuits, importance
// weighting for general channels, and cross-backend consistency at the
// 35-qubit scale the statevector cannot reach on this host.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/decoder.hpp"
#include "ptsbe/qec/distillation.hpp"
#include "ptsbe/trajectory/trajectory.hpp"

namespace ptsbe {
namespace {

TEST(Integration, ThirtyFiveQubitEncodedMsdOnMps) {
  // The paper's Fig. 4 workload (35 qubits) runs end to end on the MPS
  // backend: five Steane-encoded magic states, transversal [[5,1,3]]
  // decoder, transversal readout, PTS + BE, then logical decoding of the
  // four syndrome blocks.
  const qec::CssCode code = qec::steane();
  Circuit circuit = qec::encoded_msd_circuit(code);
  ASSERT_EQ(circuit.num_qubits(), 35u);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.001));
  const NoisyCircuit noisy = nm.apply(circuit);

  RngStream rng(1);
  pts::Options opt;
  opt.nsamples = 6;
  opt.nshots = 400;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);

  be::Options exec;
  exec.backend = "mps";
  exec.config.mps.max_bond = 64;
  const be::Result result = be::execute(noisy, specs, exec);
  ASSERT_GT(result.total_shots(), 0u);

  // Decode: acceptance = all four syndrome blocks read logical 0. With
  // ideal inputs acceptance ≈ 1/6 (BK05); with p=1e-3 noise it stays in
  // that neighbourhood.
  const qec::CssLookupDecoder decoder(code, 1);
  double accepted = 0, total = 0, weight_sum = 0, weighted_accept = 0;
  for (const auto& batch : result.batches) {
    for (auto record : batch.records) {
      bool ok = true;
      for (unsigned b = 0; b < 4 && ok; ++b) {
        const std::uint64_t block_bits = (record >> (b * 7)) & 0x7F;
        ok = decoder.logical_z_value(block_bits) == 0;
      }
      accepted += ok;
      total += 1;
      weighted_accept += ok * batch.spec.nominal_probability;
      weight_sum += batch.spec.nominal_probability;
    }
  }
  const double rate = accepted / total;
  EXPECT_GT(rate, 0.08);
  EXPECT_LT(rate, 0.30);
}

TEST(Integration, EncodedMsdLogicalOutputIsMagicOnMps) {
  // Noiseless encoded MSD, post-selected: the output block's logical Bloch
  // vector must sit on the magic axis. Checked via logical expectation
  // values on the MPS (35 qubits).
  const qec::CssCode code = qec::steane();
  Circuit circuit = qec::msd_preparation_circuit(code);
  circuit.append(qec::compile_transversal(
      qec::synthesize_decoder(qec::five_qubit_code()), code));
  MpsState mps(35);
  mps.apply_circuit(circuit);

  // Project syndrome blocks 0..3 onto logical 0 by measuring-with-postselect
  // is expensive on MPS; instead verify the *unconditioned* logical Bloch of
  // block 4 is nonzero along the magic axis and that shots decode sensibly.
  RngStream rng(3);
  const auto shots = mps.sample_shots(3000, rng);
  const qec::CssLookupDecoder decoder(code, 1);
  std::size_t accepted = 0, output_ones = 0;
  for (auto record : shots) {
    bool ok = true;
    for (unsigned b = 0; b < 4 && ok; ++b)
      ok = decoder.logical_z_value((record >> (b * 7)) & 0x7F) == 0;
    if (!ok) continue;
    ++accepted;
    output_ones += decoder.logical_z_value((record >> 28) & 0x7F);
  }
  ASSERT_GT(accepted, 100u);
  // Accepted output: a T-type state up to the protocol's known Clifford
  // correction (BK05), so |⟨Z̄⟩| = 1/√3 ⇒ P(1) ∈ {(1∓1/√3)/2}.
  const double p1 = static_cast<double>(output_ones) / accepted;
  EXPECT_NEAR(std::abs(1.0 - 2.0 * p1), 1.0 / std::sqrt(3.0), 0.06);
}

TEST(Integration, ImportanceWeightsRecoverGeneralKrausExpectations) {
  // For general (non-unitary-mixture) channels, PTS samples by nominal
  // probability and BE records the realised probability. The correctly
  // weighted estimator uses realized/nominal importance ratios; verify it
  // reproduces the exact density-matrix distribution.
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::amplitude_damping(0.3));
  const NoisyCircuit noisy = nm.apply(c);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const auto exact = dm.probabilities();

  // Enumerate ALL trajectories (one damping site per gate target: 3 sites
  // here, 2 branches each = 8 assignments). Some are unrealizable (a decay
  // after the qubit already decayed) — BE marks those with
  // realized_probability 0 and no records.
  ASSERT_EQ(noisy.num_sites(), 3u);
  std::vector<TrajectorySpec> specs;
  for (std::size_t mask = 0; mask < 8; ++mask) {
    TrajectorySpec s;
    for (std::size_t site = 0; site < 3; ++site)
      if ((mask >> site) & 1) s.branches.push_back({site, 1});
    s.shots = 40000;
    specs.push_back(s);
  }
  const be::Result result = be::execute(noisy, specs);
  // Weight each batch by its realised probability (the true trajectory
  // probability for general channels).
  std::map<std::uint64_t, double> f;
  double wsum = 0;
  for (const auto& batch : result.batches) {
    const double w = batch.realized_probability;
    wsum += w;
    if (batch.records.empty()) {
      EXPECT_EQ(w, 0.0);
      continue;
    }
    for (auto r : batch.records)
      f[r] += w / static_cast<double>(batch.records.size());
  }
  EXPECT_NEAR(wsum, 1.0, 1e-9);  // branches partition probability space
  double tvd = 0;
  for (std::uint64_t i = 0; i < 4; ++i)
    tvd += std::abs((f.count(i) ? f[i] : 0.0) - exact[i]);
  EXPECT_LT(tvd / 2, 0.01);
}

TEST(Integration, BandSamplingIsConsistentWithEnumeration) {
  // Trajectories found by stochastic sampling inside a probability band
  // must be a subset of the exhaustive enumeration restricted to the band.
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.05));
  const NoisyCircuit noisy = nm.apply(c);

  const auto all = pts::enumerate_most_likely(noisy, 1e-9, 1);
  std::map<std::uint64_t, double> enumerated;
  for (const auto& s : all) enumerated[s.assignment_hash()] = s.nominal_probability;

  RngStream rng(5);
  pts::Options opt;
  opt.nsamples = 3000;
  auto sampled = pts::sample_probabilistic(noisy, opt, rng);
  const auto banded = pts::filter_band(std::move(sampled), 1e-5, 1e-2);
  for (const auto& s : banded) {
    const auto it = enumerated.find(s.assignment_hash());
    ASSERT_NE(it, enumerated.end());
    EXPECT_NEAR(it->second, s.nominal_probability, 1e-12);
  }
}

TEST(Integration, DatasetRoundTripAtScale) {
  // 35-qubit MPS dataset with provenance, written and re-read.
  const NoisyCircuit noisy = [&] {
    Circuit c = qec::msd_preparation_circuit(qec::steane());
    c.measure_all();
    NoiseModel nm;
    nm.add_all_gate_noise(channels::depolarizing(0.002));
    return nm.apply(c);
  }();
  RngStream rng(7);
  pts::Options opt;
  opt.nsamples = 4;
  opt.nshots = 250;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  be::Options exec;
  exec.backend = "mps";
  exec.config.mps.max_bond = 32;
  const auto result = be::execute(noisy, specs, exec);
  const std::string path = "/tmp/ptsbe_integration_dataset.bin";
  dataset::write_binary(path, result);
  const auto loaded = dataset::read_binary(path);
  EXPECT_EQ(loaded.total_shots(), result.total_shots());
  for (std::size_t i = 0; i < loaded.batches.size(); ++i)
    EXPECT_TRUE(loaded.batches[i].spec.same_assignment(result.batches[i].spec));
  std::remove(path.c_str());
}

TEST(Integration, TrajectoryBaselineAgreesWithPtsbeOnMsd) {
  // Same bare-MSD noisy program through Algorithm 1 and through PTS+BE:
  // acceptance rates must agree.
  Circuit circuit = qec::bare_msd_circuit();
  NoiseModel nm;
  nm.add_gate_noise("p", channels::depolarizing(0.05));
  const NoisyCircuit noisy = nm.apply(circuit);

  RngStream rng_a(8);
  const auto base = traj::run_statevector(noisy, 30000, rng_a);
  double base_accept = 0;
  for (auto r : base.records) base_accept += qec::bare_msd_accept(r);
  base_accept /= base.records.size();

  RngStream rng_b(9);
  pts::Options opt;
  opt.nsamples = 30000;
  opt.nshots = 1;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng_b);
  const auto result = be::execute(noisy, specs);
  double pts_accept = 0;
  for (const auto& batch : result.batches)
    for (auto r : batch.records) pts_accept += qec::bare_msd_accept(r);
  pts_accept /= result.total_shots();

  EXPECT_NEAR(base_accept, pts_accept, 0.012);
}

}  // namespace
}  // namespace ptsbe
