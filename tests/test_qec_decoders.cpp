// Decoder-layer tests: the qec::Decoder interface, the exact lookup table,
// and the union-find (cluster growth + peeling) decoder. The contract every
// decoder must honour: the returned correction kills the syndrome
// (css_syndrome(supports, error ^ correction) == 0); the quality bar: up to
// ⌊(d−1)/2⌋ errors, the correction is *logically* equivalent to the error
// (their difference is a stabilizer, so the decoded logical value matches).
// Strict mask equality between two decoders is deliberately not asserted —
// degenerate minimum-weight corrections differ by stabilizers and are all
// equally right.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"
#include "ptsbe/qec/codes.hpp"
#include "ptsbe/qec/decoder.hpp"
#include "ptsbe/qec/memory.hpp"
#include "ptsbe/qec/spacetime.hpp"

namespace ptsbe::qec {
namespace {

/// All error masks over n qubits of exactly weight w (ascending numeric
/// order — deterministic enumeration).
std::vector<std::uint64_t> masks_of_weight(unsigned n, unsigned w) {
  std::vector<std::uint64_t> out;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t m = 0; m < limit; ++m)
    if (static_cast<unsigned>(popcount64(m)) == w) out.push_back(m);
  return out;
}

/// Logical value the decoder assigns to readout `error` (0 = corrected).
unsigned decoded_logical(const Decoder& dec,
                         const std::vector<std::uint64_t>& supports,
                         std::uint64_t logical, std::uint64_t error) {
  const std::uint64_t corrected =
      error ^ dec.decode(css_syndrome(supports, error));
  return parity64(corrected & logical);
}

TEST(CssSyndromeTest, MatchesCssLookupDecoderDefinition) {
  const CssCode code = steane();
  const CssLookupDecoder lookup(code, 1);
  for (std::uint64_t e : {0x1ULL, 0x12ULL, 0x55ULL, 0x7FULL})
    EXPECT_EQ(css_syndrome(code.z_supports, e), lookup.syndrome(e));
}

TEST(DecoderInterfaceTest, NamesAndFactory) {
  const CssCode rep = repetition_code(3);
  EXPECT_EQ(make_decoder("lookup", rep)->name(), "lookup");
  EXPECT_EQ(make_decoder("union-find", rep)->name(), "union-find");
  EXPECT_THROW((void)make_decoder("bogus", rep), precondition_error);
  // The repetition code has no X-type checks: an X-basis decoder for it is
  // undecodable and must be refused, not silently wrong.
  EXPECT_THROW((void)make_decoder("union-find", rep, CssBasis::kX),
               precondition_error);
  // Steane's qubits sit in three Z-checks each — not a matchable graph.
  EXPECT_THROW((void)make_decoder("union-find", steane()), precondition_error);
  EXPECT_NO_THROW((void)make_decoder("lookup", steane()));
}

TEST(DecoderInterfaceTest, CssLookupDecoderIsADecoder) {
  const CssCode code = steane();
  const CssLookupDecoder lookup(code, 1);
  const Decoder& dec = lookup;
  for (std::uint64_t e : masks_of_weight(code.n, 1)) {
    const std::uint64_t s = css_syndrome(code.z_supports, e);
    EXPECT_EQ(dec.decode(s), lookup.correction(s));
  }
}

// Satellite: lookup vs union-find agree on ALL single- and two-error
// syndromes for d ∈ {3, 5} — same syndrome killed, same logical class.
TEST(DecoderAgreementTest, LookupVsUnionFindSingleAndDoubleErrors) {
  for (unsigned d : {3u, 5u}) {
    const CssCode code = repetition_code(d);
    const auto lookup = make_decoder("lookup", code);
    const auto uf = make_decoder("union-find", code);
    for (unsigned w : {1u, 2u}) {
      for (std::uint64_t e : masks_of_weight(code.n, w)) {
        const std::uint64_t s = css_syndrome(code.z_supports, e);
        const std::uint64_t cl = lookup->decode(s);
        const std::uint64_t cu = uf->decode(s);
        // Both corrections kill the syndrome...
        EXPECT_EQ(css_syndrome(code.z_supports, cl), s)
            << "lookup, d=" << d << " e=" << e;
        EXPECT_EQ(css_syndrome(code.z_supports, cu), s)
            << "union-find, d=" << d << " e=" << e;
        // ...and agree exactly on the logical class (difference is a
        // stabilizer, never a logical operator).
        EXPECT_EQ(parity64((cl ^ cu) & code.logical_z.z), 0u)
            << "d=" << d << " w=" << w << " e=" << e;
      }
    }
  }
}

// Up to ⌊(d−1)/2⌋ errors both decoders recover the exact logical value.
TEST(DecoderCorrectnessTest, CorrectableRepetitionErrorsAreCorrected) {
  for (unsigned d : {3u, 5u, 7u}) {
    const CssCode code = repetition_code(d);
    const auto lookup = make_decoder("lookup", code);
    const auto uf = make_decoder("union-find", code);
    for (unsigned w = 1; w <= (d - 1) / 2; ++w) {
      for (std::uint64_t e : masks_of_weight(code.n, w)) {
        EXPECT_EQ(
            decoded_logical(*lookup, code.z_supports, code.logical_z.z, e), 0u)
            << "lookup d=" << d << " e=" << e;
        EXPECT_EQ(decoded_logical(*uf, code.z_supports, code.logical_z.z, e),
                  0u)
            << "union-find d=" << d << " e=" << e;
      }
    }
  }
}

TEST(DecoderCorrectnessTest, SurfaceCodeSingleErrorsAreCorrected) {
  const CssCode code = rotated_surface_code(3);
  const auto lookup = make_decoder("lookup", code);
  const auto uf = make_decoder("union-find", code);
  for (std::uint64_t e : masks_of_weight(code.n, 1)) {
    EXPECT_EQ(decoded_logical(*lookup, code.z_supports, code.logical_z.z, e),
              0u)
        << "lookup e=" << e;
    EXPECT_EQ(decoded_logical(*uf, code.z_supports, code.logical_z.z, e), 0u)
        << "union-find e=" << e;
  }
}

TEST(DecoderCorrectnessTest, SurfaceCodeXBasisSingleErrorsAreCorrected) {
  // Z errors flip X-basis readout bits; decoding runs over the X-type
  // supports and the logical X mask.
  const CssCode code = rotated_surface_code(3);
  const auto uf = make_decoder("union-find", code, CssBasis::kX);
  for (std::uint64_t e : masks_of_weight(code.n, 1))
    EXPECT_EQ(decoded_logical(*uf, code.x_supports, code.logical_x.x, e), 0u)
        << "e=" << e;
}

// Satellite property test: union-find handles weight > 2 syndromes — any
// random Pauli error pattern — without crashing, always killing the
// syndrome it was given.
TEST(UnionFindPropertyTest, RandomHighWeightPatternsAlwaysKillTheSyndrome) {
  struct Case {
    CssCode code;
    CssBasis basis;
  };
  const std::vector<Case> cases = {
      {repetition_code(5), CssBasis::kZ},
      {repetition_code(7), CssBasis::kZ},
      {rotated_surface_code(3), CssBasis::kZ},
      {rotated_surface_code(3), CssBasis::kX},
      {rotated_surface_code(5), CssBasis::kZ},
  };
  std::mt19937_64 rng(0xDEC0DE5EEDULL);
  for (const Case& c : cases) {
    const auto& supports = c.code.check_supports(c.basis);
    const auto uf = make_decoder("union-find", c.code, c.basis);
    const std::uint64_t qubit_mask = (1ULL << c.code.n) - 1;
    for (int trial = 0; trial < 400; ++trial) {
      const std::uint64_t error = rng() & qubit_mask;  // any weight 0..n
      const std::uint64_t s = css_syndrome(supports, error);
      const std::uint64_t correction = uf->decode(s);
      EXPECT_EQ(css_syndrome(supports, correction), s)
          << c.code.name << " trial=" << trial << " error=" << error;
      EXPECT_EQ(correction & ~qubit_mask, 0u)
          << "correction outside the block: " << correction;
    }
  }
}

TEST(UnionFindPropertyTest, DecodeIsDeterministic) {
  const CssCode code = rotated_surface_code(5);
  const auto uf = make_decoder("union-find", code);
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t e = rng() & ((1ULL << code.n) - 1);
    const std::uint64_t s = css_syndrome(code.z_supports, e);
    EXPECT_EQ(uf->decode(s), uf->decode(s));
  }
}

TEST(RepetitionCodeTest, StructureAndValidation) {
  const CssCode code = repetition_code(5);
  EXPECT_EQ(code.n, 5u);
  EXPECT_EQ(code.code_distance, 5u);
  EXPECT_TRUE(code.x_supports.empty());
  ASSERT_EQ(code.z_supports.size(), 4u);
  EXPECT_EQ(code.z_supports[0], 0b00011ULL);
  EXPECT_EQ(code.z_supports[3], 0b11000ULL);
  EXPECT_NO_THROW(code.validate());
  EXPECT_THROW((void)repetition_code(4), precondition_error);
  EXPECT_THROW((void)repetition_code(1), precondition_error);
}

TEST(MakeCodeTest, RegistryNames) {
  EXPECT_EQ(make_code("repetition", 5).name, "repetition_5");
  EXPECT_EQ(make_code("surface", 3).name, "rotated_surface_3");
  EXPECT_EQ(make_code("steane", 3).name, "steane");
  EXPECT_EQ(make_code("surface", 3).code_distance, 3u);
  EXPECT_EQ(make_code("steane", 3).code_distance, 3u);
  EXPECT_THROW((void)make_code("steane", 5), precondition_error);
  EXPECT_THROW((void)make_code("bogus", 3), precondition_error);
}

TEST(CssBasisTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(CssBasis::kZ), "z");
  EXPECT_EQ(to_string(CssBasis::kX), "x");
  EXPECT_EQ(basis_from_string("z"), CssBasis::kZ);
  EXPECT_EQ(basis_from_string("X"), CssBasis::kX);
  EXPECT_THROW((void)basis_from_string("y"), precondition_error);
}

// ---------------------------------------------------------------------------
// Space-time decoder: every single circuit-level fault class must decode to
// logical 0. The record layout below mirrors what the extraction circuit
// produces for each fault; the mid-round ("diagonal") class is the one a
// naive space+time-only detector graph mis-decodes at O(p).
// ---------------------------------------------------------------------------

/// Fault-record factory for one memory experiment and its decoding basis.
struct FaultLab {
  MemoryExperiment exp;
  std::vector<std::uint64_t> supports;  ///< Basis check supports.
  unsigned offset;                      ///< Ancilla index of basis check 0.

  FaultLab(const CssCode& code, unsigned rounds, CssBasis basis)
      : exp(make_memory_experiment(code, rounds, basis,
                                   PrepStyle::kProduct)),
        supports(code.check_supports(basis)),
        offset(basis == CssBasis::kZ
                   ? static_cast<unsigned>(code.x_supports.size())
                   : 0) {}

  [[nodiscard]] std::uint64_t anc(unsigned round, unsigned c) const {
    return 1ULL << exp.ancilla_bit(round, offset + c);
  }

  /// Ancilla-readout flip of basis check `c` in round `r`.
  [[nodiscard]] std::uint64_t time_fault(unsigned r, unsigned c) const {
    return anc(r, c);
  }

  /// Data error on qubit `q` entering just before round `t`'s extraction
  /// (t == rounds: just before the final readout). Every adjacent check
  /// sees it from round t on; it persists into the final data bits.
  [[nodiscard]] std::uint64_t boundary_fault(unsigned t, unsigned q) const {
    std::uint64_t rec = 1ULL << exp.data_bit(q);
    for (unsigned r = t; r < exp.rounds; ++r)
      for (unsigned c = 0; c < supports.size(); ++c)
        if ((supports[c] >> q) & 1ULL) rec ^= anc(r, c);
    return rec;
  }

  /// Data error on shared qubit `q` landing *between* its two checks'
  /// extractions within round `r`: the later-extracted check sees it that
  /// round, the earlier one only from round r+1.
  [[nodiscard]] std::uint64_t diagonal_fault(unsigned r, unsigned q,
                                             unsigned c_earlier,
                                             unsigned c_later) const {
    std::uint64_t rec = 1ULL << exp.data_bit(q);
    for (unsigned rr = r; rr < exp.rounds; ++rr) rec ^= anc(rr, c_later);
    for (unsigned rr = r + 1; rr < exp.rounds; ++rr)
      rec ^= anc(rr, c_earlier);
    return rec;
  }

  /// Basis check indices containing `q`, in extraction (index) order.
  [[nodiscard]] std::vector<unsigned> checks_of(unsigned q) const {
    std::vector<unsigned> out;
    for (unsigned c = 0; c < supports.size(); ++c)
      if ((supports[c] >> q) & 1ULL) out.push_back(c);
    return out;
  }
};

std::vector<FaultLab> spacetime_labs() {
  std::vector<FaultLab> labs;
  labs.emplace_back(repetition_code(3), 2, CssBasis::kZ);
  labs.emplace_back(repetition_code(5), 3, CssBasis::kZ);
  labs.emplace_back(rotated_surface_code(3), 2, CssBasis::kZ);
  labs.emplace_back(rotated_surface_code(3), 2, CssBasis::kX);
  return labs;
}

TEST(SpaceTimeDecoderTest, EverySingleFaultDecodesToZero) {
  for (const FaultLab& lab : spacetime_labs()) {
    SCOPED_TRACE(lab.exp.code.name + " basis=" + to_string(lab.exp.basis));
    const SpaceTimeUnionFindDecoder dec(lab.exp);
    EXPECT_EQ(dec.decode_shot(0), 0u) << "noiseless";
    for (unsigned r = 0; r < lab.exp.rounds; ++r)
      for (unsigned c = 0; c < lab.supports.size(); ++c)
        EXPECT_EQ(dec.decode_shot(lab.time_fault(r, c)), 0u)
            << "time fault r=" << r << " c=" << c;
    for (unsigned t = 0; t <= lab.exp.rounds; ++t)
      for (unsigned q = 0; q < lab.exp.code.n; ++q)
        EXPECT_EQ(dec.decode_shot(lab.boundary_fault(t, q)), 0u)
            << "boundary fault t=" << t << " q=" << q;
    for (unsigned q = 0; q < lab.exp.code.n; ++q) {
      const std::vector<unsigned> cs = lab.checks_of(q);
      if (cs.size() != 2) continue;
      for (unsigned r = 0; r < lab.exp.rounds; ++r)
        EXPECT_EQ(dec.decode_shot(lab.diagonal_fault(r, q, cs[0], cs[1])),
                  0u)
            << "diagonal fault r=" << r << " q=" << q;
    }
  }
}

// An *uncorrected* single data error must flip the raw logical parity when
// it sits on the logical support — i.e. the zeros above are the decoder
// working, not the faults being invisible.
TEST(SpaceTimeDecoderTest, RawParityAloneWouldFail) {
  const FaultLab lab(repetition_code(3), 2, CssBasis::kZ);
  const std::uint64_t logical =
      lab.exp.code.logical_support(lab.exp.basis);
  ASSERT_NE(logical, 0u);
  const unsigned q = static_cast<unsigned>(std::countr_zero(logical));
  const std::uint64_t rec = lab.boundary_fault(0, q);
  EXPECT_EQ(parity64(lab.exp.data_bits(rec) & logical), 1u);
  const SpaceTimeUnionFindDecoder dec(lab.exp);
  EXPECT_EQ(dec.decode_shot(rec), 0u);
}

TEST(SpaceTimeDecoderTest, RandomFaultCombinationsNeverCrash) {
  // Stacked faults may exceed the code distance — failures are allowed,
  // crashes and nondeterminism are not.
  for (const FaultLab& lab : spacetime_labs()) {
    SCOPED_TRACE(lab.exp.code.name + " basis=" + to_string(lab.exp.basis));
    const SpaceTimeUnionFindDecoder dec(lab.exp);
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
      std::uint64_t rec = 0;
      const int faults = 1 + static_cast<int>(rng() % 4);
      for (int f = 0; f < faults; ++f) {
        switch (rng() % 3) {
          case 0:
            rec ^= lab.time_fault(
                static_cast<unsigned>(rng() % lab.exp.rounds),
                static_cast<unsigned>(rng() % lab.supports.size()));
            break;
          case 1:
            rec ^= lab.boundary_fault(
                static_cast<unsigned>(rng() % (lab.exp.rounds + 1)),
                static_cast<unsigned>(rng() % lab.exp.code.n));
            break;
          default: {
            const unsigned q = static_cast<unsigned>(rng() % lab.exp.code.n);
            const std::vector<unsigned> cs = lab.checks_of(q);
            if (cs.size() == 2)
              rec ^= lab.diagonal_fault(
                  static_cast<unsigned>(rng() % lab.exp.rounds), q, cs[0],
                  cs[1]);
            break;
          }
        }
      }
      const unsigned first = dec.decode_shot(rec);
      EXPECT_EQ(dec.decode_shot(rec), first);
      EXPECT_LE(first, 1u);
    }
  }
}

TEST(SpaceTimeDecoderTest, FactoryNamesAndCapacity) {
  const FaultLab lab(repetition_code(3), 2, CssBasis::kZ);
  EXPECT_EQ(make_shot_decoder("st-union-find", lab.exp)->name(),
            "st-union-find");
  EXPECT_EQ(make_shot_decoder("lookup", lab.exp)->name(), "lookup");
  EXPECT_EQ(make_shot_decoder("union-find", lab.exp)->name(), "union-find");
  EXPECT_THROW((void)make_shot_decoder("bogus", lab.exp),
               precondition_error);
  // Capacity guard: d=5 at 5 rounds packs into 25 record bits but needs 65
  // error mechanisms (space + time + diagonal), one past the 64-bit budget.
  const MemoryExperiment big = make_memory_experiment(
      repetition_code(5), 5, CssBasis::kZ, PrepStyle::kProduct);
  EXPECT_THROW((void)SpaceTimeUnionFindDecoder(big), precondition_error);
}

}  // namespace
}  // namespace ptsbe::qec
