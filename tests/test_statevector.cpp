// Unit + property tests for the statevector backend: gate kernels against
// dense matrix algebra, Kraus branches, bulk sampling statistics.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {
namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.amplitude(0), (cplx{1, 0}));
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-14);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector sv(1);
  sv.apply_gate(gates::H(), std::array{0u});
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{kInvSqrt2, 0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitude(1) - cplx{kInvSqrt2, 0}), 0.0, 1e-14);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  sv.apply_gate(gates::H(), std::array{0u});
  sv.apply_gate(gates::CX(), std::array{0u, 1u});
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), kInvSqrt2, 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), kInvSqrt2, 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 0.0, 1e-14);
}

TEST(StateVector, CxControlIsFirstListedQubit) {
  // |q1 q0> = |01> (control q0=1): CX(0→1) flips q1 → |11>.
  StateVector sv(2);
  sv.apply_gate(gates::X(), std::array{0u});
  sv.apply_gate(gates::CX(), std::array{0u, 1u});
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0, 1e-14);
  // And with control q1=0 nothing happens.
  StateVector sv2(2);
  sv2.apply_gate(gates::CX(), std::array{1u, 0u});
  EXPECT_NEAR(std::abs(sv2.amplitude(0b00)), 1.0, 1e-14);
}

// Property: applying a gate via the kernel equals multiplying the dense
// full-register matrix, for every qubit placement.
class KernelVsDense : public ::testing::TestWithParam<unsigned> {};

Matrix embed1(const Matrix& g, unsigned q, unsigned n) {
  Matrix full = Matrix::identity(1);
  for (unsigned i = 0; i < n; ++i)
    full = kron(i == q ? g : gates::I(), full);  // qubit 0 = LSB → rightmost
  return full;
}

TEST_P(KernelVsDense, SingleQubitAllPositions) {
  const unsigned n = 4;
  const unsigned q = GetParam();
  const Matrix g = gates::U3(0.7, 0.3, 1.1);
  // Random-ish initial state via a short circuit.
  StateVector sv(n);
  sv.apply_gate(gates::H(), std::array{0u});
  sv.apply_gate(gates::CX(), std::array{0u, 2u});
  sv.apply_gate(gates::T(), std::array{2u});
  sv.apply_gate(gates::RY(0.4), std::array{3u});
  std::vector<cplx> before(sv.amplitudes().begin(), sv.amplitudes().end());
  sv.apply_gate(g, std::array{q});
  const Matrix full = embed1(g, q, n);
  for (std::uint64_t i = 0; i < sv.dim(); ++i) {
    cplx want{0, 0};
    for (std::uint64_t j = 0; j < sv.dim(); ++j) want += full(i, j) * before[j];
    EXPECT_NEAR(std::abs(sv.amplitude(i) - want), 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, KernelVsDense,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(StateVector, TwoQubitKernelMatchesKron) {
  // CZ is symmetric; use CX on all ordered pairs of a 3-qubit register and
  // compare against the general k-qubit path (which gathers explicitly).
  for (unsigned a = 0; a < 3; ++a)
    for (unsigned b = 0; b < 3; ++b) {
      if (a == b) continue;
      StateVector fast(3), slow(3);
      for (StateVector* sv : {&fast, &slow}) {
        sv->apply_gate(gates::H(), std::array{0u});
        sv->apply_gate(gates::H(), std::array{1u});
        sv->apply_gate(gates::T(), std::array{2u});
      }
      fast.apply_gate(gates::CX(), std::array{a, b});
      // Route via 3-qubit embedding to exercise apply_matrix_k.
      Matrix g3 = kron(Matrix::identity(2), gates::CX());
      slow.apply_gate(g3, std::array{a, b, 3u - a - b});
      for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(fast.amplitude(i) - slow.amplitude(i)), 0.0, 1e-12)
            << "pair " << a << "," << b;
    }
}

TEST(StateVector, ApplyCircuitMatchesManual) {
  Circuit c(2);
  c.h(0).cx(0, 1).z(1);
  StateVector a(2), b(2);
  a.apply_circuit(c);
  b.apply_gate(gates::H(), std::array{0u});
  b.apply_gate(gates::CX(), std::array{0u, 1u});
  b.apply_gate(gates::Z(), std::array{1u});
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(a.amplitude(i), b.amplitude(i));
}

TEST(StateVector, BranchProbabilityMatchesDefinition) {
  StateVector sv(2);
  sv.apply_gate(gates::H(), std::array{0u});
  // K = sqrt(gamma)|0><1| on qubit 0: <psi|K†K|psi> = gamma*P(q0=1) = gamma/2.
  const double gamma = 0.3;
  const Matrix k(2, 2, {0.0, std::sqrt(gamma), 0.0, 0.0});
  EXPECT_NEAR(sv.branch_probability(k, std::array{0u}), gamma / 2, 1e-12);
}

TEST(StateVector, KrausBranchRenormalizes) {
  StateVector sv(1);
  sv.apply_gate(gates::H(), std::array{0u});
  const double gamma = 0.4;
  const Matrix k(2, 2, {0.0, std::sqrt(gamma), 0.0, 0.0});
  const double p = sv.apply_kraus_branch(k, std::array{0u});
  EXPECT_NEAR(p, gamma / 2, 1e-12);
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);  // decayed to |0>
}

TEST(StateVector, ZeroProbabilityBranchThrows) {
  StateVector sv(1);  // |0>
  const Matrix k(2, 2, {0.0, 1.0, 0.0, 0.0});  // |0><1| annihilates |0>
  EXPECT_THROW((void)sv.apply_kraus_branch(k, std::array{0u}),
               precondition_error);
}

TEST(StateVector, ProbabilityOne) {
  StateVector sv(2);
  sv.apply_gate(gates::RY(2 * std::acos(std::sqrt(0.3))), std::array{1u});
  EXPECT_NEAR(sv.probability_one(1), 0.7, 1e-12);
  EXPECT_NEAR(sv.probability_one(0), 0.0, 1e-12);
}

TEST(StateVector, ExpectationPauli) {
  StateVector sv(2);
  sv.apply_gate(gates::H(), std::array{0u});
  sv.apply_gate(gates::CX(), std::array{0u, 1u});
  // Bell state: <XX> = 1, <ZZ> = 1, <ZI> = 0.
  EXPECT_NEAR(sv.expectation_pauli("XX", std::array{0u, 1u}), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation_pauli("ZZ", std::array{0u, 1u}), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation_pauli("ZI", std::array{0u, 1u}), 0.0, 1e-12);
}

TEST(StateVector, FidelityOfOrthogonalStates) {
  StateVector a(1), b(1);
  b.apply_gate(gates::X(), std::array{0u});
  EXPECT_NEAR(a.fidelity(b), 0.0, 1e-14);
  EXPECT_NEAR(a.fidelity(a), 1.0, 1e-14);
}

TEST(StateVector, BulkSamplerMatchesDistribution) {
  StateVector sv(2);
  sv.apply_gate(gates::RY(2 * std::asin(std::sqrt(0.2))), std::array{0u});
  // P(q0=1) = 0.2.
  RngStream rng(77);
  const auto shots = sv.sample_shots(50000, rng);
  double ones = 0;
  for (std::uint64_t s : shots) ones += s & 1;
  EXPECT_NEAR(ones / 50000.0, 0.2, 0.01);
}

TEST(StateVector, BulkSamplerMatchesPerShotSampler) {
  // Same state, both samplers must agree in distribution.
  StateVector sv(3);
  Circuit c(3);
  c.h(0).cx(0, 1).ry(2, 0.9);
  sv.apply_circuit(c);
  RngStream rng_a(5), rng_b(6);
  std::map<std::uint64_t, double> bulk, single;
  const std::size_t m = 40000;
  for (std::uint64_t s : sv.sample_shots(m, rng_a)) bulk[s] += 1.0 / m;
  for (std::size_t i = 0; i < m; ++i) single[sv.sample_one(rng_b)] += 1.0 / m;
  for (std::uint64_t idx = 0; idx < 8; ++idx)
    EXPECT_NEAR(bulk[idx], single[idx], 0.015) << "index " << idx;
}

TEST(StateVector, SampleCountZero) {
  StateVector sv(2);
  RngStream rng(1);
  EXPECT_TRUE(sv.sample_shots(0, rng).empty());
}

TEST(ExtractBits, PacksSelectedQubits) {
  // index bits: q0=1, q1=0, q2=1, q3=1 → 0b1101
  const std::uint64_t idx = 0b1101;
  EXPECT_EQ(extract_bits(idx, std::array{0u, 2u}), 0b11u);
  EXPECT_EQ(extract_bits(idx, std::array{1u, 3u}), 0b10u);
  EXPECT_EQ(extract_bits(idx, std::array{3u, 0u, 1u}), 0b011u);
}

TEST(StateVector, RejectsBadConstruction) {
  EXPECT_THROW(StateVector(0), precondition_error);
  EXPECT_THROW(StateVector(31), precondition_error);
}

}  // namespace
}  // namespace ptsbe
