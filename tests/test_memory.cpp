// Tests for the syndrome-extraction memory experiments: noiseless rounds
// are silent and error-free, noisy rounds produce decodable data, and the
// Pauli-frame sampler and PTSBE agree on the logical error rate — the
// head-to-head workload where the Stim-like baseline and PTSBE overlap.

#include <gtest/gtest.h>

#include <cmath>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/estimator.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/memory.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"

namespace ptsbe::qec {
namespace {

TEST(Memory, CircuitShape) {
  const CssCode code = steane();
  const MemoryExperiment exp = make_memory_experiment(code, 2);
  EXPECT_EQ(exp.ancillas_per_round, 6u);
  EXPECT_EQ(exp.circuit.num_qubits(), 7u + 2u * 6u);
  EXPECT_EQ(exp.circuit.measured_qubits().size(), 12u + 7u);
  EXPECT_EQ(exp.data_bit(0), 12u);
}

TEST(Memory, NoiselessRoundsAreTriviallySilent) {
  // Noiseless |0_L⟩ memory: every ancilla reads 0, data decodes to logical 0.
  const CssCode code = steane();
  const MemoryExperiment exp = make_memory_experiment(code, 2);
  const NoisyCircuit noisy = NoiseModel{}.apply(exp.circuit);
  ASSERT_TRUE(PauliFrameSampler::is_supported(noisy));
  PauliFrameSampler sampler(noisy, RngStream(1));
  RngStream rng(2);
  const auto records = sampler.sample(2000, rng);
  const CssLookupDecoder decoder(code, 1);
  for (std::uint64_t r : records) {
    EXPECT_EQ(r & 0xFFF, 0u) << "ancilla fired without noise";
    EXPECT_EQ(decode_memory_shot(exp, decoder, r), 0u);
  }
}

TEST(Memory, SingleDataXErrorTripsTheExpectedChecks) {
  // Inject a deterministic X on data qubit 0 before extraction: exactly the
  // Z-type checks containing qubit 0 fire, and the decoder still reads 0.
  const CssCode code = steane();
  MemoryExperiment exp = make_memory_experiment(code, 1);
  Circuit with_error(exp.circuit.num_qubits());
  // Encoder is ops[0..k); find the boundary = first op touching an ancilla.
  // Simpler: prepend the error by rebuilding — encode, X(0), then rest.
  // The encoder was appended first, so inject after the last encoder gate:
  const Circuit encoder = synthesize_encoder(code);
  std::size_t idx = 0;
  for (const Operation& op : exp.circuit.ops()) {
    if (idx == encoder.size()) with_error.x(0);
    if (op.kind == OpKind::kGate)
      with_error.gate(op.name, op.matrix, op.qubits, op.params);
    else
      with_error.measure(op.qubits[0]);
    ++idx;
  }
  const NoisyCircuit noisy = NoiseModel{}.apply(with_error);
  PauliFrameSampler sampler(noisy, RngStream(3));
  RngStream rng(4);
  const auto records = sampler.sample(100, rng);
  const CssLookupDecoder decoder(code, 1);
  // Z-checks occupy record bits 3..5 (after the 3 X-checks).
  std::uint64_t expected_syndrome = 0;
  for (std::size_t j = 0; j < code.z_supports.size(); ++j)
    if (code.z_supports[j] & 1ULL) expected_syndrome |= 1ULL << (3 + j);
  for (std::uint64_t r : records) {
    EXPECT_EQ(r & 0x3F, expected_syndrome);
    EXPECT_EQ(decode_memory_shot(exp, decoder, r), 0u);  // corrected
  }
}

TEST(Memory, LogicalErrorRateGrowsWithNoise) {
  const CssCode code = steane();
  const MemoryExperiment exp = make_memory_experiment(code, 1);
  const CssLookupDecoder decoder(code, 1);
  double previous = 0.0;
  for (const double p : {0.001, 0.01, 0.05}) {
    NoiseModel nm;
    nm.add_all_gate_noise(channels::depolarizing(p));
    const NoisyCircuit noisy = nm.apply(exp.circuit);
    PauliFrameSampler sampler(noisy, RngStream(5));
    RngStream rng(6);
    const auto records = sampler.sample(20000, rng);
    const double rate = memory_logical_error_rate(exp, decoder, records);
    EXPECT_GE(rate, previous - 0.002) << "p=" << p;
    previous = rate;
  }
  EXPECT_GT(previous, 0.01);  // 5% circuit noise must cause logical errors
}

TEST(Memory, FrameSamplerAndPtsbeAgreeOnLogicalErrorRate) {
  // The head-to-head: same noisy memory circuit through the Stim-like bulk
  // sampler and through PTS → BE on the statevector.
  const CssCode code = steane();
  const MemoryExperiment exp = make_memory_experiment(code, 1);
  ASSERT_LE(exp.circuit.num_qubits(), 13u);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.01));
  const NoisyCircuit noisy = nm.apply(exp.circuit);
  const CssLookupDecoder decoder(code, 1);

  PauliFrameSampler sampler(noisy, RngStream(7));
  RngStream rng_f(8);
  const auto frame_records = sampler.sample(40000, rng_f);
  const double frame_rate =
      memory_logical_error_rate(exp, decoder, frame_records);

  RngStream rng_p(9);
  pts::Options opt;
  opt.nsamples = 8000;
  opt.nshots = 5;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng_p);
  const auto result = be::execute(noisy, specs);
  const auto pts_rate = be::estimate_probability(
      result, be::Weighting::kDrawWeighted, [&](std::uint64_t r) {
        return decode_memory_shot(exp, decoder, r) != 0;
      });

  EXPECT_NEAR(frame_rate, pts_rate.value,
              0.01 + 3.0 * pts_rate.std_error);
}

}  // namespace
}  // namespace ptsbe::qec
