// Tests for the QEC substrate: Pauli algebra, code validation and distance,
// encoder synthesis (verified against both the tableau and the statevector),
// transversal logical gates on Steane, lookup decoding, and the 5→1 magic
// state distillation property.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ptsbe/qec/codes.hpp"
#include "ptsbe/qec/decoder.hpp"
#include "ptsbe/qec/distillation.hpp"
#include "ptsbe/qec/stabilizer_code.hpp"
#include "ptsbe/stabilizer/tableau.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe::qec {
namespace {

TEST(PauliStringTest, ParseAndPrintRoundTrip) {
  const PauliString p = PauliString::parse("-XZIY");
  EXPECT_TRUE(p.negative);
  EXPECT_EQ(p.to_string(4), "-XZIY");
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_THROW((void)PauliString::parse("XQ"), precondition_error);
}

TEST(PauliStringTest, Commutation) {
  const auto x = PauliString::parse("XI"), z = PauliString::parse("ZI");
  const auto xx = PauliString::parse("XX"), zz = PauliString::parse("ZZ");
  EXPECT_FALSE(x.commutes_with(z));
  EXPECT_TRUE(xx.commutes_with(zz));
  EXPECT_TRUE(x.commutes_with(PauliString::parse("IX")));
}

TEST(PauliStringTest, MultiplySigns) {
  // Z·X on one qubit anticommute → throws; X·X = I; Y·Z = iX? (Y and Z
  // anticommute → throws). Commuting examples:
  const auto xx = PauliString::parse("XX");
  const auto yy = PauliString::parse("YY");
  const auto prod = xx.multiply(yy);  // XX·YY = (XY)⊗(XY) = (iZ)(iZ) = -ZZ
  EXPECT_EQ(prod.to_string(2), "-ZZ");
  EXPECT_THROW((void)PauliString::parse("XI").multiply(PauliString::parse("ZI")),
               precondition_error);
  const auto id = xx.multiply(xx);
  EXPECT_TRUE(id.is_identity());
  EXPECT_FALSE(id.negative);
}

TEST(PauliStringTest, ConjugationMatchesGateAlgebra) {
  // H X H = Z, H Z H = X, H Y H = -Y.
  auto p = PauliString::parse("X");
  p.conj_h(0);
  EXPECT_EQ(p.to_string(1), "+Z");
  p = PauliString::parse("Y");
  p.conj_h(0);
  EXPECT_EQ(p.to_string(1), "-Y");
  // S X S† = Y, S Y S† = -X.
  p = PauliString::parse("X");
  p.conj_s(0);
  EXPECT_EQ(p.to_string(1), "+Y");
  p.conj_s(0);
  EXPECT_EQ(p.to_string(1), "-X");
  // CX: X⊗I → X⊗X (control 0), I⊗Z → Z⊗Z.
  p = PauliString::parse("XI");
  p.conj_cx(0, 1);
  EXPECT_EQ(p.to_string(2), "+XX");
  p = PauliString::parse("IZ");
  p.conj_cx(0, 1);
  EXPECT_EQ(p.to_string(2), "+ZZ");
}

TEST(Codes, SteaneValidatesAndHasDistance3) {
  const CssCode code = steane();
  EXPECT_EQ(code.n, 7u);
  EXPECT_EQ(code.stabilizers.size(), 6u);
  EXPECT_EQ(code.distance(4), 3u);
}

TEST(Codes, FiveQubitCodeDistance3) {
  const StabilizerCode code = five_qubit_code();
  EXPECT_EQ(code.distance(4), 3u);
}

TEST(Codes, RotatedSurfaceD3) {
  const CssCode code = rotated_surface_code(3);
  EXPECT_EQ(code.n, 9u);
  EXPECT_EQ(code.stabilizers.size(), 8u);
  EXPECT_EQ(code.distance(4), 3u);
}

TEST(Codes, RotatedSurfaceD5Validates) {
  const CssCode code = rotated_surface_code(5);
  EXPECT_EQ(code.n, 25u);
  EXPECT_EQ(code.stabilizers.size(), 24u);
  // Full distance-5 check is exercised in the slow suite; here confirm no
  // logical operator of weight ≤ 3 exists (d > 3 ⇒ construction sound).
  EXPECT_EQ(code.distance(3), 0u);
}

TEST(Codes, ValidationCatchesBrokenCodes) {
  StabilizerCode bad = five_qubit_code();
  bad.stabilizers[0] = PauliString::parse("XIIII");  // breaks commutation
  EXPECT_THROW(bad.validate(), precondition_error);
  StabilizerCode bad2 = five_qubit_code();
  bad2.logical_x = PauliString::parse("ZZZZZ");  // commutes with logical Z
  EXPECT_THROW(bad2.validate(), precondition_error);
}

// Encoder synthesis: the synthesized circuit must map Z_i to the stabilizer
// generators exactly (checked on the tableau) and produce correct logical
// encodings (checked on the statevector).
class EncoderSynthesis : public ::testing::TestWithParam<int> {};

StabilizerCode code_by_index(int i) {
  switch (i) {
    case 0: return steane();
    case 1: return five_qubit_code();
    default: return rotated_surface_code(3);
  }
}

TEST_P(EncoderSynthesis, StabilizersHoldOnEncodedStates) {
  const StabilizerCode code = code_by_index(GetParam());
  const Circuit enc = synthesize_encoder(code);
  // Encode |0_L⟩ (input qubit |0⟩) and check every stabilizer expectation
  // and the logical Z expectation on the statevector.
  StateVector sv(code.n);
  sv.apply_circuit(enc);
  std::vector<unsigned> all(code.n);
  for (unsigned q = 0; q < code.n; ++q) all[q] = q;
  for (const PauliString& s : code.stabilizers) {
    const std::string str = s.to_string(code.n).substr(1);
    const double sign = s.negative ? -1.0 : 1.0;
    EXPECT_NEAR(sv.expectation_pauli(str, all), sign * 1.0, 1e-10) << str;
  }
  const std::string zbar = code.logical_z.to_string(code.n).substr(1);
  EXPECT_NEAR(sv.expectation_pauli(zbar, all), 1.0, 1e-10);
}

TEST_P(EncoderSynthesis, LogicalBlochIsPreserved) {
  const StabilizerCode code = code_by_index(GetParam());
  const Circuit enc = synthesize_encoder(code);
  // Encode |ψ⟩ = cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩, verify logical Bloch.
  const double theta = 1.1, phi = 0.7;
  Circuit full(code.n);
  full.ry(code.n - 1, theta).p(code.n - 1, phi);
  full.append(enc);
  StateVector sv(code.n);
  sv.apply_circuit(full);
  std::vector<unsigned> all(code.n);
  for (unsigned q = 0; q < code.n; ++q) all[q] = q;
  const std::string zbar = code.logical_z.to_string(code.n).substr(1);
  const std::string xbar = code.logical_x.to_string(code.n).substr(1);
  EXPECT_NEAR(sv.expectation_pauli(zbar, all), std::cos(theta), 1e-10);
  EXPECT_NEAR(sv.expectation_pauli(xbar, all), std::sin(theta) * std::cos(phi),
              1e-10);
}

TEST_P(EncoderSynthesis, DecoderInvertsEncoder) {
  const StabilizerCode code = code_by_index(GetParam());
  Circuit round_trip(code.n);
  round_trip.ry(code.n - 1, 0.9).p(code.n - 1, 0.4);
  StateVector expected(code.n);
  expected.apply_circuit(round_trip);
  round_trip.append(synthesize_encoder(code));
  round_trip.append(synthesize_decoder(code));
  StateVector sv(code.n);
  sv.apply_circuit(round_trip);
  EXPECT_NEAR(sv.fidelity(expected), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Codes, EncoderSynthesis, ::testing::Values(0, 1, 2));

TEST(EncoderSynthesis, TableauConfirmsStabilizerGroup) {
  const CssCode code = steane();
  const Circuit enc = synthesize_encoder(code);
  CliffordTableau t(code.n);
  for (const Operation& op : enc.ops()) t.apply_named(op.name, op.qubits);
  // The tableau's stabilizer group after encoding |0…0⟩ must contain every
  // code stabilizer with a + sign: check via statevector expectations is
  // already done; here just confirm all rows are valid Pauli strings.
  for (unsigned i = 0; i < code.n; ++i)
    EXPECT_EQ(t.stabilizer_row(i).size(), code.n + 1);
}

TEST(Transversal, LogicalGatesActCorrectlyOnSteane) {
  const CssCode code = steane();
  const Circuit enc = synthesize_encoder(code);
  const Circuit dec = synthesize_decoder(code);
  // For each logical 1q gate: encode ψ, apply transversal layer, decode,
  // compare with gate applied directly to ψ.
  struct Case {
    const char* name;
    Matrix direct;
  };
  for (const Case& cse : {Case{"h", gates::H()}, Case{"s", gates::S()},
                          Case{"sdg", gates::Sdg()}, Case{"x", gates::X()},
                          Case{"z", gates::Z()}}) {
    Circuit logical(1);
    logical.gate(cse.name, cse.direct, {0});
    const Circuit layer = compile_transversal(logical, code);

    Circuit pipeline(code.n);
    pipeline.ry(code.n - 1, 1.2).p(code.n - 1, 0.5);
    StateVector expected(code.n);
    expected.apply_circuit(pipeline);
    expected.apply_gate(cse.direct, std::array{code.n - 1});

    pipeline.append(enc);
    pipeline.append(layer);
    pipeline.append(dec);
    StateVector sv(code.n);
    sv.apply_circuit(pipeline);
    EXPECT_NEAR(sv.fidelity(expected), 1.0, 1e-9) << cse.name;
  }
}

TEST(Transversal, LogicalCxAndCzBetweenSteaneBlocks) {
  const CssCode code = steane();
  const Circuit enc = synthesize_encoder(code);
  const Circuit dec = synthesize_decoder(code);
  for (const char* gname : {"cx", "cz"}) {
    Circuit logical(2);
    if (std::string(gname) == "cx") logical.cx(0, 1);
    else logical.cz(0, 1);
    const Circuit layer = compile_transversal(logical, code);

    const unsigned N = 2 * code.n;
    Circuit pipeline(N);
    // Block 0 input on qubit n-1, block 1 input on qubit 2n-1.
    pipeline.ry(code.n - 1, 1.0).p(code.n - 1, 0.3);
    pipeline.ry(2 * code.n - 1, 0.6);
    StateVector expected(N);
    expected.apply_circuit(pipeline);
    if (std::string(gname) == "cx")
      expected.apply_gate(gates::CX(), std::array{code.n - 1, 2 * code.n - 1});
    else
      expected.apply_gate(gates::CZ(), std::array{code.n - 1, 2 * code.n - 1});

    std::vector<unsigned> map0(code.n), map1(code.n);
    for (unsigned i = 0; i < code.n; ++i) {
      map0[i] = i;
      map1[i] = code.n + i;
    }
    pipeline.append(enc, map0);
    pipeline.append(enc, map1);
    pipeline.append(layer);
    pipeline.append(dec, map1);
    pipeline.append(dec, map0);
    StateVector sv(N);
    sv.apply_circuit(pipeline);
    EXPECT_NEAR(sv.fidelity(expected), 1.0, 1e-9) << gname;
  }
}

TEST(Decoder, CorrectsAllSingleXErrorsOnSteane) {
  const CssCode code = steane();
  const CssLookupDecoder decoder(code, 1);
  // Noiseless |0_L⟩ readout: sample and confirm logical 0, then inject each
  // single X error and confirm the decoder still reads logical 0.
  StateVector sv(code.n);
  sv.apply_circuit(synthesize_encoder(code));
  RngStream rng(3);
  const auto shots = sv.sample_shots(200, rng);
  for (std::uint64_t shot : shots) {
    EXPECT_EQ(decoder.syndrome(shot), 0u);
    EXPECT_EQ(decoder.logical_z_value(shot), 0u);
    for (unsigned q = 0; q < code.n; ++q) {
      const std::uint64_t corrupted = shot ^ (1ULL << q);
      EXPECT_EQ(decoder.logical_z_value(corrupted), 0u)
          << "X error on " << q;
      EXPECT_NE(decoder.syndrome(corrupted), 0u);
    }
  }
}

TEST(Decoder, LogicalOneReadsOne) {
  const CssCode code = steane();
  const CssLookupDecoder decoder(code, 1);
  Circuit c(code.n);
  c.x(code.n - 1);  // logical input |1⟩
  c.append(synthesize_encoder(code));
  StateVector sv(code.n);
  sv.apply_circuit(c);
  RngStream rng(4);
  for (std::uint64_t shot : sv.sample_shots(100, rng))
    EXPECT_EQ(decoder.logical_z_value(shot), 1u);
}

TEST(Distillation, MagicFidelityHelper) {
  const MagicAxis ax = magic_axis();
  EXPECT_NEAR(magic_fidelity(ax.x, ax.y, ax.z), 1.0, 1e-12);
  EXPECT_NEAR(magic_fidelity(0, 0, 0), 0.5, 1e-12);
  // Sign-insensitive (Clifford frame freedom).
  EXPECT_NEAR(magic_fidelity(-ax.x, ax.y, -ax.z), 1.0, 1e-12);
}

TEST(Distillation, TStatePrepHitsMagicAxis) {
  Circuit c(1);
  append_t_state_prep(c, 0);
  StateVector sv(1);
  sv.apply_circuit(c);
  const double inv = 1.0 / std::sqrt(3.0);
  EXPECT_NEAR(sv.expectation_pauli("X", std::array{0u}), inv, 1e-12);
  EXPECT_NEAR(sv.expectation_pauli("Y", std::array{0u}), inv, 1e-12);
  EXPECT_NEAR(sv.expectation_pauli("Z", std::array{0u}), inv, 1e-12);
}

TEST(Distillation, NoiselessInputsAcceptedWithPerfectOutput) {
  const MsdAnalysis a = analyze_bare_msd(0.0, 1, 1);
  // Ideal T inputs: the codespace projection accepts with the BK05
  // acceptance probability and the output is a perfect magic state.
  EXPECT_GT(a.acceptance_probability, 0.05);
  EXPECT_NEAR(a.output_fidelity, 1.0, 1e-9);
}

TEST(Distillation, NoiseIsSuppressed) {
  // ε_in = 4p/3-shrink fidelity; distilled output must beat the input for
  // small ε (the distillation property).
  const MsdAnalysis a = analyze_bare_msd(0.02, 4000, 7);
  EXPECT_GT(a.output_fidelity, a.input_fidelity);
  EXPECT_GT(a.output_fidelity, 0.995);
  EXPECT_LT(a.input_fidelity, 0.99);
}

TEST(Distillation, SuppressionImprovesAsErrorShrinks) {
  const MsdAnalysis coarse = analyze_bare_msd(0.06, 4000, 8);
  const MsdAnalysis fine = analyze_bare_msd(0.015, 4000, 9);
  const double eps_out_coarse = 1.0 - coarse.output_fidelity;
  const double eps_out_fine = 1.0 - fine.output_fidelity;
  // Input error shrank 4×; output error must shrink super-linearly.
  EXPECT_LT(eps_out_fine, eps_out_coarse / 5.0);
}

TEST(Distillation, PreparationCircuitShape) {
  const CssCode code = steane();
  const Circuit prep = msd_preparation_circuit(code);
  EXPECT_EQ(prep.num_qubits(), 35u);
  EXPECT_GT(prep.gate_count(), 5u * code.n);
  const Circuit prep5 = msd_preparation_circuit(rotated_surface_code(5));
  EXPECT_EQ(prep5.num_qubits(), 125u);
}

TEST(Distillation, EncodedMsdCircuitShape) {
  const Circuit full = encoded_msd_circuit(steane());
  EXPECT_EQ(full.num_qubits(), 35u);
  EXPECT_EQ(full.measured_qubits().size(), 35u);
}

TEST(Distillation, EncodedMsdMatchesBareOnNoiselessInputs) {
  // The encoded distillation acting on perfect |T_L⟩ inputs must accept and
  // output a perfect logical magic state: verify on 2 blocks... full 35q is
  // beyond the statevector here, so verify the logical pipeline on the bare
  // circuit instead and the encoded-circuit *generator* on one block:
  // encoded T state has logical Bloch = (1,1,1)/√3.
  const CssCode code = steane();
  StateVector sv(code.n);
  sv.apply_circuit(encoded_t_state_circuit(code));
  std::vector<unsigned> all(code.n);
  for (unsigned q = 0; q < code.n; ++q) all[q] = q;
  const double inv = 1.0 / std::sqrt(3.0);
  const std::string xbar(code.n, 'X'), zbar(code.n, 'Z'), ybar(code.n, 'Y');
  EXPECT_NEAR(sv.expectation_pauli(xbar, all), inv, 1e-10);
  EXPECT_NEAR(sv.expectation_pauli(zbar, all), inv, 1e-10);
  // Ȳ = -Y⊗7 on Steane (XZ = -iY bookkeeping over 7 qubits).
  EXPECT_NEAR(-sv.expectation_pauli(ybar, all), inv, 1e-10);
}

}  // namespace
}  // namespace ptsbe::qec
