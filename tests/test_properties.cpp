// Cross-cutting property suites (parameterized gtest): every standard
// channel must make all simulation routes agree with the exact density
// matrix; Clifford circuit inversion must be exact; MPS truncation must
// degrade gracefully; samplers must pass frequency tests against exact
// probabilities.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/stabilizer_code.hpp"
#include "ptsbe/statevector/statevector.hpp"
#include "ptsbe/tensornet/mps.hpp"
#include "ptsbe/trajectory/trajectory.hpp"

namespace ptsbe {
namespace {

double tvd_map(const std::map<std::uint64_t, double>& f,
               const std::vector<double>& exact) {
  double d = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto it = f.find(i);
    d += std::abs((it == f.end() ? 0.0 : it->second) - exact[i]);
  }
  return d / 2;
}

// ---------------------------------------------------------------------------
// Property 1: for every standard channel, Algorithm-1 trajectories AND the
// PTS→BE pipeline converge to the exact density-matrix distribution.
// ---------------------------------------------------------------------------

struct ChannelCase {
  const char* name;
  ChannelPtr channel;
};

class ChannelEquivalence : public ::testing::TestWithParam<int> {
 public:
  static ChannelCase make(int i) {
    switch (i) {
      case 0: return {"depolarizing", channels::depolarizing(0.08)};
      case 1: return {"bit_flip", channels::bit_flip(0.12)};
      case 2: return {"phase_flip", channels::phase_flip(0.15)};
      case 3: return {"bit_phase_flip", channels::bit_phase_flip(0.1)};
      case 4: return {"pauli_channel", channels::pauli_channel(0.05, 0.07, 0.03)};
      case 5: return {"amplitude_damping", channels::amplitude_damping(0.2)};
      case 6: return {"phase_damping", channels::phase_damping(0.25)};
      default: return {"depolarizing2+corr", nullptr};  // handled separately
    }
  }
};

NoisyCircuit channel_program(const ChannelPtr& one_qubit_channel) {
  Circuit c(2);
  c.h(0).t(0).cx(0, 1).s(1);
  c.measure_all();
  NoiseModel nm;
  if (one_qubit_channel != nullptr) {
    nm.add_all_gate_noise(one_qubit_channel);
  } else {
    nm.add_all_gate_noise(channels::depolarizing2(0.1));
    nm.add_all_gate_noise(channels::correlated_xx_zz(0.04));
  }
  return nm.apply(c);
}

TEST_P(ChannelEquivalence, TrajectoriesMatchDensityMatrix) {
  const ChannelCase cse = make(GetParam());
  const NoisyCircuit noisy = channel_program(cse.channel);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const auto exact = dm.probabilities();

  RngStream rng(100 + GetParam());
  const auto base = traj::run_statevector(noisy, 25000, rng);
  std::map<std::uint64_t, double> fb;
  for (auto r : base.records) fb[r] += 1.0 / base.records.size();
  EXPECT_LT(tvd_map(fb, exact), 0.02) << cse.name << " (Algorithm 1)";
}

TEST_P(ChannelEquivalence, PtsbePipelineMatchesDensityMatrix) {
  const ChannelCase cse = make(GetParam());
  const NoisyCircuit noisy = channel_program(cse.channel);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const auto exact = dm.probabilities();

  RngStream rng(200 + GetParam());
  pts::Options opt;
  opt.nsamples = 25000;
  opt.nshots = 1;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto result = be::execute(noisy, specs);
  // Nominal-draw weighting with the realized/nominal importance correction
  // for general channels: weight each record by realized/nominal so the
  // estimator is unbiased even when PTS sampled by nominal probability.
  std::map<std::uint64_t, double> f;
  double total = 0;
  for (const auto& batch : result.batches) {
    if (batch.records.empty()) continue;
    const double ratio =
        batch.realized_probability / batch.spec.nominal_probability;
    for (auto r : batch.records) {
      f[r] += ratio;
      total += ratio;
    }
  }
  for (auto& [k, v] : f) v /= total;
  EXPECT_LT(tvd_map(f, exact), 0.025) << cse.name << " (PTSBE)";
}

INSTANTIATE_TEST_SUITE_P(AllChannels, ChannelEquivalence,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Property 2: invert_clifford_circuit composes to the identity.
// ---------------------------------------------------------------------------

class CliffordInversion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CliffordInversion, CircuitTimesInverseIsIdentity) {
  RngStream rng(GetParam());
  const unsigned n = 4;
  Circuit c(n);
  const char* names[] = {"h", "s", "sdg", "x", "y", "z", "sx", "sy"};
  for (int i = 0; i < 30; ++i) {
    if (rng.uniform() < 0.6) {
      const unsigned q = static_cast<unsigned>(rng.uniform_index(n));
      const std::string g = names[rng.uniform_index(8)];
      if (g == "h") c.h(q);
      else if (g == "s") c.s(q);
      else if (g == "sdg") c.sdg(q);
      else if (g == "x") c.x(q);
      else if (g == "y") c.y(q);
      else if (g == "z") c.z(q);
      else if (g == "sx") c.sx(q);
      else c.sy(q);
    } else {
      unsigned a = static_cast<unsigned>(rng.uniform_index(n));
      unsigned b = static_cast<unsigned>(rng.uniform_index(n));
      if (a == b) b = (b + 1) % n;
      switch (rng.uniform_index(3)) {
        case 0: c.cx(a, b); break;
        case 1: c.cz(a, b); break;
        default: c.swap(a, b); break;
      }
    }
  }
  StateVector ref(n);
  ref.apply_gate(gates::RY(0.7), std::array{0u});
  ref.apply_gate(gates::RY(1.3), std::array{2u});
  StateVector sv = ref;
  sv.apply_circuit(c);
  sv.apply_circuit(qec::invert_clifford_circuit(c));
  EXPECT_NEAR(sv.fidelity(ref), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliffordInversion,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---------------------------------------------------------------------------
// Property 3: MPS truncation degrades fidelity gracefully and monotonically
// in the bond cap (up to noise), and reported discarded weight tracks the
// actual fidelity loss.
// ---------------------------------------------------------------------------

TEST(MpsTruncationProperty, FidelityImprovesWithBondDimension) {
  const unsigned n = 8;
  Circuit c(n);
  RngStream rng(33);
  for (unsigned d = 0; d < 6; ++d) {
    for (unsigned q = 0; q < n; ++q) c.ry(q, rng.uniform(0, 3.1));
    for (unsigned q = d % 2; q + 1 < n; q += 2) c.cx(q, q + 1);
  }
  StateVector exact(n);
  exact.apply_circuit(c);

  double previous = -1.0;
  for (std::size_t bond : {2ul, 4ul, 8ul, 16ul}) {
    MpsConfig cfg;
    cfg.max_bond = bond;
    MpsState mps(n, cfg);
    mps.apply_circuit(c);
    const auto amps = mps.to_statevector();
    cplx overlap{0, 0};
    for (std::uint64_t i = 0; i < (1u << n); ++i)
      overlap += std::conj(amps[i]) * exact.amplitude(i);
    const double fidelity = std::norm(overlap) / mps.norm2();
    EXPECT_GE(fidelity, previous - 0.02) << "bond " << bond;
    previous = fidelity;
    if (bond == 16) {
      EXPECT_GT(fidelity, 0.999);
    }
  }
}

// ---------------------------------------------------------------------------
// Property 4: the bulk sampler passes a chi-square frequency test against
// exact probabilities on a structured state.
// ---------------------------------------------------------------------------

TEST(SamplerProperty, ChiSquareAgainstExactProbabilities) {
  const unsigned n = 5;
  Circuit c(n);
  c.h(0).cx(0, 1).ry(2, 0.8).cx(2, 3).t(3).h(4).cz(3, 4);
  StateVector sv(n);
  sv.apply_circuit(c);
  RngStream rng(44);
  const std::size_t m = 200000;
  const auto shots = sv.sample_shots(m, rng);
  std::vector<double> counts(1u << n, 0.0);
  for (auto s : shots) counts[s] += 1.0;
  double chi2 = 0.0;
  int dof = 0;
  for (std::uint64_t i = 0; i < (1u << n); ++i) {
    const double expect = std::norm(sv.amplitude(i)) * m;
    if (expect < 5.0) continue;  // standard chi-square validity guard
    chi2 += (counts[i] - expect) * (counts[i] - expect) / expect;
    ++dof;
  }
  // dof ≈ 24 populated bins; 99.9th percentile of chi2(30) ≈ 59.7.
  EXPECT_LT(chi2, 65.0) << "dof=" << dof;
}

// ---------------------------------------------------------------------------
// Property 5: PTS proportional redistribution preserves expectation-value
// estimation — estimate <Z0Z1> on a noisy Bell state and compare with the
// density matrix.
// ---------------------------------------------------------------------------

TEST(ProportionalEstimator, RecoverZZExpectation) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.1));
  const NoisyCircuit noisy = nm.apply(c);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const double exact_zz = dm.expectation_pauli("ZZ", std::array{0u, 1u});

  const auto all = pts::enumerate_most_likely(noisy, 1e-10, 1);
  auto specs = pts::redistribute_proportional(all, 200000);
  const auto result = be::execute(noisy, specs);
  double zz = 0, shots = 0;
  for (const auto& batch : result.batches)
    for (auto r : batch.records) {
      zz += ((r & 1) == ((r >> 1) & 1)) ? 1.0 : -1.0;
      shots += 1.0;
    }
  EXPECT_NEAR(zz / shots, exact_zz, 0.02);
}

// ---------------------------------------------------------------------------
// Property 6: spec dedup is idempotent and conserves shots when merging.
// ---------------------------------------------------------------------------

TEST(DedupProperty, IdempotentAndShotConserving) {
  RngStream rng(55);
  std::vector<TrajectorySpec> specs;
  for (int i = 0; i < 500; ++i) {
    TrajectorySpec s;
    const int kind = static_cast<int>(rng.uniform_index(5));
    for (int b = 0; b < kind; ++b)
      s.branches.push_back({rng.uniform_index(4), rng.uniform_index(3)});
    s.shots = 10;
    specs.push_back(s);
  }
  const std::uint64_t before = total_shots(specs);
  auto merged = pts::dedup(specs, true);
  EXPECT_EQ(total_shots(merged), before);
  auto merged_again = pts::dedup(merged, true);
  EXPECT_EQ(merged_again.size(), merged.size());
  EXPECT_EQ(total_shots(merged_again), before);
}

}  // namespace
}  // namespace ptsbe
