// The `.ptq` text format: exact round-trip (parse(write(c)) == c) across
// every gate in the library and every standard channel, hand-written-text
// parsing (factory channel forms, comments, blank lines), and precise
// line:column diagnostics on malformed input.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

// ---------------------------------------------------------------------------
// Round-trip: every gate mnemonic, every factory channel, measurements.
// ---------------------------------------------------------------------------

TEST(PtqRoundTrip, EveryLibraryGate) {
  Circuit c(3);
  c.x(0).y(1).z(2).h(0).s(1).sdg(2).t(0).tdg(1);
  c.sx(2).sxdg(0).sy(1).sydg(2);
  c.rx(0, 0.1).ry(1, -2.7).rz(2, 3.14159).p(0, 0.6180339887498949);
  c.gate("i", gates::I(), {1});
  c.gate("u3", gates::U3(0.3, -1.1, 2.2), {2}, {0.3, -1.1, 2.2});
  c.cx(0, 1).cy(1, 2).cz(0, 2).swap(1, 0);
  c.gate("iswap", gates::ISWAP(), {2, 1});
  c.measure_all();

  const NoisyCircuit noisy(c, {});
  const NoisyCircuit back = io::parse_circuit(io::write_circuit(noisy));
  EXPECT_TRUE(io::programs_equal(noisy, back));
  EXPECT_TRUE(io::circuits_equal(c, back.circuit()));
}

TEST(PtqRoundTrip, CustomUnitaryFallsBackToLongForm) {
  Circuit c(2);
  // A gate the mnemonic table cannot reconstruct: custom name + matrix.
  c.gate("mygate", gates::RX(0.77), {1}, {0.77});
  // A known name whose stored matrix does NOT match the builder (must be
  // emitted long-form, not silently replaced by the library matrix).
  c.gate("h", gates::RZ(0.5), {0});
  c.measure_all();
  const NoisyCircuit noisy(c, {});
  const std::string text = io::write_circuit(noisy);
  EXPECT_NE(text.find("unitary mygate"), std::string::npos);
  EXPECT_NE(text.find("unitary h"), std::string::npos);
  EXPECT_TRUE(io::programs_equal(noisy, io::parse_circuit(text)));
}

TEST(PtqRoundTrip, EveryStandardChannel) {
  const std::vector<ChannelPtr> zoo = {
      channels::depolarizing(0.03),
      channels::bit_flip(0.02),
      channels::phase_flip(0.01),
      channels::bit_phase_flip(0.015),
      channels::pauli_channel(0.01, 0.02, 0.03),
      channels::amplitude_damping(0.2),
      channels::phase_damping(0.25),
      channels::thermal_relaxation(1.0, 30.0, 40.0),
      channels::coherent_overrotation(0.05, 0.3),
  };
  const std::vector<ChannelPtr> zoo2 = {
      channels::depolarizing2(0.04),
      channels::correlated_xx_zz(0.02),
  };

  Circuit c(2);
  c.h(0).cx(0, 1);
  c.measure_all();
  std::vector<NoiseSite> sites;
  // State-prep sites (before the circuit), per channel on qubit 0.
  for (const ChannelPtr& ch : zoo)
    sites.push_back({0, NoiseSite::kBeforeCircuit, {0}, ch});
  // Gate sites after op 1 (the cx): 1q channels on each qubit, 2q on both.
  for (const ChannelPtr& ch : zoo) sites.push_back({0, 1, {1}, ch});
  for (const ChannelPtr& ch : zoo2) sites.push_back({0, 1, {0, 1}, ch});
  // Readout site after a measure op.
  sites.push_back({0, 2, {0}, channels::bit_flip(0.005)});

  const NoisyCircuit noisy(std::move(c), std::move(sites));
  const NoisyCircuit back = io::parse_circuit(io::write_circuit(noisy));
  EXPECT_TRUE(io::programs_equal(noisy, back));
  ASSERT_EQ(back.num_sites(), noisy.num_sites());
  EXPECT_EQ(back.sites().front().after_op, NoiseSite::kBeforeCircuit);
}

TEST(PtqRoundTrip, SharedChannelHandleIsDeclaredOnce) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const ChannelPtr shared = channels::depolarizing(0.01);
  std::vector<NoiseSite> sites = {{0, 0, {0}, shared}, {0, 1, {1}, shared}};
  const std::string text = io::write_circuit(NoisyCircuit(c, sites));
  std::size_t decls = 0, pos = 0;
  while ((pos = text.find("channel ", pos)) != std::string::npos) {
    ++decls;
    pos += 8;
  }
  EXPECT_EQ(decls, 1u);
}

// ---------------------------------------------------------------------------
// Property: random circuits + random noise sites round-trip exactly (the
// test_properties.cpp random-program recipe, widened to the full gate set).
// ---------------------------------------------------------------------------

class PtqRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

NoisyCircuit random_program(std::uint64_t seed) {
  RngStream rng(seed);
  const unsigned n = 2 + static_cast<unsigned>(rng.uniform_index(4));  // 2..5
  Circuit c(n);
  const std::vector<ChannelPtr> zoo1 = {
      channels::depolarizing(0.01 + 0.1 * rng.uniform()),
      channels::amplitude_damping(0.05 + 0.2 * rng.uniform()),
      channels::phase_damping(rng.uniform()),
      channels::coherent_overrotation(0.1, rng.uniform(-3.0, 3.0)),
  };
  const std::vector<ChannelPtr> zoo2 = {
      channels::depolarizing2(0.02),
      channels::correlated_xx_zz(0.03),
  };
  std::vector<NoiseSite> sites;
  // Optional state-prep noise.
  if (rng.uniform() < 0.5)
    sites.push_back(
        {0, NoiseSite::kBeforeCircuit, {0}, zoo1[rng.uniform_index(4)]});

  const char* one_q[] = {"x", "y",  "z",    "h",  "s",  "sdg", "t", "tdg",
                         "sx", "sxdg", "sy", "sydg"};
  const std::size_t ops = 8 + rng.uniform_index(20);
  for (std::size_t i = 0; i < ops; ++i) {
    const unsigned q = static_cast<unsigned>(rng.uniform_index(n));
    switch (rng.uniform_index(5)) {
      case 0: {
        const std::string g = one_q[rng.uniform_index(12)];
        c.gate(g, [&] {
          if (g == "x") return gates::X();
          if (g == "y") return gates::Y();
          if (g == "z") return gates::Z();
          if (g == "h") return gates::H();
          if (g == "s") return gates::S();
          if (g == "sdg") return gates::Sdg();
          if (g == "t") return gates::T();
          if (g == "tdg") return gates::Tdg();
          if (g == "sx") return gates::SX();
          if (g == "sxdg") return gates::SXdg();
          if (g == "sy") return gates::SY();
          return gates::SYdg();
        }(), {q});
        break;
      }
      case 1: {
        const double th = rng.uniform(-6.3, 6.3);
        switch (rng.uniform_index(4)) {
          case 0: c.rx(q, th); break;
          case 1: c.ry(q, th); break;
          case 2: c.rz(q, th); break;
          default: c.p(q, th); break;
        }
        break;
      }
      case 2: {
        const double a = rng.uniform(-3.2, 3.2), b = rng.uniform(-3.2, 3.2),
                     g = rng.uniform(-3.2, 3.2);
        c.gate("u3", gates::U3(a, b, g), {q}, {a, b, g});
        break;
      }
      case 3: {
        unsigned b = static_cast<unsigned>(rng.uniform_index(n));
        if (b == q) b = (b + 1) % n;
        switch (rng.uniform_index(5)) {
          case 0: c.cx(q, b); break;
          case 1: c.cy(q, b); break;
          case 2: c.cz(q, b); break;
          case 3: c.swap(q, b); break;
          default: c.gate("iswap", gates::ISWAP(), {q, b}); break;
        }
        break;
      }
      default: {
        // Attach a noise site after the most recent op (if any).
        if (c.size() == 0) break;
        if (rng.uniform() < 0.75 || n < 2) {
          sites.push_back({0, c.size() - 1, {q}, zoo1[rng.uniform_index(4)]});
        } else {
          unsigned b = static_cast<unsigned>(rng.uniform_index(n));
          if (b == q) b = (b + 1) % n;
          sites.push_back({0, c.size() - 1, {q, b}, zoo2[rng.uniform_index(2)]});
        }
        break;
      }
    }
  }
  c.measure_all();
  return NoisyCircuit(std::move(c), std::move(sites));
}

TEST_P(PtqRoundTripProperty, WriteParseIsIdentity) {
  const NoisyCircuit noisy = random_program(GetParam());
  const std::string text = io::write_circuit(noisy);
  const NoisyCircuit back = io::parse_circuit(text);
  EXPECT_TRUE(io::programs_equal(noisy, back));
  // Writing the parsed program reproduces the text verbatim (canonical
  // form is a fixed point).
  EXPECT_EQ(io::write_circuit(back), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtqRoundTripProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Hand-written text: factory channel declarations, comments, diagnostics.
// ---------------------------------------------------------------------------

TEST(PtqParse, HandWrittenFactoryForm) {
  const std::string text = R"(# a Bell pair with gate + readout noise
ptq 1
qubits 2

channel g depolarizing 0.01
channel ro bit_flip 0.005   # readout flips

h 0
noise g 0
cx 0 1
noise g 0
noise g 1
measure 0
noise ro 0
measure 1
noise ro 1
)";
  const NoisyCircuit noisy = io::parse_circuit(text);
  EXPECT_EQ(noisy.num_qubits(), 2u);
  EXPECT_EQ(noisy.circuit().size(), 4u);  // h, cx, measure, measure
  ASSERT_EQ(noisy.num_sites(), 5u);
  EXPECT_EQ(noisy.sites()[0].after_op, 0u);
  EXPECT_EQ(noisy.sites()[0].channel->name(), "depolarizing");
  EXPECT_EQ(noisy.sites()[3].channel->name(), "bit_flip");
  EXPECT_EQ(noisy.sites()[3].after_op, 2u);  // after the first measure
  // Factory-built and parsed channels are structurally identical.
  EXPECT_TRUE(io::programs_equal(
      noisy, io::parse_circuit(io::write_circuit(noisy))));
}

TEST(PtqParse, EveryFactoryChannelKind) {
  const std::string text = R"(ptq 1
qubits 2
channel a depolarizing 0.01
channel b depolarizing2 0.02
channel c bit_flip 0.03
channel d phase_flip 0.04
channel e bit_phase_flip 0.05
channel f pauli 0.01 0.02 0.03
channel g amplitude_damping 0.1
channel h phase_damping 0.2
channel i correlated_xx_zz 0.03
channel j thermal_relaxation 1 30 40
channel k coherent_overrotation 0.05 0.4
h 0
noise a 0
noise b 0 1
noise c 0
noise d 0
noise e 0
noise f 0
noise g 0
noise h 0
noise i 0 1
noise j 0
noise k 0
measure 0
)";
  const NoisyCircuit noisy = io::parse_circuit(text);
  EXPECT_EQ(noisy.num_sites(), 11u);
  EXPECT_FALSE(noisy.all_unitary_mixture());  // damping channels present
}

TEST(PtqParse, FileHelperAndMissingFile) {
  const std::string path = ::testing::TempDir() + "ptq_io_test.ptq";
  {
    std::ofstream os(path);
    os << "ptq 1\nqubits 1\nh 0\nmeasure 0\n";
  }
  const NoisyCircuit noisy = io::parse_circuit_file(path);
  EXPECT_EQ(noisy.circuit().size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW((void)io::parse_circuit_file("/nonexistent/nope.ptq"),
               runtime_failure);
}

struct DiagnosticCase {
  const char* label;
  const char* text;
  std::size_t line;
  std::size_t column;
  const char* message_fragment;
};

class PtqDiagnostics : public ::testing::TestWithParam<int> {
 public:
  static DiagnosticCase make(int i) {
    switch (i) {
      case 0:
        return {"bad gate name", "ptq 1\nqubits 2\nh 0\nhh 1\n", 4, 1,
                "unknown directive or gate 'hh'"};
      case 1:
        return {"gate arity mismatch", "ptq 1\nqubits 2\ncx 0\n", 3, 1,
                "expects 2 qubit(s)"};
      case 2:
        return {"dangling noise ref",
                "ptq 1\nqubits 2\nh 0\nnoise gg 0\n", 4, 7,
                "unknown channel 'gg'"};
      case 3:
        return {"channel arity mismatch",
                "ptq 1\nqubits 2\nchannel g depolarizing 0.01\nh 0\n"
                "noise g 0 1\n",
                5, 7, "has arity 1 but 2 qubit(s) listed"};
      case 4:
        return {"qubit out of range", "ptq 1\nqubits 2\nh 5\n", 3, 3,
                "qubit 5 out of range"};
      case 5:
        return {"missing header", "qubits 2\nh 0\n", 1, 1,
                "expected 'ptq <version>' header"};
      case 6:
        return {"unsupported version", "ptq 9\nqubits 2\n", 1, 5,
                "unsupported ptq format version 9"};
      case 7:
        return {"bad number", "ptq 1\nqubits 2\nrx 0 abc\n", 3, 6,
                "expected gate parameter, got 'abc'"};
      case 8:
        return {"trailing token", "ptq 1\nqubits 2\nmeasure 0 0\n", 3, 11,
                "unexpected trailing token '0'"};
      case 9:
        return {"unknown channel kind",
                "ptq 1\nqubits 2\nchannel g depol 0.1\n", 3, 11,
                "unknown channel kind 'depol'"};
      case 10:
        return {"invalid channel parameters",
                "ptq 1\nqubits 1\nchannel g depolarizing 1.5\n", 3, 11,
                "invalid channel parameters"};
      case 11:
        return {"duplicate channel id",
                "ptq 1\nqubits 1\nchannel g bit_flip 0.1\n"
                "channel g bit_flip 0.2\n",
                4, 9, "duplicate channel id 'g'"};
      case 12:
        return {"empty input", "   \n# only a comment\n", 1, 1,
                "empty .ptq input"};
      case 13:
        // The arity cap guards the serve boundary: a short line must not
        // be able to demand a 2^k × 2^k allocation.
        return {"unitary arity cap",
                "ptq 1\nqubits 2\nunitary g 16 0\n", 3, 11,
                "unitary qubit count 16 out of range"};
      case 14:
        // Entry-count mismatch fails before any matrix is allocated.
        return {"unitary entry count",
                "ptq 1\nqubits 2\nunitary g 1 0 0 1 0\n", 3, 1,
                "needs 8 matrix-entry tokens, got 2"};
      default:
        // Aliased noise targets would corrupt backend kernels.
        return {"duplicate noise qubit",
                "ptq 1\nqubits 2\nchannel g depolarizing2 0.02\nh 0\n"
                "noise g 0 0\n",
                5, 11, "duplicate qubit 0 in noise site"};
    }
  }
};

TEST_P(PtqDiagnostics, ReportsLineAndColumn) {
  const DiagnosticCase cse = make(GetParam());
  try {
    (void)io::parse_circuit(cse.text, "in.ptq");
    FAIL() << cse.label << ": expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.line(), cse.line) << cse.label << ": " << e.what();
    EXPECT_EQ(e.column(), cse.column) << cse.label << ": " << e.what();
    EXPECT_NE(std::string(e.what()).find(cse.message_fragment),
              std::string::npos)
        << cse.label << ": " << e.what();
    // The source name decorates the message: "in.ptq:<line>:<column>: ...".
    const std::string prefix = "in.ptq:" + std::to_string(cse.line) + ":" +
                               std::to_string(cse.column) + ":";
    EXPECT_EQ(std::string(e.what()).rfind(prefix, 0), 0u)
        << cse.label << ": " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, PtqDiagnostics, ::testing::Range(0, 16));

TEST(PtqWrite, RejectsProgramsTheParserCannotReadBack) {
  // A 7-qubit custom gate is a valid in-memory Circuit but exceeds the
  // parser's `unitary` arity cap — the writer must refuse rather than
  // emit a file its own parser rejects.
  Circuit wide(7);
  wide.gate("big", Matrix::identity(128), {0, 1, 2, 3, 4, 5, 6});
  EXPECT_THROW((void)io::write_circuit(NoisyCircuit(wide, {})),
               precondition_error);

  // Same for a 3-qubit (dim-8) channel: KrausChannel allows it, .ptq's
  // channel grammar does not.
  Circuit c(3);
  c.h(0);
  const auto wide_channel = std::make_shared<const KrausChannel>(
      "identity8", std::vector<Matrix>{Matrix::identity(8)});
  std::vector<NoiseSite> sites = {{0, 0, {0, 1, 2}, wide_channel}};
  EXPECT_THROW((void)io::write_circuit(NoisyCircuit(c, sites)),
               precondition_error);
}

TEST(PtqWrite, RejectsOutOfProgramOrderSites) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const ChannelPtr g = channels::depolarizing(0.01);
  // Site 0 fires after op 1, site 1 after op 0: valid NoisyCircuit, but a
  // line-oriented listing cannot preserve the site indices.
  std::vector<NoiseSite> sites = {{0, 1, {0}, g}, {0, 0, {1}, g}};
  const NoisyCircuit noisy(c, sites);
  EXPECT_THROW((void)io::write_circuit(noisy), precondition_error);
}

}  // namespace
}  // namespace ptsbe
