// The streaming Batched-Execution path and the incremental dataset writer:
// `execute_streaming` must deliver every batch exactly once with the same
// records and weights the materialising `execute` produces — under
// multi-device scheduling — and `dataset::StreamWriter` must emit files
// byte-identical to the bulk `write_binary`, including zero-probability
// unrealizable batches.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

NoisyCircuit ghz_program(unsigned n = 5) {
  Circuit c(n);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.03));
  return noise.apply(c);
}

std::vector<TrajectorySpec> sample_specs(const NoisyCircuit& noisy,
                                         std::size_t nsamples = 400,
                                         std::uint64_t nshots = 100) {
  RngStream rng(21);
  pts::Options options;
  options.nsamples = nsamples;
  options.nshots = nshots;
  options.merge_duplicates = true;
  return pts::sample_probabilistic(noisy, options, rng);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void expect_batches_equal(const be::TrajectoryBatch& a,
                          const be::TrajectoryBatch& b) {
  EXPECT_EQ(a.spec_index, b.spec_index);
  EXPECT_EQ(a.records, b.records);
  EXPECT_TRUE(a.spec.same_assignment(b.spec));
  EXPECT_EQ(a.spec.shots, b.spec.shots);
  EXPECT_DOUBLE_EQ(a.spec.nominal_probability, b.spec.nominal_probability);
  EXPECT_DOUBLE_EQ(a.realized_probability, b.realized_probability);
}

TEST(ExecuteStreaming, DeliversEveryBatchExactlyOnceUnderMultiDevice) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy);
  ASSERT_GT(specs.size(), 4u);

  be::Options options;
  options.num_devices = 4;
  const be::Result reference = be::execute(noisy, specs, options);

  std::vector<std::size_t> deliveries(specs.size(), 0);
  std::vector<be::TrajectoryBatch> streamed(specs.size());
  // Sink calls are serialised by the executor, so plain writes suffice.
  const be::StreamSummary summary = be::execute_streaming(
      noisy, specs, options, [&](be::TrajectoryBatch&& batch) {
        ASSERT_LT(batch.spec_index, specs.size());
        deliveries[batch.spec_index] += 1;
        streamed[batch.spec_index] = std::move(batch);
      });

  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(deliveries[i], 1u) << "spec " << i;
  EXPECT_EQ(summary.num_batches, specs.size());
  EXPECT_EQ(summary.total_shots, reference.total_shots());

  // Identical per-trajectory substreams → bit-identical records regardless
  // of which path (or device) executed the spec.
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_batches_equal(streamed[i], reference.batches[i]);
}

TEST(ExecuteStreaming, SingleDeviceDeliversInSpecOrder) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy, 100, 16);
  std::vector<std::size_t> order;
  (void)be::execute_streaming(noisy, specs, {},
                              [&](be::TrajectoryBatch&& batch) {
                                order.push_back(batch.spec_index);
                              });
  ASSERT_EQ(order.size(), specs.size());
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ExecuteStreaming, SinkRunsOnlyOnTheCallingThread) {
  // The documented sink contract: workers hand batches over a lock-free
  // queue and the sink runs on execute_streaming's caller — so sinks need
  // no locking even under heavy thread counts.
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy, 200, 32);
  be::Options options;
  options.threads = 4;
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t delivered = 0;
  (void)be::execute_streaming(noisy, specs, options,
                              [&](be::TrajectoryBatch&&) {
                                EXPECT_EQ(std::this_thread::get_id(), caller);
                                ++delivered;
                              });
  EXPECT_EQ(delivered, specs.size());
}

TEST(ExecuteStreaming, ThreadsDeliverEveryBatchExactlyOnce) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy);
  ASSERT_GT(specs.size(), 4u);
  be::Options options;
  options.threads = 8;
  const be::Result reference = be::execute(noisy, specs, {});
  std::vector<std::size_t> deliveries(specs.size(), 0);
  std::vector<be::TrajectoryBatch> streamed(specs.size());
  const be::StreamSummary summary = be::execute_streaming(
      noisy, specs, options, [&](be::TrajectoryBatch&& batch) {
        ASSERT_LT(batch.spec_index, specs.size());
        deliveries[batch.spec_index] += 1;
        streamed[batch.spec_index] = std::move(batch);
      });
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(deliveries[i], 1u) << "spec " << i;
  EXPECT_EQ(summary.num_batches, specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_batches_equal(streamed[i], reference.batches[i]);
}

TEST(ExecuteStreaming, SlowSinkAppliesBackpressureAndLosesNothing) {
  // A sink slower than the workers forces the executor's bounded
  // completion queue to fill; emit() then backpressures the workers
  // instead of accumulating the whole corpus in memory. Every batch must
  // still arrive exactly once, bit-identical to the serial reference.
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy, 150, 8);
  ASSERT_GT(specs.size(), 8u);
  const be::Result reference = be::execute(noisy, specs, {});
  be::Options options;
  options.threads = 4;
  std::vector<std::size_t> deliveries(specs.size(), 0);
  std::vector<be::TrajectoryBatch> streamed(specs.size());
  (void)be::execute_streaming(
      noisy, specs, options, [&](be::TrajectoryBatch&& batch) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        deliveries[batch.spec_index] += 1;
        streamed[batch.spec_index] = std::move(batch);
      });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(deliveries[i], 1u) << "spec " << i;
    expect_batches_equal(streamed[i], reference.batches[i]);
  }
}

TEST(ExecuteStreaming, SinkExceptionPropagatesUnderThreads) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy, 120, 8);
  ASSERT_GT(specs.size(), 6u);
  be::Options options;
  options.threads = 4;
  std::size_t delivered = 0;
  EXPECT_THROW(
      (void)be::execute_streaming(noisy, specs, options,
                                  [&](be::TrajectoryBatch&&) {
                                    if (++delivered == 3)
                                      throw runtime_failure("sink full");
                                  }),
      runtime_failure);
  // The failing call is the last: the sink is never invoked again after it
  // throws (remaining batches are dropped, pending specs are skipped).
  EXPECT_EQ(delivered, 3u);
}

TEST(ExecuteStreaming, SinkExceptionPropagatesAndStopsDelivery) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy, 50, 8);
  std::size_t delivered = 0;
  EXPECT_THROW(
      (void)be::execute_streaming(noisy, specs, {},
                                  [&](be::TrajectoryBatch&&) {
                                    if (++delivered == 3)
                                      throw runtime_failure("sink full");
                                  }),
      runtime_failure);
  EXPECT_EQ(delivered, 3u);
}

TEST(ExecuteStreaming, RequiresASink) {
  const NoisyCircuit noisy = ghz_program();
  EXPECT_THROW((void)be::execute_streaming(noisy, {}, {}, be::BatchSink{}),
               precondition_error);
}

// The acceptance criterion: stream the dataset to disk without ever
// materialising a be::Result, and get the same bytes the bulk writer
// produces (single device: completion order == spec order == bulk order).
TEST(StreamWriter, StreamedExportIsByteIdenticalToBulkWriter) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy);

  const std::string bulk_path = "/tmp/ptsbe_test_stream_bulk.bin";
  dataset::write_binary(bulk_path, be::execute(noisy, specs, {}));

  const std::string stream_path = "/tmp/ptsbe_test_stream_inc.bin";
  {
    dataset::StreamWriter writer(stream_path);
    (void)be::execute_streaming(noisy, specs, {},
                                [&](be::TrajectoryBatch&& batch) {
                                  writer.append(batch);
                                });
    EXPECT_EQ(writer.batches_written(), specs.size());
    writer.close();
  }

  const std::string bulk_bytes = slurp(bulk_path);
  const std::string stream_bytes = slurp(stream_path);
  ASSERT_FALSE(bulk_bytes.empty());
  EXPECT_EQ(bulk_bytes, stream_bytes);
}

// Multi-device streaming reorders the file's batch blocks but must lose
// nothing: reading it back and sorting by spec index recovers exactly the
// bulk result.
TEST(StreamWriter, MultiDeviceStreamedExportRoundTripsCompletely) {
  const NoisyCircuit noisy = ghz_program();
  const auto specs = sample_specs(noisy);

  be::Options options;
  options.num_devices = 4;
  const be::Result reference = be::execute(noisy, specs, options);

  const std::string path = "/tmp/ptsbe_test_stream_multidev.bin";
  {
    dataset::StreamWriter writer(path);
    (void)be::execute_streaming(noisy, specs, options,
                                [&](be::TrajectoryBatch&& batch) {
                                  writer.append(batch);
                                });
  }  // destructor closes

  be::Result loaded = dataset::read_binary(path);
  ASSERT_EQ(loaded.batches.size(), reference.batches.size());
  std::sort(loaded.batches.begin(), loaded.batches.end(),
            [](const be::TrajectoryBatch& a, const be::TrajectoryBatch& b) {
              return a.spec_index < b.spec_index;
            });
  for (std::size_t i = 0; i < loaded.batches.size(); ++i)
    expect_batches_equal(loaded.batches[i], reference.batches[i]);
}

// Unrealizable specs (realised probability 0, no records) must survive the
// incremental format like any other batch.
TEST(StreamWriter, ZeroProbabilityBatchRoundTrips) {
  be::Result synthetic;
  be::TrajectoryBatch realizable;
  realizable.spec_index = 0;
  realizable.spec.branches = {{2, 1}};
  realizable.spec.shots = 4;
  realizable.spec.nominal_probability = 0.25;
  realizable.realized_probability = 0.125;
  realizable.records = {1, 3, 3, 0};
  be::TrajectoryBatch unrealizable;
  unrealizable.spec_index = 1;
  unrealizable.spec.branches = {{0, 2}, {5, 1}};
  unrealizable.spec.shots = 128;
  unrealizable.spec.nominal_probability = 1e-3;
  unrealizable.realized_probability = 0.0;  // no records by contract
  synthetic.batches = {realizable, unrealizable};

  const std::string bulk_path = "/tmp/ptsbe_test_stream_zero_bulk.bin";
  const std::string stream_path = "/tmp/ptsbe_test_stream_zero_inc.bin";
  dataset::write_binary(bulk_path, synthetic);
  {
    dataset::StreamWriter writer(stream_path);
    for (const be::TrajectoryBatch& batch : synthetic.batches)
      writer.append(batch);
  }
  EXPECT_EQ(slurp(bulk_path), slurp(stream_path));

  const be::Result loaded = dataset::read_binary(stream_path);
  ASSERT_EQ(loaded.batches.size(), 2u);
  expect_batches_equal(loaded.batches[0], realizable);
  expect_batches_equal(loaded.batches[1], unrealizable);
  EXPECT_TRUE(loaded.batches[1].records.empty());
}

// A run aborted by an exception must not leave a file that parses as a
// smaller-but-complete corpus: the destructor skips header patching during
// unwinding, so the partial file reads back as empty/incomplete.
TEST(StreamWriter, AbortedRunLeavesFileMarkedIncomplete) {
  const std::string path = "/tmp/ptsbe_test_stream_aborted.bin";
  be::TrajectoryBatch batch;
  batch.spec.shots = 2;
  batch.spec.nominal_probability = 1.0;
  batch.records = {0, 1};
  try {
    dataset::StreamWriter writer(path);
    writer.append(batch);
    throw runtime_failure("simulated mid-run abort");
  } catch (const runtime_failure&) {
  }
  const be::Result loaded = dataset::read_binary(path);
  EXPECT_TRUE(loaded.batches.empty());
}

TEST(StreamWriter, AppendAfterCloseThrows) {
  const std::string path = "/tmp/ptsbe_test_stream_closed.bin";
  dataset::StreamWriter writer(path);
  writer.close();
  writer.close();  // idempotent
  EXPECT_THROW(writer.append(be::TrajectoryBatch{}), precondition_error);
  const be::Result loaded = dataset::read_binary(path);
  EXPECT_TRUE(loaded.batches.empty());
}

}  // namespace
}  // namespace ptsbe
