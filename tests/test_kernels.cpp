// The kernel layer's acceptance gates: (1) gate classification is exact —
// anything not provably structured takes the general dense path; (2) every
// compiled-and-supported kernel set (scalar / AVX2 / AVX-512) produces
// **bit-for-bit identical** amplitudes to the scalar reference, across qubit
// positions that exercise low / mid / high bit strides and every gate class;
// (3) the batched prepared-run entry point equals op-by-op application on
// both amplitude backends; (4) end-to-end trajectory results are byte-stable
// across kernel selections. This is what makes SIMD dispatch a pure
// optimisation, invisible to the repo's determinism matrices.

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/aligned.hpp"
#include "ptsbe/common/error.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/kernels/kernel_set.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {
namespace {

using kernels::GateClass;
using kernels::PreparedGate;

/// Restores the process-wide kernel selection on scope exit, so a failing
/// assertion cannot leak an override into later tests.
struct KernelGuard {
  ~KernelGuard() { kernels::set_active("auto"); }
};

AlignedVector<cplx> random_state(unsigned n, std::uint64_t seed) {
  RngStream rng(seed);
  AlignedVector<cplx> amp(std::uint64_t{1} << n);
  for (cplx& a : amp) a = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return amp;
}

/// Dense random matrix with no exact zeros or ones, so classification can
/// only land on the general path.
Matrix random_dense(unsigned arity, std::uint64_t seed) {
  RngStream rng(seed);
  const std::size_t d = std::size_t{1} << arity;
  Matrix m(d, d);
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c)
      m(r, c) = cplx(rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0));
  return m;
}

/// Controlled-U with the control on the matrix LSB (basis index t<<1 | c).
Matrix controlled_on_lsb(const Matrix& u) {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, u(0, 0), 0, u(0, 1),
                 0, 0, 1, 0,
                 0, u(1, 0), 0, u(1, 1)});
}

/// Controlled-U with the control on the matrix MSB (basis index c<<1 | t).
Matrix controlled_on_msb(const Matrix& u) {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, 1, 0, 0,
                 0, 0, u(0, 0), u(0, 1),
                 0, 0, u(1, 0), u(1, 1)});
}

bool bytes_equal(std::span<const cplx> a, std::span<const cplx> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

// ---------------------------------------------------------------------------
// Layout / alignment (satellite: aligned amplitude storage)
// ---------------------------------------------------------------------------

TEST(KernelLayout, AlignedVectorIs64ByteAligned) {
  for (std::size_t count : {1u, 3u, 64u, 1000u}) {
    AlignedVector<cplx> v(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  }
  StateVector sv(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sv.amplitudes().data()) % 64, 0u);
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

TEST(KernelClassify, StructuredGatesLandOnTheirFastPath) {
  const std::vector<unsigned> q1{3};
  const std::vector<unsigned> q2{1, 4};
  EXPECT_EQ(kernels::prepare_gate(gates::I(), q1).cls, GateClass::kIdentity);
  EXPECT_EQ(kernels::prepare_gate(gates::Z(), q1).cls, GateClass::kDiag1);
  EXPECT_EQ(kernels::prepare_gate(gates::S(), q1).cls, GateClass::kDiag1);
  EXPECT_EQ(kernels::prepare_gate(gates::RZ(0.37), q1).cls, GateClass::kDiag1);
  EXPECT_EQ(kernels::prepare_gate(gates::X(), q1).cls, GateClass::kPerm1);
  EXPECT_EQ(kernels::prepare_gate(gates::Y(), q1).cls, GateClass::kPerm1);
  EXPECT_EQ(kernels::prepare_gate(gates::H(), q1).cls, GateClass::kGeneral1);
  EXPECT_EQ(kernels::prepare_gate(gates::CZ(), q2).cls, GateClass::kDiag2);
  EXPECT_EQ(kernels::prepare_gate(gates::SWAP(), q2).cls, GateClass::kPerm2);
  EXPECT_EQ(kernels::prepare_gate(gates::ISWAP(), q2).cls, GateClass::kPerm2);
  EXPECT_EQ(kernels::prepare_gate(random_dense(1, 7), q1).cls,
            GateClass::kGeneral1);
  EXPECT_EQ(kernels::prepare_gate(random_dense(2, 8), q2).cls,
            GateClass::kGeneral2);
}

TEST(KernelClassify, ControlledGatesRecoverControlAndTarget) {
  const std::vector<unsigned> q{2, 5};
  // gates::CX() lists the control first, i.e. on the matrix LSB.
  const PreparedGate cx = kernels::prepare_gate(gates::CX(), q);
  ASSERT_EQ(cx.cls, GateClass::kCtrl1);
  EXPECT_EQ(cx.q[0], 2u);  // control
  EXPECT_EQ(cx.q[1], 5u);  // target
  // The mirrored layout (control on the matrix MSB) must swap the roles.
  const Matrix u = random_dense(1, 11);
  const PreparedGate crev = kernels::prepare_gate(controlled_on_msb(u), q);
  ASSERT_EQ(crev.cls, GateClass::kCtrl1);
  EXPECT_EQ(crev.q[0], 5u);  // control
  EXPECT_EQ(crev.q[1], 2u);  // target
  const PreparedGate cfwd = kernels::prepare_gate(controlled_on_lsb(u), q);
  ASSERT_EQ(cfwd.cls, GateClass::kCtrl1);
  EXPECT_EQ(cfwd.q[0], 2u);
  EXPECT_EQ(cfwd.q[1], 5u);
}

// ---------------------------------------------------------------------------
// Cross-ISA bit parity
// ---------------------------------------------------------------------------

/// Apply `m` on `qubits` with every available kernel set and require byte
/// equality with the scalar reference, for every state size in `sizes`.
void expect_parity(const Matrix& m, std::vector<unsigned> qubits,
                   std::span<const unsigned> sizes, std::uint64_t seed) {
  for (unsigned n : sizes) {
    bool fits = true;
    for (unsigned q : qubits) fits = fits && q < n;
    if (!fits) continue;
    const AlignedVector<cplx> init = random_state(n, seed + n);
    AlignedVector<cplx> ref = init;
    kernels::apply_gate(kernels::scalar_kernel_set(), ref.data(), ref.size(),
                        m, qubits);
    for (const kernels::KernelSet* set : kernels::available_sets()) {
      AlignedVector<cplx> got = init;
      kernels::apply_gate(*set, got.data(), got.size(), m, qubits);
      EXPECT_TRUE(bytes_equal(ref, got))
          << "set=" << set->name << " n=" << n << " q0=" << qubits[0]
          << (qubits.size() > 1 ? " q1=" + std::to_string(qubits[1]) : "");
    }
  }
}

TEST(KernelParity, OneQubitGatesAcrossStridesAndSets) {
  const unsigned sizes[] = {1, 2, 6, 12};
  const Matrix shapes[] = {gates::S(), gates::X(), gates::H(),
                           random_dense(1, 3)};
  std::uint64_t seed = 100;
  for (const Matrix& m : shapes)
    for (unsigned q : {0u, 1u, 3u, 5u, 11u})  // low / mid / high strides
      expect_parity(m, {q}, sizes, seed += 17);
}

TEST(KernelParity, TwoQubitGatesAcrossStridesAndSets) {
  const unsigned sizes[] = {2, 6, 12};
  const Matrix u = random_dense(1, 5);
  const Matrix shapes[] = {gates::CZ(),          gates::SWAP(),
                           gates::ISWAP(),       gates::CX(),
                           controlled_on_lsb(u), controlled_on_msb(u),
                           random_dense(2, 6)};
  const std::vector<std::vector<unsigned>> positions = {
      {0, 1}, {1, 0},  {0, 5},  {5, 0}, {3, 4},
      {0, 11}, {11, 0}, {10, 11}, {5, 11}};
  std::uint64_t seed = 5000;
  for (const Matrix& m : shapes)
    for (const std::vector<unsigned>& q : positions)
      expect_parity(m, q, sizes, seed += 29);
}

/// The classified fast paths (diag/perm/ctrl) must agree with the dense
/// general kernel in value. Exact-zero matrix entries may flip the sign of
/// a zero (0*x summed vs skipped), which `==` on doubles tolerates —
/// classification happens above ISA dispatch, so this cannot break
/// cross-kernel byte parity.
TEST(KernelParity, ClassifiedPathsMatchDenseValues) {
  const unsigned n = 8;
  const Matrix shapes[] = {gates::S(),  gates::X(),     gates::CZ(),
                           gates::CX(), gates::ISWAP(), controlled_on_msb(
                                                            random_dense(1, 9))};
  for (const Matrix& m : shapes) {
    const unsigned arity = m.rows() == 2 ? 1 : 2;
    const std::vector<unsigned> qubits =
        arity == 1 ? std::vector<unsigned>{3} : std::vector<unsigned>{3, 6};
    const AlignedVector<cplx> init = random_state(n, 77);
    AlignedVector<cplx> fast = init;
    kernels::apply_gate(kernels::scalar_kernel_set(), fast.data(), fast.size(),
                        m, qubits);
    PreparedGate dense;
    dense.cls = arity == 1 ? GateClass::kGeneral1 : GateClass::kGeneral2;
    dense.arity = static_cast<std::uint8_t>(arity);
    dense.q = {qubits[0], arity == 2 ? qubits[1] : 0};
    for (std::size_t r = 0; r < m.rows(); ++r)
      for (std::size_t c = 0; c < m.cols(); ++c)
        dense.m[r * m.cols() + c] = m(r, c);
    AlignedVector<cplx> ref = init;
    kernels::apply_prepared(kernels::scalar_kernel_set(), ref.data(),
                            ref.size(), dense);
    for (std::uint64_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(fast[i].real(), ref[i].real()) << i;
      EXPECT_EQ(fast[i].imag(), ref[i].imag()) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched prepared runs
// ---------------------------------------------------------------------------

/// A mixed-class gate program on `n` qubits (diag, perm, ctrl, general,
/// reversed qubit orders) as (matrix, qubits) pairs.
std::vector<std::pair<Matrix, std::vector<unsigned>>> mixed_program(unsigned n) {
  std::vector<std::pair<Matrix, std::vector<unsigned>>> ops;
  ops.emplace_back(gates::H(), std::vector<unsigned>{0});
  for (unsigned q = 0; q + 1 < n; ++q)
    ops.emplace_back(gates::CX(), std::vector<unsigned>{q, q + 1});
  ops.emplace_back(gates::S(), std::vector<unsigned>{n - 1});
  ops.emplace_back(gates::CZ(), std::vector<unsigned>{0, n - 1});
  ops.emplace_back(gates::SWAP(), std::vector<unsigned>{1, n - 2});
  ops.emplace_back(random_dense(1, 21), std::vector<unsigned>{n / 2});
  ops.emplace_back(random_dense(2, 22), std::vector<unsigned>{n - 1, 2});
  ops.emplace_back(gates::X(), std::vector<unsigned>{1});
  return ops;
}

TEST(KernelBatched, StateVectorPreparedRunEqualsOpByOp) {
  const unsigned n = 9;
  const auto ops = mixed_program(n);
  StateVector one_by_one(n);
  StateVector batched(n);
  std::vector<PreparedGate> run;
  for (const auto& [m, qubits] : ops) {
    one_by_one.apply_gate(m, qubits);
    run.push_back(kernels::prepare_gate(m, qubits));
  }
  batched.apply_prepared_gates(run);
  EXPECT_TRUE(bytes_equal(one_by_one.amplitudes(), batched.amplitudes()));
}

TEST(KernelBatched, DensityMatrixPreparedRunEqualsOpByOp) {
  const unsigned n = 4;
  const auto ops = mixed_program(n);
  DensityMatrix one_by_one(n);
  DensityMatrix batched(n);
  std::vector<PreparedGate> run;
  for (const auto& [m, qubits] : ops) {
    one_by_one.apply_gate(m, qubits);
    run.push_back(kernels::prepare_gate(m, qubits));
  }
  batched.apply_prepared_gates(run);
  const std::uint64_t dim = std::uint64_t{1} << n;
  for (std::uint64_t r = 0; r < dim; ++r)
    for (std::uint64_t c = 0; c < dim; ++c) {
      EXPECT_EQ(one_by_one.element(r, c).real(), batched.element(r, c).real());
      EXPECT_EQ(one_by_one.element(r, c).imag(), batched.element(r, c).imag());
    }
}

TEST(KernelBatched, ExecPlanCoversEveryBarrierFreeGateStretch) {
  Circuit c(5);
  c.h(0);
  for (unsigned q = 0; q + 1 < 5; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.01));
  const ExecPlan plan = build_exec_plan(noise.apply(c), /*fuse_gates=*/true);
  // Every 1-/2-qubit gate step must be covered by exactly one prepared run,
  // and each run must start where run_at_step says it does.
  std::size_t covered = 0;
  for (const ExecPlan::PreparedRun& run : plan.prepared_runs) {
    EXPECT_EQ(plan.run_starting_at(run.first_step),
              plan.run_at_step[run.first_step]);
    for (std::size_t i = 0; i < run.gates.size(); ++i) {
      const PlanStep& step = plan.steps[run.first_step + i];
      ASSERT_TRUE(step.is_gate);
      ASSERT_LE(step.qubits.size(), 2u);
      ++covered;
    }
  }
  std::size_t small_gate_steps = 0;
  for (const PlanStep& step : plan.steps)
    if (step.is_gate && step.qubits.size() <= 2) ++small_gate_steps;
  EXPECT_EQ(covered, small_gate_steps);
  EXPECT_GT(covered, 0u);
}

// ---------------------------------------------------------------------------
// Registry / dispatch
// ---------------------------------------------------------------------------

TEST(KernelRegistry, ScalarFirstAndAlwaysAvailable) {
  ASSERT_FALSE(kernels::available_sets().empty());
  EXPECT_STREQ(kernels::available_sets().front()->name, "scalar");
  EXPECT_FALSE(kernels::describe_dispatch().empty());
}

TEST(KernelRegistry, UnknownOrUnsupportedNameThrows) {
  KernelGuard guard;
  EXPECT_THROW(kernels::set_active("bogus"), precondition_error);
  // A rejected override must leave the active set usable.
  kernels::set_active("scalar");
  EXPECT_STREQ(kernels::active().name, "scalar");
  kernels::set_active("auto");
  EXPECT_STREQ(kernels::active().name, kernels::best_available_set().name);
}

// ---------------------------------------------------------------------------
// End-to-end determinism across kernel selections
// ---------------------------------------------------------------------------

TEST(KernelDeterminism, TrajectoryResultsIdenticalAcrossKernelSelections) {
  KernelGuard guard;
  Circuit c(6);
  c.h(0);
  for (unsigned q = 0; q + 1 < 6; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.02));
  const NoisyCircuit noisy = noise.apply(c);
  RngStream rng(41);
  pts::Options opt;
  opt.nsamples = 150;
  opt.nshots = 30;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  ASSERT_FALSE(specs.empty());

  auto run_with = [&](const char* kernel, be::Schedule schedule) {
    kernels::set_active(kernel);
    be::Options options;
    options.backend = "statevector";
    options.schedule = schedule;
    options.config.fuse_gates = true;
    return be::execute(noisy, specs, options);
  };
  for (be::Schedule schedule :
       {be::Schedule::kIndependent, be::Schedule::kSharedPrefix}) {
    const be::Result ref = run_with("scalar", schedule);
    for (const kernels::KernelSet* set : kernels::available_sets()) {
      const be::Result got = run_with(set->name, schedule);
      ASSERT_EQ(ref.batches.size(), got.batches.size());
      for (std::size_t i = 0; i < ref.batches.size(); ++i) {
        EXPECT_EQ(ref.batches[i].records, got.batches[i].records)
            << "kernel=" << set->name << " spec " << i;
        EXPECT_EQ(ref.batches[i].realized_probability,
                  got.batches[i].realized_probability)
            << "kernel=" << set->name << " spec " << i;
      }
    }
  }
}

}  // namespace
}  // namespace ptsbe
