// Tests for the Algorithm-1 baseline trajectory simulator: statistical
// convergence to the exact density-matrix distribution, fast-path/general
// path equivalence, work accounting.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/trajectory/trajectory.hpp"

namespace ptsbe {
namespace {

/// Total variation distance between an empirical record distribution and an
/// exact probability vector over full basis indices.
double tvd(const std::vector<std::uint64_t>& records,
           const std::vector<double>& exact) {
  std::map<std::uint64_t, double> freq;
  for (auto r : records) freq[r] += 1.0 / records.size();
  double d = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto it = freq.find(i);
    const double f = it == freq.end() ? 0.0 : it->second;
    d += std::abs(f - exact[i]);
  }
  return d / 2.0;
}

NoisyCircuit noisy_bell(double p_depol, double gamma) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  NoiseModel nm;
  if (p_depol > 0) nm.add_all_gate_noise(channels::depolarizing(p_depol));
  if (gamma > 0) nm.add_all_gate_noise(channels::amplitude_damping(gamma));
  return nm.apply(c);
}

TEST(Trajectory, NoiselessCircuitReproducesPureState) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const NoisyCircuit noisy = NoiseModel{}.apply(c);
  RngStream rng(1);
  const auto result = traj::run_statevector(noisy, 4000, rng);
  for (auto r : result.records) EXPECT_TRUE(r == 0b00 || r == 0b11);
}

TEST(Trajectory, ConvergesToDensityMatrixUnitaryMixture) {
  const NoisyCircuit noisy = noisy_bell(0.15, 0.0);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  RngStream rng(2);
  const auto result = traj::run_statevector(noisy, 20000, rng);
  EXPECT_LT(tvd(result.records, dm.probabilities()), 0.02);
}

TEST(Trajectory, ConvergesToDensityMatrixGeneralKraus) {
  const NoisyCircuit noisy = noisy_bell(0.0, 0.25);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  RngStream rng(3);
  const auto result = traj::run_statevector(noisy, 20000, rng);
  EXPECT_LT(tvd(result.records, dm.probabilities()), 0.02);
  // General channels must have exercised expectation evaluations.
  EXPECT_GT(result.stats.expectation_evaluations, 0u);
}

TEST(Trajectory, FastPathAndGeneralPathAgree) {
  // Unitary-mixture channel simulated both ways must give the same
  // distribution (the probabilities are state-independent either way).
  const NoisyCircuit noisy = noisy_bell(0.2, 0.0);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  traj::Options fast, general;
  fast.unitary_mixture_fast_path = true;
  general.unitary_mixture_fast_path = false;
  RngStream rng_a(4), rng_b(5);
  const auto ra = traj::run_statevector(noisy, 15000, rng_a, fast);
  const auto rb = traj::run_statevector(noisy, 15000, rng_b, general);
  EXPECT_LT(tvd(ra.records, dm.probabilities()), 0.025);
  EXPECT_LT(tvd(rb.records, dm.probabilities()), 0.025);
  // Fast path avoids expectation evaluations entirely.
  EXPECT_EQ(ra.stats.expectation_evaluations, 0u);
  EXPECT_GT(rb.stats.expectation_evaluations, 0u);
}

TEST(Trajectory, StatePreparationCountMatchesTrajectories) {
  const NoisyCircuit noisy = noisy_bell(0.1, 0.0);
  RngStream rng(6);
  traj::Options opt;
  const auto result = traj::run_statevector(noisy, 500, rng, opt);
  EXPECT_EQ(result.stats.state_preparations, 500u);
  EXPECT_EQ(result.records.size(), 500u);
}

TEST(Trajectory, ShotsPerTrajectoryMultipliesRecords) {
  const NoisyCircuit noisy = noisy_bell(0.1, 0.0);
  RngStream rng(7);
  traj::Options opt;
  opt.shots_per_trajectory = 16;
  const auto result = traj::run_statevector(noisy, 100, rng, opt);
  EXPECT_EQ(result.stats.state_preparations, 100u);
  EXPECT_EQ(result.records.size(), 1600u);
}

TEST(Trajectory, MpsBackendMatchesDensityMatrix) {
  const NoisyCircuit noisy = noisy_bell(0.15, 0.0);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  RngStream rng(8);
  const auto result = traj::run_mps(noisy, 15000, rng, MpsConfig{});
  EXPECT_LT(tvd(result.records, dm.probabilities()), 0.025);
}

TEST(Trajectory, MpsBackendGeneralKraus) {
  const NoisyCircuit noisy = noisy_bell(0.0, 0.3);
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  RngStream rng(9);
  const auto result = traj::run_mps(noisy, 15000, rng, MpsConfig{});
  EXPECT_LT(tvd(result.records, dm.probabilities()), 0.025);
}

TEST(Trajectory, MeasuredSubsetExtraction) {
  Circuit c(3);
  c.x(2).measure(2);
  const NoisyCircuit noisy = NoiseModel{}.apply(c);
  RngStream rng(10);
  const auto result = traj::run_statevector(noisy, 50, rng);
  for (auto r : result.records) EXPECT_EQ(r, 1u);  // only the measured bit
}

TEST(Trajectory, RejectsZeroShotsPerTrajectory) {
  const NoisyCircuit noisy = noisy_bell(0.1, 0.0);
  RngStream rng(11);
  traj::Options opt;
  opt.shots_per_trajectory = 0;
  EXPECT_THROW((void)traj::run_statevector(noisy, 1, rng, opt),
               precondition_error);
}

}  // namespace
}  // namespace ptsbe
