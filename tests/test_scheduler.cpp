// The shared-prefix trajectory scheduler's reproducibility contract:
// records, realised probabilities and dataset bytes must be **bit-for-bit
// identical** to the independent schedule — across every registered PTS
// strategy, across the forkable backends, under multi-device scheduling,
// with gate fusion on, and through unrealizable-branch specs. This is the
// acceptance gate that makes the scheduler a pure optimisation.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/core/prefix_scheduler.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

NoisyCircuit ghz_program(unsigned n = 5, double p = 0.03) {
  Circuit c(n);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(p));
  noise.add_measurement_noise(channels::bit_flip(p / 2));
  return noise.apply(c);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

/// Bitwise equality — EXPECT_DOUBLE_EQ would allow 4 ulps; the contract is
/// exact.
void expect_results_identical(const be::Result& a, const be::Result& b) {
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    const be::TrajectoryBatch& x = a.batches[i];
    const be::TrajectoryBatch& y = b.batches[i];
    EXPECT_EQ(x.spec_index, y.spec_index);
    EXPECT_TRUE(x.spec.same_assignment(y.spec));
    EXPECT_EQ(x.spec.shots, y.spec.shots);
    EXPECT_EQ(x.records, y.records) << "spec " << i;
    EXPECT_EQ(x.realized_probability, y.realized_probability) << "spec " << i;
  }
}

be::Result run_schedule(const NoisyCircuit& noisy,
                        const std::vector<TrajectorySpec>& specs,
                        be::Schedule schedule, const std::string& backend,
                        std::size_t devices = 1, bool fuse = false) {
  be::Options options;
  options.backend = backend;
  options.schedule = schedule;
  options.num_devices = devices;
  options.config.fuse_gates = fuse;
  return be::execute(noisy, specs, options);
}

TEST(SharedPrefixScheduler, IdenticalAcrossAllRegisteredStrategies) {
  const NoisyCircuit noisy = ghz_program();
  for (const std::string& strategy : pts::StrategyRegistry::instance().names()) {
    pts::StrategyConfig cfg;
    cfg.nsamples = 300;
    cfg.nshots = 50;
    cfg.probability_cutoff = 1e-5;
    cfg.p_min = 1e-6;
    cfg.p_max = 1e-1;
    Pipeline pipeline(noisy);
    pipeline.strategy(strategy, cfg).seed(17);
    const std::vector<TrajectorySpec> specs = pipeline.sample();
    ASSERT_FALSE(specs.empty()) << strategy;
    const be::Result independent = run_schedule(
        noisy, specs, be::Schedule::kIndependent, "statevector");
    const be::Result shared = run_schedule(
        noisy, specs, be::Schedule::kSharedPrefix, "statevector");
    SCOPED_TRACE("strategy=" + strategy);
    expect_results_identical(independent, shared);
  }
}

TEST(SharedPrefixScheduler, IdenticalAcrossForkableBackends) {
  const NoisyCircuit noisy = ghz_program();
  RngStream rng(23);
  pts::Options opt;
  opt.nsamples = 200;
  opt.nshots = 40;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  ASSERT_GT(specs.size(), 4u);
  for (const char* backend_name : {"statevector", "densmat", "mps"}) {
    const std::string backend(backend_name);
    SCOPED_TRACE("backend=" + backend);
    expect_results_identical(
        run_schedule(noisy, specs, be::Schedule::kIndependent, backend),
        run_schedule(noisy, specs, be::Schedule::kSharedPrefix, backend));
  }
}

TEST(SharedPrefixScheduler, IdenticalUnderMultiDeviceAndFusion) {
  const NoisyCircuit noisy = ghz_program(6);
  RngStream rng(29);
  pts::Options opt;
  opt.nsamples = 400;
  opt.nshots = 25;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const be::Result reference =
      run_schedule(noisy, specs, be::Schedule::kIndependent, "statevector");
  expect_results_identical(
      reference, run_schedule(noisy, specs, be::Schedule::kSharedPrefix,
                              "statevector", 4));
  // Fusion reassociates the gate products identically on both schedules,
  // so fused-vs-fused stays bitwise identical too.
  expect_results_identical(
      run_schedule(noisy, specs, be::Schedule::kIndependent, "statevector", 1,
                   true),
      run_schedule(noisy, specs, be::Schedule::kSharedPrefix, "statevector", 4,
                   true));
}

TEST(SharedPrefixScheduler, HandlesUnrealizableBranchSpecs) {
  // Amplitude damping: branch 1 is the decay K₁. After h(0), cx(0,1) both
  // qubits can decay once; forcing a second decay on the same site chain
  // makes the spec unrealizable at execution time.
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::amplitude_damping(0.3));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_GE(noisy.num_sites(), 3u);

  std::vector<TrajectorySpec> specs;
  TrajectorySpec clean;
  clean.shots = 200;
  clean.nominal_probability = 0.5;
  specs.push_back(clean);
  TrajectorySpec one_decay;
  one_decay.branches = {{1, 1}};
  one_decay.shots = 200;
  one_decay.nominal_probability = 0.2;
  specs.push_back(one_decay);
  // Decay qubit 0 right after h(0) (collapsing it to |0⟩ before the cx),
  // then demand a second decay of qubit 0 after the cx — zero probability.
  TrajectorySpec double_decay;
  double_decay.branches = {{0, 1}, {1, 1}};
  double_decay.shots = 200;
  double_decay.nominal_probability = 0.05;
  specs.push_back(double_decay);

  const be::Result independent =
      run_schedule(noisy, specs, be::Schedule::kIndependent, "statevector");
  const be::Result shared =
      run_schedule(noisy, specs, be::Schedule::kSharedPrefix, "statevector");
  expect_results_identical(independent, shared);
  EXPECT_EQ(shared.batches[2].realized_probability, 0.0);
  EXPECT_TRUE(shared.batches[2].records.empty());
  EXPECT_GT(shared.batches[1].realized_probability, 0.0);
}

TEST(SharedPrefixScheduler, StreamWriterBytesMatchIndependentSchedule) {
  const NoisyCircuit noisy = ghz_program();
  RngStream rng(31);
  pts::Options opt;
  opt.nsamples = 250;
  opt.nshots = 30;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);

  const auto stream_to = [&](be::Schedule schedule, const std::string& path) {
    be::Options options;
    options.schedule = schedule;
    dataset::StreamWriter writer(path);
    std::vector<be::TrajectoryBatch> batches(specs.size());
    (void)be::execute_streaming(noisy, specs, options,
                                [&](be::TrajectoryBatch&& batch) {
                                  batches[batch.spec_index] = std::move(batch);
                                });
    // Restore spec order before writing: the schedules emit in different
    // orders (completion vs trie DFS) and the byte contract is about
    // content, not scheduling.
    for (const be::TrajectoryBatch& batch : batches) writer.append(batch);
    writer.close();
  };
  const std::string independent_path = "/tmp/ptsbe_test_sched_indep.bin";
  const std::string shared_path = "/tmp/ptsbe_test_sched_shared.bin";
  stream_to(be::Schedule::kIndependent, independent_path);
  stream_to(be::Schedule::kSharedPrefix, shared_path);
  const std::string independent_bytes = slurp(independent_path);
  ASSERT_FALSE(independent_bytes.empty());
  EXPECT_EQ(independent_bytes, slurp(shared_path));
}

TEST(SharedPrefixScheduler, StreamingDeliversEverySpecExactlyOnce) {
  const NoisyCircuit noisy = ghz_program();
  RngStream rng(37);
  pts::Options opt;
  opt.nsamples = 150;
  opt.nshots = 10;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  be::Options options;
  options.schedule = be::Schedule::kSharedPrefix;
  options.num_devices = 4;
  std::vector<std::size_t> deliveries(specs.size(), 0);
  const be::StreamSummary summary = be::execute_streaming(
      noisy, specs, options, [&](be::TrajectoryBatch&& batch) {
        ASSERT_LT(batch.spec_index, specs.size());
        deliveries[batch.spec_index] += 1;
      });
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(deliveries[i], 1u) << "spec " << i;
  EXPECT_EQ(summary.num_batches, specs.size());
  EXPECT_EQ(summary.total_shots, total_shots(specs));
}

TEST(SharedPrefixScheduler, StabilizerBackendFallsBackToIndependent) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::bit_flip(0.05));
  const NoisyCircuit noisy = nm.apply(c);
  RngStream rng(41);
  pts::Options opt;
  opt.nsamples = 100;
  opt.nshots = 20;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const be::Result independent =
      run_schedule(noisy, specs, be::Schedule::kIndependent, "stabilizer");
  const be::Result shared =
      run_schedule(noisy, specs, be::Schedule::kSharedPrefix, "stabilizer");
  expect_results_identical(independent, shared);
  // The fallback is deterministic and *surfaced*: the result reports the
  // schedule that actually executed, not the one requested.
  EXPECT_EQ(independent.schedule, be::Schedule::kIndependent);
  EXPECT_EQ(shared.schedule, be::Schedule::kIndependent);
}

TEST(SharedPrefixScheduler, FallbackIsSurfacedThroughRunResult) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::bit_flip(0.05));
  pts::StrategyConfig cfg;
  cfg.nsamples = 80;
  cfg.nshots = 10;

  const RunResult stab = Pipeline(nm.apply(c))
                             .strategy("probabilistic", cfg)
                             .backend("stabilizer")
                             .schedule(be::Schedule::kSharedPrefix)
                             .seed(11)
                             .run();
  EXPECT_EQ(stab.schedule_requested, be::Schedule::kSharedPrefix);
  EXPECT_EQ(stab.schedule_executed, be::Schedule::kIndependent);
  EXPECT_TRUE(stab.schedule_fell_back());

  const RunResult sv = Pipeline(nm.apply(c))
                           .strategy("probabilistic", cfg)
                           .backend("statevector")
                           .schedule(be::Schedule::kSharedPrefix)
                           .seed(11)
                           .run();
  EXPECT_EQ(sv.schedule_requested, be::Schedule::kSharedPrefix);
  EXPECT_EQ(sv.schedule_executed, be::Schedule::kSharedPrefix);
  EXPECT_FALSE(sv.schedule_fell_back());

  const RunResult indep = Pipeline(nm.apply(c))
                              .strategy("probabilistic", cfg)
                              .backend("statevector")
                              .seed(11)
                              .run();
  EXPECT_FALSE(indep.schedule_fell_back());
}

TEST(SharedPrefixScheduler, PipelineScheduleKnobRoundTrips) {
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig cfg;
  cfg.nsamples = 120;
  cfg.nshots = 16;
  const RunResult independent =
      Pipeline(noisy).strategy("probabilistic", cfg).seed(7).run();
  const RunResult shared = Pipeline(noisy)
                               .strategy("probabilistic", cfg)
                               .schedule(be::Schedule::kSharedPrefix)
                               .seed(7)
                               .run();
  expect_results_identical(independent.result, shared.result);
}

TEST(ScheduleNames, RoundTripAndReject) {
  EXPECT_EQ(be::schedule_from_string("independent"), be::Schedule::kIndependent);
  EXPECT_EQ(be::schedule_from_string("shared-prefix"),
            be::Schedule::kSharedPrefix);
  EXPECT_EQ(to_string(be::Schedule::kSharedPrefix), "shared-prefix");
  EXPECT_EQ(to_string(be::Schedule::kIndependent), "independent");
  EXPECT_THROW((void)be::schedule_from_string("bogus"), precondition_error);
}

TEST(UniqueShotFraction, SinglePassMatchesDefinition) {
  be::Result result;
  be::TrajectoryBatch a;
  a.records = {1, 2, 2, 3};
  be::TrajectoryBatch b;
  b.records = {3, 4};
  result.batches = {a, b};
  EXPECT_DOUBLE_EQ(result.unique_shot_fraction(), 4.0 / 6.0);
}

TEST(UniqueShotFraction, EmptyResultsReturnZeroNotNaN) {
  // No batches at all.
  EXPECT_DOUBLE_EQ(be::Result{}.unique_shot_fraction(), 0.0);
  // Batches exist but every one is unrealizable (zero records): the shot
  // total is 0 and the fraction must be 0.0, not 0/0 = NaN.
  be::Result unrealizable_only;
  be::TrajectoryBatch dud;
  dud.realized_probability = 0.0;
  unrealizable_only.batches = {dud, dud};
  EXPECT_DOUBLE_EQ(unrealizable_only.unique_shot_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(be::unique_fraction({}), 0.0);
}

// ---------------------------------------------------------------------------
// Multi-threaded determinism matrix: for every registered backend ×
// registered strategy × schedule × fusion setting, executing with threads=1
// must produce batches — and dataset bytes — bit-identical to threads ∈
// {2, hardware_concurrency}. This is the acceptance gate that makes the
// work-stealing executor a pure optimisation.
// ---------------------------------------------------------------------------

std::vector<std::size_t> matrix_thread_counts() {
  std::vector<std::size_t> counts = {2};
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (hw != 1 && hw != 2) counts.push_back(hw);
  return counts;
}

TEST(DeterminismMatrix, ThreadCountNeverChangesRecordsOrBytes) {
  const NoisyCircuit noisy = ghz_program(5, 0.03);
  const std::vector<std::size_t> thread_counts = matrix_thread_counts();
  const std::string ref_path = "/tmp/ptsbe_test_matrix_ref.bin";
  const std::string got_path = "/tmp/ptsbe_test_matrix_got.bin";
  for (const std::string& backend : BackendRegistry::instance().names()) {
    if (backend == "tensornet") continue;  // alias of "mps"
    for (const std::string& strategy :
         pts::StrategyRegistry::instance().names()) {
      pts::StrategyConfig cfg;
      cfg.nsamples = 150;
      cfg.nshots = 16;
      cfg.probability_cutoff = 1e-5;
      cfg.p_min = 1e-6;
      cfg.p_max = 1e-1;
      Pipeline pipeline(noisy);
      pipeline.strategy(strategy, cfg).seed(17);
      const std::vector<TrajectorySpec> specs = pipeline.sample();
      ASSERT_FALSE(specs.empty()) << strategy;
      for (const be::Schedule schedule :
           {be::Schedule::kIndependent, be::Schedule::kSharedPrefix}) {
        for (const bool fuse : {false, true}) {
          be::Options options;
          options.backend = backend;
          options.schedule = schedule;
          options.config.fuse_gates = fuse;
          options.threads = 1;
          const be::Result reference = be::execute(noisy, specs, options);
          dataset::write_binary(ref_path, reference);
          const std::string ref_bytes = slurp(ref_path);
          ASSERT_FALSE(ref_bytes.empty());
          for (const std::size_t threads : thread_counts) {
            SCOPED_TRACE("backend=" + backend + " strategy=" + strategy +
                         " schedule=" + to_string(schedule) +
                         " fuse=" + std::to_string(fuse) +
                         " threads=" + std::to_string(threads));
            options.threads = threads;
            const be::Result result = be::execute(noisy, specs, options);
            expect_results_identical(reference, result);
            EXPECT_EQ(reference.schedule, result.schedule);
            dataset::write_binary(got_path, result);
            EXPECT_EQ(ref_bytes, slurp(got_path));
          }
        }
      }
    }
  }
}

TEST(DeterminismMatrix, StreamingThreadsMatchMaterialisedReference) {
  // The streaming path shares the executor with execute(), but pin it
  // separately: batches delivered out of order under threads>1 must carry
  // the same payloads at their spec indices.
  const NoisyCircuit noisy = ghz_program(5, 0.03);
  RngStream rng(53);
  pts::Options opt;
  opt.nsamples = 200;
  opt.nshots = 25;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  ASSERT_GT(specs.size(), 4u);
  for (const be::Schedule schedule :
       {be::Schedule::kIndependent, be::Schedule::kSharedPrefix}) {
    be::Options options;
    options.schedule = schedule;
    options.threads = 1;
    const be::Result reference = be::execute(noisy, specs, options);
    options.threads = 4;
    be::Result streamed;
    streamed.batches.resize(specs.size());
    const be::StreamSummary summary = be::execute_streaming(
        noisy, specs, options, [&](be::TrajectoryBatch&& batch) {
          streamed.batches[batch.spec_index] = std::move(batch);
        });
    SCOPED_TRACE("schedule=" + to_string(schedule));
    EXPECT_EQ(summary.num_batches, specs.size());
    expect_results_identical(reference, streamed);
  }
}

}  // namespace
}  // namespace ptsbe
