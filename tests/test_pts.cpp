// Tests for the PTS samplers (Algorithm 2 + variants): dedup, probability
// bookkeeping, band filtering, exhaustive enumeration, tailored injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

NoisyCircuit small_program(double p, unsigned n = 3) {
  Circuit c(n);
  for (unsigned q = 0; q < n; ++q) c.h(q);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(p));
  return nm.apply(c);
}

TEST(PtsProbabilistic, SpecsAreUniqueAndCanonical) {
  const NoisyCircuit noisy = small_program(0.3);
  RngStream rng(1);
  pts::Options opt;
  opt.nsamples = 500;
  opt.nshots = 7;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  ASSERT_FALSE(specs.empty());
  for (const auto& s : specs) {
    EXPECT_EQ(s.shots, 7u);
    EXPECT_TRUE(std::is_sorted(s.branches.begin(), s.branches.end()));
    EXPECT_GT(s.nominal_probability, 0.0);
  }
  for (std::size_t i = 0; i < specs.size(); ++i)
    for (std::size_t j = i + 1; j < specs.size(); ++j)
      EXPECT_FALSE(specs[i].same_assignment(specs[j]));
}

TEST(PtsProbabilistic, ErrorFrequencyTracksChannelProbability) {
  const double p = 0.25;
  const NoisyCircuit noisy = small_program(p);
  RngStream rng(2);
  pts::Options opt;
  opt.nsamples = 5000;
  opt.merge_duplicates = true;  // keep draws as weights
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  // Weighted mean error count per trajectory ≈ num_sites * p.
  double weighted_errors = 0, weight = 0;
  for (const auto& s : specs) {
    weighted_errors += static_cast<double>(s.error_weight() * s.shots);
    weight += static_cast<double>(s.shots);
  }
  const double expected = noisy.num_sites() * p;
  EXPECT_NEAR(weighted_errors / weight, expected, 0.1 * expected + 0.05);
}

TEST(PtsProbabilistic, MergeDuplicatesSumsShots) {
  // One site with huge error probability → few distinct assignments.
  Circuit c(1);
  c.h(0);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::bit_flip(0.5));
  const NoisyCircuit noisy = nm.apply(c);
  RngStream rng(3);
  pts::Options opt;
  opt.nsamples = 1000;
  opt.nshots = 3;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  ASSERT_LE(specs.size(), 2u);
  EXPECT_EQ(total_shots(specs), 3000u);
}

TEST(PtsProbabilistic, FilterRestrictsToGate) {
  const NoisyCircuit noisy = small_program(0.5);
  RngStream rng(4);
  pts::Options opt;
  opt.nsamples = 300;
  pts::SiteFilter filter;
  filter.gate_name = "cx";
  const auto specs = pts::sample_probabilistic(noisy, opt, rng, &filter);
  for (const auto& s : specs)
    for (const auto& bc : s.branches) {
      const NoiseSite& site = noisy.sites()[bc.site];
      EXPECT_EQ(noisy.circuit().ops()[site.after_op].name, "cx");
    }
}

TEST(PtsProportional, ShotsFollowProbabilities) {
  const NoisyCircuit noisy = small_program(0.2);
  RngStream rng(5);
  pts::Options opt;
  opt.nsamples = 200;
  auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const std::uint64_t total = 100000;
  const auto redistributed = pts::redistribute_proportional(specs, total);
  ASSERT_FALSE(redistributed.empty());
  double psum = 0;
  for (const auto& s : redistributed) psum += s.nominal_probability;
  for (const auto& s : redistributed) {
    const double share = s.nominal_probability / psum;
    EXPECT_NEAR(static_cast<double>(s.shots),
                share * static_cast<double>(total),
                0.05 * share * total + 2.0);
  }
}

TEST(PtsBand, KeepsOnlyInBand) {
  const NoisyCircuit noisy = small_program(0.3);
  RngStream rng(6);
  pts::Options opt;
  opt.nsamples = 500;
  auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto banded = pts::filter_band(specs, 1e-4, 1e-2);
  for (const auto& s : banded) {
    EXPECT_GE(s.nominal_probability, 1e-4);
    EXPECT_LE(s.nominal_probability, 1e-2);
  }
  EXPECT_THROW((void)pts::filter_band({}, 0.5, 0.1), precondition_error);
}

TEST(PtsEnumerate, FindsAllAboveCutoffExactly) {
  // 2 sites of bit_flip(0.1): joint probabilities are 0.81, 0.09, 0.09, 0.01.
  Circuit c(2);
  c.h(0).h(1);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::bit_flip(0.1));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_EQ(noisy.num_sites(), 2u);
  const auto specs = pts::enumerate_most_likely(noisy, 0.05, 10);
  ASSERT_EQ(specs.size(), 3u);  // 0.81, 0.09, 0.09 — not 0.01
  EXPECT_NEAR(specs[0].nominal_probability, 0.81, 1e-12);
  EXPECT_EQ(specs[0].error_weight(), 0u);
  EXPECT_NEAR(specs[1].nominal_probability, 0.09, 1e-12);
  EXPECT_NEAR(specs[2].nominal_probability, 0.09, 1e-12);
  // With a lower cutoff, the double error appears.
  const auto all = pts::enumerate_most_likely(noisy, 0.005, 10);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_NEAR(all[3].nominal_probability, 0.01, 1e-12);
  EXPECT_EQ(all[3].error_weight(), 2u);
}

TEST(PtsEnumerate, MaxResultsTruncates) {
  const NoisyCircuit noisy = small_program(0.1);
  const auto specs = pts::enumerate_most_likely(noisy, 1e-6, 5, 4);
  EXPECT_EQ(specs.size(), 4u);
  // Sorted descending.
  for (std::size_t i = 0; i + 1 < specs.size(); ++i)
    EXPECT_GE(specs[i].nominal_probability, specs[i + 1].nominal_probability);
}

TEST(PtsEnumerate, ProbabilitiesSumToAtMostOne) {
  const NoisyCircuit noisy = small_program(0.15);
  const auto specs = pts::enumerate_most_likely(noisy, 1e-9, 1);
  double sum = 0;
  for (const auto& s : specs) sum += s.nominal_probability;
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.9);  // cutoff is tiny, nearly everything enumerated
}

TEST(PtsTwirled, ScramblesErrorTypesUniformly) {
  // phase_flip fires Z only; twirled sampling still only has Z available
  // (one error branch), so twirling depolarizing instead: fired sites pick
  // X/Y/Z uniformly even though the channel is already uniform — check the
  // shape on a *biased* channel.
  Circuit c(1);
  c.h(0);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::pauli_channel(0.28, 0.01, 0.01));
  const NoisyCircuit noisy = nm.apply(c);
  RngStream rng(7);
  pts::Options opt;
  opt.nsamples = 9000;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_pauli_twirled(noisy, opt, rng);
  // Among fired specs, branches 1(X), 2(Y), 3(Z) should be ~uniform.
  double counts[4] = {0, 0, 0, 0};
  for (const auto& s : specs)
    for (const auto& bc : s.branches)
      counts[bc.branch] += static_cast<double>(s.shots);
  const double fired = counts[1] + counts[2] + counts[3];
  ASSERT_GT(fired, 0);
  EXPECT_NEAR(counts[1] / fired, 1.0 / 3, 0.05);
  EXPECT_NEAR(counts[2] / fired, 1.0 / 3, 0.05);
  EXPECT_NEAR(counts[3] / fired, 1.0 / 3, 0.05);
}

TEST(PtsCorrelated, BoostIncreasesClusterRate) {
  const NoisyCircuit noisy = small_program(0.08, 4);
  pts::Options opt;
  opt.nsamples = 4000;
  opt.merge_duplicates = true;
  RngStream rng_a(8), rng_b(9);
  const auto base = pts::sample_probabilistic(noisy, opt, rng_a);
  const auto boosted =
      pts::sample_spatially_correlated(noisy, opt, rng_b, 8.0, 1);
  const auto mean_weight = [](const std::vector<TrajectorySpec>& specs) {
    double w = 0, n = 0;
    for (const auto& s : specs) {
      w += static_cast<double>(s.error_weight() * s.shots);
      n += static_cast<double>(s.shots);
    }
    return w / n;
  };
  EXPECT_GT(mean_weight(boosted), mean_weight(base) * 1.3);
}

TEST(TrajectorySpec, DescribeErrorsNamesSitesAndChannels) {
  const NoisyCircuit noisy = small_program(0.3);
  TrajectorySpec spec;
  spec.branches = {{0, 1}};
  const auto lines = describe_errors(noisy, spec);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("depolarizing"), std::string::npos);
  EXPECT_NE(lines[0].find("branch 1"), std::string::npos);
}

TEST(TrajectorySpec, HashDistinguishesAssignments) {
  TrajectorySpec a, b;
  a.branches = {{0, 1}};
  b.branches = {{0, 2}};
  EXPECT_NE(a.assignment_hash(), b.assignment_hash());
  b.branches = {{0, 1}};
  EXPECT_EQ(a.assignment_hash(), b.assignment_hash());
}

TEST(TrajectorySpec, RefreshProbabilities) {
  const NoisyCircuit noisy = small_program(0.3);
  std::vector<TrajectorySpec> specs(1);
  specs[0].branches = {{0, 1}};
  refresh_probabilities(noisy, specs);
  EXPECT_GT(specs[0].nominal_probability, 0.0);
}

}  // namespace
}  // namespace ptsbe
