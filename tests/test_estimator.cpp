// Tests for the importance-weighted estimator API and the realistic noise
// channels (thermal relaxation, coherent over-rotation) that exercise it.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/estimator.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"

namespace ptsbe {
namespace {

NoisyCircuit bell_with(ChannelPtr channel) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(std::move(channel));
  return nm.apply(c);
}

TEST(Channels, ThermalRelaxationIsValidGeneralChannel) {
  const ChannelPtr ch = channels::thermal_relaxation(0.1, 1.0, 0.7);
  EXPECT_FALSE(ch->is_unitary_mixture());
  EXPECT_EQ(ch->arity(), 1u);
  double sum = 0;
  for (double p : ch->nominal_probabilities()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Channels, ThermalRelaxationLimits) {
  // T2 = 2*T1: pure amplitude damping (lambda = 0) → 2 Kraus ops.
  const ChannelPtr pure_ad = channels::thermal_relaxation(0.2, 1.0, 2.0);
  EXPECT_EQ(pure_ad->num_branches(), 2u);
  // Invalid T2 > 2*T1 rejected.
  EXPECT_THROW((void)channels::thermal_relaxation(0.1, 1.0, 2.5),
               precondition_error);
}

TEST(Channels, ThermalRelaxationMatchesAnalyticDecay) {
  // ⟨Z⟩ of |1⟩ relaxes as 1 - 2e^{-t/T1}; coherence ⟨X⟩ of |+⟩ decays as
  // e^{-t/T2}.
  const double t = 0.3, t1 = 1.0, t2 = 0.8;
  const ChannelPtr ch = channels::thermal_relaxation(t, t1, t2);
  DensityMatrix excited(1);
  excited.apply_unitary(gates::X(), std::array{0u});
  excited.apply_channel(*ch, std::array{0u});
  EXPECT_NEAR(excited.expectation_pauli("Z", std::array{0u}),
              1.0 - 2.0 * std::exp(-t / t1), 1e-10);
  DensityMatrix plus(1);
  plus.apply_unitary(gates::H(), std::array{0u});
  plus.apply_channel(*ch, std::array{0u});
  EXPECT_NEAR(plus.expectation_pauli("X", std::array{0u}), std::exp(-t / t2),
              1e-10);
}

TEST(Channels, CoherentOverrotationIsNonPauliUnitaryMixture) {
  const ChannelPtr ch = channels::coherent_overrotation(0.1, 0.3);
  EXPECT_TRUE(ch->is_unitary_mixture());
  EXPECT_EQ(ch->identity_branch(), 0);
  // Outside the Pauli-frame fragment: RX(0.3) is not a Pauli.
  Circuit c(1);
  c.h(0).measure(0);
  NoiseModel nm;
  nm.add_all_gate_noise(ch);
  EXPECT_FALSE(PauliFrameSampler::is_supported(nm.apply(c)));
}

TEST(Estimator, DrawWeightedMatchesDensityMatrix) {
  const NoisyCircuit noisy = bell_with(channels::thermal_relaxation(0.1, 1.0, 0.9));
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const double exact_zz = dm.expectation_pauli("ZZ", std::array{0u, 1u});

  RngStream rng(1);
  pts::Options opt;
  opt.nsamples = 30000;
  opt.nshots = 1;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto result = be::execute(noisy, specs);
  const be::Estimate zz =
      be::estimate_z_parity(result, be::Weighting::kDrawWeighted, 0b11);
  EXPECT_NEAR(zz.value, exact_zz, 0.02);
  EXPECT_GT(zz.std_error, 0.0);
  EXPECT_LT(zz.std_error, 0.05);
}

TEST(Estimator, ProbabilityWeightedMatchesDensityMatrix) {
  const NoisyCircuit noisy = bell_with(channels::depolarizing(0.08));
  DensityMatrix dm(2);
  dm.apply_noisy_circuit(noisy);
  const double exact_zz = dm.expectation_pauli("ZZ", std::array{0u, 1u});

  const auto specs = pts::enumerate_most_likely(noisy, 1e-10, 20000);
  const auto result = be::execute(noisy, specs);
  const be::Estimate zz =
      be::estimate_z_parity(result, be::Weighting::kProbabilityWeighted, 0b11);
  EXPECT_NEAR(zz.value, exact_zz, 0.02);
  EXPECT_NEAR(zz.total_weight, 1.0, 1e-9);  // exhaustive enumeration
}

TEST(Estimator, ProbabilityEstimateOnBandIsConditional) {
  // Estimating over a band reports the band-conditional value with the
  // covered mass in total_weight — the user can see the coverage.
  const NoisyCircuit noisy = bell_with(channels::depolarizing(0.1));
  auto all = pts::enumerate_most_likely(noisy, 1e-10, 20000);
  const double full_mass = [&] {
    double s = 0;
    for (const auto& sp : all) s += sp.nominal_probability;
    return s;
  }();
  auto band = pts::filter_band(std::move(all), 1e-6, 1e-2);
  const auto result = be::execute(noisy, band);
  const be::Estimate p = be::estimate_probability(
      result, be::Weighting::kProbabilityWeighted,
      [](std::uint64_t r) { return r == 0; });
  EXPECT_GT(p.total_weight, 0.0);
  EXPECT_LT(p.total_weight, full_mass);
  EXPECT_GE(p.value, 0.0);
  EXPECT_LE(p.value, 1.0);
}

TEST(Estimator, EmptyResultGivesZeroWeight) {
  be::Result empty;
  const auto est = be::estimate(empty, be::Weighting::kDrawWeighted,
                                [](std::uint64_t) { return 1.0; });
  EXPECT_EQ(est.total_weight, 0.0);
}

TEST(Estimator, AcceptanceProbabilityOfMsdViaEstimator) {
  // Cross-check: bare-MSD acceptance via the estimator equals the direct
  // frequency count.
  Circuit circuit(5);
  for (unsigned q = 0; q < 5; ++q) {
    circuit.ry(q, 0.9553166181245093);  // T-state prep
    circuit.p(q, M_PI / 4);
  }
  NoiseModel nm;
  nm.add_gate_noise("p", channels::coherent_overrotation(0.05, 0.4));
  const NoisyCircuit noisy = nm.apply(circuit);
  RngStream rng(2);
  pts::Options opt;
  opt.nsamples = 3000;
  opt.nshots = 10;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);
  const auto result = be::execute(noisy, specs);
  const auto p0 = be::estimate_probability(
      result, be::Weighting::kDrawWeighted,
      [](std::uint64_t r) { return (r & 1) == 0; });
  // Direct draw-weighted frequency (unitary mixture → ratio 1).
  double hits = 0, total = 0;
  for (const auto& b : result.batches)
    for (auto r : b.records) {
      hits += ((r & 1) == 0);
      total += 1;
    }
  EXPECT_NEAR(p0.value, hits / total, 1e-9);
}

}  // namespace
}  // namespace ptsbe
