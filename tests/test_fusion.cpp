// The gate-fusion pass: fused circuits must be mathematically identical to
// their sources (pinned exactly on known sequences, property-style on
// random circuits), fusion must actually shrink fusable circuits, and it
// must never cross a measurement or a noise site — the boundaries where
// something observes or perturbs the state mid-circuit.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ptsbe/circuit/fusion.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {
namespace {

/// |⟨φ|ψ⟩|² between the states a circuit and its fused form prepare.
double fused_fidelity(const Circuit& circuit, const Circuit& fused) {
  StateVector a(circuit.num_qubits());
  a.apply_circuit(circuit);
  StateVector b(fused.num_qubits());
  b.apply_circuit(fused);
  return a.fidelity(b);
}

TEST(Fusion, MergesSingleQubitRuns) {
  Circuit c(1);
  c.h(0).t(0).s(0).h(0);
  const Circuit fused = fuse_circuit(c);
  EXPECT_EQ(fused.gate_count(), 1u);
  EXPECT_NEAR(fused_fidelity(c, fused), 1.0, 1e-12);
}

TEST(Fusion, MergesTwoQubitRunsIncludingReversedPairs) {
  Circuit c(2);
  c.cx(0, 1).cz(0, 1).cx(1, 0);  // same unordered pair throughout
  const Circuit fused = fuse_circuit(c);
  EXPECT_EQ(fused.gate_count(), 1u);
  EXPECT_NEAR(fused_fidelity(
                  Circuit(2).h(0).ry(1, 0.7).append(c),
                  Circuit(2).h(0).ry(1, 0.7).append(fused)),
              1.0, 1e-12);
}

TEST(Fusion, AbsorbsSingleQubitGatesIntoTwoQubitNeighbours) {
  // 1q before the 2q gate, and 1q after it, on both qubits.
  Circuit c(2);
  c.h(0).t(1).cx(0, 1).s(0).h(1);
  const Circuit fused = fuse_circuit(c);
  EXPECT_EQ(fused.gate_count(), 1u);
  EXPECT_NEAR(fused_fidelity(c, fused), 1.0, 1e-12);
}

TEST(Fusion, CommutesPastDisjointSupports) {
  // The two h(0) are separated by ops on qubit 1 only — still one fused op
  // per support.
  Circuit c(2);
  c.h(0).t(1).s(1).h(0);
  const Circuit fused = fuse_circuit(c);
  EXPECT_EQ(fused.gate_count(), 2u);
  EXPECT_NEAR(fused_fidelity(c, fused), 1.0, 1e-12);
}

TEST(Fusion, InverseRunsFuseToIdentity) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1);
  const Circuit fused = fuse_circuit(c);
  ASSERT_EQ(fused.gate_count(), 1u);
  EXPECT_TRUE(approx_equal(fused.ops()[0].matrix, Matrix::identity(4)));
}

TEST(Fusion, DoesNotCrossMeasurements) {
  Circuit c(1);
  c.h(0).measure(0).h(0);
  const Circuit fused = fuse_circuit(c);
  EXPECT_EQ(fused.gate_count(), 2u);  // the measure op pins the two apart
  EXPECT_EQ(fused.size(), 3u);
  EXPECT_EQ(fused.ops()[1].kind, OpKind::kMeasure);
}

TEST(Fusion, RespectsExplicitBarriers) {
  Circuit c(1);
  c.h(0).h(0);
  const Circuit unbarred = fuse_circuit(c);
  EXPECT_EQ(unbarred.gate_count(), 1u);
  const Circuit barred =
      fuse_circuit(c, [](std::size_t i) { return i == 0; });
  EXPECT_EQ(barred.gate_count(), 2u);
}

TEST(Fusion, ExecPlanNeverFusesAcrossNoiseSites) {
  // Noise after the first h(0) splits the pair; the noiseless qubit-1 run
  // still fuses. Step layout must be gate/site interleaved accordingly.
  Circuit c(2);
  c.h(0).h(0).t(1).s(1);
  NoiseModel nm;
  nm.add_gate_noise("h", channels::bit_flip(0.1));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_EQ(noisy.num_sites(), 2u);

  const ExecPlan plan = build_exec_plan(noisy, true);
  EXPECT_EQ(plan.site_count, 2u);
  EXPECT_EQ(plan.unfused_gate_count, 4u);
  // h(0) | site | h(0)+t/s(1) fused per support → 3 gate steps, not 2.
  EXPECT_EQ(plan.gate_count, 3u);
  ASSERT_GE(plan.steps.size(), 2u);
  EXPECT_TRUE(plan.steps[0].is_gate);
  EXPECT_FALSE(plan.steps[1].is_gate);  // the site fires right after h(0)
}

TEST(Fusion, ExecPlanNeverFusesAcrossMeasurements) {
  // Non-terminal measurement between two h(0): the plan must keep the two
  // gate sweeps apart even though no noise site intervenes.
  Circuit c(1);
  c.h(0).measure(0).h(0);
  const ExecPlan plan = build_exec_plan(NoiseModel().apply(c), true);
  EXPECT_EQ(plan.gate_count, 2u);
  EXPECT_EQ(plan.site_count, 0u);
}

TEST(Fusion, ExecPlanUnfusedMatchesProgramOrder) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.05));
  const NoisyCircuit noisy = nm.apply(c);
  const ExecPlan plan = build_exec_plan(noisy, false);
  EXPECT_EQ(plan.gate_count, 2u);
  EXPECT_EQ(plan.site_count, noisy.num_sites());
  EXPECT_EQ(plan.unfused_gate_count, plan.gate_count);
}

// Property: random dense circuits fuse to an equivalent, never larger
// program. Mix of parameterised 1q rotations and entanglers on random
// pairs, fused with no barriers.
class FusionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusionProperty, RandomCircuitsAreInvariantUnderFusion) {
  RngStream rng(GetParam());
  const unsigned n = 5;
  Circuit c(n);
  for (int i = 0; i < 60; ++i) {
    const double r = rng.uniform();
    const unsigned q = static_cast<unsigned>(rng.uniform_index(n));
    if (r < 0.5) {
      switch (rng.uniform_index(4)) {
        case 0: c.rx(q, rng.uniform(0, 6.28)); break;
        case 1: c.ry(q, rng.uniform(0, 6.28)); break;
        case 2: c.rz(q, rng.uniform(0, 6.28)); break;
        default: c.h(q); break;
      }
    } else {
      unsigned p = static_cast<unsigned>(rng.uniform_index(n));
      if (p == q) p = (p + 1) % n;
      if (rng.uniform() < 0.5)
        c.cx(q, p);
      else
        c.cz(q, p);
    }
  }
  const Circuit fused = fuse_circuit(c);
  EXPECT_LE(fused.gate_count(), c.gate_count());
  EXPECT_LT(fused.gate_count(), c.gate_count())
      << "a 60-op dense random circuit should fuse at least once";
  EXPECT_NEAR(fused_fidelity(c, fused), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionProperty,
                         ::testing::Values(7u, 8u, 9u, 10u, 11u, 12u));

// End-to-end: the fuse_gates backend knob must leave sampled distributions
// statistically unchanged (exact equality is not expected — fusion
// reassociates floating-point products).
TEST(Fusion, BackendKnobPreservesDistributions) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(1).cx(1, 2).h(2).measure_all();
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.02));
  const NoisyCircuit noisy = nm.apply(c);

  TrajectorySpec error_free;
  error_free.shots = 20000;
  error_free.nominal_probability = 1.0;

  be::Options plain;
  be::Options fused;
  fused.config.fuse_gates = true;
  const be::Result a = be::execute(noisy, {error_free}, plain);
  const be::Result b = be::execute(noisy, {error_free}, fused);
  ASSERT_EQ(a.batches.size(), 1u);
  ASSERT_EQ(b.batches.size(), 1u);
  std::array<double, 8> fa{}, fb{};
  for (auto r : a.batches[0].records) fa[r % 8] += 1.0 / 20000;
  for (auto r : b.batches[0].records) fb[r % 8] += 1.0 / 20000;
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(fa[i], fb[i], 0.015) << "outcome " << i;
}

}  // namespace
}  // namespace ptsbe
