// Unit tests for ptsbe/noise: channel validation, unitary-mixture
// detection, standard channel factories, noise-model expansion.

#include <gtest/gtest.h>

#include <cmath>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/noise/noise_model.hpp"

namespace ptsbe {
namespace {

TEST(KrausChannel, RejectsNonCptp) {
  std::vector<Matrix> ops{gates::I() * cplx{0.5, 0}};
  EXPECT_THROW(KrausChannel("bad", std::move(ops)), precondition_error);
}

TEST(KrausChannel, RejectsMixedDimensions) {
  std::vector<Matrix> ops{Matrix::identity(2), Matrix::identity(4)};
  EXPECT_THROW(KrausChannel("bad", std::move(ops)), precondition_error);
}

TEST(StandardChannels, DepolarizingIsUnitaryMixture) {
  const ChannelPtr ch = channels::depolarizing(0.1);
  EXPECT_TRUE(ch->is_unitary_mixture());
  EXPECT_EQ(ch->num_branches(), 4u);
  EXPECT_EQ(ch->arity(), 1u);
  const auto& p = ch->nominal_probabilities();
  EXPECT_NEAR(p[0], 0.9, 1e-12);
  EXPECT_NEAR(p[1], 0.1 / 3, 1e-12);
  EXPECT_EQ(ch->identity_branch(), 0);
  EXPECT_EQ(ch->default_branch(), 0u);
}

TEST(StandardChannels, ProbabilitiesSumToOne) {
  for (const ChannelPtr& ch :
       {channels::depolarizing(0.07), channels::depolarizing2(0.2),
        channels::bit_flip(0.3), channels::phase_flip(0.15),
        channels::bit_phase_flip(0.05), channels::pauli_channel(0.1, 0.05, 0.2),
        channels::amplitude_damping(0.25), channels::phase_damping(0.4),
        channels::correlated_xx_zz(0.1)}) {
    double sum = 0.0;
    for (double p : ch->nominal_probabilities()) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9) << ch->name();
  }
}

TEST(StandardChannels, AmplitudeDampingIsNotUnitaryMixture) {
  const ChannelPtr ch = channels::amplitude_damping(0.2);
  EXPECT_FALSE(ch->is_unitary_mixture());
  EXPECT_EQ(ch->identity_branch(), -1);
  // Default branch is the dominant no-decay Kraus.
  EXPECT_EQ(ch->default_branch(), 0u);
  EXPECT_THROW((void)ch->unitary(0), precondition_error);
}

TEST(StandardChannels, Depolarizing2Has16Branches) {
  const ChannelPtr ch = channels::depolarizing2(0.15);
  EXPECT_EQ(ch->num_branches(), 16u);
  EXPECT_EQ(ch->arity(), 2u);
  EXPECT_TRUE(ch->is_unitary_mixture());
  EXPECT_EQ(ch->identity_branch(), 0);
}

TEST(StandardChannels, ParameterValidation) {
  EXPECT_THROW((void)channels::depolarizing(1.5), precondition_error);
  EXPECT_THROW((void)channels::amplitude_damping(-0.1), precondition_error);
  EXPECT_THROW((void)channels::pauli_channel(0.6, 0.3, 0.2), precondition_error);
  EXPECT_THROW((void)channels::correlated_xx_zz(0.6), precondition_error);
}

TEST(NoiseModel, GateNoiseExpandsPerTargetQubit) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  NoiseModel nm;
  nm.add_gate_noise("cx", channels::depolarizing(0.01));
  const NoisyCircuit noisy = nm.apply(c);
  // 1q channel after a 2q gate → one site per target.
  ASSERT_EQ(noisy.num_sites(), 2u);
  EXPECT_EQ(noisy.sites()[0].qubits, (std::vector<unsigned>{0}));
  EXPECT_EQ(noisy.sites()[1].qubits, (std::vector<unsigned>{1}));
  EXPECT_EQ(noisy.sites()[0].after_op, 1u);
}

TEST(NoiseModel, TwoQubitChannelBindsToPair) {
  Circuit c(3);
  c.cx(0, 2).h(1);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing2(0.05));
  const NoisyCircuit noisy = nm.apply(c);
  // 2q channel skips the 1q gate.
  ASSERT_EQ(noisy.num_sites(), 1u);
  EXPECT_EQ(noisy.sites()[0].qubits, (std::vector<unsigned>{0, 2}));
}

TEST(NoiseModel, StatePrepAndMeasurementNoise) {
  Circuit c(2);
  c.h(0).measure(0).measure(1);
  NoiseModel nm;
  nm.add_state_prep_noise(channels::bit_flip(0.02));
  nm.add_measurement_noise(channels::bit_flip(0.03));
  const NoisyCircuit noisy = nm.apply(c);
  // 2 prep sites + 2 readout sites.
  EXPECT_EQ(noisy.num_sites(), 4u);
  EXPECT_EQ(noisy.sites_after(NoiseSite::kBeforeCircuit).size(), 2u);
}

TEST(NoiseModel, QubitSpecificRule) {
  Circuit c(3);
  c.cx(0, 1).cx(1, 2);
  NoiseModel nm;
  nm.add_gate_noise_on("cx", {1, 2}, channels::depolarizing2(0.1));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_EQ(noisy.num_sites(), 1u);
  EXPECT_EQ(noisy.sites()[0].after_op, 1u);
}

TEST(NoisyCircuit, NominalTrajectoryProbability) {
  Circuit c(1);
  c.h(0);
  NoiseModel nm;
  nm.add_gate_noise("h", channels::depolarizing(0.3));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_EQ(noisy.num_sites(), 1u);
  const std::vector<std::size_t> id_branch{0};
  EXPECT_NEAR(noisy.nominal_trajectory_probability(id_branch), 0.7, 1e-12);
  const std::vector<std::size_t> x_branch{1};
  EXPECT_NEAR(noisy.nominal_trajectory_probability(x_branch), 0.1, 1e-12);
}

TEST(NoisyCircuit, SparseProbabilityUsesDefaultBranch) {
  Circuit c(2);
  c.h(0).h(1);
  NoiseModel nm;
  nm.add_all_gate_noise(channels::depolarizing(0.3));
  const NoisyCircuit noisy = nm.apply(c);
  ASSERT_EQ(noisy.num_sites(), 2u);
  // One error at site 0, default at site 1.
  const std::vector<std::pair<std::size_t, std::size_t>> sparse{{0, 2}};
  EXPECT_NEAR(noisy.nominal_sparse_probability(sparse), 0.1 * 0.7, 1e-12);
  // Empty assignment = all default.
  EXPECT_NEAR(noisy.nominal_sparse_probability({}), 0.49, 1e-12);
}

TEST(NoisyCircuit, AllUnitaryMixtureFlag) {
  Circuit c(1);
  c.h(0);
  NoiseModel pauli_nm;
  pauli_nm.add_all_gate_noise(channels::depolarizing(0.1));
  EXPECT_TRUE(pauli_nm.apply(c).all_unitary_mixture());
  NoiseModel damp_nm;
  damp_nm.add_all_gate_noise(channels::amplitude_damping(0.1));
  EXPECT_FALSE(damp_nm.apply(c).all_unitary_mixture());
}

TEST(NoisyCircuit, CorrelatedChannelHasIdentityBranch) {
  const ChannelPtr ch = channels::correlated_xx_zz(0.05);
  EXPECT_TRUE(ch->is_unitary_mixture());
  EXPECT_EQ(ch->identity_branch(), 0);
  EXPECT_EQ(ch->arity(), 2u);
}

}  // namespace
}  // namespace ptsbe
