// The ptsbe::Pipeline facade: one fluent expression must wire exactly the
// same PTS → BE run a caller would assemble by hand from the low-level
// layers (same seed → bit-identical records), bundle the strategy-declared
// weighting with the result, and expose estimation/export without touching
// be::estimate or dataset:: directly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

constexpr std::uint64_t kSeed = 77;

Circuit ghz_circuit(unsigned n = 4) {
  Circuit c(n);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  return c;
}

NoiseModel ghz_noise() {
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.02));
  noise.add_measurement_noise(channels::bit_flip(0.01));
  return noise;
}

// The equivalence pin for the facade: Pipeline(circuit, noise).strategy(...)
// .backend(...).seed(s).run() == manual wiring of the documented low-level
// layer with the same seed (PTS samples from the master stream, BE hands
// trajectory t substream t+1).
TEST(Pipeline, MatchesManualWiringBitForBit) {
  const Circuit circuit = ghz_circuit();
  const NoiseModel noise = ghz_noise();

  pts::StrategyConfig config;
  config.nsamples = 600;
  config.nshots = 200;
  const RunResult run = Pipeline(circuit, noise)
                            .strategy("probabilistic", config)
                            .backend("statevector")
                            .seed(kSeed)
                            .run();

  // Manual wiring, low-level layer only.
  const NoisyCircuit noisy = noise.apply(circuit);
  RngStream rng(kSeed);
  pts::Options options;
  options.nsamples = 600;
  options.nshots = 200;
  options.merge_duplicates = true;  // StrategyConfig's default
  const auto specs = pts::sample_probabilistic(noisy, options, rng);
  be::Options exec;
  exec.backend = "statevector";
  exec.seed = kSeed;
  const be::Result manual = be::execute(noisy, specs, exec);

  ASSERT_EQ(run.num_specs, specs.size());
  ASSERT_EQ(run.result.batches.size(), manual.batches.size());
  for (std::size_t i = 0; i < manual.batches.size(); ++i) {
    const be::TrajectoryBatch& a = run.result.batches[i];
    const be::TrajectoryBatch& b = manual.batches[i];
    EXPECT_TRUE(a.spec.same_assignment(b.spec)) << i;
    EXPECT_EQ(a.records, b.records) << i;
    EXPECT_DOUBLE_EQ(a.realized_probability, b.realized_probability) << i;
  }
}

TEST(Pipeline, BundlesTheStrategyWeighting) {
  pts::StrategyConfig band_config;
  band_config.nsamples = 400;
  band_config.p_min = 1e-6;
  band_config.p_max = 1e-1;
  Pipeline pipeline(ghz_circuit(), ghz_noise());

  EXPECT_EQ(pipeline.weighting(), be::Weighting::kDrawWeighted);  // default

  const RunResult band =
      pipeline.strategy("band", band_config).seed(kSeed).run();
  EXPECT_EQ(band.weighting, be::Weighting::kProbabilityWeighted);
  EXPECT_EQ(band.strategy, "band");
  EXPECT_EQ(band.backend, "statevector");

  // Convenience estimators use the bundled weighting — identical to calling
  // the estimator layer with the correct pairing by hand.
  const std::uint64_t mask = 0xF;
  const be::Estimate via_facade = band.estimate_z_parity(mask);
  const be::Estimate via_layer = be::estimate_z_parity(
      band.result, be::Weighting::kProbabilityWeighted, mask);
  EXPECT_DOUBLE_EQ(via_facade.value, via_layer.value);
  EXPECT_DOUBLE_EQ(via_facade.std_error, via_layer.std_error);

  const be::Estimate p_even = band.estimate_probability(
      [](std::uint64_t r) { return !parity64(r & 0xF); });
  EXPECT_GE(p_even.value, 0.0);
  EXPECT_LE(p_even.value, 1.0);
}

TEST(Pipeline, SampleExposesThePtsStageOnly) {
  pts::StrategyConfig config;
  config.nsamples = 300;
  Pipeline pipeline(ghz_circuit(), ghz_noise());
  pipeline.strategy("probabilistic", config).seed(kSeed);
  const auto specs = pipeline.sample();
  const RunResult run = pipeline.run();
  ASSERT_EQ(specs.size(), run.num_specs);
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_TRUE(specs[i].same_assignment(run.result.batches[i].spec)) << i;
}

TEST(Pipeline, ThreadCountDoesNotChangeRecords) {
  pts::StrategyConfig config;
  config.nsamples = 200;
  config.nshots = 64;
  Pipeline pipeline(ghz_circuit(), ghz_noise());
  pipeline.strategy("probabilistic", config).seed(kSeed);
  const RunResult serial = pipeline.threads(1).run();
  // threads(0) = hardware concurrency; any explicit count works too.
  const RunResult hardware = pipeline.threads(0).run();
  const RunResult eight = pipeline.threads(8).run();
  ASSERT_EQ(serial.result.batches.size(), hardware.result.batches.size());
  ASSERT_EQ(serial.result.batches.size(), eight.result.batches.size());
  for (std::size_t i = 0; i < serial.result.batches.size(); ++i) {
    EXPECT_EQ(serial.result.batches[i].records,
              hardware.result.batches[i].records)
        << i;
    EXPECT_EQ(serial.result.batches[i].records,
              eight.result.batches[i].records)
        << i;
  }
}

TEST(Pipeline, DeviceCountDoesNotChangeRecords) {
  pts::StrategyConfig config;
  config.nsamples = 200;
  config.nshots = 64;
  Pipeline pipeline(ghz_circuit(), ghz_noise());
  pipeline.strategy("probabilistic", config).seed(kSeed);
  const RunResult serial = pipeline.devices(1).run();
  const RunResult parallel = pipeline.devices(4).run();
  ASSERT_EQ(serial.result.batches.size(), parallel.result.batches.size());
  for (std::size_t i = 0; i < serial.result.batches.size(); ++i)
    EXPECT_EQ(serial.result.batches[i].records,
              parallel.result.batches[i].records)
        << i;
}

TEST(Pipeline, RunStreamingMatchesRun) {
  pts::StrategyConfig config;
  config.nsamples = 200;
  config.nshots = 32;
  Pipeline pipeline(ghz_circuit(), ghz_noise());
  pipeline.strategy("probabilistic", config).seed(kSeed).devices(3);
  const RunResult materialised = pipeline.run();
  std::vector<be::TrajectoryBatch> streamed(materialised.result.batches.size());
  const be::StreamSummary summary =
      pipeline.run_streaming([&](be::TrajectoryBatch&& batch) {
        streamed[batch.spec_index] = std::move(batch);
      });
  EXPECT_EQ(summary.num_batches, materialised.result.batches.size());
  EXPECT_EQ(summary.total_shots, materialised.result.total_shots());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_EQ(streamed[i].records, materialised.result.batches[i].records)
        << i;
}

TEST(Pipeline, ExportRoundTripsThroughDataset) {
  pts::StrategyConfig config;
  config.nsamples = 150;
  config.nshots = 16;
  const RunResult run = Pipeline(ghz_circuit(), ghz_noise())
                            .strategy("probabilistic", config)
                            .seed(kSeed)
                            .run();
  const std::string path = "/tmp/ptsbe_test_pipeline_export.bin";
  run.to_binary(path);
  const be::Result loaded = dataset::read_binary(path);
  ASSERT_EQ(loaded.batches.size(), run.result.batches.size());
  for (std::size_t i = 0; i < loaded.batches.size(); ++i)
    EXPECT_EQ(loaded.batches[i].records, run.result.batches[i].records) << i;

  const std::string csv = "/tmp/ptsbe_test_pipeline_export.csv";
  run.to_csv(csv);  // existence/format is covered by the dataset suite
}

TEST(Pipeline, UnknownComponentNamesThrowWithTheRegistryMessage) {
  Pipeline pipeline(ghz_circuit(), ghz_noise());
  EXPECT_THROW((void)pipeline.strategy("no-such-strategy").run(),
               precondition_error);
  EXPECT_THROW((void)Pipeline(ghz_circuit(), ghz_noise())
                   .backend("no-such-backend")
                   .run(),
               precondition_error);
}

TEST(Pipeline, MispairingIsStructurallyImpossible) {
  // The regression this facade exists to prevent: band-filtered specs used
  // to be silently estimable with the draw-weighted estimator. Through the
  // facade the weighting always matches the strategy — pin both pairings.
  pts::StrategyConfig band_config;
  band_config.nsamples = 300;
  band_config.p_min = 1e-6;
  Pipeline pipeline(ghz_circuit(), ghz_noise());
  EXPECT_EQ(
      pipeline.strategy("band", band_config).weighting(),
      be::Weighting::kProbabilityWeighted);
  EXPECT_EQ(pipeline.strategy("probabilistic").weighting(),
            be::Weighting::kDrawWeighted);
}

}  // namespace
}  // namespace ptsbe
