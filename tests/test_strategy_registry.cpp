// The pluggable PTS strategy layer: every built-in strategy is reachable by
// registry name, wraps its pts.hpp free function faithfully, and declares
// the estimator weighting that keeps its specs unbiased — the contract the
// Pipeline facade relies on to make sampling/estimation mispairing
// inexpressible.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptsbe/core/strategy.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe {
namespace {

NoisyCircuit ghz_program(unsigned n = 4) {
  Circuit c(n);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.02));
  return noise.apply(c);
}

TEST(StrategyRegistry, BuiltinsAreRegistered) {
  auto& registry = pts::StrategyRegistry::instance();
  for (const char* name : {"probabilistic", "proportional", "band",
                           "enumerate", "twirl", "correlated"})
    EXPECT_TRUE(registry.contains(name)) << name;
  EXPECT_FALSE(registry.contains("no-such-strategy"));
}

TEST(StrategyRegistry, NamesAreSortedAndNonEmpty) {
  const std::vector<std::string> names =
      pts::StrategyRegistry::instance().names();
  ASSERT_GE(names.size(), 6u);
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_LT(names[i - 1], names[i]);
}

TEST(StrategyRegistry, UnknownNameErrorListsRegisteredNames) {
  // Same failure shape as BackendRegistry: name the culprit, list what
  // exists, throw precondition_error.
  try {
    (void)pts::make_strategy("no-such-strategy");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown strategy 'no-such-strategy'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("probabilistic"), std::string::npos) << message;
    EXPECT_NE(message.find("enumerate"), std::string::npos) << message;
  }
}

TEST(StrategyRegistry, DuplicateRegistrationThrows) {
  auto& registry = pts::StrategyRegistry::instance();
  EXPECT_THROW(
      registry.register_strategy(
          "probabilistic", []() -> pts::StrategyPtr { return nullptr; }),
      precondition_error);
  EXPECT_THROW(registry.register_strategy(
                   "", []() -> pts::StrategyPtr { return nullptr; }),
               precondition_error);
}

TEST(StrategyRegistry, PluginRegistrationRoundTrips) {
  auto& registry = pts::StrategyRegistry::instance();
  const std::string name = "test-plugin-strategy";
  if (!registry.contains(name)) {
    registry.register_strategy(name, []() -> pts::StrategyPtr {
      struct Plugin final : pts::Strategy {
        [[nodiscard]] const std::string& name() const noexcept override {
          static const std::string kName = "test-plugin-strategy";
          return kName;
        }
        [[nodiscard]] be::Weighting weighting() const noexcept override {
          return be::Weighting::kProbabilityWeighted;
        }
        [[nodiscard]] std::vector<TrajectorySpec> sample(
            const NoisyCircuit& noisy, const pts::StrategyConfig& config,
            RngStream& rng) const override {
          return pts::make_strategy("probabilistic")
              ->sample(noisy, config, rng);
        }
      };
      return std::make_unique<Plugin>();
    });
  }
  ASSERT_TRUE(registry.contains(name));
  const pts::StrategyPtr plugin = registry.make(name);
  EXPECT_EQ(plugin->name(), name);
  EXPECT_EQ(plugin->weighting(), be::Weighting::kProbabilityWeighted);
  const NoisyCircuit noisy = ghz_program();
  RngStream rng(3);
  EXPECT_FALSE(plugin->sample(noisy, {}, rng).empty());
}

// The satellite contract: deterministic spec sets (band windows, exhaustive
// enumeration) must be probability-weighted, stochastic draw frequencies
// (Algorithm 2 with merge, proportional redistribution) draw-weighted.
TEST(StrategyRegistry, WeightingAutoSelection) {
  const auto weighting_of = [](const char* name) {
    return pts::make_strategy(name)->weighting();
  };
  EXPECT_EQ(weighting_of("band"), be::Weighting::kProbabilityWeighted);
  EXPECT_EQ(weighting_of("enumerate"), be::Weighting::kProbabilityWeighted);
  EXPECT_EQ(weighting_of("probabilistic"), be::Weighting::kDrawWeighted);
  EXPECT_EQ(weighting_of("proportional"), be::Weighting::kDrawWeighted);
  // Tailored injection deliberately distorts draw frequencies, so only the
  // per-batch probability weighting is sound for those specs.
  EXPECT_EQ(weighting_of("twirl"), be::Weighting::kProbabilityWeighted);
  EXPECT_EQ(weighting_of("correlated"), be::Weighting::kProbabilityWeighted);
}

TEST(Strategies, ProbabilisticMatchesFreeFunction) {
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig config;
  config.nsamples = 300;
  config.nshots = 50;

  RngStream rng_a(11);
  const auto via_strategy =
      pts::make_strategy("probabilistic")->sample(noisy, config, rng_a);

  RngStream rng_b(11);
  pts::Options options;
  options.nsamples = 300;
  options.nshots = 50;
  options.merge_duplicates = true;  // StrategyConfig's default
  const auto via_free = pts::sample_probabilistic(noisy, options, rng_b);

  ASSERT_EQ(via_strategy.size(), via_free.size());
  for (std::size_t i = 0; i < via_free.size(); ++i) {
    EXPECT_TRUE(via_strategy[i].same_assignment(via_free[i])) << i;
    EXPECT_EQ(via_strategy[i].shots, via_free[i].shots) << i;
  }
}

TEST(Strategies, ProbabilisticForcesMergeForDrawWeighting) {
  // merge_duplicates = false would decouple shot budgets from draw
  // frequency and silently bias the strategy's declared kDrawWeighted
  // estimates — the adapter must override it.
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig config;
  config.nsamples = 300;
  config.nshots = 50;
  config.merge_duplicates = false;

  RngStream rng_a(11);
  const auto via_strategy =
      pts::make_strategy("probabilistic")->sample(noisy, config, rng_a);

  RngStream rng_b(11);
  pts::Options options;
  options.nsamples = 300;
  options.nshots = 50;
  options.merge_duplicates = true;
  const auto merged = pts::sample_probabilistic(noisy, options, rng_b);

  ASSERT_EQ(via_strategy.size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i)
    EXPECT_EQ(via_strategy[i].shots, merged[i].shots) << i;
}

TEST(Strategies, BandRespectsWindow) {
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig config;
  config.nsamples = 500;
  config.p_min = 1e-4;
  config.p_max = 1e-1;
  RngStream rng(5);
  const auto specs = pts::make_strategy("band")->sample(noisy, config, rng);
  ASSERT_FALSE(specs.empty());
  for (const TrajectorySpec& spec : specs) {
    EXPECT_GE(spec.nominal_probability, config.p_min);
    EXPECT_LE(spec.nominal_probability, config.p_max);
  }
}

TEST(Strategies, EnumerateIsSortedAndAboveCutoff) {
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig config;
  config.probability_cutoff = 1e-4;
  config.nshots = 77;
  RngStream rng(5);
  const auto specs =
      pts::make_strategy("enumerate")->sample(noisy, config, rng);
  ASSERT_FALSE(specs.empty());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_GE(specs[i].nominal_probability, config.probability_cutoff) << i;
    EXPECT_EQ(specs[i].shots, 77u) << i;
    if (i > 0) {
      EXPECT_GE(specs[i - 1].nominal_probability,
                specs[i].nominal_probability);
    }
  }
}

TEST(Strategies, ProportionalRedistributesTotalBudget) {
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig config;
  config.nsamples = 400;
  config.nshots = 10;
  config.total_shots = 100000;
  RngStream rng(9);
  const auto specs =
      pts::make_strategy("proportional")->sample(noisy, config, rng);
  ASSERT_FALSE(specs.empty());
  // Rounding may drop a few shots but the budget must be approximately met.
  const std::uint64_t total = total_shots(specs);
  EXPECT_NEAR(static_cast<double>(total), 100000.0, 400.0 / 2 + specs.size());
}

TEST(Strategies, SiteFilterRestrictsSampledBranches) {
  const NoisyCircuit noisy = ghz_program();
  pts::StrategyConfig config;
  config.nsamples = 400;
  config.site_filter.gate_name = "cx";
  RngStream rng(13);
  const auto specs =
      pts::make_strategy("probabilistic")->sample(noisy, config, rng);
  ASSERT_FALSE(specs.empty());
  for (const TrajectorySpec& spec : specs)
    for (const BranchChoice& bc : spec.branches) {
      const NoiseSite& site = noisy.sites()[bc.site];
      ASSERT_NE(site.after_op, NoiseSite::kBeforeCircuit);
      EXPECT_EQ(noisy.circuit().ops()[site.after_op].name, "cx");
    }
}

}  // namespace
}  // namespace ptsbe
