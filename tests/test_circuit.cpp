// Unit tests for the circuit IR: builders, validation, append/mapping,
// depth, measurement bookkeeping.

#include <gtest/gtest.h>

#include "ptsbe/circuit/circuit.hpp"

namespace ptsbe {
namespace {

TEST(Circuit, BuilderChainsAndCounts) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).measure_all();
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.gate_count(), 3u);
  EXPECT_EQ(c.measured_qubits(), (std::vector<unsigned>{0, 1, 2}));
}

TEST(Circuit, DepthGreedyMoments) {
  Circuit c(3);
  c.h(0).h(1).h(2);          // one moment
  c.cx(0, 1);                // second
  c.cx(1, 2);                // third
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, RejectsOutOfRangeAndDuplicateTargets) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), precondition_error);
  EXPECT_THROW(c.cx(0, 0), precondition_error);
  EXPECT_THROW(c.gate("bad", Matrix::identity(2), {5}), precondition_error);
}

TEST(Circuit, RejectsWrongMatrixDimension) {
  Circuit c(2);
  EXPECT_THROW(c.gate("bad", Matrix::identity(2), {0, 1}), precondition_error);
  EXPECT_THROW(c.gate("bad", Matrix::identity(4), {0}), precondition_error);
}

TEST(Circuit, AppendWithQubitMap) {
  Circuit block(2);
  block.h(0).cx(0, 1);
  Circuit big(5);
  big.append(block, {3, 4});
  ASSERT_EQ(big.size(), 2u);
  EXPECT_EQ(big.ops()[0].qubits, (std::vector<unsigned>{3}));
  EXPECT_EQ(big.ops()[1].qubits, (std::vector<unsigned>{3, 4}));
}

TEST(Circuit, AppendGrowsWidth) {
  Circuit block(2);
  block.cx(0, 1);
  Circuit big(1);
  big.append(block, {0, 6});
  EXPECT_EQ(big.num_qubits(), 7u);
}

TEST(Circuit, AppendIdentityMap) {
  Circuit block(2);
  block.x(1);
  Circuit big(2);
  big.append(block);
  EXPECT_EQ(big.ops()[0].qubits, (std::vector<unsigned>{1}));
}

TEST(Circuit, ToStringListsOps) {
  Circuit c(2);
  c.rx(0, 0.5).measure(1);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("rx 0"), std::string::npos);
  EXPECT_NE(s.find("measure 1"), std::string::npos);
}

TEST(Circuit, MeasureOrderIsCallOrder) {
  Circuit c(3);
  c.measure(2).measure(0);
  EXPECT_EQ(c.measured_qubits(), (std::vector<unsigned>{2, 0}));
}

TEST(Circuit, GateMatrixStored) {
  Circuit c(1);
  c.h(0);
  EXPECT_TRUE(approx_equal(c.ops()[0].matrix, gates::H(), 1e-14));
}

}  // namespace
}  // namespace ptsbe
