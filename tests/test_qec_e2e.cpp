// End-to-end QEC workload suite: the determinism matrix extended over QEC
// memory experiments (threads × schedule × fusion × backend — records AND
// dataset bytes bit-identical, standalone and through serve::Engine), the
// golden regression pinning exact logical-error counts, the `.ptq`
// round-trip property over QEC-generated circuits (ancilla measure lines,
// mid-circuit measurement ordering), and the qec::metrics analytics
// (Wilson intervals, streaming/batch agreement with the estimator layer).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/qec/metrics.hpp"
#include "ptsbe/serve/engine.hpp"

namespace ptsbe {
namespace {

using qec::CssBasis;
using qec::LogicalErrorAccumulator;
using qec::MemoryWorkload;
using qec::MemoryWorkloadConfig;
using qec::WilsonInterval;

MemoryWorkload repetition_workload(unsigned distance, double noise,
                                   unsigned rounds = 2) {
  MemoryWorkloadConfig cfg;
  cfg.code = "repetition";
  cfg.distance = distance;
  cfg.rounds = rounds;
  cfg.noise = noise;
  return qec::make_memory_workload(cfg);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

/// Bitwise equality — the determinism contract is exact, not 4-ulp.
void expect_results_identical(const be::Result& a, const be::Result& b) {
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    const be::TrajectoryBatch& x = a.batches[i];
    const be::TrajectoryBatch& y = b.batches[i];
    EXPECT_EQ(x.spec_index, y.spec_index);
    EXPECT_TRUE(x.spec.same_assignment(y.spec));
    EXPECT_EQ(x.spec.shots, y.spec.shots);
    EXPECT_EQ(x.records, y.records) << "spec " << i;
    EXPECT_EQ(x.realized_probability, y.realized_probability) << "spec " << i;
  }
}

std::vector<std::size_t> matrix_thread_counts() {
  std::vector<std::size_t> counts = {2};
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (hw != 1 && hw != 2) counts.push_back(hw);
  return counts;
}

// ---------------------------------------------------------------------------
// Satellite: the determinism matrix over QEC workloads. For the repetition
// memory experiment, every (threads ∈ {1, 2, hw}) × (schedule) × (fusion)
// cell must produce records, dataset bytes AND decoded failure counts
// bit-identical to the single-threaded reference — on an amplitude backend
// and on the stabilizer backend (whose shared-prefix fallback must stay
// deterministic too).
// ---------------------------------------------------------------------------
TEST(QecDeterminismMatrix, ThreadsScheduleFusionPinRecordsAndBytes) {
  const MemoryWorkload workload = repetition_workload(3, 0.02);
  const auto decoder =
      qec::make_decoder("union-find", workload.experiment.code);
  const std::vector<std::size_t> thread_counts = matrix_thread_counts();
  const std::string ref_path = "/tmp/ptsbe_test_qec_matrix_ref.bin";
  const std::string got_path = "/tmp/ptsbe_test_qec_matrix_got.bin";

  pts::StrategyConfig cfg;
  cfg.nsamples = 200;
  cfg.nshots = 16;
  Pipeline sampler(workload.noisy);
  sampler.strategy("probabilistic", cfg).seed(20250807);
  const std::vector<TrajectorySpec> specs = sampler.sample();
  ASSERT_FALSE(specs.empty());

  for (const std::string& backend : {std::string("statevector"),
                                     std::string("stabilizer")}) {
    for (const be::Schedule schedule :
         {be::Schedule::kIndependent, be::Schedule::kSharedPrefix}) {
      for (const bool fuse : {false, true}) {
        be::Options options;
        options.backend = backend;
        options.schedule = schedule;
        options.config.fuse_gates = fuse;
        options.threads = 1;
        const be::Result reference =
            be::execute(workload.noisy, specs, options);
        dataset::write_binary(ref_path, reference);
        const std::string ref_bytes = slurp(ref_path);
        ASSERT_FALSE(ref_bytes.empty());
        LogicalErrorAccumulator ref_acc(workload.experiment, *decoder,
                                        be::Weighting::kDrawWeighted);
        ref_acc.consume(reference);
        for (const std::size_t threads : thread_counts) {
          SCOPED_TRACE("backend=" + backend + " schedule=" +
                       to_string(schedule) + " fuse=" + std::to_string(fuse) +
                       " threads=" + std::to_string(threads));
          options.threads = threads;
          const be::Result result =
              be::execute(workload.noisy, specs, options);
          expect_results_identical(reference, result);
          EXPECT_EQ(reference.schedule, result.schedule);
          dataset::write_binary(got_path, result);
          EXPECT_EQ(ref_bytes, slurp(got_path));
          // The analytics see exactly the same failures, too.
          LogicalErrorAccumulator acc(workload.experiment, *decoder,
                                      be::Weighting::kDrawWeighted);
          acc.consume(result);
          EXPECT_EQ(ref_acc.shots(), acc.shots());
          EXPECT_EQ(ref_acc.failures(), acc.failures());
          EXPECT_EQ(ref_acc.logical_error_rate(), acc.logical_error_rate());
        }
      }
    }
  }
}

// The streaming sink path (what threshold sweeps actually run) delivers the
// same shots/failures as the materialised result at every thread count.
TEST(QecDeterminismMatrix, StreamingSinkMatchesMaterialisedAnalytics) {
  const MemoryWorkload workload = repetition_workload(3, 0.02);
  const auto decoder =
      qec::make_decoder("union-find", workload.experiment.code);
  pts::StrategyConfig cfg;
  cfg.nsamples = 150;
  cfg.nshots = 16;

  Pipeline pipeline(workload.noisy);
  pipeline.strategy("probabilistic", cfg).backend("stabilizer").seed(99);
  const RunResult reference = pipeline.run();
  LogicalErrorAccumulator ref_acc(workload.experiment, *decoder,
                                  reference.weighting);
  ref_acc.consume(reference.result);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Pipeline streaming(workload.noisy);
    streaming.strategy("probabilistic", cfg)
        .backend("stabilizer")
        .threads(threads)
        .seed(99);
    LogicalErrorAccumulator acc(workload.experiment, *decoder,
                                streaming.weighting());
    streaming.run_streaming(acc.sink());
    EXPECT_EQ(ref_acc.shots(), acc.shots());
    EXPECT_EQ(ref_acc.failures(), acc.failures());
    // Weighted sums are accumulated in delivery order, which threads > 1
    // may permute; integer counts above are order-free, and at threads=1
    // the weighted rate must match bit-for-bit as well.
    if (threads == 1) {
      EXPECT_EQ(ref_acc.logical_error_rate(), acc.logical_error_rate());
    }
  }
}

// Acceptance: served QEC jobs (the .ptq job spec produced by the workload
// builder) are bit-identical to standalone Pipeline runs — records, bytes
// and decoded failures — across schedules and thread counts, with several
// tenants in flight at once.
TEST(QecDeterminismMatrix, ServedJobsBitIdenticalToStandalone) {
  const std::vector<MemoryWorkload> workloads = {
      repetition_workload(3, 0.02), repetition_workload(5, 0.05)};
  pts::StrategyConfig cfg;
  cfg.nsamples = 120;
  cfg.nshots = 10;

  struct Job {
    const MemoryWorkload* workload;
    be::Schedule schedule;
    std::size_t threads;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const MemoryWorkload& w : workloads)
    for (const be::Schedule schedule :
         {be::Schedule::kIndependent, be::Schedule::kSharedPrefix})
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}})
        jobs.push_back(Job{&w, schedule, threads, 4242});

  serve::Engine engine({.workers = 3, .queue_capacity = 64});
  std::vector<serve::JobHandle> handles;
  handles.reserve(jobs.size());
  for (const Job& job : jobs) {
    serve::JobRequest req;
    req.circuit_text = job.workload->to_ptq();
    req.source_name = job.workload->experiment.code.name + ".ptq";
    req.strategy = "probabilistic";
    req.strategy_config = cfg;
    req.backend = "stabilizer";
    req.schedule = job.schedule;
    req.threads = job.threads;
    req.seed = job.seed;
    handles.push_back(engine.submit(std::move(req)));
  }

  const std::string served_path = "/tmp/ptsbe_test_qec_served.bin";
  const std::string standalone_path = "/tmp/ptsbe_test_qec_standalone.bin";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    SCOPED_TRACE("job=" + std::to_string(i) + " schedule=" +
                 to_string(job.schedule) +
                 " threads=" + std::to_string(job.threads));
    const RunResult& served = handles[i].wait();

    Pipeline standalone(job.workload->noisy);
    standalone.strategy("probabilistic", cfg)
        .backend("stabilizer")
        .schedule(job.schedule)
        .threads(job.threads)
        .seed(job.seed);
    const RunResult reference = standalone.run();

    expect_results_identical(reference.result, served.result);
    served.to_binary(served_path);
    reference.to_binary(standalone_path);
    EXPECT_EQ(slurp(standalone_path), slurp(served_path));

    const auto decoder =
        qec::make_decoder("union-find", job.workload->experiment.code);
    LogicalErrorAccumulator served_acc(job.workload->experiment, *decoder,
                                       served.weighting);
    served_acc.consume(served.result);
    LogicalErrorAccumulator ref_acc(job.workload->experiment, *decoder,
                                    reference.weighting);
    ref_acc.consume(reference.result);
    EXPECT_EQ(ref_acc.shots(), served_acc.shots());
    EXPECT_EQ(ref_acc.failures(), served_acc.failures());
    EXPECT_EQ(ref_acc.logical_error_rate(), served_acc.logical_error_rate());
  }
}

// ---------------------------------------------------------------------------
// Satellite: golden regression. d=3 repetition at two noise strengths with
// a fixed seed must produce these exact logical-error counts. A change here
// means the generator, the noise binding, the sampler seeding, the backend
// or the decoder drifted — all silent-accuracy hazards. Update the pins
// only for an intentional, understood change.
// ---------------------------------------------------------------------------
TEST(QecGoldenRegression, RepetitionD3PinnedCounts) {
  struct Golden {
    double noise;
    std::uint64_t shots;
    std::uint64_t failures;
  };
  const std::vector<Golden> golden = {
      {0.02, 20000, 175},  // pinned from the first green run
      {0.05, 20000, 750},
  };
  for (const Golden& g : golden) {
    SCOPED_TRACE("noise=" + std::to_string(g.noise));
    const MemoryWorkload workload = repetition_workload(3, g.noise);
    const auto decoder =
        qec::make_shot_decoder("st-union-find", workload.experiment);
    qec::MemoryRunConfig run;
    run.strategy_config.nsamples = 800;
    run.strategy_config.nshots = 25;
    run.backend = "stabilizer";
    run.seed = 20250807;
    const qec::LogicalErrorPoint point =
        qec::run_memory_point(workload, *decoder, run);
    EXPECT_EQ(point.shots, g.shots);
    EXPECT_EQ(point.failures, g.failures);
  }
}

// ---------------------------------------------------------------------------
// Satellite: `.ptq` round-trip property over QEC-generated circuits — the
// ancilla measure lines are mid-circuit (measure ops interleaved with later
// gates) and carry readout-noise sites, both of which must survive
// serialisation exactly, preserving measurement order and site placement.
// ---------------------------------------------------------------------------
TEST(QecPtqRoundTrip, WorkloadsRoundTripExactly) {
  std::vector<MemoryWorkloadConfig> configs;
  for (unsigned d : {3u, 5u}) {
    MemoryWorkloadConfig cfg;
    cfg.code = "repetition";
    cfg.distance = d;
    cfg.rounds = 2;
    cfg.noise = 0.01 * d;
    configs.push_back(cfg);
  }
  {
    MemoryWorkloadConfig cfg;
    cfg.code = "surface";
    cfg.distance = 3;
    cfg.rounds = 2;
    cfg.noise = 0.003;
    configs.push_back(cfg);
    cfg.basis = CssBasis::kX;
    cfg.rounds = 1;
    configs.push_back(cfg);
  }
  {
    MemoryWorkloadConfig cfg;
    cfg.code = "steane";
    cfg.distance = 3;
    cfg.rounds = 3;
    cfg.noise = 0.02;
    cfg.readout_noise = 0.007;
    configs.push_back(cfg);
  }
  for (const MemoryWorkloadConfig& cfg : configs) {
    SCOPED_TRACE(cfg.code + " d=" + std::to_string(cfg.distance) + " r=" +
                 std::to_string(cfg.rounds) + " basis=" +
                 qec::to_string(cfg.basis));
    const MemoryWorkload workload = qec::make_memory_workload(cfg);
    const std::string text = workload.to_ptq();
    const NoisyCircuit parsed = io::parse_circuit(text, "qec-roundtrip");
    EXPECT_TRUE(io::programs_equal(parsed, workload.noisy));
    // Mid-circuit measurement ordering is part of the record layout — it
    // must survive exactly.
    EXPECT_EQ(parsed.circuit().measured_qubits(),
              workload.noisy.circuit().measured_qubits());
    // Serialisation is idempotent: write(parse(write(p))) == write(p).
    EXPECT_EQ(io::write_circuit(parsed), text);
  }
}

// A served job built from the round-tripped text behaves identically to the
// original — the job spec really is "the workload as data".
TEST(QecPtqRoundTrip, ReparsedWorkloadRunsIdentically) {
  const MemoryWorkload workload = repetition_workload(3, 0.02);
  const NoisyCircuit reparsed = io::parse_circuit(workload.to_ptq());
  pts::StrategyConfig cfg;
  cfg.nsamples = 100;
  cfg.nshots = 8;
  const auto run = [&](const NoisyCircuit& program) {
    Pipeline p(program);
    p.strategy("probabilistic", cfg).backend("stabilizer").seed(7);
    return p.run();
  };
  const RunResult a = run(workload.noisy);
  const RunResult b = run(reparsed);
  expect_results_identical(a.result, b.result);
}

// ---------------------------------------------------------------------------
// qec::metrics unit coverage.
// ---------------------------------------------------------------------------
TEST(WilsonIntervalTest, MatchesHandComputedValues) {
  // 0/100 at 95%: the textbook "rule of three"-adjacent case.
  const WilsonInterval zero = qec::wilson_interval(0, 100);
  EXPECT_EQ(zero.lower, 0.0);
  EXPECT_NEAR(zero.upper, 0.036994, 1e-5);
  // 5/100 at 95%.
  const WilsonInterval five = qec::wilson_interval(5, 100);
  EXPECT_NEAR(five.lower, 0.021543, 1e-5);
  EXPECT_NEAR(five.upper, 0.111752, 1e-5);
  // Degenerate and invalid inputs.
  const WilsonInterval empty = qec::wilson_interval(0, 0);
  EXPECT_EQ(empty.lower, 0.0);
  EXPECT_EQ(empty.upper, 1.0);
  EXPECT_THROW((void)qec::wilson_interval(5, 4), precondition_error);
  EXPECT_THROW((void)qec::wilson_interval(1, 10, 0.0), precondition_error);
}

TEST(WilsonIntervalTest, BracketsTheRateAndTightensWithTrials) {
  for (const double trials : {50.0, 500.0, 5000.0}) {
    const double failures = trials * 0.1;
    const WilsonInterval ci = qec::wilson_interval(failures, trials);
    EXPECT_LT(ci.lower, 0.1);
    EXPECT_GT(ci.upper, 0.1);
  }
  const WilsonInterval wide = qec::wilson_interval(5, 50);
  const WilsonInterval tight = qec::wilson_interval(500, 5000);
  EXPECT_LT(tight.upper - tight.lower, wide.upper - wide.lower);
}

// The accumulator's weighted rate must equal the estimator layer's answer
// bit-for-bit — both implement the same shot_weight rule.
TEST(LogicalErrorAccumulatorTest, AgreesWithEstimatorExactly) {
  const MemoryWorkload workload = repetition_workload(3, 0.04);
  const auto decoder =
      qec::make_decoder("union-find", workload.experiment.code);
  pts::StrategyConfig cfg;
  cfg.nsamples = 200;
  cfg.nshots = 12;
  Pipeline pipeline(workload.noisy);
  pipeline.strategy("probabilistic", cfg).backend("stabilizer").seed(11);
  const RunResult run = pipeline.run();

  LogicalErrorAccumulator acc(workload.experiment, *decoder, run.weighting);
  acc.consume(run.result);
  const be::Estimate est = run.estimate_probability([&](std::uint64_t r) {
    return qec::decode_memory_shot(workload.experiment, *decoder, r) != 0;
  });
  EXPECT_EQ(acc.logical_error_rate(), est.value);
  EXPECT_GT(acc.shots(), 0u);
  // Uniform-weight sanity: effective sample size equals the shot count.
  EXPECT_NEAR(acc.effective_shots(), static_cast<double>(acc.shots()),
              1e-6 * static_cast<double>(acc.shots()));
}

TEST(LogicalErrorAccumulatorTest, NoiselessMemoryNeverFails) {
  MemoryWorkloadConfig cfg;
  cfg.code = "repetition";
  cfg.distance = 3;
  cfg.rounds = 2;
  cfg.noise = 0.0;
  cfg.readout_noise = 0.0;
  const MemoryWorkload workload = qec::make_memory_workload(cfg);
  const auto decoder =
      qec::make_decoder("union-find", workload.experiment.code);
  qec::MemoryRunConfig run;
  run.strategy_config.nsamples = 10;
  run.strategy_config.nshots = 50;
  const qec::LogicalErrorPoint point =
      qec::run_memory_point(workload, *decoder, run);
  EXPECT_GT(point.shots, 0u);
  EXPECT_EQ(point.failures, 0u);
  EXPECT_EQ(point.logical_error_rate, 0.0);
}

// Sub-threshold suppression, the physics the bench curve shows: below
// threshold the d=5 repetition memory outperforms d=3 at equal noise.
TEST(LogicalErrorRateTest, DistanceFiveBeatsDistanceThreeBelowThreshold) {
  const double noise = 0.025;
  qec::MemoryRunConfig run;
  run.strategy_config.nsamples = 1500;
  run.strategy_config.nshots = 20;
  run.backend = "stabilizer";
  run.seed = 321;
  const auto rate = [&](unsigned distance) {
    const MemoryWorkload workload = repetition_workload(distance, noise);
    const auto decoder =
        qec::make_shot_decoder("st-union-find", workload.experiment);
    return qec::run_memory_point(workload, *decoder, run);
  };
  const qec::LogicalErrorPoint d3 = rate(3);
  const qec::LogicalErrorPoint d5 = rate(5);
  EXPECT_GT(d3.failures, 0u);  // enough statistics to mean something
  EXPECT_LT(d5.logical_error_rate, d3.logical_error_rate);
}

TEST(MemoryBasisTest, XBasisMemoryIsNoiselesslySilent) {
  // |+_L⟩ prepared, extracted and read out in the X basis: without noise
  // every syndrome is trivial and the logical X value is +1 (bit 0).
  const qec::CssCode code = qec::rotated_surface_code(3);
  const qec::MemoryExperiment exp =
      qec::make_memory_experiment(code, 1, CssBasis::kX);
  Pipeline pipeline(NoiseModel().apply(exp.circuit));
  pts::StrategyConfig cfg;
  cfg.nsamples = 4;
  cfg.nshots = 32;
  pipeline.strategy("probabilistic", cfg).backend("stabilizer").seed(5);
  const RunResult run = pipeline.run();
  const auto decoder = qec::make_decoder("union-find", code, CssBasis::kX);
  std::uint64_t shots = 0;
  for (const be::TrajectoryBatch& batch : run.result.batches)
    for (const std::uint64_t record : batch.records) {
      ++shots;
      for (unsigned r = 0; r < exp.rounds; ++r)
        for (unsigned a = 0; a < exp.ancillas_per_round; ++a)
          EXPECT_EQ((record >> exp.ancilla_bit(r, a)) & 1ULL, 0u);
      EXPECT_EQ(qec::decode_memory_shot(exp, *decoder, record), 0u);
    }
  EXPECT_GT(shots, 0u);
}

}  // namespace
}  // namespace ptsbe
