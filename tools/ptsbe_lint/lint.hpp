#pragma once

/// \file lint.hpp
/// \brief `ptsbe-lint` — the project-invariant checker.
///
/// clang-tidy and `-Wthread-safety` enforce generic C++ and locking rules;
/// this tool enforces the contracts that are *specific to this codebase*
/// and invisible to a generic analyzer:
///
///  1. **Determinism of randomness** (`unseeded-rng`): records and dataset
///     bytes are pinned bit-identical across thread counts, schedules and
///     shards, which only holds because every random bit flows from the
///     seeded Philox streams in `ptsbe::common`. `rand()`,
///     `std::random_device` and default-constructed std engines are
///     nondeterministic entropy and are forbidden outside the trajectory
///     sampling layer.
///  2. **Determinism of serialization** (`unordered-iteration`): iteration
///     order of unordered containers is implementation-defined, so any
///     loop over one inside a serialization TU (dataset writer, `.ptq`
///     writer, wire codec, stats JSON) could silently reorder bytes
///     between runs or standard-library versions. Lookup tables are fine;
///     iteration is not.
///  3. **Kernel bit-identity** (`fma-in-kernel-tu`, `kernel-cmake-flags`):
///     the SIMD kernel sets are byte-identical to the scalar reference
///     only because no TU contracts a multiply+add into one rounding
///     (PR 8). Kernel TUs must not call `std::fma`/FMA intrinsics and
///     their CMake stanza must keep `-ffp-contract=off`.
///  4. **Self-contained headers** (`header-self-contained`,
///     `header-missing-pragma-once`): a public module-boundary header must
///     compile on its own — it directly includes what it names instead of
///     leaning on another module's transitive includes.
///
/// The library half (this header) is what the fixture test suite drives;
/// `main.cpp` wraps it in a CLI with a machine-readable JSON report.

#include <cstddef>
#include <string>
#include <vector>

namespace ptsbe::lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string check;    ///< Stable check id, e.g. "unseeded-rng".
  std::string file;     ///< Path relative to the scanned root ('/').
  std::size_t line = 0; ///< 1-based line of the offending token.
  std::string message;  ///< Human-readable explanation.
};

/// Which files each check applies to, as '/'-separated paths relative to
/// the scanned root. A file matches a list entry when the entry is a
/// prefix of (or equal to) its path. Defaults describe this repository;
/// the fixture tests override them to point at seeded-violation files.
struct LintConfig {
  /// Directories (relative to root) to walk.
  std::vector<std::string> scan_roots = {"src", "examples", "bench", "tests",
                                         "tools"};
  /// Any path containing one of these substrings is skipped entirely
  /// (the lint fixtures are themselves deliberate violations).
  std::vector<std::string> exclude_substrings = {"/fixtures/"};
  /// The trajectory sampling layer — the only code allowed to construct
  /// randomness primitives (and even there, seeded ones).
  std::vector<std::string> rng_allowlist = {
      "src/trajectory/",
      "src/common/include/ptsbe/common/rng.hpp",
      "src/common/include/ptsbe/common/philox.hpp",
  };
  /// TUs whose output bytes are part of the determinism contract.
  std::vector<std::string> serialization_tus = {
      "src/io/",          "src/core/dataset.cpp", "src/net/protocol.cpp",
      "src/serve/engine.cpp", "src/qec/metrics.cpp", "src/stats/",
  };
  /// The bit-identity kernel layer.
  std::vector<std::string> kernel_tus = {"src/kernels/"};
  /// CMake stanza that must keep -ffp-contract=off on every kernel TU.
  std::string kernel_cmake = "src/kernels/CMakeLists.txt";
};

/// Replace comments and string/character literals with spaces, preserving
/// line structure, so token checks never fire on prose or literals.
[[nodiscard]] std::string strip_comments_and_strings(const std::string& text);

/// Run every applicable check on one in-memory file. `rel_path` selects
/// the checks (see LintConfig); `text` is the raw file content.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& rel_path,
                                               const std::string& text,
                                               const LintConfig& config);

/// Check the kernel CMake stanza content (rule 3b).
[[nodiscard]] std::vector<Finding> lint_kernel_cmake(
    const std::string& rel_path, const std::string& text);

/// Walk `root` per `config` and return every finding, sorted by
/// (file, line, check) so reports are deterministic.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root,
                                             const LintConfig& config);

/// Machine-readable report: one JSON object with a sorted findings array.
[[nodiscard]] std::string report_json(const std::vector<Finding>& findings);

}  // namespace ptsbe::lint
