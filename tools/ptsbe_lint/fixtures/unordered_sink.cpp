// Lint fixture: unordered-container iteration feeding serialized output.
// Treated as a serialization TU by the test's LintConfig.
// Expected findings: 2 × unordered-iteration.
#include <iostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct FixtureStats {
  std::unordered_map<std::string, int> counters;
};

void fixture_write_stats(std::ostream& os, const FixtureStats& stats) {
  for (const auto& [name, value] : stats.counters)  // finding: member iter
    os << name << '=' << value << '\n';
}

void fixture_write_tags(std::ostream& os) {
  std::unordered_set<std::string> tags{"a", "b"};
  for (const std::string& tag : tags)  // finding: local iter
    os << tag << '\n';
}

// Allowed: lookup into an unordered container without iterating it.
int fixture_lookup(const FixtureStats& stats, const std::string& key) {
  const auto it = stats.counters.find(key);
  return it == stats.counters.end() ? 0 : it->second;
}
