// Lint fixture: public header that is not self-contained. Expected
// findings: header-missing-pragma-once, and header-self-contained for
// std::vector, std::string and std::mutex (none included directly).

namespace fixture {

struct BadHeader {
  std::vector<std::string> names;
  std::mutex mutex;
};

}  // namespace fixture
