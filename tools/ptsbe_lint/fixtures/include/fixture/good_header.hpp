#pragma once

// Lint fixture: a fully self-contained public header the checks must stay
// quiet on.

#include <cstddef>
#include <string>
#include <vector>

namespace fixture {

struct GoodHeader {
  std::vector<std::string> names;
  std::size_t count = 0;
};

}  // namespace fixture
