// Lint fixture: every flavour of forbidden nondeterministic randomness.
// Expected findings: 4 × unseeded-rng.
#include <cstdlib>
#include <random>

int fixture_entropy() {
  std::random_device device;              // finding: hardware entropy
  std::mt19937_64 engine;                 // finding: default-constructed
  std::srand(42);                         // finding: C global-state seed
  return static_cast<int>(device() + engine()) + std::rand();  // finding
}

// Allowed patterns the check must stay quiet on:
int fixture_seeded() {
  std::mt19937_64 engine(0x5EEDULL);  // explicit seed: fine
  const int operand = 7;              // identifier containing "rand": fine
  // rand() in a comment: fine
  const char* text = "calls rand() and std::random_device";  // literal: fine
  return static_cast<int>(engine()) + operand + (text != nullptr ? 1 : 0);
}
