// Lint fixture: a file every check must stay quiet on, even when mapped
// as a serialization AND kernel TU by the test config.
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

void fixture_write_sorted(std::ostream& os,
                          const std::map<std::string, std::uint64_t>& stats) {
  for (const auto& [name, value] : stats)  // ordered container: fine
    os << name << '=' << value << '\n';
}

double fixture_kernel_mul_add(double a, double x, double y) {
  return a * x + y;  // two roundings: fine
}
