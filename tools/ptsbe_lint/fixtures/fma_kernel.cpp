// Lint fixture: FMA inside a kernel TU (mapped as such by the test's
// LintConfig). Expected findings: 2 × fma-in-kernel-tu.
#include <cmath>

double fixture_axpy(double a, double x, double y) {
  return std::fma(a, x, y);  // finding: one rounding instead of two
}

float fixture_axpy_f(float a, float x, float y) {
  return fmaf(a, x, y);  // finding: C spelling
}

// Allowed: separate multiply + add (two roundings, bit-identical across
// ISAs by construction).
double fixture_mul_add(double a, double x, double y) { return a * x + y; }
