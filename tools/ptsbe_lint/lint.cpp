#include "lint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <tuple>

namespace ptsbe::lint {

namespace {

namespace fs = std::filesystem;

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.size() >= prefix.size() &&
         path.compare(0, prefix.size(), prefix) == 0;
}

bool matches_any(const std::string& path,
                 const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes)
    if (has_prefix(path, prefix)) return true;
  return false;
}

bool is_cpp_source(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"})
    if (path.size() > std::strlen(ext) &&
        path.compare(path.size() - std::strlen(ext), std::string::npos, ext) ==
            0)
      return true;
  return false;
}

/// Public module-boundary header: lives under an include/ directory.
bool is_public_header(const std::string& path) {
  return path.find("/include/") != std::string::npos &&
         path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

/// Apply `re` to the stripped text, emitting one finding per match.
void find_all(const std::string& stripped, const std::regex& re,
              const std::string& check, const std::string& rel_path,
              const std::string& message, std::vector<Finding>& out) {
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it) {
    out.push_back(Finding{check, rel_path,
                          line_of(stripped, static_cast<std::size_t>(
                                                it->position())),
                          message});
  }
}

// -- Check 1: nondeterministic randomness -----------------------------------

void check_unseeded_rng(const std::string& rel_path,
                        const std::string& stripped,
                        std::vector<Finding>& out) {
  static const std::regex kRandomDevice(R"(std\s*::\s*random_device)");
  static const std::regex kCRand(R"((^|\W)s?rand\s*\()");
  static const std::regex kDefaultEngine(
      R"(std\s*::\s*(mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux(24|48)(_base)?)\s+\w+\s*(;|\{\s*\}))");
  find_all(stripped, kRandomDevice, "unseeded-rng", rel_path,
           "std::random_device is nondeterministic entropy; derive bits from "
           "the seeded Philox streams (ptsbe/common/rng.hpp) instead",
           out);
  find_all(stripped, kCRand, "unseeded-rng", rel_path,
           "rand()/srand() is global-state C randomness; derive bits from "
           "the seeded Philox streams (ptsbe/common/rng.hpp) instead",
           out);
  find_all(stripped, kDefaultEngine, "unseeded-rng", rel_path,
           "default-constructed standard RNG engine (unseeded); every engine "
           "must be constructed from an explicit seed",
           out);
}

// -- Check 2: unordered iteration feeding serialized bytes ------------------

void check_unordered_iteration(const std::string& rel_path,
                               const std::string& stripped,
                               std::vector<Finding>& out) {
  // Names declared (as member, local, parameter or function returning a
  // reference) with an unordered container type in this TU.
  static const std::regex kDecl(
      R"(std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>[&\s]*(\w+))");
  std::vector<std::string> names;
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kDecl);
       it != std::sregex_iterator(); ++it)
    names.push_back((*it)[1].str());

  // Range-fors whose range expression names an unordered container (or
  // anything spelled unordered_*).
  static const std::regex kRangeFor(R"(for\s*\(([^;)]*):([^)]*)\))");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kRangeFor);
       it != std::sregex_iterator(); ++it) {
    const std::string range = (*it)[2].str();
    bool hit = range.find("unordered") != std::string::npos;
    for (const std::string& name : names) {
      if (hit) break;
      const std::regex word("\\b" + name + "\\b");
      hit = std::regex_search(range, word);
    }
    if (hit)
      out.push_back(Finding{
          "unordered-iteration", rel_path,
          line_of(stripped, static_cast<std::size_t>(it->position())),
          "iteration over an unordered container in a serialization TU: "
          "iteration order is implementation-defined and would leak into "
          "serialized bytes; iterate a sorted view (std::map / sorted "
          "vector) instead"});
  }
}

// -- Check 3: FMA in kernel TUs ---------------------------------------------

void check_fma_in_kernel(const std::string& rel_path,
                         const std::string& stripped,
                         std::vector<Finding>& out) {
  static const std::regex kFma(
      R"((std\s*::\s*fmaf?|(^|[^\w])fmaf?\s*\(|__builtin_fmaf?|_mm\w*_f[n]?m(add|sub)\w*\s*\())");
  find_all(stripped, kFma, "fma-in-kernel-tu", rel_path,
           "fused multiply-add in a kernel TU breaks the cross-ISA "
           "bit-identity contract (one rounding instead of two); use "
           "separate mul+add, and keep -ffp-contract=off",
           out);
}

// -- Check 4: self-contained public headers ---------------------------------

struct SymbolRule {
  const char* pattern;  ///< Regex over stripped header text.
  const char* include;  ///< Required direct #include <...> (or "...").
};

/// Conservative symbol → header map: only symbols whose home header is
/// unambiguous, so a match is always actionable.
const SymbolRule kSymbolRules[] = {
    {R"(std\s*::\s*string\b(?!_view))", "string"},
    {R"(std\s*::\s*string_view\b)", "string_view"},
    {R"(std\s*::\s*vector\b)", "vector"},
    {R"(std\s*::\s*array\b)", "array"},
    {R"(std\s*::\s*map\b)", "map"},
    {R"(std\s*::\s*unordered_map\b)", "unordered_map"},
    {R"(std\s*::\s*unordered_set\b)", "unordered_set"},
    {R"(std\s*::\s*deque\b)", "deque"},
    {R"(std\s*::\s*list\b)", "list"},
    {R"(std\s*::\s*span\b)", "span"},
    {R"(std\s*::\s*optional\b)", "optional"},
    {R"(std\s*::\s*complex\b)", "complex"},
    {R"(std\s*::\s*(mutex|lock_guard|unique_lock|scoped_lock)\b)", "mutex"},
    {R"(std\s*::\s*condition_variable\b)", "condition_variable"},
    {R"(std\s*::\s*thread\b)", "thread"},
    {R"(std\s*::\s*atomic\b)", "atomic"},
    {R"(std\s*::\s*function\b)", "functional"},
    {R"(std\s*::\s*(shared_ptr|unique_ptr|weak_ptr|make_shared|make_unique|enable_shared_from_this)\b)",
     "memory"},
    {R"(std\s*::\s*(exception_ptr|current_exception|rethrow_exception)\b)",
     "exception"},
    {R"(std\s*::\s*(size_t|ptrdiff_t|byte)\b)", "cstddef"},
    {R"(std\s*::\s*u?int(8|16|32|64)_t\b)", "cstdint"},
};

/// Project macros/types a header may only use after including their home
/// header directly (module-boundary IWYU for our own layers).
const SymbolRule kProjectRules[] = {
    {R"(\b(PTSBE_GUARDED_BY|PTSBE_REQUIRES|PTSBE_EXCLUDES|PTSBE_CAPABILITY|PTSBE_ACQUIRE|PTSBE_RELEASE|ptsbe\s*::\s*Mutex\b|\bMutexLock\b))",
     "ptsbe/common/thread_annotations.hpp"},
    {R"(\bPTSBE_(REQUIRE|ASSERT)\b)", "ptsbe/common/error.hpp"},
};

bool includes_directly(const std::string& stripped, const std::string& header) {
  const std::regex inc("#\\s*include\\s*[<\"]" +
                       std::regex_replace(header, std::regex("[./]"), "\\$&") +
                       "[>\"]");
  return std::regex_search(stripped, inc);
}

void check_header_self_contained(const std::string& rel_path,
                                 const std::string& raw,
                                 const std::string& stripped,
                                 std::vector<Finding>& out) {
  // `raw` (not stripped) for pragma once: it must exist at all.
  if (raw.find("#pragma once") == std::string::npos)
    out.push_back(Finding{"header-missing-pragma-once", rel_path, 1,
                          "public header lacks #pragma once"});

  const auto apply = [&](const SymbolRule& rule, const char* what) {
    const std::regex sym(rule.pattern);
    std::smatch m;
    if (!std::regex_search(stripped, m, sym)) return;
    // The home header itself trivially "uses" its own symbols.
    if (rel_path.find(rule.include) != std::string::npos) return;
    // Match includes against the raw text: the stripper blanks the path
    // inside `#include "..."` (it is a string literal).
    if (includes_directly(raw, rule.include)) return;
    out.push_back(Finding{
        "header-self-contained", rel_path,
        line_of(stripped, static_cast<std::size_t>(m.position())),
        std::string("header uses ") + what + " '" + m.str() +
            "' without directly including <" + rule.include +
            ">; module-boundary headers must compile standalone"});
  };
  for (const SymbolRule& rule : kSymbolRules) apply(rule, "std symbol");
  for (const SymbolRule& rule : kProjectRules) apply(rule, "project symbol");
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw strings: skip to the closing delimiter wholesale.
          if (i > 0 && out[i - 1] == 'R') {
            const std::size_t open = out.find('(', i);
            if (open != std::string::npos) {
              const std::string delim =
                  ")" + out.substr(i + 1, open - i - 1) + "\"";
              const std::size_t close = out.find(delim, open);
              const std::size_t end = close == std::string::npos
                                          ? out.size()
                                          : close + delim.size();
              for (std::size_t j = i; j < end; ++j)
                if (out[j] != '\n') out[j] = ' ';
              i = end - 1;
              break;
            }
          }
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> lint_source(const std::string& rel_path,
                                 const std::string& text,
                                 const LintConfig& config) {
  std::vector<Finding> out;
  if (!is_cpp_source(rel_path)) return out;
  const std::string stripped = strip_comments_and_strings(text);

  if (!matches_any(rel_path, config.rng_allowlist))
    check_unseeded_rng(rel_path, stripped, out);
  if (matches_any(rel_path, config.serialization_tus))
    check_unordered_iteration(rel_path, stripped, out);
  if (matches_any(rel_path, config.kernel_tus))
    check_fma_in_kernel(rel_path, stripped, out);
  if (is_public_header(rel_path))
    check_header_self_contained(rel_path, text, stripped, out);
  return out;
}

std::vector<Finding> lint_kernel_cmake(const std::string& rel_path,
                                       const std::string& text) {
  std::vector<Finding> out;
  if (text.find("-ffp-contract=off") == std::string::npos)
    out.push_back(Finding{
        "kernel-cmake-flags", rel_path, 1,
        "kernel CMake stanza lost -ffp-contract=off; without it the "
        "compiler may contract mul+add into FMA and break cross-ISA "
        "bit-identity"});
  return out;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const LintConfig& config) {
  std::vector<Finding> out;
  const fs::path base(root);
  for (const std::string& scan_root : config.scan_roots) {
    const fs::path dir = base / scan_root;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string rel = fs::relative(entry.path(), base).generic_string();
      bool excluded = false;
      for (const std::string& sub : config.exclude_substrings)
        if (("/" + rel).find(sub) != std::string::npos) excluded = true;
      if (excluded) continue;
      const std::vector<Finding> found =
          lint_source(rel, read_file(entry.path()), config);
      out.insert(out.end(), found.begin(), found.end());
    }
  }
  const fs::path kernel_cmake = base / config.kernel_cmake;
  if (fs::exists(kernel_cmake)) {
    const std::vector<Finding> found =
        lint_kernel_cmake(config.kernel_cmake, read_file(kernel_cmake));
    out.insert(out.end(), found.begin(), found.end());
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.check) <
           std::tie(b.file, b.line, b.check);
  });
  return out;
}

namespace {

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        else
          os << c;
    }
  }
  os << '"';
}

}  // namespace

std::string report_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\"tool\": \"ptsbe-lint\", \"version\": 1, \"count\": "
     << findings.size() << ", \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) os << ", ";
    first = false;
    os << "{\"check\": ";
    append_json_string(os, f.check);
    os << ", \"file\": ";
    append_json_string(os, f.file);
    os << ", \"line\": " << f.line << ", \"message\": ";
    append_json_string(os, f.message);
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace ptsbe::lint
