/// \file main.cpp
/// \brief CLI wrapper for ptsbe-lint (see lint.hpp for the rules).
///
/// Usage:
///   ptsbe_lint [--root DIR] [--report FILE] [--quiet]
///
/// Scans the repository at --root (default: current directory), prints each
/// finding as `file:line: [check] message`, optionally writes the JSON
/// report to --report, and exits 1 when any finding exists — which is what
/// makes the CI `static-analysis` job fail on new violations.

#include <fstream>
#include <iostream>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ptsbe_lint [--root DIR] [--report FILE] [--quiet]\n"
                   "Checks the ptsbe project invariants (determinism of "
                   "randomness and\nserialization, kernel bit-identity, "
                   "self-contained public headers).\nExits 1 when any "
                   "finding exists.\n";
      return 0;
    } else {
      std::cerr << "ptsbe_lint: unknown argument '" << arg
                << "' (try --help)\n";
      return 2;
    }
  }

  const ptsbe::lint::LintConfig config;
  const std::vector<ptsbe::lint::Finding> findings =
      ptsbe::lint::lint_tree(root, config);

  if (!quiet) {
    for (const ptsbe::lint::Finding& f : findings)
      std::cout << f.file << ':' << f.line << ": [" << f.check << "] "
                << f.message << '\n';
    std::cout << "ptsbe-lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << '\n';
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "ptsbe_lint: cannot write report to '" << report_path
                << "'\n";
      return 2;
    }
    out << ptsbe::lint::report_json(findings) << '\n';
  }
  return findings.empty() ? 0 : 1;
}
