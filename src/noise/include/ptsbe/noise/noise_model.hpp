#pragma once

/// \file noise_model.hpp
/// \brief Binding noise channels to circuits; the noisy-program view.
///
/// A `NoiseModel` holds rules ("after every `cx`, depolarize both targets…")
/// and `NoiseModel::apply` expands a coherent `Circuit` into a
/// `NoisyCircuit`: the coherent skeleton plus an ordered list of *noise
/// sites*. A noise site is one concrete location where a channel's Kraus
/// branch must be chosen — precisely the objects the paper's Fig. 2
/// partitions and Algorithm 2 samples over. A full assignment of one branch
/// per site is a *trajectory*.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/noise/kraus.hpp"

namespace ptsbe {

/// One concrete noise-injection location in an expanded noisy program.
struct NoiseSite {
  /// Dense site index (position in NoisyCircuit::sites()).
  std::size_t index = 0;
  /// The channel fires immediately after circuit op `after_op`
  /// (kBeforeCircuit for state-preparation noise).
  std::size_t after_op = 0;
  /// Qubits the channel acts on (size == channel->arity()).
  std::vector<unsigned> qubits;
  /// The noise channel at this site.
  ChannelPtr channel;

  /// Sentinel: the site precedes every circuit operation.
  static constexpr std::size_t kBeforeCircuit =
      std::numeric_limits<std::size_t>::max();
};

/// A coherent circuit together with its expanded noise sites, in program
/// order. This is the object both the baseline trajectory simulator
/// (Algorithm 1) and the PTS samplers (Algorithm 2) consume.
class NoisyCircuit {
 public:
  NoisyCircuit(Circuit circuit, std::vector<NoiseSite> sites);

  [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }
  [[nodiscard]] const std::vector<NoiseSite>& sites() const noexcept {
    return sites_;
  }
  [[nodiscard]] std::size_t num_sites() const noexcept { return sites_.size(); }
  [[nodiscard]] unsigned num_qubits() const noexcept {
    return circuit_.num_qubits();
  }

  /// Site indices whose channel fires directly after circuit op `op_index`
  /// (or before the circuit for kBeforeCircuit). Sites are pre-bucketed so
  /// execution is O(1) per op.
  [[nodiscard]] const std::vector<std::size_t>& sites_after(
      std::size_t op_index) const;

  /// Joint *nominal* probability of a full branch assignment
  /// (one branch index per site). Exact when every channel is a unitary
  /// mixture. `branches.size()` must equal num_sites().
  [[nodiscard]] double nominal_trajectory_probability(
      std::span<const std::size_t> branches) const;

  /// Joint nominal probability of a *sparse* assignment: listed sites take
  /// the listed branch; every other site takes its channel's default branch
  /// (identity when one exists, else the most likely branch).
  [[nodiscard]] double nominal_sparse_probability(
      std::span<const std::pair<std::size_t, std::size_t>> site_branches) const;

  /// True if every channel in the program is a unitary mixture (so nominal
  /// probabilities are exact trajectory probabilities).
  [[nodiscard]] bool all_unitary_mixture() const noexcept {
    return all_unitary_mixture_;
  }

 private:
  Circuit circuit_;
  std::vector<NoiseSite> sites_;
  std::vector<std::vector<std::size_t>> sites_after_op_;  // [op_index+1]
  std::vector<std::size_t> pre_sites_;
  bool all_unitary_mixture_ = true;
};

/// Declarative noise-binding rules.
class NoiseModel {
 public:
  /// After every gate named `gate_name`: a 1-qubit channel is attached to
  /// each target qubit; a 2-qubit channel requires a 2-qubit gate and is
  /// attached to the target pair.
  NoiseModel& add_gate_noise(std::string gate_name, ChannelPtr channel);

  /// Same as add_gate_noise but only when the gate's target set equals
  /// `qubits` exactly (order-insensitive).
  NoiseModel& add_gate_noise_on(std::string gate_name,
                                std::vector<unsigned> qubits,
                                ChannelPtr channel);

  /// After *every* gate (any name): 1-qubit channels attach per target;
  /// 2-qubit channels attach to 2-qubit gates only.
  NoiseModel& add_all_gate_noise(ChannelPtr channel);

  /// Before each measurement op, on the measured qubit (readout error model).
  NoiseModel& add_measurement_noise(ChannelPtr channel);

  /// Before the circuit begins, one site per qubit (state-prep error model).
  NoiseModel& add_state_prep_noise(ChannelPtr channel);

  /// Expand `circuit` into its noisy program under these rules.
  [[nodiscard]] NoisyCircuit apply(const Circuit& circuit) const;

  /// True when no rules were added.
  [[nodiscard]] bool empty() const noexcept;

 private:
  struct GateRule {
    std::string gate_name;          // empty = any gate
    std::vector<unsigned> qubits;   // empty = any targets
    ChannelPtr channel;
  };
  std::vector<GateRule> gate_rules_;
  std::vector<ChannelPtr> measurement_rules_;
  std::vector<ChannelPtr> state_prep_rules_;
};

}  // namespace ptsbe
