#pragma once

/// \file channels.hpp
/// \brief Factory functions for standard noise channels.
///
/// All factories return shared immutable `KrausChannel` handles. Pauli-type
/// channels are unitary mixtures (state-independent branch probabilities);
/// the damping channels are genuinely non-unitary and exercise the
/// state-dependent general-Kraus path of both the baseline trajectory
/// simulator and PTSBE.

#include "ptsbe/noise/kraus.hpp"

namespace ptsbe::channels {

/// Single-qubit depolarizing channel: with probability p, apply one of
/// X, Y, Z uniformly. Unitary mixture. Precondition: 0 <= p <= 1.
ChannelPtr depolarizing(double p);

/// Two-qubit depolarizing channel: with probability p, apply one of the 15
/// non-identity two-qubit Paulis uniformly. Unitary mixture.
ChannelPtr depolarizing2(double p);

/// Bit-flip channel: X with probability p. Unitary mixture.
ChannelPtr bit_flip(double p);

/// Phase-flip channel: Z with probability p. Unitary mixture.
ChannelPtr phase_flip(double p);

/// Bit-phase-flip channel: Y with probability p. Unitary mixture.
ChannelPtr bit_phase_flip(double p);

/// General Pauli channel with probabilities (px, py, pz); identity gets the
/// remainder. Unitary mixture. Precondition: px+py+pz <= 1, all >= 0.
ChannelPtr pauli_channel(double px, double py, double pz);

/// Amplitude damping with decay probability gamma. *Not* a unitary mixture.
ChannelPtr amplitude_damping(double gamma);

/// Phase damping with dephasing probability lambda. *Not* a unitary mixture
/// in this Kraus presentation (K1 is a projector).
ChannelPtr phase_damping(double lambda);

/// Correlated two-qubit Pauli channel: with probability p apply X⊗X, with
/// probability p apply Z⊗Z, else identity. Models spatially correlated noise
/// (the PTS tailoring target in the paper's bullet list). Precondition:
/// 2p <= 1.
ChannelPtr correlated_xx_zz(double p);

/// Thermal relaxation over gate time `t` with relaxation time T1 and
/// dephasing time T2 (T2 ≤ 2·T1): the composition of amplitude damping
/// γ = 1 − e^{−t/T1} and pure dephasing chosen so the total off-diagonal
/// decay is e^{−t/T2}. *Not* a unitary mixture — the realistic
/// general-Kraus workhorse. Preconditions: t, T1, T2 > 0, T2 <= 2*T1.
ChannelPtr thermal_relaxation(double t, double t1, double t2);

/// Coherent over-rotation channel: with probability p the gate is followed
/// by an extra RX(theta) (miscalibration burst); identity otherwise. A
/// unitary mixture whose error branch is NOT a Pauli — inside PTSBE's scope
/// but outside the Clifford/Pauli-frame fragment.
ChannelPtr coherent_overrotation(double p, double theta);

}  // namespace ptsbe::channels
