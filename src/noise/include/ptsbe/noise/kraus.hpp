#pragma once

/// \file kraus.hpp
/// \brief Kraus-operator representation of quantum noise channels.
///
/// A `KrausChannel` is a CPTP map given by operators {K_i} with
/// Σ K_i†K_i = I. On construction the channel is verified CPTP and analysed
/// for the *unitary-mixture* property the paper's §2.2 (feature 2) exploits:
/// if every K_i = √p_i·U_i with U_i unitary, branch probabilities are
/// state-independent (p_i), so PTS can sample branches exactly offline. For
/// general channels the realised probability ⟨ψ|K_i†K_i|ψ⟩ depends on the
/// state; PTS then samples by *nominal* probability (the probability under a
/// maximally mixed input, tr(K_i†K_i)/d) and Batched Execution records the
/// realised probability as importance metadata.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe {

/// A completely-positive trace-preserving noise channel in Kraus form.
class KrausChannel {
 public:
  /// Construct and validate a channel.
  ///
  /// \param name       Mnemonic used in provenance metadata ("depolarizing"…).
  /// \param kraus_ops  Non-empty set of d×d Kraus matrices, equal dims,
  ///                   d = 2^arity; must satisfy CPTP within `tol`.
  /// \throws precondition_error on malformed input.
  KrausChannel(std::string name, std::vector<Matrix> kraus_ops,
               double tol = 1e-9);

  /// Channel mnemonic.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Number of Kraus branches.
  [[nodiscard]] std::size_t num_branches() const noexcept {
    return kraus_.size();
  }

  /// Number of qubits the channel acts on (1 or 2 in this library).
  [[nodiscard]] unsigned arity() const noexcept { return arity_; }

  /// The i-th Kraus operator.
  [[nodiscard]] const Matrix& kraus(std::size_t i) const { return kraus_.at(i); }

  /// All Kraus operators.
  [[nodiscard]] const std::vector<Matrix>& kraus_ops() const noexcept {
    return kraus_;
  }

  /// True when every Kraus operator is a scaled unitary (unitary mixture).
  [[nodiscard]] bool is_unitary_mixture() const noexcept {
    return unitary_mixture_;
  }

  /// Branch probabilities. Exact (state-independent) for unitary mixtures;
  /// nominal (maximally-mixed-input) otherwise. Sums to 1.
  [[nodiscard]] const std::vector<double>& nominal_probabilities() const noexcept {
    return nominal_prob_;
  }

  /// For unitary mixtures: branch i's unitary U_i (K_i = √p_i·U_i).
  /// Precondition: is_unitary_mixture().
  [[nodiscard]] const Matrix& unitary(std::size_t i) const;

  /// Index of the identity-like branch (the "no error" branch: the branch
  /// whose unitary is proportional to I), or -1 if none. Used by PTS
  /// algorithms that enumerate error combinations: sites resting in their
  /// identity branch contribute no error.
  [[nodiscard]] int identity_branch() const noexcept { return identity_branch_; }

  /// The branch a site takes when PTS does not list it in a sparse
  /// trajectory specification: the identity branch when one exists,
  /// otherwise the highest-nominal-probability branch (e.g. amplitude
  /// damping's no-decay K₀, which is not proportional to I).
  [[nodiscard]] std::size_t default_branch() const noexcept {
    return default_branch_;
  }

 private:
  std::string name_;
  std::vector<Matrix> kraus_;
  unsigned arity_ = 1;
  bool unitary_mixture_ = false;
  std::vector<double> nominal_prob_;
  std::vector<Matrix> unitaries_;
  int identity_branch_ = -1;
  std::size_t default_branch_ = 0;
};

/// Shared immutable channel handle (channels are referenced by many sites).
using ChannelPtr = std::shared_ptr<const KrausChannel>;

}  // namespace ptsbe
