#include "ptsbe/noise/channels.hpp"

#include <cmath>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe::channels {

namespace {

Matrix scaled(const Matrix& m, double weight) {
  Matrix out = m;
  out *= cplx{std::sqrt(weight), 0.0};
  return out;
}

}  // namespace

ChannelPtr depolarizing(double p) {
  PTSBE_REQUIRE(p >= 0.0 && p <= 1.0, "depolarizing probability out of range");
  std::vector<Matrix> ops;
  if (p < 1.0) ops.push_back(scaled(gates::I(), 1.0 - p));
  if (p > 0.0) {
    ops.push_back(scaled(gates::X(), p / 3.0));
    ops.push_back(scaled(gates::Y(), p / 3.0));
    ops.push_back(scaled(gates::Z(), p / 3.0));
  }
  return std::make_shared<KrausChannel>("depolarizing", std::move(ops));
}

ChannelPtr depolarizing2(double p) {
  PTSBE_REQUIRE(p >= 0.0 && p <= 1.0, "depolarizing2 probability out of range");
  std::vector<Matrix> ops;
  ops.reserve(16);
  for (unsigned a = 0; a < 4; ++a)
    for (unsigned b = 0; b < 4; ++b) {
      const double w = (a == 0 && b == 0) ? 1.0 - p : p / 15.0;
      if (w > 0.0)
        ops.push_back(scaled(kron(gates::pauli(b), gates::pauli(a)), w));
    }
  return std::make_shared<KrausChannel>("depolarizing2", std::move(ops));
}

ChannelPtr bit_flip(double p) {
  PTSBE_REQUIRE(p >= 0.0 && p <= 1.0, "bit_flip probability out of range");
  std::vector<Matrix> ops;
  if (p < 1.0) ops.push_back(scaled(gates::I(), 1.0 - p));
  if (p > 0.0) ops.push_back(scaled(gates::X(), p));
  return std::make_shared<KrausChannel>("bit_flip", std::move(ops));
}

ChannelPtr phase_flip(double p) {
  PTSBE_REQUIRE(p >= 0.0 && p <= 1.0, "phase_flip probability out of range");
  std::vector<Matrix> ops;
  if (p < 1.0) ops.push_back(scaled(gates::I(), 1.0 - p));
  if (p > 0.0) ops.push_back(scaled(gates::Z(), p));
  return std::make_shared<KrausChannel>("phase_flip", std::move(ops));
}

ChannelPtr bit_phase_flip(double p) {
  PTSBE_REQUIRE(p >= 0.0 && p <= 1.0, "bit_phase_flip probability out of range");
  std::vector<Matrix> ops;
  if (p < 1.0) ops.push_back(scaled(gates::I(), 1.0 - p));
  if (p > 0.0) ops.push_back(scaled(gates::Y(), p));
  return std::make_shared<KrausChannel>("bit_phase_flip", std::move(ops));
}

ChannelPtr pauli_channel(double px, double py, double pz) {
  PTSBE_REQUIRE(px >= 0.0 && py >= 0.0 && pz >= 0.0 && px + py + pz <= 1.0,
                "pauli_channel probabilities out of range");
  std::vector<Matrix> ops;
  if (px + py + pz < 1.0)
    ops.push_back(scaled(gates::I(), 1.0 - px - py - pz));
  if (px > 0.0) ops.push_back(scaled(gates::X(), px));
  if (py > 0.0) ops.push_back(scaled(gates::Y(), py));
  if (pz > 0.0) ops.push_back(scaled(gates::Z(), pz));
  return std::make_shared<KrausChannel>("pauli_channel", std::move(ops));
}

ChannelPtr amplitude_damping(double gamma) {
  PTSBE_REQUIRE(gamma >= 0.0 && gamma <= 1.0,
                "amplitude_damping gamma out of range");
  std::vector<Matrix> ops;
  ops.push_back(Matrix(2, 2, {1, 0, 0, std::sqrt(1.0 - gamma)}));
  if (gamma > 0.0) ops.push_back(Matrix(2, 2, {0, std::sqrt(gamma), 0, 0}));
  return std::make_shared<KrausChannel>("amplitude_damping", std::move(ops));
}

ChannelPtr phase_damping(double lambda) {
  PTSBE_REQUIRE(lambda >= 0.0 && lambda <= 1.0,
                "phase_damping lambda out of range");
  std::vector<Matrix> ops;
  ops.push_back(Matrix(2, 2, {1, 0, 0, std::sqrt(1.0 - lambda)}));
  if (lambda > 0.0) ops.push_back(Matrix(2, 2, {0, 0, 0, std::sqrt(lambda)}));
  return std::make_shared<KrausChannel>("phase_damping", std::move(ops));
}

ChannelPtr correlated_xx_zz(double p) {
  PTSBE_REQUIRE(p >= 0.0 && 2.0 * p <= 1.0,
                "correlated_xx_zz probability out of range");
  std::vector<Matrix> ops;
  if (2.0 * p < 1.0) ops.push_back(scaled(Matrix::identity(4), 1.0 - 2.0 * p));
  if (p > 0.0) {
    ops.push_back(scaled(kron(gates::X(), gates::X()), p));
    ops.push_back(scaled(kron(gates::Z(), gates::Z()), p));
  }
  return std::make_shared<KrausChannel>("correlated_xx_zz", std::move(ops));
}

ChannelPtr thermal_relaxation(double t, double t1, double t2) {
  PTSBE_REQUIRE(t > 0.0 && t1 > 0.0 && t2 > 0.0,
                "thermal_relaxation times must be positive");
  PTSBE_REQUIRE(t2 <= 2.0 * t1 + 1e-12,
                "thermal_relaxation requires T2 <= 2*T1");
  const double gamma = 1.0 - std::exp(-t / t1);
  // sqrt(1-gamma)*sqrt(1-lambda) = e^{-t/T2}  ⇒  solve for lambda.
  const double residual = std::exp(-t / t2) / std::exp(-t / (2.0 * t1));
  const double lambda = std::max(0.0, 1.0 - residual * residual);
  // Kraus product of amplitude damping {A0, A1} and phase damping {P0, P1}.
  std::vector<Matrix> ad;
  ad.push_back(Matrix(2, 2, {1, 0, 0, std::sqrt(1.0 - gamma)}));
  if (gamma > 0.0) ad.push_back(Matrix(2, 2, {0, std::sqrt(gamma), 0, 0}));
  std::vector<Matrix> pd;
  pd.push_back(Matrix(2, 2, {1, 0, 0, std::sqrt(1.0 - lambda)}));
  if (lambda > 0.0) pd.push_back(Matrix(2, 2, {0, 0, 0, std::sqrt(lambda)}));
  std::vector<Matrix> ops;
  for (const Matrix& a : ad)
    for (const Matrix& p : pd) {
      Matrix k = a * p;
      if (k.frobenius_norm() > 1e-12) ops.push_back(std::move(k));
    }
  return std::make_shared<KrausChannel>("thermal_relaxation", std::move(ops));
}

ChannelPtr coherent_overrotation(double p, double theta) {
  PTSBE_REQUIRE(p >= 0.0 && p <= 1.0,
                "coherent_overrotation probability out of range");
  std::vector<Matrix> ops;
  if (p < 1.0) ops.push_back(scaled(gates::I(), 1.0 - p));
  if (p > 0.0) ops.push_back(scaled(gates::RX(theta), p));
  return std::make_shared<KrausChannel>("coherent_overrotation", std::move(ops));
}

}  // namespace ptsbe::channels
