#include "ptsbe/noise/noise_model.hpp"

#include <algorithm>
#include <set>

#include "ptsbe/common/error.hpp"

namespace ptsbe {

NoisyCircuit::NoisyCircuit(Circuit circuit, std::vector<NoiseSite> sites)
    : circuit_(std::move(circuit)), sites_(std::move(sites)) {
  sites_after_op_.resize(circuit_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    NoiseSite& s = sites_[i];
    s.index = i;
    PTSBE_REQUIRE(s.channel != nullptr, "noise site without a channel");
    PTSBE_REQUIRE(s.qubits.size() == s.channel->arity(),
                  "noise site qubit count must match channel arity");
    for (unsigned q : s.qubits)
      PTSBE_REQUIRE(q < circuit_.num_qubits(), "noise site qubit out of range");
    // Aliased targets would make the backend kernels read amplitudes they
    // already overwrote (apply_matrix2 with q==q) — the same distinctness
    // contract Circuit enforces for gates.
    PTSBE_REQUIRE(std::set<unsigned>(s.qubits.begin(), s.qubits.end()).size() ==
                      s.qubits.size(),
                  "noise site target qubits must be distinct");
    if (s.after_op == NoiseSite::kBeforeCircuit) {
      pre_sites_.push_back(i);
    } else {
      PTSBE_REQUIRE(s.after_op < circuit_.size(),
                    "noise site after_op out of range");
      sites_after_op_[s.after_op].push_back(i);
    }
    if (!s.channel->is_unitary_mixture()) all_unitary_mixture_ = false;
  }
}

const std::vector<std::size_t>& NoisyCircuit::sites_after(
    std::size_t op_index) const {
  if (op_index == NoiseSite::kBeforeCircuit) return pre_sites_;
  PTSBE_REQUIRE(op_index < sites_after_op_.size(), "op index out of range");
  return sites_after_op_[op_index];
}

double NoisyCircuit::nominal_trajectory_probability(
    std::span<const std::size_t> branches) const {
  PTSBE_REQUIRE(branches.size() == sites_.size(),
                "branch assignment must cover every site");
  double p = 1.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const auto& probs = sites_[i].channel->nominal_probabilities();
    PTSBE_REQUIRE(branches[i] < probs.size(), "branch index out of range");
    p *= probs[branches[i]];
  }
  return p;
}

double NoisyCircuit::nominal_sparse_probability(
    std::span<const std::pair<std::size_t, std::size_t>> site_branches) const {
  std::vector<bool> listed(sites_.size(), false);
  double p = 1.0;
  for (const auto& [site, branch] : site_branches) {
    PTSBE_REQUIRE(site < sites_.size(), "site index out of range");
    PTSBE_REQUIRE(!listed[site], "duplicate site in sparse assignment");
    listed[site] = true;
    const auto& probs = sites_[site].channel->nominal_probabilities();
    PTSBE_REQUIRE(branch < probs.size(), "branch index out of range");
    p *= probs[branch];
  }
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (listed[i]) continue;
    p *= sites_[i].channel->nominal_probabilities()[sites_[i].channel->default_branch()];
  }
  return p;
}

NoiseModel& NoiseModel::add_gate_noise(std::string gate_name, ChannelPtr channel) {
  PTSBE_REQUIRE(channel != nullptr, "null channel");
  gate_rules_.push_back({std::move(gate_name), {}, std::move(channel)});
  return *this;
}

NoiseModel& NoiseModel::add_gate_noise_on(std::string gate_name,
                                          std::vector<unsigned> qubits,
                                          ChannelPtr channel) {
  PTSBE_REQUIRE(channel != nullptr, "null channel");
  PTSBE_REQUIRE(!qubits.empty(), "qubit filter must be non-empty");
  gate_rules_.push_back({std::move(gate_name), std::move(qubits), std::move(channel)});
  return *this;
}

NoiseModel& NoiseModel::add_all_gate_noise(ChannelPtr channel) {
  PTSBE_REQUIRE(channel != nullptr, "null channel");
  gate_rules_.push_back({std::string{}, {}, std::move(channel)});
  return *this;
}

NoiseModel& NoiseModel::add_measurement_noise(ChannelPtr channel) {
  PTSBE_REQUIRE(channel != nullptr, "null channel");
  PTSBE_REQUIRE(channel->arity() == 1, "measurement noise must be single-qubit");
  measurement_rules_.push_back(std::move(channel));
  return *this;
}

NoiseModel& NoiseModel::add_state_prep_noise(ChannelPtr channel) {
  PTSBE_REQUIRE(channel != nullptr, "null channel");
  PTSBE_REQUIRE(channel->arity() == 1, "state-prep noise must be single-qubit");
  state_prep_rules_.push_back(std::move(channel));
  return *this;
}

bool NoiseModel::empty() const noexcept {
  return gate_rules_.empty() && measurement_rules_.empty() &&
         state_prep_rules_.empty();
}

NoisyCircuit NoiseModel::apply(const Circuit& circuit) const {
  std::vector<NoiseSite> sites;

  for (const ChannelPtr& ch : state_prep_rules_)
    for (unsigned q = 0; q < circuit.num_qubits(); ++q)
      sites.push_back({0, NoiseSite::kBeforeCircuit, {q}, ch});

  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (op.kind == OpKind::kMeasure) {
      // Readout noise fires just before the measurement. Attaching it
      // "after op i-1" would reorder against other ops, so we attach it
      // after the measurement op's own slot: samplers read measurement
      // outcomes from the final state, so pre-measure and post-slot are
      // equivalent for terminal measurements.
      for (const ChannelPtr& ch : measurement_rules_)
        sites.push_back({0, i, {op.qubits.front()}, ch});
      continue;
    }
    for (const GateRule& rule : gate_rules_) {
      if (!rule.gate_name.empty() && rule.gate_name != op.name) continue;
      if (!rule.qubits.empty()) {
        std::set<unsigned> want(rule.qubits.begin(), rule.qubits.end());
        std::set<unsigned> have(op.qubits.begin(), op.qubits.end());
        if (want != have) continue;
      }
      const unsigned arity = rule.channel->arity();
      if (arity == 1) {
        for (unsigned q : op.qubits) sites.push_back({0, i, {q}, rule.channel});
      } else if (arity == 2 && op.qubits.size() == 2) {
        sites.push_back({0, i, {op.qubits[0], op.qubits[1]}, rule.channel});
      }
      // 2-qubit channels silently skip non-2-qubit gates: a rule like
      // "correlated noise after every cx" should not fire on 1q gates.
    }
  }
  return NoisyCircuit(circuit, std::move(sites));
}

}  // namespace ptsbe
