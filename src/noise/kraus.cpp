#include "ptsbe/noise/kraus.hpp"

#include <cmath>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe {

KrausChannel::KrausChannel(std::string name, std::vector<Matrix> kraus_ops,
                           double tol)
    : name_(std::move(name)), kraus_(std::move(kraus_ops)) {
  PTSBE_REQUIRE(!kraus_.empty(), "channel needs at least one Kraus operator");
  const std::size_t dim = kraus_.front().rows();
  PTSBE_REQUIRE(dim >= 2 && (dim & (dim - 1)) == 0,
                "Kraus operator dimension must be a power of two >= 2");
  for (const Matrix& k : kraus_)
    PTSBE_REQUIRE(k.rows() == dim && k.cols() == dim,
                  "all Kraus operators must share one square dimension");
  PTSBE_REQUIRE(is_cptp_set(kraus_, tol),
                "Kraus set is not trace preserving (sum K^dag K != I)");
  unsigned a = 0;
  for (std::size_t d = dim; d > 1; d >>= 1) ++a;
  arity_ = a;

  // Nominal branch probabilities: p_i = tr(K_i^dag K_i) / dim. For scaled
  // unitaries this equals the exact state-independent probability.
  nominal_prob_.resize(kraus_.size());
  unitaries_.resize(kraus_.size());
  unitary_mixture_ = true;
  for (std::size_t i = 0; i < kraus_.size(); ++i) {
    const Matrix gram = kraus_[i].dagger() * kraus_[i];
    nominal_prob_[i] = gram.trace().real() / static_cast<double>(dim);
    double p = 0.0;
    Matrix u;
    if (as_scaled_unitary(kraus_[i], p, &u, tol)) {
      unitaries_[i] = std::move(u);
    } else {
      unitary_mixture_ = false;
    }
  }
  if (!unitary_mixture_) unitaries_.clear();

  // Locate the identity-like branch: unitary proportional to I (global phase
  // allowed). Checked on the unitary when available, else on the raw Kraus
  // operator normalised by its nominal probability.
  for (std::size_t i = 0; i < kraus_.size(); ++i) {
    const Matrix* candidate = nullptr;
    Matrix scratch;
    if (unitary_mixture_) {
      candidate = &unitaries_[i];
    } else if (nominal_prob_[i] > tol) {
      scratch = kraus_[i];
      scratch *= cplx{1.0 / std::sqrt(nominal_prob_[i]), 0.0};
      candidate = &scratch;
    }
    if (candidate == nullptr) continue;
    // Proportional to identity: off-diagonals ~0, diagonals equal.
    const Matrix& m = *candidate;
    bool identity_like = true;
    const cplx d0 = m(0, 0);
    for (std::size_t r = 0; r < m.rows() && identity_like; ++r)
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const cplx want = (r == c) ? d0 : cplx{0.0, 0.0};
        if (std::abs(m(r, c) - want) > 1e-8) {
          identity_like = false;
          break;
        }
      }
    if (identity_like && std::abs(std::abs(d0) - 1.0) < 1e-8) {
      identity_branch_ = static_cast<int>(i);
      break;
    }
  }

  if (identity_branch_ >= 0) {
    default_branch_ = static_cast<std::size_t>(identity_branch_);
  } else {
    std::size_t best = 0;
    for (std::size_t i = 1; i < nominal_prob_.size(); ++i)
      if (nominal_prob_[i] > nominal_prob_[best]) best = i;
    default_branch_ = best;
  }
}

const Matrix& KrausChannel::unitary(std::size_t i) const {
  PTSBE_REQUIRE(unitary_mixture_, "unitary() requires a unitary-mixture channel");
  return unitaries_.at(i);
}

}  // namespace ptsbe
