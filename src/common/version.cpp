#include "ptsbe/common/version.hpp"

namespace ptsbe {

const char* version() { return "0.1.0"; }

}  // namespace ptsbe
