#pragma once

/// \file rng.hpp
/// \brief RNG stream abstraction used throughout PTSBE.
///
/// A `RngStream` wraps the counter-based Philox generator and adds the
/// distribution helpers the simulators need (uniform doubles, categorical
/// index selection against a probability table, Gaussian pairs). Streams are
/// *splittable*: `substream(i)` returns an independent generator derived from
/// the same master seed, which is how each trajectory specification gets its
/// own reproducible randomness regardless of which worker executes it.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/philox.hpp"

namespace ptsbe {

/// Splittable random stream (Philox4x32-10 under the hood).
class RngStream {
 public:
  /// Master stream for `seed`, subsequence 0.
  explicit RngStream(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : seed_(seed), gen_(seed, 0) {}

  /// Stream for (seed, subsequence) coordinates.
  RngStream(std::uint64_t seed, std::uint64_t subsequence) noexcept
      : seed_(seed), gen_(seed, subsequence) {}

  /// Independent stream number `i` derived from the same master seed.
  /// Substream 0 is distinct from the master stream's own subsequence space
  /// because indices are offset by one.
  [[nodiscard]] RngStream substream(std::uint64_t i) const noexcept {
    return RngStream(seed_, i + 1);
  }

  /// Master seed this stream (and its substreams) derive from.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return gen_.next_double(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * gen_.next_double();
  }

  /// Uniform integer in [0, bound). bound == 0 yields 0.
  std::uint64_t uniform_index(std::uint64_t bound) noexcept {
    return gen_.next_below(bound);
  }

  /// Raw 64 random bits.
  std::uint64_t bits64() noexcept { return gen_.next_u64(); }

  /// Sample an index from an (unnormalised) non-negative weight table by
  /// inverse CDF. Returns weights.size()-1 if rounding pushes the draw past
  /// the last cumulative bin. Empty tables are a precondition violation.
  std::size_t categorical(std::span<const double> weights) {
    PTSBE_REQUIRE(!weights.empty(), "categorical() needs at least one weight");
    double total = 0.0;
    for (double w : weights) total += w;
    PTSBE_REQUIRE(total > 0.0, "categorical() weights must have positive sum");
    const double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// `count` sorted uniform draws in [0,1) — the input to the bulk
  /// inverse-CDF shot sampler. Uses the exponential-spacings method so the
  /// output is produced already sorted in O(count) time.
  [[nodiscard]] std::vector<double> sorted_uniforms(std::size_t count) {
    std::vector<double> out(count);
    // Spacings method: E_i ~ Exp(1); prefix sums normalised by the total of
    // count+1 exponentials are the order statistics of count uniforms.
    double acc = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      acc += exponential();
      out[i] = acc;
    }
    const double total = acc + exponential();
    for (double& v : out) v /= total;
    return out;
  }

  /// Standard exponential variate (rate 1).
  double exponential() noexcept {
    // -log(1 - u) with u in [0,1); 1-u in (0,1] avoids log(0).
    return -std::log(1.0 - gen_.next_double());
  }

  /// UniformRandomBitGenerator access for std:: distributions.
  Philox4x32& raw() noexcept { return gen_; }

 private:
  std::uint64_t seed_;
  Philox4x32 gen_;
};

}  // namespace ptsbe
