#pragma once

/// \file device_pool.hpp
/// \brief Simulated multi-device execution pool.
///
/// The paper distributes trajectory specifications over H100 GPUs on an Eos
/// SuperPod, both *inter*-trajectory (different specs on different devices —
/// embarrassingly parallel) and *intra*-trajectory (one state sliced across
/// devices). `DevicePool` models the inter-trajectory layer on CPU: each
/// "device" is a worker thread with a stable device id, and jobs are scheduled
/// dynamically (work stealing from a shared counter) so long trajectories do
/// not straggle the batch. Intra-trajectory parallelism lives inside the
/// backend kernels (OpenMP) and is configured independently.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/common/error.hpp"

namespace ptsbe {

/// Pool of simulated devices for inter-trajectory parallelism.
class DevicePool {
 public:
  /// Create a pool of `num_devices` simulated devices (>= 1).
  explicit DevicePool(std::size_t num_devices = 1)
      : num_devices_(num_devices == 0 ? 1 : num_devices) {}

  /// Number of simulated devices.
  [[nodiscard]] std::size_t num_devices() const noexcept { return num_devices_; }

  /// Execute `job(device_id, job_index)` for job_index in [0, num_jobs),
  /// dynamically load-balanced across devices. Blocks until all jobs finish.
  ///
  /// The first exception thrown by any job is captured and rethrown on the
  /// calling thread after all devices drain.
  void run_batch(std::size_t num_jobs,
                 const std::function<void(std::size_t device_id,
                                          std::size_t job_index)>& job) const {
    if (num_jobs == 0) return;
    if (num_devices_ == 1) {
      for (std::size_t i = 0; i < num_jobs; ++i) job(0, i);
      return;
    }
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> devices;
    devices.reserve(num_devices_);
    for (std::size_t d = 0; d < num_devices_; ++d) {
      devices.emplace_back([&, d] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= num_jobs) break;
          try {
            job(d, i);
          } catch (...) {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    for (auto& t : devices) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  std::size_t num_devices_;
};

}  // namespace ptsbe
