#pragma once

/// \file device_pool.hpp
/// \brief Simulated multi-device execution pool.
///
/// The paper distributes trajectory specifications over H100 GPUs on an Eos
/// SuperPod, both *inter*-trajectory (different specs on different devices —
/// embarrassingly parallel) and *intra*-trajectory (one state sliced across
/// devices). `DevicePool` models the inter-trajectory layer on CPU: each
/// "device" is a worker thread with a stable device id, and jobs are scheduled
/// dynamically (work stealing from a shared counter) so long trajectories do
/// not straggle the batch. Intra-trajectory parallelism lives inside the
/// backend kernels (OpenMP) and is configured independently.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/thread_annotations.hpp"

namespace ptsbe {

namespace detail {

/// First-error capture shared by a batch of device threads. Annotated as a
/// standalone type because thread-safety attributes attach to members, not
/// to locals inside `run_batch`.
class FirstError {
 public:
  /// Record `error` if no earlier job failed (first one wins).
  void record(std::exception_ptr error) PTSBE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!error_) error_ = std::move(error);
  }

  /// The captured error (null when every job succeeded). Call after the
  /// device threads are joined.
  [[nodiscard]] std::exception_ptr take() PTSBE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return std::move(error_);
  }

 private:
  Mutex mutex_;
  std::exception_ptr error_ PTSBE_GUARDED_BY(mutex_);
};

}  // namespace detail

/// Pool of simulated devices for inter-trajectory parallelism.
class DevicePool {
 public:
  /// Create a pool of `num_devices` simulated devices (>= 1).
  explicit DevicePool(std::size_t num_devices = 1)
      : num_devices_(num_devices == 0 ? 1 : num_devices) {}

  /// Number of simulated devices.
  [[nodiscard]] std::size_t num_devices() const noexcept { return num_devices_; }

  /// Execute `job(device_id, job_index)` for job_index in [0, num_jobs),
  /// dynamically load-balanced across devices. Blocks until all jobs finish.
  ///
  /// The first exception thrown by any job is captured and rethrown on the
  /// calling thread after all devices drain.
  void run_batch(std::size_t num_jobs,
                 const std::function<void(std::size_t device_id,
                                          std::size_t job_index)>& job) const {
    if (num_jobs == 0) return;
    if (num_devices_ == 1) {
      for (std::size_t i = 0; i < num_jobs; ++i) job(0, i);
      return;
    }
    std::atomic<std::size_t> next{0};
    detail::FirstError first_error;
    std::vector<std::thread> devices;
    devices.reserve(num_devices_);
    for (std::size_t d = 0; d < num_devices_; ++d) {
      devices.emplace_back([&, d] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= num_jobs) break;
          try {
            job(d, i);
          } catch (...) {
            first_error.record(std::current_exception());
          }
        }
      });
    }
    for (auto& t : devices) t.join();
    if (std::exception_ptr error = first_error.take())
      std::rethrow_exception(error);
  }

 private:
  std::size_t num_devices_;
};

}  // namespace ptsbe
