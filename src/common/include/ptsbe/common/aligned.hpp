#pragma once

/// \file aligned.hpp
/// \brief Over-aligned allocator for amplitude storage.
///
/// The SIMD amplitude kernels (ptsbe::kernels) use *aligned* vector
/// loads/stores on every full-width access, which requires the amplitude
/// array base to sit on a 64-byte boundary (one cache line; covers AVX-512's
/// 64-byte registers and keeps the scalar path cache-line tidy for free).
/// `AlignedVector<cplx>` is what StateVector / DensityMatrix store their
/// amplitudes in.

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace ptsbe {

/// Minimal C++20 allocator handing out `Alignment`-aligned storage via the
/// aligned operator new/delete.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// A std::vector whose buffer is 64-byte aligned (the kernel layout
/// contract for amplitude arrays).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace ptsbe
