#pragma once

/// \file bits.hpp
/// \brief Bit-manipulation helpers for amplitude indexing.
///
/// Statevector kernels address amplitudes by basis-state index; these helpers
/// insert/extract qubit bits into such indices. Qubit 0 is the least
/// significant bit throughout PTSBE.

#include <bit>
#include <cstdint>

namespace ptsbe {

/// 2^n as an unsigned 64-bit value. Precondition: n < 64.
constexpr std::uint64_t pow2(unsigned n) noexcept { return 1ULL << n; }

/// Extract the bit of `index` at position `qubit`.
constexpr unsigned get_bit(std::uint64_t index, unsigned qubit) noexcept {
  return static_cast<unsigned>((index >> qubit) & 1ULL);
}

/// Set/clear the bit of `index` at position `qubit`.
constexpr std::uint64_t with_bit(std::uint64_t index, unsigned qubit,
                                 unsigned value) noexcept {
  const std::uint64_t mask = 1ULL << qubit;
  return value ? (index | mask) : (index & ~mask);
}

/// Insert a 0 bit at position `pos`, shifting higher bits up by one.
/// Used to enumerate the 2^(n-1) index pairs a single-qubit gate touches.
constexpr std::uint64_t insert_zero_bit(std::uint64_t index, unsigned pos) noexcept {
  const std::uint64_t low_mask = (1ULL << pos) - 1;
  return ((index & ~low_mask) << 1) | (index & low_mask);
}

/// Insert 0 bits at two distinct positions (pos_low < pos_high refer to
/// positions in the *output*), enumerating the index quadruples a two-qubit
/// gate touches.
constexpr std::uint64_t insert_two_zero_bits(std::uint64_t index, unsigned pos_low,
                                             unsigned pos_high) noexcept {
  return insert_zero_bit(insert_zero_bit(index, pos_low), pos_high);
}

/// Population count.
constexpr unsigned popcount64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

/// Parity (popcount mod 2) of v.
constexpr unsigned parity64(std::uint64_t v) noexcept {
  return popcount64(v) & 1u;
}

}  // namespace ptsbe
