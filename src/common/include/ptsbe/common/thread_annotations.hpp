#pragma once

/// \file thread_annotations.hpp
/// \brief Clang thread-safety annotations + the annotated `Mutex`/`MutexLock`
/// pair every locked subsystem uses.
///
/// Locking invariants in this codebase are *compile-time contracts*, not
/// comments: every mutex-guarded member is declared `PTSBE_GUARDED_BY(mu)`,
/// every "caller holds the lock" helper is declared `PTSBE_REQUIRES(mu)`,
/// and the clang rows of CI build with `-Wthread-safety
/// -Wthread-safety-beta` promoted to errors (`PTSBE_WERROR`), so a future
/// PR that touches locked state without the right lock fails to compile
/// instead of waiting for tsan to get lucky. On gcc (which has no
/// thread-safety analysis) every macro expands to nothing and `Mutex` /
/// `MutexLock` behave exactly like `std::mutex` / `std::scoped_lock`.
///
/// Conventions (see docs/architecture.md "Static analysis & concurrency
/// contracts" for the full lock hierarchy):
///  - Prefer `MutexLock lock(mu_);` over raw lock()/unlock() pairs.
///  - Condition waits go through `MutexLock::native()` in an explicit
///    `while (!pred) cv.wait(lock.native());` loop — predicate lambdas are
///    analysed as separate functions and would not see the held capability.
///  - `PTSBE_NO_THREAD_SAFETY_ANALYSIS` is a last resort and needs a
///    comment explaining why the analysis cannot model the pattern.

#include <mutex>

// Attributes are a clang extension; they compile away everywhere else so
// gcc builds (and tooling that chokes on unknown attributes) are unaffected.
#if defined(__clang__) && !defined(SWIG)
#define PTSBE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PTSBE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability ("mutex" by convention).
#define PTSBE_CAPABILITY(x) PTSBE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define PTSBE_SCOPED_CAPABILITY PTSBE_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding `x`.
#define PTSBE_GUARDED_BY(x) PTSBE_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while holding `x` (the pointer itself is
/// unguarded).
#define PTSBE_PT_GUARDED_BY(x) PTSBE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (enforced under -Wthread-safety-beta).
#define PTSBE_ACQUIRED_BEFORE(...) \
  PTSBE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PTSBE_ACQUIRED_AFTER(...) \
  PTSBE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the caller to hold the given capabilities.
#define PTSBE_REQUIRES(...) \
  PTSBE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PTSBE_REQUIRES_SHARED(...) \
  PTSBE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the given capabilities (RAII and lock/unlock
/// methods).
#define PTSBE_ACQUIRE(...) \
  PTSBE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PTSBE_RELEASE(...) \
  PTSBE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PTSBE_TRY_ACQUIRE(...) \
  PTSBE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the given capabilities held (deadlock
/// prevention: it acquires them itself).
#define PTSBE_EXCLUDES(...) PTSBE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define PTSBE_ASSERT_CAPABILITY(x) \
  PTSBE_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define PTSBE_RETURN_CAPABILITY(x) PTSBE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the analysis is wrong or cannot model this function.
/// Always pair with a comment saying why.
#define PTSBE_NO_THREAD_SAFETY_ANALYSIS \
  PTSBE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ptsbe {

class MutexLock;

/// `std::mutex` carrying the capability attribute the analysis needs.
/// Zero-overhead: everything is a forwarding inline call.
class PTSBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PTSBE_ACQUIRE() { mutex_.lock(); }
  void unlock() PTSBE_RELEASE() { mutex_.unlock(); }
  bool try_lock() PTSBE_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII critical section over a `Mutex`, usable with
/// `std::condition_variable` via `native()`. Replaces both
/// `std::lock_guard` and `std::unique_lock` in annotated code.
class PTSBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PTSBE_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() PTSBE_RELEASE() {}

  /// The underlying `unique_lock`, for `std::condition_variable::wait`.
  /// A wait re-acquires before returning, so the capability is held at
  /// every point the analysis can observe — use the explicit
  /// `while (!pred) cv.wait(lock.native());` form (see file comment).
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ptsbe
