#pragma once

/// \file timer.hpp
/// \brief Wall-clock timing utilities for the benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace ptsbe {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds since construction or last reset().
  [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ptsbe
