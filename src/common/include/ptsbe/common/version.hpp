#pragma once

/// \file version.hpp
/// \brief Library version identification.

namespace ptsbe {

/// Semantic version string of the PTSBE library.
const char* version();

}  // namespace ptsbe
