#pragma once

/// \file thread_pool.hpp
/// \brief Work-queue thread pool and chunked parallel_for.
///
/// In the paper, trajectory specifications are farmed out to GPUs in an
/// embarrassingly parallel manner ("inter-trajectory" parallelism). This pool
/// is the CPU stand-in: each worker thread plays the role of one device.
/// Intra-kernel parallelism (the analogue of intra-trajectory multi-GPU state
/// slicing) uses OpenMP inside the backend kernels instead.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "ptsbe/common/thread_annotations.hpp"

namespace ptsbe {

/// Fixed-size thread pool with a FIFO task queue.
///
/// Tasks are `std::function<void()>`; exceptions escaping a task terminate
/// the program (tasks are expected to capture-and-report their own errors —
/// the BE engine wraps execution accordingly).
class ThreadPool {
 public:
  /// Start `num_threads` workers (0 → hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0) {
    if (num_threads == 0) {
      num_threads = std::thread::hardware_concurrency();
      if (num_threads == 0) num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task) PTSBE_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Block until every task submitted so far has finished.
  void wait_idle() PTSBE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (pending_ != 0) idle_cv_.wait(lock.native());
  }

 private:
  void worker_loop() PTSBE_EXCLUDES(mutex_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!stopping_ && queue_.empty()) cv_.wait(lock.native());
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        MutexLock lock(mutex_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ PTSBE_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ PTSBE_GUARDED_BY(mutex_) = 0;
  bool stopping_ PTSBE_GUARDED_BY(mutex_) = false;
};

/// Run `body(i)` for i in [begin, end) across `pool`, chunked so each worker
/// receives contiguous ranges. Blocks until complete. With a null pool the
/// loop runs inline (serial fallback).
inline void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, pool->size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> next{begin};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool->submit([&, chunk, end] {
      while (true) {
        const std::size_t lo = next.fetch_add(chunk);
        if (lo >= end) break;
        const std::size_t hi = std::min(lo + chunk, end);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }
    });
  }
  pool->wait_idle();
}

}  // namespace ptsbe
