#pragma once

/// \file philox.hpp
/// \brief Counter-based Philox4x32-10 pseudo-random generator.
///
/// This is the same generator family that cuRAND uses on NVIDIA GPUs (the
/// paper's simulator uses cuRAND for trajectory sampling). A counter-based
/// generator is the natural choice for PTSBE because every trajectory
/// specification can carry its own (seed, counter) coordinates: any worker
/// can regenerate the exact random stream of any trajectory without shared
/// state, which makes batched, embarrassingly-parallel execution bitwise
/// reproducible.
///
/// Reference: Salmon, Moraes, Dror, Shaw — "Parallel random numbers: as easy
/// as 1, 2, 3" (SC'11).

#include <array>
#include <cstdint>

namespace ptsbe {

/// Philox4x32-10 keyed counter permutation.
///
/// Satisfies the `UniformRandomBitGenerator` interface (result_type, min, max,
/// operator()) so it can be plugged into `std::` distributions, and exposes
/// counter manipulation (`set_counter`, `discard`) for stream splitting.
class Philox4x32 {
 public:
  using result_type = std::uint32_t;

  /// Construct from a 64-bit seed (becomes the Philox key) and an optional
  /// 64-bit subsequence id placed into the high counter words, giving 2^64
  /// independent subsequences of period 2^66 draws each.
  explicit Philox4x32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                      std::uint64_t subsequence = 0) noexcept {
    key_[0] = static_cast<std::uint32_t>(seed);
    key_[1] = static_cast<std::uint32_t>(seed >> 32);
    ctr_ = {0u, 0u, static_cast<std::uint32_t>(subsequence),
            static_cast<std::uint32_t>(subsequence >> 32)};
    buf_pos_ = 4;  // force generation on first draw
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return 0xFFFFFFFFu; }

  /// Next 32 random bits.
  result_type operator()() noexcept {
    if (buf_pos_ == 4) {
      buf_ = bijection(ctr_, key_);
      advance_counter();
      buf_pos_ = 0;
    }
    return buf_[buf_pos_++];
  }

  /// Next 64 random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t lo = (*this)();
    const std::uint64_t hi = (*this)();
    return (hi << 32) | lo;
  }

  /// Uniform double in [0, 1) with full 53-bit mantissa resolution.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform value in [0, bound) without modulo bias (Lemire reduction with
  /// rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 64-bit Lemire: use 128-bit multiply-high.
    while (true) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (0ULL - bound) % bound)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Jump the low counter words forward by `n` 128-bit blocks (4 draws each);
  /// also drops any buffered outputs.
  void discard_blocks(std::uint64_t n) noexcept {
    std::uint64_t lo = (static_cast<std::uint64_t>(ctr_[1]) << 32) | ctr_[0];
    lo += n;
    ctr_[0] = static_cast<std::uint32_t>(lo);
    ctr_[1] = static_cast<std::uint32_t>(lo >> 32);
    buf_pos_ = 4;
  }

  /// Directly position the 128-bit counter. Low 64 bits index draws within a
  /// subsequence; high 64 bits select the subsequence.
  void set_counter(std::uint64_t low, std::uint64_t high) noexcept {
    ctr_ = {static_cast<std::uint32_t>(low), static_cast<std::uint32_t>(low >> 32),
            static_cast<std::uint32_t>(high), static_cast<std::uint32_t>(high >> 32)};
    buf_pos_ = 4;
  }

  /// The raw 10-round Philox4x32 keyed bijection (stateless; exposed for
  /// testing against reference vectors).
  static std::array<std::uint32_t, 4> bijection(
      std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) noexcept {
    for (int round = 0; round < 10; ++round) {
      ctr = single_round(ctr, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }

 private:
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

  static std::array<std::uint32_t, 4> single_round(
      const std::array<std::uint32_t, 4>& c,
      const std::array<std::uint32_t, 2>& k) noexcept {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * c[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * c[2];
    return {static_cast<std::uint32_t>(p1 >> 32) ^ c[1] ^ k[0],
            static_cast<std::uint32_t>(p1),
            static_cast<std::uint32_t>(p0 >> 32) ^ c[3] ^ k[1],
            static_cast<std::uint32_t>(p0)};
  }

  void advance_counter() noexcept {
    if (++ctr_[0] == 0)
      if (++ctr_[1] == 0)
        if (++ctr_[2] == 0) ++ctr_[3];
  }

  std::array<std::uint32_t, 2> key_{};
  std::array<std::uint32_t, 4> ctr_{};
  std::array<std::uint32_t, 4> buf_{};
  int buf_pos_ = 4;
};

}  // namespace ptsbe
