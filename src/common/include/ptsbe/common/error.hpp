#pragma once

/// \file error.hpp
/// \brief Error-handling primitives used across the PTSBE libraries.
///
/// Following the C++ Core Guidelines (E.*), programming-contract violations
/// throw `std::logic_error`-derived types and runtime failures throw
/// `std::runtime_error`-derived types. Hot kernels use `PTSBE_ASSERT`, which
/// compiles out in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptsbe {

/// Exception thrown when a caller violates a documented API precondition.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown when an internal invariant fails (library bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown for runtime resource/configuration failures
/// (e.g. unwritable dataset file, inconsistent noise model binding).
class runtime_failure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace ptsbe

/// Check a documented API precondition; throws ptsbe::precondition_error.
#define PTSBE_REQUIRE(expr, msg)                                             \
  do {                                                                       \
    if (!(expr))                                                             \
      ::ptsbe::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Check an internal invariant; throws ptsbe::invariant_error.
#define PTSBE_CHECK(expr, msg)                                            \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ptsbe::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only assertion for hot kernels; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define PTSBE_ASSERT(expr) ((void)0)
#else
#define PTSBE_ASSERT(expr)                                               \
  do {                                                                   \
    if (!(expr))                                                         \
      ::ptsbe::detail::throw_invariant(#expr, __FILE__, __LINE__, "");   \
  } while (0)
#endif
