#include "ptsbe/stats/shot_table.hpp"

#include <cstdio>
#include <cstring>

#include "ptsbe/common/error.hpp"

namespace ptsbe::stats {

namespace {

// 17 significant digits round-trip every finite double exactly (same
// formatting discipline as the .ptq writer), so the JSON for two bitwise-
// equal tables is character-identical.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

constexpr char kTableMagic[4] = {'P', 'T', 'S', 'T'};
constexpr std::uint32_t kTableVersion = 1;

template <typename T>
void put(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

template <typename T>
T get(const std::string& bytes, std::size_t& at) {
  PTSBE_CHECK(sizeof(T) <= bytes.size() - at, "truncated ShotTable bytes");
  T v{};
  std::memcpy(&v, bytes.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

}  // namespace

void ShotTable::add_batch(const be::TrajectoryBatch& batch) {
  for (std::uint64_t record : batch.records) weights_[record] += 1.0;
}

ShotTable& ShotTable::merge(const ShotTable& other) {
  for (const auto& [record, weight] : other.weights_)
    weights_[record] += weight;
  return *this;
}

ShotTable ShotTable::diff(const ShotTable& other) const {
  ShotTable out;
  auto it = weights_.begin();
  auto jt = other.weights_.begin();
  while (it != weights_.end() || jt != other.weights_.end()) {
    std::uint64_t record = 0;
    double delta = 0.0;
    if (jt == other.weights_.end() ||
        (it != weights_.end() && it->first < jt->first)) {
      record = it->first;
      delta = it->second;
      ++it;
    } else if (it == weights_.end() || jt->first < it->first) {
      record = jt->first;
      delta = -jt->second;
      ++jt;
    } else {
      record = it->first;
      delta = it->second - jt->second;
      ++it;
      ++jt;
    }
    if (delta != 0.0) out.weights_[record] = delta;
  }
  return out;
}

void ShotTable::normalise() {
  const double sum = total();
  PTSBE_REQUIRE(sum > 0.0, "cannot normalise a ShotTable with total " +
                               fmt(sum));
  for (auto& [record, weight] : weights_) weight /= sum;
}

double ShotTable::total() const noexcept {
  double sum = 0.0;
  for (const auto& [record, weight] : weights_) sum += weight;
  return sum;
}

double ShotTable::weight_of(std::uint64_t record) const noexcept {
  const auto it = weights_.find(record);
  return it == weights_.end() ? 0.0 : it->second;
}

std::string ShotTable::serialize() const {
  std::string out;
  out.reserve(sizeof(kTableMagic) + sizeof(kTableVersion) +
              sizeof(std::uint64_t) + weights_.size() * 16);
  out.append(kTableMagic, sizeof(kTableMagic));
  put(out, kTableVersion);
  put(out, static_cast<std::uint64_t>(weights_.size()));
  for (const auto& [record, weight] : weights_) {
    put(out, record);
    put(out, weight);
  }
  return out;
}

ShotTable ShotTable::deserialize(const std::string& bytes) {
  std::size_t at = 0;
  PTSBE_CHECK(bytes.size() >= sizeof(kTableMagic) &&
                  std::memcmp(bytes.data(), kTableMagic,
                              sizeof(kTableMagic)) == 0,
              "not a serialized ShotTable");
  at += sizeof(kTableMagic);
  const auto version = get<std::uint32_t>(bytes, at);
  PTSBE_CHECK(version == kTableVersion,
              "unsupported ShotTable version " + std::to_string(version));
  const auto count = get<std::uint64_t>(bytes, at);
  PTSBE_CHECK(count <= (bytes.size() - at) / 16, "truncated ShotTable bytes");
  ShotTable table;
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto record = get<std::uint64_t>(bytes, at);
    PTSBE_CHECK(i == 0 || record > previous,
                "ShotTable bytes are not in ascending record order");
    previous = record;
    table.weights_[record] = get<double>(bytes, at);
  }
  return table;
}

ShotTable table_of_result(const be::Result& result) {
  ShotTable table;
  for (const be::TrajectoryBatch& batch : result.batches)
    table.add_batch(batch);
  return table;
}

ShotTable table_of_file(const std::string& path, dataset::ViewMode mode) {
  dataset::Reader reader(path, mode);
  ShotTable table;
  be::TrajectoryBatch batch;
  while (reader.next(batch)) table.add_batch(batch);
  return table;
}

std::string to_json(const ShotTable& table, std::size_t max_records) {
  std::string out = "{\"total\":" + fmt(table.total()) +
                    ",\"distinct\":" + std::to_string(table.distinct()) +
                    ",\"records\":{";
  std::size_t emitted = 0;
  bool truncated = false;
  for (const auto& [record, weight] : table.entries()) {
    if (max_records > 0 && emitted == max_records) {
      truncated = true;
      break;
    }
    if (emitted > 0) out += ',';
    out += '"' + std::to_string(record) + "\":" + fmt(weight);
    ++emitted;
  }
  out += '}';
  if (truncated) out += ",\"truncated\":true";
  out += '}';
  return out;
}

}  // namespace ptsbe::stats
