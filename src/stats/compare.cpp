#include "ptsbe/stats/compare.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace ptsbe::stats {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Walk the union of two ordered maps in ascending record order, calling
/// `fn(observed_weight, expected_weight)` once per record in the union.
/// The ordered walk makes every metric's summation order deterministic —
/// floating-point sums are order-sensitive, so this is what pins a
/// comparison's value (not just its sign) across runs.
template <typename Fn>
void for_union(const ShotTable& observed, const ShotTable& expected, Fn fn) {
  auto it = observed.entries().begin();
  const auto it_end = observed.entries().end();
  auto jt = expected.entries().begin();
  const auto jt_end = expected.entries().end();
  while (it != it_end || jt != jt_end) {
    if (jt == jt_end || (it != it_end && it->first < jt->first)) {
      fn(it->second, 0.0);
      ++it;
    } else if (it == it_end || jt->first < it->first) {
      fn(0.0, jt->second);
      ++jt;
    } else {
      fn(it->second, jt->second);
      ++it;
      ++jt;
    }
  }
}

std::string fmt(double v) {
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

double kl_divergence(const ShotTable& observed, const ShotTable& expected) {
  ShotTable p = observed;
  ShotTable q = expected;
  p.normalise();
  q.normalise();
  double sum = 0.0;
  for_union(p, q, [&sum](double o, double e) {
    if (o <= 0.0) return;  // lim x→0 x·ln(x/e) = 0
    if (e <= 0.0) {
      sum = kInf;
      return;
    }
    // o == e contributes exactly 0: o/e is exactly 1.0, log(1.0) is 0.0.
    sum += o * std::log(o / e);
  });
  return sum;
}

double chi_squared_cost(const ShotTable& observed, const ShotTable& expected) {
  double sum = 0.0;
  for_union(observed, expected, [&sum](double o, double e) {
    if (e <= 0.0) {
      if (o > 0.0) sum = kInf;
      return;
    }
    const double d = o - e;
    sum += d * d / e;
  });
  return sum;
}

double poisson_log_cost(const ShotTable& observed, const ShotTable& expected) {
  double sum = 0.0;
  for_union(observed, expected, [&sum](double o, double e) {
    if (e <= 0.0) {
      if (o > 0.0) sum = kInf;
      return;
    }
    if (o <= 0.0) {
      sum += 2.0 * e;  // lim o→0 of the deviance term
      return;
    }
    sum += 2.0 * (o * std::log(o / e) - (o - e));
  });
  return sum;
}

double total_variation(const ShotTable& observed, const ShotTable& expected) {
  ShotTable p = observed;
  ShotTable q = expected;
  p.normalise();
  q.normalise();
  double sum = 0.0;
  for_union(p, q, [&sum](double o, double e) { sum += std::fabs(o - e); });
  return 0.5 * sum;
}

Comparison compare(const ShotTable& observed, const ShotTable& expected) {
  Comparison c;
  c.kl_divergence = kl_divergence(observed, expected);
  c.chi_squared_cost = chi_squared_cost(observed, expected);
  c.poisson_log_cost = poisson_log_cost(observed, expected);
  c.total_variation = total_variation(observed, expected);
  return c;
}

std::string comparison_to_json(const Comparison& comparison) {
  return "{\"kl_divergence\":" + fmt(comparison.kl_divergence) +
         ",\"chi_squared_cost\":" + fmt(comparison.chi_squared_cost) +
         ",\"poisson_log_cost\":" + fmt(comparison.poisson_log_cost) +
         ",\"total_variation\":" + fmt(comparison.total_variation) +
         ",\"exact_match\":" +
         (comparison.exact_match() ? "true" : "false") + "}";
}

}  // namespace ptsbe::stats
