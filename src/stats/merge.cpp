#include "ptsbe/stats/merge.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/core/dataset.hpp"

namespace ptsbe::stats {

namespace {

/// On-disk bytes of one batch block (mirrors the dataset writer's layout:
/// six fixed u64-sized fields + the branch pairs + the records).
std::uint64_t block_bytes(const be::TrajectoryBatch& batch) {
  return 6 * sizeof(std::uint64_t) +
         2 * sizeof(std::uint64_t) * batch.spec.branches.size() +
         sizeof(std::uint64_t) * batch.records.size();
}

/// One input shard: its reader and the buffered head batch.
struct Input {
  explicit Input(const std::string& path, dataset::ViewMode view)
      : reader(path, view) {}
  dataset::Reader reader;
  be::TrajectoryBatch head;
  std::uint64_t head_bytes = 0;
  bool exhausted = false;
};

}  // namespace

MergeReport merge_datasets(const std::string& out_path,
                           const std::vector<std::string>& inputs,
                           const MergeOptions& options) {
  PTSBE_REQUIRE(!inputs.empty(), "merge_datasets needs at least one input");

  MergeReport report;
  report.inputs = inputs.size();

  std::vector<std::unique_ptr<Input>> shards;
  shards.reserve(inputs.size());
  std::uint64_t buffered = 0;

  const auto account = [&](std::uint64_t added) {
    buffered += added;
    report.peak_buffered_bytes =
        std::max(report.peak_buffered_bytes, buffered);
    if (buffered > options.memory_budget_bytes)
      throw runtime_failure(
          "merge memory budget of " +
          std::to_string(options.memory_budget_bytes) +
          " bytes cannot hold the " + std::to_string(inputs.size()) +
          " concurrent head batches (" + std::to_string(buffered) +
          " bytes buffered); raise MergeOptions::memory_budget_bytes");
  };

  const auto advance = [&](Input& shard) {
    buffered -= shard.head_bytes;
    shard.head_bytes = 0;
    if (shard.reader.next(shard.head)) {
      shard.head_bytes = block_bytes(shard.head);
      account(shard.head_bytes);
    } else {
      shard.exhausted = true;
    }
  };

  for (const std::string& path : inputs) {
    shards.push_back(std::make_unique<Input>(path, options.view));
    Input& shard = *shards.back();
    shard.head_bytes = 0;
    if (shard.reader.next(shard.head)) {
      shard.head_bytes = block_bytes(shard.head);
      account(shard.head_bytes);
    } else {
      shard.exhausted = true;
    }
  }

  dataset::StreamWriter writer(out_path);
  for (;;) {
    // Min over the live heads by (spec_index, input index): a linear scan —
    // K is the shard count, tiny next to the per-batch I/O it orders.
    Input* next = nullptr;
    for (const auto& shard : shards) {
      if (shard->exhausted) continue;
      if (next == nullptr || shard->head.spec_index < next->head.spec_index)
        next = shard.get();
    }
    if (next == nullptr) break;
    writer.append(next->head);
    ++report.batches;
    report.records += next->head.records.size();
    advance(*next);
  }
  writer.close();
  report.bytes_out = writer.bytes_written();
  return report;
}

}  // namespace ptsbe::stats
