#pragma once

/// \file compare.hpp
/// \brief Statistical distances between observed and expected ShotTables.
///
/// The four metrics of the BranchTab toolkit (`BranchTab_KLdiverg`,
/// `BranchTab_chiSqCost`, Poisson deviance, total variation), adapted to
/// record histograms. Every metric is **exactly 0** — not merely tiny —
/// when the two tables are bitwise equal: equal weights make every ratio
/// exactly 1.0 and every difference exactly 0.0, `std::log(1.0)` is
/// exactly 0.0, and sums of exact zeros are exact. That is the property
/// the determinism contract is validated against: two shards produced by
/// the same job on different daemons must compare to 0.0, not to 1e-16.
///
/// Mismatched support: a record observed where the expectation is 0 has
/// likelihood 0, so KL, chi-squared and the Poisson cost all return
/// +infinity (total variation stays finite by construction). Metrics skip
/// nothing silently.

#include <string>

#include "ptsbe/stats/shot_table.hpp"

namespace ptsbe::stats {

/// KL divergence D(observed ‖ expected) in nats. Both tables are
/// normalised internally, so raw-count tables are fine.
/// \returns +infinity when observed has support where expected has none.
/// \throws precondition_error when either table has non-positive total.
[[nodiscard]] double kl_divergence(const ShotTable& observed,
                                   const ShotTable& expected);

/// Pearson chi-squared cost Σ (o−e)²/e over raw counts.
/// \returns +infinity when observed has support where expected has none.
[[nodiscard]] double chi_squared_cost(const ShotTable& observed,
                                      const ShotTable& expected);

/// Poisson log-cost in deviance form, 2·Σ [o·ln(o/e) − (o−e)] over raw
/// counts — the scaled log-likelihood-ratio against the saturated model,
/// which (unlike the raw negative log-likelihood) is 0 at o == e.
/// \returns +infinity when observed has support where expected has none.
[[nodiscard]] double poisson_log_cost(const ShotTable& observed,
                                      const ShotTable& expected);

/// Total-variation distance ½·Σ |p−q| between the normalised
/// distributions; always in [0, 1].
/// \throws precondition_error when either table has non-positive total.
[[nodiscard]] double total_variation(const ShotTable& observed,
                                     const ShotTable& expected);

/// All four metrics of one comparison.
struct Comparison {
  double kl_divergence = 0.0;
  double chi_squared_cost = 0.0;
  double poisson_log_cost = 0.0;
  double total_variation = 0.0;

  /// True when every metric is exactly 0 — the bit-identical-shards case.
  [[nodiscard]] bool exact_match() const noexcept {
    return kl_divergence == 0.0 && chi_squared_cost == 0.0 &&
           poisson_log_cost == 0.0 && total_variation == 0.0;
  }
};

/// Compute all four metrics.
[[nodiscard]] Comparison compare(const ShotTable& observed,
                                 const ShotTable& expected);

/// {"kl_divergence":…,"chi_squared_cost":…,"poisson_log_cost":…,
///  "total_variation":…,"exact_match":…} — infinities render as the JSON
/// string "inf" (JSON numbers cannot express them).
[[nodiscard]] std::string comparison_to_json(const Comparison& comparison);

}  // namespace ptsbe::stats
