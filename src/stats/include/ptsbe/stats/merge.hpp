#pragma once

/// \file merge.hpp
/// \brief Out-of-core k-way merge of sharded PTSB datasets.
///
/// Sharded producers (the net serve layer, partitioned QEC sweeps) each
/// write a spec-ordered dataset covering a subset of the trajectory specs.
/// `merge_datasets` recombines N such shards into one spec-ordered file
/// under a fixed memory budget: one `Reader` per input, one buffered head
/// batch per input, a min-heap on (spec_index, input index), and a
/// `StreamWriter` on the output. Batch *bytes* are never re-encoded —
/// blocks pass through the shared put_batch serialisation — so merging the
/// shards of a deterministic job reproduces the local single-process
/// `write_binary` file byte for byte.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ptsbe/stats/dataset_reader.hpp"

namespace ptsbe::stats {

/// Knobs for merge_datasets.
struct MergeOptions {
  /// Upper bound on the bytes of batch payload buffered at any instant
  /// (measured in on-disk block bytes — the in-memory footprint tracks it
  /// within a constant factor). The merge holds exactly one head batch per
  /// input, so the minimum feasible budget is the sum of the K current
  /// head blocks; a budget too small for that \throws runtime_failure
  /// rather than silently overshooting.
  std::uint64_t memory_budget_bytes = 64ULL << 20;

  /// How input files are accessed (see dataset::ViewMode).
  dataset::ViewMode view = dataset::ViewMode::kAuto;
};

/// What one merge did — the bench's throughput numerator.
struct MergeReport {
  std::uint64_t inputs = 0;                ///< Shard files consumed.
  std::uint64_t batches = 0;               ///< Batch blocks written.
  std::uint64_t records = 0;               ///< Measurement records written.
  std::uint64_t bytes_out = 0;             ///< Output file size in bytes.
  std::uint64_t peak_buffered_bytes = 0;   ///< High-water buffered blocks.
};

/// Merge `inputs` (each a valid format-v2 dataset, each spec-ordered) into
/// `out_path`, ordered by (spec_index, input index) — inputs listed first
/// win ties, so the order of `inputs` is part of the result for
/// overlapping shards. Disjoint spec-partitioned shards (the serve/QEC
/// case) have no ties, and their merge is input-order independent.
/// \throws precondition_error when `inputs` is empty;
///         runtime_failure on invalid inputs, write errors, or a memory
///         budget smaller than the K concurrent head batches.
MergeReport merge_datasets(const std::string& out_path,
                           const std::vector<std::string>& inputs,
                           const MergeOptions& options = {});

}  // namespace ptsbe::stats
