#pragma once

/// \file dataset_reader.hpp
/// \brief Seekable, out-of-core reader for PTSB binary datasets.
///
/// `dataset::read_binary` materialises a whole file into a `be::Result` —
/// fine for tests, wrong for the trillion-shot corpora the paper targets
/// and for the sharded serve/QEC outputs PR 6/7 produce. `Reader` iterates
/// the same format-v2 bytes one batch at a time:
///
///  - **Header validation** is the same contract as `read_binary`: bad
///    magic and v1/future versions are rejected with the same diagnostics,
///    so the two readers can never drift apart on what a valid file is.
///  - **Bounded memory.** Only the batch currently being decoded is held;
///    batch counts are validated against the remaining file size before
///    any allocation, so a hostile length field cannot force a huge
///    resize (the same guard discipline as the net batch codec).
///  - **Two byte sources.** `open_view` maps the file read-only
///    (`ViewMode::kMmap`) so iteration touches only the pages it decodes,
///    with a `pread`-based fallback (`ViewMode::kStream`) for filesystems
///    where mapping fails; `kAuto` tries the map first. Decoded batches
///    are bit-identical across sources — both feed the same decoder.
///  - **Seekable.** Batches are variable-length, so `seek_batch` builds a
///    byte-offset index lazily by skip-scanning block headers (payloads
///    are never read); re-seeking backwards is O(1) once indexed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/dataset.hpp"

namespace ptsbe::dataset {

/// How `Reader` accesses the file's bytes.
enum class ViewMode : std::uint8_t {
  kAuto,    ///< mmap when the platform allows it, else the stream path.
  kMmap,    ///< memory-map read-only; \throws runtime_failure if impossible.
  kStream,  ///< pread into a per-batch buffer (bounded-memory fallback).
};

/// Registry-style name ("auto" | "mmap" | "stream").
[[nodiscard]] const std::string& to_string(ViewMode mode);
/// \throws precondition_error for unknown names (the message lists all).
[[nodiscard]] ViewMode view_mode_from_string(const std::string& name);

namespace detail {
/// Random-access byte source behind a Reader (mmap view or pread stream).
class ByteSource;
}  // namespace detail

/// Seekable streaming reader over one PTSB format-v2 file. Move-only; not
/// thread-safe (clone one per thread — sources are stateless under pread
/// and shared-mapping semantics, but the cursor is not).
class Reader {
 public:
  /// Open `path` and validate the dataset header.
  /// \throws runtime_failure for unreadable files, non-PTSB magic, and
  ///         v1/future versions (same diagnostics as `read_binary`).
  explicit Reader(const std::string& path, ViewMode mode = ViewMode::kAuto);
  ~Reader();
  Reader(Reader&&) noexcept;
  Reader& operator=(Reader&&) noexcept;
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Batches the header declares (a flushed-but-open StreamWriter file
  /// reads as its last flushed prefix; trailing unflushed bytes are
  /// ignored by construction).
  [[nodiscard]] std::uint64_t num_batches() const noexcept {
    return num_batches_;
  }

  /// Total file size in bytes.
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return size_; }

  /// True when the bytes are memory-mapped (diagnostics; `kAuto` resolves
  /// here).
  [[nodiscard]] bool mapped() const noexcept;

  /// Index of the batch the next `next()` call returns.
  [[nodiscard]] std::uint64_t position() const noexcept { return index_; }

  /// Decode the next batch into `out`. Returns false once `num_batches()`
  /// batches have been returned. `out`'s vectors are reused across calls,
  /// so a read loop allocates only on growth.
  /// \throws invariant_error on truncated or hostile-length blocks (the
  ///         file on disk violates what its own header promised).
  bool next(be::TrajectoryBatch& out);

  /// Position the cursor on batch `index` (0-based; == num_batches() pins
  /// the cursor at end). Skip-scans block headers forward from the last
  /// indexed batch; never decodes payloads.
  /// \throws precondition_error when index > num_batches();
  ///         invariant_error on truncated blocks.
  void seek_batch(std::uint64_t index);

 private:
  [[nodiscard]] std::uint64_t offset_of(std::uint64_t index);

  std::string path_;
  std::unique_ptr<detail::ByteSource> source_;
  std::uint64_t size_ = 0;
  std::uint64_t num_batches_ = 0;
  std::uint64_t index_ = 0;   ///< Next batch to decode.
  std::uint64_t offset_ = 0;  ///< Byte offset of batch `index_`.
  /// offsets_[i] = byte offset of batch i, for every batch visited so far
  /// (grown by next()/seek_batch(); offsets_[0] is the header size).
  std::vector<std::uint64_t> offsets_;
};

/// Convenience: `Reader(path, mode)` — named to make call sites read as
/// "open a view over the file" rather than "load the file".
[[nodiscard]] Reader open_view(const std::string& path,
                               ViewMode mode = ViewMode::kAuto);

}  // namespace ptsbe::dataset
