#pragma once

/// \file shot_table.hpp
/// \brief Ordered record→weight aggregation over shot datasets.
///
/// `ShotTable` is the BranchTab of this codebase (after
/// `alanrogers__lego`'s `BranchTab_plusEquals` / `BranchTab_KLdiverg`
/// toolkit): a histogram of measurement records that can be merged across
/// shards, diffed, normalised into a distribution, and compared with the
/// metrics in compare.hpp. It is built on `std::map`, so iteration order is
/// the record value order — deterministic by construction, which is what
/// makes `serialize()` byte-stable and keeps this TU legal under the
/// project lint rule banning unordered iteration in serialization TUs.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/stats/dataset_reader.hpp"

namespace ptsbe::stats {

/// Histogram of measurement records. Weights are doubles so a table can
/// hold either raw shot counts (after `add`/`merge`) or probabilities
/// (after `normalise`); the comparison toolkit documents which form each
/// metric expects.
class ShotTable {
 public:
  /// Ordered (record, weight) map — iteration is ascending by record.
  using Map = std::map<std::uint64_t, double>;

  /// Add `weight` shots of `record`.
  void add(std::uint64_t record, double weight = 1.0) {
    weights_[record] += weight;
  }

  /// Add every measurement record of one trajectory batch (weight 1 each).
  void add_batch(const be::TrajectoryBatch& batch);

  /// Pointwise `*this += other` (BranchTab_plusEquals). Returns *this.
  ShotTable& merge(const ShotTable& other);

  /// Pointwise `*this - other` over the union of records. Records whose
  /// difference is exactly 0 are dropped, so `a.diff(a)` is empty — the
  /// "no divergence" case reads as an empty table, not a table of zeros.
  [[nodiscard]] ShotTable diff(const ShotTable& other) const;

  /// Divide every weight by `total()`, turning counts into a probability
  /// distribution. Normalising bit-identical tables yields bit-identical
  /// distributions (same dividend, same divisor).
  /// \throws precondition_error when `total()` is not positive.
  void normalise();

  /// Sum of all weights.
  [[nodiscard]] double total() const noexcept;

  /// Number of distinct records.
  [[nodiscard]] std::size_t distinct() const noexcept {
    return weights_.size();
  }

  [[nodiscard]] bool empty() const noexcept { return weights_.empty(); }

  /// Weight of `record` (0 when absent).
  [[nodiscard]] double weight_of(std::uint64_t record) const noexcept;

  [[nodiscard]] bool contains(std::uint64_t record) const noexcept {
    return weights_.count(record) != 0;
  }

  /// The underlying ordered map (ascending record order).
  [[nodiscard]] const Map& entries() const noexcept { return weights_; }

  [[nodiscard]] bool operator==(const ShotTable& other) const noexcept {
    return weights_ == other.weights_;
  }
  [[nodiscard]] bool operator!=(const ShotTable& other) const noexcept {
    return !(*this == other);
  }

  /// Byte-stable binary serialisation ("PTST" magic, version, count, then
  /// (record u64, weight double) pairs in ascending record order). Two
  /// tables serialise identically iff they are bitwise equal — the
  /// byte-for-byte merge property tests hinge on this.
  [[nodiscard]] std::string serialize() const;

  /// Inverse of serialize().
  /// \throws invariant_error on bad magic/version/truncation.
  [[nodiscard]] static ShotTable deserialize(const std::string& bytes);

 private:
  Map weights_;
};

/// Aggregate a materialised result.
[[nodiscard]] ShotTable table_of_result(const be::Result& result);

/// Aggregate a dataset file out-of-core: one `Reader` pass, one batch in
/// memory at a time, so file size never bounds what can be tabulated.
/// \throws runtime_failure on unreadable/invalid files.
[[nodiscard]] ShotTable table_of_file(
    const std::string& path,
    dataset::ViewMode mode = dataset::ViewMode::kAuto);

/// JSON rendering: {"total":T,"distinct":D,"records":{"<r>":w,...}} with
/// records in ascending order. `max_records` > 0 truncates the records
/// object to the first (smallest) records and adds "truncated":true —
/// deterministic truncation, for the serve stats surface where tables can
/// be unbounded.
[[nodiscard]] std::string to_json(const ShotTable& table,
                                  std::size_t max_records = 0);

}  // namespace ptsbe::stats
