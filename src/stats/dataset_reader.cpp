#include "ptsbe/stats/dataset_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "ptsbe/common/error.hpp"

namespace ptsbe::dataset {

const std::string& to_string(ViewMode mode) {
  static const std::string kNames[] = {"auto", "mmap", "stream"};
  return kNames[static_cast<std::uint8_t>(mode)];
}

ViewMode view_mode_from_string(const std::string& name) {
  if (name == "auto") return ViewMode::kAuto;
  if (name == "mmap") return ViewMode::kMmap;
  if (name == "stream") return ViewMode::kStream;
  throw precondition_error("unknown view mode '" + name +
                           "' (expected \"auto\", \"mmap\" or \"stream\")");
}

namespace detail {

/// Random-access bytes of one open file. Both implementations surface
/// short reads as the same "truncated dataset file" failure the batch
/// decoder reports, so a file that shrinks mid-read cannot silently yield
/// garbage.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  [[nodiscard]] virtual std::uint64_t size() const noexcept = 0;
  [[nodiscard]] virtual bool mapped() const noexcept = 0;
  /// Copy `n` bytes at `offset` into `dst`.
  /// \throws runtime_failure when [offset, offset+n) exceeds the file.
  virtual void read_at(std::uint64_t offset, void* dst, std::size_t n) = 0;
};

namespace {

class MmapSource final : public ByteSource {
 public:
  MmapSource(void* base, std::uint64_t size, std::string path)
      : base_(static_cast<const char*>(base)),
        size_(size),
        path_(std::move(path)) {}
  ~MmapSource() override {
    if (base_ != nullptr && size_ > 0)
      ::munmap(const_cast<char*>(base_), size_);
  }
  [[nodiscard]] std::uint64_t size() const noexcept override { return size_; }
  [[nodiscard]] bool mapped() const noexcept override { return true; }
  void read_at(std::uint64_t offset, void* dst, std::size_t n) override {
    if (n == 0) return;
    PTSBE_CHECK(offset <= size_ && n <= size_ - offset,
                "truncated dataset file '" + path_ + "'");
    std::memcpy(dst, base_ + offset, n);
  }

 private:
  const char* base_;
  std::uint64_t size_;
  std::string path_;
};

class StreamSource final : public ByteSource {
 public:
  StreamSource(int fd, std::uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~StreamSource() override {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] std::uint64_t size() const noexcept override { return size_; }
  [[nodiscard]] bool mapped() const noexcept override { return false; }
  void read_at(std::uint64_t offset, void* dst, std::size_t n) override {
    PTSBE_CHECK(offset <= size_ && n <= size_ - offset,
                "truncated dataset file '" + path_ + "'");
    char* out = static_cast<char*>(dst);
    while (n > 0) {
      const ssize_t got =
          ::pread(fd_, out, n, static_cast<off_t>(offset));
      if (got < 0) {
        if (errno == EINTR) continue;
        throw runtime_failure("error reading '" + path_ +
                              "': " + std::strerror(errno));
      }
      PTSBE_CHECK(got != 0, "truncated dataset file '" + path_ + "'");
      out += got;
      offset += static_cast<std::uint64_t>(got);
      n -= static_cast<std::size_t>(got);
    }
  }

 private:
  int fd_;
  std::uint64_t size_;
  std::string path_;
};

std::unique_ptr<ByteSource> open_source(const std::string& path,
                                        ViewMode mode) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw runtime_failure("cannot open '" + path + "' for reading");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw runtime_failure("cannot stat '" + path + "'");
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (mode != ViewMode::kStream && size > 0) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      // The mapping pins the bytes; the descriptor is no longer needed.
      ::close(fd);
      return std::make_unique<MmapSource>(base, size, path);
    }
    if (mode == ViewMode::kMmap) {
      ::close(fd);
      throw runtime_failure("cannot mmap '" + path +
                            "': " + std::strerror(errno));
    }
    // kAuto: fall through to the pread path.
  }
  return std::make_unique<StreamSource>(fd, size, path);
}

}  // namespace

}  // namespace detail

namespace {

template <typename T>
T read_scalar(detail::ByteSource& source, std::uint64_t offset) {
  T v{};
  source.read_at(offset, &v, sizeof(T));
  return v;
}

/// Fixed-width prefix of one batch block: spec_index, nominal, realized,
/// shots, num_branches (num_records follows the branch list).
constexpr std::uint64_t kBatchFixedBytes = 5 * sizeof(std::uint64_t);

}  // namespace

Reader::Reader(const std::string& path, ViewMode mode)
    : path_(path), source_(detail::open_source(path, mode)) {
  size_ = source_->size();
  if (size_ < kHeaderBytes)
    throw runtime_failure("'" + path + "' is not a PTSB dataset");
  char magic[4];
  source_->read_at(0, magic, 4);
  if (std::memcmp(magic, kFormatMagic, 4) != 0)
    throw runtime_failure("'" + path + "' is not a PTSB dataset");
  const auto version = read_scalar<std::uint32_t>(*source_, 4);
  if (version != kFormatVersion)
    throw runtime_failure(
        "unsupported dataset version " + std::to_string(version) +
        (version == 1 ? " (version 1 embedded scheduler-dependent device "
                        "ids; regenerate the dataset)"
                      : ""));
  num_batches_ =
      read_scalar<std::uint64_t>(*source_, 4 + sizeof(kFormatVersion));
  offset_ = kHeaderBytes;
  offsets_.push_back(offset_);
}

Reader::~Reader() = default;
Reader::Reader(Reader&&) noexcept = default;
Reader& Reader::operator=(Reader&&) noexcept = default;

bool Reader::mapped() const noexcept { return source_->mapped(); }

bool Reader::next(be::TrajectoryBatch& out) {
  if (index_ >= num_batches_) return false;
  std::uint64_t at = offset_;

  std::uint64_t fixed[5];
  source_->read_at(at, fixed, sizeof(fixed));
  at += sizeof(fixed);
  out.spec_index = static_cast<std::size_t>(fixed[0]);
  std::memcpy(&out.spec.nominal_probability, &fixed[1], sizeof(double));
  std::memcpy(&out.realized_probability, &fixed[2], sizeof(double));
  out.spec.shots = fixed[3];
  const std::uint64_t num_branches = fixed[4];

  // Hostile-length guard: every count is bounded by the bytes that remain,
  // *before* any allocation (same discipline as the net batch codec).
  const std::uint64_t remaining = size_ - at;
  PTSBE_CHECK(num_branches <= remaining / (2 * sizeof(std::uint64_t)),
              "truncated dataset file '" + path_ + "'");
  out.spec.branches.resize(num_branches);
  for (BranchChoice& bc : out.spec.branches) {
    std::uint64_t pair[2];
    source_->read_at(at, pair, sizeof(pair));
    at += sizeof(pair);
    bc.site = pair[0];
    bc.branch = pair[1];
  }

  const auto num_records = read_scalar<std::uint64_t>(*source_, at);
  at += sizeof(std::uint64_t);
  PTSBE_CHECK(num_records <= (size_ - at) / sizeof(std::uint64_t),
              "truncated dataset file '" + path_ + "'");
  out.records.resize(num_records);
  if (num_records > 0)
    source_->read_at(at, out.records.data(),
                     num_records * sizeof(std::uint64_t));
  at += num_records * sizeof(std::uint64_t);

  out.device_id = 0;  // scheduling artifact; not persisted (format v2)
  offset_ = at;
  ++index_;
  if (index_ == offsets_.size()) offsets_.push_back(offset_);
  return true;
}

std::uint64_t Reader::offset_of(std::uint64_t index) {
  // Extend the lazy offset index by skip-scanning block headers: read the
  // two length fields of each unvisited block and jump over its payload.
  while (offsets_.size() <= index) {
    std::uint64_t at = offsets_.back();
    const auto num_branches =
        read_scalar<std::uint64_t>(*source_, at + 4 * sizeof(std::uint64_t));
    std::uint64_t remaining = size_ - (at + kBatchFixedBytes);
    PTSBE_CHECK(num_branches <= remaining / (2 * sizeof(std::uint64_t)),
                "truncated dataset file '" + path_ + "'");
    at += kBatchFixedBytes + num_branches * 2 * sizeof(std::uint64_t);
    const auto num_records = read_scalar<std::uint64_t>(*source_, at);
    at += sizeof(std::uint64_t);
    PTSBE_CHECK(num_records <= (size_ - at) / sizeof(std::uint64_t),
                "truncated dataset file '" + path_ + "'");
    at += num_records * sizeof(std::uint64_t);
    offsets_.push_back(at);
  }
  return offsets_[index];
}

void Reader::seek_batch(std::uint64_t index) {
  PTSBE_REQUIRE(index <= num_batches_,
                "seek_batch(" + std::to_string(index) + ") past the " +
                    std::to_string(num_batches_) + "-batch dataset");
  offset_ = offset_of(index);
  index_ = index;
}

Reader open_view(const std::string& path, ViewMode mode) {
  return Reader(path, mode);
}

}  // namespace ptsbe::dataset
