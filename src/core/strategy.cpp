#include "ptsbe/core/strategy.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/thread_annotations.hpp"

namespace ptsbe::pts {

namespace {

/// A SiteFilter with no criteria set admits everything; skip the per-branch
/// filter calls entirely in that (common) case.
const SiteFilter* effective_filter(const StrategyConfig& config) {
  const SiteFilter& f = config.site_filter;
  const bool trivial =
      !f.gate_name.has_value() && !f.qubits.has_value() && !f.predicate;
  return trivial ? nullptr : &f;
}

/// CRTP-free helper: the built-ins differ only in name, weighting and the
/// free function they delegate to.
class NamedStrategy : public Strategy {
 public:
  NamedStrategy(std::string name, be::Weighting weighting)
      : name_(std::move(name)), weighting_(weighting) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] be::Weighting weighting() const noexcept override {
    return weighting_;
  }

 private:
  std::string name_;
  be::Weighting weighting_;
};

class ProbabilisticStrategy final : public NamedStrategy {
 public:
  ProbabilisticStrategy()
      : NamedStrategy("probabilistic", be::Weighting::kDrawWeighted) {}

  [[nodiscard]] std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& rng) const override {
    // Draw-weighted estimation needs shot budgets ∝ draw frequency, so
    // merging is forced regardless of the config (Algorithm 2's discard
    // semantics remain available via pts::sample_probabilistic directly).
    Options options = config.options();
    options.merge_duplicates = true;
    return sample_probabilistic(noisy, options, rng,
                                effective_filter(config));
  }
};

class ProportionalStrategy final : public NamedStrategy {
 public:
  ProportionalStrategy()
      : NamedStrategy("proportional", be::Weighting::kDrawWeighted) {}

  [[nodiscard]] std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& rng) const override {
    const std::uint64_t total =
        config.total_shots != 0
            ? config.total_shots
            : static_cast<std::uint64_t>(config.nsamples) * config.nshots;
    return redistribute_proportional(
        sample_probabilistic(noisy, config.options(), rng,
                             effective_filter(config)),
        total);
  }
};

class BandStrategy final : public NamedStrategy {
 public:
  BandStrategy() : NamedStrategy("band", be::Weighting::kProbabilityWeighted) {}

  [[nodiscard]] std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& rng) const override {
    return filter_band(sample_probabilistic(noisy, config.options(), rng,
                                            effective_filter(config)),
                       config.p_min, config.p_max);
  }
};

class EnumerateStrategy final : public NamedStrategy {
 public:
  EnumerateStrategy()
      : NamedStrategy("enumerate", be::Weighting::kProbabilityWeighted) {}

  [[nodiscard]] std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& /*rng*/) const override {
    return enumerate_most_likely(noisy, config.probability_cutoff,
                                 config.nshots, config.max_results);
  }
};

class TwirlStrategy final : public NamedStrategy {
 public:
  TwirlStrategy()
      : NamedStrategy("twirl", be::Weighting::kProbabilityWeighted) {}

  [[nodiscard]] std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& rng) const override {
    return sample_pauli_twirled(noisy, config.options(), rng);
  }
};

class CorrelatedStrategy final : public NamedStrategy {
 public:
  CorrelatedStrategy()
      : NamedStrategy("correlated", be::Weighting::kProbabilityWeighted) {}

  [[nodiscard]] std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& rng) const override {
    return sample_spatially_correlated(noisy, config.options(), rng,
                                       config.boost, config.radius);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct StrategyRegistry::Impl {
  mutable Mutex mutex;
  std::map<std::string, StrategyFactory> factories PTSBE_GUARDED_BY(mutex);
};

StrategyRegistry::StrategyRegistry() : impl_(std::make_shared<Impl>()) {
  register_strategy("probabilistic", []() -> StrategyPtr {
    return std::make_unique<ProbabilisticStrategy>();
  });
  register_strategy("proportional", []() -> StrategyPtr {
    return std::make_unique<ProportionalStrategy>();
  });
  register_strategy(
      "band", []() -> StrategyPtr { return std::make_unique<BandStrategy>(); });
  register_strategy("enumerate", []() -> StrategyPtr {
    return std::make_unique<EnumerateStrategy>();
  });
  register_strategy(
      "twirl", []() -> StrategyPtr { return std::make_unique<TwirlStrategy>(); });
  register_strategy("correlated", []() -> StrategyPtr {
    return std::make_unique<CorrelatedStrategy>();
  });
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::register_strategy(const std::string& name,
                                         StrategyFactory factory) {
  PTSBE_REQUIRE(!name.empty(), "strategy name must be non-empty");
  PTSBE_REQUIRE(static_cast<bool>(factory),
                "strategy factory must be callable");
  MutexLock lock(impl_->mutex);
  const bool inserted =
      impl_->factories.emplace(name, std::move(factory)).second;
  PTSBE_REQUIRE(inserted, "strategy name already registered: " + name);
}

bool StrategyRegistry::contains(const std::string& name) const {
  MutexLock lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

StrategyPtr StrategyRegistry::make(const std::string& name) const {
  StrategyFactory factory;
  {
    MutexLock lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown strategy '" << name << "'; registered strategies:";
    for (const std::string& n : names()) os << ' ' << n;
    throw precondition_error(os.str());
  }
  return factory();
}

std::vector<std::string> StrategyRegistry::names() const {
  MutexLock lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

StrategyPtr make_strategy(const std::string& name) {
  return StrategyRegistry::instance().make(name);
}

}  // namespace ptsbe::pts
