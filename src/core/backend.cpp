#include "ptsbe/core/backend.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/thread_annotations.hpp"
#include "ptsbe/common/timer.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {

namespace {

/// Bits per shot record for `noisy` (one per measure op; all qubits when
/// the circuit has none). ShotResult packs records into 64-bit words, so
/// every backend's supports() declines wider programs instead of silently
/// truncating.
std::size_t record_width(const NoisyCircuit& noisy) {
  const std::size_t measured = noisy.circuit().measured_qubits().size();
  return measured == 0 ? noisy.num_qubits() : measured;
}

/// True when every measurement commutes to the end of the circuit: once a
/// qubit is measured, no gate, second measurement, or noise site — other
/// than readout noise attached to that same measure op, which fires before
/// the record is taken — touches it again. Under this condition recording
/// *at* the measure step (stabilizer frame sampler) and sampling the final
/// state (amplitude backends) give the same distribution, which is what
/// admits QEC syndrome-extraction circuits: each ancilla is measured
/// mid-circuit but quiescent afterwards. Terminal-measurement circuits
/// pass trivially.
bool measurements_are_deferrable(const NoisyCircuit& noisy) {
  const auto& ops = noisy.circuit().ops();
  std::vector<bool> measured(noisy.num_qubits(), false);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    for (unsigned q : op.qubits)
      if (measured[q]) return false;
    const bool is_measure = op.kind == OpKind::kMeasure;
    const unsigned mq = is_measure ? op.qubits.front() : 0;
    if (is_measure) measured[mq] = true;
    for (std::size_t id : noisy.sites_after(i))
      for (unsigned q : noisy.sites()[id].qubits)
        if (measured[q] && !(is_measure && q == mq)) return false;
  }
  return true;
}

/// Type-erasing SimState adapter over the concrete state representations.
/// clone() is the representation's copy constructor — a deep snapshot.
template <typename State>
class SimStateAdapter final : public SimState {
 public:
  explicit SimStateAdapter(State state) : state_(std::move(state)) {}

  [[nodiscard]] std::unique_ptr<SimState> clone() const override {
    return std::make_unique<SimStateAdapter>(*this);
  }

  void apply_gate(const Matrix& matrix,
                  std::span<const unsigned> qubits) override {
    state_.apply_gate(matrix, qubits);
  }

  [[nodiscard]] bool supports_prepared_runs() const override {
    return requires(State& s, std::span<const kernels::PreparedGate> g) {
      s.apply_prepared_gates(g);
    };
  }

  void apply_prepared_run(
      std::span<const kernels::PreparedGate> gates) override {
    if constexpr (requires { state_.apply_prepared_gates(gates); })
      state_.apply_prepared_gates(gates);
    else
      SimState::apply_prepared_run(gates);
  }

  [[nodiscard]] double branch_probability(
      const Matrix& k, std::span<const unsigned> qubits) override {
    return state_.branch_probability(k, qubits);
  }

  double apply_kraus_branch(const Matrix& k,
                            std::span<const unsigned> qubits) override {
    return state_.apply_kraus_branch(k, qubits);
  }

  [[nodiscard]] std::vector<std::uint64_t> sample_shots(
      std::size_t count, RngStream& rng) override {
    return state_.sample_shots(count, rng);
  }

 private:
  State state_;
};

/// Shared skeleton for the three amplitude-style backends: walk the
/// (optionally fused) execution plan once with the spec's assignment, then
/// bulk-sample and reduce to records. The shared-prefix scheduler drives
/// the same plan through the same SimState surface, which is what makes
/// the two schedules bit-for-bit identical.
class AmplitudeBackend : public Backend {
 public:
  explicit AmplitudeBackend(bool fuse_gates) : fuse_gates_(fuse_gates) {}

  [[nodiscard]] ExecPlan make_plan(const NoisyCircuit& noisy) const override {
    return build_exec_plan(noisy, fuse_gates_);
  }

  [[nodiscard]] bool can_fork_states() const noexcept override { return true; }

  /// One-off entry point: builds the plan itself. Executors iterating many
  /// specs should build it once and call run_with_plan.
  [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                               const TrajectorySpec& spec,
                               std::uint64_t shots,
                               RngStream& rng) const override {
    return run_with_plan(noisy, make_plan(noisy), spec, shots, rng);
  }

  [[nodiscard]] ShotResult run_with_plan(const NoisyCircuit& noisy,
                                         const ExecPlan& plan,
                                         const TrajectorySpec& spec,
                                         std::uint64_t shots,
                                         RngStream& rng) const override {
    ShotResult out;
    const std::vector<std::size_t> assignment = full_assignment(noisy, spec);
    WallTimer timer;
    const SimStatePtr state = make_state(noisy.num_qubits());
    const bool batched = state->supports_prepared_runs();
    bool realizable = true;
    std::size_t s = 0;
    while (s < plan.steps.size()) {
      const PlanStep& step = plan.steps[s];
      if (step.is_gate) {
        const std::size_t run =
            batched ? plan.run_starting_at(s) : ExecPlan::npos;
        if (run != ExecPlan::npos) {
          state->apply_prepared_run(plan.prepared_runs[run].gates);
          s += plan.prepared_runs[run].gates.size();
        } else {
          state->apply_gate(step.matrix, step.qubits);
          ++s;
        }
        continue;
      }
      if (!apply_branch(*state, noisy.sites()[step.site],
                        assignment[step.site], out.realized_probability)) {
        realizable = false;
        break;
      }
      ++s;
    }
    out.prepare_seconds = timer.seconds();
    timer.reset();
    if (realizable)
      out.records = reduce_to_records(state->sample_shots(shots, rng),
                                      noisy.circuit().measured_qubits());
    out.sample_seconds = timer.seconds();
    return out;
  }

 private:
  bool fuse_gates_;
};

// ---------------------------------------------------------------------------
// Built-in backends
// ---------------------------------------------------------------------------

class StatevectorBackend final : public AmplitudeBackend {
 public:
  using AmplitudeBackend::AmplitudeBackend;

  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "statevector";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    return noisy.num_qubits() >= 1 && noisy.num_qubits() <= 30 &&
           record_width(noisy) <= 64;
  }

  [[nodiscard]] SimStatePtr make_state(unsigned num_qubits) const override {
    return std::make_unique<SimStateAdapter<StateVector>>(
        StateVector(num_qubits));
  }
};

class DensmatBackend final : public AmplitudeBackend {
 public:
  using AmplitudeBackend::AmplitudeBackend;

  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "densmat";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    return noisy.num_qubits() >= 1 && noisy.num_qubits() <= 13 &&
           record_width(noisy) <= 64;
  }

  [[nodiscard]] SimStatePtr make_state(unsigned num_qubits) const override {
    return std::make_unique<SimStateAdapter<DensityMatrix>>(
        DensityMatrix(num_qubits));
  }
};

class MpsBackend final : public AmplitudeBackend {
 public:
  MpsBackend(MpsConfig config, bool fuse_gates)
      : AmplitudeBackend(fuse_gates), config_(config) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "mps";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    if (noisy.num_qubits() < 1 || record_width(noisy) > 64) return false;
    for (const Operation& op : noisy.circuit().ops())
      if (op.kind == OpKind::kGate && op.arity() > 2) return false;
    for (const NoiseSite& site : noisy.sites())
      if (site.channel->arity() > 2) return false;
    return true;
  }

  [[nodiscard]] SimStatePtr make_state(unsigned num_qubits) const override {
    return std::make_unique<SimStateAdapter<MpsState>>(
        MpsState(num_qubits, config_));
  }

 private:
  MpsConfig config_;
};

/// Backend for the Clifford + Pauli-mixture fragment. The spec's assigned
/// branches are fixed Pauli operators, so the trajectory is itself a
/// Clifford circuit: inline each branch as Pauli gates at its site and hand
/// the result (with zero remaining noise sites) to the word-parallel
/// PauliFrameSampler, whose random initial Z-frame correctly randomises
/// non-deterministic measurement outcomes across the bulk shots.
class StabilizerBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "stabilizer";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    return noisy.num_qubits() >= 1 && record_width(noisy) <= 64 &&
           measurements_are_deferrable(noisy) &&
           PauliFrameSampler::is_supported(noisy);
  }

  [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                               const TrajectorySpec& spec,
                               std::uint64_t shots,
                               RngStream& rng) const override {
    ShotResult out;
    const std::vector<std::size_t> assignment = full_assignment(noisy, spec);

    WallTimer timer;
    Circuit derived(noisy.num_qubits());
    const auto inline_site = [&](std::size_t id) {
      const NoiseSite& site = noisy.sites()[id];
      const KrausChannel& ch = *site.channel;
      const std::size_t branch = assignment[id];
      std::vector<std::pair<bool, bool>> toggles;
      PTSBE_REQUIRE(ch.is_unitary_mixture() &&
                        pauli_toggles(ch.unitary(branch), ch.arity(), toggles),
                    "stabilizer backend requires Pauli-mixture noise");
      for (std::size_t k = 0; k < toggles.size(); ++k) {
        const auto [x, z] = toggles[k];
        const unsigned q = site.qubits[k];
        if (x && z)
          derived.y(q);
        else if (x)
          derived.x(q);
        else if (z)
          derived.z(q);
      }
      out.realized_probability *= ch.nominal_probabilities()[branch];
    };
    for (std::size_t id : noisy.sites_after(NoiseSite::kBeforeCircuit))
      inline_site(id);
    const auto& ops = noisy.circuit().ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == OpKind::kMeasure) {
        // Readout-noise sites fire before the record is taken.
        for (std::size_t id : noisy.sites_after(i)) inline_site(id);
        derived.measure(ops[i].qubits.front());
        continue;
      }
      derived.gate(ops[i].name, ops[i].matrix, ops[i].qubits, ops[i].params);
      for (std::size_t id : noisy.sites_after(i)) inline_site(id);
    }
    // Zero noise sites remain: the frame sampler's stochastic machinery is
    // inert and it reduces to reference-run + bulk frame propagation.
    const PauliFrameSampler sampler(NoiseModel().apply(derived),
                                    RngStream(rng.bits64()));
    out.prepare_seconds = timer.seconds();
    timer.reset();
    out.records = sampler.sample(shots, rng);
    out.sample_seconds = timer.seconds();
    return out;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct BackendRegistry::Impl {
  mutable Mutex mutex;
  std::map<std::string, BackendFactory> factories PTSBE_GUARDED_BY(mutex);
};

BackendRegistry::BackendRegistry() : impl_(std::make_shared<Impl>()) {
  register_backend("statevector", [](const BackendConfig& config) -> BackendPtr {
    return std::make_unique<StatevectorBackend>(config.fuse_gates);
  });
  register_backend("densmat", [](const BackendConfig& config) -> BackendPtr {
    return std::make_unique<DensmatBackend>(config.fuse_gates);
  });
  register_backend("stabilizer", [](const BackendConfig&) -> BackendPtr {
    return std::make_unique<StabilizerBackend>();
  });
  const auto make_mps = [](const BackendConfig& config) -> BackendPtr {
    return std::make_unique<MpsBackend>(config.mps, config.fuse_gates);
  };
  register_backend("mps", make_mps);
  // Alias matching the paper's CUDA-Q backend name.
  register_backend("tensornet", make_mps);
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       BackendFactory factory) {
  PTSBE_REQUIRE(!name.empty(), "backend name must be non-empty");
  PTSBE_REQUIRE(static_cast<bool>(factory), "backend factory must be callable");
  MutexLock lock(impl_->mutex);
  const bool inserted =
      impl_->factories.emplace(name, std::move(factory)).second;
  PTSBE_REQUIRE(inserted, "backend name already registered: " + name);
}

bool BackendRegistry::contains(const std::string& name) const {
  MutexLock lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

BackendPtr BackendRegistry::make(const std::string& name,
                                 const BackendConfig& config) const {
  BackendFactory factory;
  {
    MutexLock lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown backend '" << name << "'; registered backends:";
    for (const std::string& n : names()) os << ' ' << n;
    throw precondition_error(os.str());
  }
  return factory(config);
}

std::vector<std::string> BackendRegistry::names() const {
  MutexLock lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

BackendPtr make_backend(const std::string& name, const BackendConfig& config) {
  return BackendRegistry::instance().make(name, config);
}

}  // namespace ptsbe
