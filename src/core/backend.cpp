#include "ptsbe/core/backend.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/timer.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {

namespace {

/// Branch lookup for one trajectory: site index → assigned branch. Sites
/// the spec does not list take their channel's default branch.
std::vector<std::size_t> full_assignment(const NoisyCircuit& noisy,
                                         const TrajectorySpec& spec) {
  std::vector<std::size_t> assignment(noisy.num_sites());
  for (std::size_t i = 0; i < noisy.num_sites(); ++i)
    assignment[i] = noisy.sites()[i].channel->default_branch();
  for (const BranchChoice& bc : spec.branches) {
    PTSBE_REQUIRE(bc.site < noisy.num_sites(), "spec site out of range");
    PTSBE_REQUIRE(bc.branch < noisy.sites()[bc.site].channel->num_branches(),
                  "spec branch out of range");
    assignment[bc.site] = bc.branch;
  }
  return assignment;
}

/// Prepare the trajectory state for `assignment` on `state`; accumulates
/// the realised probability of every applied branch. Returns false when the
/// spec is unrealizable at this state (a general-Kraus branch with zero
/// realised probability — e.g. a second amplitude-damping decay after the
/// qubit already reached |0⟩); the caller reports realized_probability 0
/// and no records. Works for any state type exposing apply_gate /
/// branch_probability / apply_kraus_branch (statevector, MPS, densmat).
template <typename State>
bool prepare_state(State& state, const NoisyCircuit& noisy,
                   const std::vector<std::size_t>& assignment,
                   double& realized_probability) {
  const auto apply_site = [&](std::size_t id) {
    const NoiseSite& site = noisy.sites()[id];
    const std::size_t branch = assignment[id];
    const KrausChannel& ch = *site.channel;
    if (ch.is_unitary_mixture()) {
      state.apply_gate(ch.unitary(branch), site.qubits);
      realized_probability *= ch.nominal_probabilities()[branch];
      return true;
    }
    const double p = state.branch_probability(ch.kraus(branch), site.qubits);
    if (p < 1e-14) {
      realized_probability = 0.0;
      return false;
    }
    realized_probability *= state.apply_kraus_branch(ch.kraus(branch),
                                                     site.qubits);
    return true;
  };
  for (std::size_t id : noisy.sites_after(NoiseSite::kBeforeCircuit))
    if (!apply_site(id)) return false;
  const auto& ops = noisy.circuit().ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kGate)
      state.apply_gate(ops[i].matrix, ops[i].qubits);
    for (std::size_t id : noisy.sites_after(i))
      if (!apply_site(id)) return false;
  }
  return true;
}

/// Reduce full basis-state indices to measured-bit records.
std::vector<std::uint64_t> to_records(std::vector<std::uint64_t> shots,
                                      const std::vector<unsigned>& measured) {
  if (!measured.empty())
    for (std::uint64_t& s : shots) s = extract_bits(s, measured);
  return shots;
}

/// Bits per shot record for `noisy` (one per measure op; all qubits when
/// the circuit has none). ShotResult packs records into 64-bit words, so
/// every backend's supports() declines wider programs instead of silently
/// truncating.
std::size_t record_width(const NoisyCircuit& noisy) {
  const std::size_t measured = noisy.circuit().measured_qubits().size();
  return measured == 0 ? noisy.num_qubits() : measured;
}

/// True when no gate op follows a measure op — the terminal-measurement
/// convention the circuit IR documents. Backends that record outcomes *at*
/// the measure step (stabilizer) only match the sample-the-final-state
/// backends on this fragment, so the stabilizer declines violations.
bool measurements_are_terminal(const Circuit& circuit) {
  bool seen_measure = false;
  for (const Operation& op : circuit.ops()) {
    if (op.kind == OpKind::kMeasure)
      seen_measure = true;
    else if (seen_measure)
      return false;
  }
  return true;
}

/// Shared run() skeleton for the three amplitude-style backends: construct
/// a state, prepare the trajectory, bulk-sample, reduce to records.
template <typename State, typename MakeState>
ShotResult run_prepare_sample(const NoisyCircuit& noisy,
                              const TrajectorySpec& spec, std::uint64_t shots,
                              RngStream& rng, const MakeState& make_state) {
  ShotResult out;
  const std::vector<std::size_t> assignment = full_assignment(noisy, spec);
  WallTimer timer;
  State state = make_state(noisy.num_qubits());
  const bool realizable =
      prepare_state(state, noisy, assignment, out.realized_probability);
  out.prepare_seconds = timer.seconds();
  timer.reset();
  if (realizable)
    out.records = to_records(state.sample_shots(shots, rng),
                             noisy.circuit().measured_qubits());
  out.sample_seconds = timer.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// Built-in backends
// ---------------------------------------------------------------------------

class StatevectorBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "statevector";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    return noisy.num_qubits() >= 1 && noisy.num_qubits() <= 30 &&
           record_width(noisy) <= 64;
  }

  [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                               const TrajectorySpec& spec,
                               std::uint64_t shots,
                               RngStream& rng) const override {
    return run_prepare_sample<StateVector>(
        noisy, spec, shots, rng,
        [](unsigned n) { return StateVector(n); });
  }
};

class DensmatBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "densmat";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    return noisy.num_qubits() >= 1 && noisy.num_qubits() <= 13 &&
           record_width(noisy) <= 64;
  }

  [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                               const TrajectorySpec& spec,
                               std::uint64_t shots,
                               RngStream& rng) const override {
    return run_prepare_sample<DensityMatrix>(
        noisy, spec, shots, rng,
        [](unsigned n) { return DensityMatrix(n); });
  }
};

class MpsBackend final : public Backend {
 public:
  explicit MpsBackend(MpsConfig config) : config_(config) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "mps";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    if (noisy.num_qubits() < 1 || record_width(noisy) > 64) return false;
    for (const Operation& op : noisy.circuit().ops())
      if (op.kind == OpKind::kGate && op.arity() > 2) return false;
    for (const NoiseSite& site : noisy.sites())
      if (site.channel->arity() > 2) return false;
    return true;
  }

  [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                               const TrajectorySpec& spec,
                               std::uint64_t shots,
                               RngStream& rng) const override {
    return run_prepare_sample<MpsState>(
        noisy, spec, shots, rng,
        [this](unsigned n) { return MpsState(n, config_); });
  }

 private:
  MpsConfig config_;
};

/// Backend for the Clifford + Pauli-mixture fragment. The spec's assigned
/// branches are fixed Pauli operators, so the trajectory is itself a
/// Clifford circuit: inline each branch as Pauli gates at its site and hand
/// the result (with zero remaining noise sites) to the word-parallel
/// PauliFrameSampler, whose random initial Z-frame correctly randomises
/// non-deterministic measurement outcomes across the bulk shots.
class StabilizerBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "stabilizer";
    return kName;
  }

  [[nodiscard]] bool supports(const NoisyCircuit& noisy) const override {
    return noisy.num_qubits() >= 1 && record_width(noisy) <= 64 &&
           measurements_are_terminal(noisy.circuit()) &&
           PauliFrameSampler::is_supported(noisy);
  }

  [[nodiscard]] ShotResult run(const NoisyCircuit& noisy,
                               const TrajectorySpec& spec,
                               std::uint64_t shots,
                               RngStream& rng) const override {
    ShotResult out;
    const std::vector<std::size_t> assignment = full_assignment(noisy, spec);

    WallTimer timer;
    Circuit derived(noisy.num_qubits());
    const auto inline_site = [&](std::size_t id) {
      const NoiseSite& site = noisy.sites()[id];
      const KrausChannel& ch = *site.channel;
      const std::size_t branch = assignment[id];
      std::vector<std::pair<bool, bool>> toggles;
      PTSBE_REQUIRE(ch.is_unitary_mixture() &&
                        pauli_toggles(ch.unitary(branch), ch.arity(), toggles),
                    "stabilizer backend requires Pauli-mixture noise");
      for (std::size_t k = 0; k < toggles.size(); ++k) {
        const auto [x, z] = toggles[k];
        const unsigned q = site.qubits[k];
        if (x && z)
          derived.y(q);
        else if (x)
          derived.x(q);
        else if (z)
          derived.z(q);
      }
      out.realized_probability *= ch.nominal_probabilities()[branch];
    };
    for (std::size_t id : noisy.sites_after(NoiseSite::kBeforeCircuit))
      inline_site(id);
    const auto& ops = noisy.circuit().ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == OpKind::kMeasure) {
        // Readout-noise sites fire before the record is taken.
        for (std::size_t id : noisy.sites_after(i)) inline_site(id);
        derived.measure(ops[i].qubits.front());
        continue;
      }
      derived.gate(ops[i].name, ops[i].matrix, ops[i].qubits, ops[i].params);
      for (std::size_t id : noisy.sites_after(i)) inline_site(id);
    }
    // Zero noise sites remain: the frame sampler's stochastic machinery is
    // inert and it reduces to reference-run + bulk frame propagation.
    const PauliFrameSampler sampler(NoiseModel().apply(derived),
                                    RngStream(rng.bits64()));
    out.prepare_seconds = timer.seconds();
    timer.reset();
    out.records = sampler.sample(shots, rng);
    out.sample_seconds = timer.seconds();
    return out;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct BackendRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, BackendFactory> factories;
};

BackendRegistry::BackendRegistry() : impl_(std::make_shared<Impl>()) {
  register_backend("statevector", [](const BackendConfig&) -> BackendPtr {
    return std::make_unique<StatevectorBackend>();
  });
  register_backend("densmat", [](const BackendConfig&) -> BackendPtr {
    return std::make_unique<DensmatBackend>();
  });
  register_backend("stabilizer", [](const BackendConfig&) -> BackendPtr {
    return std::make_unique<StabilizerBackend>();
  });
  const auto make_mps = [](const BackendConfig& config) -> BackendPtr {
    return std::make_unique<MpsBackend>(config.mps);
  };
  register_backend("mps", make_mps);
  // Alias matching the paper's CUDA-Q backend name.
  register_backend("tensornet", make_mps);
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       BackendFactory factory) {
  PTSBE_REQUIRE(!name.empty(), "backend name must be non-empty");
  PTSBE_REQUIRE(static_cast<bool>(factory), "backend factory must be callable");
  std::lock_guard lock(impl_->mutex);
  const bool inserted =
      impl_->factories.emplace(name, std::move(factory)).second;
  PTSBE_REQUIRE(inserted, "backend name already registered: " + name);
}

bool BackendRegistry::contains(const std::string& name) const {
  std::lock_guard lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

BackendPtr BackendRegistry::make(const std::string& name,
                                 const BackendConfig& config) const {
  BackendFactory factory;
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown backend '" << name << "'; registered backends:";
    for (const std::string& n : names()) os << ' ' << n;
    throw precondition_error(os.str());
  }
  return factory(config);
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

BackendPtr make_backend(const std::string& name, const BackendConfig& config) {
  return BackendRegistry::instance().make(name, config);
}

}  // namespace ptsbe
