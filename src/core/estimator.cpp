#include "ptsbe/core/estimator.hpp"

#include <cmath>
#include <vector>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe::be {

double shot_weight(const TrajectoryBatch& batch, Weighting weighting) {
  if (batch.records.empty()) return 0.0;  // unrealizable spec
  double v = 0.0;
  switch (weighting) {
    case Weighting::kDrawWeighted:
      // Each shot is one draw; correct nominal→realised.
      PTSBE_REQUIRE(batch.spec.nominal_probability > 0.0,
                    "draw-weighted batch with zero nominal probability");
      v = batch.realized_probability / batch.spec.nominal_probability;
      break;
    case Weighting::kProbabilityWeighted:
      v = batch.realized_probability /
          static_cast<double>(batch.records.size());
      break;
  }
  return v > 0.0 ? v : 0.0;
}

Estimate estimate(const Result& result, Weighting weighting,
                  const std::function<double(std::uint64_t)>& f) {
  PTSBE_REQUIRE(static_cast<bool>(f), "estimator needs an observable");
  // Self-normalised importance estimate over per-shot weights v:
  // μ = Σ v f / Σ v, with the standard weighted (effective-sample-size)
  // standard error  SE² = Σ v²(f−μ)² / (Σ v)².  Shots within one batch share
  // a trajectory, so SE mildly understates correlated components — callers
  // comparing PTS strategies should prefer many trajectories over huge
  // batches when error bars matter.
  std::vector<double> per_shot_weight;
  std::vector<double> values;
  for (const TrajectoryBatch& batch : result.batches) {
    const double v = shot_weight(batch, weighting);
    if (v <= 0.0) continue;
    for (std::uint64_t r : batch.records) {
      per_shot_weight.push_back(v);
      values.push_back(f(r));
    }
  }
  Estimate out;
  if (per_shot_weight.empty()) return out;
  double wsum = 0.0, num = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    wsum += per_shot_weight[i];
    num += per_shot_weight[i] * values[i];
  }
  out.value = num / wsum;
  out.total_weight = wsum;
  double var = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - out.value;
    var += per_shot_weight[i] * per_shot_weight[i] * d * d;
  }
  out.std_error = std::sqrt(var) / wsum;
  return out;
}

Estimate estimate_z_parity(const Result& result, Weighting weighting,
                           std::uint64_t mask) {
  return estimate(result, weighting, [mask](std::uint64_t r) {
    return parity64(r & mask) ? -1.0 : 1.0;
  });
}

Estimate estimate_probability(const Result& result, Weighting weighting,
                              const std::function<bool(std::uint64_t)>& pred) {
  return estimate(result, weighting,
                  [&pred](std::uint64_t r) { return pred(r) ? 1.0 : 0.0; });
}

}  // namespace ptsbe::be
