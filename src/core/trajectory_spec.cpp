#include "ptsbe/core/trajectory_spec.hpp"

#include <sstream>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe {

std::vector<std::string> describe_errors(const NoisyCircuit& noisy,
                                         const TrajectorySpec& spec) {
  std::vector<std::string> out;
  out.reserve(spec.branches.size());
  for (const BranchChoice& bc : spec.branches) {
    PTSBE_REQUIRE(bc.site < noisy.num_sites(), "site index out of range");
    const NoiseSite& site = noisy.sites()[bc.site];
    std::ostringstream os;
    os << "site " << bc.site;
    if (site.after_op == NoiseSite::kBeforeCircuit) {
      os << " (state prep";
    } else {
      os << " (after op " << site.after_op << " '"
         << noisy.circuit().ops()[site.after_op].name << '\'';
    }
    os << ", qubits {";
    for (std::size_t i = 0; i < site.qubits.size(); ++i)
      os << (i ? "," : "") << site.qubits[i];
    os << "}): " << site.channel->name() << " branch " << bc.branch;
    out.push_back(os.str());
  }
  return out;
}

std::uint64_t total_shots(const std::vector<TrajectorySpec>& specs) {
  std::uint64_t total = 0;
  for (const TrajectorySpec& s : specs) total += s.shots;
  return total;
}

void refresh_probabilities(const NoisyCircuit& noisy,
                           std::vector<TrajectorySpec>& specs) {
  for (TrajectorySpec& spec : specs) {
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    pairs.reserve(spec.branches.size());
    for (const BranchChoice& bc : spec.branches)
      pairs.push_back({bc.site, bc.branch});
    spec.nominal_probability = noisy.nominal_sparse_probability(pairs);
  }
}

}  // namespace ptsbe
