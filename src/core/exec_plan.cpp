#include "ptsbe/core/exec_plan.hpp"

#include <utility>

#include "ptsbe/circuit/fusion.hpp"
#include "ptsbe/common/error.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe {

namespace {

void emit_segment(ExecPlan& plan, std::vector<Operation>& segment,
                  bool fuse_gates) {
  if (segment.empty()) return;
  std::vector<Operation> run =
      fuse_gates ? fuse_gate_run(segment) : std::move(segment);
  for (Operation& op : run) {
    PlanStep step;
    step.is_gate = true;
    step.matrix = std::move(op.matrix);
    step.qubits = std::move(op.qubits);
    plan.steps.push_back(std::move(step));
  }
  segment.clear();
}

void emit_sites(ExecPlan& plan, std::vector<Operation>& segment,
                bool fuse_gates, const std::vector<std::size_t>& site_ids) {
  if (site_ids.empty()) return;
  emit_segment(plan, segment, fuse_gates);  // sites are fusion barriers
  for (std::size_t id : site_ids) {
    PlanStep step;
    step.is_gate = false;
    step.site = id;
    plan.steps.push_back(std::move(step));
  }
}

}  // namespace

ExecPlan build_exec_plan(const NoisyCircuit& noisy, bool fuse_gates) {
  ExecPlan plan;
  std::vector<Operation> segment;
  emit_sites(plan, segment, fuse_gates,
             noisy.sites_after(NoiseSite::kBeforeCircuit));
  const auto& ops = noisy.circuit().ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kGate) {
      segment.push_back(ops[i]);
      ++plan.unfused_gate_count;
    } else if (ops[i].kind == OpKind::kMeasure) {
      // Measurements are fusion barriers, like noise sites: a consumer that
      // records at the measure step must see the pre-measurement segment
      // applied as written.
      emit_segment(plan, segment, fuse_gates);
    }
    emit_sites(plan, segment, fuse_gates, noisy.sites_after(i));
  }
  emit_segment(plan, segment, fuse_gates);
  for (const PlanStep& step : plan.steps)
    step.is_gate ? ++plan.gate_count : ++plan.site_count;

  // Pre-classify barrier-free 1-/2-qubit gate stretches into PreparedRuns:
  // the per-gate classification and matrix flattening happen once here,
  // then every trajectory walk consumes whole runs through the batched
  // kernel entry point. A gate wider than 2 qubits breaks the run (it
  // takes the general k-qubit path), as does any site step.
  plan.run_at_step.assign(plan.steps.size(), ExecPlan::npos);
  std::size_t s = 0;
  while (s < plan.steps.size()) {
    const PlanStep& step = plan.steps[s];
    if (!step.is_gate || step.qubits.size() > 2) {
      ++s;
      continue;
    }
    ExecPlan::PreparedRun run;
    run.first_step = s;
    while (s < plan.steps.size() && plan.steps[s].is_gate &&
           plan.steps[s].qubits.size() <= 2) {
      run.gates.push_back(
          kernels::prepare_gate(plan.steps[s].matrix, plan.steps[s].qubits));
      ++s;
    }
    plan.run_at_step[run.first_step] = plan.prepared_runs.size();
    plan.prepared_runs.push_back(std::move(run));
  }
  return plan;
}

std::vector<std::size_t> full_assignment(const NoisyCircuit& noisy,
                                         const TrajectorySpec& spec) {
  std::vector<std::size_t> assignment(noisy.num_sites());
  for (std::size_t i = 0; i < noisy.num_sites(); ++i)
    assignment[i] = noisy.sites()[i].channel->default_branch();
  for (const BranchChoice& bc : spec.branches) {
    PTSBE_REQUIRE(bc.site < noisy.num_sites(), "spec site out of range");
    PTSBE_REQUIRE(bc.branch < noisy.sites()[bc.site].channel->num_branches(),
                  "spec branch out of range");
    assignment[bc.site] = bc.branch;
  }
  return assignment;
}

bool apply_branch(SimState& state, const NoiseSite& site, std::size_t branch,
                  double& realized) {
  const KrausChannel& ch = *site.channel;
  if (ch.is_unitary_mixture()) {
    state.apply_gate(ch.unitary(branch), site.qubits);
    realized *= ch.nominal_probabilities()[branch];
    return true;
  }
  const double p = state.branch_probability(ch.kraus(branch), site.qubits);
  if (p < 1e-14) {
    realized = 0.0;
    return false;
  }
  realized *= state.apply_kraus_branch(ch.kraus(branch), site.qubits);
  return true;
}

std::vector<std::uint64_t> reduce_to_records(
    std::vector<std::uint64_t> shots, const std::vector<unsigned>& measured) {
  if (!measured.empty())
    for (std::uint64_t& s : shots) s = extract_bits(s, measured);
  return shots;
}

}  // namespace ptsbe
