#include "ptsbe/core/trajectory_executor.hpp"

#include <algorithm>
#include <utility>

#include "ptsbe/common/error.hpp"

namespace ptsbe::be {

std::size_t resolved_threads(const Options& options) noexcept {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return std::max({threads, options.num_devices, std::size_t{1}});
}

TrajectoryExecutor::TrajectoryExecutor(std::size_t num_workers) {
  const std::size_t count = std::max<std::size_t>(1, num_workers);
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(count);
  // Threads start in drain(): seeding finishes before any task runs, which
  // is what makes single-worker execution order deterministic.
}

TrajectoryExecutor::~TrajectoryExecutor() {
  // drain() already joined on the normal path; this covers a drain that was
  // never reached (e.g. an exception while seeding).
  stop_.store(true, std::memory_order_release);
  bump_events();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  for (CompletedNode* node = completed_.exchange(nullptr);
       node != nullptr;) {
    CompletedNode* next = node->next;
    delete node;
    node = next;
  }
}

void TrajectoryExecutor::spawn(WorkerTask task) {
  PTSBE_REQUIRE(static_cast<bool>(task), "cannot spawn an empty task");
  const std::size_t target = seed_cursor_++ % queues_.size();
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    WorkerQueue& queue = *queues_[target];
    MutexLock lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  bump_events();
}

void TrajectoryExecutor::spawn_from(std::size_t worker, WorkerTask task) {
  PTSBE_REQUIRE(static_cast<bool>(task), "cannot spawn an empty task");
  PTSBE_REQUIRE(worker < queues_.size(), "spawn_from: bad worker id");
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    WorkerQueue& queue = *queues_[worker];
    MutexLock lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  bump_events();
}

void TrajectoryExecutor::emit(TrajectoryBatch&& batch) {
  // Backpressure: with the drain loop more than the bound behind, wait for
  // it to consume a round before producing more. The bound is soft (racing
  // workers may overshoot by a few batches) — what matters is that the
  // undelivered set stays O(workers), not O(corpus). Cancellation releases
  // waiters: the drain loop keeps consuming (and dropping) regardless.
  const std::size_t limit = kMaxQueuedPerWorker * queues_.size();
  while (!cancelled()) {
    const std::uint64_t seen = drained_epoch_.load(std::memory_order_acquire);
    if (queued_.load(std::memory_order_acquire) < limit) break;
    drained_epoch_.wait(seen, std::memory_order_acquire);
  }
  queued_.fetch_add(1, std::memory_order_acq_rel);
  auto* node = new CompletedNode{std::move(batch), nullptr};
  node->next = completed_.load(std::memory_order_relaxed);
  while (!completed_.compare_exchange_weak(node->next, node,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
  }
  bump_events();
}

void TrajectoryExecutor::cancel() noexcept {
  cancelled_.store(true, std::memory_order_release);
  // Release emit() backpressure waiters so cancelled tasks finish fast.
  drained_epoch_.fetch_add(1, std::memory_order_release);
  drained_epoch_.notify_all();
}

void TrajectoryExecutor::report_error(std::exception_ptr error) noexcept {
  {
    MutexLock lock(error_mutex_);
    if (!task_error_) task_error_ = std::move(error);
  }
  cancel();
}

void TrajectoryExecutor::bump_events() noexcept {
  events_.fetch_add(1, std::memory_order_release);
  events_.notify_all();
}

WorkerTask TrajectoryExecutor::try_pop(std::size_t self) {
  {
    // Own deque, newest first: a DFS worker stays on the subtree it just
    // forked, so live state snapshots track the current path, not the
    // whole frontier.
    WorkerQueue& own = *queues_[self];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      WorkerTask task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal oldest from a victim: the shallowest pending subtree is the
  // biggest chunk of work available.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      WorkerTask task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void TrajectoryExecutor::finish_task() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) bump_events();
}

void TrajectoryExecutor::worker_loop(std::size_t self) {
  while (true) {
    if (WorkerTask task = try_pop(self)) {
      try {
        task(self);
      } catch (...) {
        report_error(std::current_exception());
      }
      finish_task();
      continue;
    }
    const std::uint64_t seen = events_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    if (WorkerTask task = try_pop(self)) {
      try {
        task(self);
      } catch (...) {
        report_error(std::current_exception());
      }
      finish_task();
      continue;
    }
    events_.wait(seen, std::memory_order_acquire);
  }
}

void TrajectoryExecutor::drain_completed(
    const std::function<void(TrajectoryBatch&&)>& deliver,
    std::exception_ptr& delivery_error) {
  CompletedNode* list = completed_.exchange(nullptr, std::memory_order_acquire);
  if (list == nullptr) return;
  // The Treiber stack pops newest-first; reverse to restore push order
  // (with one worker that is exactly spec completion order).
  CompletedNode* ordered = nullptr;
  while (list != nullptr) {
    CompletedNode* next = list->next;
    list->next = ordered;
    ordered = list;
    list = next;
  }
  std::size_t consumed = 0;
  while (ordered != nullptr) {
    CompletedNode* next = ordered->next;
    if (!delivery_error) {
      try {
        deliver(std::move(ordered->batch));
      } catch (...) {
        // First delivery failure cancels the run; in-flight trajectories
        // complete and their batches are dropped below.
        delivery_error = std::current_exception();
        cancel();
      }
    }
    delete ordered;
    ordered = next;
    ++consumed;
  }
  queued_.fetch_sub(consumed, std::memory_order_acq_rel);
  // Wake emit() backpressure waiters: capacity just freed up.
  drained_epoch_.fetch_add(1, std::memory_order_release);
  drained_epoch_.notify_all();
}

void TrajectoryExecutor::drain(
    const std::function<void(TrajectoryBatch&&)>& deliver) {
  PTSBE_REQUIRE(workers_.empty(), "drain() may only be called once");
  std::exception_ptr delivery_error;
  if (pending_.load(std::memory_order_acquire) != 0) {
    for (std::size_t i = 0; i < queues_.size(); ++i)
      workers_.emplace_back([this, i] { worker_loop(i); });
    while (true) {
      drain_completed(deliver, delivery_error);
      const std::uint64_t seen = events_.load(std::memory_order_acquire);
      if (pending_.load(std::memory_order_acquire) == 0 &&
          completed_.load(std::memory_order_acquire) == nullptr)
        break;
      if (completed_.load(std::memory_order_acquire) != nullptr) continue;
      events_.wait(seen, std::memory_order_acquire);
    }
    stop_.store(true, std::memory_order_release);
    bump_events();
    for (std::thread& worker : workers_) worker.join();
    // Workers may have emitted between the last drain and their exit.
    drain_completed(deliver, delivery_error);
  }
  if (delivery_error) std::rethrow_exception(delivery_error);
  MutexLock lock(error_mutex_);
  if (task_error_) std::rethrow_exception(task_error_);
}

}  // namespace ptsbe::be
