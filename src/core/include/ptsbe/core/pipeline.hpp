#pragma once

/// \file pipeline.hpp
/// \brief The PTSBE facade: PTS → BE → estimation as one fluent pipeline.
///
/// The paper's point is that pre-trajectory sampling, batched execution and
/// estimation form *one* pipeline; this header makes the public API say so.
/// A `Pipeline` selects its PTS strategy and simulator backend **by
/// registry name**, threads one master seed through both stages, and
/// returns a `RunResult` that bundles the BE output with the weighting the
/// strategy declared — so estimates can no longer be silently biased by
/// pairing, say, band-filtered specs with the draw-weighted estimator.
///
/// ```cpp
/// pts::StrategyConfig cfg;
/// cfg.nsamples = 4000;
/// cfg.p_min = 1e-7;  cfg.p_max = 1e-3;
/// const RunResult run = Pipeline(circuit, noise)
///                           .strategy("band", cfg)
///                           .backend("mps", mps_cfg)
///                           .devices(8)
///                           .seed(42)
///                           .run();
/// const auto tail = run.estimate_probability(accept);
/// run.to_binary("shots.bin");
/// ```
///
/// The pts.hpp free functions and be::execute remain the documented
/// low-level layer for callers that need to post-process specs between the
/// stages.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/estimator.hpp"
#include "ptsbe/core/strategy.hpp"

namespace ptsbe {

/// Everything one pipeline run produces: the BE result plus the metadata
/// needed to consume it correctly (the strategy-declared weighting) and the
/// component names that produced it (diagnostics / dataset provenance).
struct RunResult {
  be::Result result;
  /// Estimator weighting declared by the strategy that sampled the specs.
  be::Weighting weighting = be::Weighting::kDrawWeighted;
  /// Registry names this run was wired from.
  std::string strategy;
  std::string backend;
  /// Trajectory specifications executed (== result.batches.size()).
  std::size_t num_specs = 0;
  /// Schedule the caller asked for (Pipeline::schedule).
  be::Schedule schedule_requested = be::Schedule::kIndependent;
  /// Schedule BE actually executed. Differs from `schedule_requested` only
  /// when shared-prefix was requested with a backend that cannot fork
  /// states (stabilizer) and BE deterministically fell back to the
  /// independent schedule — records are identical by contract either way.
  be::Schedule schedule_executed = be::Schedule::kIndependent;

  /// True when the shared-prefix → independent fallback occurred.
  [[nodiscard]] bool schedule_fell_back() const noexcept {
    return schedule_requested != schedule_executed;
  }

  /// Estimate E[f(record)] under the physical noisy distribution, using the
  /// strategy's declared weighting.
  [[nodiscard]] be::Estimate estimate(
      const std::function<double(std::uint64_t)>& f) const;

  /// ⟨Z…Z⟩ over the record bits selected by `mask`.
  [[nodiscard]] be::Estimate estimate_z_parity(std::uint64_t mask) const;

  /// Probability that `predicate` holds.
  [[nodiscard]] be::Estimate estimate_probability(
      const std::function<bool(std::uint64_t)>& predicate) const;

  /// Dataset export (see dataset.hpp for the formats).
  void to_csv(const std::string& path) const;
  void to_binary(const std::string& path) const;
};

/// Fluent builder wiring the whole PTSBE pipeline. Setters return *this;
/// `run()` is const, so one configured pipeline can be run repeatedly
/// (vary `seed` between calls for independent repetitions).
class Pipeline {
 public:
  /// Bind `noise` to `circuit` (NoiseModel::apply) and start from the
  /// resulting noisy program.
  Pipeline(const Circuit& circuit, const NoiseModel& noise);

  /// Start from an already-expanded noisy program.
  explicit Pipeline(NoisyCircuit noisy);

  /// Select the PTS strategy by registry name (default: "probabilistic"
  /// with a default-constructed config). Unknown names throw at run().
  Pipeline& strategy(std::string name, pts::StrategyConfig config = {});

  /// Select the simulator backend by registry name (default:
  /// "statevector"). Unknown names throw at run().
  Pipeline& backend(std::string name, BackendConfig config = {});

  /// Trajectory scheduling policy (default: independent). Shared-prefix
  /// scheduling amortises overlapping preparation sweeps across specs and
  /// produces bit-identical records (see be::Schedule).
  Pipeline& schedule(be::Schedule schedule);

  /// Worker threads for inter-trajectory parallelism (default 1; 0 =
  /// hardware concurrency). Records are bit-identical at every thread
  /// count — see be::Options::threads.
  Pipeline& threads(std::size_t num_threads);

  /// Simulated devices for inter-trajectory parallelism (default 1).
  /// Legacy alias for the same worker pool as `threads`; the effective
  /// worker count is the max of the two knobs.
  Pipeline& devices(std::size_t num_devices);

  /// Master seed for *both* stages: PTS samples from the master stream
  /// (subsequence 0) and BE gives trajectory t substream t+1, so the two
  /// stages never share randomness and a seed pins the entire run.
  Pipeline& seed(std::uint64_t seed);

  /// Inject a pre-built execution plan so run() skips fusion+lowering
  /// (see be::Options::plan — the ptsbe::serve plan-cache hook). The plan
  /// must come from `make_plan` of a backend matching this pipeline's
  /// backend()/config against program(); records are bit-identical either
  /// way. Pass nullptr to restore per-run plan building.
  Pipeline& cached_plan(std::shared_ptr<const ExecPlan> plan);

  /// The noisy program this pipeline executes.
  [[nodiscard]] const NoisyCircuit& program() const noexcept { return noisy_; }

  /// The weighting the configured strategy declares (resolves the name).
  [[nodiscard]] be::Weighting weighting() const;

  /// Run the PTS stage only — the specs run() would execute.
  [[nodiscard]] std::vector<TrajectorySpec> sample() const;

  /// PTS → BE, materialising every batch.
  [[nodiscard]] RunResult run() const;

  /// PTS → streaming BE: batches are delivered to `sink` as devices finish
  /// (see be::execute_streaming) instead of accumulating in a RunResult.
  be::StreamSummary run_streaming(const be::BatchSink& sink) const;

 private:
  /// The single definition of the PTS stage's seeding convention.
  [[nodiscard]] std::vector<TrajectorySpec> sample_with(
      const pts::Strategy& strat) const;

  NoisyCircuit noisy_;
  std::string strategy_name_ = "probabilistic";
  pts::StrategyConfig strategy_config_;
  be::Options exec_;
};

}  // namespace ptsbe
