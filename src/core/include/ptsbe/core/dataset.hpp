#pragma once

/// \file dataset.hpp
/// \brief Shot-dataset persistence with error-provenance labels.
///
/// The paper's target application is generating massive labelled datasets
/// (e.g. for training ML-based QEC decoders): each shot must carry the error
/// content of the trajectory it was sampled from — the supervision signal
/// physical hardware cannot provide. Two formats:
///
///  - CSV   — human-readable; one row per shot with its spec's branch list;
///  - binary — compact columnar blocks, one per trajectory batch, suitable
///    for the trillion-shot-scale corpora the paper reports.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "ptsbe/core/batched_execution.hpp"

namespace ptsbe::dataset {

/// Binary-format framing shared by the writers here and the out-of-core
/// reader layer (`ptsbe::stats`): magic, current version, and the fixed
/// header size (magic + version + u64 batch count). These are part of the
/// on-disk contract — bump `kFormatVersion` on any incompatible layout
/// change and keep the version-rejection diagnostics in both readers in
/// sync.
inline constexpr char kFormatMagic[4] = {'P', 'T', 'S', 'B'};
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::size_t kHeaderBytes =
    sizeof(kFormatMagic) + sizeof(kFormatVersion) + sizeof(std::uint64_t);

/// Write a BE result as CSV: columns
/// `trajectory,shot,record,nominal_probability,errors` where `errors` is a
/// semicolon-joined list of `site:branch` tokens.
/// \throws runtime_failure when the file cannot be written.
void write_csv(const std::string& path, const be::Result& result);

/// Write a BE result as the compact binary format (magic "PTSB", version 2;
/// version 2 dropped the scheduler-dependent per-batch device id, so the
/// bytes of a spec-ordered export depend only on the program, the specs
/// and the seed — never on thread count or scheduling). Implemented on top
/// of `StreamWriter`, so the two paths cannot diverge: streaming the same
/// batch sequence produces a byte-identical file. (A sink streaming under
/// `threads > 1` receives batches in completion order — same blocks,
/// possibly permuted; append in `spec_index` order when byte-stable files
/// matter.)
/// \throws runtime_failure when the file cannot be written.
void write_binary(const std::string& path, const be::Result& result);

/// Incremental writer for the binary format — the dataset end of the
/// streaming pipeline (`be::execute_streaming`'s sink appends each batch as
/// it completes, so a trillion-shot corpus is exported without ever holding
/// a full `be::Result` in memory). The batch count in the header is patched
/// in by `close()` (or the destructor on *normal* scope exit); when the
/// writer is destroyed during exception unwinding — an aborted streaming
/// run — the header count stays 0, so the partial file can never be
/// mistaken for a complete corpus. Not thread-safe on its own, but
/// `execute_streaming` serialises sink calls, so `append` needs no
/// external locking there.
class StreamWriter {
 public:
  /// Open `path` and write the dataset header.
  /// \throws runtime_failure when the file cannot be opened.
  explicit StreamWriter(const std::string& path);

  /// On normal scope exit: closes best-effort (errors are swallowed — call
  /// `close()` to observe them). During exception unwinding: leaves the
  /// header unpatched, marking the file incomplete.
  ~StreamWriter();

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Append one trajectory batch block (zero-probability unrealizable
  /// batches round-trip like any other: empty record payload, weight 0).
  /// \throws runtime_failure on write errors;
  ///         precondition_error after close().
  void append(const be::TrajectoryBatch& batch);

  /// Patch the header's batch count and flush. Idempotent.
  /// \throws runtime_failure on write errors.
  void close();

  /// Patch the header's batch count and flush *without* closing: after
  /// flush() returns, the bytes on disk are a complete, readable dataset
  /// of the batches appended so far, and further append() calls keep
  /// extending it. This is what lets the reader layer consume a stream
  /// that is still being written (the header count always describes a
  /// fully-written prefix — a flushed file never ends mid-batch).
  /// \throws runtime_failure on write errors;
  ///         precondition_error after close().
  void flush();

  /// Batches appended so far.
  [[nodiscard]] std::uint64_t batches_written() const noexcept {
    return count_;
  }

  /// Measurement records appended so far (across all batches).
  [[nodiscard]] std::uint64_t record_count() const noexcept {
    return records_;
  }

  /// Bytes written so far, header included — after flush()/close() this is
  /// exactly the file size, which is how the reader layer's tests pin a
  /// partially-written stream against the on-disk reality.
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_;
  }

 private:
  std::string path_;
  std::ofstream os_;
  std::uint64_t count_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
  int uncaught_at_open_ = 0;
};

/// Read a binary dataset back (round-trip of write_binary; prepare/sample
/// timings are not persisted).
/// \throws runtime_failure on missing/corrupt files.
[[nodiscard]] be::Result read_binary(const std::string& path);

}  // namespace ptsbe::dataset
