#pragma once

/// \file dataset.hpp
/// \brief Shot-dataset persistence with error-provenance labels.
///
/// The paper's target application is generating massive labelled datasets
/// (e.g. for training ML-based QEC decoders): each shot must carry the error
/// content of the trajectory it was sampled from — the supervision signal
/// physical hardware cannot provide. Two formats:
///
///  - CSV   — human-readable; one row per shot with its spec's branch list;
///  - binary — compact columnar blocks, one per trajectory batch, suitable
///    for the trillion-shot-scale corpora the paper reports.

#include <string>
#include <vector>

#include "ptsbe/core/batched_execution.hpp"

namespace ptsbe::dataset {

/// Write a BE result as CSV: columns
/// `trajectory,shot,record,nominal_probability,errors` where `errors` is a
/// semicolon-joined list of `site:branch` tokens.
/// \throws runtime_failure when the file cannot be written.
void write_csv(const std::string& path, const be::Result& result);

/// Write a BE result as the compact binary format (magic "PTSB", version 1).
/// \throws runtime_failure when the file cannot be written.
void write_binary(const std::string& path, const be::Result& result);

/// Read a binary dataset back (round-trip of write_binary; prepare/sample
/// timings are not persisted).
/// \throws runtime_failure on missing/corrupt files.
[[nodiscard]] be::Result read_binary(const std::string& path);

}  // namespace ptsbe::dataset
