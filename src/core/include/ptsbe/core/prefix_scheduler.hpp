#pragma once

/// \file prefix_scheduler.hpp
/// \brief Shared-prefix trajectory scheduler (work-stealing parallel DFS).
///
/// Pre-sampled trajectories of one noisy program are *almost identical*:
/// they share the coherent circuit and differ only in a handful of sampled
/// noise branches. The independent schedule ignores that structure and
/// re-prepares every trajectory from |0…0⟩. This scheduler instead views
/// the spec set as a trie over the per-site branch decisions interleaved
/// with the circuit's gate steps (the ExecPlan): every shared prefix is
/// simulated exactly once, and the state is forked (`SimState::clone`) only
/// where two trajectories first deviate.
///
/// Parallelism: fork points are task-spawn points. The walk starts as one
/// root task on the `TrajectoryExecutor`; where the sorted group splits
/// into k branch runs, the walking worker snapshots the pre-branch state
/// k−1 times, spawns one task per earlier run, and continues the last run
/// in place. Each task exclusively owns its `SimState` (per-thread state
/// ownership — states are never shared across tasks), so disjoint trie
/// subtrees execute concurrently with no synchronisation beyond the spawn.
/// An idle worker steals the *oldest* pending task — the shallowest, and
/// therefore largest, subtree.
///
/// Reproducibility contract: preparation consumes no randomness, and each
/// leaf draws its spec's shots from the same per-trajectory Philox
/// substream the independent schedule uses — so records, realised
/// probabilities and therefore every downstream estimate and dataset byte
/// are **bit-for-bit identical** between the two schedules *and across
/// every thread count* (see tests/test_scheduler.cpp). Only completion
/// order depends on scheduling.
///
/// Memory: pending subtree tasks each hold one state snapshot. LIFO
/// self-scheduling keeps a worker on its current root-to-leaf path, so the
/// live-snapshot count tracks (fork depth + stolen subtrees), not the whole
/// frontier.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/backend.hpp"
#include "ptsbe/core/trajectory_executor.hpp"

namespace ptsbe::be {

/// Delivery callback, invoked from worker threads: `worker` is the
/// executing worker's id, `spec_index` the index into the original spec
/// vector; the ShotResult carries records, realised probability and the
/// sampling wall-clock. Implementations must be thread-safe (the BE engine
/// wraps the executor's lock-free `emit`).
using SpecResultFn = std::function<void(std::size_t worker,
                                        std::size_t spec_index,
                                        ShotResult&& result)>;

/// Seed the shared-prefix walk over the trajectories selected by `order`
/// (indices into `specs`, sorted lexicographically by their dense
/// site→branch `assignments`) onto `executor` as one root task; forks spawn
/// further tasks. Call `executor.drain(...)` afterwards to run the walk.
/// One result is emitted per spec; `master.substream(t)` seeds spec t's
/// sampling, matching the independent path bit for bit.
///
/// `worker_prepare_seconds` must have one slot per executor worker; each
/// task adds its preparation wall-clock (gate sweeps, branch applications,
/// forks — sampling excluded) to its worker's slot. Slots are single-writer
/// per worker; read them after `drain` returns (the join publishes them).
///
/// Every argument must outlive the drain. Preconditions: the backend can
/// fork states, and `order` is sorted so specs agreeing on every site up to
/// any depth are contiguous.
void spawn_shared_prefix(TrajectoryExecutor& executor, const Backend& backend,
                         const NoisyCircuit& noisy, const ExecPlan& plan,
                         const std::vector<TrajectorySpec>& specs,
                         const std::vector<std::vector<std::size_t>>& assignments,
                         std::span<const std::size_t> order,
                         const RngStream& master, const SpecResultFn& emit,
                         std::span<double> worker_prepare_seconds);

/// Comparator-friendly helper: dense assignments for every spec, indexed
/// like `specs`.
[[nodiscard]] std::vector<std::vector<std::size_t>> all_assignments(
    const NoisyCircuit& noisy, const std::vector<TrajectorySpec>& specs);

}  // namespace ptsbe::be
