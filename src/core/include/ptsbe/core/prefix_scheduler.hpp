#pragma once

/// \file prefix_scheduler.hpp
/// \brief Shared-prefix trajectory scheduler.
///
/// Pre-sampled trajectories of one noisy program are *almost identical*:
/// they share the coherent circuit and differ only in a handful of sampled
/// noise branches. The independent schedule ignores that structure and
/// re-prepares every trajectory from |0…0⟩. This scheduler instead views
/// the spec set as a trie over the per-site branch decisions interleaved
/// with the circuit's gate steps (the ExecPlan): every shared prefix is
/// simulated exactly once, and the state is forked (`SimState::clone`) only
/// where two trajectories first deviate.
///
/// Reproducibility contract: preparation consumes no randomness, and each
/// leaf draws its spec's shots from the same per-trajectory Philox
/// substream the independent schedule uses — so records, realised
/// probabilities and therefore every downstream estimate and dataset byte
/// are **bit-for-bit identical** between the two schedules (see
/// tests/test_scheduler.cpp).
///
/// Memory: the DFS keeps one state snapshot alive per fork level on the
/// current root-to-leaf path (worst case one per noise site). For very
/// wide states prefer the independent schedule or more, smaller device
/// chunks.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/backend.hpp"

namespace ptsbe::be {

/// Delivery callback: `spec_index` is the index into the original spec
/// vector; the ShotResult carries records, realised probability and the
/// sampling wall-clock (preparation time is aggregated in the return value
/// of run_shared_prefix, since shared prefixes have no per-spec owner).
using SpecResultFn =
    std::function<void(std::size_t spec_index, ShotResult&& result)>;

/// Execute the trajectories selected by `order` (indices into `specs`,
/// sorted lexicographically by their dense site→branch `assignments`) with
/// shared-prefix scheduling, emitting one result per spec in trie DFS
/// order. `master.substream(t)` seeds spec t's sampling, matching the
/// independent path. Returns the preparation wall-clock for the whole
/// group (gate sweeps + branch applications + forks).
///
/// Preconditions: `backend.make_state` must return non-null, and `order`
/// must be sorted so that specs agreeing on every site up to any depth are
/// contiguous (execute_streaming sorts once and hands out contiguous
/// chunks; a chunk boundary only costs re-simulation of one prefix).
double run_shared_prefix(const Backend& backend, const NoisyCircuit& noisy,
                         const ExecPlan& plan,
                         const std::vector<TrajectorySpec>& specs,
                         const std::vector<std::vector<std::size_t>>& assignments,
                         std::span<const std::size_t> order,
                         const RngStream& master, const SpecResultFn& emit);

/// Comparator-friendly helper: dense assignments for every spec, indexed
/// like `specs`.
[[nodiscard]] std::vector<std::vector<std::size_t>> all_assignments(
    const NoisyCircuit& noisy, const std::vector<TrajectorySpec>& specs);

}  // namespace ptsbe::be
