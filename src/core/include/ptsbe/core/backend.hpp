#pragma once

/// \file backend.hpp
/// \brief Unified simulator-backend interface and string-keyed registry.
///
/// Batched Execution used to hard-code the statevector and MPS simulators.
/// This header is the seam that removes that coupling: a `Backend` prepares
/// one pre-sampled trajectory of a noisy program and bulk-draws its shot
/// budget, and a `BackendRegistry` maps stable string names to backend
/// factories so execution options, CLIs, config files — and future sharded /
/// asynchronous / GPU backends — select simulators by name.
///
/// Built-in backends (registered at startup):
///   - "statevector"  dense 2^n amplitudes (CUDA-Q `nvidia` analogue)
///   - "densmat"      exact density matrix run per-trajectory (<= 13 qubits)
///   - "stabilizer"   CHP tableau; Clifford gates + Pauli mixtures only
///   - "mps"          matrix-product-state / TEBD (CUDA-Q `tensornet`
///                    analogue); "tensornet" is accepted as an alias
///
/// A backend's `run` takes the *noisy program* (`NoisyCircuit`, which owns
/// the coherent `Circuit`) plus one `TrajectorySpec`, because a spec's
/// branch indices are only meaningful against the program's noise sites.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/exec_plan.hpp"
#include "ptsbe/core/sim_state.hpp"
#include "ptsbe/core/trajectory_spec.hpp"
#include "ptsbe/tensornet/mps.hpp"

namespace ptsbe {

/// Tuning knobs a backend may consume at construction time. Unknown fields
/// are ignored by backends they do not apply to.
struct BackendConfig {
  /// MPS truncation policy ("mps" backend only).
  MpsConfig mps;
  /// Run the gate-fusion pass over every barrier-free segment of the
  /// preparation sweep (amplitude backends). Fusion never crosses a noise
  /// site or measurement, so fused preparation is equivalent to the unfused
  /// sweep up to floating-point reassociation of the gate products.
  bool fuse_gates = false;
};

/// Everything one backend invocation produces for one trajectory spec.
struct ShotResult {
  /// Measurement records: bit i of a record is the outcome of the i-th
  /// measured qubit (program order); when the circuit has no measure ops,
  /// the record is the full n-bit basis-state index.
  std::vector<std::uint64_t> records;
  /// Realised joint probability of the trajectory (product of nominal
  /// branch probabilities for unitary mixtures, of realised ⟨ψ|K†K|ψ⟩ for
  /// general channels). 0 marks an unrealizable spec; `records` is then
  /// empty.
  double realized_probability = 1.0;
  /// Wall-clock split: O(2^n)-ish state preparation vs bulk sampling.
  double prepare_seconds = 0.0;
  double sample_seconds = 0.0;
};

/// One simulator backend. Implementations are immutable after construction
/// and `run` is const and re-entrant: Batched Execution shares a single
/// instance across all TrajectoryExecutor workers.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name this backend was constructed under ("statevector"…).
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// True when this backend can execute `noisy` (gate set, channel class
  /// and qubit-count restrictions). `run` throws precondition_error on
  /// unsupported programs; call this first to route instead of failing.
  [[nodiscard]] virtual bool supports(const NoisyCircuit& noisy) const = 0;

  /// Prepare the trajectory selected by `spec` exactly once (sites not
  /// listed take their channel's default branch) and draw `shots`
  /// measurement records in bulk from the prepared state, consuming
  /// randomness only from `rng`. `shots` is deliberately separate from
  /// `spec.shots`: callers normally pass `spec.shots`, but a sharded
  /// executor may split one spec's budget across several run() calls.
  [[nodiscard]] virtual ShotResult run(const NoisyCircuit& noisy,
                                       const TrajectorySpec& spec,
                                       std::uint64_t shots,
                                       RngStream& rng) const = 0;

  /// `run` with a pre-built execution plan, for executors that amortise
  /// `make_plan` across a whole spec batch. `plan` must come from this
  /// backend's `make_plan(noisy)`. The default ignores the plan and calls
  /// `run` (correct for backends that do not prepare through plans).
  [[nodiscard]] virtual ShotResult run_with_plan(const NoisyCircuit& noisy,
                                                 const ExecPlan& plan,
                                                 const TrajectorySpec& spec,
                                                 std::uint64_t shots,
                                                 RngStream& rng) const {
    (void)plan;
    return run(noisy, spec, shots, rng);
  }

  /// True when `make_state` returns forkable states — the O(1) capability
  /// probe prefix-sharing schedulers gate on (constructing a throwaway
  /// state just to test for nullptr could transiently allocate 2^n
  /// amplitudes).
  [[nodiscard]] virtual bool can_fork_states() const noexcept {
    return false;
  }

  /// Fresh forkable |0…0⟩ state for prefix-sharing schedulers, or nullptr
  /// when this backend's state cannot be snapshotted (stabilizer). A
  /// non-null state, driven through `make_plan`'s steps, must reproduce
  /// `run`'s preparation and sampling bit-for-bit.
  [[nodiscard]] virtual SimStatePtr make_state(unsigned num_qubits) const {
    (void)num_qubits;
    return nullptr;
  }

  /// The execution plan `run` prepares trajectories with (this backend's
  /// gate-fusion setting applied). Schedulers reuse it so scheduled and
  /// independent preparations sweep identical matrices.
  [[nodiscard]] virtual ExecPlan make_plan(const NoisyCircuit& noisy) const {
    return build_exec_plan(noisy, false);
  }
};

using BackendPtr = std::unique_ptr<Backend>;

/// Factory signature stored in the registry.
using BackendFactory = std::function<BackendPtr(const BackendConfig&)>;

/// Process-wide name → factory map. The four built-ins are registered on
/// first access; plugins may add more at any time before use. Registration
/// and lookup are thread-safe.
class BackendRegistry {
 public:
  /// The global registry.
  static BackendRegistry& instance();

  /// Register `factory` under `name`.
  /// \throws precondition_error if `name` is empty or already taken.
  void register_backend(const std::string& name, BackendFactory factory);

  /// True when `name` resolves to a factory.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Construct the backend registered under `name`.
  /// \throws precondition_error for unknown names (the message lists the
  ///         registered names).
  [[nodiscard]] BackendPtr make(const std::string& name,
                                const BackendConfig& config = {}) const;

  /// All registered names, sorted (aliases included).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  BackendRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: `BackendRegistry::instance().make(name, config)`.
[[nodiscard]] BackendPtr make_backend(const std::string& name,
                                      const BackendConfig& config = {});

}  // namespace ptsbe
