#pragma once

/// \file batched_execution.hpp
/// \brief Batched Execution (BE) — the paper's second stage.
///
/// Given trajectory specifications from PTS, BE prepares each trajectory's
/// state exactly once (the O(2^n)/tensor-contraction cost) and then draws the
/// spec's full shot budget in bulk (polynomial cost), eliminating the
/// redundant state re-preparation of conventional trajectory simulation.
/// Specs are embarrassingly parallel: they are sharded over the
/// work-stealing `TrajectoryExecutor` (the CPU stand-in for the paper's
/// multi-GPU inter-trajectory parallelism; `Options::threads` sizes the
/// pool), each with a reproducible Philox substream keyed by its batch
/// index — which is why records are bit-identical at every thread count.
/// Error provenance — the spec's branch list — rides along as metadata on
/// every batch (the paper's third bullet).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/backend.hpp"
#include "ptsbe/core/trajectory_spec.hpp"

namespace ptsbe::be {

/// How trajectory preparations are scheduled across the spec set.
enum class Schedule : std::uint8_t {
  /// Every spec is prepared from |0…0⟩ independently (embarrassingly
  /// parallel; works with every backend).
  kIndependent,
  /// Specs are organised into a trie over their per-site branch decisions;
  /// each shared prefix is simulated once and the state is forked at the
  /// first deviating branch (see ptsbe/core/prefix_scheduler.hpp). Records
  /// are bit-for-bit identical to kIndependent. Backends that cannot fork
  /// states (stabilizer) deterministically fall back to kIndependent — the
  /// records are identical by contract, and the schedule actually executed
  /// is surfaced in `Result::schedule` / `StreamSummary::schedule` (and
  /// `RunResult::schedule_executed` at the pipeline layer).
  kSharedPrefix,
};

/// Registry-style names for Schedule ("independent" | "shared-prefix").
[[nodiscard]] const std::string& to_string(Schedule schedule);
/// \throws precondition_error for unknown names (the message lists both).
[[nodiscard]] Schedule schedule_from_string(const std::string& name);

/// Execution options.
struct Options {
  /// Registry name of the simulator backend that prepares and samples the
  /// trajectories ("statevector", "densmat", "stabilizer", "mps"/"tensornet",
  /// or any plugin registered with BackendRegistry).
  std::string backend = "statevector";
  /// Tuning knobs forwarded verbatim to the backend factory (e.g.
  /// `config.mps` for the MPS truncation policy, `config.fuse_gates` for
  /// the gate-fusion pass). Embedding the whole BackendConfig means new
  /// backend knobs need no Options edits.
  BackendConfig config;
  /// Trajectory scheduling policy. kSharedPrefix amortises the shared
  /// portion of the preparation sweep across overlapping specs; results
  /// are bit-identical to kIndependent.
  Schedule schedule = Schedule::kIndependent;
  /// Worker threads for inter-trajectory parallelism (the work-stealing
  /// `TrajectoryExecutor`): 0 = hardware concurrency, 1 (default) = serial
  /// execution on one worker. Records are bit-identical at every thread
  /// count; only batch *completion order* (and the diagnostic per-batch
  /// `device_id`) depends on scheduling. Inner backend kernels may also be
  /// OpenMP-parallel — cap them (OMP_NUM_THREADS=1) when oversubscription
  /// matters.
  std::size_t threads = 1;
  /// Legacy name for the same worker pool ("simulated devices"); the
  /// effective worker count is max(threads, num_devices) — see
  /// `be::resolved_threads`.
  std::size_t num_devices = 1;
  /// Master seed; trajectory t uses substream (t+1) so results are
  /// reproducible regardless of device scheduling.
  std::uint64_t seed = 0x5EEDBA5EDULL;
  /// Optional pre-built execution plan. When set, BE skips the per-call
  /// `Backend::make_plan` (fusion + lowering) and sweeps this plan instead —
  /// the hook the `ptsbe::serve` engine's plan cache injects through. Must
  /// come from `make_plan` of a backend constructed with the *same*
  /// name/config against the *same* program; records are bit-identical to a
  /// plan-less run by the ExecPlan determinism contract. Ignored by
  /// backends that do not prepare through plans (stabilizer).
  std::shared_ptr<const ExecPlan> plan;
};

/// Everything BE produces for one trajectory specification.
struct TrajectoryBatch {
  /// Index of the spec this batch realises.
  std::size_t spec_index = 0;
  /// The spec itself (branch list = error-provenance labels).
  TrajectorySpec spec;
  /// Measurement records (bits of measured qubits, program order).
  std::vector<std::uint64_t> records;
  /// Realised joint probability: for unitary-mixture programs this equals
  /// the nominal probability; for general channels it is the product of the
  /// realised ⟨ψ|K†K|ψ⟩ along the preparation — the importance weight for
  /// proportional estimators. 0 marks an *unrealizable* spec (a
  /// general-Kraus branch hit zero probability at execution time, e.g. a
  /// second amplitude-damping decay on an already-decayed qubit); such
  /// batches carry no records.
  double realized_probability = 1.0;
  /// Executor worker ("simulated device") that prepared this trajectory.
  /// Diagnostics only: under work stealing the value depends on thread
  /// scheduling, which is why the dataset formats do not persist it.
  std::size_t device_id = 0;
};

/// Full BE output.
struct Result {
  std::vector<TrajectoryBatch> batches;
  /// Schedule actually executed — differs from `Options::schedule` only
  /// when shared-prefix was requested with a backend that cannot fork
  /// states and BE deterministically fell back to independent.
  Schedule schedule = Schedule::kIndependent;
  /// Wall-clock split (seconds): state preparations vs bulk sampling —
  /// the two regimes whose asymmetry drives Fig. 4/5.
  double prepare_seconds = 0.0;
  double sample_seconds = 0.0;

  /// Total shots across batches.
  [[nodiscard]] std::uint64_t total_shots() const noexcept;
  /// Fraction of distinct records among all shots (Fig. 4's right axis).
  [[nodiscard]] double unique_shot_fraction() const;
};

/// Consumer of completed trajectory batches on the streaming path. Workers
/// hand completed batches over a lock-free queue and the executor invokes
/// the sink **only on the calling thread** (`execute_streaming`'s caller),
/// one call at a time — so sinks need no locking of their own and a slow
/// sink never blocks a worker. The sink owns the batch it receives.
using BatchSink = std::function<void(TrajectoryBatch&&)>;

/// Aggregate accounting for a streaming run — everything `Result` carries
/// except the record payload, which has already been handed to the sink.
struct StreamSummary {
  std::size_t num_batches = 0;
  std::uint64_t total_shots = 0;
  /// Schedule actually executed (see `Result::schedule`).
  Schedule schedule = Schedule::kIndependent;
  /// Wall-clock split (seconds): state preparations vs bulk sampling.
  double prepare_seconds = 0.0;
  double sample_seconds = 0.0;
};

/// Execute `specs` against `noisy` with batched sampling.
///
/// The backend named by `options.backend` is resolved once through the
/// BackendRegistry and shared across all simulated devices; each spec is
/// one `Backend::run` call (prepare the trajectory once, bulk-draw its shot
/// budget — unitary-mixture branches apply U_k directly, general branches
/// apply K_k/√p with the realised p accumulated into the batch's importance
/// weight).
///
/// \throws precondition_error for unknown backend names or programs the
///         chosen backend does not support.
[[nodiscard]] Result execute(const NoisyCircuit& noisy,
                             const std::vector<TrajectorySpec>& specs,
                             const Options& options = {});

/// Streaming variant of `execute`: each `TrajectoryBatch` is delivered to
/// `sink` (on the calling thread) as its worker finishes it, in
/// **completion order** (use `TrajectoryBatch::spec_index` to recover spec
/// order; with one worker and the independent schedule completion order
/// equals spec order). Per-trajectory randomness is the same substream
/// scheme as `execute`, so the batches are bit-identical to the
/// non-streaming path's at every thread count — only the delivery order
/// changes. Records never accumulate in a `Result`, so dataset generation
/// over huge spec sets runs in bounded memory.
///
/// \throws precondition_error for unknown backend names or unsupported
///         programs; an exception thrown by `sink` propagates to the
///         caller — trajectories already in flight complete (their batches
///         are dropped), pending ones are skipped before preparation.
StreamSummary execute_streaming(const NoisyCircuit& noisy,
                                const std::vector<TrajectorySpec>& specs,
                                const Options& options, const BatchSink& sink);

/// Unique fraction over an arbitrary record set (helper for benches).
[[nodiscard]] double unique_fraction(const std::vector<std::uint64_t>& records);

}  // namespace ptsbe::be
