#pragma once

/// \file trajectory_spec.hpp
/// \brief Trajectory specifications — the currency between PTS and BE.
///
/// A `TrajectorySpec` is one pre-sampled noise realisation: a sparse
/// assignment of Kraus branches to noise sites (sites not listed take their
/// channel's default branch) plus the number of shots `m_α` Batched
/// Execution should collect from the prepared state. These are exactly the
/// `{K_α0 … K_αi}, m_α` pairs of the paper's Fig. 1, and the lightweight
/// error-provenance metadata the paper's third bullet promises: every shot
/// in a batch inherits its spec's branch list as a training label.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ptsbe/noise/noise_model.hpp"

namespace ptsbe {

/// One (site, branch) choice inside a trajectory specification.
struct BranchChoice {
  std::size_t site = 0;    ///< Index into NoisyCircuit::sites().
  std::size_t branch = 0;  ///< Kraus branch index within the site's channel.

  friend bool operator==(const BranchChoice&, const BranchChoice&) = default;
  friend auto operator<=>(const BranchChoice&, const BranchChoice&) = default;
};

/// A pre-sampled trajectory: sparse branch assignment + shot budget.
struct TrajectorySpec {
  /// Non-default branch choices, sorted by site index (canonical form —
  /// required for deduplication).
  std::vector<BranchChoice> branches;
  /// Number of shots BE should draw from this trajectory's prepared state.
  std::uint64_t shots = 0;
  /// Joint nominal probability of this realisation (exact for
  /// unitary-mixture programs).
  double nominal_probability = 0.0;

  /// Number of non-default (error) branches.
  [[nodiscard]] std::size_t error_weight() const noexcept {
    return branches.size();
  }

  /// Canonical-form equality (same branch assignment; shots/probability are
  /// payload, not identity).
  [[nodiscard]] bool same_assignment(const TrajectorySpec& other) const {
    return branches == other.branches;
  }

  /// FNV-1a hash of the branch assignment, for dedup containers.
  [[nodiscard]] std::uint64_t assignment_hash() const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    for (const BranchChoice& bc : branches) {
      mix(bc.site);
      mix(bc.branch);
    }
    return h;
  }
};

/// Human-readable provenance description of a spec's error content, e.g.
/// "site 4 (after op 2 'cx', qubits {0,1}): depolarizing2 branch 7".
/// Returns one line per non-default branch; empty vector = error-free
/// trajectory.
[[nodiscard]] std::vector<std::string> describe_errors(
    const NoisyCircuit& noisy, const TrajectorySpec& spec);

/// Total shots across a batch of specs.
[[nodiscard]] std::uint64_t total_shots(
    const std::vector<TrajectorySpec>& specs);

/// Recompute each spec's nominal probability against `noisy` (specs created
/// by hand or loaded from disk may carry stale values).
void refresh_probabilities(const NoisyCircuit& noisy,
                           std::vector<TrajectorySpec>& specs);

}  // namespace ptsbe
