#pragma once

/// \file strategy.hpp
/// \brief Pluggable PTS strategy interface and string-keyed registry.
///
/// The free functions in pts.hpp are the low-level sampler layer; this header
/// is the seam that makes them *components*: a `Strategy` turns a noisy
/// program into trajectory specifications under one unified `StrategyConfig`,
/// and a `StrategyRegistry` maps stable names to strategies so pipelines,
/// CLIs and config files select samplers the same way they already select
/// backends. Crucially, every strategy **declares the estimator weighting**
/// that keeps its specs statistically sound — the band/enumerate vs
/// draw-weighted mispairing that used to silently bias estimates is no
/// longer expressible through this layer.
///
/// Built-in strategies (registered at startup):
///   - "probabilistic"  Algorithm 2 draws with dedup/merge  → kDrawWeighted
///   - "proportional"   probabilistic + shot redistribution
///                      ∝ nominal probability               → kDrawWeighted
///   - "band"           probabilistic restricted to
///                      p ∈ [p_min, p_max]                  → kProbabilityWeighted
///   - "enumerate"      exhaustive most-likely enumeration
///                      above probability_cutoff            → kProbabilityWeighted
///   - "twirl"          tailored injection, uniformly
///                      scrambled error branches            → kProbabilityWeighted
///   - "correlated"     spatially correlated bursts
///                      (boost × radius)                    → kProbabilityWeighted

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/estimator.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/core/trajectory_spec.hpp"

namespace ptsbe::pts {

/// One configuration struct shared by every strategy. A strategy reads the
/// fields that apply to it and ignores the rest (mirroring BackendConfig),
/// so pipelines and CLIs can populate a single object from flags or files
/// without knowing which strategy will consume it.
struct StrategyConfig {
  /// Candidate trajectory draws (stochastic strategies).
  std::size_t nsamples = 100;
  /// Shots assigned to each accepted spec.
  std::uint64_t nshots = 1000;
  /// Merge duplicate assignments by summing shot budgets. Defaults to true
  /// here (unlike the low-level pts::Options): merging preserves the draw
  /// frequency the draw-weighted estimator relies on. "probabilistic"
  /// *forces* this to true — honouring false there would silently bias its
  /// declared kDrawWeighted estimates, the exact mispairing this layer
  /// exists to prevent. Probability-weighted strategies honour it as set.
  bool merge_duplicates = true;

  /// "band": keep specs with nominal probability in [p_min, p_max].
  double p_min = 0.0;
  double p_max = 1.0;

  /// "enumerate": joint-probability cutoff and result cap (0 = all).
  double probability_cutoff = 1e-6;
  std::size_t max_results = 0;

  /// "proportional": total shot budget to redistribute
  /// (0 = nsamples × nshots).
  std::uint64_t total_shots = 0;

  /// "correlated": neighbour firing boost (≥ 1) and qubit-index radius.
  double boost = 4.0;
  unsigned radius = 1;

  /// Site/branch selection criteria (strategies built on Algorithm 2's
  /// sampling loop: "probabilistic", "proportional", "band").
  SiteFilter site_filter;

  /// Low-level options view for the pts.hpp free functions.
  [[nodiscard]] Options options() const noexcept {
    return Options{nsamples, nshots, merge_duplicates};
  }
};

/// One PTS sampling strategy. Implementations are stateless and `sample` is
/// const and re-entrant; all per-call state arrives via the config and RNG.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Registry name this strategy is published under ("band", …).
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// The estimator weighting under which this strategy's specs yield
  /// unbiased physical estimates. Pipelines carry this alongside the BE
  /// result so estimation cannot be mispaired with the sampling scheme.
  [[nodiscard]] virtual be::Weighting weighting() const noexcept = 0;

  /// Produce trajectory specifications for `noisy`.
  [[nodiscard]] virtual std::vector<TrajectorySpec> sample(
      const NoisyCircuit& noisy, const StrategyConfig& config,
      RngStream& rng) const = 0;
};

using StrategyPtr = std::unique_ptr<Strategy>;

/// Factory signature stored in the registry.
using StrategyFactory = std::function<StrategyPtr()>;

/// Process-wide name → factory map, mirroring BackendRegistry: the six
/// built-ins are registered on first access; plugins may add more at any
/// time before use. Registration and lookup are thread-safe.
class StrategyRegistry {
 public:
  /// The global registry.
  static StrategyRegistry& instance();

  /// Register `factory` under `name`.
  /// \throws precondition_error if `name` is empty or already taken.
  void register_strategy(const std::string& name, StrategyFactory factory);

  /// True when `name` resolves to a factory.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Construct the strategy registered under `name`.
  /// \throws precondition_error for unknown names (the message lists the
  ///         registered names).
  [[nodiscard]] StrategyPtr make(const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  StrategyRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: `StrategyRegistry::instance().make(name)`.
[[nodiscard]] StrategyPtr make_strategy(const std::string& name);

}  // namespace ptsbe::pts
