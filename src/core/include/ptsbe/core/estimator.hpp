#pragma once

/// \file estimator.hpp
/// \brief Statistically sound observable estimation from BE results.
///
/// PTS strategies deliberately distort the sampling distribution (band
/// selection, twirling, boosted correlations, nominal-probability sampling
/// of general channels). To keep physical estimates unbiased, every batch
/// carries enough metadata to reweight:
///
///  - `kDrawWeighted`   — specs whose *shot counts* already encode the draw
///    frequency (Algorithm 2 with merge_duplicates): weight each shot by the
///    realised/nominal importance ratio (1 for unitary mixtures);
///  - `kProbabilityWeighted` — specs enumerated or filtered deterministically:
///    weight each batch by its realised probability.
///
/// Estimators are self-normalising importance samplers; `Estimate` carries
/// the value and a weighted (effective-sample-size) standard error so
/// downstream users can see when a band/tail sample is too thin to trust.

#include <cstdint>
#include <functional>

#include "ptsbe/core/batched_execution.hpp"

namespace ptsbe::be {

/// How the spec batch was produced (see file comment).
enum class Weighting : std::uint8_t {
  kDrawWeighted,         ///< stochastic PTS draws (shots ∝ draw frequency)
  kProbabilityWeighted,  ///< deterministic enumeration / band filtering
};

/// A point estimate with a weighted standard error.
struct Estimate {
  double value = 0.0;
  double std_error = 0.0;
  double total_weight = 0.0;  ///< Probability mass covered (diagnostics).
};

/// Per-shot importance weight of one batch under `weighting` — the single
/// definition shared by the estimators and by streaming consumers
/// (`qec::metrics` accumulates through a `BatchSink` with exactly this
/// rule, so streaming and batch analytics agree bit-for-bit). Returns 0
/// for batches to skip: unrealizable specs (empty records) and
/// non-positive weights.
/// \throws precondition_error for a draw-weighted batch whose spec has
///         zero nominal probability.
[[nodiscard]] double shot_weight(const TrajectoryBatch& batch,
                                 Weighting weighting);

/// Estimate E[f(record)] under the physical noisy distribution from a BE
/// result; `f` maps a measurement record to a real value (e.g. a parity
/// ±1, an acceptance indicator, a decoded logical bit).
[[nodiscard]] Estimate estimate(
    const Result& result, Weighting weighting,
    const std::function<double(std::uint64_t)>& f);

/// Convenience: expectation of the Z-parity (+1/-1) over the record bits
/// selected by `mask` — ⟨Z…Z⟩ for computational-basis readouts.
[[nodiscard]] Estimate estimate_z_parity(const Result& result,
                                         Weighting weighting,
                                         std::uint64_t mask);

/// Convenience: probability that `predicate` holds.
[[nodiscard]] Estimate estimate_probability(
    const Result& result, Weighting weighting,
    const std::function<bool(std::uint64_t)>& predicate);

}  // namespace ptsbe::be
