#pragma once

/// \file sim_state.hpp
/// \brief Type-erased, forkable simulator state.
///
/// The shared-prefix trajectory scheduler (ptsbe/core/prefix_scheduler.hpp)
/// walks a trie of trajectory specifications and must snapshot the simulator
/// state at every fork point. `SimState` is the minimal contract that makes
/// that possible without the scheduler knowing which representation
/// (statevector, density matrix, MPS) it is driving: the four preparation /
/// sampling operations `Backend::run` already performs, plus `clone()`.
///
/// Snapshots are plain deep copies — O(2^n) for the dense representations
/// and O(n·χ²) for MPS — i.e. the cost of roughly *one* gate sweep, which is
/// exactly what forking saves many of. Backends whose state cannot be
/// snapshotted (the stabilizer frame sampler folds preparation and sampling
/// together) simply do not offer one; see `Backend::make_state`.
///
/// Threading: a `SimState` instance is **not** thread-safe and is never
/// shared. The multi-threaded scheduler gives every executor task exclusive
/// ownership of its state (the `SimStatePtr` moves into the task closure);
/// `clone()` at a fork point is the only cross-task data flow, and it
/// happens entirely on the spawning worker before the child task is
/// published. `clone()` must be a bitwise-faithful deep copy — the clone
/// and the original must evolve through identical floating-point
/// trajectories, which is what makes records thread-count-invariant.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/kernels/kernel_set.hpp"
#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe {

/// One forkable simulation state, positioned at |0…0⟩ on construction.
/// Methods mirror the state-backend concept the unified backends prepare
/// trajectories through; `branch_probability` is non-const because the MPS
/// implementation moves its orthogonality center (the quantum state is
/// unchanged).
class SimState {
 public:
  virtual ~SimState() = default;

  /// Deep-copy snapshot. The clone and the original evolve independently.
  [[nodiscard]] virtual std::unique_ptr<SimState> clone() const = 0;

  /// Apply a unitary on `qubits` (first listed = LSB of the matrix).
  virtual void apply_gate(const Matrix& matrix,
                          std::span<const unsigned> qubits) = 0;

  /// True when this state consumes classified `kernels::PreparedGate` runs
  /// directly (the amplitude representations). Plan walkers use this to
  /// swap per-step `apply_gate` calls for one `apply_prepared_run` per
  /// barrier-free gate stretch.
  [[nodiscard]] virtual bool supports_prepared_runs() const { return false; }

  /// Apply a contiguous prepared-gate run in one batched pass. Only valid
  /// when `supports_prepared_runs()` is true; the sequence of per-gate
  /// applies is identical to calling `apply_gate` step by step, so records
  /// cannot depend on which walker path ran.
  virtual void apply_prepared_run(std::span<const kernels::PreparedGate>) {
    throw precondition_error(
        "apply_prepared_run on a state without prepared-run support");
  }

  /// Realised probability ⟨ψ|K†K|ψ⟩ of Kraus operator `k` at this state.
  [[nodiscard]] virtual double branch_probability(
      const Matrix& k, std::span<const unsigned> qubits) = 0;

  /// Apply Kraus operator `k` and renormalise; returns ‖K|ψ⟩‖².
  virtual double apply_kraus_branch(const Matrix& k,
                                    std::span<const unsigned> qubits) = 0;

  /// Bulk-draw `count` computational-basis shots (full n-bit indices).
  [[nodiscard]] virtual std::vector<std::uint64_t> sample_shots(
      std::size_t count, RngStream& rng) = 0;
};

using SimStatePtr = std::unique_ptr<SimState>;

}  // namespace ptsbe
