#pragma once

/// \file exec_plan.hpp
/// \brief The prepared-execution plan all amplitude backends sweep.
///
/// A `NoisyCircuit` interleaves deterministic gate ops with noise sites
/// (`sites_after` buckets). An `ExecPlan` flattens that structure into one
/// linear step list — gate steps and site (branch-decision) steps in program
/// order — and optionally runs the gate-fusion pass over every deterministic
/// segment *between* decision points. Noise sites and measurements are hard
/// fusion barriers: fusing across one would change where the channel
/// observes the state.
///
/// Both execution schedules consume the same plan: the independent path
/// (`Backend::run`) walks it once per trajectory; the shared-prefix
/// scheduler walks each common prefix once and forks at deviating site
/// steps. Because the two paths apply the *identical* matrix sequence per
/// trajectory — fused or not — their prepared states, realised
/// probabilities and sampled records are bit-for-bit identical.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ptsbe/core/sim_state.hpp"
#include "ptsbe/core/trajectory_spec.hpp"
#include "ptsbe/noise/noise_model.hpp"

namespace ptsbe {

/// One step of an execution plan.
struct PlanStep {
  /// True: apply `matrix` on `qubits`. False: decide a branch for noise
  /// site `site` (index into NoisyCircuit::sites()).
  bool is_gate = true;
  Matrix matrix;
  std::vector<unsigned> qubits;
  std::size_t site = 0;
};

/// Linearised (optionally fused) preparation recipe for one noisy program.
struct ExecPlan {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// A barrier-free stretch of consecutive 1-/2-qubit gate steps,
  /// pre-classified into flat `PreparedGate`s once at plan-build time so
  /// every trajectory walk skips per-step matrix indirection and gate
  /// classification. `gates.size()` plan steps starting at `first_step`
  /// are covered.
  struct PreparedRun {
    std::size_t first_step = 0;
    std::vector<kernels::PreparedGate> gates;
  };

  std::vector<PlanStep> steps;
  std::vector<PreparedRun> prepared_runs;
  /// Index into `prepared_runs` of the run starting at each step
  /// (`npos` when no run starts there). Same length as `steps`.
  std::vector<std::size_t> run_at_step;

  /// Run starting exactly at `step`, or npos. Walkers enter plans only at
  /// step 0 or just after a site step, which is where runs begin.
  [[nodiscard]] std::size_t run_starting_at(std::size_t step) const {
    return step < run_at_step.size() ? run_at_step[step] : npos;
  }

  /// Gate sweeps per trajectory before fusion (diagnostics for the bench).
  std::size_t unfused_gate_count = 0;
  /// Gate sweeps per trajectory in `steps`.
  std::size_t gate_count = 0;
  /// Decision steps (== NoisyCircuit::num_sites()).
  std::size_t site_count = 0;
};

/// Build the plan for `noisy`; `fuse_gates` runs the fusion pass over every
/// barrier-free gate segment.
[[nodiscard]] ExecPlan build_exec_plan(const NoisyCircuit& noisy,
                                       bool fuse_gates);

/// Dense site → branch assignment for `spec` (sites the spec does not list
/// take their channel's default branch).
/// \throws precondition_error when a spec entry is out of range for `noisy`.
[[nodiscard]] std::vector<std::size_t> full_assignment(
    const NoisyCircuit& noisy, const TrajectorySpec& spec);

/// Apply branch `branch` of `site` to `state`, accumulating the realised
/// probability into `realized`. Returns false when the branch is
/// unrealizable at this state (general-Kraus branch with ~zero realised
/// probability); `realized` is then 0 and the state is unspecified.
bool apply_branch(SimState& state, const NoiseSite& site, std::size_t branch,
                  double& realized);

/// Reduce full basis-state indices to measured-bit records (`measured`
/// empty = records stay full n-bit indices). Shared by both schedules so
/// the record layout cannot diverge between them.
[[nodiscard]] std::vector<std::uint64_t> reduce_to_records(
    std::vector<std::uint64_t> shots, const std::vector<unsigned>& measured);

}  // namespace ptsbe
