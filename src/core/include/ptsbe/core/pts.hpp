#pragma once

/// \file pts.hpp
/// \brief Pre-Trajectory Sampling algorithms (the paper's §3.1).
///
/// PTS decouples stochastic noise decisions from state evolution: these
/// functions run *before* any simulator touches a state, producing
/// `TrajectorySpec`s for Batched Execution. The family implemented here:
///
///  - `sample_probabilistic`   — the paper's Algorithm 2 (with dedup);
///  - `redistribute_proportional` — shot reallocation ∝ joint probability
///    p'_α = p_α / Σ p (for expectation-value estimation);
///  - `filter_band`            — keep specs with p_α ∈ [p_min, p_max];
///  - `enumerate_most_likely`  — exhaust all error combinations with joint
///    probability above a cutoff (branch-and-bound over sites);
///  - `sample_pauli_twirled`   — tailored injection: fired sites choose
///    uniformly among error branches (Pauli-twirl style error scrambling);
///  - `sample_spatially_correlated` — cluster errors on neighbouring qubits;
///  - `SiteFilter`             — the "selection criteria on Line 5" hook
///    (gate type / qubit / site predicates).
///
/// The paper's `compatible()` check (no two operators on the same qubit at
/// the same time) holds by construction here: a noise site is a unique
/// program location, and a spec assigns exactly one branch per site.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/core/trajectory_spec.hpp"

namespace ptsbe::pts {

/// Options shared by the stochastic PTS samplers.
struct Options {
  /// Number of candidate trajectory draws (Algorithm 2's `nsamples`).
  std::size_t nsamples = 100;
  /// Shots assigned to each accepted spec (Algorithm 2's `nshots`).
  std::uint64_t nshots = 1000;
  /// Merge duplicate assignments by summing their shot budgets instead of
  /// discarding redraws (Algorithm 2 discards; merging preserves the
  /// proportional shot weighting).
  bool merge_duplicates = false;
};

/// Predicate restricting which (site, branch) choices a sampler may fire —
/// the "selection criteria" extension of Algorithm 2 Line 5. All set members
/// must accept for the choice to be allowed; an unset member accepts
/// everything.
struct SiteFilter {
  /// Only sites attached to gates with this name ("cx", …).
  std::optional<std::string> gate_name;
  /// Only sites touching at least one of these qubits.
  std::optional<std::vector<unsigned>> qubits;
  /// Arbitrary predicate on (site, branch).
  std::function<bool(const NoiseSite&, std::size_t branch)> predicate;

  /// True when the filter admits firing `branch` at `site` of `noisy`.
  [[nodiscard]] bool allows(const NoisyCircuit& noisy, const NoiseSite& site,
                            std::size_t branch) const;
};

/// The paper's Algorithm 2: draw `nsamples` trajectories by sampling each
/// site's branch from its nominal distribution, keep the unique ones, and
/// assign `nshots` to each. `filter` (optional) suppresses disallowed error
/// branches (the site falls back to its default branch instead).
[[nodiscard]] std::vector<TrajectorySpec> sample_probabilistic(
    const NoisyCircuit& noisy, const Options& options, RngStream& rng,
    const SiteFilter* filter = nullptr);

/// Reallocate a batch's total shot budget proportionally to each spec's
/// nominal probability: shots_α = round(total · p_α / Σ p). Specs rounding
/// to zero shots are dropped. Total is preserved up to rounding.
[[nodiscard]] std::vector<TrajectorySpec> redistribute_proportional(
    std::vector<TrajectorySpec> specs, std::uint64_t total_shots);

/// Keep only specs whose nominal probability lies in [p_min, p_max].
[[nodiscard]] std::vector<TrajectorySpec> filter_band(
    std::vector<TrajectorySpec> specs, double p_min, double p_max);

/// Exhaustively enumerate every error combination whose joint nominal
/// probability is ≥ `probability_cutoff`, by depth-first branch-and-bound
/// over sites (the paper's "most common errors … above a given cutoff").
/// Results are sorted by descending probability; `max_results` (0 = all)
/// truncates after sorting. Each spec receives `nshots`.
[[nodiscard]] std::vector<TrajectorySpec> enumerate_most_likely(
    const NoisyCircuit& noisy, double probability_cutoff,
    std::uint64_t nshots, std::size_t max_results = 0);

/// Tailored injection: like Algorithm 2, but every fired site picks its
/// error branch *uniformly* among non-default branches, scrambling error
/// types the way Pauli twirling scrambles coherent errors. The spec's
/// nominal_probability still reports the true joint probability of the
/// realisation it encodes.
[[nodiscard]] std::vector<TrajectorySpec> sample_pauli_twirled(
    const NoisyCircuit& noisy, const Options& options, RngStream& rng);

/// Spatially correlated injection: when a site fires, neighbouring sites
/// (those sharing a qubit within ±`radius` qubit indices) fire with their
/// error probability multiplied by `boost` (clamped to 1). Models correlated
/// noise bursts for QEC stress analysis.
[[nodiscard]] std::vector<TrajectorySpec> sample_spatially_correlated(
    const NoisyCircuit& noisy, const Options& options, RngStream& rng,
    double boost, unsigned radius = 1);

/// Dedup helper: canonicalise (sort branches by site) and combine duplicate
/// assignments (summing shots when `merge`, else keeping the first).
[[nodiscard]] std::vector<TrajectorySpec> dedup(
    std::vector<TrajectorySpec> specs, bool merge);

}  // namespace ptsbe::pts
