#pragma once

/// \file trajectory_executor.hpp
/// \brief Work-stealing multi-threaded trajectory executor.
///
/// Batched Execution's unit of work is one trajectory preparation (or, under
/// the shared-prefix schedule, one trie subtree). This executor runs those
/// units across `be::Options::threads` worker threads with classic
/// work-stealing scheduling: every worker owns a deque, pops its own newest
/// task (LIFO — keeps a DFS worker on its current subtree and bounds the
/// number of live state snapshots), and steals the *oldest* task of a victim
/// when it runs dry (the shallowest, therefore largest, pending subtree).
///
/// Determinism contract: the executor adds no randomness and never splits a
/// spec, so any task placement yields bit-identical records — each spec
/// samples from its own Philox substream and preparation consumes no
/// randomness at all. Only completion *order* (and the diagnostic
/// `TrajectoryBatch::device_id`, the id of the worker that prepared the
/// batch) depends on scheduling.
///
/// Thread model:
///  - `spawn` seeds work before `drain` (caller thread) or adds work from
///    inside a running task via `spawn_from(worker, …)`.
///  - Workers hand completed batches to `emit` — a lock-free Treiber-stack
///    push. A worker never waits on the sink call itself; only when the
///    drain loop has fallen a bounded number of batches behind does `emit`
///    apply backpressure, which is what keeps streaming exports
///    bounded-memory under a slow sink.
///  - `drain` runs on the calling thread: it starts the workers, pops
///    completed batches, invokes the delivery callback **only on the calling
///    thread** (sinks therefore need no locking and may even be
///    thread-hostile), and joins the workers before returning. The join
///    gives the caller a full happens-before edge over everything the
///    workers wrote (per-worker accounting included).
///
/// Errors: the first exception thrown by a task — or by the delivery
/// callback — cancels the run (`cancelled()` flips; tasks are expected to
/// poll it and return early, skipping work *before* the expensive
/// preparation), the remaining queue drains with batches dropped, the
/// workers are joined, and the exception is rethrown from `drain`. A
/// delivery-callback exception takes precedence over later task errors.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "ptsbe/common/thread_annotations.hpp"
#include "ptsbe/core/batched_execution.hpp"

namespace ptsbe::be {

/// Move-only type-erased task. `std::function` requires copyable targets,
/// but trajectory tasks own move-only `SimState` snapshots — this is the
/// minimal replacement (C++23's `std::move_only_function` of `void(size_t)`).
class WorkerTask {
 public:
  WorkerTask() = default;

  template <typename F>
  WorkerTask(F fn)  // NOLINT(google-explicit-constructor): function-like
      : impl_(std::make_unique<Model<F>>(std::move(fn))) {}

  WorkerTask(WorkerTask&&) noexcept = default;
  WorkerTask& operator=(WorkerTask&&) noexcept = default;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  /// Run the task on `worker` (the id of the executing worker thread).
  void operator()(std::size_t worker) { impl_->call(worker); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call(std::size_t worker) = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F fn) : fn_(std::move(fn)) {}
    void call(std::size_t worker) override { fn_(worker); }
    F fn_;
  };
  std::unique_ptr<Concept> impl_;
};

/// Resolve `Options::threads` to a concrete worker count: 0 means hardware
/// concurrency (at least 1); the legacy `Options::num_devices` knob maps
/// onto the same pool, so the effective count is the max of the two.
[[nodiscard]] std::size_t resolved_threads(const Options& options) noexcept;

/// The work-stealing pool plus the lock-free completion queue. One instance
/// executes one batch of trajectories: seed with `spawn`, then `drain`.
class TrajectoryExecutor {
 public:
  explicit TrajectoryExecutor(std::size_t num_workers);
  TrajectoryExecutor(const TrajectoryExecutor&) = delete;
  TrajectoryExecutor& operator=(const TrajectoryExecutor&) = delete;
  ~TrajectoryExecutor();

  /// Worker threads this executor runs (>= 1). Valid from construction —
  /// the threads themselves only start when `drain` begins.
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return queues_.size();
  }

  /// Seed a task from the calling thread (before `drain`); tasks are
  /// distributed round-robin across the worker deques. Workers pop their
  /// own deque newest-first, so seed in reverse when a single worker should
  /// execute in a specific order.
  void spawn(WorkerTask task);

  /// Add a task from inside a running task: pushed onto `worker`'s own
  /// deque (newest — the spawning worker keeps locality; idle workers
  /// steal it from the other end).
  void spawn_from(std::size_t worker, WorkerTask task);

  /// Max completed-but-undelivered batches per worker before `emit`
  /// applies backpressure. Bounds the completion queue at
  /// kMaxQueuedPerWorker × num_workers batches, which is what keeps
  /// streaming exports bounded-memory even when the sink is slower than
  /// the workers.
  static constexpr std::size_t kMaxQueuedPerWorker = 4;

  /// Worker-side: hand a completed batch to the drain loop. The push is
  /// lock-free (one CAS); when the drain loop has fallen more than the
  /// queue bound behind, the worker waits for it to catch up
  /// (backpressure) — it never waits on the sink call itself, and
  /// cancellation releases any waiter.
  void emit(TrajectoryBatch&& batch);

  /// True once a task or the delivery callback has thrown (or `cancel` was
  /// called). Tasks poll this to skip pending work before preparation.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Request cancellation: pending tasks still run but are expected to
  /// return immediately; emit() backpressure waiters are released.
  void cancel() noexcept;

  /// Record a task failure (first one wins) and cancel the run. Called by
  /// task bodies that must not let exceptions escape onto a worker thread.
  void report_error(std::exception_ptr error) noexcept;

  /// Run the batch to completion on the calling thread: start the workers,
  /// deliver every emitted batch to `deliver` (calling-thread only, in
  /// per-worker completion order), join the workers, then rethrow the first
  /// delivery or task error. After `drain` returns the executor is spent.
  void drain(const std::function<void(TrajectoryBatch&&)>& deliver);

 private:
  struct CompletedNode {
    TrajectoryBatch batch;
    CompletedNode* next = nullptr;
  };
  /// One worker's deque. A plain mutex-guarded deque: the owner and thieves
  /// touch it for nanoseconds compared to a state preparation, so a
  /// Chase-Lev structure would buy nothing here.
  struct WorkerQueue {
    Mutex mutex;
    std::deque<WorkerTask> tasks PTSBE_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] WorkerTask try_pop(std::size_t self);
  void finish_task();
  void bump_events() noexcept;
  void drain_completed(const std::function<void(TrajectoryBatch&&)>& deliver,
                       std::exception_ptr& delivery_error);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::size_t seed_cursor_ = 0;

  /// Tasks spawned but not yet finished. Incremented *before* the push so
  /// the drain loop can never observe an empty pool with a task in flight.
  std::atomic<std::size_t> pending_{0};
  /// Event version counter: bumped (with notify_all) on every spawn, every
  /// emit, on pending_ reaching zero and on stop — the single futex both
  /// idle workers and the drain loop sleep on.
  std::atomic<std::uint64_t> events_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<CompletedNode*> completed_{nullptr};
  /// Completed-but-undelivered batches (emit backpressure accounting).
  std::atomic<std::size_t> queued_{0};
  /// Bumped (with notify_all) whenever the drain loop consumes a round of
  /// batches — the futex emit() waits on under backpressure.
  std::atomic<std::uint64_t> drained_epoch_{0};

  Mutex error_mutex_;
  std::exception_ptr task_error_ PTSBE_GUARDED_BY(error_mutex_);
};

}  // namespace ptsbe::be
