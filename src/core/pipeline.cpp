#include "ptsbe/core/pipeline.hpp"

#include <utility>

#include "ptsbe/core/dataset.hpp"

namespace ptsbe {

be::Estimate RunResult::estimate(
    const std::function<double(std::uint64_t)>& f) const {
  return be::estimate(result, weighting, f);
}

be::Estimate RunResult::estimate_z_parity(std::uint64_t mask) const {
  return be::estimate_z_parity(result, weighting, mask);
}

be::Estimate RunResult::estimate_probability(
    const std::function<bool(std::uint64_t)>& predicate) const {
  return be::estimate_probability(result, weighting, predicate);
}

void RunResult::to_csv(const std::string& path) const {
  dataset::write_csv(path, result);
}

void RunResult::to_binary(const std::string& path) const {
  dataset::write_binary(path, result);
}

Pipeline::Pipeline(const Circuit& circuit, const NoiseModel& noise)
    : noisy_(noise.apply(circuit)) {}

Pipeline::Pipeline(NoisyCircuit noisy) : noisy_(std::move(noisy)) {}

Pipeline& Pipeline::strategy(std::string name, pts::StrategyConfig config) {
  strategy_name_ = std::move(name);
  strategy_config_ = std::move(config);
  return *this;
}

Pipeline& Pipeline::backend(std::string name, BackendConfig config) {
  exec_.backend = std::move(name);
  exec_.config = std::move(config);
  return *this;
}

Pipeline& Pipeline::schedule(be::Schedule schedule) {
  exec_.schedule = schedule;
  return *this;
}

Pipeline& Pipeline::threads(std::size_t num_threads) {
  exec_.threads = num_threads;
  return *this;
}

Pipeline& Pipeline::devices(std::size_t num_devices) {
  exec_.num_devices = num_devices;
  return *this;
}

Pipeline& Pipeline::seed(std::uint64_t seed) {
  exec_.seed = seed;
  return *this;
}

Pipeline& Pipeline::cached_plan(std::shared_ptr<const ExecPlan> plan) {
  exec_.plan = std::move(plan);
  return *this;
}

be::Weighting Pipeline::weighting() const {
  return pts::make_strategy(strategy_name_)->weighting();
}

std::vector<TrajectorySpec> Pipeline::sample_with(
    const pts::Strategy& strat) const {
  // The master stream is subsequence 0 of the seed; BE's per-trajectory
  // substreams are subsequences 1..N, so PTS and BE never overlap.
  RngStream rng(exec_.seed);
  return strat.sample(noisy_, strategy_config_, rng);
}

std::vector<TrajectorySpec> Pipeline::sample() const {
  return sample_with(*pts::make_strategy(strategy_name_));
}

RunResult Pipeline::run() const {
  // One strategy instance supplies both the specs and the weighting, so
  // the pairing in RunResult holds by construction.
  const pts::StrategyPtr strat = pts::make_strategy(strategy_name_);
  const std::vector<TrajectorySpec> specs = sample_with(*strat);
  RunResult out;
  out.result = be::execute(noisy_, specs, exec_);
  out.weighting = strat->weighting();
  out.strategy = strategy_name_;
  out.backend = exec_.backend;
  out.num_specs = specs.size();
  out.schedule_requested = exec_.schedule;
  out.schedule_executed = out.result.schedule;
  return out;
}

be::StreamSummary Pipeline::run_streaming(const be::BatchSink& sink) const {
  return be::execute_streaming(noisy_, sample(), exec_, sink);
}

}  // namespace ptsbe
