#include "ptsbe/core/pts.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ptsbe/common/error.hpp"

namespace ptsbe::pts {

namespace {

/// Draw a branch for one site from its channel's nominal distribution.
std::size_t draw_branch(const NoiseSite& site, RngStream& rng) {
  const auto& probs = site.channel->nominal_probabilities();
  const double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t b = 0; b + 1 < probs.size(); ++b) {
    acc += probs[b];
    if (r < acc) return b;
  }
  return probs.size() - 1;
}

void finalize_spec(const NoisyCircuit& noisy, TrajectorySpec& spec) {
  std::sort(spec.branches.begin(), spec.branches.end());
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(spec.branches.size());
  for (const BranchChoice& bc : spec.branches) pairs.push_back({bc.site, bc.branch});
  spec.nominal_probability = noisy.nominal_sparse_probability(pairs);
}

}  // namespace

bool SiteFilter::allows(const NoisyCircuit& noisy, const NoiseSite& site,
                        std::size_t branch) const {
  if (gate_name.has_value()) {
    if (site.after_op == NoiseSite::kBeforeCircuit) return false;
    if (noisy.circuit().ops()[site.after_op].name != *gate_name) return false;
  }
  if (qubits.has_value()) {
    bool touches = false;
    for (unsigned q : site.qubits)
      if (std::find(qubits->begin(), qubits->end(), q) != qubits->end()) {
        touches = true;
        break;
      }
    if (!touches) return false;
  }
  if (predicate && !predicate(site, branch)) return false;
  return true;
}

std::vector<TrajectorySpec> sample_probabilistic(const NoisyCircuit& noisy,
                                                 const Options& options,
                                                 RngStream& rng,
                                                 const SiteFilter* filter) {
  std::vector<TrajectorySpec> specs;
  specs.reserve(options.nsamples);
  for (std::size_t s = 0; s < options.nsamples; ++s) {
    TrajectorySpec spec;
    spec.shots = options.nshots;
    for (const NoiseSite& site : noisy.sites()) {
      const std::size_t branch = draw_branch(site, rng);
      if (branch == site.channel->default_branch()) continue;
      if (filter != nullptr && !filter->allows(noisy, site, branch)) continue;
      spec.branches.push_back({site.index, branch});
    }
    finalize_spec(noisy, spec);
    specs.push_back(std::move(spec));
  }
  return dedup(std::move(specs), options.merge_duplicates);
}

std::vector<TrajectorySpec> dedup(std::vector<TrajectorySpec> specs, bool merge) {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<TrajectorySpec> out;
  out.reserve(specs.size());
  for (TrajectorySpec& spec : specs) {
    std::sort(spec.branches.begin(), spec.branches.end());
    const std::uint64_t h = spec.assignment_hash();
    auto& bucket = buckets[h];
    bool duplicate = false;
    for (std::size_t idx : bucket) {
      if (out[idx].same_assignment(spec)) {
        if (merge) out[idx].shots += spec.shots;
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(out.size());
      out.push_back(std::move(spec));
    }
  }
  return out;
}

std::vector<TrajectorySpec> redistribute_proportional(
    std::vector<TrajectorySpec> specs, std::uint64_t total) {
  double sum = 0.0;
  for (const TrajectorySpec& s : specs) sum += s.nominal_probability;
  PTSBE_REQUIRE(sum > 0.0,
                "cannot redistribute shots over zero total probability");
  std::vector<TrajectorySpec> out;
  out.reserve(specs.size());
  for (TrajectorySpec& s : specs) {
    const double share = s.nominal_probability / sum;
    s.shots = static_cast<std::uint64_t>(
        std::llround(share * static_cast<double>(total)));
    if (s.shots > 0) out.push_back(std::move(s));
  }
  return out;
}

std::vector<TrajectorySpec> filter_band(std::vector<TrajectorySpec> specs,
                                        double p_min, double p_max) {
  PTSBE_REQUIRE(p_min <= p_max, "band bounds out of order");
  std::vector<TrajectorySpec> out;
  out.reserve(specs.size());
  for (TrajectorySpec& s : specs)
    if (s.nominal_probability >= p_min && s.nominal_probability <= p_max)
      out.push_back(std::move(s));
  return out;
}

std::vector<TrajectorySpec> enumerate_most_likely(const NoisyCircuit& noisy,
                                                  double probability_cutoff,
                                                  std::uint64_t nshots,
                                                  std::size_t max_results) {
  PTSBE_REQUIRE(probability_cutoff > 0.0, "cutoff must be positive");
  const auto& sites = noisy.sites();
  const std::size_t n = sites.size();

  // Per-site default probability and suffix products of the *maximum*
  // achievable remaining probability (for branch-and-bound pruning).
  std::vector<double> best_remaining(n + 1, 1.0);
  for (std::size_t i = n; i-- > 0;) {
    const auto& probs = sites[i].channel->nominal_probabilities();
    const double site_best = *std::max_element(probs.begin(), probs.end());
    best_remaining[i] = best_remaining[i + 1] * site_best;
  }

  std::vector<TrajectorySpec> out;
  TrajectorySpec current;
  current.shots = nshots;

  // DFS over sites; at each site try every branch whose running product can
  // still clear the cutoff.
  std::function<void(std::size_t, double)> visit = [&](std::size_t i,
                                                       double p_so_far) {
    if (p_so_far * best_remaining[i] < probability_cutoff) return;
    if (i == n) {
      TrajectorySpec spec = current;
      spec.nominal_probability = p_so_far;
      out.push_back(std::move(spec));
      return;
    }
    const NoiseSite& site = sites[i];
    const auto& probs = site.channel->nominal_probabilities();
    const std::size_t def = site.channel->default_branch();
    // Default branch first (highest-probability subtree usually).
    visit(i + 1, p_so_far * probs[def]);
    for (std::size_t b = 0; b < probs.size(); ++b) {
      if (b == def || probs[b] <= 0.0) continue;
      current.branches.push_back({site.index, b});
      visit(i + 1, p_so_far * probs[b]);
      current.branches.pop_back();
    }
  };
  visit(0, 1.0);

  std::sort(out.begin(), out.end(),
            [](const TrajectorySpec& a, const TrajectorySpec& b) {
              return a.nominal_probability > b.nominal_probability;
            });
  if (max_results != 0 && out.size() > max_results) out.resize(max_results);
  return out;
}

std::vector<TrajectorySpec> sample_pauli_twirled(const NoisyCircuit& noisy,
                                                 const Options& options,
                                                 RngStream& rng) {
  std::vector<TrajectorySpec> specs;
  specs.reserve(options.nsamples);
  for (std::size_t s = 0; s < options.nsamples; ++s) {
    TrajectorySpec spec;
    spec.shots = options.nshots;
    for (const NoiseSite& site : noisy.sites()) {
      const auto& probs = site.channel->nominal_probabilities();
      const std::size_t def = site.channel->default_branch();
      const double p_error = 1.0 - probs[def];
      if (p_error <= 0.0) continue;
      if (rng.uniform() >= p_error) continue;
      // Fired: scramble the error type uniformly over non-default branches.
      std::vector<std::size_t> error_branches;
      for (std::size_t b = 0; b < probs.size(); ++b)
        if (b != def) error_branches.push_back(b);
      const std::size_t pick =
          error_branches[rng.uniform_index(error_branches.size())];
      spec.branches.push_back({site.index, pick});
    }
    finalize_spec(noisy, spec);
    specs.push_back(std::move(spec));
  }
  return dedup(std::move(specs), options.merge_duplicates);
}

std::vector<TrajectorySpec> sample_spatially_correlated(
    const NoisyCircuit& noisy, const Options& options, RngStream& rng,
    double boost, unsigned radius) {
  PTSBE_REQUIRE(boost >= 1.0, "boost must be >= 1");
  const auto& sites = noisy.sites();
  const auto near = [&](const NoiseSite& a, const NoiseSite& b) {
    for (unsigned qa : a.qubits)
      for (unsigned qb : b.qubits) {
        const unsigned lo = std::min(qa, qb), hi = std::max(qa, qb);
        if (hi - lo <= radius) return true;
      }
    return false;
  };
  std::vector<TrajectorySpec> specs;
  specs.reserve(options.nsamples);
  for (std::size_t s = 0; s < options.nsamples; ++s) {
    TrajectorySpec spec;
    spec.shots = options.nshots;
    // First pass: independent firing. Second pass: boosted firing next to
    // already-fired sites.
    std::vector<bool> fired(sites.size(), false);
    std::vector<std::size_t> chosen(sites.size(), 0);
    for (const NoiseSite& site : sites) {
      const std::size_t branch = draw_branch(site, rng);
      if (branch != site.channel->default_branch()) {
        fired[site.index] = true;
        chosen[site.index] = branch;
      }
    }
    for (const NoiseSite& site : sites) {
      if (fired[site.index]) continue;
      bool neighbour_fired = false;
      for (const NoiseSite& other : sites) {
        if (!fired[other.index] || other.index == site.index) continue;
        if (near(site, other)) {
          neighbour_fired = true;
          break;
        }
      }
      if (!neighbour_fired) continue;
      const auto& probs = site.channel->nominal_probabilities();
      const std::size_t def = site.channel->default_branch();
      const double p_error = std::min(1.0, boost * (1.0 - probs[def]));
      if (rng.uniform() >= p_error) continue;
      // Pick among error branches proportionally to their probabilities.
      double total = 0.0;
      for (std::size_t b = 0; b < probs.size(); ++b)
        if (b != def) total += probs[b];
      if (total <= 0.0) continue;
      double r = rng.uniform() * total;
      std::size_t pick = def;
      for (std::size_t b = 0; b < probs.size(); ++b) {
        if (b == def) continue;
        r -= probs[b];
        if (r < 0.0) {
          pick = b;
          break;
        }
      }
      if (pick == def) continue;
      fired[site.index] = true;
      chosen[site.index] = pick;
    }
    for (std::size_t i = 0; i < sites.size(); ++i)
      if (fired[i]) spec.branches.push_back({i, chosen[i]});
    finalize_spec(noisy, spec);
    specs.push_back(std::move(spec));
  }
  return dedup(std::move(specs), options.merge_duplicates);
}

}  // namespace ptsbe::pts
