#include "ptsbe/core/batched_execution.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/core/prefix_scheduler.hpp"
#include "ptsbe/core/trajectory_executor.hpp"

namespace ptsbe::be {

namespace {

/// Per-worker accounting, merged into the StreamSummary after the executor
/// drains (the join publishes every slot). Cache-line sized so adjacent
/// workers don't false-share their accumulators.
struct alignas(64) WorkerAccum {
  std::size_t num_batches = 0;
  std::uint64_t total_shots = 0;
  double prepare_seconds = 0.0;
  double sample_seconds = 0.0;
};

StreamSummary merge(const std::vector<WorkerAccum>& accums,
                    Schedule executed) {
  StreamSummary summary;
  summary.schedule = executed;
  for (const WorkerAccum& a : accums) {
    summary.num_batches += a.num_batches;
    summary.total_shots += a.total_shots;
    summary.prepare_seconds += a.prepare_seconds;
    summary.sample_seconds += a.sample_seconds;
  }
  return summary;
}

/// Shared-prefix schedule: sort specs lexicographically by their dense
/// branch assignment so overlapping trajectories are contiguous, then walk
/// the whole trie as one work-stealing DFS — fork points spawn subtree
/// tasks, so parallelism appears exactly where trajectories deviate and the
/// shared work is still done once.
StreamSummary execute_streaming_shared(const NoisyCircuit& noisy,
                                       const std::vector<TrajectorySpec>& specs,
                                       const Options& options,
                                       const BatchSink& sink,
                                       const Backend& backend,
                                       const RngStream& master) {
  // An injected plan (the serve engine's cache) replaces the per-call
  // fusion+lowering pass; otherwise build one for this run.
  const ExecPlan local_plan =
      options.plan ? ExecPlan{} : backend.make_plan(noisy);
  const ExecPlan& plan = options.plan ? *options.plan : local_plan;
  const std::vector<std::vector<std::size_t>> assignments =
      all_assignments(noisy, specs);
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (assignments[a] != assignments[b]) return assignments[a] < assignments[b];
    return a < b;  // keep duplicate assignments in spec order
  });

  TrajectoryExecutor executor(resolved_threads(options));
  std::vector<WorkerAccum> accums(executor.num_workers());
  std::vector<double> prepare_seconds(executor.num_workers(), 0.0);
  // Worker-side delivery: wrap the ShotResult into a TrajectoryBatch,
  // account on this worker's slot (single-writer, lock-free by
  // construction) and hand the batch to the drain loop's lock-free queue.
  // The sink itself runs only on the calling thread, inside drain().
  const SpecResultFn emit = [&](std::size_t worker, std::size_t t,
                                ShotResult&& shot) {
    TrajectoryBatch batch;
    batch.spec_index = t;
    batch.spec = specs[t];
    batch.device_id = worker;
    batch.records = std::move(shot.records);
    batch.realized_probability = shot.realized_probability;
    WorkerAccum& accum = accums[worker];
    accum.num_batches += 1;
    accum.total_shots += batch.records.size();
    accum.sample_seconds += shot.sample_seconds;
    executor.emit(std::move(batch));
  };
  spawn_shared_prefix(executor, backend, noisy, plan, specs, assignments,
                      order, master, emit, prepare_seconds);
  executor.drain([&sink](TrajectoryBatch&& batch) { sink(std::move(batch)); });
  for (std::size_t w = 0; w < accums.size(); ++w)
    accums[w].prepare_seconds += prepare_seconds[w];
  return merge(accums, Schedule::kSharedPrefix);
}

}  // namespace

const std::string& to_string(Schedule schedule) {
  static const std::string kIndependentName = "independent";
  static const std::string kSharedPrefixName = "shared-prefix";
  return schedule == Schedule::kSharedPrefix ? kSharedPrefixName
                                             : kIndependentName;
}

Schedule schedule_from_string(const std::string& name) {
  if (name == "independent") return Schedule::kIndependent;
  if (name == "shared-prefix") return Schedule::kSharedPrefix;
  throw precondition_error("unknown schedule '" + name +
                           "'; known schedules: independent shared-prefix");
}

std::uint64_t Result::total_shots() const noexcept {
  std::uint64_t total = 0;
  for (const TrajectoryBatch& b : batches) total += b.records.size();
  return total;
}

double Result::unique_shot_fraction() const {
  const std::uint64_t total = total_shots();
  // Empty results (no batches, or only unrealizable zero-record batches)
  // have no well-defined fraction; return 0.0 rather than dividing into
  // NaN. Pinned by tests/test_scheduler.cpp.
  if (total == 0) return 0.0;
  // Single pass, no materialised concatenation: the distinct set is built
  // directly from each batch's records.
  std::unordered_set<std::uint64_t> distinct;
  distinct.reserve(static_cast<std::size_t>(total));
  for (const TrajectoryBatch& b : batches)
    distinct.insert(b.records.begin(), b.records.end());
  return static_cast<double>(distinct.size()) / static_cast<double>(total);
}

double unique_fraction(const std::vector<std::uint64_t>& records) {
  if (records.empty()) return 0.0;
  std::unordered_set<std::uint64_t> distinct(records.begin(), records.end());
  return static_cast<double>(distinct.size()) /
         static_cast<double>(records.size());
}

StreamSummary execute_streaming(const NoisyCircuit& noisy,
                                const std::vector<TrajectorySpec>& specs,
                                const Options& options, const BatchSink& sink) {
  PTSBE_REQUIRE(static_cast<bool>(sink), "streaming execution needs a sink");
  // Resolve the backend by name once; the instance is immutable and its
  // run() is re-entrant, so every worker shares it.
  const BackendPtr backend = make_backend(options.backend, options.config);
  PTSBE_REQUIRE(backend->supports(noisy),
                "backend '" + options.backend +
                    "' does not support this program (gate set, channel "
                    "class or qubit count)");
  // Cheap fingerprint on an injected plan: a plan built for a different
  // program would otherwise sweep the wrong step list and return
  // plausible-looking records. (Matching counts with a different fusion
  // setting remain the caller's contract — see Options::plan.)
  PTSBE_REQUIRE(!options.plan ||
                    (options.plan->site_count == noisy.num_sites() &&
                     options.plan->unfused_gate_count ==
                         noisy.circuit().gate_count()),
                "injected ExecPlan does not match this program (site/gate "
                "counts differ); it must come from make_plan on the same "
                "NoisyCircuit");

  const RngStream master(options.seed);

  if (options.schedule == Schedule::kSharedPrefix && backend->can_fork_states())
    return execute_streaming_shared(noisy, specs, options, sink, *backend,
                                    master);
  // Independent schedule — also the deterministic fallback for backends
  // that cannot fork states (their records are identical under either
  // schedule by contract; the fallback is surfaced via
  // StreamSummary::schedule). The plan is built once and shared by every
  // run_with_plan call; backends that don't prepare through plans
  // (stabilizer — exactly the non-forkable ones today) get an empty
  // placeholder instead of a deep-copied plan their default run_with_plan
  // would discard.
  const ExecPlan local_plan =
      (backend->can_fork_states() && !options.plan) ? backend->make_plan(noisy)
                                                    : ExecPlan{};
  const ExecPlan& plan =
      (options.plan && backend->can_fork_states()) ? *options.plan : local_plan;

  TrajectoryExecutor executor(resolved_threads(options));
  std::vector<WorkerAccum> accums(executor.num_workers());

  // One task per spec, seeded in reverse: a worker pops its own deque
  // newest-first, so with a single worker execution (and therefore
  // delivery) order equals spec order.
  for (std::size_t t = specs.size(); t-- > 0;) {
    executor.spawn([&, t](std::size_t worker) {
      // Cancelled runs (sink or task failure) skip pending trajectories
      // *before* their expensive preparation.
      if (executor.cancelled()) return;
      TrajectoryBatch batch;
      batch.spec_index = t;
      batch.spec = specs[t];
      batch.device_id = worker;
      // Reproducible per-trajectory stream, independent of scheduling.
      RngStream rng = master.substream(t);
      ShotResult shot =
          backend->run_with_plan(noisy, plan, specs[t], specs[t].shots, rng);
      batch.records = std::move(shot.records);
      batch.realized_probability = shot.realized_probability;
      // Accounting is per-worker and lock-free; batch handoff is the
      // executor's lock-free queue. The sink runs on the calling thread.
      WorkerAccum& accum = accums[worker];
      accum.num_batches += 1;
      accum.total_shots += batch.records.size();
      accum.prepare_seconds += shot.prepare_seconds;
      accum.sample_seconds += shot.sample_seconds;
      executor.emit(std::move(batch));
    });
  }
  executor.drain([&sink](TrajectoryBatch&& batch) { sink(std::move(batch)); });

  return merge(accums, Schedule::kIndependent);
}

Result execute(const NoisyCircuit& noisy,
               const std::vector<TrajectorySpec>& specs,
               const Options& options) {
  // The non-streaming path is a materialising sink over the streaming one:
  // batches land at their spec index, restoring spec order (and erasing any
  // thread-scheduling effect on ordering).
  Result result;
  result.batches.resize(specs.size());
  const StreamSummary summary = execute_streaming(
      noisy, specs, options, [&result](TrajectoryBatch&& batch) {
        result.batches[batch.spec_index] = std::move(batch);
      });
  result.schedule = summary.schedule;
  result.prepare_seconds = summary.prepare_seconds;
  result.sample_seconds = summary.sample_seconds;
  return result;
}

}  // namespace ptsbe::be
