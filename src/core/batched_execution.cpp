#include "ptsbe/core/batched_execution.hpp"

#include <atomic>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "ptsbe/common/error.hpp"

namespace ptsbe::be {

std::uint64_t Result::total_shots() const noexcept {
  std::uint64_t total = 0;
  for (const TrajectoryBatch& b : batches) total += b.records.size();
  return total;
}

double Result::unique_shot_fraction() const {
  std::vector<std::uint64_t> all;
  all.reserve(total_shots());
  for (const TrajectoryBatch& b : batches)
    all.insert(all.end(), b.records.begin(), b.records.end());
  return unique_fraction(all);
}

double unique_fraction(const std::vector<std::uint64_t>& records) {
  if (records.empty()) return 0.0;
  std::unordered_set<std::uint64_t> distinct(records.begin(), records.end());
  return static_cast<double>(distinct.size()) /
         static_cast<double>(records.size());
}

StreamSummary execute_streaming(const NoisyCircuit& noisy,
                                const std::vector<TrajectorySpec>& specs,
                                const Options& options, const BatchSink& sink) {
  PTSBE_REQUIRE(static_cast<bool>(sink), "streaming execution needs a sink");
  // Resolve the backend by name once; the instance is immutable and its
  // run() is re-entrant, so every device shares it.
  const BackendPtr backend = make_backend(options.backend, options.config);
  PTSBE_REQUIRE(backend->supports(noisy),
                "backend '" + options.backend +
                    "' does not support this program (gate set, channel "
                    "class or qubit count)");

  const RngStream master(options.seed);
  const DevicePool pool(options.num_devices);

  StreamSummary summary;
  std::mutex sink_mutex;
  // Once any sink call throws, pending trajectories are skipped before
  // their (expensive) preparation instead of simulated-and-dropped;
  // DevicePool rethrows the first exception after the devices drain.
  std::atomic<bool> sink_failed{false};

  pool.run_batch(specs.size(), [&](std::size_t device_id, std::size_t t) {
    if (sink_failed.load(std::memory_order_acquire)) return;
    TrajectoryBatch batch;
    batch.spec_index = t;
    batch.spec = specs[t];
    batch.device_id = device_id;
    // Reproducible per-trajectory stream, independent of scheduling.
    RngStream rng = master.substream(t);
    ShotResult shot = backend->run(noisy, specs[t], specs[t].shots, rng);
    batch.records = std::move(shot.records);
    batch.realized_probability = shot.realized_probability;

    std::lock_guard lock(sink_mutex);
    if (sink_failed.load(std::memory_order_relaxed)) return;
    summary.num_batches += 1;
    summary.total_shots += batch.records.size();
    summary.prepare_seconds += shot.prepare_seconds;
    summary.sample_seconds += shot.sample_seconds;
    try {
      sink(std::move(batch));
    } catch (...) {
      sink_failed.store(true, std::memory_order_release);
      throw;
    }
  });

  return summary;
}

Result execute(const NoisyCircuit& noisy,
               const std::vector<TrajectorySpec>& specs,
               const Options& options) {
  // The non-streaming path is a materialising sink over the streaming one:
  // batches land at their spec index, restoring spec order.
  Result result;
  result.batches.resize(specs.size());
  const StreamSummary summary = execute_streaming(
      noisy, specs, options, [&result](TrajectoryBatch&& batch) {
        result.batches[batch.spec_index] = std::move(batch);
      });
  result.prepare_seconds = summary.prepare_seconds;
  result.sample_seconds = summary.sample_seconds;
  return result;
}

}  // namespace ptsbe::be
