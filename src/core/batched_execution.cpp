#include "ptsbe/core/batched_execution.hpp"

#include <atomic>
#include <unordered_set>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/timer.hpp"

namespace ptsbe::be {

namespace {

/// Branch lookup for one trajectory: site index → assigned branch.
std::vector<std::size_t> full_assignment(const NoisyCircuit& noisy,
                                         const TrajectorySpec& spec) {
  std::vector<std::size_t> assignment(noisy.num_sites());
  for (std::size_t i = 0; i < noisy.num_sites(); ++i)
    assignment[i] = noisy.sites()[i].channel->default_branch();
  for (const BranchChoice& bc : spec.branches) {
    PTSBE_REQUIRE(bc.site < noisy.num_sites(), "spec site out of range");
    PTSBE_REQUIRE(bc.branch < noisy.sites()[bc.site].channel->num_branches(),
                  "spec branch out of range");
    assignment[bc.site] = bc.branch;
  }
  return assignment;
}

/// Prepare the trajectory state for `spec` on `state`; accumulates the
/// realised probability of general-Kraus branches. Returns false when the
/// spec is unrealizable at this state (a general-Kraus branch with zero
/// realised probability — e.g. a second amplitude-damping decay after the
/// qubit already reached |0⟩); the caller records an empty batch with
/// realized_probability 0.
template <typename State>
bool prepare_state(State& state, const NoisyCircuit& noisy,
                   const std::vector<std::size_t>& assignment,
                   double& realized_probability) {
  const auto apply_site = [&](std::size_t id) {
    const NoiseSite& site = noisy.sites()[id];
    const std::size_t branch = assignment[id];
    const KrausChannel& ch = *site.channel;
    if (ch.is_unitary_mixture()) {
      state.apply_gate(ch.unitary(branch), site.qubits);
      realized_probability *= ch.nominal_probabilities()[branch];
      return true;
    }
    const double p = state.branch_probability(ch.kraus(branch), site.qubits);
    if (p < 1e-14) {
      realized_probability = 0.0;
      return false;
    }
    realized_probability *= state.apply_kraus_branch(ch.kraus(branch),
                                                     site.qubits);
    return true;
  };
  for (std::size_t id : noisy.sites_after(NoiseSite::kBeforeCircuit))
    if (!apply_site(id)) return false;
  const auto& ops = noisy.circuit().ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kGate)
      state.apply_gate(ops[i].matrix, ops[i].qubits);
    for (std::size_t id : noisy.sites_after(i))
      if (!apply_site(id)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t Result::total_shots() const noexcept {
  std::uint64_t total = 0;
  for (const TrajectoryBatch& b : batches) total += b.records.size();
  return total;
}

double Result::unique_shot_fraction() const {
  std::vector<std::uint64_t> all;
  all.reserve(total_shots());
  for (const TrajectoryBatch& b : batches)
    all.insert(all.end(), b.records.begin(), b.records.end());
  return unique_fraction(all);
}

double unique_fraction(const std::vector<std::uint64_t>& records) {
  if (records.empty()) return 0.0;
  std::unordered_set<std::uint64_t> distinct(records.begin(), records.end());
  return static_cast<double>(distinct.size()) /
         static_cast<double>(records.size());
}

Result execute(const NoisyCircuit& noisy,
               const std::vector<TrajectorySpec>& specs,
               const Options& options) {
  Result result;
  result.batches.resize(specs.size());
  const std::vector<unsigned> measured = noisy.circuit().measured_qubits();
  const RngStream master(options.seed);
  const DevicePool pool(options.num_devices);

  std::atomic<std::uint64_t> prep_ns{0}, sample_ns{0};

  pool.run_batch(specs.size(), [&](std::size_t device_id, std::size_t t) {
    const TrajectorySpec& spec = specs[t];
    TrajectoryBatch& batch = result.batches[t];
    batch.spec_index = t;
    batch.spec = spec;
    batch.device_id = device_id;
    // Reproducible per-trajectory stream, independent of scheduling.
    RngStream rng = master.substream(t);
    const std::vector<std::size_t> assignment = full_assignment(noisy, spec);

    WallTimer timer;
    std::vector<std::uint64_t> shots;
    if (options.backend == Backend::kStateVector) {
      StateVector state(noisy.num_qubits());
      const bool realizable =
          prepare_state(state, noisy, assignment, batch.realized_probability);
      prep_ns.fetch_add(timer.nanoseconds(), std::memory_order_relaxed);
      timer.reset();
      if (realizable) shots = state.sample_shots(spec.shots, rng);
      sample_ns.fetch_add(timer.nanoseconds(), std::memory_order_relaxed);
    } else {
      MpsState state(noisy.num_qubits(), options.mps);
      const bool realizable =
          prepare_state(state, noisy, assignment, batch.realized_probability);
      prep_ns.fetch_add(timer.nanoseconds(), std::memory_order_relaxed);
      timer.reset();
      if (realizable) shots = state.sample_shots(spec.shots, rng);
      sample_ns.fetch_add(timer.nanoseconds(), std::memory_order_relaxed);
    }
    batch.records.resize(shots.size());
    for (std::size_t i = 0; i < shots.size(); ++i)
      batch.records[i] =
          measured.empty() ? shots[i] : extract_bits(shots[i], measured);
  });

  result.prepare_seconds = static_cast<double>(prep_ns.load()) * 1e-9;
  result.sample_seconds = static_cast<double>(sample_ns.load()) * 1e-9;
  return result;
}

}  // namespace ptsbe::be
