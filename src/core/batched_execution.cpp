#include "ptsbe/core/batched_execution.hpp"

#include <atomic>
#include <unordered_set>
#include <utility>

#include "ptsbe/common/error.hpp"

namespace ptsbe::be {

std::uint64_t Result::total_shots() const noexcept {
  std::uint64_t total = 0;
  for (const TrajectoryBatch& b : batches) total += b.records.size();
  return total;
}

double Result::unique_shot_fraction() const {
  std::vector<std::uint64_t> all;
  all.reserve(total_shots());
  for (const TrajectoryBatch& b : batches)
    all.insert(all.end(), b.records.begin(), b.records.end());
  return unique_fraction(all);
}

double unique_fraction(const std::vector<std::uint64_t>& records) {
  if (records.empty()) return 0.0;
  std::unordered_set<std::uint64_t> distinct(records.begin(), records.end());
  return static_cast<double>(distinct.size()) /
         static_cast<double>(records.size());
}

Result execute(const NoisyCircuit& noisy,
               const std::vector<TrajectorySpec>& specs,
               const Options& options) {
  // Resolve the backend by name once; the instance is immutable and its
  // run() is re-entrant, so every device shares it.
  BackendConfig config;
  config.mps = options.mps;
  const BackendPtr backend = make_backend(options.backend, config);
  PTSBE_REQUIRE(backend->supports(noisy),
                "backend '" + options.backend +
                    "' does not support this program (gate set, channel "
                    "class or qubit count)");

  Result result;
  result.batches.resize(specs.size());
  const RngStream master(options.seed);
  const DevicePool pool(options.num_devices);

  std::atomic<std::uint64_t> prep_ns{0}, sample_ns{0};

  pool.run_batch(specs.size(), [&](std::size_t device_id, std::size_t t) {
    TrajectoryBatch& batch = result.batches[t];
    batch.spec_index = t;
    batch.spec = specs[t];
    batch.device_id = device_id;
    // Reproducible per-trajectory stream, independent of scheduling.
    RngStream rng = master.substream(t);
    ShotResult shot = backend->run(noisy, specs[t], specs[t].shots, rng);
    batch.records = std::move(shot.records);
    batch.realized_probability = shot.realized_probability;
    prep_ns.fetch_add(static_cast<std::uint64_t>(shot.prepare_seconds * 1e9),
                      std::memory_order_relaxed);
    sample_ns.fetch_add(static_cast<std::uint64_t>(shot.sample_seconds * 1e9),
                        std::memory_order_relaxed);
  });

  result.prepare_seconds = static_cast<double>(prep_ns.load()) * 1e-9;
  result.sample_seconds = static_cast<double>(sample_ns.load()) * 1e-9;
  return result;
}

}  // namespace ptsbe::be
