#include "ptsbe/core/batched_execution.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/core/prefix_scheduler.hpp"

namespace ptsbe::be {

namespace {

/// Per-device accounting, merged into the StreamSummary after the pool
/// drains — keeps the sink mutex serialising only the sink call itself.
struct DeviceAccum {
  std::size_t num_batches = 0;
  std::uint64_t total_shots = 0;
  double prepare_seconds = 0.0;
  double sample_seconds = 0.0;
};

StreamSummary merge(const std::vector<DeviceAccum>& accums) {
  StreamSummary summary;
  for (const DeviceAccum& a : accums) {
    summary.num_batches += a.num_batches;
    summary.total_shots += a.total_shots;
    summary.prepare_seconds += a.prepare_seconds;
    summary.sample_seconds += a.sample_seconds;
  }
  return summary;
}

/// Shared-prefix schedule: sort specs lexicographically by their dense
/// branch assignment so overlapping trajectories are contiguous, split the
/// sorted order into one contiguous chunk per device (a chunk boundary only
/// re-simulates one prefix), and DFS each chunk's trie.
StreamSummary execute_streaming_shared(const NoisyCircuit& noisy,
                                       const std::vector<TrajectorySpec>& specs,
                                       const Options& options,
                                       const BatchSink& sink,
                                       const Backend& backend,
                                       const RngStream& master) {
  const ExecPlan plan = backend.make_plan(noisy);
  const std::vector<std::vector<std::size_t>> assignments =
      all_assignments(noisy, specs);
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (assignments[a] != assignments[b]) return assignments[a] < assignments[b];
    return a < b;  // keep duplicate assignments in spec order
  });

  const DevicePool pool(options.num_devices);
  const std::size_t num_chunks =
      std::max<std::size_t>(1, std::min(pool.num_devices(), specs.size()));

  std::vector<DeviceAccum> accums(pool.num_devices());
  std::mutex sink_mutex;
  std::atomic<bool> sink_failed{false};

  pool.run_batch(num_chunks, [&](std::size_t device_id, std::size_t chunk) {
    if (sink_failed.load(std::memory_order_acquire)) return;
    const std::size_t begin = chunk * specs.size() / num_chunks;
    const std::size_t end = (chunk + 1) * specs.size() / num_chunks;
    if (begin == end) return;
    DeviceAccum& accum = accums[device_id];
    const double prepare = run_shared_prefix(
        backend, noisy, plan, specs, assignments,
        std::span<const std::size_t>(order).subspan(begin, end - begin),
        master, [&](std::size_t t, ShotResult&& shot) {
          TrajectoryBatch batch;
          batch.spec_index = t;
          batch.spec = specs[t];
          batch.device_id = device_id;
          batch.records = std::move(shot.records);
          batch.realized_probability = shot.realized_probability;
          accum.num_batches += 1;
          accum.total_shots += batch.records.size();
          accum.sample_seconds += shot.sample_seconds;

          std::lock_guard lock(sink_mutex);
          if (sink_failed.load(std::memory_order_relaxed)) return;
          try {
            sink(std::move(batch));
          } catch (...) {
            sink_failed.store(true, std::memory_order_release);
            throw;  // unwinds the DFS; DevicePool rethrows after draining
          }
        });
    accum.prepare_seconds += prepare;
  });

  return merge(accums);
}

}  // namespace

const std::string& to_string(Schedule schedule) {
  static const std::string kIndependentName = "independent";
  static const std::string kSharedPrefixName = "shared-prefix";
  return schedule == Schedule::kSharedPrefix ? kSharedPrefixName
                                             : kIndependentName;
}

Schedule schedule_from_string(const std::string& name) {
  if (name == "independent") return Schedule::kIndependent;
  if (name == "shared-prefix") return Schedule::kSharedPrefix;
  throw precondition_error("unknown schedule '" + name +
                           "'; known schedules: independent shared-prefix");
}

std::uint64_t Result::total_shots() const noexcept {
  std::uint64_t total = 0;
  for (const TrajectoryBatch& b : batches) total += b.records.size();
  return total;
}

double Result::unique_shot_fraction() const {
  const std::uint64_t total = total_shots();
  if (total == 0) return 0.0;
  // Single pass, no materialised concatenation: the distinct set is built
  // directly from each batch's records.
  std::unordered_set<std::uint64_t> distinct;
  distinct.reserve(static_cast<std::size_t>(total));
  for (const TrajectoryBatch& b : batches)
    distinct.insert(b.records.begin(), b.records.end());
  return static_cast<double>(distinct.size()) / static_cast<double>(total);
}

double unique_fraction(const std::vector<std::uint64_t>& records) {
  if (records.empty()) return 0.0;
  std::unordered_set<std::uint64_t> distinct(records.begin(), records.end());
  return static_cast<double>(distinct.size()) /
         static_cast<double>(records.size());
}

StreamSummary execute_streaming(const NoisyCircuit& noisy,
                                const std::vector<TrajectorySpec>& specs,
                                const Options& options, const BatchSink& sink) {
  PTSBE_REQUIRE(static_cast<bool>(sink), "streaming execution needs a sink");
  // Resolve the backend by name once; the instance is immutable and its
  // run() is re-entrant, so every device shares it.
  const BackendPtr backend = make_backend(options.backend, options.config);
  PTSBE_REQUIRE(backend->supports(noisy),
                "backend '" + options.backend +
                    "' does not support this program (gate set, channel "
                    "class or qubit count)");

  const RngStream master(options.seed);

  if (options.schedule == Schedule::kSharedPrefix && backend->can_fork_states())
    return execute_streaming_shared(noisy, specs, options, sink, *backend,
                                    master);
  // Independent schedule — also the fallback for backends that cannot fork
  // states (their records are identical under either schedule by contract).
  // The plan is built once and shared by every run_with_plan call; backends
  // that don't prepare through plans (stabilizer — exactly the non-forkable
  // ones today) get an empty placeholder instead of a deep-copied plan
  // their default run_with_plan would discard.
  const ExecPlan plan =
      backend->can_fork_states() ? backend->make_plan(noisy) : ExecPlan{};

  const DevicePool pool(options.num_devices);
  std::vector<DeviceAccum> accums(pool.num_devices());
  std::mutex sink_mutex;
  // Once any sink call throws, pending trajectories are skipped before
  // their (expensive) preparation instead of simulated-and-dropped;
  // DevicePool rethrows the first exception after the devices drain.
  std::atomic<bool> sink_failed{false};

  pool.run_batch(specs.size(), [&](std::size_t device_id, std::size_t t) {
    if (sink_failed.load(std::memory_order_acquire)) return;
    TrajectoryBatch batch;
    batch.spec_index = t;
    batch.spec = specs[t];
    batch.device_id = device_id;
    // Reproducible per-trajectory stream, independent of scheduling.
    RngStream rng = master.substream(t);
    ShotResult shot =
        backend->run_with_plan(noisy, plan, specs[t], specs[t].shots, rng);
    batch.records = std::move(shot.records);
    batch.realized_probability = shot.realized_probability;
    // Accounting is per-device and lock-free; the mutex below serialises
    // only the sink call itself (the documented sink contract).
    DeviceAccum& accum = accums[device_id];
    accum.num_batches += 1;
    accum.total_shots += batch.records.size();
    accum.prepare_seconds += shot.prepare_seconds;
    accum.sample_seconds += shot.sample_seconds;

    std::lock_guard lock(sink_mutex);
    if (sink_failed.load(std::memory_order_relaxed)) return;
    try {
      sink(std::move(batch));
    } catch (...) {
      sink_failed.store(true, std::memory_order_release);
      throw;
    }
  });

  return merge(accums);
}

Result execute(const NoisyCircuit& noisy,
               const std::vector<TrajectorySpec>& specs,
               const Options& options) {
  // The non-streaming path is a materialising sink over the streaming one:
  // batches land at their spec index, restoring spec order.
  Result result;
  result.batches.resize(specs.size());
  const StreamSummary summary = execute_streaming(
      noisy, specs, options, [&result](TrajectoryBatch&& batch) {
        result.batches[batch.spec_index] = std::move(batch);
      });
  result.prepare_seconds = summary.prepare_seconds;
  result.sample_seconds = summary.sample_seconds;
  return result;
}

}  // namespace ptsbe::be
