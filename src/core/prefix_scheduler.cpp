#include "ptsbe/core/prefix_scheduler.hpp"

#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/timer.hpp"

namespace ptsbe::be {

namespace {

/// DFS context shared by every node of one scheduled group.
struct Walk {
  const ExecPlan& plan;
  const NoisyCircuit& noisy;
  const std::vector<TrajectorySpec>& specs;
  const std::vector<std::vector<std::size_t>>& assignments;
  const RngStream& master;
  const SpecResultFn& emit;
  const std::vector<unsigned> measured;
  /// Time spent in sampling calls / in the emit callback (which may run a
  /// slow sink). Both are subtracted from the DFS wall-clock so the
  /// reported preparation split covers only sweeps, branches and forks.
  double sample_seconds = 0.0;
  double emit_seconds = 0.0;
};

/// Deliver one result, keeping the callback's latency out of prep time.
void emit_timed(Walk& walk, std::size_t t, ShotResult&& result) {
  WallTimer timer;
  walk.emit(t, std::move(result));
  walk.emit_seconds += timer.seconds();
}

/// Report every spec of `group` as unrealizable (the shared prefix hit a
/// zero-probability Kraus branch — exactly what the independent path
/// reports for each of them).
void emit_unrealizable(Walk& walk, std::span<const std::size_t> group) {
  for (std::size_t t : group) {
    ShotResult result;
    result.realized_probability = 0.0;
    emit_timed(walk, t, std::move(result));
  }
}

/// All specs in `group` share one fully prepared state: sample each spec's
/// budget from its own substream. Duplicate assignments are legal input, so
/// every spec but the last samples from a fresh clone — sampling may touch
/// the representation (MPS canonicalisation), and each spec must see the
/// state exactly as its independent preparation left it.
void emit_leaves(Walk& walk, SimStatePtr state, double realized,
                 std::span<const std::size_t> group) {
  for (std::size_t i = 0; i < group.size(); ++i) {
    const std::size_t t = group[i];
    SimStatePtr fork;
    SimState* sampler = state.get();
    if (i + 1 < group.size()) {
      fork = state->clone();
      sampler = fork.get();
    }
    ShotResult result;
    result.realized_probability = realized;
    RngStream rng = walk.master.substream(t);
    WallTimer timer;
    result.records = reduce_to_records(
        sampler->sample_shots(walk.specs[t].shots, rng), walk.measured);
    result.sample_seconds = timer.seconds();
    walk.sample_seconds += result.sample_seconds;
    emit_timed(walk, t, std::move(result));
  }
}

/// Simulate from plan step `step_index` for the contiguous `group`, whose
/// members agree on every site step before `step_index`. Owns `state`.
/// Recursion depth equals the number of *fork* points on the path, not the
/// number of sites: unanimous decisions advance iteratively.
void dfs(Walk& walk, SimStatePtr state, double realized, std::size_t step_index,
         std::span<const std::size_t> group) {
  for (std::size_t s = step_index; s < walk.plan.steps.size(); ++s) {
    const PlanStep& step = walk.plan.steps[s];
    if (step.is_gate) {
      state->apply_gate(step.matrix, step.qubits);
      continue;
    }
    const NoiseSite& site = walk.noisy.sites()[step.site];
    // Partition the (sorted) group into runs of equal branch choice.
    std::size_t first = 0;
    std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
    while (first < group.size()) {
      const std::size_t branch = walk.assignments[group[first]][step.site];
      std::size_t last = first + 1;
      while (last < group.size() &&
             walk.assignments[group[last]][step.site] == branch)
        ++last;
      runs.emplace_back(first, last);
      first = last;
    }
    if (runs.size() == 1) {  // unanimous: no fork, continue in place
      if (!apply_branch(*state, site,
                        walk.assignments[group.front()][step.site], realized)) {
        emit_unrealizable(walk, group);
        return;
      }
      continue;
    }
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const auto [begin, end] = runs[r];
      const std::span<const std::size_t> sub = group.subspan(begin, end - begin);
      // The last run takes over the parent state; earlier runs fork it.
      SimStatePtr child =
          (r + 1 == runs.size()) ? std::move(state) : state->clone();
      double child_realized = realized;
      if (!apply_branch(*child, site, walk.assignments[sub.front()][step.site],
                        child_realized)) {
        emit_unrealizable(walk, sub);
        continue;
      }
      dfs(walk, std::move(child), child_realized, s + 1, sub);
    }
    return;
  }
  emit_leaves(walk, std::move(state), realized, group);
}

}  // namespace

double run_shared_prefix(const Backend& backend, const NoisyCircuit& noisy,
                         const ExecPlan& plan,
                         const std::vector<TrajectorySpec>& specs,
                         const std::vector<std::vector<std::size_t>>& assignments,
                         std::span<const std::size_t> order,
                         const RngStream& master, const SpecResultFn& emit) {
  if (order.empty()) return 0.0;
  Walk walk{plan,   noisy, specs, assignments,
            master, emit,  noisy.circuit().measured_qubits()};
  SimStatePtr root = backend.make_state(noisy.num_qubits());
  PTSBE_REQUIRE(root != nullptr,
                "backend '" + backend.name() +
                    "' cannot fork states; use the independent schedule");
  WallTimer timer;
  dfs(walk, std::move(root), 1.0, 0, order);
  // Preparation = the DFS wall-clock minus the timed sampling calls and
  // the emit callbacks (delivery/sink latency is not preparation).
  return timer.seconds() - walk.sample_seconds - walk.emit_seconds;
}

std::vector<std::vector<std::size_t>> all_assignments(
    const NoisyCircuit& noisy, const std::vector<TrajectorySpec>& specs) {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(specs.size());
  for (const TrajectorySpec& spec : specs)
    out.push_back(full_assignment(noisy, spec));
  return out;
}

}  // namespace ptsbe::be
