#include "ptsbe/core/prefix_scheduler.hpp"

#include <memory>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/timer.hpp"

namespace ptsbe::be {

namespace {

/// Context shared by every task of one scheduled walk, jointly owned by the
/// task closures (tasks outlive the spawning call). Immutable during the
/// walk except `prepare_seconds`, whose slots are single-writer (one per
/// executor worker).
struct Walk {
  TrajectoryExecutor& executor;
  const ExecPlan& plan;
  const NoisyCircuit& noisy;
  const std::vector<TrajectorySpec>& specs;
  const std::vector<std::vector<std::size_t>>& assignments;
  const RngStream& master;
  const SpecResultFn& emit;
  const std::vector<unsigned> measured;
  const std::span<double> prepare_seconds;
};

using WalkPtr = std::shared_ptr<const Walk>;

/// Report every spec of `group` as unrealizable (the shared prefix hit a
/// zero-probability Kraus branch — exactly what the independent path
/// reports for each of them).
void emit_unrealizable(const Walk& walk, std::size_t worker,
                       std::span<const std::size_t> group) {
  for (std::size_t t : group) {
    ShotResult result;
    result.realized_probability = 0.0;
    walk.emit(worker, t, std::move(result));
  }
}

/// All specs in `group` share one fully prepared state: sample each spec's
/// budget from its own substream. Duplicate assignments are legal input, so
/// every spec but the last samples from a fresh clone — sampling may touch
/// the representation (MPS canonicalisation), and each spec must see the
/// state exactly as its independent preparation left it. Returns the
/// sampling wall-clock (excluded from preparation time).
double emit_leaves(const Walk& walk, std::size_t worker, SimStatePtr state,
                   double realized, std::span<const std::size_t> group) {
  double sample_seconds = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const std::size_t t = group[i];
    SimStatePtr fork;
    SimState* sampler = state.get();
    if (i + 1 < group.size()) {
      fork = state->clone();
      sampler = fork.get();
    }
    ShotResult result;
    result.realized_probability = realized;
    RngStream rng = walk.master.substream(t);
    WallTimer timer;
    result.records = reduce_to_records(
        sampler->sample_shots(walk.specs[t].shots, rng), walk.measured);
    result.sample_seconds = timer.seconds();
    sample_seconds += result.sample_seconds;
    walk.emit(worker, t, std::move(result));
  }
  return sample_seconds;
}

void spawn_subtree(const WalkPtr& walk, std::size_t worker, SimStatePtr state,
                   double realized, std::size_t step,
                   std::span<const std::size_t> group);

/// Simulate from plan step `step` for the contiguous `group`, whose members
/// agree on every site step before `step`. Exclusively owns `state` — the
/// per-thread ownership that makes subtrees synchronisation-free. Runs
/// iteratively; forks spawn sibling tasks rather than recursing.
void run_subtree(const WalkPtr& walk, std::size_t worker, SimStatePtr state,
                 double realized, std::size_t step,
                 std::span<const std::size_t> group) {
  if (walk->executor.cancelled()) return;
  WallTimer timer;
  const bool batched = state->supports_prepared_runs();
  std::size_t s = step;
  while (s < walk->plan.steps.size()) {
    const PlanStep& plan_step = walk->plan.steps[s];
    if (plan_step.is_gate) {
      // Subtrees enter the plan at step 0 or just after a site step, which
      // is exactly where prepared runs begin — so whole barrier-free gate
      // stretches go through the batched kernel path.
      const std::size_t run =
          batched ? walk->plan.run_starting_at(s) : ExecPlan::npos;
      if (run != ExecPlan::npos) {
        state->apply_prepared_run(walk->plan.prepared_runs[run].gates);
        s += walk->plan.prepared_runs[run].gates.size();
      } else {
        state->apply_gate(plan_step.matrix, plan_step.qubits);
        ++s;
      }
      continue;
    }
    if (walk->executor.cancelled()) {
      walk->prepare_seconds[worker] += timer.seconds();
      return;
    }
    // Partition the (sorted) group into runs of equal branch choice.
    const std::size_t site_id = plan_step.site;
    std::size_t first = 0;
    std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
    while (first < group.size()) {
      const std::size_t branch = walk->assignments[group[first]][site_id];
      std::size_t last = first + 1;
      while (last < group.size() &&
             walk->assignments[group[last]][site_id] == branch)
        ++last;
      runs.emplace_back(first, last);
      first = last;
    }
    if (runs.size() > 1) {
      // Fork point = task-spawn point: snapshot the pre-branch state once
      // per earlier run and hand each subtree to the executor; this task
      // continues the last run in place (no snapshot). A spawned task
      // re-enters at this same step, where its narrowed group is unanimous.
      for (std::size_t r = 0; r + 1 < runs.size(); ++r) {
        const auto [begin, end] = runs[r];
        spawn_subtree(walk, worker, state->clone(), realized, s,
                      group.subspan(begin, end - begin));
      }
      const auto [begin, end] = runs.back();
      group = group.subspan(begin, end - begin);
      continue;  // same step, now unanimous
    }
    if (!apply_branch(*state, walk->noisy.sites()[site_id],
                      walk->assignments[group.front()][site_id], realized)) {
      walk->prepare_seconds[worker] += timer.seconds();
      emit_unrealizable(*walk, worker, group);
      return;
    }
    ++s;
  }
  const double sample_seconds =
      emit_leaves(*walk, worker, std::move(state), realized, group);
  walk->prepare_seconds[worker] += timer.seconds() - sample_seconds;
}

void spawn_subtree(const WalkPtr& walk, std::size_t worker, SimStatePtr state,
                   double realized, std::size_t step,
                   std::span<const std::size_t> group) {
  walk->executor.spawn_from(
      worker, [walk, state = std::move(state), realized, step,
               group](std::size_t self) mutable {
        run_subtree(walk, self, std::move(state), realized, step, group);
      });
}

}  // namespace

void spawn_shared_prefix(TrajectoryExecutor& executor, const Backend& backend,
                         const NoisyCircuit& noisy, const ExecPlan& plan,
                         const std::vector<TrajectorySpec>& specs,
                         const std::vector<std::vector<std::size_t>>& assignments,
                         std::span<const std::size_t> order,
                         const RngStream& master, const SpecResultFn& emit,
                         std::span<double> worker_prepare_seconds) {
  if (order.empty()) return;
  PTSBE_REQUIRE(worker_prepare_seconds.size() == executor.num_workers(),
                "spawn_shared_prefix needs one prepare-seconds slot per "
                "executor worker");
  SimStatePtr root = backend.make_state(noisy.num_qubits());
  PTSBE_REQUIRE(root != nullptr,
                "backend '" + backend.name() +
                    "' cannot fork states; use the independent schedule");
  const WalkPtr walk = std::make_shared<const Walk>(
      Walk{executor, plan, noisy, specs, assignments, master, emit,
           noisy.circuit().measured_qubits(), worker_prepare_seconds});
  executor.spawn([walk, root = std::move(root), order](std::size_t self) mutable {
    run_subtree(walk, self, std::move(root), 1.0, 0, order);
  });
}

std::vector<std::vector<std::size_t>> all_assignments(
    const NoisyCircuit& noisy, const std::vector<TrajectorySpec>& specs) {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(specs.size());
  for (const TrajectorySpec& spec : specs)
    out.push_back(full_assignment(noisy, spec));
  return out;
}

}  // namespace ptsbe::be
