#include "ptsbe/core/dataset.hpp"

#include <cstdint>
#include <fstream>

#include "ptsbe/common/error.hpp"

namespace ptsbe::dataset {

namespace {

constexpr char kMagic[4] = {'P', 'T', 'S', 'B'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  PTSBE_CHECK(static_cast<bool>(is), "truncated dataset file");
  return v;
}

}  // namespace

void write_csv(const std::string& path, const be::Result& result) {
  std::ofstream os(path);
  if (!os) throw runtime_failure("cannot open '" + path + "' for writing");
  os << "trajectory,shot,record,nominal_probability,errors\n";
  for (const be::TrajectoryBatch& batch : result.batches) {
    std::string errors;
    for (std::size_t i = 0; i < batch.spec.branches.size(); ++i) {
      if (i) errors += ';';
      errors += std::to_string(batch.spec.branches[i].site) + ':' +
                std::to_string(batch.spec.branches[i].branch);
    }
    for (std::size_t s = 0; s < batch.records.size(); ++s) {
      os << batch.spec_index << ',' << s << ',' << batch.records[s] << ','
         << batch.spec.nominal_probability << ',' << errors << '\n';
    }
  }
  if (!os) throw runtime_failure("error while writing '" + path + "'");
}

void write_binary(const std::string& path, const be::Result& result) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw runtime_failure("cannot open '" + path + "' for writing");
  os.write(kMagic, 4);
  put(os, kVersion);
  put(os, static_cast<std::uint64_t>(result.batches.size()));
  for (const be::TrajectoryBatch& batch : result.batches) {
    put(os, static_cast<std::uint64_t>(batch.spec_index));
    put(os, static_cast<std::uint64_t>(batch.device_id));
    put(os, batch.spec.nominal_probability);
    put(os, batch.realized_probability);
    put(os, static_cast<std::uint64_t>(batch.spec.shots));
    put(os, static_cast<std::uint64_t>(batch.spec.branches.size()));
    for (const BranchChoice& bc : batch.spec.branches) {
      put(os, static_cast<std::uint64_t>(bc.site));
      put(os, static_cast<std::uint64_t>(bc.branch));
    }
    put(os, static_cast<std::uint64_t>(batch.records.size()));
    os.write(reinterpret_cast<const char*>(batch.records.data()),
             static_cast<std::streamsize>(batch.records.size() *
                                          sizeof(std::uint64_t)));
  }
  if (!os) throw runtime_failure("error while writing '" + path + "'");
}

be::Result read_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw runtime_failure("cannot open '" + path + "' for reading");
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4))
    throw runtime_failure("'" + path + "' is not a PTSB dataset");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion)
    throw runtime_failure("unsupported dataset version " +
                          std::to_string(version));
  be::Result result;
  const auto num_batches = get<std::uint64_t>(is);
  result.batches.resize(num_batches);
  for (be::TrajectoryBatch& batch : result.batches) {
    batch.spec_index = get<std::uint64_t>(is);
    batch.device_id = get<std::uint64_t>(is);
    batch.spec.nominal_probability = get<double>(is);
    batch.realized_probability = get<double>(is);
    batch.spec.shots = get<std::uint64_t>(is);
    const auto num_branches = get<std::uint64_t>(is);
    batch.spec.branches.resize(num_branches);
    for (BranchChoice& bc : batch.spec.branches) {
      bc.site = get<std::uint64_t>(is);
      bc.branch = get<std::uint64_t>(is);
    }
    const auto num_records = get<std::uint64_t>(is);
    batch.records.resize(num_records);
    is.read(reinterpret_cast<char*>(batch.records.data()),
            static_cast<std::streamsize>(num_records * sizeof(std::uint64_t)));
    PTSBE_CHECK(static_cast<bool>(is), "truncated dataset file");
  }
  return result;
}

}  // namespace ptsbe::dataset
