#include "ptsbe/core/dataset.hpp"

#include <cstdint>
#include <exception>
#include <fstream>

#include "ptsbe/common/error.hpp"

namespace ptsbe::dataset {

namespace {

// Version 2 dropped the per-batch device id: which worker prepared a batch
// is a thread-scheduling artifact, and persisting it broke the contract
// that a batch's *bytes* depend only on (program, spec, seed). With it
// gone, spec-ordered exports (write_binary over a materialised Result) are
// byte-identical at every thread count; a streamed file can still order
// its blocks by completion, but the blocks themselves are bitwise stable.
constexpr const char (&kMagic)[4] = kFormatMagic;
constexpr std::uint32_t kVersion = kFormatVersion;

template <typename T>
void put(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  PTSBE_CHECK(static_cast<bool>(is), "truncated dataset file");
  return v;
}

/// One batch block — the single serialisation point shared by the bulk and
/// streaming writers.
void put_batch(std::ofstream& os, const be::TrajectoryBatch& batch) {
  put(os, static_cast<std::uint64_t>(batch.spec_index));
  put(os, batch.spec.nominal_probability);
  put(os, batch.realized_probability);
  put(os, static_cast<std::uint64_t>(batch.spec.shots));
  put(os, static_cast<std::uint64_t>(batch.spec.branches.size()));
  for (const BranchChoice& bc : batch.spec.branches) {
    put(os, static_cast<std::uint64_t>(bc.site));
    put(os, static_cast<std::uint64_t>(bc.branch));
  }
  put(os, static_cast<std::uint64_t>(batch.records.size()));
  os.write(reinterpret_cast<const char*>(batch.records.data()),
           static_cast<std::streamsize>(batch.records.size() *
                                        sizeof(std::uint64_t)));
}

/// Byte offset of the header's batch-count field (after magic + version).
constexpr std::streamoff kBatchCountOffset = 4 + sizeof(kVersion);

/// On-disk size of one batch block (mirrors put_batch exactly).
std::uint64_t batch_bytes(const be::TrajectoryBatch& batch) {
  return 6 * sizeof(std::uint64_t) +
         2 * sizeof(std::uint64_t) * batch.spec.branches.size() +
         sizeof(std::uint64_t) * batch.records.size();
}

}  // namespace

void write_csv(const std::string& path, const be::Result& result) {
  std::ofstream os(path);
  if (!os) throw runtime_failure("cannot open '" + path + "' for writing");
  os << "trajectory,shot,record,nominal_probability,errors\n";
  for (const be::TrajectoryBatch& batch : result.batches) {
    std::string errors;
    for (std::size_t i = 0; i < batch.spec.branches.size(); ++i) {
      if (i) errors += ';';
      errors += std::to_string(batch.spec.branches[i].site) + ':' +
                std::to_string(batch.spec.branches[i].branch);
    }
    for (std::size_t s = 0; s < batch.records.size(); ++s) {
      os << batch.spec_index << ',' << s << ',' << batch.records[s] << ','
         << batch.spec.nominal_probability << ',' << errors << '\n';
    }
  }
  if (!os) throw runtime_failure("error while writing '" + path + "'");
}

void write_binary(const std::string& path, const be::Result& result) {
  StreamWriter writer(path);
  for (const be::TrajectoryBatch& batch : result.batches) writer.append(batch);
  writer.close();
}

StreamWriter::StreamWriter(const std::string& path)
    : path_(path),
      os_(path, std::ios::binary),
      uncaught_at_open_(std::uncaught_exceptions()) {
  if (!os_) throw runtime_failure("cannot open '" + path + "' for writing");
  os_.write(kMagic, 4);
  put(os_, kVersion);
  put(os_, std::uint64_t{0});  // batch count, patched by flush()/close()
  bytes_ = kHeaderBytes;
  if (!os_) throw runtime_failure("error while writing '" + path_ + "'");
}

StreamWriter::~StreamWriter() {
  // Unwinding from an aborted run: leave the header count 0 so the partial
  // file reads as incomplete rather than as a smaller complete corpus.
  if (std::uncaught_exceptions() > uncaught_at_open_) return;
  try {
    close();
  } catch (...) {
    // Destructors must not throw; the file is left invalid, as documented.
  }
}

void StreamWriter::append(const be::TrajectoryBatch& batch) {
  PTSBE_REQUIRE(!closed_, "StreamWriter is closed");
  put_batch(os_, batch);
  if (!os_) throw runtime_failure("error while writing '" + path_ + "'");
  ++count_;
  records_ += batch.records.size();
  bytes_ += batch_bytes(batch);
}

void StreamWriter::flush() {
  PTSBE_REQUIRE(!closed_, "StreamWriter is closed");
  os_.seekp(kBatchCountOffset);
  put(os_, count_);
  os_.flush();
  if (!os_) throw runtime_failure("error while writing '" + path_ + "'");
  // Return the put position to the end so the next append() extends the
  // file instead of overwriting the batch after the header.
  os_.seekp(0, std::ios::end);
  if (!os_) throw runtime_failure("error while writing '" + path_ + "'");
}

void StreamWriter::close() {
  if (closed_) return;
  os_.seekp(kBatchCountOffset);
  put(os_, count_);
  os_.flush();
  closed_ = true;
  if (!os_) throw runtime_failure("error while writing '" + path_ + "'");
  os_.close();
}

be::Result read_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw runtime_failure("cannot open '" + path + "' for reading");
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4))
    throw runtime_failure("'" + path + "' is not a PTSB dataset");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion)
    throw runtime_failure(
        "unsupported dataset version " + std::to_string(version) +
        (version == 1 ? " (version 1 embedded scheduler-dependent device "
                        "ids; regenerate the dataset)"
                      : ""));
  be::Result result;
  const auto num_batches = get<std::uint64_t>(is);
  result.batches.resize(num_batches);
  for (be::TrajectoryBatch& batch : result.batches) {
    batch.spec_index = get<std::uint64_t>(is);
    batch.spec.nominal_probability = get<double>(is);
    batch.realized_probability = get<double>(is);
    batch.spec.shots = get<std::uint64_t>(is);
    const auto num_branches = get<std::uint64_t>(is);
    batch.spec.branches.resize(num_branches);
    for (BranchChoice& bc : batch.spec.branches) {
      bc.site = get<std::uint64_t>(is);
      bc.branch = get<std::uint64_t>(is);
    }
    const auto num_records = get<std::uint64_t>(is);
    batch.records.resize(num_records);
    is.read(reinterpret_cast<char*>(batch.records.data()),
            static_cast<std::streamsize>(num_records * sizeof(std::uint64_t)));
    PTSBE_CHECK(static_cast<bool>(is), "truncated dataset file");
  }
  return result;
}

}  // namespace ptsbe::dataset
