#include "ptsbe/statevector/statevector.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe {

namespace {
// Below this state size the OpenMP fork/join overhead dominates.
constexpr std::uint64_t kParallelThreshold = 1ULL << 14;
}  // namespace

StateVector::StateVector(unsigned num_qubits) : n_(num_qubits) {
  PTSBE_REQUIRE(num_qubits >= 1 && num_qubits <= 30,
                "statevector supports 1..30 qubits (memory gate)");
  amp_.assign(pow2(n_), cplx{0.0, 0.0});
  amp_[0] = cplx{1.0, 0.0};
}

void StateVector::reset() {
  std::fill(amp_.begin(), amp_.end(), cplx{0.0, 0.0});
  amp_[0] = cplx{1.0, 0.0};
}

void StateVector::set_amplitudes(std::vector<cplx> amplitudes) {
  PTSBE_REQUIRE(amplitudes.size() == amp_.size(),
                "amplitude vector size must be 2^n");
  // Copy (not move): amp_ lives in 64-byte-aligned storage for the SIMD
  // kernels, which an ordinary std::vector buffer cannot guarantee.
  amp_.assign(amplitudes.begin(), amplitudes.end());
}

void StateVector::apply_gate(const Matrix& matrix,
                             std::span<const unsigned> qubits) {
  PTSBE_REQUIRE(!qubits.empty() && qubits.size() <= n_,
                "gate arity out of range");
  const std::size_t dim = std::size_t{1} << qubits.size();
  PTSBE_REQUIRE(matrix.rows() == dim && matrix.cols() == dim,
                "gate matrix dimension mismatch");
  for (unsigned q : qubits) PTSBE_REQUIRE(q < n_, "gate qubit out of range");
  if (qubits.size() <= 2) {
    kernels::apply_gate(kernels::active(), amp_.data(), amp_.size(), matrix,
                        qubits);
  } else {
    apply_matrix_k(matrix, qubits);
  }
}

void StateVector::apply_prepared_gates(
    std::span<const kernels::PreparedGate> gates) {
  const kernels::KernelSet& ks = kernels::active();
  kernels::apply_prepared_span(ks, amp_.data(), amp_.size(), gates);
}

void StateVector::apply_circuit(const Circuit& circuit) {
  PTSBE_REQUIRE(circuit.num_qubits() <= n_,
                "circuit wider than the statevector");
  for (const Operation& op : circuit.ops()) {
    if (op.kind != OpKind::kGate) continue;
    apply_gate(op.matrix, op.qubits);
  }
}

void StateVector::apply_matrix_k(const Matrix& m,
                                 std::span<const unsigned> qubits) {
  const unsigned k = static_cast<unsigned>(qubits.size());
  const std::size_t dim = std::size_t{1} << k;
  std::vector<unsigned> sorted(qubits.begin(), qubits.end());
  std::sort(sorted.begin(), sorted.end());
  const std::int64_t groups = static_cast<std::int64_t>(amp_.size() >> k);
  cplx* const a = amp_.data();
  const auto process_group = [&](std::int64_t g, cplx* in, cplx* out,
                                 std::uint64_t* idx) {
    std::uint64_t base = static_cast<std::uint64_t>(g);
    for (unsigned b = 0; b < k; ++b) base = insert_zero_bit(base, sorted[b]);
    for (std::size_t local = 0; local < dim; ++local) {
      std::uint64_t full = base;
      for (unsigned b = 0; b < k; ++b)
        if ((local >> b) & 1u) full |= 1ULL << qubits[b];
      idx[local] = full;
      in[local] = a[full];
    }
    for (std::size_t r = 0; r < dim; ++r) {
      cplx acc{0.0, 0.0};
      for (std::size_t c = 0; c < dim; ++c) acc += m(r, c) * in[c];
      out[r] = acc;
    }
    for (std::size_t local = 0; local < dim; ++local) a[idx[local]] = out[local];
  };
  if (amp_.size() < kParallelThreshold) {
    // Serial path: reuse the per-instance scratch across calls instead of
    // allocating three vectors per gate.
    scratch_in_.resize(dim);
    scratch_out_.resize(dim);
    scratch_idx_.resize(dim);
    for (std::int64_t g = 0; g < groups; ++g)
      process_group(g, scratch_in_.data(), scratch_out_.data(),
                    scratch_idx_.data());
    return;
  }
#pragma omp parallel
  {
    // One allocation per thread per call, amortised over 2^n/2^k groups.
    std::vector<cplx> in(dim), out(dim);
    std::vector<std::uint64_t> idx(dim);
#pragma omp for schedule(static)
    for (std::int64_t g = 0; g < groups; ++g)
      process_group(g, in.data(), out.data(), idx.data());
  }
}

double StateVector::branch_probability(const Matrix& k,
                                       std::span<const unsigned> qubits) const {
  const unsigned arity = static_cast<unsigned>(qubits.size());
  const std::size_t dim = std::size_t{1} << arity;
  PTSBE_REQUIRE(k.rows() == dim && k.cols() == dim,
                "Kraus matrix dimension mismatch");
  std::vector<unsigned> sorted(qubits.begin(), qubits.end());
  std::sort(sorted.begin(), sorted.end());
  const std::int64_t groups = static_cast<std::int64_t>(amp_.size() >> arity);
  const cplx* const a = amp_.data();
  double total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total) \
    if (amp_.size() >= kParallelThreshold)
  for (std::int64_t g = 0; g < groups; ++g) {
    std::uint64_t base = static_cast<std::uint64_t>(g);
    for (unsigned b = 0; b < arity; ++b) base = insert_zero_bit(base, sorted[b]);
    cplx in[4];  // arity <= 2 for channels in this library
    for (std::size_t local = 0; local < dim; ++local) {
      std::uint64_t full = base;
      for (unsigned b = 0; b < arity; ++b)
        if ((local >> b) & 1u) full |= 1ULL << qubits[b];
      in[local] = a[full];
    }
    for (std::size_t r = 0; r < dim; ++r) {
      cplx acc{0.0, 0.0};
      for (std::size_t c = 0; c < dim; ++c) acc += k(r, c) * in[c];
      total += std::norm(acc);
    }
  }
  return total;
}

double StateVector::apply_kraus_branch(const Matrix& k,
                                       std::span<const unsigned> qubits) {
  apply_gate(k, qubits);
  const double p = norm2();
  PTSBE_REQUIRE(p > 1e-300, "Kraus branch has zero probability at this state");
  const double inv = 1.0 / std::sqrt(p);
  for (cplx& v : amp_) v *= inv;
  return p;
}

double StateVector::norm2() const noexcept {
  double s = 0.0;
  const std::int64_t n = static_cast<std::int64_t>(amp_.size());
  const cplx* const a = amp_.data();
#pragma omp parallel for schedule(static) reduction(+ : s) \
    if (amp_.size() >= kParallelThreshold)
  for (std::int64_t i = 0; i < n; ++i) s += std::norm(a[i]);
  return s;
}

void StateVector::normalize() {
  const double s = norm2();
  PTSBE_REQUIRE(s > 1e-300, "cannot normalise a zero state");
  const double inv = 1.0 / std::sqrt(s);
  for (cplx& v : amp_) v *= inv;
}

double StateVector::probability_one(unsigned q) const {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  double s = 0.0;
  const std::int64_t n = static_cast<std::int64_t>(amp_.size());
  const cplx* const a = amp_.data();
#pragma omp parallel for schedule(static) reduction(+ : s) \
    if (amp_.size() >= kParallelThreshold)
  for (std::int64_t i = 0; i < n; ++i)
    if ((static_cast<std::uint64_t>(i) >> q) & 1ULL) s += std::norm(a[i]);
  return s;
}

double StateVector::expectation_pauli(const std::string& pauli,
                                      std::span<const unsigned> qubits) const {
  PTSBE_REQUIRE(pauli.size() == qubits.size(),
                "pauli string length must match qubit count");
  StateVector phi = *this;
  for (std::size_t i = 0; i < pauli.size(); ++i) {
    const unsigned q = qubits[i];
    switch (pauli[i]) {
      case 'I': break;
      case 'X': phi.apply_gate(gates::X(), std::array{q}); break;
      case 'Y': phi.apply_gate(gates::Y(), std::array{q}); break;
      case 'Z': phi.apply_gate(gates::Z(), std::array{q}); break;
      default: PTSBE_REQUIRE(false, "pauli character must be one of IXYZ");
    }
  }
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < amp_.size(); ++i)
    acc += std::conj(amp_[i]) * phi.amp_[i];
  return acc.real();
}

double StateVector::fidelity(const StateVector& other) const {
  PTSBE_REQUIRE(other.amp_.size() == amp_.size(), "state dimension mismatch");
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < amp_.size(); ++i)
    acc += std::conj(amp_[i]) * other.amp_[i];
  return std::norm(acc);
}

std::uint64_t StateVector::sample_one(RngStream& rng) const {
  const double r = rng.uniform();
  double acc = 0.0;
  for (std::uint64_t i = 0; i + 1 < amp_.size(); ++i) {
    acc += std::norm(amp_[i]);
    if (r < acc) return i;
  }
  return amp_.size() - 1;
}

std::vector<std::uint64_t> StateVector::sample_shots(std::size_t count,
                                                     RngStream& rng) const {
  std::vector<std::uint64_t> shots(count);
  if (count == 0) return shots;
  // Sorted uniforms + one cumulative pass over the probability mass. Shots
  // come out sorted by basis index, which downstream dataset code is free to
  // shuffle; sortedness does not bias the marginal distribution because the
  // draws are exchangeable.
  const std::vector<double> u = rng.sorted_uniforms(count);
  std::size_t ptr = 0;
  double acc = 0.0;
  for (std::uint64_t i = 0; i < amp_.size() && ptr < count; ++i) {
    acc += std::norm(amp_[i]);
    while (ptr < count && u[ptr] < acc) shots[ptr++] = i;
  }
  // Numerical tail: any remaining draws land on the last nonzero bin.
  for (; ptr < count; ++ptr) shots[ptr] = amp_.size() - 1;
  return shots;
}

std::uint64_t extract_bits(std::uint64_t index, std::span<const unsigned> qubits) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < qubits.size(); ++i)
    out |= static_cast<std::uint64_t>((index >> qubits[i]) & 1ULL) << i;
  return out;
}

}  // namespace ptsbe
