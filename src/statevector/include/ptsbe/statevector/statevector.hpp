#pragma once

/// \file statevector.hpp
/// \brief Dense statevector simulator backend.
///
/// CPU stand-in for the paper's CUDA-Q `nvidia` (cuStateVec) backend. The
/// state is a 2^n complex-double array; gate kernels stride over amplitude
/// groups exactly like the GPU implementation slices them, and are
/// OpenMP-parallel for large states (the analogue of intra-trajectory
/// multi-GPU distribution).
///
/// The backend exposes the two cost regimes PTSBE exploits:
///  - `apply_gate` / `apply_kraus_branch`: O(2^n) state preparation work;
///  - `sample_shots`: O(2^n + m log m)-ish *bulk* measurement sampling —
///    polynomial in the shot count m and a single pass over the state, which
///    is why batching m shots per prepared trajectory is the paper's win.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/common/aligned.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/kernels/kernel_set.hpp"
#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe {

/// Dense 2^n statevector with gate/Kraus application and bulk sampling.
///
/// Copy construction is a deep snapshot of the amplitude array — the fork
/// primitive the shared-prefix trajectory scheduler relies on (one copy
/// costs about one gate sweep).
class StateVector {
 public:
  /// |0…0⟩ on `num_qubits` qubits. Precondition: 1 <= num_qubits <= 30
  /// (memory gate: 2^30 amplitudes = 16 GiB).
  explicit StateVector(unsigned num_qubits);

  /// Reset to |0…0⟩.
  void reset();

  [[nodiscard]] unsigned num_qubits() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t dim() const noexcept { return amp_.size(); }

  /// Amplitude of basis state `index`.
  [[nodiscard]] cplx amplitude(std::uint64_t index) const {
    return amp_.at(index);
  }

  /// Read-only view of all amplitudes.
  [[nodiscard]] std::span<const cplx> amplitudes() const noexcept { return amp_; }

  /// Overwrite the state with the given amplitude vector (size must be 2^n).
  void set_amplitudes(std::vector<cplx> amplitudes);

  /// Apply a unitary `matrix` on `qubits` (first listed = LSB of the matrix).
  /// 1-/2-qubit gates go through the active SIMD kernel set
  /// (`ptsbe::kernels::active()`); wider gates take the general k-qubit path.
  void apply_gate(const Matrix& matrix, std::span<const unsigned> qubits);

  /// Batched kernel entry point: apply a pre-classified gate run (built once
  /// per ExecPlan) in one pass, hoisting the kernel-set lookup out of the
  /// per-gate loop.
  void apply_prepared_gates(std::span<const kernels::PreparedGate> gates);

  /// Run every gate op of `circuit` in order (measure ops are skipped).
  void apply_circuit(const Circuit& circuit);

  /// ⟨ψ|K†K|ψ⟩ for operator K on `qubits` — the realised branch probability
  /// of a general (non-unitary-mixture) Kraus operator at the current state
  /// (Algorithm 1, line 9). Does not modify the state.
  [[nodiscard]] double branch_probability(const Matrix& k,
                                          std::span<const unsigned> qubits) const;

  /// Apply Kraus operator K on `qubits` and renormalise: |ψ⟩ ← K|ψ⟩/‖K|ψ⟩‖.
  /// Returns the pre-normalisation probability ‖K|ψ⟩‖². A (near-)zero
  /// probability is a precondition violation (the caller sampled an
  /// impossible branch).
  double apply_kraus_branch(const Matrix& k, std::span<const unsigned> qubits);

  /// Squared norm of the state (should be 1 after normalised operations).
  [[nodiscard]] double norm2() const noexcept;

  /// Rescale to unit norm.
  void normalize();

  /// Probability that qubit `q` measures 1.
  [[nodiscard]] double probability_one(unsigned q) const;

  /// Expectation ⟨ψ|P|ψ⟩ of a Pauli string; `pauli[i]` in {I,X,Y,Z} acts on
  /// `qubits[i]`. Returns the real part (P Hermitian).
  [[nodiscard]] double expectation_pauli(const std::string& pauli,
                                         std::span<const unsigned> qubits) const;

  /// |⟨φ|ψ⟩|² against another state of equal dimension.
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// Draw one computational-basis shot (full n-bit index) by inverse CDF.
  [[nodiscard]] std::uint64_t sample_one(RngStream& rng) const;

  /// Bulk sampler: draw `count` shots in a *single pass* over the state
  /// using pre-sorted uniforms — the Batched Execution primitive. Cost
  /// O(2^n + count), versus O(count · 2^n) for repeated `sample_one`-style
  /// re-preparation in conventional trajectory pipelines.
  [[nodiscard]] std::vector<std::uint64_t> sample_shots(std::size_t count,
                                                        RngStream& rng) const;

 private:
  void apply_matrix_k(const Matrix& m, std::span<const unsigned> qubits);

  unsigned n_;
  AlignedVector<cplx> amp_;
  // Reused k-qubit gather/scatter scratch for the serial apply_matrix_k
  // path (the parallel path keeps per-thread buffers inside the region).
  std::vector<cplx> scratch_in_, scratch_out_;
  std::vector<std::uint64_t> scratch_idx_;
};

/// Pack the bits of `index` selected by `qubits` (qubits[0] → output bit 0).
[[nodiscard]] std::uint64_t extract_bits(std::uint64_t index,
                                         std::span<const unsigned> qubits);

}  // namespace ptsbe
