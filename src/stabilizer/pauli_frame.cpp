#include "ptsbe/stabilizer/pauli_frame.hpp"

#include <cmath>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe {

bool pauli_toggles(const Matrix& u, unsigned arity,
                   std::vector<std::pair<bool, bool>>& out) {
  const auto matches = [&](const Matrix& p) {
    // u ∝ p with unit-modulus factor: compare u against phase*p where the
    // phase is fixed by the first nonzero element of p.
    for (std::size_t r = 0; r < p.rows(); ++r)
      for (std::size_t c = 0; c < p.cols(); ++c) {
        if (std::abs(p(r, c)) < 1e-12) continue;
        const cplx phase = u(r, c) / p(r, c);
        if (std::abs(std::abs(phase) - 1.0) > 1e-9) return false;
        Matrix scaled = p;
        scaled *= phase;
        return approx_equal(u, scaled, 1e-9);
      }
    return false;
  };
  const auto xz_of = [](unsigned pauli_idx) -> std::pair<bool, bool> {
    switch (pauli_idx) {
      case 0: return {false, false};  // I
      case 1: return {true, false};   // X
      case 2: return {true, true};    // Y
      default: return {false, true};  // Z
    }
  };
  if (arity == 1) {
    for (unsigned i = 0; i < 4; ++i)
      if (matches(gates::pauli(i))) {
        out = {xz_of(i)};
        return true;
      }
    return false;
  }
  if (arity == 2) {
    for (unsigned hi = 0; hi < 4; ++hi)
      for (unsigned lo = 0; lo < 4; ++lo)
        if (matches(kron(gates::pauli(hi), gates::pauli(lo)))) {
          out = {xz_of(lo), xz_of(hi)};
          return true;
        }
    return false;
  }
  return false;
}

bool PauliFrameSampler::is_supported(const NoisyCircuit& noisy) {
  for (const Operation& op : noisy.circuit().ops()) {
    if (op.kind == OpKind::kMeasure) continue;
    if (!CliffordTableau::is_clifford_name(op.name)) return false;
  }
  for (const NoiseSite& site : noisy.sites()) {
    if (!site.channel->is_unitary_mixture()) return false;
    std::vector<std::pair<bool, bool>> toggles;
    for (std::size_t b = 0; b < site.channel->num_branches(); ++b)
      if (!pauli_toggles(site.channel->unitary(b), site.channel->arity(),
                         toggles))
        return false;
  }
  return true;
}

PauliFrameSampler::PauliFrameSampler(const NoisyCircuit& noisy,
                                     RngStream reference_rng)
    : n_(noisy.num_qubits()) {
  PTSBE_REQUIRE(is_supported(noisy),
                "program is outside the Clifford + Pauli-noise fragment");

  // Pre-resolve every site into cumulative probabilities + toggle tables.
  site_tables_.resize(noisy.num_sites());
  for (const NoiseSite& site : noisy.sites()) {
    SiteTable& t = site_tables_[site.index];
    t.qubits = site.qubits;
    const auto& probs = site.channel->nominal_probabilities();
    double acc = 0.0;
    for (std::size_t b = 0; b < probs.size(); ++b) {
      acc += probs[b];
      t.cumulative.push_back(acc);
      std::vector<std::pair<bool, bool>> toggles;
      PTSBE_CHECK(pauli_toggles(site.channel->unitary(b), site.channel->arity(),
                                toggles),
                  "non-Pauli branch slipped through is_supported");
      t.toggles.push_back(std::move(toggles));
    }
    const int id = site.channel->identity_branch();
    t.identity_branch = id >= 0 ? static_cast<std::size_t>(id) : SIZE_MAX;
    t.identity_probability =
        id >= 0 ? probs[static_cast<std::size_t>(id)] : 0.0;
  }

  // Reference tableau run + program compilation.
  CliffordTableau ref(n_);
  const auto emit_noise = [&](const std::vector<std::size_t>& ids) {
    for (std::size_t id : ids) {
      Step st;
      st.kind = Step::Kind::kNoise;
      st.site = id;
      program_.push_back(st);
    }
  };
  emit_noise(noisy.sites_after(NoiseSite::kBeforeCircuit));
  const auto& ops = noisy.circuit().ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (op.kind == OpKind::kMeasure) {
      // Readout-noise sites attached to this measurement fire first.
      emit_noise(noisy.sites_after(i));
      const unsigned q = op.qubits.front();
      Step st;
      st.kind = Step::Kind::kMeasure;
      st.a = q;
      st.record_pos = static_cast<unsigned>(measured_.size());
      program_.push_back(st);
      measured_.push_back(q);
      reference_.push_back(
          static_cast<std::uint8_t>(ref.measure(q, reference_rng)));
      continue;
    }
    Step st;
    st.kind = Step::Kind::kGate;
    st.a = op.qubits[0];
    st.b = op.qubits.size() > 1 ? op.qubits[1] : op.qubits[0];
    if (op.name == "h" || op.name == "sy" || op.name == "sydg")
      st.xform = Step::Xform::kSwapXZ;
    else if (op.name == "s" || op.name == "sdg")
      st.xform = Step::Xform::kZxorX;
    else if (op.name == "sx" || op.name == "sxdg")
      st.xform = Step::Xform::kXxorZ;
    else if (op.name == "cx")
      st.xform = Step::Xform::kCx;
    else if (op.name == "cz")
      st.xform = Step::Xform::kCz;
    else if (op.name == "swap")
      st.xform = Step::Xform::kSwap;
    else
      st.xform = Step::Xform::kNone;  // Paulis and identity
    ref.apply_named(op.name, op.qubits);
    program_.push_back(st);
    emit_noise(noisy.sites_after(i));
  }

  if (measured_.empty()) {
    // Convention: no explicit measure ops → measure every qubit in order.
    for (unsigned q = 0; q < n_; ++q) {
      Step st;
      st.kind = Step::Kind::kMeasure;
      st.a = q;
      st.record_pos = q;
      program_.push_back(st);
      measured_.push_back(q);
      reference_.push_back(
          static_cast<std::uint8_t>(ref.measure(q, reference_rng)));
    }
  }
  PTSBE_REQUIRE(measured_.size() <= 64,
                "frame sampler packs records into 64-bit words");
}

std::vector<std::uint64_t> PauliFrameSampler::sample(std::size_t shots,
                                                     RngStream& rng) const {
  std::vector<std::uint64_t> records(shots, 0);
  if (shots == 0) return records;
  const std::size_t words = (shots + 63) / 64;
  // Frames: per qubit, bit-packed across shots. The Z part starts uniformly
  // random: Z stabilises |0…0⟩, so a random initial Z frame is a gauge
  // choice — and it is what randomises non-deterministic measurement
  // outcomes across shots (the same trick Stim's frame sampler uses).
  std::vector<std::uint64_t> fx(static_cast<std::size_t>(n_) * words, 0);
  std::vector<std::uint64_t> fz(static_cast<std::size_t>(n_) * words);
  for (auto& w : fz) w = rng.bits64();
  const auto xw = [&](unsigned q) { return fx.data() + std::size_t{q} * words; };
  const auto zw = [&](unsigned q) { return fz.data() + std::size_t{q} * words; };

  for (const Step& st : program_) {
    switch (st.kind) {
      case Step::Kind::kGate: {
        std::uint64_t* xa = xw(st.a);
        std::uint64_t* za = zw(st.a);
        switch (st.xform) {
          case Step::Xform::kNone: break;
          case Step::Xform::kSwapXZ:
            for (std::size_t w = 0; w < words; ++w) std::swap(xa[w], za[w]);
            break;
          case Step::Xform::kZxorX:
            for (std::size_t w = 0; w < words; ++w) za[w] ^= xa[w];
            break;
          case Step::Xform::kXxorZ:
            for (std::size_t w = 0; w < words; ++w) xa[w] ^= za[w];
            break;
          case Step::Xform::kCx: {
            std::uint64_t* xb = xw(st.b);
            std::uint64_t* zb = zw(st.b);
            for (std::size_t w = 0; w < words; ++w) {
              xb[w] ^= xa[w];
              za[w] ^= zb[w];
            }
            break;
          }
          case Step::Xform::kCz: {
            std::uint64_t* xb = xw(st.b);
            std::uint64_t* zb = zw(st.b);
            for (std::size_t w = 0; w < words; ++w) {
              za[w] ^= xb[w];
              zb[w] ^= xa[w];
            }
            break;
          }
          case Step::Xform::kSwap: {
            std::uint64_t* xb = xw(st.b);
            std::uint64_t* zb = zw(st.b);
            for (std::size_t w = 0; w < words; ++w) {
              std::swap(xa[w], xb[w]);
              std::swap(za[w], zb[w]);
            }
            break;
          }
        }
        break;
      }
      case Step::Kind::kNoise: {
        const SiteTable& t = site_tables_[st.site];
        for (std::size_t s = 0; s < shots; ++s) {
          const double r = rng.uniform();
          // Linear walk of the cumulative table (branch counts are small).
          std::size_t branch = t.cumulative.size() - 1;
          for (std::size_t b = 0; b < t.cumulative.size(); ++b)
            if (r < t.cumulative[b]) {
              branch = b;
              break;
            }
          if (branch == t.identity_branch) continue;
          const std::uint64_t bit = 1ULL << (s & 63);
          const std::size_t w = s >> 6;
          for (std::size_t k = 0; k < t.qubits.size(); ++k) {
            const auto [tx, tz] = t.toggles[branch][k];
            if (tx) xw(t.qubits[k])[w] ^= bit;
            if (tz) zw(t.qubits[k])[w] ^= bit;
          }
        }
        break;
      }
      case Step::Kind::kMeasure: {
        const std::uint64_t* xa = xw(st.a);
        const std::uint8_t ref = reference_[st.record_pos];
        for (std::size_t s = 0; s < shots; ++s) {
          const unsigned flip =
              static_cast<unsigned>((xa[s >> 6] >> (s & 63)) & 1ULL);
          const unsigned outcome = static_cast<unsigned>(ref) ^ flip;
          records[s] |= static_cast<std::uint64_t>(outcome) << st.record_pos;
        }
        break;
      }
    }
  }
  return records;
}

}  // namespace ptsbe
