#pragma once

/// \file pauli_frame.hpp
/// \brief Pauli-frame bulk sampler for Clifford circuits with Pauli noise.
///
/// This is the reference-frame technique the paper credits for Stim's MHz
/// bulk sampling (§2.3): simulate the noiseless Clifford circuit *once* with
/// the tableau to obtain a reference measurement record, then propagate only
/// the Pauli *difference frame* for each noisy shot. Frames are bit-packed
/// 64 shots per machine word, so gate propagation is word-parallel XOR.
///
/// Restrictions (exactly the ones the paper cites as Stim's limitation):
/// every gate must be Clifford and every noise channel a Pauli unitary
/// mixture. The MSD workload violates them (magic-state inputs), which is
/// why PTSBE exists; this sampler is the baseline that defines the frontier.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/noise/noise_model.hpp"
#include "ptsbe/stabilizer/tableau.hpp"

namespace ptsbe {

/// If `u` equals a Pauli tensor up to global phase, return true and fill
/// per-qubit (x, z) toggles (qubit 0 = LSB of the matrix). Shared by the
/// frame sampler's branch tables and the tableau backend adapter.
[[nodiscard]] bool pauli_toggles(const Matrix& u, unsigned arity,
                                 std::vector<std::pair<bool, bool>>& out);

/// Bulk sampler over Pauli frames.
class PauliFrameSampler {
 public:
  /// Prepare the sampler: runs the tableau reference simulation and
  /// pre-resolves each noise-site branch into per-qubit (x, z) toggles.
  ///
  /// \throws precondition_error if the program is outside the
  ///         Clifford+Pauli-noise fragment (check with is_supported first).
  PauliFrameSampler(const NoisyCircuit& noisy, RngStream reference_rng);

  /// True if every gate is Clifford and every channel a Pauli mixture.
  [[nodiscard]] static bool is_supported(const NoisyCircuit& noisy);

  /// Number of measured bits per shot record (measured qubits in program
  /// order; all qubits if the circuit has no measure ops).
  [[nodiscard]] unsigned record_bits() const noexcept {
    return static_cast<unsigned>(measured_.size());
  }

  /// Draw `shots` noisy measurement records. Bit i of a record is the i-th
  /// measured qubit's outcome. Word-parallel across shots.
  [[nodiscard]] std::vector<std::uint64_t> sample(std::size_t shots,
                                                  RngStream& rng) const;

 private:
  // One executable step of the pre-compiled program.
  struct Step {
    enum class Kind : std::uint8_t { kGate, kNoise, kMeasure } kind;
    // kGate: frame transform id + qubits. kNoise: site id. kMeasure:
    // qubit + record position.
    unsigned a = 0, b = 0;
    std::size_t site = 0;
    unsigned record_pos = 0;
    enum class Xform : std::uint8_t {
      kNone, kSwapXZ, kZxorX, kXxorZ, kCx, kCz, kSwap
    } xform = Xform::kNone;
  };

  // Per-site pre-resolved branch table: cumulative probabilities and the
  // (x,z) toggle masks per involved qubit for each branch.
  struct SiteTable {
    std::vector<double> cumulative;
    std::vector<unsigned> qubits;
    // toggles[branch][k] = {x_toggle, z_toggle} for qubits[k].
    std::vector<std::vector<std::pair<bool, bool>>> toggles;
    std::size_t identity_branch;  // fast skip
    double identity_probability;
  };

  unsigned n_ = 0;
  std::vector<Step> program_;
  std::vector<SiteTable> site_tables_;
  std::vector<unsigned> measured_;       // measured qubits in record order
  std::vector<std::uint8_t> reference_;  // reference outcome per record bit
};

}  // namespace ptsbe
