#pragma once

/// \file tableau.hpp
/// \brief CHP-style stabilizer tableau simulator.
///
/// The Clifford-only baseline the paper positions PTSBE against (§2.3): for
/// circuits restricted to Clifford gates and Pauli noise, stabilizer methods
/// (Stim et al.) bulk-sample at MHz rates but cannot represent the
/// non-Clifford magic states the MSD workload consumes. We implement the
/// Aaronson–Gottesman tableau with bit-packed rows, plus the Pauli-frame
/// bulk sampler in pauli_frame.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "ptsbe/common/rng.hpp"

namespace ptsbe {

/// Aaronson–Gottesman stabilizer tableau over n qubits.
///
/// Rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers; each row is a
/// Pauli with bit-packed X/Z parts and a sign bit. Supports the standard
/// Clifford generators plus composite gates used by the QEC circuits.
class CliffordTableau {
 public:
  /// Identity tableau on `num_qubits` qubits (state |0…0⟩).
  explicit CliffordTableau(unsigned num_qubits);

  [[nodiscard]] unsigned num_qubits() const noexcept { return n_; }

  // --- Clifford generators ---------------------------------------------
  void h(unsigned q);
  void s(unsigned q);
  void sdg(unsigned q);
  void x(unsigned q);
  void y(unsigned q);
  void z(unsigned q);
  void sx(unsigned q);    ///< √X = H·S·H
  void sxdg(unsigned q);
  void sy(unsigned q);    ///< √Y = S·√X·S†
  void sydg(unsigned q);
  void cx(unsigned control, unsigned target);
  void cz(unsigned a, unsigned b);
  void swap_qubits(unsigned a, unsigned b);

  /// Apply a named Clifford gate ("h", "s", "cx"…). Throws
  /// precondition_error for non-Clifford names — callers route universal
  /// circuits to the statevector/MPS backends instead.
  void apply_named(const std::string& name, const std::vector<unsigned>& qubits);

  /// True if `name` is a gate this tableau can apply.
  [[nodiscard]] static bool is_clifford_name(const std::string& name);

  /// Measure qubit `q` in the Z basis. Returns the outcome; random outcomes
  /// consume one draw from `rng`. `deterministic` (optional) reports whether
  /// the outcome was forced by the stabilizer group.
  unsigned measure(unsigned q, RngStream& rng, bool* deterministic = nullptr);

  /// Whether a Z measurement of `q` would be deterministic right now.
  [[nodiscard]] bool measurement_is_deterministic(unsigned q) const;

  /// Sign and Pauli string of stabilizer row `i` (0..n-1), e.g. "+XZI".
  [[nodiscard]] std::string stabilizer_row(unsigned i) const;

 private:
  [[nodiscard]] bool get_x(unsigned row, unsigned q) const {
    return (xs_[row][q >> 6] >> (q & 63)) & 1ULL;
  }
  [[nodiscard]] bool get_z(unsigned row, unsigned q) const {
    return (zs_[row][q >> 6] >> (q & 63)) & 1ULL;
  }
  void toggle_x(unsigned row, unsigned q) { xs_[row][q >> 6] ^= 1ULL << (q & 63); }
  void toggle_z(unsigned row, unsigned q) { zs_[row][q >> 6] ^= 1ULL << (q & 63); }

  /// row_h ← row_h · row_i with correct phase bookkeeping (CHP "rowsum").
  void rowsum(unsigned h_row, unsigned i_row);

  unsigned n_;
  unsigned words_;
  std::vector<std::vector<std::uint64_t>> xs_, zs_;  // [2n+1 rows][words]
  std::vector<std::uint8_t> r_;                      // sign bits
};

}  // namespace ptsbe
