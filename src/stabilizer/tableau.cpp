#include "ptsbe/stabilizer/tableau.hpp"

#include "ptsbe/common/error.hpp"

namespace ptsbe {

CliffordTableau::CliffordTableau(unsigned num_qubits)
    : n_(num_qubits), words_((num_qubits + 63) / 64) {
  PTSBE_REQUIRE(num_qubits >= 1, "tableau needs at least one qubit");
  const unsigned rows = 2 * n_ + 1;  // +1 scratch row for deterministic measure
  xs_.assign(rows, std::vector<std::uint64_t>(words_, 0));
  zs_.assign(rows, std::vector<std::uint64_t>(words_, 0));
  r_.assign(rows, 0);
  for (unsigned i = 0; i < n_; ++i) {
    toggle_x(i, i);        // destabilizer i = X_i
    toggle_z(i + n_, i);   // stabilizer i   = Z_i
  }
}

void CliffordTableau::h(unsigned q) {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  for (unsigned i = 0; i < 2 * n_; ++i) {
    const bool x = get_x(i, q), z = get_z(i, q);
    r_[i] ^= static_cast<std::uint8_t>(x && z);
    if (x != z) {
      toggle_x(i, q);
      toggle_z(i, q);
    }
  }
}

void CliffordTableau::s(unsigned q) {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  for (unsigned i = 0; i < 2 * n_; ++i) {
    const bool x = get_x(i, q), z = get_z(i, q);
    r_[i] ^= static_cast<std::uint8_t>(x && z);
    if (x) toggle_z(i, q);
  }
}

void CliffordTableau::sdg(unsigned q) { s(q); s(q); s(q); }

void CliffordTableau::x(unsigned q) {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  for (unsigned i = 0; i < 2 * n_; ++i)
    r_[i] ^= static_cast<std::uint8_t>(get_z(i, q));
}

void CliffordTableau::z(unsigned q) {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  for (unsigned i = 0; i < 2 * n_; ++i)
    r_[i] ^= static_cast<std::uint8_t>(get_x(i, q));
}

void CliffordTableau::y(unsigned q) {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  for (unsigned i = 0; i < 2 * n_; ++i)
    r_[i] ^= static_cast<std::uint8_t>(get_x(i, q) != get_z(i, q));
}

void CliffordTableau::sx(unsigned q) { h(q); s(q); h(q); }
void CliffordTableau::sxdg(unsigned q) { h(q); sdg(q); h(q); }
void CliffordTableau::sy(unsigned q) { sdg(q); sx(q); s(q); }
void CliffordTableau::sydg(unsigned q) { sdg(q); sxdg(q); s(q); }

void CliffordTableau::cx(unsigned control, unsigned target) {
  PTSBE_REQUIRE(control < n_ && target < n_ && control != target,
                "invalid cx targets");
  for (unsigned i = 0; i < 2 * n_; ++i) {
    const bool xc = get_x(i, control), zc = get_z(i, control);
    const bool xt = get_x(i, target), zt = get_z(i, target);
    r_[i] ^= static_cast<std::uint8_t>(xc && zt && (xt == zc));
    if (xc) toggle_x(i, target);
    if (zt) toggle_z(i, control);
  }
}

void CliffordTableau::cz(unsigned a, unsigned b) {
  h(b);
  cx(a, b);
  h(b);
}

void CliffordTableau::swap_qubits(unsigned a, unsigned b) {
  cx(a, b);
  cx(b, a);
  cx(a, b);
}

bool CliffordTableau::is_clifford_name(const std::string& name) {
  return name == "h" || name == "s" || name == "sdg" || name == "x" ||
         name == "y" || name == "z" || name == "sx" || name == "sxdg" ||
         name == "sy" || name == "sydg" || name == "cx" || name == "cz" ||
         name == "swap" || name == "i";
}

void CliffordTableau::apply_named(const std::string& name,
                                  const std::vector<unsigned>& qubits) {
  if (name == "h") h(qubits.at(0));
  else if (name == "s") s(qubits.at(0));
  else if (name == "sdg") sdg(qubits.at(0));
  else if (name == "x") x(qubits.at(0));
  else if (name == "y") y(qubits.at(0));
  else if (name == "z") z(qubits.at(0));
  else if (name == "sx") sx(qubits.at(0));
  else if (name == "sxdg") sxdg(qubits.at(0));
  else if (name == "sy") sy(qubits.at(0));
  else if (name == "sydg") sydg(qubits.at(0));
  else if (name == "cx") cx(qubits.at(0), qubits.at(1));
  else if (name == "cz") cz(qubits.at(0), qubits.at(1));
  else if (name == "swap") swap_qubits(qubits.at(0), qubits.at(1));
  else if (name == "i") { /* no-op */ }
  else
    PTSBE_REQUIRE(false, "gate '" + name + "' is not Clifford");
}

void CliffordTableau::rowsum(unsigned h_row, unsigned i_row) {
  // Phase exponent of i when multiplying Pauli terms (CHP's g function),
  // accumulated mod 4.
  int g_sum = 0;
  for (unsigned q = 0; q < n_; ++q) {
    const int x1 = get_x(i_row, q), z1 = get_z(i_row, q);
    const int x2 = get_x(h_row, q), z2 = get_z(h_row, q);
    int g = 0;
    if (x1 == 0 && z1 == 0) g = 0;
    else if (x1 == 1 && z1 == 1) g = z2 - x2;
    else if (x1 == 1 && z1 == 0) g = z2 * (2 * x2 - 1);
    else g = x2 * (1 - 2 * z2);
    g_sum += g;
  }
  const int phase = (2 * r_[h_row] + 2 * r_[i_row] + g_sum) & 3;
  PTSBE_ASSERT(phase == 0 || phase == 2);
  r_[h_row] = static_cast<std::uint8_t>(phase == 2);
  for (unsigned w = 0; w < words_; ++w) {
    xs_[h_row][w] ^= xs_[i_row][w];
    zs_[h_row][w] ^= zs_[i_row][w];
  }
}

bool CliffordTableau::measurement_is_deterministic(unsigned q) const {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  for (unsigned p = n_; p < 2 * n_; ++p)
    if (get_x(p, q)) return false;
  return true;
}

unsigned CliffordTableau::measure(unsigned q, RngStream& rng,
                                  bool* deterministic) {
  PTSBE_REQUIRE(q < n_, "qubit out of range");
  unsigned p = 2 * n_;
  for (unsigned row = n_; row < 2 * n_; ++row)
    if (get_x(row, q)) {
      p = row;
      break;
    }
  if (p < 2 * n_) {
    // Random outcome.
    if (deterministic != nullptr) *deterministic = false;
    for (unsigned i = 0; i < 2 * n_; ++i)
      if (i != p && get_x(i, q)) rowsum(i, p);
    // Destabilizer p-n becomes old stabilizer p.
    xs_[p - n_] = xs_[p];
    zs_[p - n_] = zs_[p];
    r_[p - n_] = r_[p];
    std::fill(xs_[p].begin(), xs_[p].end(), 0);
    std::fill(zs_[p].begin(), zs_[p].end(), 0);
    toggle_z(p, q);
    const unsigned outcome = static_cast<unsigned>(rng.bits64() & 1ULL);
    r_[p] = static_cast<std::uint8_t>(outcome);
    return outcome;
  }
  // Deterministic outcome via the scratch row.
  if (deterministic != nullptr) *deterministic = true;
  const unsigned scratch = 2 * n_;
  std::fill(xs_[scratch].begin(), xs_[scratch].end(), 0);
  std::fill(zs_[scratch].begin(), zs_[scratch].end(), 0);
  r_[scratch] = 0;
  for (unsigned i = 0; i < n_; ++i)
    if (get_x(i, q)) rowsum(scratch, i + n_);
  return r_[scratch];
}

std::string CliffordTableau::stabilizer_row(unsigned i) const {
  PTSBE_REQUIRE(i < n_, "stabilizer row out of range");
  const unsigned row = i + n_;
  std::string out;
  out += r_[row] ? '-' : '+';
  for (unsigned q = 0; q < n_; ++q) {
    const bool x = get_x(row, q), z = get_z(row, q);
    out += x ? (z ? 'Y' : 'X') : (z ? 'Z' : 'I');
  }
  return out;
}

}  // namespace ptsbe
