/// \file kernels_avx512.cpp
/// \brief AVX-512 kernel set: 512-bit registers, four complex amplitudes
/// per register. Compiled with -mavx512f -mavx512dq -ffp-contract=off
/// (DQ supplies _mm512_xor_pd and _mm512_broadcast_f64x2); dispatched only
/// when the CPU reports both avx512f and avx512dq.
///
/// Same arithmetic-shape rules as the AVX2 set: no FMA, subtraction as
/// multiply-by-sign-flipped coefficient, scalar summation order per lane,
/// with the coefficient split hoisted out of the sweep loops by prep().

#include <immintrin.h>

#include "kernels_impl.hpp"

namespace ptsbe::kernels {
namespace {

struct Avx512Policy {
  static constexpr unsigned kWidth = 4;
  using Reg = __m512d;
  /// Prepared loop-invariant multiplier: `re` carries c.re in both lanes of
  /// each pair, `im` carries (-c.im, +c.im) pairs with the sign of the
  /// complex subtraction pre-applied.
  struct Coef {
    Reg re, im;
  };
  static Reg load(const cplx* p) {
    return _mm512_load_pd(reinterpret_cast<const double*>(p));
  }
  static void store(cplx* p, Reg v) {
    _mm512_store_pd(reinterpret_cast<double*>(p), v);
  }
  static Reg bcast(cplx v) {
    return _mm512_broadcast_f64x2(
        _mm_loadu_pd(reinterpret_cast<const double*>(&v)));
  }
  static Reg add(Reg a, Reg b) { return _mm512_add_pd(a, b); }
  static Coef prep(Reg c) {
    const Reg sign =
        _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
    return {_mm512_movedup_pd(c),
            _mm512_xor_pd(_mm512_permute_pd(c, 0xFF), sign)};
  }
  static Reg swapri(Reg v) { return _mm512_permute_pd(v, 0x55); }
  /// Per complex lane, with vs = swapri(v):
  ///   re = v.re*c.re + v.im*(-c.im),  im = v.im*c.re + v.re*c.im
  /// — bit-identical to the scalar reference (products commute bitwise,
  /// (-x)*y == -(x*y) exactly, FP add commutes bitwise).
  static Reg mulc(Coef c, Reg v, Reg vs) {
    return _mm512_add_pd(_mm512_mul_pd(v, c.re), _mm512_mul_pd(vs, c.im));
  }
  /// Dense 2x2 on qubit 0 over eight consecutive amplitudes: gather the
  /// even/odd amplitudes of four (v0, v1) pairs into two registers with
  /// permutex2var, run the dense math, scatter back.
  static void apply1_stride1(cplx* p, const Coef* mc) {
    const Reg a = load(p);      // [c0 c1 c2 c3]
    const Reg b = load(p + 4);  // [c4 c5 c6 c7]
    const __m512i even = _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0);
    const __m512i odd = _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2);
    const Reg v0 = _mm512_permutex2var_pd(a, even, b);  // [c0 c2 c4 c6]
    const Reg v1 = _mm512_permutex2var_pd(a, odd, b);   // [c1 c3 c5 c7]
    const Reg v0s = swapri(v0), v1s = swapri(v1);
    const Reg o0 = add(mulc(mc[0], v0, v0s), mulc(mc[1], v1, v1s));
    const Reg o1 = add(mulc(mc[2], v0, v0s), mulc(mc[3], v1, v1s));
    const __m512i lo = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
    const __m512i hi = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
    store(p, _mm512_permutex2var_pd(o0, lo, o1));      // [c0' c1' c2' c3']
    store(p + 4, _mm512_permutex2var_pd(o0, hi, o1));  // [c4' .. c7']
  }
};

}  // namespace

const KernelSet& avx512_kernel_set() {
  static const KernelSet ks = detail::make_set<Avx512Policy>("avx512");
  return ks;
}

}  // namespace ptsbe::kernels
