/// \file kernels_scalar.cpp
/// \brief The scalar reference kernel set. Compiled with -ffp-contract=off
/// (like every kernel TU) and no ISA flags: this is the arithmetic every
/// SIMD variant must reproduce bit-for-bit.

#include "kernels_impl.hpp"

namespace ptsbe::kernels {

const KernelSet& scalar_kernel_set() {
  static const KernelSet ks = detail::make_set<detail::ScalarPolicy>("scalar");
  return ks;
}

}  // namespace ptsbe::kernels
