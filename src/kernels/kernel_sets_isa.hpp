#pragma once

/// \file kernel_sets_isa.hpp (private to src/kernels)
/// \brief Declarations of the per-ISA kernel sets. Each is defined in its
/// own translation unit compiled with that ISA's `-m` flags; which ones
/// exist in this binary is decided by CMake via the PTSBE_KERNELS_HAVE_*
/// definitions (set PRIVATE on the ptsbe_kernels target).

#include "ptsbe/kernels/kernel_set.hpp"

namespace ptsbe::kernels {

#if defined(PTSBE_KERNELS_HAVE_AVX2)
const KernelSet& avx2_kernel_set();
#endif
#if defined(PTSBE_KERNELS_HAVE_AVX512)
const KernelSet& avx512_kernel_set();
#endif

}  // namespace ptsbe::kernels
