#pragma once

/// \file kernel_set.hpp
/// \brief Runtime-dispatched SIMD amplitude kernels for the gate-apply loop.
///
/// Every amplitude backend ultimately spends its time in the same inner
/// loop: stride over 2^n (or 4^n) complex amplitudes and hit each group
/// with a small matrix. This header is the single seam between that loop
/// and the code that implements it. A `KernelSet` is a vtable of
/// amplitude-apply kernels; the registry compiles one scalar reference set
/// plus AVX2 / AVX-512 variants (each translation unit built with its own
/// `-m` flags) and selects among them by runtime CPUID detection, the
/// `PTSBE_KERNEL` environment variable, or `set_active()` (the CLI's
/// `--kernel` flag).
///
/// **Determinism contract.** All kernel sets produce *bit-identical*
/// amplitudes for the same prepared gate. SIMD variants vectorise across
/// amplitude groups only — the per-amplitude arithmetic (which products are
/// formed, in which order they are summed) is exactly the scalar
/// reference's. Every kernel TU is compiled with `-ffp-contract=off` so no
/// variant fuses a multiply-add the others do not, and no kernel uses FMA
/// instructions. This is what keeps the repo-wide determinism matrices
/// (threads × strategy × backend × schedule × fusion, plus the serve/net
/// loopback matrices) byte-identical across kernel selections; the
/// kernel-parity suite (tests/test_kernels.cpp) pins it per kernel.
///
/// **Offload boundary.** The registry is the seam a future GPU / oneAPI
/// backend plugs into: implement one more `KernelSet` (whose "pointer"
/// would wrap device launches over device-resident amplitudes) and register
/// it — nothing above this header changes. `PreparedGate` is deliberately
/// a flat POD (classified op + flattened matrix), i.e. exactly the shape a
/// device-side gate queue wants, and `apply_prepared_span` is the batched
/// entry point a device backend would turn into one kernel launch per run.
///
/// **Layout contract.** Kernels address amplitudes as an array-of-struct
/// `double2` stream: `cplx` must be exactly two contiguous doubles
/// (static_assert'd below; guaranteed for std::complex<double> by the
/// standard's array-compatibility clause). Amplitude storage handed to a
/// kernel must be 64-byte aligned — `ptsbe::AlignedAllocator` (used by
/// StateVector / DensityMatrix) provides this — because the AVX paths use
/// aligned loads/stores on every full-width access.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe::kernels {

static_assert(sizeof(cplx) == 2 * sizeof(double),
              "kernels assume cplx is an array-of-struct double2");
static_assert(alignof(cplx) == alignof(double),
              "kernels assume cplx has no padding or over-alignment");

/// Structural class of a 1-/2-qubit operator, detected once per prepared
/// gate (exact ==0 tests, so misclassification is impossible — anything
/// not provably cheap takes the general dense path).
enum class GateClass : std::uint8_t {
  kIdentity,  ///< scaled-identity-free exact identity: apply is a no-op
  kDiag1,     ///< diagonal 2×2: one complex multiply per amplitude
  kPerm1,     ///< phased permutation (X/Y-like): move + one multiply
  kGeneral1,  ///< dense 2×2
  kDiag2,     ///< diagonal 4×4 (CZ, CRZ, ZZ-phases)
  kPerm2,     ///< phased 4-element permutation (CX, SWAP, iSWAP)
  kCtrl1,     ///< controlled 1q: identity on control=0 half (CRX, CU, CX)
  kGeneral2,  ///< dense 4×4
};

/// A classified, flattened gate: everything a kernel needs with no
/// indirection into `Matrix`. Built once per ExecPlan (or per apply call)
/// and reused across every trajectory that walks the plan.
struct PreparedGate {
  GateClass cls = GateClass::kGeneral1;
  std::uint8_t arity = 1;  ///< 1 or 2
  /// Gate qubits, `q[0]` = LSB of the matrix index. For kCtrl1, q[0] is
  /// the *control* and q[1] the *target* (already swapped if needed).
  std::array<unsigned, 2> q{0, 0};
  /// Dense row-major matrix (4 or 16 entries) for the general/ctrl paths;
  /// for kDiag* the first 2/4 entries are the diagonal; for kPerm* the
  /// first 2/4 entries are the row phases. For kCtrl1 the first 4 entries
  /// are the dense 2×2 acting on the target.
  std::array<cplx, 16> m{};
  /// kPerm* source map: new[r] = m[r] * old[src[r]].
  std::array<std::uint8_t, 4> src{0, 1, 2, 3};
};

/// One ISA's implementation of the amplitude-apply kernels. All pointers
/// are non-null in a registered set. `amp` is the full amplitude array of
/// `dim` complex entries (dim a power of two, 64-byte aligned); qubit
/// indices address bits of the amplitude index (qubit 0 = LSB).
struct KernelSet {
  const char* name = "";  ///< registry key: "scalar", "avx2", "avx512"
  /// Dense 2×2 `m` (row-major) on qubit q.
  void (*apply1)(cplx* amp, std::uint64_t dim, const cplx* m, unsigned q);
  /// Dense 4×4 `m` (row-major) on qubits (q0 = LSB of the matrix index).
  void (*apply2)(cplx* amp, std::uint64_t dim, const cplx* m, unsigned q0,
                 unsigned q1);
  /// Diagonal d[2] on qubit q: amp[i] *= d[bit_q(i)].
  void (*diag1)(cplx* amp, std::uint64_t dim, const cplx* d, unsigned q);
  /// Diagonal d[4] on qubits (q0, q1): amp[i] *= d[bit_q1(i)<<1 | bit_q0(i)].
  void (*diag2)(cplx* amp, std::uint64_t dim, const cplx* d, unsigned q0,
                unsigned q1);
  /// Phased 2-permutation: group (v0, v1) -> (ph[0]*v[src[0]], ph[1]*v[src[1]]).
  void (*perm1)(cplx* amp, std::uint64_t dim, const std::uint8_t* src,
                const cplx* ph, unsigned q);
  /// Phased 4-permutation over a two-qubit group.
  void (*perm2)(cplx* amp, std::uint64_t dim, const std::uint8_t* src,
                const cplx* ph, unsigned q0, unsigned q1);
  /// Controlled dense 2×2 `u` on `target` where bit `control` is 1; the
  /// control=0 half of the state is untouched.
  void (*ctrl1)(cplx* amp, std::uint64_t dim, const cplx* u, unsigned control,
                unsigned target);
};

// ---------------------------------------------------------------------------
// Classification / application
// ---------------------------------------------------------------------------

/// Classify and flatten a 1- or 2-qubit gate matrix. Precondition: 1 <=
/// qubits.size() <= 2, matrix is 2^arity square, qubits distinct.
[[nodiscard]] PreparedGate prepare_gate(const Matrix& m,
                                        std::span<const unsigned> qubits);

/// Apply one prepared gate with the given kernel set.
void apply_prepared(const KernelSet& ks, cplx* amp, std::uint64_t dim,
                    const PreparedGate& g);

/// Batched entry point: walk a whole prepared gate run in one call. This is
/// the span `SimState::apply_prepared_run` forwards and the boundary a
/// device backend would turn into a single launch.
void apply_prepared_span(const KernelSet& ks, cplx* amp, std::uint64_t dim,
                         std::span<const PreparedGate> gates);

/// Classify-and-apply convenience for un-prepared call sites (classification
/// is ~16 comparisons — negligible against the 2^n sweep it steers).
void apply_gate(const KernelSet& ks, cplx* amp, std::uint64_t dim,
                const Matrix& m, std::span<const unsigned> qubits);

/// Copy of `g` with every qubit shifted up by `shift` bits. Used by the
/// density-matrix backend, whose row index starts at bit n of the flat
/// ρ index.
[[nodiscard]] PreparedGate shifted(const PreparedGate& g, unsigned shift);

/// Copy of `g` with all matrix entries / phases conjugated (class and
/// permutation structure are preserved under conjugation). Used for the
/// ρ ← ρ M† right-multiply pass.
[[nodiscard]] PreparedGate conjugated(const PreparedGate& g);

// ---------------------------------------------------------------------------
// Registry / dispatch
// ---------------------------------------------------------------------------

/// The scalar reference set (always compiled, always supported).
[[nodiscard]] const KernelSet& scalar_kernel_set();

/// Every set compiled into this binary, scalar first.
[[nodiscard]] std::span<const KernelSet* const> compiled_sets();

/// Compiled sets whose ISA the running CPU supports, scalar first.
[[nodiscard]] std::vector<const KernelSet*> available_sets();

/// The best available set (last of available_sets()), ignoring overrides.
[[nodiscard]] const KernelSet& best_available_set();

/// The active set. Resolved once on first use: `PTSBE_KERNEL` (one of
/// "scalar", "avx2", "avx512", "auto"/"") if set, else the best available.
/// \throws precondition_error if PTSBE_KERNEL names an unknown or
///         CPU-unsupported set.
[[nodiscard]] const KernelSet& active();

/// Override the active set by name ("auto" re-selects the best available).
/// \throws precondition_error on an unknown or unsupported name.
void set_active(std::string_view name);

/// Human-readable description of the detected ISA and the active set,
/// e.g. "avx512 (compiled: scalar avx2 avx512; cpu: avx512)".
[[nodiscard]] std::string describe_dispatch();

}  // namespace ptsbe::kernels
