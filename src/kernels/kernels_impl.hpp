#pragma once

/// \file kernels_impl.hpp (private to src/kernels)
/// \brief ISA-generic amplitude-kernel templates.
///
/// Each kernel is written once, parameterised by a SIMD *policy* — a small
/// struct exposing a register type holding `kWidth` complex doubles plus
/// load/store/broadcast/add and the complex-multiply building blocks. The
/// three translation units (scalar / AVX2 / AVX-512) instantiate the
/// templates with their policy and are compiled with their own `-m` flags;
/// this header contains no ISA-specific code itself.
///
/// Complex multiplies are expressed in *hoisted-coefficient* form: the gate
/// coefficient (matrix entry / diagonal / phase) is loop-invariant, so
/// `prep()` splits it once outside the loop into a real-part broadcast and
/// a sign-pre-flipped imaginary-part broadcast, and the per-amplitude work
/// `mulc(c, v, swapri(v))` is two multiplies and one add per register:
///   re = v.re*c.re + v.im*(-c.im),  im = v.im*c.re + v.re*c.im
/// Determinism is structural: those are exactly the scalar reference's four
/// products (multiplication commutes bitwise), the subtraction is realised
/// as an add of a sign-flipped multiplicand ((-x)*y == -(x*y) exactly), and
/// FP addition commutes bitwise — so every lane reproduces
///   re = c.re*v.re - c.im*v.im,  im = c.im*v.re + c.re*v.im
/// bit-for-bit, with no FMA anywhere. Sums over matrix rows are
/// left-associated in every path. With `-ffp-contract=off` on all kernel
/// TUs, every kernel set therefore produces bit-identical amplitudes; the
/// SIMD sets only vectorise *across* amplitude groups (and fall back to the
/// scalar-policy instantiation whenever a stride is narrower than the
/// vector, so narrow states stay bit-identical too).
///
/// Loop structure: strides are hoisted into a rectangular
/// (outer, middle, tile) nest — `insert_zero_bit` per-group bit surgery is
/// gone from the hot loops — which is also what the OpenMP `collapse`
/// clauses and the L1 tile size (kTileComplex per stream) hang off.

#include <algorithm>
#include <cstdint>

#include "ptsbe/kernels/kernel_set.hpp"

namespace ptsbe::kernels::detail {

/// Below this state size the OpenMP fork/join overhead dominates any win
/// (mirrors the historical statevector threshold).
constexpr std::uint64_t kOmpThreshold = 1ULL << 14;

/// Tile of the innermost contiguous run, in complex amplitudes per stream:
/// 512 cplx = 8 KiB, so the four streams of a 2q group stay L1-resident.
constexpr std::uint64_t kTileComplex = 512;

/// The scalar reference policy: one complex per "register", arithmetic in
/// the exact shape the vector lanes replicate.
struct ScalarPolicy {
  static constexpr unsigned kWidth = 1;
  using Reg = cplx;
  /// Prepared multiplier — scalar needs no splitting.
  using Coef = cplx;
  static Reg load(const cplx* p) { return *p; }
  static void store(cplx* p, Reg v) { *p = v; }
  static Reg bcast(cplx v) { return v; }
  static Reg add(Reg a, Reg b) {
    return Reg{a.real() + b.real(), a.imag() + b.imag()};
  }
  static Coef prep(Reg c) { return c; }
  static Reg swapri(Reg v) { return Reg{v.imag(), v.real()}; }
  /// The reference complex multiply: four products, the subtraction as
  /// written, the im sum in (c.im*v.re + c.re*v.im) order. `vs` (the
  /// pre-swapped value the vector policies consume) is unused here.
  static Reg mulc(Coef c, Reg v, Reg /*vs*/) {
    return Reg{c.real() * v.real() - c.imag() * v.imag(),
               c.imag() * v.real() + c.real() * v.imag()};
  }
};

template <class P>
concept HasStride1Apply1 = requires(cplx* p, const typename P::Coef* mc) {
  P::apply1_stride1(p, mc);
};

/// Tile width in vector registers for policy P (>= 1).
template <class P>
constexpr std::int64_t tile_vecs(std::int64_t inner_vecs) {
  const std::int64_t cap =
      static_cast<std::int64_t>(std::max<std::uint64_t>(1, kTileComplex / P::kWidth));
  return std::min<std::int64_t>(inner_vecs, cap);
}

// ---------------------------------------------------------------------------
// Dense 2x2
// ---------------------------------------------------------------------------

template <class P>
void apply1(cplx* amp, std::uint64_t dim, const cplx* m, unsigned q) {
  const std::uint64_t stride = 1ULL << q;
  if (stride >= P::kWidth) {
    const typename P::Coef m00 = P::prep(P::bcast(m[0])),
                           m01 = P::prep(P::bcast(m[1])),
                           m10 = P::prep(P::bcast(m[2])),
                           m11 = P::prep(P::bcast(m[3]));
    const std::int64_t nouter = static_cast<std::int64_t>(dim >> (q + 1));
    const std::int64_t ninner = static_cast<std::int64_t>(stride / P::kWidth);
    const std::int64_t tile = tile_vecs<P>(ninner);
    const std::int64_t ntile = ninner / tile;
#pragma omp parallel for collapse(2) schedule(static) \
    if (dim >= kOmpThreshold)
    for (std::int64_t outer = 0; outer < nouter; ++outer) {
      for (std::int64_t t = 0; t < ntile; ++t) {
        cplx* p0 = amp + (static_cast<std::uint64_t>(outer) << (q + 1)) +
                   static_cast<std::uint64_t>(t * tile) * P::kWidth;
        cplx* p1 = p0 + stride;
        for (std::int64_t j = 0; j < tile;
             ++j, p0 += P::kWidth, p1 += P::kWidth) {
          const typename P::Reg v0 = P::load(p0), v1 = P::load(p1);
          const typename P::Reg v0s = P::swapri(v0), v1s = P::swapri(v1);
          P::store(p0, P::add(P::mulc(m00, v0, v0s), P::mulc(m01, v1, v1s)));
          P::store(p1, P::add(P::mulc(m10, v0, v0s), P::mulc(m11, v1, v1s)));
        }
      }
    }
    return;
  }
  if constexpr (HasStride1Apply1<P>) {
    if (stride == 1 && dim >= 2 * P::kWidth) {
      const typename P::Coef mc[4] = {
          P::prep(P::bcast(m[0])), P::prep(P::bcast(m[1])),
          P::prep(P::bcast(m[2])), P::prep(P::bcast(m[3]))};
      const std::int64_t n = static_cast<std::int64_t>(dim / (2 * P::kWidth));
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
      for (std::int64_t i = 0; i < n; ++i)
        P::apply1_stride1(amp + static_cast<std::uint64_t>(i) * 2 * P::kWidth,
                          mc);
      return;
    }
  }
  apply1<ScalarPolicy>(amp, dim, m, q);  // sub-width stride: bit-identical
}

// ---------------------------------------------------------------------------
// Dense 4x4
// ---------------------------------------------------------------------------

template <class P>
void apply2(cplx* amp, std::uint64_t dim, const cplx* m, unsigned q0,
            unsigned q1) {
  const std::uint64_t s0 = 1ULL << q0, s1 = 1ULL << q1;
  const unsigned lo = std::min(q0, q1), hi = std::max(q0, q1);
  const std::uint64_t slo = 1ULL << lo;
  if (slo < P::kWidth) {
    apply2<ScalarPolicy>(amp, dim, m, q0, q1);
    return;
  }
  typename P::Coef mc[16];
  for (unsigned k = 0; k < 16; ++k) mc[k] = P::prep(P::bcast(m[k]));
  const std::int64_t nouter = static_cast<std::int64_t>(dim >> (hi + 1));
  const std::int64_t nmid = static_cast<std::int64_t>((1ULL << hi) >> (lo + 1));
  const std::int64_t ninner = static_cast<std::int64_t>(slo / P::kWidth);
  const std::int64_t tile = tile_vecs<P>(ninner);
  const std::int64_t ntile = ninner / tile;
#pragma omp parallel for collapse(3) schedule(static) if (dim >= kOmpThreshold)
  for (std::int64_t outer = 0; outer < nouter; ++outer) {
    for (std::int64_t mid = 0; mid < nmid; ++mid) {
      for (std::int64_t t = 0; t < ntile; ++t) {
        const std::uint64_t base =
            (static_cast<std::uint64_t>(outer) << (hi + 1)) +
            (static_cast<std::uint64_t>(mid) << (lo + 1)) +
            static_cast<std::uint64_t>(t * tile) * P::kWidth;
        cplx* p0 = amp + base;
        cplx* p1 = p0 + s0;
        cplx* p2 = p0 + s1;
        cplx* p3 = p0 + s0 + s1;
        for (std::int64_t j = 0; j < tile; ++j, p0 += P::kWidth,
                          p1 += P::kWidth, p2 += P::kWidth, p3 += P::kWidth) {
          const typename P::Reg v0 = P::load(p0), v1 = P::load(p1),
                                v2 = P::load(p2), v3 = P::load(p3);
          const typename P::Reg v0s = P::swapri(v0), v1s = P::swapri(v1),
                                v2s = P::swapri(v2), v3s = P::swapri(v3);
          const typename P::Reg o0 = P::add(
              P::add(P::add(P::mulc(mc[0], v0, v0s), P::mulc(mc[1], v1, v1s)),
                     P::mulc(mc[2], v2, v2s)),
              P::mulc(mc[3], v3, v3s));
          const typename P::Reg o1 = P::add(
              P::add(P::add(P::mulc(mc[4], v0, v0s), P::mulc(mc[5], v1, v1s)),
                     P::mulc(mc[6], v2, v2s)),
              P::mulc(mc[7], v3, v3s));
          const typename P::Reg o2 = P::add(
              P::add(P::add(P::mulc(mc[8], v0, v0s), P::mulc(mc[9], v1, v1s)),
                     P::mulc(mc[10], v2, v2s)),
              P::mulc(mc[11], v3, v3s));
          const typename P::Reg o3 = P::add(
              P::add(
                  P::add(P::mulc(mc[12], v0, v0s), P::mulc(mc[13], v1, v1s)),
                  P::mulc(mc[14], v2, v2s)),
              P::mulc(mc[15], v3, v3s));
          P::store(p0, o0);
          P::store(p1, o1);
          P::store(p2, o2);
          P::store(p3, o3);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Diagonal
// ---------------------------------------------------------------------------

template <class P>
void diag1(cplx* amp, std::uint64_t dim, const cplx* d, unsigned q) {
  const std::uint64_t stride = 1ULL << q;
  if (stride >= P::kWidth) {
    const typename P::Coef d0 = P::prep(P::bcast(d[0])),
                           d1 = P::prep(P::bcast(d[1]));
    const std::int64_t nouter = static_cast<std::int64_t>(dim >> (q + 1));
    const std::int64_t ninner = static_cast<std::int64_t>(stride / P::kWidth);
#pragma omp parallel for collapse(2) schedule(static) \
    if (dim >= kOmpThreshold)
    for (std::int64_t outer = 0; outer < nouter; ++outer) {
      for (std::int64_t inner = 0; inner < ninner; ++inner) {
        cplx* p0 = amp + (static_cast<std::uint64_t>(outer) << (q + 1)) +
                   static_cast<std::uint64_t>(inner) * P::kWidth;
        cplx* p1 = p0 + stride;
        const typename P::Reg v0 = P::load(p0), v1 = P::load(p1);
        P::store(p0, P::mulc(d0, v0, P::swapri(v0)));
        P::store(p1, P::mulc(d1, v1, P::swapri(v1)));
      }
    }
    return;
  }
  if (dim >= P::kWidth) {
    // Sub-width stride: the multiplier repeats with period 2*stride <=
    // kWidth, so one lane-patterned register covers the whole sweep.
    alignas(64) cplx pat[P::kWidth];
    for (unsigned j = 0; j < P::kWidth; ++j) pat[j] = d[(j >> q) & 1u];
    const typename P::Coef dc = P::prep(P::load(pat));
    const std::int64_t n = static_cast<std::int64_t>(dim / P::kWidth);
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
    for (std::int64_t i = 0; i < n; ++i) {
      cplx* p = amp + static_cast<std::uint64_t>(i) * P::kWidth;
      const typename P::Reg v = P::load(p);
      P::store(p, P::mulc(dc, v, P::swapri(v)));
    }
    return;
  }
  diag1<ScalarPolicy>(amp, dim, d, q);
}

template <class P>
void diag2(cplx* amp, std::uint64_t dim, const cplx* d, unsigned q0,
           unsigned q1) {
  const unsigned lo = std::min(q0, q1), hi = std::max(q0, q1);
  const std::uint64_t slo = 1ULL << lo, shi = 1ULL << hi;
  // d entry for (bit at lo, bit at hi): q0 is always the matrix LSB.
  const auto didx = [&](unsigned blo, unsigned bhi) {
    const unsigned b0 = (lo == q0) ? blo : bhi;
    const unsigned b1 = (lo == q0) ? bhi : blo;
    return (b1 << 1) | b0;
  };
  if (slo >= P::kWidth) {
    const typename P::Coef d00 = P::prep(P::bcast(d[didx(0, 0)])),
                           d10 = P::prep(P::bcast(d[didx(1, 0)])),
                           d01 = P::prep(P::bcast(d[didx(0, 1)])),
                           d11 = P::prep(P::bcast(d[didx(1, 1)]));
    const std::int64_t nouter = static_cast<std::int64_t>(dim >> (hi + 1));
    const std::int64_t nmid = static_cast<std::int64_t>(shi >> (lo + 1));
    const std::int64_t ninner = static_cast<std::int64_t>(slo / P::kWidth);
#pragma omp parallel for collapse(3) schedule(static) \
    if (dim >= kOmpThreshold)
    for (std::int64_t outer = 0; outer < nouter; ++outer) {
      for (std::int64_t mid = 0; mid < nmid; ++mid) {
        for (std::int64_t inner = 0; inner < ninner; ++inner) {
          cplx* p0 = amp + (static_cast<std::uint64_t>(outer) << (hi + 1)) +
                     (static_cast<std::uint64_t>(mid) << (lo + 1)) +
                     static_cast<std::uint64_t>(inner) * P::kWidth;
          cplx* p1 = p0 + slo;
          cplx* p2 = p0 + shi;
          cplx* p3 = p0 + slo + shi;
          const typename P::Reg v0 = P::load(p0), v1 = P::load(p1),
                                v2 = P::load(p2), v3 = P::load(p3);
          P::store(p0, P::mulc(d00, v0, P::swapri(v0)));
          P::store(p1, P::mulc(d10, v1, P::swapri(v1)));
          P::store(p2, P::mulc(d01, v2, P::swapri(v2)));
          P::store(p3, P::mulc(d11, v3, P::swapri(v3)));
        }
      }
    }
    return;
  }
  if (shi >= P::kWidth) {
    // Low stride narrower than a register, high stride wide: lane-pattern
    // the low bit, two-pointer the high bit.
    alignas(64) cplx patA[P::kWidth], patB[P::kWidth];
    for (unsigned j = 0; j < P::kWidth; ++j) {
      const unsigned blo = (j >> lo) & 1u;
      patA[j] = d[didx(blo, 0)];
      patB[j] = d[didx(blo, 1)];
    }
    const typename P::Coef dA = P::prep(P::load(patA)),
                           dB = P::prep(P::load(patB));
    const std::int64_t nouter = static_cast<std::int64_t>(dim >> (hi + 1));
    const std::int64_t ninner = static_cast<std::int64_t>(shi / P::kWidth);
#pragma omp parallel for collapse(2) schedule(static) \
    if (dim >= kOmpThreshold)
    for (std::int64_t outer = 0; outer < nouter; ++outer) {
      for (std::int64_t inner = 0; inner < ninner; ++inner) {
        cplx* p0 = amp + (static_cast<std::uint64_t>(outer) << (hi + 1)) +
                   static_cast<std::uint64_t>(inner) * P::kWidth;
        cplx* p1 = p0 + shi;
        const typename P::Reg v0 = P::load(p0), v1 = P::load(p1);
        P::store(p0, P::mulc(dA, v0, P::swapri(v0)));
        P::store(p1, P::mulc(dB, v1, P::swapri(v1)));
      }
    }
    return;
  }
  if (dim >= P::kWidth) {
    // Both strides sub-width: the full 4-entry pattern fits in one register.
    alignas(64) cplx pat[P::kWidth];
    for (unsigned j = 0; j < P::kWidth; ++j)
      pat[j] = d[didx((j >> lo) & 1u, (j >> hi) & 1u)];
    const typename P::Coef dc = P::prep(P::load(pat));
    const std::int64_t n = static_cast<std::int64_t>(dim / P::kWidth);
#pragma omp parallel for schedule(static) if (dim >= kOmpThreshold)
    for (std::int64_t i = 0; i < n; ++i) {
      cplx* p = amp + static_cast<std::uint64_t>(i) * P::kWidth;
      const typename P::Reg v = P::load(p);
      P::store(p, P::mulc(dc, v, P::swapri(v)));
    }
    return;
  }
  diag2<ScalarPolicy>(amp, dim, d, q0, q1);
}

// ---------------------------------------------------------------------------
// Phased permutations
// ---------------------------------------------------------------------------

template <class P>
void perm1(cplx* amp, std::uint64_t dim, const std::uint8_t* src,
           const cplx* ph, unsigned q) {
  const std::uint64_t stride = 1ULL << q;
  if (stride < P::kWidth) {
    perm1<ScalarPolicy>(amp, dim, src, ph, q);
    return;
  }
  const typename P::Coef p0c = P::prep(P::bcast(ph[0])),
                         p1c = P::prep(P::bcast(ph[1]));
  const bool swap = src[0] == 1;
  const std::int64_t nouter = static_cast<std::int64_t>(dim >> (q + 1));
  const std::int64_t ninner = static_cast<std::int64_t>(stride / P::kWidth);
#pragma omp parallel for collapse(2) schedule(static) if (dim >= kOmpThreshold)
  for (std::int64_t outer = 0; outer < nouter; ++outer) {
    for (std::int64_t inner = 0; inner < ninner; ++inner) {
      cplx* p0 = amp + (static_cast<std::uint64_t>(outer) << (q + 1)) +
                 static_cast<std::uint64_t>(inner) * P::kWidth;
      cplx* p1 = p0 + stride;
      const typename P::Reg v0 = P::load(p0), v1 = P::load(p1);
      const typename P::Reg a = swap ? v1 : v0, b = swap ? v0 : v1;
      P::store(p0, P::mulc(p0c, a, P::swapri(a)));
      P::store(p1, P::mulc(p1c, b, P::swapri(b)));
    }
  }
}

template <class P>
void perm2(cplx* amp, std::uint64_t dim, const std::uint8_t* src,
           const cplx* ph, unsigned q0, unsigned q1) {
  const std::uint64_t s0 = 1ULL << q0, s1 = 1ULL << q1;
  const unsigned lo = std::min(q0, q1), hi = std::max(q0, q1);
  const std::uint64_t slo = 1ULL << lo;
  if (slo < P::kWidth) {
    perm2<ScalarPolicy>(amp, dim, src, ph, q0, q1);
    return;
  }
  const typename P::Coef ph0 = P::prep(P::bcast(ph[0])),
                         ph1 = P::prep(P::bcast(ph[1])),
                         ph2 = P::prep(P::bcast(ph[2])),
                         ph3 = P::prep(P::bcast(ph[3]));
  const std::int64_t nouter = static_cast<std::int64_t>(dim >> (hi + 1));
  const std::int64_t nmid = static_cast<std::int64_t>((1ULL << hi) >> (lo + 1));
  const std::int64_t ninner = static_cast<std::int64_t>(slo / P::kWidth);
#pragma omp parallel for collapse(3) schedule(static) if (dim >= kOmpThreshold)
  for (std::int64_t outer = 0; outer < nouter; ++outer) {
    for (std::int64_t mid = 0; mid < nmid; ++mid) {
      for (std::int64_t inner = 0; inner < ninner; ++inner) {
        cplx* p0 = amp + (static_cast<std::uint64_t>(outer) << (hi + 1)) +
                   (static_cast<std::uint64_t>(mid) << (lo + 1)) +
                   static_cast<std::uint64_t>(inner) * P::kWidth;
        cplx* const p[4] = {p0, p0 + s0, p0 + s1, p0 + s0 + s1};
        const typename P::Reg v[4] = {P::load(p[0]), P::load(p[1]),
                                      P::load(p[2]), P::load(p[3])};
        P::store(p[0], P::mulc(ph0, v[src[0]], P::swapri(v[src[0]])));
        P::store(p[1], P::mulc(ph1, v[src[1]], P::swapri(v[src[1]])));
        P::store(p[2], P::mulc(ph2, v[src[2]], P::swapri(v[src[2]])));
        P::store(p[3], P::mulc(ph3, v[src[3]], P::swapri(v[src[3]])));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Controlled 1q
// ---------------------------------------------------------------------------

template <class P>
void ctrl1(cplx* amp, std::uint64_t dim, const cplx* u, unsigned control,
           unsigned target) {
  const std::uint64_t sc = 1ULL << control, st = 1ULL << target;
  const unsigned lo = std::min(control, target), hi = std::max(control, target);
  const std::uint64_t slo = 1ULL << lo;
  if (slo < P::kWidth) {
    ctrl1<ScalarPolicy>(amp, dim, u, control, target);
    return;
  }
  const typename P::Coef u00 = P::prep(P::bcast(u[0])),
                         u01 = P::prep(P::bcast(u[1])),
                         u10 = P::prep(P::bcast(u[2])),
                         u11 = P::prep(P::bcast(u[3]));
  const std::int64_t nouter = static_cast<std::int64_t>(dim >> (hi + 1));
  const std::int64_t nmid = static_cast<std::int64_t>((1ULL << hi) >> (lo + 1));
  const std::int64_t ninner = static_cast<std::int64_t>(slo / P::kWidth);
  const std::int64_t tile = tile_vecs<P>(ninner);
  const std::int64_t ntile = ninner / tile;
#pragma omp parallel for collapse(3) schedule(static) if (dim >= kOmpThreshold)
  for (std::int64_t outer = 0; outer < nouter; ++outer) {
    for (std::int64_t mid = 0; mid < nmid; ++mid) {
      for (std::int64_t t = 0; t < ntile; ++t) {
        const std::uint64_t base =
            (static_cast<std::uint64_t>(outer) << (hi + 1)) +
            (static_cast<std::uint64_t>(mid) << (lo + 1)) +
            static_cast<std::uint64_t>(t * tile) * P::kWidth + sc;
        cplx* p0 = amp + base;       // control = 1, target = 0
        cplx* p1 = p0 + st;          // control = 1, target = 1
        for (std::int64_t j = 0; j < tile;
             ++j, p0 += P::kWidth, p1 += P::kWidth) {
          const typename P::Reg v0 = P::load(p0), v1 = P::load(p1);
          const typename P::Reg v0s = P::swapri(v0), v1s = P::swapri(v1);
          P::store(p0, P::add(P::mulc(u00, v0, v0s), P::mulc(u01, v1, v1s)));
          P::store(p1, P::add(P::mulc(u10, v0, v0s), P::mulc(u11, v1, v1s)));
        }
      }
    }
  }
}

/// Bind every template instantiation for policy P into one KernelSet.
template <class P>
KernelSet make_set(const char* name) {
  KernelSet ks;
  ks.name = name;
  ks.apply1 = &apply1<P>;
  ks.apply2 = &apply2<P>;
  ks.diag1 = &diag1<P>;
  ks.diag2 = &diag2<P>;
  ks.perm1 = &perm1<P>;
  ks.perm2 = &perm2<P>;
  ks.ctrl1 = &ctrl1<P>;
  return ks;
}

}  // namespace ptsbe::kernels::detail
