/// \file kernels_avx2.cpp
/// \brief AVX2 kernel set: 256-bit registers, two complex amplitudes per
/// lane-pair. Compiled with -mavx2 -ffp-contract=off.
///
/// The complex multiply mirrors the scalar reference per lane — four
/// multiplies, the subtraction realised as multiply-by-sign-flipped
/// coefficient — and deliberately avoids vfmaddsub / any FMA (single-rounded
/// fused ops would break the bit-for-bit parity contract with the scalar
/// set). The coefficient split (prep) happens once per gate, outside the
/// sweep loops, so the per-register work is one shuffle, two multiplies and
/// one add.

#include <immintrin.h>

#include "kernels_impl.hpp"

namespace ptsbe::kernels {
namespace {

struct Avx2Policy {
  static constexpr unsigned kWidth = 2;
  using Reg = __m256d;
  /// Prepared loop-invariant multiplier: `re` carries c.re in both lanes of
  /// each pair, `im` carries (-c.im, +c.im) — the sign flip that turns the
  /// complex subtraction into a plain add is baked in here, once.
  struct Coef {
    Reg re, im;
  };
  static Reg load(const cplx* p) {
    return _mm256_load_pd(reinterpret_cast<const double*>(p));
  }
  static void store(cplx* p, Reg v) {
    _mm256_store_pd(reinterpret_cast<double*>(p), v);
  }
  static Reg bcast(cplx v) {
    return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(&v));
  }
  static Reg add(Reg a, Reg b) { return _mm256_add_pd(a, b); }
  static Coef prep(Reg c) {
    const Reg sign = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
    return {_mm256_movedup_pd(c),                             // [c.re c.re]
            _mm256_xor_pd(_mm256_permute_pd(c, 0xF), sign)};  // [-c.im c.im]
  }
  static Reg swapri(Reg v) { return _mm256_permute_pd(v, 0x5); }
  /// Per complex lane, with vs = swapri(v):
  ///   re = v.re*c.re + v.im*(-c.im),  im = v.im*c.re + v.re*c.im
  /// — bit-identical to the scalar reference (products commute bitwise,
  /// (-x)*y == -(x*y) exactly, FP add commutes bitwise).
  static Reg mulc(Coef c, Reg v, Reg vs) {
    return _mm256_add_pd(_mm256_mul_pd(v, c.re), _mm256_mul_pd(vs, c.im));
  }
  /// Dense 2x2 on qubit 0: deinterleave four consecutive amplitudes into
  /// (even, odd) group registers, run the exact dense math, re-interleave.
  /// Value-identical to the scalar loop — only the lane packing differs.
  static void apply1_stride1(cplx* p, const Coef* mc) {
    const Reg a = load(p);      // [c0 | c1]
    const Reg b = load(p + 2);  // [c2 | c3]
    const Reg v0 = _mm256_permute2f128_pd(a, b, 0x20);  // [c0 | c2]
    const Reg v1 = _mm256_permute2f128_pd(a, b, 0x31);  // [c1 | c3]
    const Reg v0s = swapri(v0), v1s = swapri(v1);
    const Reg o0 = add(mulc(mc[0], v0, v0s), mulc(mc[1], v1, v1s));
    const Reg o1 = add(mulc(mc[2], v0, v0s), mulc(mc[3], v1, v1s));
    store(p, _mm256_permute2f128_pd(o0, o1, 0x20));
    store(p + 2, _mm256_permute2f128_pd(o0, o1, 0x31));
  }
};

}  // namespace

const KernelSet& avx2_kernel_set() {
  static const KernelSet ks = detail::make_set<Avx2Policy>("avx2");
  return ks;
}

}  // namespace ptsbe::kernels
