/// \file kernel_set.cpp
/// \brief Gate classification, prepared-gate application, and the runtime
/// dispatch registry (CPUID detection + PTSBE_KERNEL / set_active override).

#include "ptsbe/kernels/kernel_set.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "kernel_sets_isa.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe::kernels {

namespace {

bool is_zero(cplx v) { return v.real() == 0.0 && v.imag() == 0.0; }
bool is_one(cplx v) { return v.real() == 1.0 && v.imag() == 0.0; }

/// Is `m` a controlled 1q gate — identity on the half of the 4x4 index
/// space where the control bit is 0? `s0` holds the two matrix indices
/// with control bit 0, `s1` the complement ordered by target-bit value.
/// On success fills u with the row-major 2x2 acting on the target.
bool controlled_pattern(const Matrix& m, const unsigned (&s0)[2],
                        const unsigned (&s1)[2], cplx* u) {
  for (unsigned i : s0) {
    for (unsigned j = 0; j < 4; ++j) {
      const cplx row = m(i, j), col = m(j, i);
      if (j == i) {
        if (!is_one(row)) return false;
      } else {
        if (!is_zero(row) || !is_zero(col)) return false;
      }
    }
  }
  for (unsigned r = 0; r < 2; ++r)
    for (unsigned c = 0; c < 2; ++c) u[r * 2 + c] = m(s1[r], s1[c]);
  return true;
}

/// Permutation check: exactly one nonzero per row and per column. Fills
/// src[r] (column of row r's nonzero) and ph[r] (its value).
bool permutation_pattern(const Matrix& m, unsigned dim, std::uint8_t* src,
                         cplx* ph) {
  std::uint8_t col_used = 0;
  for (unsigned r = 0; r < dim; ++r) {
    int hit = -1;
    for (unsigned c = 0; c < dim; ++c) {
      if (!is_zero(m(r, c))) {
        if (hit >= 0) return false;
        hit = static_cast<int>(c);
      }
    }
    if (hit < 0) return false;  // singular; not a permutation
    if (col_used & (1u << hit)) return false;
    col_used = static_cast<std::uint8_t>(col_used | (1u << hit));
    src[r] = static_cast<std::uint8_t>(hit);
    ph[r] = m(r, static_cast<unsigned>(hit));
  }
  return true;
}

}  // namespace

PreparedGate prepare_gate(const Matrix& m, std::span<const unsigned> qubits) {
  const auto arity = qubits.size();
  PTSBE_REQUIRE(arity == 1 || arity == 2,
                "prepare_gate handles 1- and 2-qubit gates only");
  const unsigned dim = 1u << arity;
  PTSBE_REQUIRE(m.rows() == dim && m.cols() == dim,
                "gate matrix dimension does not match qubit count");
  PTSBE_REQUIRE(arity == 1 || qubits[0] != qubits[1],
                "gate qubits must be distinct");

  PreparedGate g;
  g.arity = static_cast<std::uint8_t>(arity);
  g.q = {qubits[0], arity == 2 ? qubits[1] : 0u};
  for (unsigned r = 0; r < dim; ++r)
    for (unsigned c = 0; c < dim; ++c) g.m[r * dim + c] = m(r, c);

  // Diagonal? (covers the exact identity too)
  bool diag = true;
  for (unsigned r = 0; r < dim && diag; ++r)
    for (unsigned c = 0; c < dim && diag; ++c)
      if (r != c && !is_zero(m(r, c))) diag = false;
  if (diag) {
    bool ident = true;
    for (unsigned r = 0; r < dim; ++r)
      if (!is_one(m(r, r))) ident = false;
    if (ident) {
      g.cls = GateClass::kIdentity;
      return g;
    }
    for (unsigned r = 0; r < dim; ++r) g.m[r] = m(r, r);
    g.cls = arity == 1 ? GateClass::kDiag1 : GateClass::kDiag2;
    return g;
  }

  if (arity == 2) {
    // Controlled patterns first: they touch only half the state, so CX-like
    // gates prefer kCtrl1 over the full-sweep permutation kernel.
    cplx u[4];
    if (controlled_pattern(m, {0, 2}, {1, 3}, u)) {
      // control = matrix bit 0 = qubits[0]; identity where it is 0.
      g.cls = GateClass::kCtrl1;
      g.q = {qubits[0], qubits[1]};
      for (unsigned k = 0; k < 4; ++k) g.m[k] = u[k];
      return g;
    }
    if (controlled_pattern(m, {0, 1}, {2, 3}, u)) {
      // control = matrix bit 1 = qubits[1].
      g.cls = GateClass::kCtrl1;
      g.q = {qubits[1], qubits[0]};
      for (unsigned k = 0; k < 4; ++k) g.m[k] = u[k];
      return g;
    }
  }

  std::uint8_t src[4];
  cplx ph[4];
  if (permutation_pattern(m, dim, src, ph)) {
    for (unsigned r = 0; r < dim; ++r) {
      g.src[r] = src[r];
      g.m[r] = ph[r];
    }
    g.cls = arity == 1 ? GateClass::kPerm1 : GateClass::kPerm2;
    return g;
  }

  g.cls = arity == 1 ? GateClass::kGeneral1 : GateClass::kGeneral2;
  return g;
}

void apply_prepared(const KernelSet& ks, cplx* amp, std::uint64_t dim,
                    const PreparedGate& g) {
  const cplx* m = g.m.data();
  switch (g.cls) {
    case GateClass::kIdentity:
      return;
    case GateClass::kDiag1:
      ks.diag1(amp, dim, m, g.q[0]);
      return;
    case GateClass::kPerm1:
      ks.perm1(amp, dim, g.src.data(), m, g.q[0]);
      return;
    case GateClass::kGeneral1:
      ks.apply1(amp, dim, m, g.q[0]);
      return;
    case GateClass::kDiag2:
      ks.diag2(amp, dim, m, g.q[0], g.q[1]);
      return;
    case GateClass::kPerm2:
      ks.perm2(amp, dim, g.src.data(), m, g.q[0], g.q[1]);
      return;
    case GateClass::kCtrl1:
      ks.ctrl1(amp, dim, m, /*control=*/g.q[0], /*target=*/g.q[1]);
      return;
    case GateClass::kGeneral2:
      ks.apply2(amp, dim, m, g.q[0], g.q[1]);
      return;
  }
}

void apply_prepared_span(const KernelSet& ks, cplx* amp, std::uint64_t dim,
                         std::span<const PreparedGate> gates) {
  for (const PreparedGate& g : gates) apply_prepared(ks, amp, dim, g);
}

void apply_gate(const KernelSet& ks, cplx* amp, std::uint64_t dim,
                const Matrix& m, std::span<const unsigned> qubits) {
  apply_prepared(ks, amp, dim, prepare_gate(m, qubits));
}

PreparedGate shifted(const PreparedGate& g, unsigned shift) {
  PreparedGate out = g;
  out.q[0] += shift;
  if (g.arity == 2 || g.cls == GateClass::kCtrl1) out.q[1] += shift;
  return out;
}

PreparedGate conjugated(const PreparedGate& g) {
  PreparedGate out = g;
  for (cplx& v : out.m) v = std::conj(v);
  return out;
}

// ---------------------------------------------------------------------------
// Registry / dispatch
// ---------------------------------------------------------------------------

namespace {

const std::vector<const KernelSet*>& compiled_vec() {
  static const std::vector<const KernelSet*> v = [] {
    std::vector<const KernelSet*> sets{&scalar_kernel_set()};
#if defined(PTSBE_KERNELS_HAVE_AVX2)
    sets.push_back(&avx2_kernel_set());
#endif
#if defined(PTSBE_KERNELS_HAVE_AVX512)
    sets.push_back(&avx512_kernel_set());
#endif
    return sets;
  }();
  return v;
}

bool cpu_supports(const KernelSet& ks) {
  const std::string_view name = ks.name;
  if (name == "scalar") return true;
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  if (name == "avx2") return __builtin_cpu_supports("avx2") != 0;
  if (name == "avx512")
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
#endif
  return false;
}

std::string known_names() {
  std::ostringstream os;
  os << "auto";
  for (const KernelSet* ks : compiled_vec()) os << ", " << ks->name;
  return os.str();
}

const KernelSet& resolve(std::string_view name) {
  if (name.empty() || name == "auto") return best_available_set();
  for (const KernelSet* ks : compiled_vec()) {
    if (name == ks->name) {
      PTSBE_REQUIRE(cpu_supports(*ks),
                    "kernel set '" + std::string(name) +
                        "' is compiled in but not supported by this CPU");
      return *ks;
    }
  }
  throw precondition_error("unknown kernel set '" + std::string(name) +
                           "' (known: " + known_names() + ")");
}

std::atomic<const KernelSet*> g_active{nullptr};

}  // namespace

std::span<const KernelSet* const> compiled_sets() {
  const auto& v = compiled_vec();
  return {v.data(), v.size()};
}

std::vector<const KernelSet*> available_sets() {
  std::vector<const KernelSet*> out;
  for (const KernelSet* ks : compiled_vec())
    if (cpu_supports(*ks)) out.push_back(ks);
  return out;
}

const KernelSet& best_available_set() {
  const KernelSet* best = &scalar_kernel_set();
  for (const KernelSet* ks : compiled_vec())
    if (cpu_supports(*ks)) best = ks;  // compiled_vec is ordered worst→best
  return *best;
}

const KernelSet& active() {
  const KernelSet* ks = g_active.load(std::memory_order_acquire);
  if (ks != nullptr) return *ks;
  // First use: honour PTSBE_KERNEL, else pick the best the CPU supports.
  // A racing first use computes the same answer, so the double store is
  // benign.
  const char* env = std::getenv("PTSBE_KERNEL");
  const KernelSet& resolved = resolve(env != nullptr ? env : "auto");
  g_active.store(&resolved, std::memory_order_release);
  return resolved;
}

void set_active(std::string_view name) {
  g_active.store(&resolve(name), std::memory_order_release);
}

std::string describe_dispatch() {
  std::ostringstream os;
  os << active().name << " (compiled:";
  for (const KernelSet* ks : compiled_vec()) os << ' ' << ks->name;
  os << "; cpu:";
  for (const KernelSet* ks : compiled_vec())
    if (cpu_supports(*ks)) os << ' ' << ks->name;
  os << ')';
  return os.str();
}

}  // namespace ptsbe::kernels
