#include "ptsbe/circuit/gates.hpp"

#include <cmath>

namespace ptsbe::gates {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865475244;
const cplx kI{0.0, 1.0};
}  // namespace

Matrix I() { return Matrix(2, 2, {1, 0, 0, 1}); }
Matrix X() { return Matrix(2, 2, {0, 1, 1, 0}); }
Matrix Y() { return Matrix(2, 2, {0, -kI, kI, 0}); }
Matrix Z() { return Matrix(2, 2, {1, 0, 0, -1}); }
Matrix H() {
  return Matrix(2, 2, {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
}
Matrix S() { return Matrix(2, 2, {1, 0, 0, kI}); }
Matrix Sdg() { return Matrix(2, 2, {1, 0, 0, -kI}); }
Matrix T() { return Matrix(2, 2, {1, 0, 0, std::polar(1.0, M_PI / 4)}); }
Matrix Tdg() { return Matrix(2, 2, {1, 0, 0, std::polar(1.0, -M_PI / 4)}); }

Matrix SX() {
  const cplx a{0.5, 0.5}, b{0.5, -0.5};
  return Matrix(2, 2, {a, b, b, a});
}
Matrix SXdg() { return SX().dagger(); }
Matrix SY() { return S() * SX() * Sdg(); }
Matrix SYdg() { return SY().dagger(); }

Matrix RX(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix(2, 2, {c, -kI * s, -kI * s, c});
}
Matrix RY(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix(2, 2, {c, -s, s, c});
}
Matrix RZ(double theta) {
  return Matrix(2, 2,
                {std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2)});
}
Matrix P(double theta) { return Matrix(2, 2, {1, 0, 0, std::polar(1.0, theta)}); }

Matrix U3(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix(2, 2, {cplx{c, 0.0}, -std::polar(s, lambda),
                       std::polar(s, phi), std::polar(c, phi + lambda)});
}

// Basis ordering: index = q1_bit * 2 + q0_bit, with q0 = first listed qubit.
// CX: control = q0 (LSB). States |q1 q0>: 00,01,10,11 → control=1 flips q1:
// |01> -> |11>, |11> -> |01>.
Matrix CX() {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, 0, 0, 1,
                 0, 0, 1, 0,
                 0, 1, 0, 0});
}

Matrix CZ() {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, 1, 0, 0,
                 0, 0, 1, 0,
                 0, 0, 0, -1});
}

Matrix CY() {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, 0, 0, -kI,
                 0, 0, 1, 0,
                 0, kI, 0, 0});
}

Matrix SWAP() {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, 0, 1, 0,
                 0, 1, 0, 0,
                 0, 0, 0, 1});
}

Matrix ISWAP() {
  return Matrix(4, 4,
                {1, 0, 0, 0,
                 0, 0, kI, 0,
                 0, kI, 0, 0,
                 0, 0, 0, 1});
}

Matrix pauli(unsigned index) {
  switch (index & 3u) {
    case 0: return I();
    case 1: return X();
    case 2: return Y();
    default: return Z();
  }
}

std::string pauli_name(unsigned index) {
  switch (index & 3u) {
    case 0: return "I";
    case 1: return "X";
    case 2: return "Y";
    default: return "Z";
  }
}

}  // namespace ptsbe::gates
