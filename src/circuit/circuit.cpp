#include "ptsbe/circuit/circuit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ptsbe/common/error.hpp"

namespace ptsbe {

std::size_t Circuit::gate_count() const noexcept {
  std::size_t n = 0;
  for (const Operation& op : ops_)
    if (op.kind == OpKind::kGate) ++n;
  return n;
}

std::vector<unsigned> Circuit::measured_qubits() const {
  std::vector<unsigned> out;
  for (const Operation& op : ops_)
    if (op.kind == OpKind::kMeasure) out.push_back(op.qubits.front());
  return out;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> qubit_depth(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Operation& op : ops_) {
    if (op.kind != OpKind::kGate) continue;
    std::size_t level = 0;
    for (unsigned q : op.qubits) level = std::max(level, qubit_depth[q]);
    ++level;
    for (unsigned q : op.qubits) qubit_depth[q] = level;
    depth = std::max(depth, level);
  }
  return depth;
}

void Circuit::require_valid_targets(const std::vector<unsigned>& qubits) const {
  PTSBE_REQUIRE(!qubits.empty(), "operation needs at least one target qubit");
  std::set<unsigned> distinct(qubits.begin(), qubits.end());
  PTSBE_REQUIRE(distinct.size() == qubits.size(),
                "operation target qubits must be distinct");
  for (unsigned q : qubits)
    PTSBE_REQUIRE(q < num_qubits_, "target qubit out of range");
}

Circuit& Circuit::gate(std::string name, const Matrix& matrix,
                       std::vector<unsigned> qubits, std::vector<double> params) {
  require_valid_targets(qubits);
  const std::size_t dim = std::size_t{1} << qubits.size();
  PTSBE_REQUIRE(matrix.rows() == dim && matrix.cols() == dim,
                "gate matrix dimension must be 2^arity");
  Operation op;
  op.kind = OpKind::kGate;
  op.name = std::move(name);
  op.qubits = std::move(qubits);
  op.params = std::move(params);
  op.matrix = matrix;
  ops_.push_back(std::move(op));
  return *this;
}

Circuit& Circuit::measure(unsigned q) {
  require_valid_targets({q});
  Operation op;
  op.kind = OpKind::kMeasure;
  op.name = "measure";
  op.qubits = {q};
  ops_.push_back(std::move(op));
  return *this;
}

Circuit& Circuit::measure_all() {
  for (unsigned q = 0; q < num_qubits_; ++q) measure(q);
  return *this;
}

Circuit& Circuit::append(const Circuit& other,
                         const std::vector<unsigned>& qubit_map) {
  PTSBE_REQUIRE(qubit_map.size() >= other.num_qubits(),
                "qubit map must cover the appended circuit's qubits");
  unsigned max_target = 0;
  for (unsigned i = 0; i < other.num_qubits(); ++i)
    max_target = std::max(max_target, qubit_map[i]);
  num_qubits_ = std::max(num_qubits_, max_target + 1);
  for (const Operation& op : other.ops()) {
    Operation mapped = op;
    for (unsigned& q : mapped.qubits) q = qubit_map[q];
    if (mapped.kind == OpKind::kGate)
      require_valid_targets(mapped.qubits);
    ops_.push_back(std::move(mapped));
  }
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  std::vector<unsigned> idmap(other.num_qubits());
  for (unsigned i = 0; i < other.num_qubits(); ++i) idmap[i] = i;
  return append(other, idmap);
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit(" << num_qubits_ << " qubits, " << ops_.size() << " ops)\n";
  for (const Operation& op : ops_) {
    os << "  " << op.name;
    for (unsigned q : op.qubits) os << ' ' << q;
    if (!op.params.empty()) {
      os << " (";
      for (std::size_t i = 0; i < op.params.size(); ++i)
        os << (i ? ", " : "") << op.params[i];
      os << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ptsbe
