#pragma once

/// \file circuit.hpp
/// \brief Circuit intermediate representation.
///
/// A `Circuit` is an ordered list of operations on `num_qubits()` qubits.
/// Coherent gates carry their unitary matrix; measurement records which
/// qubits appear (in which order) in the classical shot value. Noise is *not*
/// part of the circuit IR — a `NoiseModel` (see ptsbe/noise) is bound to a
/// circuit to produce the noisy program that trajectory simulation and PTS
/// operate on. This mirrors the paper's Fig. 2: the coherent skeleton is
/// deterministic; noise sites are attached per gate.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe {

/// Kind of circuit operation.
enum class OpKind : std::uint8_t {
  kGate,     ///< Coherent unitary on 1..k qubits.
  kMeasure,  ///< Computational-basis measurement of one qubit (terminal).
};

/// One operation in a circuit.
struct Operation {
  OpKind kind = OpKind::kGate;
  std::string name;              ///< Mnemonic ("h", "cx", "measure", custom).
  std::vector<unsigned> qubits;  ///< Targets; first listed = LSB of `matrix`.
  std::vector<double> params;    ///< Rotation angles etc. (documentation only).
  Matrix matrix;                 ///< Unitary for kGate (2^k × 2^k); empty otherwise.

  /// Number of qubits this operation touches.
  [[nodiscard]] std::size_t arity() const noexcept { return qubits.size(); }
};

/// Ordered operation list with builder helpers.
class Circuit {
 public:
  /// Circuit on `num_qubits` qubits (may be 0 for incremental building).
  explicit Circuit(unsigned num_qubits = 0) : num_qubits_(num_qubits) {}

  [[nodiscard]] unsigned num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const std::vector<Operation>& ops() const noexcept { return ops_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  /// Count of coherent gate operations (excludes measurements).
  [[nodiscard]] std::size_t gate_count() const noexcept;

  /// Qubits listed by measurement operations, in program order; empty means
  /// "measure all qubits in index order" by convention of the samplers.
  [[nodiscard]] std::vector<unsigned> measured_qubits() const;

  /// Greedy moment (layer) count — a depth estimate for reporting.
  [[nodiscard]] std::size_t depth() const;

  /// Append an arbitrary unitary on the given qubits (first listed = LSB).
  Circuit& gate(std::string name, const Matrix& matrix,
                std::vector<unsigned> qubits, std::vector<double> params = {});

  // --- single-qubit builders -------------------------------------------
  Circuit& x(unsigned q) { return gate("x", gates::X(), {q}); }
  Circuit& y(unsigned q) { return gate("y", gates::Y(), {q}); }
  Circuit& z(unsigned q) { return gate("z", gates::Z(), {q}); }
  Circuit& h(unsigned q) { return gate("h", gates::H(), {q}); }
  Circuit& s(unsigned q) { return gate("s", gates::S(), {q}); }
  Circuit& sdg(unsigned q) { return gate("sdg", gates::Sdg(), {q}); }
  Circuit& t(unsigned q) { return gate("t", gates::T(), {q}); }
  Circuit& tdg(unsigned q) { return gate("tdg", gates::Tdg(), {q}); }
  Circuit& sx(unsigned q) { return gate("sx", gates::SX(), {q}); }
  Circuit& sxdg(unsigned q) { return gate("sxdg", gates::SXdg(), {q}); }
  Circuit& sy(unsigned q) { return gate("sy", gates::SY(), {q}); }
  Circuit& sydg(unsigned q) { return gate("sydg", gates::SYdg(), {q}); }
  Circuit& rx(unsigned q, double th) { return gate("rx", gates::RX(th), {q}, {th}); }
  Circuit& ry(unsigned q, double th) { return gate("ry", gates::RY(th), {q}, {th}); }
  Circuit& rz(unsigned q, double th) { return gate("rz", gates::RZ(th), {q}, {th}); }
  Circuit& p(unsigned q, double th) { return gate("p", gates::P(th), {q}, {th}); }

  // --- two-qubit builders ----------------------------------------------
  Circuit& cx(unsigned control, unsigned target) {
    return gate("cx", gates::CX(), {control, target});
  }
  Circuit& cz(unsigned a, unsigned b) { return gate("cz", gates::CZ(), {a, b}); }
  Circuit& cy(unsigned control, unsigned target) {
    return gate("cy", gates::CY(), {control, target});
  }
  Circuit& swap(unsigned a, unsigned b) {
    return gate("swap", gates::SWAP(), {a, b});
  }

  /// Terminal measurement of qubit `q`; shot bit order follows call order.
  Circuit& measure(unsigned q);

  /// Measure every qubit, index order.
  Circuit& measure_all();

  /// Append all operations of `other` with its qubit i mapped to
  /// `qubit_map[i]`. Grows this circuit's width as needed.
  Circuit& append(const Circuit& other, const std::vector<unsigned>& qubit_map);

  /// Append `other` verbatim (identity qubit map).
  Circuit& append(const Circuit& other);

  /// Human-readable multiline listing.
  [[nodiscard]] std::string to_string() const;

 private:
  void require_valid_targets(const std::vector<unsigned>& qubits) const;

  unsigned num_qubits_;
  std::vector<Operation> ops_;
};

}  // namespace ptsbe
