#pragma once

/// \file fusion.hpp
/// \brief Gate-fusion pass over the circuit IR.
///
/// Trajectory preparation cost is dominated by full sweeps over the
/// exponentially large state, one per gate. Runs of adjacent gates whose
/// supports coincide can be collapsed into a single small matrix *before*
/// the sweep, trading cheap 2×2/4×4 products for expensive O(2^n) passes.
/// The pass fuses
///   - runs of single-qubit gates on the same qubit,
///   - runs of two-qubit gates on the same (unordered) pair,
///   - single-qubit gates into an adjacent two-qubit gate containing their
///     qubit (in either direction),
/// where "adjacent" means no intervening operation touches the merged
/// support. Gates only commute past operations on disjoint qubits, which the
/// last-writer bookkeeping below tracks exactly.
///
/// Fusion must never move work across a point where something *observes or
/// perturbs* the state mid-circuit: measurement operations, and — in the
/// noisy-program setting — noise sites. Callers mark those boundaries via
/// the `barrier_after` predicate; `build_exec_plan` (ptsbe/core/exec_plan.hpp)
/// derives the predicate from a NoisyCircuit's sites so fused preparation is
/// mathematically equivalent to the unfused sweep, trajectory by trajectory
/// (bitwise only up to floating-point reassociation of the gate products).

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"

namespace ptsbe {

/// True when there is a fusion barrier immediately after original op `i`
/// (e.g. a noise site fires there). Null predicate = no extra barriers.
using BarrierAfterFn = std::function<bool(std::size_t)>;

/// Fuse a run of gate operations containing no barriers. Every element of
/// `run` must be a kGate op. The returned list applied in order is
/// mathematically identical to `run` applied in order, with fused ops named
/// "fused" and carrying no params.
[[nodiscard]] std::vector<Operation> fuse_gate_run(
    std::span<const Operation> run);

/// Fuse an entire circuit. Measurement ops are kept verbatim and act as
/// barriers, as does every index where `barrier_after(i)` is true (indices
/// refer to the *input* circuit's op list).
[[nodiscard]] Circuit fuse_circuit(const Circuit& circuit,
                                   const BarrierAfterFn& barrier_after = {});

}  // namespace ptsbe
