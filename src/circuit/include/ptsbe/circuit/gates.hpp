#pragma once

/// \file gates.hpp
/// \brief Standard gate library (universal gate set).
///
/// All matrices are returned by value as small `Matrix` objects in the
/// computational basis, qubit 0 = least-significant bit. Two-qubit matrices
/// are ordered so the *first* listed qubit of the operation is the
/// least-significant index of the 4×4 matrix.

#include <string>

#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe::gates {

/// 2×2 identity.
Matrix I();
/// Pauli-X.
Matrix X();
/// Pauli-Y.
Matrix Y();
/// Pauli-Z.
Matrix Z();
/// Hadamard.
Matrix H();
/// Phase gate S = diag(1, i).
Matrix S();
/// S†.
Matrix Sdg();
/// T = diag(1, e^{iπ/4}).
Matrix T();
/// T†.
Matrix Tdg();
/// √X — the principal square root of X; equals H·S·H.
Matrix SX();
/// (√X)†.
Matrix SXdg();
/// √Y = S·√X·S†.
Matrix SY();
/// (√Y)†.
Matrix SYdg();
/// Rotation about X: exp(-i θ X / 2).
Matrix RX(double theta);
/// Rotation about Y: exp(-i θ Y / 2).
Matrix RY(double theta);
/// Rotation about Z: exp(-i θ Z / 2).
Matrix RZ(double theta);
/// Phase gate diag(1, e^{iθ}).
Matrix P(double theta);
/// General single-qubit U(θ, φ, λ) (OpenQASM u3 convention).
Matrix U3(double theta, double phi, double lambda);

/// CNOT with control = first qubit (LSB), target = second qubit.
Matrix CX();
/// Controlled-Z (symmetric).
Matrix CZ();
/// Controlled-Y, control = first qubit.
Matrix CY();
/// SWAP.
Matrix SWAP();
/// iSWAP.
Matrix ISWAP();

/// Single-qubit Pauli by index: 0 → I, 1 → X, 2 → Y, 3 → Z.
Matrix pauli(unsigned index);

/// Name of Pauli index ("I", "X", "Y", "Z").
std::string pauli_name(unsigned index);

}  // namespace ptsbe::gates
