#include "ptsbe/circuit/fusion.hpp"

#include <algorithm>
#include <utility>

#include "ptsbe/common/error.hpp"

namespace ptsbe {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Expand a 2×2 matrix to 4×4 acting on one slot of a two-qubit support.
/// Slot 0 is the first listed qubit (= LSB of the 4×4, matching the kernel
/// convention), slot 1 the second.
Matrix expand_to_pair(const Matrix& u, unsigned slot) {
  return slot == 0 ? kron(Matrix::identity(2), u)
                   : kron(u, Matrix::identity(2));
}

/// Reindex a 4×4 matrix expressed in qubit order (b, a) into order (a, b):
/// swap the two index bits on rows and columns.
Matrix swap_pair_order(const Matrix& m) {
  const auto flip = [](std::size_t i) { return ((i & 1) << 1) | (i >> 1); };
  Matrix out(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out(flip(r), flip(c)) = m(r, c);
  return out;
}

/// An op under construction: `matrix`/`qubits` as in Operation, `live`
/// false once the op has been absorbed into a later one.
struct PendingOp {
  Matrix matrix;
  std::vector<unsigned> qubits;
  bool fused = false;  ///< True once at least two source ops were merged.
  bool live = true;
  std::string name;
  std::vector<double> params;
};

class RunFuser {
 public:
  void add(const Operation& op) {
    PTSBE_REQUIRE(op.kind == OpKind::kGate,
                  "fuse_gate_run expects gate operations only");
    if (op.arity() == 1)
      add1(op);
    else if (op.arity() == 2)
      add2(op);
    else
      push(op);  // k>2-qubit gates pass through unfused.
  }

  [[nodiscard]] std::vector<Operation> take() {
    std::vector<Operation> out;
    out.reserve(ops_.size());
    for (PendingOp& p : ops_) {
      if (!p.live) continue;
      Operation op;
      op.kind = OpKind::kGate;
      op.name = p.fused ? "fused" : std::move(p.name);
      op.qubits = std::move(p.qubits);
      op.params = p.fused ? std::vector<double>{} : std::move(p.params);
      op.matrix = std::move(p.matrix);
      out.push_back(std::move(op));
    }
    return out;
  }

 private:
  void add1(const Operation& op) {
    const unsigned q = op.qubits[0];
    const std::size_t last = last_op(q);
    if (last != kNone) {
      PendingOp& target = ops_[last];
      if (target.qubits.size() == 1) {
        target.matrix = op.matrix * target.matrix;
        target.fused = true;
        return;
      }
      if (target.qubits.size() == 2) {
        const unsigned slot = target.qubits[0] == q ? 0 : 1;
        target.matrix = expand_to_pair(op.matrix, slot) * target.matrix;
        target.fused = true;
        return;
      }
    }
    push(op);
  }

  void add2(const Operation& op) {
    const unsigned a = op.qubits[0], b = op.qubits[1];
    const std::size_t la = last_op(a), lb = last_op(b);
    // Same unordered pair: merge into the existing op, keeping its order.
    if (la != kNone && la == lb && ops_[la].qubits.size() == 2) {
      PendingOp& target = ops_[la];
      const bool same_order = target.qubits[0] == a;
      const Matrix& m = op.matrix;
      target.matrix = (same_order ? m : swap_pair_order(m)) * target.matrix;
      target.fused = true;
      return;
    }
    // Otherwise absorb any trailing single-qubit gates on a and b. They are
    // each the last op on their qubit, so commuting them forward into this
    // gate crosses only disjoint-support operations.
    Matrix m = op.matrix;
    bool fused = false;
    for (unsigned slot = 0; slot < 2; ++slot) {
      const std::size_t last = last_op(op.qubits[slot]);
      if (last == kNone || ops_[last].qubits.size() != 1) continue;
      m = m * expand_to_pair(ops_[last].matrix, slot);
      ops_[last].live = false;
      fused = true;
    }
    Operation merged = op;
    merged.matrix = std::move(m);
    const std::size_t idx = push(merged);
    ops_[idx].fused = fused;
    if (fused) {
      ops_[idx].name = "fused";
      ops_[idx].params.clear();
    }
  }

  /// Index of the newest live op touching `q`, or kNone.
  [[nodiscard]] std::size_t last_op(unsigned q) const {
    if (q >= last_.size() || last_[q] == kNone || !ops_[last_[q]].live)
      return kNone;
    return last_[q];
  }

  std::size_t push(const Operation& op) {
    PendingOp p;
    p.matrix = op.matrix;
    p.qubits = op.qubits;
    p.name = op.name;
    p.params = op.params;
    ops_.push_back(std::move(p));
    const std::size_t idx = ops_.size() - 1;
    for (unsigned q : op.qubits) {
      if (q >= last_.size()) last_.resize(q + 1, kNone);
      last_[q] = idx;
    }
    return idx;
  }

  std::vector<PendingOp> ops_;
  std::vector<std::size_t> last_;  // qubit → index of last op touching it
};

}  // namespace

std::vector<Operation> fuse_gate_run(std::span<const Operation> run) {
  RunFuser fuser;
  for (const Operation& op : run) fuser.add(op);
  return fuser.take();
}

Circuit fuse_circuit(const Circuit& circuit, const BarrierAfterFn& barrier_after) {
  Circuit out(circuit.num_qubits());
  std::vector<Operation> segment;
  const auto flush = [&] {
    for (Operation& op : fuse_gate_run(segment))
      out.gate(std::move(op.name), op.matrix, std::move(op.qubits),
               std::move(op.params));
    segment.clear();
  };
  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kMeasure) {
      flush();
      out.measure(ops[i].qubits.front());
    } else {
      segment.push_back(ops[i]);
    }
    if (barrier_after && barrier_after(i)) flush();
  }
  flush();
  return out;
}

}  // namespace ptsbe
