#include "ptsbe/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "ptsbe/io/ptq.hpp"

namespace ptsbe::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw runtime_failure(std::string(what) + ": " + std::strerror(errno));
}

void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// Wire error code for an engine-side admission refusal.
const char* reject_errc(serve::RejectReason reason) {
  switch (reason) {
    case serve::RejectReason::kTenantQuota:
      return errc::kQuota;
    case serve::RejectReason::kShutdown:
      return errc::kShuttingDown;
    case serve::RejectReason::kQueueFull:
    case serve::RejectReason::kNone:
      break;
  }
  return errc::kRejected;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)),
                                      engine_(config_.engine) {
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw runtime_failure("bad listen address '" + config_.listen_host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno(("bind/listen " + endpoint()).c_str());
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

std::string Server::endpoint() const {
  return config_.listen_host + ':' + std::to_string(port_);
}

void Server::begin_drain() { draining_.store(true); }

bool Server::draining() const noexcept { return draining_.load(); }

void Server::stop() {
  MutexLock lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;

  begin_drain();
  stopping_.store(true);
  // Wake the accept loop's poll().
  const char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  accept_thread_.join();

  // Drain: every admitted job finishes and streams its frames; connection
  // threads then observe draining_ on their next idle tick and exit.
  engine_.shutdown();
  reap_connections(/*join_all=*/true);

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void Server::reap_connections(bool join_all) {
  std::list<Connection> finished;
  {
    MutexLock lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || it->done->load()) {
        finished.splice(finished.end(), conns_, it++);
      } else {
        ++it;
      }
    }
  }
  for (Connection& conn : finished) conn.thread.join();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;  // listener is gone; nothing sane left to do
    }
    if (stopping_.load() || (fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining_.load()) {
      ::close(fd);  // refusing new work; existing connections drain
      continue;
    }

    reap_connections(/*join_all=*/false);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, done] {
      serve_connection(fd);
      done->store(true);
    });
    MutexLock lock(conns_mutex_);
    conns_.push_back(Connection{std::move(thread), std::move(done)});
  }
}

void Server::serve_connection(int fd) {
  set_recv_timeout(fd, config_.idle_poll_ms);
  FdStream stream(fd, config_.max_payload, config_.frame_timeout_ms);

  try {
    Frame frame;
    for (;;) {
      FdStream::ReadStatus status;
      try {
        status = stream.read_frame(frame);
      } catch (const ProtocolError& e) {
        // Malformed framing: reply with structure, then close — after a
        // framing violation the byte stream cannot be resynchronised.
        stream.write_frame(Frame{"ERROR",
                                 {e.code()},
                                 encode_error({e.what(), 0, 0})});
        return;
      }
      if (status == FdStream::ReadStatus::kEof) return;
      if (status == FdStream::ReadStatus::kIdle) {
        if (draining_.load()) return;
        continue;
      }

      if (frame.type == "PING") {
        stream.write_frame(Frame{"PONG", {}, ""});
      } else if (frame.type == "STATS") {
        stream.write_frame(
            Frame{"STATS", {}, serve::stats_to_json(engine_.stats())});
      } else if (frame.type == "SUBMIT") {
        if (!handle_submit(stream, frame)) return;
      } else {
        stream.write_frame(
            Frame{"ERROR",
                  {errc::kProtocol},
                  encode_error({"unknown frame type '" + frame.type + "'",
                                0, 0})});
      }
    }
  } catch (const std::exception&) {
    // Peer vanished mid-write (or an unexpected failure): drop the
    // connection; the engine-side job, if any, already reached a terminal
    // state before we got here.
  }
}

bool Server::handle_submit(FdStream& stream, Frame& frame) {
  const auto wire_error = [&stream](const char* code, WireError error) {
    stream.write_frame(Frame{"ERROR", {code}, encode_error(error)});
  };

  if (frame.args.size() != 2) {
    wire_error(errc::kProtocol,
               {"SUBMIT wants '<tenant> <priority>' args", 0, 0});
    return true;
  }

  serve::JobRequest job;
  try {
    job = decode_submit_payload(frame.payload);
    job.priority = serve::priority_from_string(frame.args[1]);
  } catch (const ProtocolError& e) {
    wire_error(e.code().c_str(), {e.what(), 0, 0});
    return true;
  } catch (const std::exception& e) {  // priority_from_string
    wire_error(errc::kProtocol, {e.what(), 0, 0});
    return true;
  }
  job.tenant = frame.args[0];
  if (job.source_name.empty()) job.source_name = job.tenant + ".ptq";

  // A draining server refuses new admissions with the distinct status even
  // before stop() flips the engine itself into shutdown — in-flight jobs
  // keep streaming on their own connections meanwhile.
  if (draining_.load()) {
    wire_error(errc::kShuttingDown, {"server is draining", 0, 0});
    return true;
  }

  // Kept past the move into submit(): a validation failure is classified
  // by re-parsing (failure path only — the hot path never parses twice).
  const std::string circuit_text = job.circuit_text;
  const std::string source_name = job.source_name;

  // The engine worker streams each batch straight onto this connection's
  // socket. Single-writer discipline: ACK is written *before* submit, and
  // this thread then blocks in wait() until the job is terminal, so the
  // worker is the only writer while BATCH frames flow. `num_batches` is
  // read only after wait() — the job's terminal-state handoff orders it.
  std::size_t num_batches = 0;
  job.stream_sink = [&stream, &num_batches](be::TrajectoryBatch&& batch) {
    stream.write_frame(Frame{"BATCH", {}, encode_batch(batch)});
    ++num_batches;
  };

  stream.write_frame(Frame{"ACK", {}, ""});
  serve::JobHandle handle = engine_.submit(std::move(job));

  serve::JobStatus status = handle.status();
  if (status == serve::JobStatus::kRejected) {
    wire_error(reject_errc(handle.reject_reason()), {handle.error(), 0, 0});
    return true;
  }
  if (status != serve::JobStatus::kFailed) {
    try {
      handle.wait();
    } catch (const std::exception&) {
      // kFailed/kCancelled — classified below via status().
    }
    status = handle.status();
  }

  if (status == serve::JobStatus::kDone) {
    const RunResult& run = handle.result();
    ResultMeta meta;
    meta.job_id = handle.id();
    meta.strategy = run.strategy;
    meta.backend = run.backend;
    meta.weighting = run.weighting;
    meta.schedule_requested = run.schedule_requested;
    meta.schedule_executed = run.schedule_executed;
    meta.num_specs = run.num_specs;
    meta.num_batches = num_batches;
    meta.plan_cache_hit = handle.plan_cache_hit();
    stream.write_frame(Frame{"RESULT", {}, encode_result_meta(meta)});
    stream.write_frame(Frame{"DONE", {}, ""});
    return true;
  }

  // Failed (or cancelled) job: emit a structured error. Parse failures
  // carry ParseError's line:column, 1-based within the `.ptq` section.
  WireError error{handle.error(), 0, 0};
  const char* code = errc::kFailed;
  try {
    (void)io::parse_circuit(circuit_text, source_name);
  } catch (const io::ParseError& pe) {
    code = errc::kParse;
    error = {pe.what(), pe.line(), pe.column()};
  } catch (const std::exception&) {
    // Parsed-but-invalid programs (or non-parse validation failures) keep
    // the engine's diagnostic.
  }
  wire_error(code, error);
  return true;
}

}  // namespace ptsbe::net
