#include "ptsbe/net/shard_router.hpp"

#include <algorithm>

#include "ptsbe/common/error.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/serve/plan_cache.hpp"

namespace ptsbe::net {

namespace {

/// Ring position of virtual node `index` of `endpoint`.
std::uint64_t vnode_hash(const std::string& endpoint, std::size_t index) {
  return ShardRouter::hash64(endpoint + '#' + std::to_string(index));
}

}  // namespace

ShardRouter::ShardRouter(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  PTSBE_REQUIRE(virtual_nodes > 0, "ShardRouter needs at least 1 vnode");
}

void ShardRouter::add_endpoint(const std::string& endpoint) {
  PTSBE_REQUIRE(!endpoint.empty(), "shard endpoint must be non-empty");
  bool added = false;
  for (std::size_t i = 0; i < virtual_nodes_; ++i) {
    // On a (astronomically unlikely) vnode hash collision the earlier
    // endpoint keeps the slot; the ring stays consistent either way.
    added |= ring_.emplace(vnode_hash(endpoint, i), endpoint).second;
  }
  if (added) ++endpoint_count_;
}

void ShardRouter::remove_endpoint(const std::string& endpoint) {
  bool removed = false;
  for (std::size_t i = 0; i < virtual_nodes_; ++i) {
    const auto it = ring_.find(vnode_hash(endpoint, i));
    if (it != ring_.end() && it->second == endpoint) {
      ring_.erase(it);
      removed = true;
    }
  }
  if (removed) --endpoint_count_;
}

const std::string& ShardRouter::route(std::uint64_t fingerprint) const {
  PTSBE_REQUIRE(!ring_.empty(), "ShardRouter has no endpoints");
  auto it = ring_.lower_bound(fingerprint);
  if (it == ring_.end()) it = ring_.begin();  // clockwise wraparound
  return it->second;
}

std::vector<std::string> ShardRouter::endpoints() const {
  std::vector<std::string> out;
  out.reserve(endpoint_count_);
  for (const auto& [hash, endpoint] : ring_) {
    (void)hash;
    bool seen = false;
    for (const std::string& e : out) seen |= (e == endpoint);
    if (!seen) out.push_back(endpoint);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t ShardRouter::fingerprint(const serve::JobRequest& job) {
  const NoisyCircuit parsed =
      io::parse_circuit(job.circuit_text, job.source_name);
  return hash64(serve::plan_cache_key(io::write_circuit(parsed), job.backend,
                                      job.backend_config));
}

std::uint64_t ShardRouter::hash64(const std::string& bytes) {
  // FNV-1a 64...
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // ...plus a murmur-style avalanche: FNV alone clusters short suffix
  // differences (like "#<vnode>") in the low bits, which would clump
  // virtual nodes on the ring.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace ptsbe::net
