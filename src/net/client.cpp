#include "ptsbe/net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

namespace ptsbe::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw runtime_failure(std::string(what) + ": " + std::strerror(errno));
}

/// Connect with a hard timeout: non-blocking connect + poll, then back to
/// blocking mode. A dead endpoint (filtered port, unreachable host) fails
/// within `timeout_ms` instead of the kernel's multi-minute SYN retries.
int connect_with_timeout(const std::string& host, std::uint16_t port,
                         int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw runtime_failure("bad host address '" + host + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");

  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(("connect " + host + ':' + std::to_string(port)).c_str());
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      throw runtime_failure("connect " + host + ':' + std::to_string(port) +
                            ": timed out after " +
                            std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t len = sizeof err;
    (void)::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      throw runtime_failure("connect " + host + ':' + std::to_string(port) +
                            ": " + std::strerror(err));
    }
  }

  (void)::fcntl(fd, F_SETFL, flags);  // back to blocking I/O
  return fd;
}

void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {}
Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

void Client::close() { stream_.reset(); }

void Client::ensure_connected() {
  if (stream_) return;
  const int fd = connect_with_timeout(config_.host, config_.port,
                                      config_.connect_timeout_ms);
  set_recv_timeout(fd, config_.io_timeout_ms);
  stream_ = std::make_unique<FdStream>(fd, config_.max_payload,
                                       config_.frame_timeout_ms);
}

FdStream::ReadStatus Client::next_frame(Frame& out, const char* waiting_for) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(config_.reply_timeout_ms);
  for (;;) {
    const FdStream::ReadStatus status = stream_->read_frame(out);
    if (status != FdStream::ReadStatus::kIdle) return status;
    if (clock::now() >= deadline) {
      close();
      throw runtime_failure(std::string("timed out waiting for ") +
                            waiting_for + " from " + config_.host + ':' +
                            std::to_string(config_.port));
    }
  }
}

RemoteRun Client::submit(const serve::JobRequest& job) {
  PTSBE_REQUIRE(job.tenant.find_first_of(" \n") == std::string::npos,
                "tenant label must not contain spaces or newlines");
  ensure_connected();

  stream_->write_frame(Frame{"SUBMIT",
                             {job.tenant, serve::to_string(job.priority)},
                             encode_submit_payload(job)});

  RemoteRun out;
  std::vector<be::TrajectoryBatch> batches;
  bool acked = false;
  Frame frame;
  for (;;) {
    if (next_frame(frame, acked ? "result frames" : "ACK") ==
        FdStream::ReadStatus::kEof) {
      close();
      throw runtime_failure("server closed the connection mid-job");
    }
    if (frame.type == "ERROR") {
      const std::string code =
          frame.args.empty() ? errc::kFailed : frame.args.front();
      const WireError error = decode_error(frame.payload);
      // Framing errors poison the stream; engine-level failures don't.
      if (code == errc::kProtocol || code == errc::kOversize) close();
      throw RemoteError(code, error);
    }
    if (frame.type == "ACK") {
      acked = true;
    } else if (frame.type == "BATCH") {
      batches.push_back(decode_batch(frame.payload));
    } else if (frame.type == "RESULT") {
      const ResultMeta meta = decode_result_meta(frame.payload);
      out.job_id = meta.job_id;
      out.plan_cache_hit = meta.plan_cache_hit;
      out.num_batches = meta.num_batches;
      out.run.strategy = meta.strategy;
      out.run.backend = meta.backend;
      out.run.weighting = meta.weighting;
      out.run.schedule_requested = meta.schedule_requested;
      out.run.schedule_executed = meta.schedule_executed;
      out.run.num_specs = static_cast<std::size_t>(meta.num_specs);
      out.run.result.schedule = meta.schedule_executed;
    } else if (frame.type == "DONE") {
      break;
    } else {
      close();
      throw RemoteError(errc::kProtocol,
                        {"unexpected frame '" + frame.type +
                             "' during SUBMIT exchange",
                         0, 0});
    }
  }

  if (batches.size() != out.run.num_specs ||
      batches.size() != out.num_batches) {
    close();
    throw RemoteError(errc::kProtocol,
                      {"batch count mismatch: streamed " +
                           std::to_string(batches.size()) + ", RESULT says " +
                           std::to_string(out.num_batches) + " of " +
                           std::to_string(out.run.num_specs) + " specs",
                       0, 0});
  }

  // Reassemble completion-order frames into spec order — the exact
  // placement `be::execute` uses, so the materialised result is
  // bit-identical to the local path.
  out.run.result.batches.resize(batches.size());
  std::vector<bool> placed(batches.size(), false);
  for (be::TrajectoryBatch& batch : batches) {
    const std::size_t index = batch.spec_index;
    if (index >= placed.size() || placed[index]) {
      close();
      throw RemoteError(errc::kProtocol,
                        {"bad batch spec_index " + std::to_string(index),
                         0, 0});
    }
    placed[index] = true;
    out.run.result.batches[index] = std::move(batch);
  }
  return out;
}

std::string Client::stats_json() {
  ensure_connected();
  stream_->write_frame(Frame{"STATS", {}, ""});
  Frame frame;
  if (next_frame(frame, "STATS reply") == FdStream::ReadStatus::kEof) {
    close();
    throw runtime_failure("server closed the connection");
  }
  if (frame.type != "STATS") {
    close();
    throw RemoteError(errc::kProtocol,
                      {"expected STATS reply, got '" + frame.type + "'", 0,
                       0});
  }
  return std::move(frame.payload);
}

void Client::ping() {
  ensure_connected();
  stream_->write_frame(Frame{"PING", {}, ""});
  Frame frame;
  if (next_frame(frame, "PONG") == FdStream::ReadStatus::kEof ||
      frame.type != "PONG") {
    close();
    throw runtime_failure("ping failed");
  }
}

// ---------------------------------------------------------------------------
// ShardedClient

ShardedClient::ShardedClient(const std::vector<std::string>& endpoints,
                             ClientConfig base, std::size_t virtual_nodes)
    : base_(std::move(base)), router_(virtual_nodes) {
  PTSBE_REQUIRE(!endpoints.empty(), "ShardedClient needs >= 1 endpoint");
  for (const std::string& endpoint : endpoints) {
    router_.add_endpoint(endpoint);
  }
}

Client& ShardedClient::shard(const std::string& endpoint) {
  const auto it = clients_.find(endpoint);
  if (it != clients_.end()) return it->second;

  const std::size_t colon = endpoint.rfind(':');
  PTSBE_REQUIRE(colon != std::string::npos && colon + 1 < endpoint.size(),
                "endpoint must be host:port, got '" + endpoint + "'");
  const std::string_view port_tok =
      std::string_view(endpoint).substr(colon + 1);
  unsigned port = 0;
  const auto [ptr, ec] =
      std::from_chars(port_tok.data(), port_tok.data() + port_tok.size(), port);
  PTSBE_REQUIRE(ec == std::errc{} && ptr == port_tok.data() + port_tok.size() &&
                    port >= 1 && port <= 65535,
                "endpoint port must be a number in [1, 65535], got '" +
                    endpoint + "'");
  ClientConfig config = base_;
  config.host = endpoint.substr(0, colon);
  config.port = static_cast<std::uint16_t>(port);
  return clients_.emplace(endpoint, Client(std::move(config))).first->second;
}

RemoteRun ShardedClient::submit(const serve::JobRequest& job) {
  return shard(router_.route(job)).submit(job);
}

std::string ShardedClient::stats_json(const std::string& endpoint) {
  return shard(endpoint).stats_json();
}

}  // namespace ptsbe::net
