#pragma once

/// \file client.hpp
/// \brief Blocking clients for the `ptsbe::net` wire protocol.
///
/// `Client` speaks to one daemon; `ShardedClient` fans a fleet of daemons
/// out behind a `ShardRouter`, so N processes present the single-service
/// interface the ROADMAP's scale-out item asks for. Both reconstruct a
/// full `RunResult` from the streamed frames: BATCH frames are reassembled
/// by `spec_index` into spec order — exactly where `be::execute` places
/// them — so the records a remote caller sees are bit-identical to a local
/// `Pipeline::run` (timings excepted: wall-clock splits are measured, not
/// computed, and are not transported).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ptsbe/net/protocol.hpp"
#include "ptsbe/net/shard_router.hpp"
#include "ptsbe/serve/engine.hpp"

namespace ptsbe::net {

/// Connection + patience knobs for one client.
struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Bound (ms) on establishing the TCP connection — a dead endpoint
  /// fails fast instead of hanging (pinned by the dead-port ctest smoke).
  int connect_timeout_ms = 5000;
  /// Receive-timeout tick (ms); a silent server fails a call after
  /// `frame_timeout_ms` of mid-frame stall.
  int io_timeout_ms = 250;
  int frame_timeout_ms = 30000;
  std::size_t max_payload = kDefaultMaxPayload;
  /// Bound (ms) on waiting for the first reply frame of a call (covers
  /// queue time ahead of slow jobs; raise for saturated servers).
  int reply_timeout_ms = 120000;
};

/// A structured failure the server reported (ERROR frame), or a local
/// protocol violation. `code()` is an `errc` string; parse failures carry
/// `line()`/`column()` (1-based within the submitted `.ptq` text).
class RemoteError : public runtime_failure {
 public:
  RemoteError(std::string code, const WireError& error)
      : runtime_failure(error.message),
        code_(std::move(code)),
        line_(error.line),
        column_(error.column) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::string code_;
  std::size_t line_;
  std::size_t column_;
};

/// One remote job's outcome: the reconstructed run plus wire-level
/// diagnostics.
struct RemoteRun {
  std::uint64_t job_id = 0;
  bool plan_cache_hit = false;
  std::size_t num_batches = 0;
  RunResult run;
};

/// Blocking client for one daemon. Connects lazily on first call; not
/// thread-safe (one connection, one in-flight call).
class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  /// Run one job remotely and reconstruct its RunResult.
  /// \throws RemoteError for server-reported failures (rejections, quota,
  ///         parse errors, drain) and protocol violations;
  ///         runtime_failure when the endpoint is unreachable.
  RemoteRun submit(const serve::JobRequest& job);

  /// The server's EngineStats snapshot as JSON (per-tenant included).
  std::string stats_json();

  /// Liveness round-trip. \throws runtime_failure when unreachable.
  void ping();

  /// Drop the connection (reconnects lazily on the next call).
  void close();

  [[nodiscard]] const ClientConfig& config() const noexcept {
    return config_;
  }

 private:
  void ensure_connected();
  /// Read the next frame, failing after reply_timeout_ms of idle.
  FdStream::ReadStatus next_frame(Frame& out, const char* waiting_for);

  ClientConfig config_;
  std::unique_ptr<FdStream> stream_;
};

/// Fleet client: routes every job to the shard owning its plan-cache
/// fingerprint, so repeat circuits always hit the same daemon's ExecPlan
/// cache. Connections are opened lazily per endpoint. Not thread-safe.
class ShardedClient {
 public:
  /// \param endpoints `host:port` shard addresses (≥1).
  /// \param base connection knobs applied to every shard (host/port
  ///        fields are overridden per endpoint).
  explicit ShardedClient(const std::vector<std::string>& endpoints,
                         ClientConfig base = {},
                         std::size_t virtual_nodes = 64);

  /// Route `job` to its shard and run it there.
  RemoteRun submit(const serve::JobRequest& job);

  /// The shard a job would be routed to (diagnostics / tests).
  [[nodiscard]] const std::string& route(const serve::JobRequest& job) const {
    return router_.route(job);
  }

  /// Stats JSON from one shard.
  std::string stats_json(const std::string& endpoint);

  [[nodiscard]] std::vector<std::string> endpoints() const {
    return router_.endpoints();
  }

 private:
  Client& shard(const std::string& endpoint);

  ClientConfig base_;
  ShardRouter router_;
  std::map<std::string, Client> clients_;
};

}  // namespace ptsbe::net
