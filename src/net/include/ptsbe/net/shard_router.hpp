#pragma once

/// \file shard_router.hpp
/// \brief Consistent-hash routing of jobs to daemon shards, keyed by the
/// plan-cache canonical-text fingerprint.
///
/// N `ptsbe_netd` processes behave as one service when every client routes
/// a given circuit to the same shard: that shard's LRU `ExecPlan` cache
/// then sees every repeat of the circuit (cache affinity), while distinct
/// circuits spread across the fleet. The router hashes the *plan-cache
/// key* — canonical `.ptq` text + backend name + BackendConfig — so two
/// textually different submissions of the same circuit (comments,
/// whitespace) still land on the same shard, exactly mirroring how
/// `serve::PlanCache` would coalesce them locally.
///
/// Standard consistent-hash ring with virtual nodes: each endpoint is
/// hashed onto the ring `virtual_nodes` times and a fingerprint routes to
/// the first node clockwise. Adding or removing one shard remaps only
/// ~1/N of the keyspace — no full fleet reshuffle on scale-out.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ptsbe/serve/engine.hpp"

namespace ptsbe::net {

/// Consistent-hash ring over `host:port` endpoint strings. Not
/// thread-safe for concurrent mutation; build once, route from anywhere.
class ShardRouter {
 public:
  /// \param virtual_nodes ring points per endpoint (more = smoother key
  /// distribution at slightly larger ring; 64 keeps the max/min shard
  /// load ratio under ~1.3 for small fleets).
  explicit ShardRouter(std::size_t virtual_nodes = 64);

  /// Add a shard endpoint (idempotent). \throws precondition_error when
  /// `endpoint` is empty.
  void add_endpoint(const std::string& endpoint);
  /// Remove a shard endpoint (no-op when absent).
  void remove_endpoint(const std::string& endpoint);

  /// Endpoint owning `fingerprint`. \throws precondition_error when the
  /// ring is empty.
  [[nodiscard]] const std::string& route(std::uint64_t fingerprint) const;

  /// Convenience: route a job directly.
  [[nodiscard]] const std::string& route(const serve::JobRequest& job) const {
    return route(fingerprint(job));
  }

  /// Distinct endpoints currently on the ring (sorted).
  [[nodiscard]] std::vector<std::string> endpoints() const;
  [[nodiscard]] std::size_t size() const noexcept {
    return endpoint_count_;
  }

  /// Routing fingerprint of a job: 64-bit hash of its plan-cache key
  /// (canonical circuit text + backend + config). \throws io::ParseError
  /// when the circuit text is malformed — route only validated jobs.
  [[nodiscard]] static std::uint64_t fingerprint(const serve::JobRequest& job);

  /// FNV-1a 64 with an avalanche finaliser — stable across platforms, so
  /// every client and every daemon agree on shard placement.
  [[nodiscard]] static std::uint64_t hash64(const std::string& bytes);

 private:
  std::size_t virtual_nodes_;
  std::size_t endpoint_count_ = 0;
  std::map<std::uint64_t, std::string> ring_;
};

}  // namespace ptsbe::net
