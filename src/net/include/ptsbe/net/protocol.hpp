#pragma once

/// \file protocol.hpp
/// \brief The `ptsbe::net` wire protocol — length-prefixed, line-oriented
/// frames carrying `.ptq` jobs and streamed trajectory batches.
///
/// Every frame is one ASCII header line plus a raw payload:
///
/// ```
/// <TYPE> [<arg> ...] <payload-length>\n
/// <payload-length bytes of payload>
/// ```
///
/// The header line is at most `kMaxHeaderBytes` bytes; tokens are
/// space-separated and the *last* token is always the payload length in
/// decimal bytes. Frames the client sends:
///
///  - `SUBMIT <tenant> <priority> <len>` — one job. The payload is zero or
///    more `key=value` job-config lines, then a line containing exactly
///    `circuit`, then the `.ptq` text verbatim (so `ParseError`
///    line:column positions are relative to the `.ptq` section).
///  - `STATS 0` — request the engine's per-tenant counters as JSON.
///  - `PING 0` — liveness probe.
///
/// Frames the server sends (per SUBMIT, in order):
///
///  - `ACK 0` — the frame was read and the job is being admitted.
///  - `BATCH <len>` — one serialised `be::TrajectoryBatch`, streamed off
///    the engine's `BatchSink` path as the worker completes it
///    (completion order; reassemble by `spec_index`).
///  - `RESULT <len>` — run metadata (`key=value` lines: job_id, strategy,
///    backend, weighting, schedules, num_specs, num_batches,
///    plan_cache_hit).
///  - `DONE 0` — job complete.
///  - `ERROR <code> <len>` — structured failure instead of the above; the
///    payload is `key=value` lines (`message=` always; `line=`/`column=`
///    for parse errors, 1-based within the `.ptq` section of the SUBMIT
///    payload). Codes are in `ptsbe::net::errc`.
///  - `STATS <len>` / `PONG 0` — replies to STATS / PING.
///
/// Batch payloads are little-endian fixed-width binary (doubles as raw
/// IEEE-754 bit patterns), so a batch round-trips *bit-identically* — the
/// loopback determinism matrix pins served bytes to standalone
/// `Pipeline::run`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ptsbe/common/error.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/serve/engine.hpp"

namespace ptsbe::net {

/// Protocol revision (bumped on incompatible frame changes).
inline constexpr int kProtocolVersion = 1;
/// Hard bound on one header line, including the trailing newline.
inline constexpr std::size_t kMaxHeaderBytes = 256;
/// Default bound on one frame payload (servers reject bigger with
/// `errc::kOversize`; configurable per server).
inline constexpr std::size_t kDefaultMaxPayload = 8u << 20;

/// ERROR-frame codes — the wire's distinct-status vocabulary.
namespace errc {
inline constexpr const char* kProtocol = "protocol";  ///< Malformed frame.
inline constexpr const char* kOversize = "oversize";  ///< Payload too large.
inline constexpr const char* kParse = "parse";  ///< Bad `.ptq` / job config.
inline constexpr const char* kRejected = "rejected";  ///< Queue full.
inline constexpr const char* kQuota = "quota";  ///< Tenant quota exhausted.
inline constexpr const char* kShuttingDown = "shutting-down";  ///< Draining.
inline constexpr const char* kFailed = "failed";  ///< Execution error.
}  // namespace errc

/// One wire frame (header type + args, raw payload).
struct Frame {
  std::string type;
  std::vector<std::string> args;
  std::string payload;
};

/// Protocol violation (malformed header, truncated payload, oversize,
/// undecodable batch). `code()` is the `errc` value a server replies with.
class ProtocolError : public runtime_failure {
 public:
  ProtocolError(std::string code, const std::string& message)
      : runtime_failure(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Buffered frame reader/writer over one connected socket. Owns the fd
/// (closed on destruction). Reads honour the fd's SO_RCVTIMEO: a timeout
/// *between* frames surfaces as kIdle (so a server can poll its drain
/// flag); a timeout *inside* a frame keeps waiting until
/// `frame_timeout_ms`, then throws — a stalled half-frame can never pin a
/// connection thread forever. Not thread-safe for concurrent reads or
/// concurrent writes; one reader plus one writer thread is fine (sockets
/// are full-duplex), which is exactly the server's streaming split.
class FdStream {
 public:
  explicit FdStream(int fd, std::size_t max_payload = kDefaultMaxPayload,
                    int frame_timeout_ms = 30000);
  ~FdStream();
  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  enum class ReadStatus {
    kFrame,  ///< `out` holds a complete frame.
    kEof,    ///< Peer closed cleanly at a frame boundary.
    kIdle,   ///< Receive timeout with no partial frame pending.
  };

  /// Read one frame. \throws ProtocolError on malformed/truncated/oversize
  /// input; runtime_failure on socket errors.
  ReadStatus read_frame(Frame& out);

  /// Write one frame (handles partial sends; MSG_NOSIGNAL).
  /// \throws runtime_failure when the peer is gone.
  void write_frame(const Frame& frame);

  /// Close the fd early (idempotent; destructor also closes).
  void close();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  /// Pull more bytes into buf_. Returns false on EOF; throws on error;
  /// loops over EINTR; surfaces receive timeouts via `timed_out`.
  bool fill(bool& timed_out);

  int fd_;
  std::size_t max_payload_;
  int frame_timeout_ms_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< Consumed prefix of buf_.
};

/// Serialise one trajectory batch as the BATCH payload (little-endian;
/// doubles bit-exact). `device_id` is deliberately not carried: it is a
/// scheduling artifact the dataset formats also drop.
[[nodiscard]] std::string encode_batch(const be::TrajectoryBatch& batch);

/// Decode a BATCH payload. \throws ProtocolError on malformed bytes.
[[nodiscard]] be::TrajectoryBatch decode_batch(std::string_view bytes);

/// Serialise the pipeline configuration of `job` (strategy/backend/
/// schedule/threads/seed + strategy-config knobs + fuse flag) as the
/// `key=value` header lines of a SUBMIT payload, followed by the circuit
/// text. `tenant`, `priority` and `stream_sink` ride elsewhere (frame args
/// / server-side) and are not encoded.
[[nodiscard]] std::string encode_submit_payload(const serve::JobRequest& job);

/// Parse a SUBMIT payload back into a JobRequest (circuit_text + config;
/// tenant/priority left at defaults for the caller to fill from the frame
/// args). \throws ProtocolError(errc::kParse) on malformed config lines.
[[nodiscard]] serve::JobRequest decode_submit_payload(std::string_view payload);

/// Run metadata carried by the RESULT frame.
struct ResultMeta {
  std::uint64_t job_id = 0;
  std::string strategy;
  std::string backend;
  be::Weighting weighting = be::Weighting::kDrawWeighted;
  be::Schedule schedule_requested = be::Schedule::kIndependent;
  be::Schedule schedule_executed = be::Schedule::kIndependent;
  std::uint64_t num_specs = 0;
  std::uint64_t num_batches = 0;
  bool plan_cache_hit = false;
};

[[nodiscard]] std::string encode_result_meta(const ResultMeta& meta);
/// \throws ProtocolError on malformed/missing fields.
[[nodiscard]] ResultMeta decode_result_meta(std::string_view payload);

/// Wire names for be::Weighting ("draw-weighted" | "probability-weighted").
[[nodiscard]] const std::string& weighting_to_string(be::Weighting weighting);
/// \throws ProtocolError for unknown names.
[[nodiscard]] be::Weighting weighting_from_string(const std::string& name);

/// `key=value` lines of an ERROR payload (message always; line/column for
/// parse errors, 1-based within the `.ptq` section of the SUBMIT payload).
struct WireError {
  std::string message;
  std::size_t line = 0;    ///< 0 = no position.
  std::size_t column = 0;  ///< 0 = no position.
};

[[nodiscard]] std::string encode_error(const WireError& error);
[[nodiscard]] WireError decode_error(std::string_view payload);

}  // namespace ptsbe::net
