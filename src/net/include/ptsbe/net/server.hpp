#pragma once

/// \file server.hpp
/// \brief TCP front-end for `serve::Engine` — the in-process half of
/// `ptsbe_netd`.
///
/// One `Server` owns one listening socket, one accept thread, and one
/// connection thread per client (the patty-daemon shape: a small
/// dependency-free POSIX service loop fronting an existing engine).
/// Frames are dispatched synchronously per connection: a SUBMIT is
/// admitted to the engine, its trajectory batches are streamed back as
/// BATCH frames straight off the engine worker's `BatchSink` (the
/// connection thread stays quiet in `JobHandle::wait` meanwhile, so the
/// socket has exactly one writer at a time), then RESULT + DONE close the
/// exchange. Served bytes are bit-identical to a local `Pipeline::run`
/// with the same config — the loopback determinism matrix in
/// `tests/test_net.cpp` pins this.
///
/// Shutdown is graceful by construction: `begin_drain()` flips a flag the
/// connection threads poll on their receive-timeout ticks, the engine
/// rejects new admissions with `RejectReason::kShutdown` (surfaced on the
/// wire as `ERROR shutting-down`), and `stop()` drains every in-flight
/// job before joining the threads — no truncated result streams.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "ptsbe/common/thread_annotations.hpp"
#include "ptsbe/net/protocol.hpp"
#include "ptsbe/serve/engine.hpp"

namespace ptsbe::net {

/// Listener + engine sizing for one daemon process.
struct ServerConfig {
  /// Address to bind (IPv4 dotted quad; loopback by default).
  std::string listen_host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// The engine this server fronts (workers, queue bound, quotas, cache).
  serve::EngineConfig engine = {};
  /// Per-frame payload bound; bigger SUBMITs get `ERROR oversize`.
  std::size_t max_payload = kDefaultMaxPayload;
  /// Receive-timeout tick (ms) between frames — how often an idle
  /// connection thread re-checks the drain flag.
  int idle_poll_ms = 250;
  /// Bound (ms) a peer may stall *inside* one frame before the
  /// connection is dropped.
  int frame_timeout_ms = 30000;
};

/// The serving loop. Construction binds, listens and starts the accept
/// thread; `stop()` (also run by the destructor) drains and joins.
/// Thread-safe: begin_drain/draining/stop/stats may be called from any
/// thread, including a signal-watcher.
class Server {
 public:
  /// \throws runtime_failure when the address cannot be bound.
  explicit Server(ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Port actually bound (resolves config port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// `host:port` string, directly usable as a ShardRouter endpoint.
  [[nodiscard]] std::string endpoint() const;

  /// Stop admitting: new connections are refused, SUBMITs on existing
  /// connections get `ERROR shutting-down`, idle connections close at
  /// their next poll tick. Non-blocking; in-flight jobs keep running
  /// until stop(). Idempotent.
  void begin_drain();
  [[nodiscard]] bool draining() const noexcept;

  /// begin_drain(), then block until every in-flight job has streamed its
  /// result, and join the accept + connection threads. Idempotent.
  void stop();

  /// Snapshot of the fronted engine's counters (per-tenant included).
  [[nodiscard]] serve::EngineStats stats() const { return engine_.stats(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Handle one SUBMIT frame. Returns false when the connection must
  /// close (peer unreachable mid-stream).
  bool handle_submit(FdStream& stream, Frame& frame);
  /// Join finished connection threads (called from the accept loop).
  void reap_connections(bool join_all);

  ServerConfig config_;
  serve::Engine engine_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< Self-pipe to interrupt poll() in stop.
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  /// Serialises stop() callers. Held across the whole teardown (engine
  /// drain + thread joins) — the threads being joined never take it, and
  /// conns_mutex_ below is acquired under it (stop_mutex_ → conns_mutex_).
  Mutex stop_mutex_;
  bool stopped_ PTSBE_GUARDED_BY(stop_mutex_) = false;

  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  /// Leaf lock: guards the connection registry only, never held while
  /// joining a thread or writing a socket.
  Mutex conns_mutex_;
  std::list<Connection> conns_ PTSBE_GUARDED_BY(conns_mutex_);

  std::thread accept_thread_;
};

}  // namespace ptsbe::net
