#include "ptsbe/net/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace ptsbe::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw runtime_failure(std::string(what) + ": " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// Little-endian primitives. Doubles travel as their raw IEEE-754 bit pattern
// so a batch round-trips bit-identically regardless of formatting locale.

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

void put_f64(std::string& out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader over one payload.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    if (bytes_.size() - pos_ < 8) {
      throw ProtocolError(errc::kProtocol, "truncated batch payload");
    }
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// key=value text codec helpers. Doubles use hexfloat (%a / strtod), which is
// exact for every finite IEEE-754 value — the config a job ran under must not
// drift through decimal formatting.

void put_kv(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += '\n';
}

void put_kv_u64(std::string& out, const char* key, std::uint64_t value) {
  put_kv(out, key, std::to_string(value));
}

void put_kv_f64(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", value);
  put_kv(out, key, buf);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw ProtocolError(errc::kParse, "bad integer for '" + key + "': '" +
                                          value + "'");
  }
  return out;
}

double parse_f64(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || value.empty()) {
    throw ProtocolError(errc::kParse,
                        "bad number for '" + key + "': '" + value + "'");
  }
  return out;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw ProtocolError(errc::kParse,
                      "bad flag for '" + key + "': '" + value +
                          "' (want 0|1|true|false)");
}

/// Split `text` into lines (without terminators), invoking `fn(line)` for
/// each; returns the offset just past the last consumed line when `fn`
/// returns false (the "rest is verbatim" cut point for the circuit section).
template <typename Fn>
std::size_t for_each_line(std::string_view text, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    const std::size_t next = (eol == std::string_view::npos)
                                 ? text.size()
                                 : eol + 1;
    if (eol == std::string_view::npos) eol = text.size();
    if (!fn(text.substr(pos, eol - pos))) return next;
    pos = next;
  }
  return pos;
}

}  // namespace

// ---------------------------------------------------------------------------
// FdStream

FdStream::FdStream(int fd, std::size_t max_payload, int frame_timeout_ms)
    : fd_(fd), max_payload_(max_payload), frame_timeout_ms_(frame_timeout_ms) {
  PTSBE_REQUIRE(fd >= 0, "FdStream needs a connected socket");
  buf_.reserve(4096);
}

FdStream::~FdStream() { close(); }

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdStream::fill(bool& timed_out) {
  timed_out = false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      timed_out = true;
      return true;
    }
    throw_errno("recv");
  }
}

FdStream::ReadStatus FdStream::read_frame(Frame& out) {
  using clock = std::chrono::steady_clock;
  // Armed once a partial frame is buffered: from that point the peer has
  // frame_timeout_ms_ to deliver the rest, idle ticks notwithstanding.
  clock::time_point deadline{};
  bool deadline_armed = false;

  const auto pending = [&] { return buf_.size() - pos_; };
  // `mid_frame` marks the payload stage: the header is consumed, so even
  // zero buffered bytes means the peer owes us data — EOF is a protocol
  // error and the frame deadline arms on the first timeout tick. Only the
  // header stage with nothing buffered counts as a frame boundary.
  const auto pump = [&](const char* stage, bool mid_frame) {
    bool timed_out = false;
    if (!fill(timed_out)) {
      if (!mid_frame && pending() == 0) {
        return false;  // clean EOF at a frame boundary
      }
      throw ProtocolError(errc::kProtocol,
                          std::string("connection closed mid-frame (") +
                              stage + ")");
    }
    if (timed_out) {
      if (!mid_frame && pending() == 0) return true;  // idle between frames
      if (!deadline_armed) {
        deadline_armed = true;
        deadline = clock::now() + std::chrono::milliseconds(frame_timeout_ms_);
      } else if (clock::now() >= deadline) {
        throw ProtocolError(errc::kProtocol,
                            std::string("frame stalled mid-read (") + stage +
                                ")");
      }
    }
    return true;
  };

  // Reclaim the consumed prefix so long-lived connections don't grow buf_.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 65536) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }

  // 1. Header line.
  std::size_t eol;
  for (;;) {
    eol = buf_.find('\n', pos_);
    if (eol != std::string::npos) break;
    if (pending() >= kMaxHeaderBytes) {
      throw ProtocolError(errc::kProtocol, "header line exceeds " +
                                               std::to_string(kMaxHeaderBytes) +
                                               " bytes");
    }
    const bool had_partial = pending() > 0;
    if (!pump("header", /*mid_frame=*/false)) return ReadStatus::kEof;
    if (!had_partial && pending() == 0) return ReadStatus::kIdle;
  }
  if (eol - pos_ + 1 > kMaxHeaderBytes) {
    throw ProtocolError(errc::kProtocol, "header line exceeds " +
                                             std::to_string(kMaxHeaderBytes) +
                                             " bytes");
  }

  // 2. Tokenise: TYPE [args...] LEN.
  out.type.clear();
  out.args.clear();
  std::vector<std::string> tokens;
  {
    std::size_t start = pos_;
    for (std::size_t i = pos_; i <= eol; ++i) {
      if (i == eol || buf_[i] == ' ') {
        if (i > start) tokens.emplace_back(buf_, start, i - start);
        start = i + 1;
      }
    }
  }
  if (tokens.size() < 2) {
    throw ProtocolError(errc::kProtocol,
                        "malformed header: want '<TYPE> [...args] <len>'");
  }
  std::size_t payload_len = 0;
  {
    const std::string& len_tok = tokens.back();
    const auto [ptr, ec] = std::from_chars(
        len_tok.data(), len_tok.data() + len_tok.size(), payload_len);
    if (ec != std::errc{} || ptr != len_tok.data() + len_tok.size()) {
      throw ProtocolError(errc::kProtocol,
                          "malformed payload length '" + len_tok + "'");
    }
  }
  if (payload_len > max_payload_) {
    throw ProtocolError(errc::kOversize,
                        "payload of " + std::to_string(payload_len) +
                            " bytes exceeds limit of " +
                            std::to_string(max_payload_));
  }
  out.type = std::move(tokens.front());
  out.args.assign(std::make_move_iterator(tokens.begin() + 1),
                  std::make_move_iterator(tokens.end() - 1));
  pos_ = eol + 1;

  // 3. Payload. The header is consumed, so the peer owes `payload_len`
  // bytes: a stall here — even before the first payload byte — is bounded
  // by the frame deadline, and EOF is a mid-frame protocol error.
  while (pending() < payload_len) {
    (void)pump("payload", /*mid_frame=*/true);  // throws on EOF and stalls
  }
  out.payload.assign(buf_, pos_, payload_len);
  pos_ += payload_len;
  return ReadStatus::kFrame;
}

void FdStream::write_frame(const Frame& frame) {
  std::string wire = frame.type;
  for (const std::string& arg : frame.args) {
    wire += ' ';
    wire += arg;
  }
  wire += ' ';
  wire += std::to_string(frame.payload.size());
  wire += '\n';
  if (wire.size() > kMaxHeaderBytes) {
    throw ProtocolError(errc::kProtocol, "outgoing header exceeds " +
                                             std::to_string(kMaxHeaderBytes) +
                                             " bytes");
  }
  wire += frame.payload;

  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Batch codec

std::string encode_batch(const be::TrajectoryBatch& batch) {
  std::string out;
  out.reserve(40 + 16 * batch.spec.branches.size() +
              8 * batch.records.size());
  put_u64(out, batch.spec_index);
  put_u64(out, batch.spec.shots);
  put_f64(out, batch.spec.nominal_probability);
  put_f64(out, batch.realized_probability);
  put_u64(out, batch.spec.branches.size());
  for (const BranchChoice& choice : batch.spec.branches) {
    put_u64(out, choice.site);
    put_u64(out, choice.branch);
  }
  put_u64(out, batch.records.size());
  for (const std::uint64_t record : batch.records) put_u64(out, record);
  return out;
}

be::TrajectoryBatch decode_batch(std::string_view bytes) {
  Cursor cur(bytes);
  be::TrajectoryBatch batch;
  batch.spec_index = static_cast<std::size_t>(cur.u64());
  batch.spec.shots = cur.u64();
  batch.spec.nominal_probability = cur.f64();
  batch.realized_probability = cur.f64();
  const std::uint64_t nbranches = cur.u64();
  if (nbranches > cur.remaining() / 16) {
    throw ProtocolError(errc::kProtocol, "truncated batch payload");
  }
  batch.spec.branches.reserve(static_cast<std::size_t>(nbranches));
  for (std::uint64_t i = 0; i < nbranches; ++i) {
    BranchChoice choice;
    choice.site = static_cast<std::size_t>(cur.u64());
    choice.branch = static_cast<std::size_t>(cur.u64());
    batch.spec.branches.push_back(choice);
  }
  const std::uint64_t nrecords = cur.u64();
  if (nrecords > cur.remaining() / 8) {
    throw ProtocolError(errc::kProtocol, "truncated batch payload");
  }
  batch.records.reserve(static_cast<std::size_t>(nrecords));
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    batch.records.push_back(cur.u64());
  }
  if (!cur.exhausted()) {
    throw ProtocolError(errc::kProtocol, "trailing bytes after batch payload");
  }
  return batch;
}

// ---------------------------------------------------------------------------
// SUBMIT payload codec

std::string encode_submit_payload(const serve::JobRequest& job) {
  // A newline inside a key=value field would inject extra config lines
  // into the payload (mirrors the tenant-label check in Client::submit).
  const auto reject_newlines = [](const char* key, const std::string& value) {
    if (value.find('\n') != std::string::npos) {
      throw ProtocolError(errc::kParse, std::string("job field '") + key +
                                            "' must not contain newlines");
    }
  };
  reject_newlines("source", job.source_name);
  reject_newlines("strategy", job.strategy);
  reject_newlines("backend", job.backend);

  std::string out;
  if (!job.source_name.empty()) put_kv(out, "source", job.source_name);
  put_kv(out, "strategy", job.strategy);
  put_kv(out, "backend", job.backend);
  put_kv(out, "schedule", be::to_string(job.schedule));
  put_kv_u64(out, "threads", job.threads);
  put_kv_u64(out, "seed", job.seed);
  put_kv_u64(out, "nsamples", job.strategy_config.nsamples);
  put_kv_u64(out, "nshots", job.strategy_config.nshots);
  put_kv(out, "merge", job.strategy_config.merge_duplicates ? "1" : "0");
  put_kv_f64(out, "p_min", job.strategy_config.p_min);
  put_kv_f64(out, "p_max", job.strategy_config.p_max);
  put_kv_f64(out, "cutoff", job.strategy_config.probability_cutoff);
  put_kv_u64(out, "max_results", job.strategy_config.max_results);
  put_kv_u64(out, "total_shots", job.strategy_config.total_shots);
  put_kv_f64(out, "boost", job.strategy_config.boost);
  put_kv_u64(out, "radius", job.strategy_config.radius);
  put_kv(out, "fuse", job.backend_config.fuse_gates ? "1" : "0");
  put_kv_u64(out, "mps_max_bond", job.backend_config.mps.max_bond);
  put_kv_f64(out, "mps_trunc", job.backend_config.mps.truncation_error);
  out += "circuit\n";
  out += job.circuit_text;
  return out;
}

serve::JobRequest decode_submit_payload(std::string_view payload) {
  serve::JobRequest job;
  bool saw_marker = false;
  const std::size_t circuit_at =
      for_each_line(payload, [&](std::string_view line) {
        if (line == "circuit") {
          saw_marker = true;
          return false;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string_view::npos) {
          throw ProtocolError(errc::kParse,
                              "malformed job-config line '" +
                                  std::string(line) +
                                  "' (want key=value, or 'circuit')");
        }
        const std::string key(line.substr(0, eq));
        const std::string value(line.substr(eq + 1));
        try {
          if (key == "source") {
            job.source_name = value;
          } else if (key == "strategy") {
            job.strategy = value;
          } else if (key == "backend") {
            job.backend = value;
          } else if (key == "schedule") {
            job.schedule = be::schedule_from_string(value);
          } else if (key == "threads") {
            job.threads = static_cast<std::size_t>(parse_u64(key, value));
          } else if (key == "seed") {
            job.seed = parse_u64(key, value);
          } else if (key == "nsamples") {
            job.strategy_config.nsamples =
                static_cast<std::size_t>(parse_u64(key, value));
          } else if (key == "nshots") {
            job.strategy_config.nshots = parse_u64(key, value);
          } else if (key == "merge") {
            job.strategy_config.merge_duplicates = parse_bool(key, value);
          } else if (key == "p_min") {
            job.strategy_config.p_min = parse_f64(key, value);
          } else if (key == "p_max") {
            job.strategy_config.p_max = parse_f64(key, value);
          } else if (key == "cutoff") {
            job.strategy_config.probability_cutoff = parse_f64(key, value);
          } else if (key == "max_results") {
            job.strategy_config.max_results =
                static_cast<std::size_t>(parse_u64(key, value));
          } else if (key == "total_shots") {
            job.strategy_config.total_shots = parse_u64(key, value);
          } else if (key == "boost") {
            job.strategy_config.boost = parse_f64(key, value);
          } else if (key == "radius") {
            job.strategy_config.radius =
                static_cast<unsigned>(parse_u64(key, value));
          } else if (key == "fuse") {
            job.backend_config.fuse_gates = parse_bool(key, value);
          } else if (key == "mps_max_bond") {
            job.backend_config.mps.max_bond =
                static_cast<std::size_t>(parse_u64(key, value));
          } else if (key == "mps_trunc") {
            job.backend_config.mps.truncation_error = parse_f64(key, value);
          } else {
            throw ProtocolError(errc::kParse,
                                "unknown job-config key '" + key + "'");
          }
        } catch (const ProtocolError&) {
          throw;
        } catch (const std::exception& e) {
          // e.g. schedule_from_string precondition_error → wire parse error.
          throw ProtocolError(errc::kParse, e.what());
        }
        return true;
      });
  if (!saw_marker) {
    throw ProtocolError(errc::kParse,
                        "SUBMIT payload has no 'circuit' marker line");
  }
  job.circuit_text.assign(payload.substr(circuit_at));
  return job;
}

// ---------------------------------------------------------------------------
// RESULT metadata codec

std::string encode_result_meta(const ResultMeta& meta) {
  std::string out;
  put_kv_u64(out, "job_id", meta.job_id);
  put_kv(out, "strategy", meta.strategy);
  put_kv(out, "backend", meta.backend);
  put_kv(out, "weighting", weighting_to_string(meta.weighting));
  put_kv(out, "schedule_requested", be::to_string(meta.schedule_requested));
  put_kv(out, "schedule_executed", be::to_string(meta.schedule_executed));
  put_kv_u64(out, "num_specs", meta.num_specs);
  put_kv_u64(out, "num_batches", meta.num_batches);
  put_kv(out, "plan_cache_hit", meta.plan_cache_hit ? "1" : "0");
  return out;
}

ResultMeta decode_result_meta(std::string_view payload) {
  ResultMeta meta;
  for_each_line(payload, [&](std::string_view line) {
    if (line.empty()) return true;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ProtocolError(errc::kProtocol, "malformed RESULT line '" +
                                               std::string(line) + "'");
    }
    const std::string key(line.substr(0, eq));
    const std::string value(line.substr(eq + 1));
    try {
      if (key == "job_id") {
        meta.job_id = parse_u64(key, value);
      } else if (key == "strategy") {
        meta.strategy = value;
      } else if (key == "backend") {
        meta.backend = value;
      } else if (key == "weighting") {
        meta.weighting = weighting_from_string(value);
      } else if (key == "schedule_requested") {
        meta.schedule_requested = be::schedule_from_string(value);
      } else if (key == "schedule_executed") {
        meta.schedule_executed = be::schedule_from_string(value);
      } else if (key == "num_specs") {
        meta.num_specs = parse_u64(key, value);
      } else if (key == "num_batches") {
        meta.num_batches = parse_u64(key, value);
      } else if (key == "plan_cache_hit") {
        meta.plan_cache_hit = parse_bool(key, value);
      } else {
        throw ProtocolError(errc::kProtocol,
                            "unknown RESULT key '" + key + "'");
      }
    } catch (const ProtocolError&) {
      throw;
    } catch (const std::exception& e) {
      throw ProtocolError(errc::kProtocol, e.what());
    }
    return true;
  });
  return meta;
}

// ---------------------------------------------------------------------------
// Weighting names

const std::string& weighting_to_string(be::Weighting weighting) {
  static const std::string kDraw = "draw-weighted";
  static const std::string kProb = "probability-weighted";
  return weighting == be::Weighting::kDrawWeighted ? kDraw : kProb;
}

be::Weighting weighting_from_string(const std::string& name) {
  if (name == "draw-weighted") return be::Weighting::kDrawWeighted;
  if (name == "probability-weighted") return be::Weighting::kProbabilityWeighted;
  throw ProtocolError(errc::kProtocol,
                      "unknown weighting '" + name +
                          "' (want draw-weighted|probability-weighted)");
}

// ---------------------------------------------------------------------------
// ERROR payload codec. `message` is last and consumes the rest of the
// payload, so multi-line diagnostics survive intact.

std::string encode_error(const WireError& error) {
  std::string out;
  if (error.line > 0) put_kv_u64(out, "line", error.line);
  if (error.column > 0) put_kv_u64(out, "column", error.column);
  out += "message=";
  out += error.message;
  return out;
}

WireError decode_error(std::string_view payload) {
  WireError error;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    static constexpr std::string_view kMessage = "message=";
    if (payload.compare(pos, kMessage.size(), kMessage) == 0) {
      error.message.assign(payload.substr(pos + kMessage.size()));
      return error;
    }
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    const std::size_t eq = line.find('=');
    if (eq != std::string_view::npos) {
      const std::string key(line.substr(0, eq));
      const std::string value(line.substr(eq + 1));
      if (key == "line") {
        error.line = static_cast<std::size_t>(parse_u64(key, value));
      } else if (key == "column") {
        error.column = static_cast<std::size_t>(parse_u64(key, value));
      }
    }
    pos = eol + 1;
  }
  return error;
}

}  // namespace ptsbe::net
