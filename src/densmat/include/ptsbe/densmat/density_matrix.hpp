#pragma once

/// \file density_matrix.hpp
/// \brief Exact density-matrix simulator.
///
/// The O(4^n) gold-standard representation of a noisy quantum system that
/// the paper's introduction frames trajectory methods against. Used here as
/// the ground truth that every trajectory-based pipeline (Algorithm-1
/// baseline and PTSBE) must statistically converge to — the core validation
/// of the whole repository. Practical up to ~10 qubits.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/common/aligned.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/kernels/kernel_set.hpp"
#include "ptsbe/linalg/matrix.hpp"
#include "ptsbe/noise/noise_model.hpp"

namespace ptsbe {

/// Dense 2^n × 2^n density matrix with unitary/channel application.
///
/// Copy construction is a deep snapshot of ρ — the fork primitive the
/// shared-prefix trajectory scheduler relies on.
class DensityMatrix {
 public:
  /// |0…0⟩⟨0…0| on `num_qubits` qubits. Precondition: 1 <= num_qubits <= 13.
  explicit DensityMatrix(unsigned num_qubits);

  /// Reset to |0…0⟩⟨0…0|.
  void reset();

  [[nodiscard]] unsigned num_qubits() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t dim() const noexcept { return dim_; }

  /// Element ρ(r, c).
  [[nodiscard]] cplx element(std::uint64_t r, std::uint64_t c) const;

  /// ρ ← U ρ U† for unitary U on `qubits` (first listed = LSB).
  void apply_unitary(const Matrix& u, std::span<const unsigned> qubits);

  /// Alias for apply_unitary matching the state-backend concept
  /// (apply_gate / branch_probability / apply_kraus_branch) the unified
  /// Backend adapters prepare trajectories through.
  void apply_gate(const Matrix& u, std::span<const unsigned> qubits) {
    apply_unitary(u, qubits);
  }

  /// Batched kernel entry point: conjugate ρ by a pre-classified gate run
  /// in one pass (each gate is U·ρ then ρ·U†, both through the flat-index
  /// amplitude kernels — see apply_op_left).
  void apply_prepared_gates(std::span<const kernels::PreparedGate> gates);

  /// tr(K†K ρ) — the realised branch probability of Kraus operator K on
  /// `qubits` at the current state. Does not modify the state.
  [[nodiscard]] double branch_probability(const Matrix& k,
                                          std::span<const unsigned> qubits) const;

  /// Apply one Kraus branch and renormalise: ρ ← K ρ K† / tr(K ρ K†).
  /// Returns the pre-normalisation trace. A (near-)zero trace is a
  /// precondition violation (the caller selected an impossible branch).
  double apply_kraus_branch(const Matrix& k, std::span<const unsigned> qubits);

  /// ρ ← Σ_i K_i ρ K_i† for a Kraus channel on `qubits`.
  void apply_channel(const KrausChannel& channel,
                     std::span<const unsigned> qubits);

  /// Run all gate ops of a coherent circuit.
  void apply_circuit(const Circuit& circuit);

  /// Run a noisy program exactly: every gate, with every noise site applied
  /// as its full channel (no sampling). The result is the exact mixed state
  /// all trajectory ensembles approximate.
  void apply_noisy_circuit(const NoisyCircuit& noisy);

  /// tr(ρ) — 1 for valid evolutions.
  [[nodiscard]] double trace_real() const;

  /// tr(ρ²) — purity.
  [[nodiscard]] double purity() const;

  /// Diagonal of ρ: exact computational-basis outcome distribution.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// ⟨ψ|ρ|ψ⟩ fidelity against a pure state given by its amplitudes.
  [[nodiscard]] double fidelity_with_pure(std::span<const cplx> psi) const;

  /// Expectation tr(ρP) of a Pauli string on `qubits`.
  [[nodiscard]] double expectation_pauli(const std::string& pauli,
                                         std::span<const unsigned> qubits) const;

  /// Bulk computational-basis shots from the diagonal (sorted-uniform pass).
  [[nodiscard]] std::vector<std::uint64_t> sample_shots(std::size_t count,
                                                        RngStream& rng) const;

 private:
  // Left-multiply rows by M on `qubits` (ρ ← M ρ), then the adjoint pass
  // right-multiplies (ρ ← ρ M†). For arity <= 2 both passes run through the
  // SIMD amplitude kernels on the flat row-major array: the flat index is
  // (r << n) | c, so M ρ is a kernel apply on qubits shifted up by n and
  // ρ M† is a kernel apply of conj(M) on the unshifted qubits.
  void apply_op_left(const Matrix& m, std::span<const unsigned> qubits);
  void apply_op_right_dagger(const Matrix& m, std::span<const unsigned> qubits);
  // General k-qubit fallbacks (arity > 2).
  void apply_op_left_k(const Matrix& m, std::span<const unsigned> qubits);
  void apply_op_right_dagger_k(const Matrix& m,
                               std::span<const unsigned> qubits);

  unsigned n_;
  std::uint64_t dim_;
  AlignedVector<cplx> rho_;  // row-major dim_ × dim_
};

}  // namespace ptsbe
