#include "ptsbe/densmat/density_matrix.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe {

DensityMatrix::DensityMatrix(unsigned num_qubits)
    : n_(num_qubits), dim_(pow2(num_qubits)) {
  PTSBE_REQUIRE(num_qubits >= 1 && num_qubits <= 13,
                "density matrix supports 1..13 qubits (memory gate)");
  rho_.assign(dim_ * dim_, cplx{0.0, 0.0});
  rho_[0] = cplx{1.0, 0.0};
}

void DensityMatrix::reset() {
  std::fill(rho_.begin(), rho_.end(), cplx{0.0, 0.0});
  rho_[0] = cplx{1.0, 0.0};
}

cplx DensityMatrix::element(std::uint64_t r, std::uint64_t c) const {
  PTSBE_REQUIRE(r < dim_ && c < dim_, "element index out of range");
  return rho_[r * dim_ + c];
}

void DensityMatrix::apply_op_left(const Matrix& m,
                                  std::span<const unsigned> qubits) {
  if (qubits.size() <= 2) {
    // Flat index of ρ is (r << n) | c: the row bits start at bit n, so a
    // left-multiply is a statevector kernel apply on shifted qubits over
    // the 4^n flat array.
    const kernels::PreparedGate g = kernels::prepare_gate(m, qubits);
    kernels::apply_prepared(kernels::active(), rho_.data(), rho_.size(),
                            kernels::shifted(g, n_));
    return;
  }
  apply_op_left_k(m, qubits);
}

void DensityMatrix::apply_op_right_dagger(const Matrix& m,
                                          std::span<const unsigned> qubits) {
  if (qubits.size() <= 2) {
    // (ρ M†)(r, c) = Σ_cc ρ(r, cc) · conj(M(c, cc)): a kernel apply of
    // conj(M) on the column bits (the low n bits of the flat index).
    const kernels::PreparedGate g = kernels::prepare_gate(m, qubits);
    kernels::apply_prepared(kernels::active(), rho_.data(), rho_.size(),
                            kernels::conjugated(g));
    return;
  }
  apply_op_right_dagger_k(m, qubits);
}

void DensityMatrix::apply_prepared_gates(
    std::span<const kernels::PreparedGate> gates) {
  const kernels::KernelSet& ks = kernels::active();
  for (const kernels::PreparedGate& g : gates) {
    kernels::apply_prepared(ks, rho_.data(), rho_.size(),
                            kernels::shifted(g, n_));
    kernels::apply_prepared(ks, rho_.data(), rho_.size(),
                            kernels::conjugated(g));
  }
}

void DensityMatrix::apply_op_left_k(const Matrix& m,
                                    std::span<const unsigned> qubits) {
  const unsigned k = static_cast<unsigned>(qubits.size());
  const std::size_t block = std::size_t{1} << k;
  std::vector<unsigned> sorted(qubits.begin(), qubits.end());
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t groups = dim_ >> k;
  std::vector<cplx> in(block), out(block);
  std::vector<std::uint64_t> rows(block);
  for (std::uint64_t c = 0; c < dim_; ++c) {
    for (std::uint64_t g = 0; g < groups; ++g) {
      std::uint64_t base = g;
      for (unsigned b = 0; b < k; ++b) base = insert_zero_bit(base, sorted[b]);
      for (std::size_t local = 0; local < block; ++local) {
        std::uint64_t full = base;
        for (unsigned b = 0; b < k; ++b)
          if ((local >> b) & 1u) full |= 1ULL << qubits[b];
        rows[local] = full;
        in[local] = rho_[full * dim_ + c];
      }
      for (std::size_t r = 0; r < block; ++r) {
        cplx acc{0.0, 0.0};
        for (std::size_t cc = 0; cc < block; ++cc) acc += m(r, cc) * in[cc];
        out[r] = acc;
      }
      for (std::size_t local = 0; local < block; ++local)
        rho_[rows[local] * dim_ + c] = out[local];
    }
  }
}

void DensityMatrix::apply_op_right_dagger_k(const Matrix& m,
                                            std::span<const unsigned> qubits) {
  const unsigned k = static_cast<unsigned>(qubits.size());
  const std::size_t block = std::size_t{1} << k;
  std::vector<unsigned> sorted(qubits.begin(), qubits.end());
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t groups = dim_ >> k;
  std::vector<cplx> in(block), out(block);
  std::vector<std::uint64_t> cols(block);
  for (std::uint64_t r = 0; r < dim_; ++r) {
    cplx* const row = rho_.data() + r * dim_;
    for (std::uint64_t g = 0; g < groups; ++g) {
      std::uint64_t base = g;
      for (unsigned b = 0; b < k; ++b) base = insert_zero_bit(base, sorted[b]);
      for (std::size_t local = 0; local < block; ++local) {
        std::uint64_t full = base;
        for (unsigned b = 0; b < k; ++b)
          if ((local >> b) & 1u) full |= 1ULL << qubits[b];
        cols[local] = full;
        in[local] = row[full];
      }
      // (ρ M†)(r, c) = Σ_cc ρ(r, cc) · conj(M(c, cc))
      for (std::size_t c = 0; c < block; ++c) {
        cplx acc{0.0, 0.0};
        for (std::size_t cc = 0; cc < block; ++cc)
          acc += in[cc] * std::conj(m(c, cc));
        out[c] = acc;
      }
      for (std::size_t local = 0; local < block; ++local)
        row[cols[local]] = out[local];
    }
  }
}

void DensityMatrix::apply_unitary(const Matrix& u,
                                  std::span<const unsigned> qubits) {
  const std::size_t block = std::size_t{1} << qubits.size();
  PTSBE_REQUIRE(u.rows() == block && u.cols() == block,
                "unitary dimension mismatch");
  apply_op_left(u, qubits);
  apply_op_right_dagger(u, qubits);
}

double DensityMatrix::branch_probability(const Matrix& k,
                                         std::span<const unsigned> qubits) const {
  // tr(Aρ) with A = (K†K on the site qubits) ⊗ I = Σ_g Σ_{r,c} A(r,c) ·
  // ρ(idx_c, idx_r): touches only the aligned blocks of ρ, no copy.
  const unsigned arity = static_cast<unsigned>(qubits.size());
  const std::size_t block = std::size_t{1} << arity;
  PTSBE_REQUIRE(k.rows() == block && k.cols() == block,
                "Kraus matrix dimension mismatch");
  const Matrix a = k.dagger() * k;
  std::vector<unsigned> sorted(qubits.begin(), qubits.end());
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t groups = dim_ >> arity;
  std::vector<std::uint64_t> idx(block);
  cplx total{0.0, 0.0};
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::uint64_t base = g;
    for (unsigned b = 0; b < arity; ++b) base = insert_zero_bit(base, sorted[b]);
    for (std::size_t local = 0; local < block; ++local) {
      std::uint64_t full = base;
      for (unsigned b = 0; b < arity; ++b)
        if ((local >> b) & 1u) full |= 1ULL << qubits[b];
      idx[local] = full;
    }
    for (std::size_t r = 0; r < block; ++r)
      for (std::size_t c = 0; c < block; ++c)
        total += a(r, c) * rho_[idx[c] * dim_ + idx[r]];
  }
  return total.real();
}

double DensityMatrix::apply_kraus_branch(const Matrix& k,
                                         std::span<const unsigned> qubits) {
  apply_op_left(k, qubits);
  apply_op_right_dagger(k, qubits);
  const double p = trace_real();
  PTSBE_REQUIRE(p > 1e-300, "Kraus branch has zero realised probability");
  const double inv = 1.0 / p;
  for (cplx& v : rho_) v *= inv;
  return p;
}

void DensityMatrix::apply_channel(const KrausChannel& channel,
                                  std::span<const unsigned> qubits) {
  PTSBE_REQUIRE(qubits.size() == channel.arity(),
                "channel arity / qubit count mismatch");
  // Accumulate Σ K ρ K† across branches from a saved copy of ρ. Both
  // buffers stay in the aligned vector type so the kernel-backed applies
  // keep operating on rho_ after the final move-assign.
  const AlignedVector<cplx> saved = rho_;
  AlignedVector<cplx> acc(rho_.size(), cplx{0.0, 0.0});
  for (std::size_t i = 0; i < channel.num_branches(); ++i) {
    rho_ = saved;
    apply_op_left(channel.kraus(i), qubits);
    apply_op_right_dagger(channel.kraus(i), qubits);
    for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += rho_[j];
  }
  rho_ = std::move(acc);
}

void DensityMatrix::apply_circuit(const Circuit& circuit) {
  PTSBE_REQUIRE(circuit.num_qubits() <= n_, "circuit wider than the register");
  for (const Operation& op : circuit.ops()) {
    if (op.kind != OpKind::kGate) continue;
    apply_unitary(op.matrix, op.qubits);
  }
}

void DensityMatrix::apply_noisy_circuit(const NoisyCircuit& noisy) {
  PTSBE_REQUIRE(noisy.num_qubits() <= n_, "program wider than the register");
  const auto apply_sites = [&](const std::vector<std::size_t>& site_ids) {
    for (std::size_t id : site_ids) {
      const NoiseSite& s = noisy.sites()[id];
      apply_channel(*s.channel, s.qubits);
    }
  };
  apply_sites(noisy.sites_after(NoiseSite::kBeforeCircuit));
  const auto& ops = noisy.circuit().ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kGate) apply_unitary(ops[i].matrix, ops[i].qubits);
    apply_sites(noisy.sites_after(i));
  }
}

double DensityMatrix::trace_real() const {
  double t = 0.0;
  for (std::uint64_t i = 0; i < dim_; ++i) t += rho_[i * dim_ + i].real();
  return t;
}

double DensityMatrix::purity() const {
  // tr(ρ²) = Σ_{r,c} ρ(r,c)·ρ(c,r) = Σ |ρ(r,c)|² for Hermitian ρ.
  double s = 0.0;
  for (const cplx& v : rho_) s += std::norm(v);
  return s;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(dim_);
  for (std::uint64_t i = 0; i < dim_; ++i) p[i] = rho_[i * dim_ + i].real();
  return p;
}

double DensityMatrix::fidelity_with_pure(std::span<const cplx> psi) const {
  PTSBE_REQUIRE(psi.size() == dim_, "pure state dimension mismatch");
  cplx acc{0.0, 0.0};
  for (std::uint64_t r = 0; r < dim_; ++r) {
    cplx row{0.0, 0.0};
    for (std::uint64_t c = 0; c < dim_; ++c) row += rho_[r * dim_ + c] * psi[c];
    acc += std::conj(psi[r]) * row;
  }
  return acc.real();
}

double DensityMatrix::expectation_pauli(const std::string& pauli,
                                        std::span<const unsigned> qubits) const {
  PTSBE_REQUIRE(pauli.size() == qubits.size(),
                "pauli string length must match qubit count");
  DensityMatrix tmp = *this;
  for (std::size_t i = 0; i < pauli.size(); ++i) {
    const std::array<unsigned, 1> q{qubits[i]};
    switch (pauli[i]) {
      case 'I': break;
      case 'X': tmp.apply_op_left(gates::X(), q); break;
      case 'Y': tmp.apply_op_left(gates::Y(), q); break;
      case 'Z': tmp.apply_op_left(gates::Z(), q); break;
      default: PTSBE_REQUIRE(false, "pauli character must be one of IXYZ");
    }
  }
  // tr(P ρ) accumulated as the trace of the left-multiplied copy.
  double t = 0.0;
  for (std::uint64_t i = 0; i < dim_; ++i) t += tmp.rho_[i * dim_ + i].real();
  return t;
}

std::vector<std::uint64_t> DensityMatrix::sample_shots(std::size_t count,
                                                       RngStream& rng) const {
  std::vector<std::uint64_t> shots(count);
  if (count == 0) return shots;
  const std::vector<double> u = rng.sorted_uniforms(count);
  std::size_t ptr = 0;
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dim_ && ptr < count; ++i) {
    acc += std::max(0.0, rho_[i * dim_ + i].real());
    while (ptr < count && u[ptr] < acc) shots[ptr++] = i;
  }
  for (; ptr < count; ++ptr) shots[ptr] = dim_ - 1;
  return shots;
}

}  // namespace ptsbe
