#pragma once

/// \file engine.hpp
/// \brief `ptsbe::serve` — the async multi-tenant service engine.
///
/// Everything below the Pipeline facade is a blocking, single-tenant call:
/// one caller, one circuit, one run. The `Engine` is the ingestion boundary
/// that turns the PR 2–4 machinery (facade, prefix scheduler, work-stealing
/// executor) into something a fleet of clients can hit concurrently:
///
///  - **Jobs as data.** A `JobRequest` is a `.ptq` circuit (text, parsed by
///    `ptsbe::io`) plus registry-named strategy/backend/schedule config —
///    nothing in a request is code.
///  - **Shared worker pool.** One engine owns one fixed pool of job workers
///    (each job slot drives the BE trajectory executor with the job's own
///    `threads` knob, so total thread footprint is bounded by
///    workers × per-job threads).
///  - **ExecPlan cache.** Jobs are keyed by (canonical circuit text,
///    backend name, BackendConfig); repeat circuits skip the fusion +
///    lowering pass entirely by reusing the cached immutable plan. The
///    cache is a bounded LRU — hot tenants stay resident, one-off circuits
///    age out.
///  - **Admission control.** FIFO queue with a hard bound: `submit` on a
///    full queue *rejects with status* (`JobStatus::kRejected`) instead of
///    blocking the caller or buffering unboundedly — backpressure the
///    client can see.
///  - **Determinism.** A job's records (and dataset bytes) are bit-identical
///    to a standalone `Pipeline::run` with the same seed and config, no
///    matter how many other tenants are in flight — pinned by the serve
///    test suite's determinism matrix.
///
/// ```cpp
/// serve::Engine engine({.workers = 4, .queue_capacity = 64});
/// serve::JobRequest req;
/// req.circuit_text = ptq_source;
/// req.strategy = "band";  req.backend = "mps";  req.seed = 7;
/// serve::JobHandle job = engine.submit(std::move(req));
/// if (job.status() == serve::JobStatus::kRejected) { /* shed load */ }
/// const RunResult& run = job.wait();
/// ```

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/common/thread_annotations.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/serve/plan_cache.hpp"
#include "ptsbe/stats/shot_table.hpp"

namespace ptsbe::serve {

/// Admission lane of a job. The engine drains the high lane first (FIFO
/// within each lane); both lanes share one admission capacity, so priority
/// reorders the queue but never grows it.
enum class Priority : std::uint8_t {
  kNormal = 0,  ///< Default lane.
  kHigh = 1,    ///< Drained before every normal-lane job.
};

/// Registry-style name for a priority ("normal" | "high").
[[nodiscard]] const std::string& to_string(Priority priority);
/// \throws precondition_error for unknown names (the message lists both).
[[nodiscard]] Priority priority_from_string(const std::string& name);

/// One unit of tenant work: a circuit as data plus the full pipeline
/// configuration, all registry-named. Invalid requests (malformed `.ptq`,
/// unknown registry names) fail at submit() with `JobStatus::kFailed` and
/// a diagnostic in `JobHandle::error()` — they never throw on, or reach,
/// the worker pool.
struct JobRequest {
  /// `.ptq` source of the noisy program to run (see ptsbe/io/ptq.hpp).
  std::string circuit_text;
  /// Diagnostic label used in ParseError messages ("tenant-42.ptq", …).
  std::string source_name;
  /// PTS strategy registry name + config (shot budgets live here).
  std::string strategy = "probabilistic";
  pts::StrategyConfig strategy_config;
  /// Simulator backend registry name + tuning knobs.
  std::string backend = "statevector";
  BackendConfig backend_config;
  /// Trajectory schedule for the BE stage.
  be::Schedule schedule = be::Schedule::kIndependent;
  /// Worker threads *within* this job's BE stage (0 = hardware
  /// concurrency; values above hardware concurrency are clamped at
  /// submit — tenant input must not size OS thread pools unboundedly).
  /// Records are bit-identical at every value.
  std::size_t threads = 1;
  /// Master seed; with everything above it pins the job's records exactly.
  std::uint64_t seed = 0x5EEDBA5EDULL;
  /// Tenant this job is accounted to: per-tenant quotas, counters and the
  /// queue-depth high-water mark are keyed by this label. The label is
  /// client-asserted (authentication is out of scope at this layer).
  std::string tenant = "anonymous";
  /// Admission lane (see Priority). Both lanes share the engine's bounded
  /// queue; high-priority jobs are dispatched first.
  Priority priority = Priority::kNormal;
  /// Optional streaming delivery: when set, the engine worker executes the
  /// job through `Pipeline::run_streaming` and invokes this sink — on the
  /// worker's thread, one batch at a time, in completion order — instead of
  /// materialising batches into the job's RunResult (which then carries
  /// metadata only: weighting, names, schedules, num_specs). Batches are
  /// bit-identical to the materialised path; only the delivery order can
  /// differ (recover spec order via TrajectoryBatch::spec_index). An
  /// exception thrown by the sink fails the job (kFailed). This is the
  /// `ptsbe::net` result-frame hook.
  be::BatchSink stream_sink;
};

/// Lifecycle of a submitted job. Terminal states: kDone, kFailed,
/// kCancelled, kRejected.
enum class JobStatus : std::uint8_t {
  kQueued,     ///< Admitted, waiting for a worker.
  kRunning,    ///< A worker is executing it.
  kDone,       ///< Finished; JobHandle::result() is valid.
  kFailed,     ///< Invalid request or execution error; see error().
  kCancelled,  ///< cancel() won the race before a worker picked it up.
  kRejected,   ///< Admission refused (queue full / engine shut down).
};

/// Registry-style name for a status ("queued", "running", "done",
/// "failed", "cancelled", "rejected").
[[nodiscard]] const std::string& to_string(JobStatus status);

/// Why a kRejected job was refused — the distinct-status signal a client
/// (and the `ptsbe::net` wire protocol) can react to: back off on
/// kQueueFull, shed this tenant's load on kTenantQuota, fail over to
/// another shard on kShutdown.
enum class RejectReason : std::uint8_t {
  kNone = 0,     ///< Not rejected.
  kQueueFull,    ///< Bounded FIFO at capacity (backpressure).
  kTenantQuota,  ///< The tenant's outstanding-job quota is exhausted.
  kShutdown,     ///< Engine is draining; no new admissions.
};

/// Registry-style name for a reason ("none", "queue-full", "tenant-quota",
/// "shutdown").
[[nodiscard]] const std::string& to_string(RejectReason reason);

namespace detail {
struct JobState;
struct Counters;
}  // namespace detail

/// Future-style handle to one submitted job. Copyable (all copies share
/// the job); thread-safe.
class JobHandle {
 public:
  /// Engine-assigned submission id (FIFO order of admission attempts).
  [[nodiscard]] std::uint64_t id() const noexcept;

  /// Current status (non-blocking snapshot).
  [[nodiscard]] JobStatus status() const;

  /// True once the job reached a terminal state (non-blocking).
  [[nodiscard]] bool poll() const;

  /// Block until terminal, then return the run result.
  /// \throws runtime_failure for kFailed/kCancelled/kRejected jobs (the
  ///         message carries error()).
  const RunResult& wait() const;

  /// The run result of a kDone job (call after wait()/poll()).
  /// \throws precondition_error when the job is not kDone.
  [[nodiscard]] const RunResult& result() const;

  /// Diagnostic for kFailed/kRejected jobs; empty otherwise.
  [[nodiscard]] std::string error() const;

  /// Why a kRejected job was refused (kNone for every other status).
  [[nodiscard]] RejectReason reject_reason() const;

  /// Request cancellation. Only a still-queued job can be cancelled (a
  /// running job completes normally — trajectory execution is not
  /// interruptible mid-flight). Returns true when this call moved the job
  /// to kCancelled; the queue slot it held is reclaimed by the engine's
  /// next admission check.
  bool cancel();

  /// True when this job's plan came from the engine's ExecPlan cache
  /// (diagnostics; meaningful once the job left kQueued).
  [[nodiscard]] bool plan_cache_hit() const;

 private:
  friend class Engine;
  explicit JobHandle(std::shared_ptr<detail::JobState> state);
  std::shared_ptr<detail::JobState> state_;
};

/// Engine sizing. Total worker-thread footprint is bounded by
/// `workers` × per-job `JobRequest::threads`.
struct EngineConfig {
  /// Concurrent job slots (0 = hardware concurrency, at least 1).
  std::size_t workers = 1;
  /// Bounded FIFO admission queue; a submit beyond this depth is rejected
  /// with status. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Bounded LRU of fused ExecPlans keyed by (circuit, backend, config).
  /// 0 disables caching. Plans are shared immutable objects, so a cached
  /// plan can serve many concurrent jobs at once.
  std::size_t plan_cache_capacity = 32;
  /// Default per-tenant quota: the maximum number of *outstanding* jobs
  /// (admitted and not yet terminal — queued or running) any one tenant may
  /// hold. A submit beyond it is kRejected with RejectReason::kTenantQuota.
  /// 0 = unlimited. One tenant can therefore never occupy the whole bounded
  /// queue — the fairness half of admission control.
  std::size_t tenant_quota = 0;
  /// Per-tenant overrides of `tenant_quota` (0 = unlimited for that
  /// tenant). Tenants not listed use the default.
  std::map<std::string, std::size_t> tenant_quota_overrides = {};
  /// Bound on the *distinct* measurement records each tenant's running
  /// `stats::ShotTable` aggregate may track (tenant circuits choose the
  /// record space, so an unbounded table would let one tenant grow engine
  /// memory without limit). Shots whose record is new once the bound is
  /// reached are counted in `TenantStats::shot_overflow` instead of
  /// tabulated. 0 disables aggregation entirely.
  std::size_t tenant_shot_table_capacity = 4096;
};

/// Per-tenant service counters (monotonic except queue_depth /
/// outstanding, which are instantaneous).
struct TenantStats {
  std::uint64_t admitted = 0;   ///< Jobs that entered the queue.
  std::uint64_t rejected = 0;   ///< Admission refusals (any reason).
  std::uint64_t completed = 0;  ///< Jobs finished kDone.
  std::uint64_t failed = 0;     ///< Invalid requests + execution errors.
  std::uint64_t cancelled = 0;  ///< Cancelled while queued.
  std::size_t queue_depth = 0;  ///< Jobs admitted but not yet running.
  std::size_t queue_high_water = 0;  ///< Max queue_depth ever observed.
  std::size_t outstanding = 0;  ///< Queued + running (what quotas bound).
  /// Running record histogram over this tenant's shots — tabulated on
  /// completion for materialised jobs, per delivered batch for streaming
  /// jobs — bounded by `EngineConfig::tenant_shot_table_capacity` distinct
  /// records.
  stats::ShotTable shots;
  /// Shots dropped from `shots` because the distinct-record bound was
  /// reached (their record was new; existing records always accumulate).
  std::uint64_t shot_overflow = 0;
};

/// Aggregate service counters (monotonic since construction except
/// queue_depth, which is instantaneous).
struct EngineStats {
  std::uint64_t submitted = 0;   ///< submit() calls, admitted or not.
  std::uint64_t served = 0;      ///< Jobs finished kDone.
  std::uint64_t failed = 0;      ///< Invalid requests + execution errors.
  std::uint64_t cancelled = 0;   ///< Cancelled while queued.
  std::uint64_t rejected = 0;    ///< Admission refusals (backpressure).
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::size_t queue_depth = 0;   ///< Jobs admitted but not yet running.
  /// Per-tenant breakdown, keyed by JobRequest::tenant (ordered so JSON
  /// emission is deterministic).
  std::map<std::string, TenantStats> tenants;

  /// Hits over lookups (0 when no lookups happened).
  [[nodiscard]] double plan_cache_hit_rate() const noexcept {
    const std::uint64_t lookups = plan_cache_hits + plan_cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(plan_cache_hits) /
                              static_cast<double>(lookups);
  }
};

/// Serialise stats as one JSON object (aggregate counters plus a "tenants"
/// object keyed by tenant label) — what the `ptsbe_netd` STATS frame
/// replies with. Tenant labels are JSON-escaped; output is deterministic
/// (tenants in lexicographic order).
[[nodiscard]] std::string stats_to_json(const EngineStats& stats);

/// The multi-tenant service engine. Construction starts the worker pool;
/// destruction drains it: already-admitted jobs finish, new submissions
/// are rejected.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Validate, admit and enqueue one job. Never throws on bad tenant
  /// input: malformed circuits / unknown registry names return a handle
  /// already in kFailed, a full queue returns kRejected. Admission is
  /// checked *first*, so an overloaded engine sheds requests before paying
  /// for parsing or planning; validation and plan lookup then run on the
  /// caller's thread (keeping worker slots for execution).
  JobHandle submit(JobRequest request);

  /// Stop admitting (subsequent submits are kRejected), let every queued +
  /// running job finish, and join the worker pool. Also run by ~Engine.
  /// Not re-entrant from multiple threads at once.
  void shutdown();

  /// Snapshot of the service counters.
  [[nodiscard]] EngineStats stats() const;

  /// Job worker slots this engine runs.
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// True once shutdown() began: new submissions are kRejected with
  /// RejectReason::kShutdown while admitted jobs drain.
  [[nodiscard]] bool draining() const;

 private:
  void worker_loop() PTSBE_EXCLUDES(mutex_);
  void execute(const std::shared_ptr<detail::JobState>& job)
      PTSBE_EXCLUDES(mutex_);
  /// Drop cancelled (tombstone) jobs from both lanes so they stop counting
  /// against admission capacity.
  void purge_cancelled_locked() PTSBE_REQUIRES(mutex_);
  /// Queued jobs across both lanes.
  [[nodiscard]] std::size_t queued_locked() const noexcept
      PTSBE_REQUIRES(mutex_) {
    return queue_high_.size() + queue_normal_.size();
  }
  /// Effective outstanding-job quota for `tenant` (0 = unlimited).
  [[nodiscard]] std::size_t quota_for(const std::string& tenant) const;

  EngineConfig config_;
  PlanCache plan_cache_;

  /// Engine mutex — the *top* of the serve lock hierarchy
  /// (engine mutex_ → JobState::mutex → Counters::tenants_mutex; see
  /// docs/architecture.md). Never acquired while a job or tenant lock is
  /// held.
  mutable Mutex mutex_;
  std::condition_variable work_cv_;  ///< Workers sleep here.
  /// Two admission lanes sharing one capacity bound; workers drain
  /// queue_high_ first, FIFO within each lane.
  std::deque<std::shared_ptr<detail::JobState>> queue_high_
      PTSBE_GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<detail::JobState>> queue_normal_
      PTSBE_GUARDED_BY(mutex_);
  bool stopping_ PTSBE_GUARDED_BY(mutex_) = false;
  std::uint64_t next_id_ PTSBE_GUARDED_BY(mutex_) = 0;

  /// Terminal-state counters live in a block shared with every JobState so
  /// a cancel() racing engine teardown never dereferences the engine.
  std::shared_ptr<detail::Counters> counters_;

  std::vector<std::thread> workers_;
};

}  // namespace ptsbe::serve
