#pragma once

/// \file plan_cache.hpp
/// \brief Bounded LRU cache of fused execution plans.
///
/// Building an `ExecPlan` runs the gate-fusion pass and lowers the noisy
/// program into the linear step list every amplitude backend sweeps —
/// work that is identical for every job submitting the same circuit with
/// the same backend config. The serve engine keys this cache by the
/// *canonical* `.ptq` text of the program (whitespace/comment-insensitive
/// by construction: `io::write_circuit` of the parsed program) plus the
/// backend name and the plan-relevant `BackendConfig` knobs, so repeat
/// tenants skip fusion+lowering entirely.
///
/// Keys are compared by full string equality — a hash is used only for
/// bucketing — so two distinct circuits can never alias a plan. Values
/// are `shared_ptr<const ExecPlan>`: immutable, so one resident plan can
/// serve any number of concurrent jobs while the LRU evicts it. All
/// operations are thread-safe.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "ptsbe/common/thread_annotations.hpp"
#include "ptsbe/core/backend.hpp"

namespace ptsbe::serve {

/// Canonical cache key for (program, backend, config). `circuit_canonical`
/// should be `io::write_circuit` output so formatting differences in
/// tenant-supplied text collapse to one key.
[[nodiscard]] std::string plan_cache_key(const std::string& circuit_canonical,
                                         const std::string& backend,
                                         const BackendConfig& config);

/// Thread-safe bounded LRU: string key -> shared immutable ExecPlan.
class PlanCache {
 public:
  /// Cache holding at most `capacity` plans (0 = caching disabled; every
  /// lookup misses and insert is a no-op).
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look `key` up; a hit refreshes its LRU position.
  [[nodiscard]] std::shared_ptr<const ExecPlan> lookup(const std::string& key)
      PTSBE_EXCLUDES(mutex_);

  /// Insert (or refresh) `plan` under `key`, evicting the least recently
  /// used entry beyond capacity.
  void insert(const std::string& key, std::shared_ptr<const ExecPlan> plan)
      PTSBE_EXCLUDES(mutex_);

  /// Entries currently resident.
  [[nodiscard]] std::size_t size() const PTSBE_EXCLUDES(mutex_);

  /// Hits/misses observed by lookup() since construction.
  [[nodiscard]] std::uint64_t hits() const PTSBE_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t misses() const PTSBE_EXCLUDES(mutex_);

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const ExecPlan>>;

  std::size_t capacity_;
  /// Leaf lock: nothing else is ever acquired while it is held.
  mutable Mutex mutex_;
  /// Front = most recently used. The LRU list/index are the only unordered
  /// containers in the serve layer; nothing serialized ever iterates them
  /// (the determinism contract — enforced by ptsbe-lint).
  std::list<Entry> lru_ PTSBE_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      PTSBE_GUARDED_BY(mutex_);
  std::uint64_t hits_ PTSBE_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ PTSBE_GUARDED_BY(mutex_) = 0;
};

}  // namespace ptsbe::serve
