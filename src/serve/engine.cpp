#include "ptsbe/serve/engine.hpp"

#include <atomic>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/io/ptq.hpp"

namespace ptsbe::serve {

namespace detail {

/// Monotonic terminal-state counters, shared between the engine and every
/// job handle so late cancels never reach back into a dead engine. The
/// per-tenant map lives here for the same reason (cancel() must account
/// its tenant without an engine pointer); it is guarded by its own mutex,
/// which is always the innermost lock (after engine mutex_ and job mutex).
struct Counters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> rejected{0};

  /// Innermost lock of the serve hierarchy (engine mutex_ ->
  /// JobState::mutex -> tenants_mutex): held only for counter updates,
  /// never while calling out.
  Mutex tenants_mutex;
  std::map<std::string, TenantStats> tenants PTSBE_GUARDED_BY(tenants_mutex);

  TenantStats& tenant_locked(const std::string& name)
      PTSBE_REQUIRES(tenants_mutex) {
    return tenants[name];
  }
};

/// Fold one batch's records into a tenant's running ShotTable, spilling
/// new records into shot_overflow once the distinct-record bound is
/// reached (existing records always keep accumulating, so the tabulated
/// subset stays exact). Caller holds tenants_mutex.
void tabulate_records(TenantStats& t,
                      const std::vector<std::uint64_t>& records,
                      std::size_t capacity) {
  for (const std::uint64_t record : records) {
    if (t.shots.contains(record) || t.shots.distinct() < capacity)
      t.shots.add(record);
    else
      ++t.shot_overflow;
  }
}

/// Shared state behind one JobHandle. Transitions are guarded by `mutex`;
/// the request/program/plan fields are written once at submit time and
/// read-only afterwards.
struct JobState {
  std::uint64_t id = 0;
  JobRequest request;
  std::optional<NoisyCircuit> program;
  std::shared_ptr<const ExecPlan> plan;
  bool cache_hit = false;
  std::shared_ptr<Counters> counters;

  /// Middle tier of the serve hierarchy: may be acquired under the engine
  /// mutex_, and tenants_mutex may be acquired under it — never the
  /// reverse.
  mutable Mutex mutex;
  mutable std::condition_variable cv;
  JobStatus status PTSBE_GUARDED_BY(mutex) = JobStatus::kQueued;
  RejectReason reject_reason PTSBE_GUARDED_BY(mutex) = RejectReason::kNone;
  std::string error PTSBE_GUARDED_BY(mutex);
  RunResult result PTSBE_GUARDED_BY(mutex);

  void finish(JobStatus terminal, std::string message = {},
              RejectReason reason = RejectReason::kNone)
      PTSBE_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    status = terminal;
    reject_reason = reason;
    error = std::move(message);
    cv.notify_all();
  }
};

}  // namespace detail

const std::string& to_string(JobStatus status) {
  static const std::string kNames[] = {"queued",    "running",   "done",
                                       "failed",    "cancelled", "rejected"};
  return kNames[static_cast<std::uint8_t>(status)];
}

const std::string& to_string(Priority priority) {
  static const std::string kNames[] = {"normal", "high"};
  return kNames[static_cast<std::uint8_t>(priority)];
}

Priority priority_from_string(const std::string& name) {
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  throw precondition_error("unknown priority '" + name +
                           "' (expected \"normal\" or \"high\")");
}

const std::string& to_string(RejectReason reason) {
  static const std::string kNames[] = {"none", "queue-full", "tenant-quota",
                                       "shutdown"};
  return kNames[static_cast<std::uint8_t>(reason)];
}

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

JobHandle::JobHandle(std::shared_ptr<detail::JobState> state)
    : state_(std::move(state)) {}

std::uint64_t JobHandle::id() const noexcept { return state_->id; }

JobStatus JobHandle::status() const {
  MutexLock lock(state_->mutex);
  return state_->status;
}

bool JobHandle::poll() const {
  const JobStatus s = status();
  return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

const RunResult& JobHandle::wait() const {
  MutexLock lock(state_->mutex);
  while (state_->status == JobStatus::kQueued ||
         state_->status == JobStatus::kRunning)
    state_->cv.wait(lock.native());
  if (state_->status != JobStatus::kDone)
    throw runtime_failure("job " + std::to_string(state_->id) + " " +
                          to_string(state_->status) +
                          (state_->error.empty() ? "" : ": " + state_->error));
  return state_->result;
}

const RunResult& JobHandle::result() const {
  MutexLock lock(state_->mutex);
  PTSBE_REQUIRE(state_->status == JobStatus::kDone,
                "job " + std::to_string(state_->id) + " is " +
                    to_string(state_->status) + ", not done");
  return state_->result;
}

std::string JobHandle::error() const {
  MutexLock lock(state_->mutex);
  return state_->error;
}

RejectReason JobHandle::reject_reason() const {
  MutexLock lock(state_->mutex);
  return state_->reject_reason;
}

bool JobHandle::cancel() {
  MutexLock lock(state_->mutex);
  if (state_->status != JobStatus::kQueued) return false;
  state_->status = JobStatus::kCancelled;
  state_->error = "cancelled before execution";
  state_->cv.notify_all();
  state_->counters->cancelled.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock tenants(state_->counters->tenants_mutex);
    TenantStats& t =
        state_->counters->tenant_locked(state_->request.tenant);
    ++t.cancelled;
    if (t.queue_depth > 0) --t.queue_depth;
    // `outstanding` stays until the tombstone leaves the queue (purge or
    // worker pop) — the slot is still held until then.
  }
  return true;
}

bool JobHandle::plan_cache_hit() const { return state_->cache_hit; }

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      plan_cache_(config_.plan_cache_capacity),
      counters_(std::make_shared<detail::Counters>()) {
  PTSBE_REQUIRE(config_.queue_capacity >= 1,
                "engine queue capacity must be at least 1");
  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

bool Engine::draining() const {
  MutexLock lock(mutex_);
  return stopping_;
}

std::size_t Engine::quota_for(const std::string& tenant) const {
  const auto it = config_.tenant_quota_overrides.find(tenant);
  return it != config_.tenant_quota_overrides.end() ? it->second
                                                    : config_.tenant_quota;
}

JobHandle Engine::submit(JobRequest request) {
  counters_->submitted.fetch_add(1, std::memory_order_relaxed);
  auto job = std::make_shared<detail::JobState>();
  job->counters = counters_;
  job->request = std::move(request);
  JobRequest& req = job->request;

  // Shared rejection path: counts globally and per tenant, then finishes
  // the job with the distinct reason a client can react to.
  const auto reject = [&](RejectReason reason,
                          const std::string& message) -> JobHandle {
    counters_->rejected.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock tenants(counters_->tenants_mutex);
      ++counters_->tenant_locked(req.tenant).rejected;
    }
    job->finish(JobStatus::kRejected, message, reason);
    return JobHandle(job);
  };
  const auto fail = [&](const std::string& message) -> JobHandle {
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock tenants(counters_->tenants_mutex);
      ++counters_->tenant_locked(req.tenant).failed;
    }
    job->finish(JobStatus::kFailed, message);
    return JobHandle(job);
  };

  // Admission pre-check: when the engine is stopping, the queue is already
  // full or the tenant is over quota, reject *before* parsing/planning —
  // backpressure must shed the expensive work too, and a doomed request
  // must not evict live plan-cache entries. (Re-checked at enqueue below:
  // concurrent submits that both pass here can still race the last slot.)
  {
    MutexLock lock(mutex_);
    job->id = next_id_++;
    purge_cancelled_locked();
    if (stopping_)
      return reject(RejectReason::kShutdown, "engine is shutting down");
    if (queued_locked() >= config_.queue_capacity)
      return reject(RejectReason::kQueueFull,
                    "admission queue full (" +
                        std::to_string(config_.queue_capacity) + " jobs)");
    const std::size_t quota = quota_for(req.tenant);
    if (quota > 0) {
      bool over_quota;
      {
        // reject() locks tenants_mutex itself, so the check must not still
        // hold it when rejecting.
        MutexLock tenants(counters_->tenants_mutex);
        over_quota = counters_->tenant_locked(req.tenant).outstanding >= quota;
      }
      if (over_quota)
        return reject(RejectReason::kTenantQuota,
                      "tenant '" + req.tenant + "' quota exhausted (" +
                          std::to_string(quota) + " outstanding jobs)");
    }
  }
  // Clamp tenant-controlled intra-job parallelism: "threads" feeds
  // TrajectoryExecutor's pool size verbatim (0 already means hardware
  // concurrency, and records are bit-identical at every value, so the
  // clamp is invisible except in wall clock).
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (req.threads > hw) req.threads = hw;

  // Validate tenant input on the caller's thread — bad requests fail with
  // status + diagnostic and never occupy a worker slot.
  std::string cache_insert_key;  // non-empty: insert after admission
  try {
    job->program.emplace(io::parse_circuit(req.circuit_text, req.source_name));
    if (!pts::StrategyRegistry::instance().contains(req.strategy))
      throw precondition_error("unknown strategy '" + req.strategy + "'");
    const BackendPtr backend = make_backend(req.backend, req.backend_config);
    PTSBE_REQUIRE(backend->supports(*job->program),
                  "backend '" + req.backend +
                      "' does not support this program (gate set, channel "
                      "class or qubit count)");
    // Plan cache: only backends that prepare through plans participate.
    // The canonical key makes formatting-only differences between tenant
    // texts collapse onto one entry.
    if (backend->can_fork_states() && config_.plan_cache_capacity > 0) {
      const std::string key = plan_cache_key(io::write_circuit(*job->program),
                                             req.backend, req.backend_config);
      job->plan = plan_cache_.lookup(key);
      job->cache_hit = job->plan != nullptr;
      if (!job->plan) {
        job->plan =
            std::make_shared<const ExecPlan>(backend->make_plan(*job->program));
        // Deferred: only an *admitted* job may evict a live LRU entry — a
        // submit that loses the race for the last queue slot below must
        // leave the cache untouched.
        cache_insert_key = key;
      }
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  // FIFO admission (within each priority lane) with a hard shared bound: a
  // full queue, an exhausted tenant quota or a stopping engine rejects with
  // status — visible backpressure instead of hidden buffering.
  {
    MutexLock lock(mutex_);
    purge_cancelled_locked();
    if (stopping_)
      return reject(RejectReason::kShutdown, "engine is shutting down");
    if (queued_locked() >= config_.queue_capacity)
      return reject(RejectReason::kQueueFull,
                    "admission queue full (" +
                        std::to_string(config_.queue_capacity) + " jobs)");
    const std::size_t quota = quota_for(req.tenant);
    bool over_quota = false;
    {
      // Quota check and admission accounting are one atomic step, so two
      // racing submits can never both slip under the same quota. The
      // reject itself happens after the guard drops — reject() locks
      // tenants_mutex too.
      MutexLock tenants(counters_->tenants_mutex);
      TenantStats& t = counters_->tenant_locked(req.tenant);
      if (quota > 0 && t.outstanding >= quota) {
        over_quota = true;
      } else {
        ++t.admitted;
        ++t.outstanding;
        ++t.queue_depth;
        if (t.queue_depth > t.queue_high_water)
          t.queue_high_water = t.queue_depth;
      }
    }
    if (over_quota)
      return reject(RejectReason::kTenantQuota,
                    "tenant '" + req.tenant + "' quota exhausted (" +
                        std::to_string(quota) + " outstanding jobs)");
    (req.priority == Priority::kHigh ? queue_high_ : queue_normal_)
        .push_back(job);
  }
  if (!cache_insert_key.empty())
    plan_cache_.insert(cache_insert_key, job->plan);
  work_cv_.notify_one();
  return JobHandle(job);
}

void Engine::purge_cancelled_locked() {
  // Cancelled jobs are tombstones: cancel() (which holds only the job
  // mutex — handles must outlive engines) cannot touch the lanes, so the
  // admission checks sweep them out here. Lock order is engine mutex_ →
  // job mutex, consistent with every other path, and the lanes are
  // capacity-bounded so the sweep is O(queue_capacity).
  std::vector<std::string> freed;  // tenants whose slots were reclaimed
  const auto sweep = [&](std::deque<std::shared_ptr<detail::JobState>>& lane) {
    std::erase_if(lane, [&](const std::shared_ptr<detail::JobState>& job) {
      MutexLock job_lock(job->mutex);
      if (job->status != JobStatus::kCancelled) return false;
      freed.push_back(job->request.tenant);
      return true;
    });
  };
  sweep(queue_high_);
  sweep(queue_normal_);
  if (!freed.empty()) {
    MutexLock tenants(counters_->tenants_mutex);
    for (const std::string& tenant : freed) {
      TenantStats& t = counters_->tenant_locked(tenant);
      if (t.outstanding > 0) --t.outstanding;
    }
  }
}

void Engine::worker_loop() {
  while (true) {
    std::shared_ptr<detail::JobState> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queued_locked() == 0) work_cv_.wait(lock.native());
      if (queued_locked() == 0) return;  // stopping_ and drained
      // High lane first: priority reorders dispatch, never admission.
      std::deque<std::shared_ptr<detail::JobState>>& lane =
          queue_high_.empty() ? queue_normal_ : queue_high_;
      job = std::move(lane.front());
      lane.pop_front();
    }
    execute(job);
  }
}

void Engine::execute(const std::shared_ptr<detail::JobState>& job) {
  const std::string& tenant = job->request.tenant;
  {
    MutexLock lock(job->mutex);
    if (job->status != JobStatus::kQueued) {
      // Cancelled while queued: the tombstone leaves the queue here, so
      // the tenant's admission slot is released now.
      MutexLock tenants(counters_->tenants_mutex);
      TenantStats& t = counters_->tenant_locked(tenant);
      if (t.outstanding > 0) --t.outstanding;
      return;
    }
    job->status = JobStatus::kRunning;
  }
  {
    MutexLock tenants(counters_->tenants_mutex);
    TenantStats& t = counters_->tenant_locked(tenant);
    if (t.queue_depth > 0) --t.queue_depth;
  }
  // Releases the tenant's outstanding slot and records the terminal state.
  const auto account_terminal = [&](bool done) {
    MutexLock tenants(counters_->tenants_mutex);
    TenantStats& t = counters_->tenant_locked(tenant);
    if (done)
      ++t.completed;
    else
      ++t.failed;
    if (t.outstanding > 0) --t.outstanding;
  };
  try {
    const JobRequest& req = job->request;
    // The Pipeline facade is the single definition of the seeding
    // convention, which is what makes a served job bit-identical to a
    // standalone run with the same request.
    Pipeline pipeline(std::move(*job->program));
    pipeline.strategy(req.strategy, req.strategy_config)
        .backend(req.backend, req.backend_config)
        .schedule(req.schedule)
        .threads(req.threads)
        .seed(req.seed)
        .cached_plan(job->plan);
    const std::size_t table_cap = config_.tenant_shot_table_capacity;
    RunResult run;
    if (req.stream_sink) {
      // Streaming delivery: batches go to the tenant's sink from this
      // worker thread as they complete; the stored RunResult carries the
      // metadata a client needs to reassemble/estimate, not the records.
      // The tenant's ShotTable aggregate taps the stream on the way past —
      // the engine never re-materialises what the sink consumed.
      be::BatchSink sink = req.stream_sink;
      if (table_cap > 0) {
        sink = [this, &tenant, table_cap,
                inner = req.stream_sink](be::TrajectoryBatch&& batch) {
          {
            MutexLock tenants(counters_->tenants_mutex);
            detail::tabulate_records(counters_->tenant_locked(tenant), batch.records,
                             table_cap);
          }
          inner(std::move(batch));
        };
      }
      run.weighting = pipeline.weighting();
      run.strategy = req.strategy;
      run.backend = req.backend;
      run.schedule_requested = req.schedule;
      const be::StreamSummary summary = pipeline.run_streaming(sink);
      run.schedule_executed = summary.schedule;
      run.num_specs = summary.num_batches;
      run.result.schedule = summary.schedule;
      run.result.prepare_seconds = summary.prepare_seconds;
      run.result.sample_seconds = summary.sample_seconds;
    } else {
      run = pipeline.run();
      if (table_cap > 0) {
        MutexLock tenants(counters_->tenants_mutex);
        TenantStats& t = counters_->tenant_locked(tenant);
        for (const be::TrajectoryBatch& batch : run.result.batches)
          detail::tabulate_records(t, batch.records, table_cap);
      }
    }
    // Count before notifying: a waiter reading stats() right after wait()
    // returns must already see this job as served.
    counters_->served.fetch_add(1, std::memory_order_relaxed);
    account_terminal(/*done=*/true);
    {
      MutexLock lock(job->mutex);
      job->result = std::move(run);
      job->status = JobStatus::kDone;
      job->cv.notify_all();
    }
  } catch (const std::exception& e) {
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    account_terminal(/*done=*/false);
    job->finish(JobStatus::kFailed, e.what());
  }
}

EngineStats Engine::stats() const {
  EngineStats out;
  out.submitted = counters_->submitted.load(std::memory_order_relaxed);
  out.served = counters_->served.load(std::memory_order_relaxed);
  out.failed = counters_->failed.load(std::memory_order_relaxed);
  out.cancelled = counters_->cancelled.load(std::memory_order_relaxed);
  out.rejected = counters_->rejected.load(std::memory_order_relaxed);
  out.plan_cache_hits = plan_cache_.hits();
  out.plan_cache_misses = plan_cache_.misses();
  {
    MutexLock lock(mutex_);
    // Count live queued jobs only: cancelled tombstones awaiting their
    // purge must not read as backlog to a monitoring client.
    for (const auto* lane : {&queue_high_, &queue_normal_})
      for (const std::shared_ptr<detail::JobState>& job : *lane) {
        MutexLock job_lock(job->mutex);
        if (job->status == JobStatus::kQueued) ++out.queue_depth;
      }
  }
  {
    MutexLock tenants(counters_->tenants_mutex);
    out.tenants = counters_->tenants;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stats JSON
// ---------------------------------------------------------------------------

namespace {

/// Most shot records emitted per tenant in the stats JSON — the table
/// itself is bounded by tenant_shot_table_capacity, but a monitoring reply
/// should stay small even when that knob is raised.
constexpr std::size_t kJsonShotRecords = 256;

/// Minimal JSON string escape (quotes, backslashes, control characters) —
/// tenant labels are client-asserted text and must not break the document.
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string stats_to_json(const EngineStats& stats) {
  std::ostringstream os;
  os << "{\"submitted\": " << stats.submitted << ", \"served\": " << stats.served
     << ", \"failed\": " << stats.failed << ", \"cancelled\": " << stats.cancelled
     << ", \"rejected\": " << stats.rejected
     << ", \"plan_cache_hits\": " << stats.plan_cache_hits
     << ", \"plan_cache_misses\": " << stats.plan_cache_misses
     << ", \"plan_cache_hit_rate\": " << stats.plan_cache_hit_rate()
     << ", \"queue_depth\": " << stats.queue_depth << ", \"tenants\": {";
  bool first = true;
  for (const auto& [name, t] : stats.tenants) {
    if (!first) os << ", ";
    first = false;
    append_json_string(os, name);
    os << ": {\"admitted\": " << t.admitted << ", \"rejected\": " << t.rejected
       << ", \"completed\": " << t.completed << ", \"failed\": " << t.failed
       << ", \"cancelled\": " << t.cancelled
       << ", \"queue_depth\": " << t.queue_depth
       << ", \"queue_high_water\": " << t.queue_high_water
       << ", \"outstanding\": " << t.outstanding
       << ", \"shot_overflow\": " << t.shot_overflow
       // Truncation is deterministic (smallest records first) — monitoring
       // diffs must not flap on map order.
       << ", \"shots\": " << stats::to_json(t.shots, kJsonShotRecords)
       << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace ptsbe::serve
